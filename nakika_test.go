package nakika

import (
	"strings"
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: an in-process origin with a site
	// script, one edge node, one request.
	origin := FetcherFunc(func(req *Request) (*Response, error) {
		switch req.Path() {
		case "/nakika.js":
			r := NewTextResponse(200, `
				var p = new Policy();
				p.url = [ "quickstart.example.org" ];
				p.onResponse = function() {
					var b = new ByteArray(), c;
					while (c = Response.read()) { b.append(c); }
					Response.write(b.toString() + " — processed at the edge by " + System.nodeName);
				};
				p.register();
			`)
			r.SetMaxAge(300)
			return r, nil
		case "/hello":
			return NewHTMLResponse(200, "hello from the origin"), nil
		default:
			return NewTextResponse(404, "not found"), nil
		}
	})
	node, err := NewNode(Config{Name: "edge-1", Upstream: origin})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := node.Handle(MustRequest("GET", "http://quickstart.example.org/hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "processed at the edge by edge-1") {
		t.Errorf("body = %q", resp.Body)
	}
	if node.Stats().Requests != 1 {
		t.Errorf("stats = %+v", node.Stats())
	}
}

func TestPublicAPIOverlayAndBus(t *testing.T) {
	ring := NewRing()
	dir := NewDirectory()
	bus := NewBus()
	origin := FetcherFunc(func(req *Request) (*Response, error) {
		if req.Path() == "/big" {
			r := NewHTMLResponse(200, strings.Repeat("x", 5000))
			r.SetMaxAge(600)
			return r, nil
		}
		return NewTextResponse(404, "not found"), nil
	})
	a, err := NewNode(Config{Name: "edge-a", Region: "us-east", Upstream: origin, Ring: ring, Directory: dir, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode(Config{Name: "edge-b", Region: "asia", Upstream: origin, Ring: ring, Directory: dir, Bus: bus}); err != nil {
		t.Fatal(err)
	}
	if ring.Size() != 2 {
		t.Errorf("ring size = %d", ring.Size())
	}
	rd := NewRedirector(ring)
	if rd.Pick("asia") != "edge-b" {
		t.Errorf("redirector pick = %q", rd.Pick("asia"))
	}
	if _, _, err := a.Handle(MustRequest("GET", "http://files.example.org/big")); err != nil {
		t.Fatal(err)
	}
}
