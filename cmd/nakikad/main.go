// Command nakikad runs a Na Kika edge node as a real HTTP proxy.
//
// Clients reach it either through proxy configuration or by rewriting URLs
// to append .nakika.net to the hostname and pointing that name at this node.
//
//	nakikad -listen :8080 -name edge-1 -region us-east -local 10.0.0.0/8
//
// Several nakikad processes form a cooperative cluster over the TCP
// transport: give each a -rpc listen address and the name=address pairs of
// its peers. Overlay routing, cooperative cache fetches, and hard-state
// replication then flow between the processes on length-prefixed frames:
//
//	nakikad -listen :8080 -name edge-1 -rpc :9091 -peers edge-2=host2:9092
//	nakikad -listen :8081 -name edge-2 -rpc :9092 -peers edge-1=host1:9091
//
// With -data-dir the node persists its hard state through a write-ahead
// log and keeps a disk cache tier, so a restart recovers both instead of
// starting cold. SIGINT/SIGTERM trigger a graceful shutdown that drains
// HTTP, closes the cluster transport, and flushes the store.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nakika"
	"nakika/internal/admin"
	"nakika/internal/resource"
	"nakika/internal/store"
	"nakika/internal/transport"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	name := flag.String("name", "edge-1", "node name")
	region := flag.String("region", "default", "node region (for client redirection)")
	local := flag.String("local", "127.0.0.0/8", "comma-separated CIDR blocks considered local (System.isLocal)")
	clientWall := flag.String("clientwall", "", "override URL of the client-side administrative control script")
	serverWall := flag.String("serverwall", "", "override URL of the server-side administrative control script")
	enableRes := flag.Bool("resource-controls", true, "enable congestion-based resource controls")
	cpuCapacity := flag.Float64("cpu-capacity", 50_000_000, "CPU capacity (script steps) per control interval")
	rpcAddr := flag.String("rpc", "", "TCP transport listen address for cluster traffic (empty: single-node)")
	peers := flag.String("peers", "", "comma-separated name=host:port pairs of cluster peers")
	dataDir := flag.String("data-dir", "", "directory for the persistent store (WAL + segments + disk cache tier); empty keeps all state in memory")
	noGroupCommit := flag.Bool("no-group-commit", false, "sync the write-ahead log once per record instead of batching fsyncs")
	replication := flag.Int("replication", 3, "copies kept of each hard-state key in cluster mode (ring owner + successors, written synchronously); 1 keeps owner-only placement, negative restores the legacy broadcast model")
	offloadThreshold := flag.Float64("offload-threshold", 0, "load score above which arriving requests are shed to the least-loaded replica of their site (cluster mode); 0 disables offload")
	hedgeAfter := flag.Duration("hedge-after", 0, "latency budget for replicated hard-state reads: when the owner's EWMA round trip exceeds it the read is hedged to the next replica; 0 disables hedging")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "default time-to-live of distributed leases taken without an explicit TTL (Lease.acquire)")
	adminAddr := flag.String("admin", "", "admin listener address serving /metrics, /admin/traces, /admin/statusz, and /debug/pprof; empty disables the listener")
	noObserve := flag.Bool("no-observe", false, "disable the observability plane (metrics registry, request tracing, trace-id propagation)")
	largeThreshold := flag.Int64("large-threshold", 1<<20, "response size in bytes at which bodies are chunked into the content-addressed large-object tier and served as streams; 0 disables the tier")
	segmentSize := flag.Int64("segment-size", 256<<10, "segment size of the large-object tier")
	largeCapacity := flag.Int64("large-capacity", 512<<20, "byte capacity of the large-object segment slab (LRU beyond it)")
	flag.Parse()

	cfg := nakika.Config{
		Name:                 *name,
		Region:               *region,
		ClientWallURL:        *clientWall,
		ServerWallURL:        *serverWall,
		ReplicationFactor:    *replication,
		OffloadThreshold:     *offloadThreshold,
		HedgeAfter:           *hedgeAfter,
		LeaseTTL:             *leaseTTL,
		NoObserve:            *noObserve,
		EnableResources:      *enableRes,
		LargeObjectThreshold: *largeThreshold,
		LargeObjectSegment:   *segmentSize,
		LargeObjectCapacity:  *largeCapacity,
		Resources: resource.Config{
			Capacity: map[resource.Kind]float64{
				resource.CPU:    *cpuCapacity,
				resource.Memory: 256 << 20,
			},
		},
	}
	for _, cidr := range strings.Split(*local, ",") {
		if cidr = strings.TrimSpace(cidr); cidr != "" {
			cfg.LocalNetworks = append(cfg.LocalNetworks, cidr)
		}
	}
	if *dataDir != "" {
		fs, err := store.NewDirFS(*dataDir)
		if err != nil {
			log.Fatalf("nakikad: %v", err)
		}
		cfg.DataFS = fs
		cfg.Persist.NoGroupCommit = *noGroupCommit
	}

	// Cluster mode: an overlay ring over the TCP wire transport. This
	// process serves its own node; peers are remote membership stubs
	// reached through the address book.
	var tcp *transport.TCP
	peerCount := 0
	if *rpcAddr != "" {
		tcp = transport.NewTCP()
		ring := nakika.NewRing()
		ring.Transport = tcp
		cfg.Ring = ring
		cfg.Transport = tcp
		for _, pair := range strings.Split(*peers, ",") {
			if pair = strings.TrimSpace(pair); pair == "" {
				continue
			}
			nameAddr := strings.SplitN(pair, "=", 2)
			if len(nameAddr) != 2 {
				log.Fatalf("nakikad: bad -peers entry %q (want name=host:port)", pair)
			}
			ring.AddRemote(nameAddr[0], "remote")
			tcp.AddPeer(nameAddr[0], nameAddr[1])
			peerCount++
		}
	}

	node, err := nakika.NewNode(cfg)
	if err != nil {
		log.Fatalf("nakikad: %v", err)
	}
	if *dataDir != "" {
		st := node.StoreStats()
		log.Printf("nakikad: persistent store in %s (replayed %d records, disk cache %d entries)",
			*dataDir, st.Replayed, node.Cache().Stats().Disk.Entries)
	}
	if tcp != nil {
		addr, err := tcp.Listen(*rpcAddr)
		if err != nil {
			log.Fatalf("nakikad: rpc listen: %v", err)
		}
		log.Printf("nakikad: cluster transport on %s (%d peers)", addr, peerCount)
	}

	// Background loops: congestion control, access-log flushing, and (in
	// cluster mode) retries of cooperative-cache publishes that failed
	// while a peer was unreachable.
	go func() {
		for {
			time.Sleep(250 * time.Millisecond)
			node.Resources().ControlOnce()
		}
	}()
	go func() {
		for {
			time.Sleep(time.Minute)
			if err := node.FlushLogs(); err != nil {
				log.Printf("nakikad: log flush: %v", err)
			}
		}
	}()
	if tcp != nil {
		go func() {
			// Boot-time resync: a node that just started (first boot, or a
			// restart after a crash) streams the key range it owns from its
			// successors, catching up on every write it missed while it was
			// not running — the cluster harness drives the same pull from
			// StabilizeAll. Retried until it succeeds once.
			resynced := false
			for tick := 1; ; tick++ {
				if !resynced {
					if _, err := node.PullOwnedRange(0); err == nil {
						resynced = true
						node.RepairReplication()
					}
				}
				time.Sleep(5 * time.Second)
				node.RepublishPending()
				// Overlay maintenance plus its replication consequences:
				// stabilization notices dead/joined peers, and when it flags
				// churn the repair pass promotes replicas and re-replicates
				// to restore the replication factor.
				if ov := node.Overlay(); ov != nil {
					ov.Stabilize()
					ov.FixFingers()
				}
				// Re-probe peers whose RTT estimate exceeds the hedge
				// budget, so reads stop hedging around a peer that has
				// recovered (no-op with -hedge-after 0).
				node.RefreshRTTs()
				// Reconcile the pipeline with the replicated deployment
				// records each tick: a node that missed a deploy nudge
				// (crashed, partitioned, or just booted) converges as soon
				// as replication or repair delivers the record.
				node.SyncDeployments()
				if tick%6 == 0 {
					// Periodic anti-entropy: churn detection sees only what
					// stabilization observes changing; a peer that died and
					// returned between observations — or writes that failed
					// over while routing still pointed at a dead owner —
					// leave no flag behind. A full repair pass every ~30s
					// re-establishes the replication invariant regardless
					// (all pushes are idempotent last-writer-wins applies).
					node.RepairReplication()
				} else {
					node.RepairIfNeeded()
				}
			}
		}()
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting traffic, close
	// the cluster transport listener, flush the store durably, and only
	// then exit. A node killed without -data-dir simply loses its state,
	// as before; with it, the next boot replays the log.
	srv := &http.Server{Addr: *listen, Handler: node}

	// Optional admin listener: /metrics, /admin/traces, /admin/statusz and
	// /debug/pprof on a port separate from client traffic. It drains on the
	// same signal as the front server so a scrape in flight at SIGTERM
	// completes before the process exits.
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: admin.NewHandler(node)}
		go func() {
			log.Printf("nakikad: admin surface on %s", *adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("nakikad: admin listener: %v", err)
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("nakikad: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if adminSrv != nil {
			if err := adminSrv.Shutdown(ctx); err != nil {
				log.Printf("nakikad: admin shutdown: %v", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("nakikad: http shutdown: %v", err)
		}
	}()

	log.Printf("nakikad: node %s (%s) listening on %s", *name, *region, *listen)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("nakikad: %v", err)
	}
	if tcp != nil {
		tcp.Close()
	}
	if err := node.Shutdown(); err != nil {
		log.Fatalf("nakikad: store shutdown: %v", err)
	}
	log.Printf("nakikad: store flushed, bye")
}
