// Command nakikad runs a Na Kika edge node as a real HTTP proxy.
//
// Clients reach it either through proxy configuration or by rewriting URLs
// to append .nakika.net to the hostname and pointing that name at this node.
//
//	nakikad -listen :8080 -name edge-1 -region us-east -local 10.0.0.0/8
//
// Several nakikad processes form a cooperative cluster over the TCP
// transport: give each a -rpc listen address and the name=address pairs of
// its peers. Overlay routing, cooperative cache fetches, and hard-state
// replication then flow between the processes on length-prefixed frames:
//
//	nakikad -listen :8080 -name edge-1 -rpc :9091 -peers edge-2=host2:9092
//	nakikad -listen :8081 -name edge-2 -rpc :9092 -peers edge-1=host1:9091
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"nakika"
	"nakika/internal/resource"
	"nakika/internal/transport"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	name := flag.String("name", "edge-1", "node name")
	region := flag.String("region", "default", "node region (for client redirection)")
	local := flag.String("local", "127.0.0.0/8", "comma-separated CIDR blocks considered local (System.isLocal)")
	clientWall := flag.String("clientwall", "", "override URL of the client-side administrative control script")
	serverWall := flag.String("serverwall", "", "override URL of the server-side administrative control script")
	enableRes := flag.Bool("resource-controls", true, "enable congestion-based resource controls")
	cpuCapacity := flag.Float64("cpu-capacity", 50_000_000, "CPU capacity (script steps) per control interval")
	rpcAddr := flag.String("rpc", "", "TCP transport listen address for cluster traffic (empty: single-node)")
	peers := flag.String("peers", "", "comma-separated name=host:port pairs of cluster peers")
	flag.Parse()

	cfg := nakika.Config{
		Name:            *name,
		Region:          *region,
		ClientWallURL:   *clientWall,
		ServerWallURL:   *serverWall,
		EnableResources: *enableRes,
		Resources: resource.Config{
			Capacity: map[resource.Kind]float64{
				resource.CPU:    *cpuCapacity,
				resource.Memory: 256 << 20,
			},
		},
	}
	for _, cidr := range strings.Split(*local, ",") {
		if cidr = strings.TrimSpace(cidr); cidr != "" {
			cfg.LocalNetworks = append(cfg.LocalNetworks, cidr)
		}
	}

	// Cluster mode: an overlay ring over the TCP wire transport. This
	// process serves its own node; peers are remote membership stubs
	// reached through the address book.
	var tcp *transport.TCP
	peerCount := 0
	if *rpcAddr != "" {
		tcp = transport.NewTCP()
		ring := nakika.NewRing()
		ring.Transport = tcp
		cfg.Ring = ring
		cfg.Transport = tcp
		for _, pair := range strings.Split(*peers, ",") {
			if pair = strings.TrimSpace(pair); pair == "" {
				continue
			}
			nameAddr := strings.SplitN(pair, "=", 2)
			if len(nameAddr) != 2 {
				log.Fatalf("nakikad: bad -peers entry %q (want name=host:port)", pair)
			}
			ring.AddRemote(nameAddr[0], "remote")
			tcp.AddPeer(nameAddr[0], nameAddr[1])
			peerCount++
		}
	}

	node, err := nakika.NewNode(cfg)
	if err != nil {
		log.Fatalf("nakikad: %v", err)
	}
	if tcp != nil {
		addr, err := tcp.Listen(*rpcAddr)
		if err != nil {
			log.Fatalf("nakikad: rpc listen: %v", err)
		}
		log.Printf("nakikad: cluster transport on %s (%d peers)", addr, peerCount)
	}

	// Background loops: congestion control, access-log flushing, and (in
	// cluster mode) retries of cooperative-cache publishes that failed
	// while a peer was unreachable.
	go func() {
		for {
			time.Sleep(250 * time.Millisecond)
			node.Resources().ControlOnce()
		}
	}()
	go func() {
		for {
			time.Sleep(time.Minute)
			if err := node.FlushLogs(); err != nil {
				log.Printf("nakikad: log flush: %v", err)
			}
		}
	}()
	if tcp != nil {
		go func() {
			for {
				time.Sleep(5 * time.Second)
				node.RepublishPending()
			}
		}()
	}

	log.Printf("nakikad: node %s (%s) listening on %s", *name, *region, *listen)
	log.Fatal(http.ListenAndServe(*listen, node))
}
