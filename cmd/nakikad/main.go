// Command nakikad runs a Na Kika edge node as a real HTTP proxy.
//
// Clients reach it either through proxy configuration or by rewriting URLs
// to append .nakika.net to the hostname and pointing that name at this node.
//
//	nakikad -listen :8080 -name edge-1 -region us-east -local 10.0.0.0/8
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"nakika"
	"nakika/internal/resource"
)

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	name := flag.String("name", "edge-1", "node name")
	region := flag.String("region", "default", "node region (for client redirection)")
	local := flag.String("local", "127.0.0.0/8", "comma-separated CIDR blocks considered local (System.isLocal)")
	clientWall := flag.String("clientwall", "", "override URL of the client-side administrative control script")
	serverWall := flag.String("serverwall", "", "override URL of the server-side administrative control script")
	enableRes := flag.Bool("resource-controls", true, "enable congestion-based resource controls")
	cpuCapacity := flag.Float64("cpu-capacity", 50_000_000, "CPU capacity (script steps) per control interval")
	flag.Parse()

	cfg := nakika.Config{
		Name:            *name,
		Region:          *region,
		ClientWallURL:   *clientWall,
		ServerWallURL:   *serverWall,
		EnableResources: *enableRes,
		Resources: resource.Config{
			Capacity: map[resource.Kind]float64{
				resource.CPU:    *cpuCapacity,
				resource.Memory: 256 << 20,
			},
		},
	}
	for _, cidr := range strings.Split(*local, ",") {
		if cidr = strings.TrimSpace(cidr); cidr != "" {
			cfg.LocalNetworks = append(cfg.LocalNetworks, cidr)
		}
	}
	node, err := nakika.NewNode(cfg)
	if err != nil {
		log.Fatalf("nakikad: %v", err)
	}

	// Background loops: congestion control and access-log flushing.
	go func() {
		for {
			time.Sleep(250 * time.Millisecond)
			node.Resources().ControlOnce()
		}
	}()
	go func() {
		for {
			time.Sleep(time.Minute)
			if err := node.FlushLogs(); err != nil {
				log.Printf("nakikad: log flush: %v", err)
			}
		}
	}()

	log.Printf("nakikad: node %s (%s) listening on %s", *name, *region, *listen)
	log.Fatal(http.ListenAndServe(*listen, node))
}
