// Command nakika-bench regenerates the paper's evaluation: every table and
// figure in Section 5 has an experiment that prints the corresponding rows
// or series. Alongside the human-readable tables, each experiment writes a
// machine-readable BENCH_<experiment>.json file (see README.md for the
// format); -json "" disables that.
//
// Usage:
//
//	nakika-bench -experiment all
//	nakika-bench -experiment table2 -iterations 10
//	nakika-bench -experiment figure7 -duration 60s -json results/
//	nakika-bench -experiment replication -json out/ -baseline bench/baseline
//
// Experiments: table2, breakdown, capacity, rescontrol, simm-local, figure7,
// specweb, extensions, persist, replication, offload, lease, throughput,
// metrics, largeobject, all.
//
// With -baseline, the freshly written BENCH_*.json files are compared
// against the committed baselines after the run: any tracked metric more
// than -regress-threshold above its baseline fails the process (exit 1) —
// the CI bench-regression gate. Only virtual-clock/message-count metrics
// are tracked, so the gate is deterministic across machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nakika/internal/bench"
)

func main() {
	// The throughput experiment re-execs this binary as the server half of
	// its two-process RPC pair; the env var is how the child knows.
	if os.Getenv(bench.RPCPeerEnv) != "" {
		if err := bench.ServeRPCPeer(); err != nil {
			fmt.Fprintf(os.Stderr, "rpc peer: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiment := flag.String("experiment", "all", "experiment to run (table2, breakdown, capacity, rescontrol, simm-local, figure7, specweb, extensions, persist, replication, offload, lease, throughput, metrics, largeobject, all)")
	iterations := flag.Int("iterations", 10, "iterations per micro-benchmark measurement")
	duration := flag.Duration("duration", 30*time.Second, "virtual duration for the wide-area simulations")
	loadDuration := flag.Duration("load-duration", 2*time.Second, "wall-clock duration for capacity and resource-control load tests")
	cdf := flag.Bool("cdf", false, "print full CDF series for figure7")
	jsonDir := flag.String("json", ".", "directory for machine-readable BENCH_*.json results (empty: disabled)")
	baseline := flag.String("baseline", "", "baseline directory to gate the fresh BENCH_*.json results against (empty: no gate)")
	threshold := flag.Float64("regress-threshold", 0.20, "fractional regression that fails the -baseline gate")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile here after the experiments run (empty: disabled)")
	flag.Parse()

	// run executes one experiment; fn prints the human-readable tables and
	// returns the payload for the BENCH_<name>.json report.
	run := func(name string, fn func() (interface{}, error)) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		data, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonDir != "" && data != nil {
			path, err := bench.WriteBenchJSON(*jsonDir, name, data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing JSON: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Println()
	}

	run("table2", func() (interface{}, error) {
		rows, err := bench.RunTable2(*iterations)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatTable2(rows))
		return rows, nil
	})

	run("breakdown", func() (interface{}, error) {
		b, err := bench.RunBreakdown(*iterations * 10)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatBreakdown(b))
		return b, nil
	})

	run("capacity", func() (interface{}, error) {
		type row struct {
			Name     string
			MatchOne bool
			bench.LoadResult
		}
		var rows []row
		for _, clients := range []int{30, 90} {
			proxy, err := bench.RunCapacity(clients, false, *loadDuration)
			if err != nil {
				return nil, err
			}
			match, err := bench.RunCapacity(clients, true, *loadDuration)
			if err != nil {
				return nil, err
			}
			pname := fmt.Sprintf("plain proxy (%d clients)", clients)
			mname := fmt.Sprintf("Match-1 pipeline (%d clients)", clients)
			fmt.Print(bench.FormatLoad(pname, proxy))
			fmt.Print(bench.FormatLoad(mname, match))
			rows = append(rows, row{Name: pname, LoadResult: proxy}, row{Name: mname, MatchOne: true, LoadResult: match})
		}
		return rows, nil
	})

	run("rescontrol", func() (interface{}, error) {
		type row struct {
			Name     string
			Controls bool
			Hog      bool
			bench.LoadResult
		}
		var rows []row
		for _, tc := range []struct {
			clients  int
			controls bool
			hog      bool
			name     string
		}{
			{30, false, false, "30 clients, no controls"},
			{30, true, false, "30 clients, with controls"},
			{90, false, false, "90 clients, no controls"},
			{90, true, false, "90 clients, with controls"},
			{30, false, true, "30 clients + hog, no controls"},
			{30, true, true, "30 clients + hog, with controls"},
		} {
			res, err := bench.RunResourceControls(tc.clients, tc.controls, tc.hog, *loadDuration)
			if err != nil {
				return nil, err
			}
			fmt.Print(bench.FormatLoad(tc.name, res))
			rows = append(rows, row{Name: tc.name, Controls: tc.controls, Hog: tc.hog, LoadResult: res})
		}
		return rows, nil
	})

	run("simm-local", func() (interface{}, error) {
		costs, err := bench.MeasureSIMMCosts(*iterations)
		if err != nil {
			return nil, err
		}
		fmt.Printf("calibrated costs: origin-render=%v edge-render=%v static=%v\n",
			costs.OriginRender, costs.EdgeRender, costs.StaticServe)
		type payload struct {
			Costs   bench.SIMMCosts
			LAN     []bench.SIMMLocalResult
			WAN     []bench.SIMMLocalResult
			Clients int
		}
		out := payload{Costs: costs, Clients: 160}
		for _, withWAN := range []bool{false, true} {
			label := "LAN only"
			if withWAN {
				label = "80 ms / 8 Mbps WAN"
			}
			fmt.Printf("-- %s --\n", label)
			results := bench.RunSIMMLocal(160, *duration, costs, withWAN)
			for _, r := range results {
				fmt.Printf("  %-14s html-90th=%-10s video-ok=%5.1f%%\n", r.Mode, r.HTML90th.Round(time.Millisecond), r.VideoOKPct)
			}
			if withWAN {
				out.WAN = results
			} else {
				out.LAN = results
			}
		}
		return out, nil
	})

	run("figure7", func() (interface{}, error) {
		costs, err := bench.MeasureSIMMCosts(*iterations)
		if err != nil {
			return nil, err
		}
		fmt.Printf("calibrated costs: origin-render=%v edge-render=%v static=%v\n",
			costs.OriginRender, costs.EdgeRender, costs.StaticServe)
		results := bench.RunFigure7(*duration, costs)
		for _, r := range results {
			fmt.Print(bench.FormatSIMM(r))
		}
		if *cdf {
			for _, r := range results {
				fmt.Print(bench.FormatSIMMCDF(r))
			}
		}
		return struct {
			Costs   bench.SIMMCosts
			Results []bench.SIMMResult
		}{costs, results}, nil
	})

	run("specweb", func() (interface{}, error) {
		costs, err := bench.MeasureSpecWebCosts(*iterations)
		if err != nil {
			return nil, err
		}
		fmt.Printf("calibrated costs: origin-dynamic=%v edge-dynamic=%v static=%v\n",
			costs.OriginDynamic, costs.EdgeDynamic, costs.StaticServe)
		edge := bench.RunSpecWeb(true, 160, *duration, costs)
		origin := bench.RunSpecWeb(false, 160, *duration, costs)
		fmt.Print(bench.FormatSpecWeb(edge))
		fmt.Print(bench.FormatSpecWeb(origin))
		return struct {
			Costs   bench.SpecWebCosts
			Results []bench.SpecWebResult
		}{costs, []bench.SpecWebResult{edge, origin}}, nil
	})

	run("extensions", func() (interface{}, error) {
		exts := bench.Extensions()
		fmt.Print(bench.FormatExtensions(exts))
		return exts, nil
	})

	run("persist", func() (interface{}, error) {
		var out bench.PersistResults
		writes := *iterations * 100
		for _, tc := range []struct {
			writers     int
			groupCommit bool
		}{
			{1, false}, {1, true},
			{16, false}, {16, true},
		} {
			r, err := bench.RunPersistWrites(tc.writers, writes/tc.writers, tc.groupCommit)
			if err != nil {
				return nil, err
			}
			fmt.Print(bench.FormatPersistWrite(r))
			out.Writes = append(out.Writes, r)
		}
		for _, records := range []int{1_000, 10_000, 50_000} {
			r, err := bench.RunPersistReplay(records)
			if err != nil {
				return nil, err
			}
			fmt.Print(bench.FormatPersistReplay(r))
			out.Replay = append(out.Replay, r)
		}
		return out, nil
	})

	run("replication", func() (interface{}, error) {
		rows, err := bench.RunReplicationCost([]int{1, 2, 3, 5}, *iterations*20)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatReplication(rows))
		return rows, nil
	})

	run("offload", func() (interface{}, error) {
		r, err := bench.RunOffload()
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatOffload(r))
		return r, nil
	})

	run("lease", func() (interface{}, error) {
		r, err := bench.RunLease()
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatLease(r))
		return r, nil
	})

	run("throughput", func() (interface{}, error) {
		r, err := bench.RunThroughput(*loadDuration)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatThroughput(r))
		return r, nil
	})

	run("metrics", func() (interface{}, error) {
		r, err := bench.RunMetricsCost(*loadDuration)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatMetricsCost(r))
		return r, nil
	})

	run("largeobject", func() (interface{}, error) {
		r, err := bench.RunLargeObject(*loadDuration)
		if err != nil {
			return nil, err
		}
		fmt.Print(bench.FormatLargeObject(r))
		return r, nil
	})

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote allocation profile to %s\n", *memprofile)
	}

	// The bench-regression gate: compare whatever this run produced
	// against the committed baselines and fail on a tracked-metric
	// regression. Hard metrics fail the run; soft (wall-clock) metrics
	// only warn.
	if *baseline != "" && *jsonDir != "" {
		regs, notes, err := bench.CompareBenchDirs(*baseline, *jsonDir, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench gate: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatRegressions(regs, notes, *threshold))
		warnings, err := bench.CompareSoftDirs(*baseline, *jsonDir, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench gate (soft): %v\n", err)
			os.Exit(1)
		}
		for _, w := range warnings {
			fmt.Printf("warning: %s\n", w)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
	}
}
