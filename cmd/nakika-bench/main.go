// Command nakika-bench regenerates the paper's evaluation: every table and
// figure in Section 5 has an experiment that prints the corresponding rows
// or series.
//
// Usage:
//
//	nakika-bench -experiment all
//	nakika-bench -experiment table2 -iterations 10
//	nakika-bench -experiment figure7 -duration 60s
//
// Experiments: table2, breakdown, capacity, rescontrol, simm-local, figure7,
// specweb, extensions, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nakika/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run (table2, breakdown, capacity, rescontrol, simm-local, figure7, specweb, extensions, all)")
	iterations := flag.Int("iterations", 10, "iterations per micro-benchmark measurement")
	duration := flag.Duration("duration", 30*time.Second, "virtual duration for the wide-area simulations")
	loadDuration := flag.Duration("load-duration", 2*time.Second, "wall-clock duration for capacity and resource-control load tests")
	cdf := flag.Bool("cdf", false, "print full CDF series for figure7")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table2", func() error {
		rows, err := bench.RunTable2(*iterations)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
		return nil
	})

	run("breakdown", func() error {
		b, err := bench.RunBreakdown(*iterations * 10)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatBreakdown(b))
		return nil
	})

	run("capacity", func() error {
		for _, clients := range []int{30, 90} {
			proxy, err := bench.RunCapacity(clients, false, *loadDuration)
			if err != nil {
				return err
			}
			match, err := bench.RunCapacity(clients, true, *loadDuration)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatLoad(fmt.Sprintf("plain proxy (%d clients)", clients), proxy))
			fmt.Print(bench.FormatLoad(fmt.Sprintf("Match-1 pipeline (%d clients)", clients), match))
		}
		return nil
	})

	run("rescontrol", func() error {
		for _, tc := range []struct {
			clients  int
			controls bool
			hog      bool
			name     string
		}{
			{30, false, false, "30 clients, no controls"},
			{30, true, false, "30 clients, with controls"},
			{90, false, false, "90 clients, no controls"},
			{90, true, false, "90 clients, with controls"},
			{30, false, true, "30 clients + hog, no controls"},
			{30, true, true, "30 clients + hog, with controls"},
		} {
			res, err := bench.RunResourceControls(tc.clients, tc.controls, tc.hog, *loadDuration)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatLoad(tc.name, res))
		}
		return nil
	})

	run("simm-local", func() error {
		costs, err := bench.MeasureSIMMCosts(*iterations)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated costs: origin-render=%v edge-render=%v static=%v\n",
			costs.OriginRender, costs.EdgeRender, costs.StaticServe)
		for _, withWAN := range []bool{false, true} {
			label := "LAN only"
			if withWAN {
				label = "80 ms / 8 Mbps WAN"
			}
			fmt.Printf("-- %s --\n", label)
			for _, r := range bench.RunSIMMLocal(160, *duration, costs, withWAN) {
				fmt.Printf("  %-14s html-90th=%-10s video-ok=%5.1f%%\n", r.Mode, r.HTML90th.Round(time.Millisecond), r.VideoOKPct)
			}
		}
		return nil
	})

	run("figure7", func() error {
		costs, err := bench.MeasureSIMMCosts(*iterations)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated costs: origin-render=%v edge-render=%v static=%v\n",
			costs.OriginRender, costs.EdgeRender, costs.StaticServe)
		results := bench.RunFigure7(*duration, costs)
		for _, r := range results {
			fmt.Print(bench.FormatSIMM(r))
		}
		if *cdf {
			for _, r := range results {
				fmt.Print(bench.FormatSIMMCDF(r))
			}
		}
		return nil
	})

	run("specweb", func() error {
		costs, err := bench.MeasureSpecWebCosts(*iterations)
		if err != nil {
			return err
		}
		fmt.Printf("calibrated costs: origin-dynamic=%v edge-dynamic=%v static=%v\n",
			costs.OriginDynamic, costs.EdgeDynamic, costs.StaticServe)
		fmt.Print(bench.FormatSpecWeb(bench.RunSpecWeb(true, 160, *duration, costs)))
		fmt.Print(bench.FormatSpecWeb(bench.RunSpecWeb(false, 160, *duration, costs)))
		return nil
	})

	run("extensions", func() error {
		fmt.Print(bench.FormatExtensions(bench.Extensions()))
		return nil
	})
}
