// Command nakika-origin runs one of the synthetic origin applications used
// by the evaluation (the SIMM medical-education app or the SPECweb99-like
// app) as a real HTTP server, publishing its nakika.js so edge nodes can
// pick up the site's pipeline stage.
//
//	nakika-origin -app simm -listen :9090
//	nakika-origin -app specweb -listen :9091
//	nakika-origin -app largefile -listen :9092 -size 67108864 -throttle 8388608
package main

import (
	"flag"
	"log"
	"net/http"

	"nakika/internal/apps/largefile"
	"nakika/internal/apps/simm"
	"nakika/internal/apps/specweb"
	"nakika/internal/core"
	"nakika/internal/httpmsg"
)

func main() {
	app := flag.String("app", "simm", "application to serve: simm, specweb, or largefile")
	listen := flag.String("listen", ":9090", "address to listen on")
	host := flag.String("host", "", "origin host name the site script should reference (default: the app's default host)")
	size := flag.Int64("size", 64<<20, "largefile: object size in bytes")
	throttle := flag.Int64("throttle", 0, "largefile: origin write rate cap in bytes/sec (0 unlimited)")
	flag.Parse()

	// The largefile app streams and throttles its body, so it serves raw
	// HTTP instead of going through the buffered fetcher adapter below.
	if *app == "largefile" {
		origin := largefile.NewOrigin(largefile.Config{Host: *host, Size: *size, ThrottleBytesPerSec: *throttle})
		log.Printf("nakika-origin: serving largefile (%d bytes) on %s", origin.Config().Size, *listen)
		log.Fatal(http.ListenAndServe(*listen, origin))
	}

	var fetcher core.Fetcher
	var siteScript string
	switch *app {
	case "simm":
		origin := simm.NewOrigin(simm.Config{Host: *host})
		fetcher = origin
		siteScript = simm.EdgeScript(origin.Config().Host)
	case "specweb":
		origin := specweb.NewOrigin(specweb.Config{Host: *host})
		fetcher = origin
		siteScript = specweb.EdgeScript(origin.Config().Host)
	default:
		log.Fatalf("nakika-origin: unknown app %q", *app)
	}

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/nakika.js" {
			w.Header().Set("Content-Type", "application/javascript")
			w.Header().Set("Cache-Control", "max-age=300")
			if _, err := w.Write([]byte(siteScript)); err != nil {
				log.Printf("nakika-origin: write: %v", err)
			}
			return
		}
		req, err := httpmsg.FromHTTPRequest(r, 8<<20)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := fetcher.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := resp.WriteTo(w); err != nil {
			log.Printf("nakika-origin: write: %v", err)
		}
	})

	log.Printf("nakika-origin: serving %s on %s", *app, *listen)
	log.Fatal(http.ListenAndServe(*listen, handler))
}
