// Package admin serves a node's observability surface over HTTP: the
// Prometheus /metrics exposition, the /admin/traces dump of the slowest
// recent requests, a human-readable /admin/statusz, and net/http/pprof
// under /debug/pprof/. It binds a separate listener from the proxy front
// (cmd/nakikad's -admin flag) so operators can scrape and profile a node
// without touching the client-facing port.
package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"nakika/internal/metrics"
	"nakika/internal/trace"
)

// Node is the slice of the edge node the admin surface reads. Metrics
// and Traces may return nil (the node was built with observability
// disabled); the endpoints degrade to 503 rather than panicking.
type Node interface {
	Name() string
	Metrics() *metrics.Registry
	Traces() *trace.Ring
	LoadScore() float64
}

// DefaultTraceDump bounds the /admin/traces response when no ?n= is
// given.
const DefaultTraceDump = 32

// NewHandler returns the admin surface for node.
func NewHandler(node Node) http.Handler {
	mux := http.NewServeMux()
	start := time.Now()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := node.Metrics()
		if reg == nil {
			http.Error(w, "metrics disabled on this node", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/admin/traces", func(w http.ResponseWriter, r *http.Request) {
		ring := node.Traces()
		if ring == nil {
			http.Error(w, "tracing disabled on this node", http.StatusServiceUnavailable)
			return
		}
		n := DefaultTraceDump
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dumpSamples(node.Name(), ring.Slowest(n)))
	})
	mux.HandleFunc("/admin/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "node:       %s\n", node.Name())
		fmt.Fprintf(w, "uptime:     %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "load score: %.3f\n", node.LoadScore())
		fmt.Fprintf(w, "goroutines: %d\n", runtime.NumGoroutine())
		fmt.Fprintf(w, "go:         %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
		fmt.Fprintf(w, "endpoints:  /metrics /admin/traces /admin/statusz /debug/pprof/\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// TraceDump is the /admin/traces response shape.
type TraceDump struct {
	Node    string       `json:"node"`
	Count   int          `json:"count"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one recorded request, flattened for the dump: the shared
// cross-node trace id in hex, the stage spans with nanosecond timings,
// and the offload/hedge/lease/fencing activity the request performed.
type SampleJSON struct {
	TraceID string       `json:"trace_id"`
	Node    string       `json:"node"`
	Method  string       `json:"method"`
	URL     string       `json:"url"`
	Start   time.Time    `json:"start"`
	Elapsed int64        `json:"elapsed_ns"`
	Status  int          `json:"status"`
	Spans   []trace.Span `json:"spans,omitempty"`

	SpansDropped int  `json:"spans_dropped,omitempty"`
	Generated    bool `json:"generated,omitempty"`
	FromCache    bool `json:"from_cache,omitempty"`
	Terminated   bool `json:"terminated,omitempty"`
	RejectedBusy bool `json:"rejected_busy,omitempty"`

	Offloaded   bool   `json:"offloaded,omitempty"`
	OffloadPeer string `json:"offload_peer,omitempty"`

	HedgedReads   int32  `json:"hedged_reads,omitempty"`
	HedgeWins     int32  `json:"hedge_wins,omitempty"`
	LeaseAcquires int32  `json:"lease_acquires,omitempty"`
	LeaseDenials  int32  `json:"lease_denials,omitempty"`
	LeaseRenewals int32  `json:"lease_renewals,omitempty"`
	LeaseReleases int32  `json:"lease_releases,omitempty"`
	FencedWrites  int32  `json:"fenced_writes,omitempty"`
	FenceRejects  int32  `json:"fence_rejects,omitempty"`
	FenceToken    uint64 `json:"fence_token,omitempty"`
}

func dumpSamples(node string, samples []*trace.Sample) TraceDump {
	out := TraceDump{Node: node, Count: len(samples), Samples: make([]SampleJSON, 0, len(samples))}
	for _, s := range samples {
		out.Samples = append(out.Samples, SampleJSON{
			TraceID:       fmt.Sprintf("%016x", s.TraceID),
			Node:          s.Node,
			Method:        s.Method,
			URL:           s.URL(),
			Start:         s.Start,
			Elapsed:       int64(s.Elapsed),
			Status:        s.Status,
			Spans:         s.Spans,
			SpansDropped:  s.SpansDropped,
			Generated:     s.Generated,
			FromCache:     s.FromCache,
			Terminated:    s.Terminated,
			RejectedBusy:  s.RejectedBusy,
			Offloaded:     s.Offloaded,
			OffloadPeer:   s.OffloadPeer,
			HedgedReads:   s.HedgedReads,
			HedgeWins:     s.HedgeWins,
			LeaseAcquires: s.LeaseAcquires,
			LeaseDenials:  s.LeaseDenials,
			LeaseRenewals: s.LeaseRenewals,
			LeaseReleases: s.LeaseReleases,
			FencedWrites:  s.FencedWrites,
			FenceRejects:  s.FenceRejects,
			FenceToken:    s.FenceToken,
		})
	}
	return out
}
