// Package admin serves a node's observability surface over HTTP: the
// Prometheus /metrics exposition, the /admin/traces dump of the slowest
// recent requests, a human-readable /admin/statusz, and net/http/pprof
// under /debug/pprof/. It binds a separate listener from the proxy front
// (cmd/nakikad's -admin flag) so operators can scrape and profile a node
// without touching the client-facing port.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"nakika/internal/deploy"
	"nakika/internal/metrics"
	"nakika/internal/trace"
)

// Node is the slice of the edge node the admin surface reads. Metrics
// and Traces may return nil (the node was built with observability
// disabled); the endpoints degrade to 503 rather than panicking.
type Node interface {
	Name() string
	Metrics() *metrics.Registry
	Traces() *trace.Ring
	LoadScore() float64
}

// Deployer is the optional deployment-plane surface. A Node that also
// implements it (core.Node does) gets the /admin/deploy, /admin/rollback,
// and /admin/deployments endpoints; any admin listener on the network can
// publish — the record replicates to every node regardless of which one
// accepted it.
type Deployer interface {
	Deploy(site, script, note string) (uint64, error)
	Rollback(site string, gen uint64) error
	Deployments() []deploy.Status
}

// maxBundleBytes bounds a deploy request body; service scripts are a few
// kilobytes, so a megabyte of headroom is generous.
const maxBundleBytes = 1 << 20

// deployRequest is the POST /admin/deploy body.
type deployRequest struct {
	Site   string `json:"site"`
	Script string `json:"script"`
	Note   string `json:"note,omitempty"`
}

// rollbackRequest is the POST /admin/rollback body.
type rollbackRequest struct {
	Site string `json:"site"`
	Gen  uint64 `json:"gen"`
}

// DefaultTraceDump bounds the /admin/traces response when no ?n= is
// given.
const DefaultTraceDump = 32

// NewHandler returns the admin surface for node.
func NewHandler(node Node) http.Handler {
	mux := http.NewServeMux()
	start := time.Now()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := node.Metrics()
		if reg == nil {
			http.Error(w, "metrics disabled on this node", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/admin/traces", func(w http.ResponseWriter, r *http.Request) {
		ring := node.Traces()
		if ring == nil {
			http.Error(w, "tracing disabled on this node", http.StatusServiceUnavailable)
			return
		}
		n := DefaultTraceDump
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dumpSamples(node.Name(), ring.Slowest(n)))
	})
	mux.HandleFunc("/admin/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "node:       %s\n", node.Name())
		fmt.Fprintf(w, "uptime:     %s\n", time.Since(start).Round(time.Second))
		fmt.Fprintf(w, "load score: %.3f\n", node.LoadScore())
		fmt.Fprintf(w, "goroutines: %d\n", runtime.NumGoroutine())
		fmt.Fprintf(w, "go:         %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
		fmt.Fprintf(w, "endpoints:  /metrics /admin/traces /admin/statusz /admin/deploy /admin/rollback /admin/deployments /debug/pprof/\n")
	})
	if dep, ok := node.(Deployer); ok {
		registerDeployEndpoints(mux, dep)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// registerDeployEndpoints wires the deployment plane's admin API.
func registerDeployEndpoints(mux *http.ServeMux, dep Deployer) {
	mux.HandleFunc("/admin/deploy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req deployRequest
		if err := decodeJSONBody(w, r, &req); err != nil {
			return
		}
		if req.Site == "" || req.Script == "" {
			http.Error(w, "site and script are required", http.StatusBadRequest)
			return
		}
		gen, err := dep.Deploy(req.Site, req.Script, req.Note)
		if err != nil {
			// Validation failures are the client's fault; anything past
			// validation (storage, replication) is the server's.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, map[string]any{"site": req.Site, "gen": gen})
	})
	mux.HandleFunc("/admin/rollback", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req rollbackRequest
		if err := decodeJSONBody(w, r, &req); err != nil {
			return
		}
		if req.Site == "" || req.Gen == 0 {
			http.Error(w, "site and gen are required", http.StatusBadRequest)
			return
		}
		if err := dep.Rollback(req.Site, req.Gen); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, map[string]any{"site": req.Site, "gen": req.Gen})
	})
	mux.HandleFunc("/admin/deployments", func(w http.ResponseWriter, r *http.Request) {
		statuses := dep.Deployments()
		if statuses == nil {
			statuses = []deploy.Status{}
		}
		writeJSON(w, statuses)
	})
}

// decodeJSONBody parses a bounded JSON request body, writing the HTTP
// error itself so handlers just return on failure.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBundleBytes+1))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return err
	}
	if len(body) > maxBundleBytes {
		err := fmt.Errorf("body exceeds %d bytes", maxBundleBytes)
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// TraceDump is the /admin/traces response shape.
type TraceDump struct {
	Node    string       `json:"node"`
	Count   int          `json:"count"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one recorded request, flattened for the dump: the shared
// cross-node trace id in hex, the stage spans with nanosecond timings,
// and the offload/hedge/lease/fencing activity the request performed.
type SampleJSON struct {
	TraceID string       `json:"trace_id"`
	Node    string       `json:"node"`
	Method  string       `json:"method"`
	URL     string       `json:"url"`
	Start   time.Time    `json:"start"`
	Elapsed int64        `json:"elapsed_ns"`
	Status  int          `json:"status"`
	Spans   []trace.Span `json:"spans,omitempty"`

	SpansDropped int  `json:"spans_dropped,omitempty"`
	Generated    bool `json:"generated,omitempty"`
	FromCache    bool `json:"from_cache,omitempty"`
	Terminated   bool `json:"terminated,omitempty"`
	RejectedBusy bool `json:"rejected_busy,omitempty"`

	Offloaded   bool   `json:"offloaded,omitempty"`
	OffloadPeer string `json:"offload_peer,omitempty"`
	Generation  uint64 `json:"gen,omitempty"`

	HedgedReads   int32  `json:"hedged_reads,omitempty"`
	HedgeWins     int32  `json:"hedge_wins,omitempty"`
	LeaseAcquires int32  `json:"lease_acquires,omitempty"`
	LeaseDenials  int32  `json:"lease_denials,omitempty"`
	LeaseRenewals int32  `json:"lease_renewals,omitempty"`
	LeaseReleases int32  `json:"lease_releases,omitempty"`
	FencedWrites  int32  `json:"fenced_writes,omitempty"`
	FenceRejects  int32  `json:"fence_rejects,omitempty"`
	FenceToken    uint64 `json:"fence_token,omitempty"`
}

func dumpSamples(node string, samples []*trace.Sample) TraceDump {
	out := TraceDump{Node: node, Count: len(samples), Samples: make([]SampleJSON, 0, len(samples))}
	for _, s := range samples {
		out.Samples = append(out.Samples, SampleJSON{
			TraceID:       fmt.Sprintf("%016x", s.TraceID),
			Node:          s.Node,
			Method:        s.Method,
			URL:           s.URL(),
			Start:         s.Start,
			Elapsed:       int64(s.Elapsed),
			Status:        s.Status,
			Spans:         s.Spans,
			SpansDropped:  s.SpansDropped,
			Generated:     s.Generated,
			FromCache:     s.FromCache,
			Terminated:    s.Terminated,
			RejectedBusy:  s.RejectedBusy,
			Offloaded:     s.Offloaded,
			OffloadPeer:   s.OffloadPeer,
			Generation:    s.Generation,
			HedgedReads:   s.HedgedReads,
			HedgeWins:     s.HedgeWins,
			LeaseAcquires: s.LeaseAcquires,
			LeaseDenials:  s.LeaseDenials,
			LeaseRenewals: s.LeaseRenewals,
			LeaseReleases: s.LeaseReleases,
			FencedWrites:  s.FencedWrites,
			FenceRejects:  s.FenceRejects,
			FenceToken:    s.FenceToken,
		})
	}
	return out
}
