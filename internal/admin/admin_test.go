package admin_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nakika/internal/admin"
	"nakika/internal/core"
	"nakika/internal/metrics"
	"nakika/internal/trace"
)

// The real edge node must satisfy the admin surface's view of it.
var _ admin.Node = (*core.Node)(nil)

type fakeNode struct {
	reg  *metrics.Registry
	ring *trace.Ring
}

func (f *fakeNode) Name() string               { return "test-node" }
func (f *fakeNode) Metrics() *metrics.Registry { return f.reg }
func (f *fakeNode) Traces() *trace.Ring        { return f.ring }
func (f *fakeNode) LoadScore() float64         { return 1.5 }

func newFakeNode() *fakeNode {
	reg := metrics.NewRegistry()
	reg.NewCounter("nakika_requests_total", "Requests.", nil).Add(7)
	ring := trace.NewRing(8)
	for i, elapsed := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond} {
		s := &trace.Sample{TraceID: uint64(i + 1), Node: "test-node", Method: "GET", Elapsed: elapsed, Status: 200}
		s.SetURL("origin.example", "/page")
		ring.Record(s)
	}
	return &fakeNode{reg: reg, ring: ring}
}

func get(t *testing.T, h *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointServesValidExposition(t *testing.T) {
	srv := httptest.NewServer(admin.NewHandler(newFakeNode()))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics returned %d", code)
	}
	families, err := metrics.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if !families["nakika_requests_total"] {
		t.Fatalf("nakika_requests_total missing from exposition:\n%s", body)
	}
	if !strings.Contains(body, "nakika_requests_total 7") {
		t.Fatalf("counter value not rendered:\n%s", body)
	}
}

func TestTracesEndpointDumpsSlowestFirst(t *testing.T) {
	srv := httptest.NewServer(admin.NewHandler(newFakeNode()))
	defer srv.Close()
	code, body := get(t, srv, "/admin/traces?n=2")
	if code != 200 {
		t.Fatalf("/admin/traces returned %d", code)
	}
	var dump admin.TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("traces dump does not parse: %v\n%s", err, body)
	}
	if dump.Node != "test-node" || dump.Count != 2 {
		t.Fatalf("dump = node %q count %d, want test-node/2", dump.Node, dump.Count)
	}
	// Slowest first: 5ms (id 2), then 2ms (id 3).
	if dump.Samples[0].Elapsed < dump.Samples[1].Elapsed {
		t.Fatalf("samples not sorted by descending elapsed: %+v", dump.Samples)
	}
	if dump.Samples[0].TraceID != "0000000000000002" {
		t.Fatalf("slowest sample trace id = %s, want 0000000000000002", dump.Samples[0].TraceID)
	}
	if dump.Samples[0].URL != "origin.example/page" {
		t.Fatalf("sample url = %q", dump.Samples[0].URL)
	}
}

func TestStatuszAndPprofRespond(t *testing.T) {
	srv := httptest.NewServer(admin.NewHandler(newFakeNode()))
	defer srv.Close()
	code, body := get(t, srv, "/admin/statusz")
	if code != 200 || !strings.Contains(body, "test-node") {
		t.Fatalf("/admin/statusz = %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ returned %d", code)
	}
}

func TestDisabledObservabilityDegradesTo503(t *testing.T) {
	srv := httptest.NewServer(admin.NewHandler(&fakeNode{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != 503 {
		t.Fatalf("/metrics without a registry returned %d, want 503", code)
	}
	if code, _ := get(t, srv, "/admin/traces"); code != 503 {
		t.Fatalf("/admin/traces without a ring returned %d, want 503", code)
	}
}
