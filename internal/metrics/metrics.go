// Package metrics is a dependency-free metrics registry built for Na
// Kika's hot path: counters and gauges are single atomic words,
// histograms are fixed-bucket atomic arrays, and nothing on the
// increment/observe path allocates or takes a lock. Rendering follows
// the Prometheus text exposition format so any standard scraper can
// consume the admin listener's /metrics endpoint.
//
// Most node series are registered as CounterFunc/GaugeFunc callbacks
// that read the node's existing atomic counters at scrape time, so
// exporting them costs the hot path nothing at all.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observe is
// lock-free and allocation-free: a linear scan over a small bound
// array, one atomic add on the bucket, one on the count, and a CAS
// loop folding the observation into the float64 sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. The +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// DefBuckets are latency buckets (seconds) tuned for an edge proxy:
// from 100µs local cache hits to multi-second origin stalls.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Merge folds other into h. Both histograms must share bucket bounds.
// It is safe against concurrent Observe calls on either side; the merge
// is per-bucket atomic (a scrape racing a merge may see a partially
// folded state, never a torn counter).
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d buckets", len(other.bounds), len(h.bounds))
	}
	for i, b := range other.bounds {
		if h.bounds[i] != b {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d: %g vs %g", i, h.bounds[i], b)
		}
	}
	for i := range other.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	s := other.Sum()
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + s)
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// series is one registered time series: a concrete metric or a
// read-at-scrape callback.
type series struct {
	name   string
	labels string // pre-rendered `{k="v",...}` or ""
	fn     func() float64
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered metric families and renders them in
// Prometheus text exposition format. Registration takes a lock (cold
// path); registered metrics are updated without touching the registry.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	byKey map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*family)} }

// Labels are rendered sorted by key; registration-time only, never on
// the hot path.
type Labels map[string]string

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byKey[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byKey[name] = f
		r.fams = append(r.fams, f)
	}
	f.series = append(f.series, s)
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{name: name, labels: renderLabels(labels), fn: func() float64 { return float64(c.Value()) }})
	return c
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{name: name, labels: renderLabels(labels), fn: func() float64 { return float64(g.Value()) }})
	return g
}

// CounterFunc registers a counter whose value is read at scrape time —
// the zero-hot-path-cost way to export an existing atomic.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "counter", &series{name: name, labels: renderLabels(labels), fn: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "gauge", &series{name: name, labels: renderLabels(labels), fn: fn})
}

// NewHistogramSeries registers and returns a histogram series.
func (r *Registry) NewHistogramSeries(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, help, "histogram", &series{name: name, labels: renderLabels(labels), hist: h})
	return h
}

// WriteText renders every registered family in Prometheus text
// exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err := writeHistogram(w, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatValue(s.fn())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, s *series) error {
	h := s.hist
	// Cumulative bucket counts, per the exposition format.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", formatValue(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, h.Count())
	return err
}

// withLabel splices one extra label into a pre-rendered label block.
func withLabel(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
