package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nakika_test_total", "test counter", Labels{"tier": "mem"})
	g := r.NewGauge("nakika_test_gauge", "test gauge", nil)
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 || g.Value() != 5 {
		t.Fatalf("counter=%d gauge=%d, want 5 and 5", c.Value(), g.Value())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nakika_test_total counter",
		`nakika_test_total{tier="mem"} 5`,
		"nakika_test_gauge 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ParseExposition(out); err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramSeries("nakika_req_seconds", "latency", Labels{"node": "n0"}, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-9 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`nakika_req_seconds_bucket{node="n0",le="0.01"} 1`,
		`nakika_req_seconds_bucket{node="n0",le="0.1"} 2`,
		`nakika_req_seconds_bucket{node="n0",le="1"} 3`,
		`nakika_req_seconds_bucket{node="n0",le="+Inf"} 4`,
		`nakika_req_seconds_count{node="n0"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	names, err := ParseExposition(out)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if !names["nakika_req_seconds"] {
		t.Fatalf("histogram family name not reduced from suffixes: %v", names)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
	if err := a.Merge(NewHistogram([]float64{1})); err == nil {
		t.Fatal("merge of mismatched bucket count succeeded")
	}
}

// TestRegistryConcurrentIncrements is the registry race test: counters,
// gauges, and a histogram hammered from many goroutines while scrapes
// render concurrently. Run under -race in CI.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c", nil)
	g := r.NewGauge("g", "g", nil)
	h := r.NewHistogramSeries("h_seconds", "h", nil, DefBuckets)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapers.Add(1)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if c.Value() != workers*per || g.Value() != workers*per {
		t.Fatalf("counter=%d gauge=%d, want %d", c.Value(), g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count=%d, want %d", h.Count(), workers*per)
	}
}

// TestHistogramConcurrentMerge races observers on shard histograms with
// merges into an aggregate, asserting no observation is lost or torn.
func TestHistogramConcurrentMerge(t *testing.T) {
	const shards, per = 4, 4000
	agg := NewHistogram(DefBuckets)
	parts := make([]*Histogram, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		parts[s] = NewHistogram(DefBuckets)
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.002)
			}
		}(parts[s])
	}
	// Merge a snapshot of each shard mid-flight (races Observe on
	// purpose), then once more after quiescence for the exact total.
	for _, p := range parts {
		if err := agg.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	final := NewHistogram(DefBuckets)
	for _, p := range parts {
		if err := final.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if final.Count() != shards*per {
		t.Fatalf("merged count = %d, want %d", final.Count(), shards*per)
	}
	if math.Abs(final.Sum()-float64(shards*per)*0.002) > 1e-6 {
		t.Fatalf("merged sum = %g", final.Sum())
	}
}
