package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseExposition validates Prometheus text exposition format and
// returns the set of series names present (bucket/sum/count suffixes
// reduced to their histogram family name). It is the validator the e2e
// tier runs against a live node's /metrics output: any malformed line
// is an error, so a broken renderer fails the scrape test instead of
// silently shipping garbage.
func ParseExposition(text string) (map[string]bool, error) {
	names := make(map[string]bool)
	typed := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitSeries(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		val := strings.TrimSpace(rest)
		// Timestamps are permitted after the value.
		if i := strings.IndexByte(val, ' '); i >= 0 {
			if _, err := strconv.ParseInt(strings.TrimSpace(val[i+1:]), 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp in %q", ln+1, line)
			}
			val = val[:i]
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" && val != "-Inf" && val != "NaN" {
			return nil, fmt.Errorf("line %d: bad value %q", ln+1, val)
		}
		names[name] = true
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				names[base] = true
			}
		}
	}
	return names, nil
}

// splitSeries splits `name{labels} value` into the series name and the
// remainder after the label block, validating label syntax.
func splitSeries(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed series line %q", line)
	}
	name = line[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Scan the label block, honoring quoted values with escapes.
	j := i + 1
	for j < len(line) && line[j] != '}' {
		if line[j] == '"' {
			j++
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(line) {
				return "", "", fmt.Errorf("unterminated label value in %q", line)
			}
		}
		j++
	}
	if j >= len(line) {
		return "", "", fmt.Errorf("unterminated label block in %q", line)
	}
	return name, line[j+1:], nil
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
