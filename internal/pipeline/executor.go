package pipeline

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/policy"
	"nakika/internal/resource"
	"nakika/internal/script"
	nktrace "nakika/internal/trace"
	"nakika/internal/vocab"
)

// Default well-known script locations (Section 3.1): administrative control
// scripts come from the Na Kika site itself; the site-specific script is the
// nakika.js resource at the site root.
const (
	DefaultClientWallURL = "http://nakika.net/clientwall.js"
	DefaultServerWallURL = "http://nakika.net/serverwall.js"
	SiteScriptName       = "nakika.js"
)

// DefaultMaxStages bounds dynamically scheduled stages so a malicious script
// cannot schedule stages forever.
const DefaultMaxStages = 32

// Executor runs the scripting pipeline for one edge node.
type Executor struct {
	// Loader resolves stage script URLs to loaded stages.
	Loader *Loader
	// Host provides vocabularies during handler execution (same host the
	// loader uses).
	Host vocab.Host
	// FetchOrigin retrieves the original resource when no onRequest handler
	// generated a response; the proxy wires its cache + upstream client in
	// here.
	FetchOrigin func(*httpmsg.Request) (*httpmsg.Response, error)
	// Resources, when non-nil, receives admission decisions, consumption
	// charges, and termination registrations.
	Resources *resource.Manager
	// ClientWallURL and ServerWallURL override the administrative control
	// script locations; node administrators may point these at their own,
	// location-specific policies.
	ClientWallURL string
	ServerWallURL string
	// MaxStages bounds the total number of stages per pipeline; zero means
	// DefaultMaxStages.
	MaxStages int
	// ClientHostLookup maps a client IP to a hostname for client predicates;
	// nil means no hostname information.
	ClientHostLookup func(ip string) string
	// SiteDeployment, when non-nil, resolves a site to its live-deployed
	// site-script stage and deployment generation. The executor consults it
	// exactly once per request, before any stage runs: the whole pipeline —
	// forward pass and backward unwind — executes against that one pinned
	// stage even if a new generation is swapped in mid-request, so no
	// response ever mixes script versions. A (nil, 0) return means no
	// deployment for the site; the stage loads from the cache as usual.
	SiteDeployment func(site string) (*Stage, uint64)
}

// StageTrace records one executed stage for diagnostics and benchmarks.
type StageTrace struct {
	ScriptURL   string
	Matched     bool
	PolicySrc   string
	RanRequest  bool
	RanResponse bool
	Err         string
}

// Trace summarizes a pipeline execution.
type Trace struct {
	// Act is the request's activity record: its cross-node trace id, the
	// span timings of every handler run and the origin fetch, and the
	// hedged-read / lease / fenced-write activity the host layer stamped
	// while this request's handlers ran. It lives inline in the Trace
	// allocation; the executor hands &Act to handler contexts so host
	// vocabularies can record onto it.
	Act nktrace.Act

	Stages       []StageTrace
	Generated    bool
	FromCache    bool
	Terminated   bool
	RejectedBusy bool
	Elapsed      time.Duration
	// Offloaded marks a request the load-shedding layer executed on another
	// node instead of the local pipeline (no stages ran here); OffloadPeer
	// names the node that did the work.
	Offloaded   bool
	OffloadPeer string

	// Generation is the deployment generation of the site script this
	// request executed against (0 when the site has no live deployment).
	// It is pinned when the pipeline starts and never changes mid-request.
	Generation uint64

	// Streamed marks a response served from the chunked large-object tier
	// without materializing the body in memory: header-only scripts saw the
	// headers, while segments flowed to the client lazily. Segments is the
	// object's total segment count and SegmentsResident how many were held
	// locally when the response was formed (the rest resolve from a peer or
	// the origin as the client reads).
	Streamed         bool
	Segments         int
	SegmentsResident int

	// stagesBuf is the inline backing array for Stages: the standard
	// three-stage pipeline records its traces inside the Trace allocation
	// itself instead of growing a separate slice per request.
	stagesBuf [4]StageTrace
}

// RanHandlers reports whether any stage executed a script handler. Callers
// that pool requests use it as the safety gate: a request no script touched
// cannot have been captured by one.
func (t *Trace) RanHandlers() bool {
	for i := range t.Stages {
		if t.Stages[i].RanRequest || t.Stages[i].RanResponse {
			return true
		}
	}
	return t.Generated
}

// Execute runs the full pipeline of Figure 4 for req and returns the
// response to deliver to the client together with an execution trace.
func (e *Executor) Execute(req *httpmsg.Request) (*httpmsg.Response, *Trace, error) {
	start := time.Now()
	trace := &Trace{}
	trace.Stages = trace.stagesBuf[:0]
	trace.Act.ID = req.TraceID
	site := req.SiteKey()

	// Admission control by the resource manager: throttled sites see a
	// server-busy error before any processing happens (requests are dropped
	// early, before resources have been expended).
	if e.Resources != nil && !e.Resources.Admit(site) {
		trace.RejectedBusy = true
		trace.Elapsed = time.Since(start)
		return httpmsg.NewTextResponse(http.StatusServiceUnavailable, "server busy\n"), trace, nil
	}

	// The pipeline registers with the resource manager for its whole
	// lifetime through a kill flag, so termination reaches pipelines that
	// are between phases (for example waiting on the origin fetch), not
	// just ones inside a handler. Handlers additionally register their
	// pooled execution context for the duration of each call (see
	// withHandlerRun) so a running script is interrupted mid-flight.
	var terminated bool
	var killed atomic.Bool
	if e.Resources != nil {
		id := e.Resources.RegisterPipeline(site, func() { killed.Store(true) })
		defer e.Resources.UnregisterPipeline(site, id)
	}

	maxStages := e.MaxStages
	if maxStages <= 0 {
		maxStages = DefaultMaxStages
	}

	// forward is the stack of stage script URLs still to run; the top of the
	// stack is the end of the slice. Both stacks live in fixed-size local
	// arrays — the standard three-stage pipeline never spills to the heap,
	// and dynamically scheduled stages just grow past the array.
	var forwardBuf [8]string
	siteScriptURL := e.siteScriptURL(req)
	forward := append(forwardBuf[:0],
		e.serverWallURL(),
		siteScriptURL,
		e.clientWallURL(),
	)

	// Pin the site's deployed stage (if any) for the life of this request.
	// The backward unwind reuses the *Stage pointers captured on the forward
	// pass, so resolving once here guarantees an atomic view of the
	// deployment: a swap that lands mid-request affects only later requests.
	var deployedStage *Stage
	if e.SiteDeployment != nil {
		deployedStage, trace.Generation = e.SiteDeployment(site)
	}
	type executedStage struct {
		stage  *Stage
		pol    *policy.Policy
		script string
	}
	var backwardBuf [8]executedStage
	backward := backwardBuf[:0]
	var response *httpmsg.Response
	stagesRun := 0

	for len(forward) > 0 && stagesRun < maxStages {
		if killed.Load() {
			terminated = true
			break
		}
		scriptURL := forward[len(forward)-1]
		forward = forward[:len(forward)-1]
		stagesRun++

		st := StageTrace{ScriptURL: scriptURL}
		var stage *Stage
		var err error
		if deployedStage != nil && scriptURL == siteScriptURL {
			stage = deployedStage
		} else {
			stage, err = e.Loader.Load(scriptURL, site)
		}
		if err != nil {
			st.Err = err.Error()
		}
		pol := stage.Match(e.policyInput(req))
		if pol != nil {
			st.Matched = true
			st.PolicySrc = pol.Source
		}
		backward = append(backward, executedStage{stage: stage, pol: pol, script: scriptURL})

		if pol != nil && pol.OnRequest != nil {
			st.RanRequest = true
			spanStart := time.Since(start)
			resp, err := e.runOnRequest(stage, pol, site, &killed, trace, req)
			trace.Act.AddSpan(scriptURL, spanStart, time.Since(start)-spanStart)
			if err != nil {
				if errors.Is(err, script.ErrTerminated) || errors.Is(err, script.ErrStepLimit) || errors.Is(err, script.ErrMemoryLimit) {
					terminated = true
					st.Err = err.Error()
					trace.Stages = append(trace.Stages, st)
					break
				}
				st.Err = err.Error()
			}
			if resp != nil {
				// Handler created a response: reverse direction.
				response = resp
				trace.Generated = true
				trace.Stages = append(trace.Stages, st)
				break
			}
		}
		if pol != nil && len(pol.NextStages) > 0 {
			// Dynamically scheduled stages run directly after this stage but
			// before already scheduled ones: push them so that
			// NextStages[0] pops first.
			for i := len(pol.NextStages) - 1; i >= 0; i-- {
				forward = append(forward, pol.NextStages[i])
			}
		}
		trace.Stages = append(trace.Stages, st)
	}

	if terminated {
		trace.Terminated = true
		trace.Elapsed = time.Since(start)
		e.charge(site, req, nil, trace)
		return httpmsg.NewTextResponse(http.StatusServiceUnavailable, "pipeline terminated\n"), trace, nil
	}

	// Fetch the original resource when no handler generated a response.
	if response == nil {
		if e.FetchOrigin == nil {
			return nil, trace, fmt.Errorf("pipeline: no origin fetcher configured")
		}
		spanStart := time.Since(start)
		resp, err := e.FetchOrigin(req)
		trace.Act.AddSpan("origin", spanStart, time.Since(start)-spanStart)
		if err != nil {
			resp = httpmsg.NewTextResponse(http.StatusBadGateway, "origin fetch failed: "+err.Error()+"\n")
		}
		response = resp
		trace.FromCache = resp.FromCache
	}

	if killed.Load() {
		trace.Terminated = true
		trace.Elapsed = time.Since(start)
		e.charge(site, req, nil, trace)
		return httpmsg.NewTextResponse(http.StatusServiceUnavailable, "pipeline terminated\n"), trace, nil
	}

	// Unwind: run onResponse handlers in reverse order of stage execution.
	for i := len(backward) - 1; i >= 0; i-- {
		ex := backward[i]
		if ex.pol == nil || ex.pol.OnResponse == nil {
			continue
		}
		for j := range trace.Stages {
			if trace.Stages[j].ScriptURL == ex.script {
				trace.Stages[j].RanResponse = true
			}
		}
		spanStart := time.Since(start)
		err := e.runOnResponse(ex.stage, ex.pol, site, &killed, trace, req, response)
		trace.Act.AddSpan(ex.script, spanStart, time.Since(start)-spanStart)
		if err != nil {
			if errors.Is(err, script.ErrTerminated) || errors.Is(err, script.ErrStepLimit) || errors.Is(err, script.ErrMemoryLimit) {
				trace.Terminated = true
				trace.Elapsed = time.Since(start)
				e.charge(site, req, nil, trace)
				return httpmsg.NewTextResponse(http.StatusServiceUnavailable, "pipeline terminated\n"), trace, nil
			}
			for j := range trace.Stages {
				if trace.Stages[j].ScriptURL == ex.script && trace.Stages[j].Err == "" {
					trace.Stages[j].Err = err.Error()
				}
			}
		}
	}

	trace.Elapsed = time.Since(start)
	e.charge(site, req, response, trace)
	return response, trace, nil
}

// withHandlerRun checks a pooled context out of the stage, registers it with
// the resource manager for the duration of fn (so congestion control can
// terminate the handler mid-flight), and runs fn. A pipeline whose kill
// flag was already raised does not start another handler.
func (e *Executor) withHandlerRun(stage *Stage, site string, killed *atomic.Bool, fn func(run *Run) error) error {
	if killed.Load() {
		return script.ErrTerminated
	}
	return stage.WithRun(func(run *Run) error {
		if e.Resources != nil {
			id := e.Resources.RegisterPipeline(site, run.Ctx.Terminate)
			defer e.Resources.UnregisterPipeline(site, id)
		}
		if killed.Load() {
			return script.ErrTerminated
		}
		return fn(run)
	})
}

// runOnRequest executes a policy's onRequest handler against req and returns
// the response it produced, if any.
func (e *Executor) runOnRequest(stage *Stage, pol *policy.Policy, site string, killed *atomic.Bool, trace *Trace, req *httpmsg.Request) (*httpmsg.Response, error) {
	var produced *httpmsg.Response
	err := e.withHandlerRun(stage, site, killed, func(run *Run) error {
		ctx := run.Ctx
		ctx.Act = &trace.Act
		defer func() { ctx.Act = nil }()
		vocab.BindRequest(ctx, req)
		// Bind a fresh response the handler may choose to fill from scratch.
		generated := vocab.NewGeneratedResponse()
		vocab.BindResponse(ctx, generated)
		beforeSteps, beforeHeap := ctx.Steps(), ctx.HeapBytes()
		ret, err := ctx.Call(run.Handler(pol.OnRequest), script.Undefined{})
		e.chargeSteps(stage.Site, ctx.Steps()-beforeSteps, ctx.HeapBytes()-beforeHeap)
		if err != nil {
			return err
		}
		// A handler creates a response by terminating the request, by
		// writing to the bound Response, or by returning a response-shaped
		// object.
		if t := req.Terminated(); t != nil {
			produced = t
			req.ClearTermination()
			return nil
		}
		if generated.Generated {
			produced = generated
			return nil
		}
		if obj, ok := ret.(*script.Object); ok {
			if resp := scriptObjectToResponse(obj); resp != nil {
				produced = resp
			}
		}
		return nil
	})
	return produced, err
}

// runOnResponse executes a policy's onResponse handler against resp.
func (e *Executor) runOnResponse(stage *Stage, pol *policy.Policy, site string, killed *atomic.Bool, trace *Trace, req *httpmsg.Request, resp *httpmsg.Response) error {
	return e.withHandlerRun(stage, site, killed, func(run *Run) error {
		ctx := run.Ctx
		ctx.Act = &trace.Act
		defer func() { ctx.Act = nil }()
		vocab.BindRequest(ctx, req)
		vocab.BindResponse(ctx, resp)
		beforeSteps, beforeHeap := ctx.Steps(), ctx.HeapBytes()
		_, err := ctx.Call(run.Handler(pol.OnResponse), script.Undefined{})
		e.chargeSteps(stage.Site, ctx.Steps()-beforeSteps, ctx.HeapBytes()-beforeHeap)
		return err
	})
}

// chargeSteps reports the CPU and memory consumed by one handler execution
// (deltas over the reused context's counters) to the resource manager.
func (e *Executor) chargeSteps(site string, steps, heapBytes int64) {
	if e.Resources == nil {
		return
	}
	if steps > 0 {
		e.Resources.Charge(site, resource.CPU, float64(steps))
	}
	if heapBytes > 0 {
		e.Resources.Charge(site, resource.Memory, float64(heapBytes))
	}
}

// charge records per-request bandwidth, bytes transferred, and running time.
func (e *Executor) charge(site string, req *httpmsg.Request, resp *httpmsg.Response, trace *Trace) {
	if e.Resources == nil {
		return
	}
	bytes := float64(len(req.Body))
	if resp != nil {
		// TotalLen covers streamed bodies (segments the client will pull)
		// as well as in-memory ones.
		bytes += float64(resp.TotalLen())
	}
	if bytes > 0 {
		e.Resources.Charge(site, resource.Bandwidth, bytes)
		e.Resources.Charge(site, resource.BytesTransferred, bytes)
	}
	e.Resources.Charge(site, resource.RunningTime, trace.Elapsed.Seconds())
}

// policyInput converts the request into the predicate evaluation input.
func (e *Executor) policyInput(req *httpmsg.Request) policy.Input {
	in := policy.Input{
		Host:     req.Host(),
		Port:     req.URL.Port(),
		Path:     req.Path(),
		ClientIP: req.ClientIP,
		Method:   req.Method,
		Header:   req.Header,
	}
	if h := req.Header.Get("X-Na-Kika-Client-Host"); h != "" {
		in.ClientHost = h
	} else if e.ClientHostLookup != nil {
		in.ClientHost = e.ClientHostLookup(req.ClientIP)
	}
	return in
}

func (e *Executor) clientWallURL() string {
	if e.ClientWallURL != "" {
		return e.ClientWallURL
	}
	return DefaultClientWallURL
}

func (e *Executor) serverWallURL() string {
	if e.ServerWallURL != "" {
		return e.ServerWallURL
	}
	return DefaultServerWallURL
}

// siteScriptURL returns the nakika.js location for the request's site,
// accessed relative to the server's domain (comparable to robots.txt).
func (e *Executor) siteScriptURL(req *httpmsg.Request) string {
	host := req.URL.Host
	scheme := req.URL.Scheme
	if scheme == "" {
		scheme = "http"
	}
	return scheme + "://" + host + "/" + SiteScriptName
}

// scriptObjectToResponse converts a { status, headers, body } object returned
// by an onRequest handler into a response; it returns nil when the object
// does not look like a response.
func scriptObjectToResponse(obj *script.Object) *httpmsg.Response {
	statusVal, hasStatus := obj.Get("status")
	bodyVal, hasBody := obj.Get("body")
	if !hasStatus && !hasBody {
		return nil
	}
	status := 200
	if hasStatus {
		status = script.ToInt(statusVal)
	}
	if status < 100 || status > 599 {
		return nil
	}
	resp := httpmsg.NewResponse(status)
	resp.Generated = true
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	if hv, ok := obj.Get("headers"); ok {
		if ho, ok := hv.(*script.Object); ok {
			for _, k := range ho.Keys() {
				v, _ := ho.Get(k)
				resp.Header.Set(k, script.ToString(v))
			}
		}
	}
	if hasBody {
		switch b := bodyVal.(type) {
		case *script.ByteArray:
			resp.SetBody(append([]byte(nil), b.Data...))
		default:
			if !script.IsNullish(b) {
				resp.SetBodyString(script.ToString(b))
			}
		}
	}
	return resp
}

// SiteOf extracts the site (host without port) from a script URL; used by
// callers that need to attribute dynamically scheduled stages to their
// hosting site.
func SiteOf(scriptURL string) string {
	u := scriptURL
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	if i := strings.IndexAny(u, "/:"); i >= 0 {
		u = u[:i]
	}
	return strings.ToLower(u)
}
