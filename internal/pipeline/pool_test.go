package pipeline

import (
	"sync"
	"testing"
	"time"

	"nakika/internal/script"
	"nakika/internal/vocab"
)

const poolTestScript = `
	var hits = 0;
	var p = new Policy();
	p.onResponse = function() { hits = hits + 1; };
	p.register();
`

func poolTestLoader(poolSize int) *Loader {
	l := NewLoader(vocab.NopHost{}, script.Limits{})
	l.ContextPoolSize = poolSize
	return l
}

// TestPoolRunsHandlersInParallel drives N concurrent runs through one stage
// and requires them all to be inside WithRun at the same time with distinct
// contexts; a single shared context would deadlock the barrier.
func TestPoolRunsHandlersInParallel(t *testing.T) {
	const n = 4
	l := poolTestLoader(n)
	st, err := l.LoadSource("http://pool.example.org/nakika.js", "pool.example.org", poolTestScript)
	if err != nil {
		t.Fatal(err)
	}
	var arrived sync.WaitGroup
	arrived.Add(n)
	release := make(chan struct{})
	var mu sync.Mutex
	ctxs := make(map[*script.Context]bool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := st.WithRun(func(run *Run) error {
				mu.Lock()
				ctxs[run.Ctx] = true
				mu.Unlock()
				arrived.Done()
				<-release
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	arrived.Wait() // deadlocks here if the stage serializes runs
	close(release)
	wg.Wait()
	if len(ctxs) != n {
		t.Errorf("distinct contexts = %d, want %d", len(ctxs), n)
	}
	if st.PooledContexts() != n {
		t.Errorf("forked contexts = %d, want %d", st.PooledContexts(), n)
	}
}

// TestPoolBoundBlocks verifies the pool is a hard cap: with a bound of 2, a
// third concurrent run waits until a context is released.
func TestPoolBoundBlocks(t *testing.T) {
	l := poolTestLoader(2)
	st, err := l.LoadSource("http://cap.example.org/nakika.js", "cap.example.org", poolTestScript)
	if err != nil {
		t.Fatal(err)
	}
	var arrived sync.WaitGroup
	arrived.Add(2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = st.WithRun(func(run *Run) error {
				arrived.Done()
				<-release
				return nil
			})
		}()
	}
	arrived.Wait()
	third := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = st.WithRun(func(run *Run) error { return nil })
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("third run should block while the pool is exhausted")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-third:
	case <-time.After(2 * time.Second):
		t.Fatal("third run should proceed once a context is released")
	}
	wg.Wait()
	if st.PooledContexts() > 2 {
		t.Errorf("pool forked %d contexts, cap is 2", st.PooledContexts())
	}
}

// TestPoolIsolatesScriptGlobals checks that concurrent runs mutate fork-local
// copies of the stage's globals, not one shared heap.
func TestPoolIsolatesScriptGlobals(t *testing.T) {
	l := poolTestLoader(3)
	st, err := l.LoadSource("http://iso.example.org/nakika.js", "iso.example.org", poolTestScript)
	if err != nil {
		t.Fatal(err)
	}
	pol := st.Policies()[0]
	var arrived sync.WaitGroup
	arrived.Add(3)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := st.WithRun(func(run *Run) error {
				arrived.Done()
				<-release
				if _, err := run.Ctx.Call(run.Handler(pol.OnResponse), script.Undefined{}); err != nil {
					return err
				}
				v, _ := run.Ctx.Global("hits")
				if script.ToNumber(v) != 1 {
					t.Errorf("hits = %v in fork, want 1 (fork-local state)", v)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	arrived.Wait()
	close(release)
	wg.Wait()
	// The pristine context is never executed in; its globals stay untouched.
	if v, _ := st.Context().Global("hits"); script.ToNumber(v) != 0 {
		t.Errorf("pristine hits = %v, want 0", v)
	}
}

// TestPoolForkChargesSite verifies forking is charged to the stage's site.
func TestPoolForkChargesSite(t *testing.T) {
	l := poolTestLoader(2)
	var mu sync.Mutex
	charges := make(map[string]int64)
	l.ForkCharge = func(site string, heapBytes int64) {
		mu.Lock()
		defer mu.Unlock()
		charges[site] += heapBytes
	}
	st, err := l.LoadSource("http://charge.example.org/nakika.js", "charge.example.org", poolTestScript)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithRun(func(run *Run) error { return nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if charges["charge.example.org"] <= 0 {
		t.Errorf("fork charge = %v, want > 0", charges["charge.example.org"])
	}
}

// TestPoolInstanceRecoversAfterLimit verifies a pooled context that crossed
// its step budget is reset on release rather than returned poisoned: with a
// pool of one, the very next run draws the same instance and must succeed.
func TestPoolInstanceRecoversAfterLimit(t *testing.T) {
	l := NewLoader(vocab.NopHost{}, script.Limits{MaxSteps: 20_000})
	l.ContextPoolSize = 1
	st, err := l.LoadSource("http://limit.example.org/nakika.js", "limit.example.org", poolTestScript)
	if err != nil {
		t.Fatal(err)
	}
	err = st.WithRun(func(run *Run) error {
		_, err := run.Ctx.RunSource(`var t = 0; for (var i = 0; i < 100000; i++) { t += i; }`, "hog.js")
		if err == nil {
			t.Error("expected the hog to exceed the step limit")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = st.WithRun(func(run *Run) error {
		if _, err := run.Ctx.RunSource(`1 + 1`, "ok.js"); err != nil {
			t.Errorf("pooled context returned poisoned: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEmptyStageHasNoRun verifies that negative-cached stages report a usable
// error instead of handing out a nil context.
func TestEmptyStageHasNoRun(t *testing.T) {
	st := &Stage{URL: "http://none.example.org/nakika.js", Empty: true}
	if err := st.WithRun(func(run *Run) error { return nil }); err == nil {
		t.Error("empty stage should refuse to run handlers")
	}
}
