// Package pipeline implements Na Kika's scripting pipeline: the Figure 4
// EXECUTE-PIPELINE algorithm that interleaves stage scheduling with
// onRequest event-handler execution, fetches the original resource when no
// handler created a response, and then unwinds the stages' onResponse
// handlers in reverse order.
package pipeline

import (
	"fmt"
	"sync"

	"nakika/internal/cache"
	"nakika/internal/httpmsg"
	"nakika/internal/policy"
	"nakika/internal/script"
	"nakika/internal/vocab"
)

// Stage is a loaded pipeline stage: the policies registered by one script
// URL, the decision tree over them, and the reusable scripting context their
// event handlers execute in. Contexts are reused across event-handler
// executions (Section 4 of the paper) and protected by a mutex so concurrent
// pipelines serialize on a stage rather than sharing mutable globals.
type Stage struct {
	// URL is the script URL this stage was loaded from.
	URL string
	// Site is the site the stage's resource consumption is charged to.
	Site string
	// Empty marks a stage whose script does not exist (negative cache), for
	// example a site without a nakika.js.
	Empty bool

	mu   sync.Mutex
	ctx  *script.Context
	tree *policy.Tree
}

// Match returns the closest valid policy for the input, or nil.
func (s *Stage) Match(in policy.Input) *policy.Policy {
	if s.Empty || s.tree == nil {
		return nil
	}
	return s.tree.Match(in)
}

// Policies returns the stage's registered policies (diagnostics, tests).
func (s *Stage) Policies() []*policy.Policy {
	if s.tree == nil {
		return nil
	}
	return s.tree.Policies()
}

// Context returns the stage's scripting context. Callers must hold the stage
// via WithContext for anything that executes script code.
func (s *Stage) Context() *script.Context { return s.ctx }

// WithContext runs fn while holding the stage's execution lock. The context
// is reset between executions only when the previous run was terminated.
func (s *Stage) WithContext(fn func(ctx *script.Context) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx == nil {
		return fmt.Errorf("pipeline: stage %s has no context", s.URL)
	}
	if s.ctx.Terminated() {
		s.ctx.Reset()
	}
	return fn(s.ctx)
}

// Loader fetches stage scripts through the host (and therefore through the
// proxy cache), evaluates them, and caches the resulting stages keyed by
// script URL. This realizes the prototype's caching of decision trees and
// scripting contexts as well as its negative caching of missing nakika.js
// resources.
type Loader struct {
	// Host provides script fetching and the vocabularies installed into
	// stage contexts.
	Host vocab.Host
	// Limits bounds each stage context.
	Limits script.Limits
	// stages caches loaded stages by script URL.
	stages *cache.Memo[*Stage]
	// missing caches script URLs known not to exist.
	missing *cache.Memo[bool]
}

// NewLoader returns a loader backed by host.
func NewLoader(host vocab.Host, limits script.Limits) *Loader {
	return &Loader{
		Host:    host,
		Limits:  limits,
		stages:  cache.NewMemo[*Stage](0, 4096),
		missing: cache.NewMemo[bool](0, 4096),
	}
}

// InvalidateStage drops the cached stage for scriptURL so the next load
// re-fetches and re-evaluates it; the node calls this when a cached script
// response expires.
func (l *Loader) InvalidateStage(scriptURL string) {
	l.stages.Delete(scriptURL)
	l.missing.Delete(scriptURL)
}

// CachedStages returns the number of cached stages (diagnostics).
func (l *Loader) CachedStages() int { return l.stages.Len() }

// Load returns the stage for scriptURL, charging it to site. Missing scripts
// (404 or fetch failure) yield an Empty stage that is negatively cached.
func (l *Loader) Load(scriptURL, site string) (*Stage, error) {
	if st, ok := l.stages.Get(scriptURL); ok {
		return st, nil
	}
	if miss, ok := l.missing.Get(scriptURL); ok && miss {
		return &Stage{URL: scriptURL, Site: site, Empty: true}, nil
	}
	req, err := httpmsg.NewRequest("GET", scriptURL)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage url %q: %w", scriptURL, err)
	}
	resp, err := l.Host.Fetch(req)
	if err != nil || resp == nil || resp.Status != 200 {
		l.missing.Put(scriptURL, true)
		return &Stage{URL: scriptURL, Site: site, Empty: true}, nil
	}
	st, err := l.compile(scriptURL, site, string(resp.Body))
	if err != nil {
		// A script that fails to parse or evaluate contributes no policies;
		// it must not take the node down. The error is reported so the trace
		// can surface it.
		l.missing.Put(scriptURL, true)
		return &Stage{URL: scriptURL, Site: site, Empty: true}, err
	}
	l.stages.Put(scriptURL, st)
	return st, nil
}

// LoadSource compiles a stage directly from source text; used by tests, by
// Na Kika Pages, and by extensions that generate stage code dynamically (the
// blacklist extension in Section 5.4).
func (l *Loader) LoadSource(scriptURL, site, source string) (*Stage, error) {
	st, err := l.compile(scriptURL, site, source)
	if err != nil {
		return nil, err
	}
	l.stages.Put(scriptURL, st)
	return st, nil
}

func (l *Loader) compile(scriptURL, site, source string) (*Stage, error) {
	ctx := script.NewContext(l.Limits)
	reg := &vocab.Registry{}
	vocab.InstallPolicyConstructor(ctx, reg)
	vocab.Install(ctx, l.Host, site)
	// Stage scripts run without a bound Request/Response: registration-time
	// code only declares policies. Handlers run later with bindings.
	if _, err := ctx.RunSource(source, scriptURL); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate %s: %w", scriptURL, err)
	}
	policies := make([]*policy.Policy, 0, len(reg.Objects)+2)
	for _, obj := range reg.Objects {
		p, err := policy.FromScriptObject(obj, scriptURL)
		if err != nil {
			return nil, fmt.Errorf("pipeline: policy in %s: %w", scriptURL, err)
		}
		policies = append(policies, p)
	}
	// Top-level onRequest/onResponse assignments (without a policy object)
	// form an implicit catch-all policy, which is how the simplest scripts
	// in the paper are written (Figure 2).
	implicit := &policy.Policy{Source: scriptURL}
	if v, ok := ctx.Global("onRequest"); ok && script.Callable(v) {
		implicit.OnRequest = v
	}
	if v, ok := ctx.Global("onResponse"); ok && script.Callable(v) {
		implicit.OnResponse = v
	}
	if v, ok := ctx.Global("nextStages"); ok {
		if arr, isArr := v.(*script.Array); isArr {
			for _, e := range arr.Elems {
				implicit.NextStages = append(implicit.NextStages, script.ToString(e))
			}
		}
	}
	if implicit.HasHandlers() {
		policies = append(policies, implicit)
	}
	return &Stage{
		URL:  scriptURL,
		Site: site,
		ctx:  ctx,
		tree: policy.NewTree(policies),
	}, nil
}
