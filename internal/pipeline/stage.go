// Package pipeline implements Na Kika's scripting pipeline: the Figure 4
// EXECUTE-PIPELINE algorithm that interleaves stage scheduling with
// onRequest event-handler execution, fetches the original resource when no
// handler created a response, and then unwinds the stages' onResponse
// handlers in reverse order.
package pipeline

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"nakika/internal/cache"
	"nakika/internal/httpmsg"
	"nakika/internal/policy"
	"nakika/internal/script"
	"nakika/internal/vocab"
)

// DefaultContextPoolSize returns the default bound on a stage's context pool:
// one ready context per schedulable CPU, so a fully loaded node can run one
// handler per core without serializing on a stage.
func DefaultContextPoolSize() int { return runtime.GOMAXPROCS(0) }

// Stage is a loaded pipeline stage: the policies registered by one script
// URL, the decision tree over them, and a bounded pool of ready scripting
// contexts their event handlers execute in. The pristine context produced by
// evaluating the stage script is kept as an immutable snapshot; executions
// run in forks of it (Section 4's context reuse, extended so N concurrent
// requests execute N handlers for the same stage in parallel instead of
// serializing on a single context lock).
type Stage struct {
	// URL is the script URL this stage was loaded from.
	URL string
	// Site is the site the stage's resource consumption is charged to.
	Site string
	// Empty marks a stage whose script does not exist (negative cache), for
	// example a site without a nakika.js.
	Empty bool

	pristine *script.Context
	tree     *policy.Tree

	// handlerRoots are the event-handler values extracted from the pristine
	// context (policy onRequest/onResponse functions); each fork translates
	// them into its own heap so concurrent executions share no script state.
	handlerRoots []script.Value

	// forkCharge, when non-nil, charges the cost of forking a new pool
	// context (the pristine heap size, in bytes) to the stage's site.
	forkCharge func(site string, heapBytes int64)

	pool    chan *stageInstance
	mu      sync.Mutex // guards created
	created int
	cap     int
}

// stageInstance is one pooled execution context plus the translation from
// pristine handler values to this fork's copies.
type stageInstance struct {
	ctx      *script.Context
	handlers map[script.Value]script.Value
}

// newStage builds a runnable stage around a pristine post-evaluation context.
func newStage(url, site string, pristine *script.Context, tree *policy.Tree, poolSize int, forkCharge func(string, int64)) *Stage {
	if poolSize <= 0 {
		poolSize = DefaultContextPoolSize()
	}
	s := &Stage{
		URL:        url,
		Site:       site,
		pristine:   pristine,
		tree:       tree,
		forkCharge: forkCharge,
		pool:       make(chan *stageInstance, poolSize),
		cap:        poolSize,
	}
	for _, p := range tree.Policies() {
		if p.OnRequest != nil {
			s.handlerRoots = append(s.handlerRoots, p.OnRequest)
		}
		if p.OnResponse != nil {
			s.handlerRoots = append(s.handlerRoots, p.OnResponse)
		}
	}
	return s
}

// Match returns the closest valid policy for the input, or nil.
func (s *Stage) Match(in policy.Input) *policy.Policy {
	if s.Empty || s.tree == nil {
		return nil
	}
	return s.tree.Match(in)
}

// Policies returns the stage's registered policies (diagnostics, tests).
func (s *Stage) Policies() []*policy.Policy {
	if s.tree == nil {
		return nil
	}
	return s.tree.Policies()
}

// Context returns the stage's pristine scripting context (diagnostics,
// tests). Executions never run in it directly; use WithRun.
func (s *Stage) Context() *script.Context { return s.pristine }

// PoolSize returns the stage's context pool bound (diagnostics, tests).
func (s *Stage) PoolSize() int { return s.cap }

// PooledContexts returns how many pool contexts have been forked so far
// (diagnostics, tests).
func (s *Stage) PooledContexts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created
}

// Run is one checked-out pooled execution context. It is valid only for the
// duration of the WithRun callback that produced it.
type Run struct {
	// Ctx is the scripting context the caller may bind messages into and run
	// handlers in; it is owned exclusively by this run until WithRun returns.
	Ctx *script.Context

	inst *stageInstance
}

// Handler translates a handler value extracted from the stage's pristine
// context (a policy's OnRequest/OnResponse) into this run's forked copy.
// Values that were not part of the stage's handler set pass through
// unchanged.
func (r *Run) Handler(v script.Value) script.Value {
	if t, ok := r.inst.handlers[v]; ok {
		return t
	}
	return v
}

// WithRun checks a ready context out of the stage's pool, runs fn with it,
// and returns it. New contexts are forked from the pristine snapshot on
// demand up to the pool bound; once the bound is reached callers block until
// a context is released. Terminated contexts are reset before reuse.
func (s *Stage) WithRun(fn func(run *Run) error) error {
	inst, err := s.acquire()
	if err != nil {
		return err
	}
	defer s.release(inst)
	return fn(&Run{Ctx: inst.ctx, inst: inst})
}

func (s *Stage) acquire() (*stageInstance, error) {
	if s.pristine == nil {
		return nil, fmt.Errorf("pipeline: stage %s has no context", s.URL)
	}
	select {
	case inst := <-s.pool:
		return inst, nil
	default:
	}
	s.mu.Lock()
	if s.created < s.cap {
		s.created++
		s.mu.Unlock()
		return s.fork(), nil
	}
	s.mu.Unlock()
	return <-s.pool, nil
}

func (s *Stage) release(inst *stageInstance) {
	// Reset unconditionally: it clears termination and zeroes the cumulative
	// step/heap counters while keeping the global environment. Counters must
	// not survive release — a run that crossed MaxSteps/MaxHeapBytes would
	// otherwise return the instance to the pool poisoned, failing every
	// future request it serves. Handler charging uses per-run deltas, so
	// zeroing between runs is accounting-safe.
	inst.ctx.Reset()
	s.pool <- inst
}

// fork clones the pristine context (and the handler values rooted in it)
// into a new pool instance, charging the fork's heap cost to the site.
func (s *Stage) fork() *stageInstance {
	ctx, translated := s.pristine.Fork(s.handlerRoots...)
	handlers := make(map[script.Value]script.Value, len(s.handlerRoots))
	for i, root := range s.handlerRoots {
		handlers[root] = translated[i]
	}
	if s.forkCharge != nil {
		s.forkCharge(s.Site, s.pristine.HeapBytes())
	}
	return &stageInstance{ctx: ctx, handlers: handlers}
}

// Loader fetches stage scripts through the host (and therefore through the
// proxy cache), evaluates them, and caches the resulting stages keyed by
// script URL. This realizes the prototype's caching of decision trees and
// scripting contexts as well as its negative caching of missing nakika.js
// resources.
type Loader struct {
	// Host provides script fetching and the vocabularies installed into
	// stage contexts.
	Host vocab.Host
	// Limits bounds each stage context.
	Limits script.Limits
	// ContextPoolSize bounds every stage's pool of ready contexts; zero
	// means DefaultContextPoolSize().
	ContextPoolSize int
	// ForkCharge, when non-nil, is invoked with the stage's site and the
	// pristine context's heap size whenever a new pool context is forked, so
	// the node can charge context replication to the site's resource budget.
	ForkCharge func(site string, heapBytes int64)
	// stages caches loaded stages by script URL.
	stages *cache.Memo[*Stage]
	// missing caches the shared Empty stage for script URLs known not to
	// exist, so the (very hot) no-script path returns the cached stage
	// instead of allocating a fresh one per request.
	missing *cache.Memo[*Stage]

	// loads coalesces concurrent cold loads of one script URL so a stampede
	// on a scripted site evaluates the script once instead of once per
	// request.
	loadMu sync.Mutex
	loads  map[string]*loadFlight
}

// loadFlight is one in-progress stage load shared by concurrent callers.
type loadFlight struct {
	done chan struct{}
	st   *Stage
	err  error
}

// NewLoader returns a loader backed by host.
func NewLoader(host vocab.Host, limits script.Limits) *Loader {
	return &Loader{
		Host:    host,
		Limits:  limits,
		stages:  cache.NewMemo[*Stage](0, 4096),
		missing: cache.NewMemo[*Stage](0, 4096),
	}
}

// InvalidateStage drops the cached stage for scriptURL so the next load
// re-fetches and re-evaluates it; the node calls this when a cached script
// response expires.
func (l *Loader) InvalidateStage(scriptURL string) {
	l.stages.Delete(scriptURL)
	l.missing.Delete(scriptURL)
}

// CachedStages returns the number of cached stages (diagnostics).
func (l *Loader) CachedStages() int { return l.stages.Len() }

// Load returns the stage for scriptURL, charging it to site. Missing scripts
// (404 or fetch failure) yield an Empty stage that is negatively cached.
// Concurrent cold loads of the same URL coalesce into one fetch+compile.
func (l *Loader) Load(scriptURL, site string) (*Stage, error) {
	if st, ok := l.stages.Get(scriptURL); ok {
		return st, nil
	}
	if st, ok := l.missing.Get(scriptURL); ok {
		return st, nil
	}
	l.loadMu.Lock()
	if l.loads == nil {
		l.loads = make(map[string]*loadFlight)
	}
	if f, ok := l.loads[scriptURL]; ok {
		l.loadMu.Unlock()
		<-f.done
		return f.st, f.err
	}
	f := &loadFlight{done: make(chan struct{})}
	l.loads[scriptURL] = f
	l.loadMu.Unlock()
	// Complete the flight even if loadSlow panics, so the URL never wedges.
	defer func() {
		if f.st == nil && f.err == nil {
			f.err = fmt.Errorf("pipeline: load of %s panicked", scriptURL)
		}
		l.loadMu.Lock()
		delete(l.loads, scriptURL)
		l.loadMu.Unlock()
		close(f.done)
	}()
	f.st, f.err = l.loadSlow(scriptURL, site)
	return f.st, f.err
}

// loadSlow fetches and compiles a stage (the cold path behind Load's caches
// and coalescing).
func (l *Loader) loadSlow(scriptURL, site string) (*Stage, error) {
	// Re-check the memos: a previous flight may have completed between this
	// caller's miss and its flight winning the slot; without this the stage
	// would be fetched and compiled a second time and replace the first
	// stage's already-forked context pool.
	if st, ok := l.stages.Get(scriptURL); ok {
		return st, nil
	}
	if st, ok := l.missing.Get(scriptURL); ok {
		return st, nil
	}
	req, err := httpmsg.NewRequest("GET", scriptURL)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage url %q: %w", scriptURL, err)
	}
	resp, err := l.Host.Fetch(req)
	if err != nil || resp == nil || resp.Status != 200 {
		return l.cacheEmpty(scriptURL, site), nil
	}
	st, err := l.compile(scriptURL, site, string(resp.Body))
	if err != nil {
		// A script that fails to parse or evaluate contributes no policies;
		// it must not take the node down. The error is reported so the trace
		// can surface it.
		return l.cacheEmpty(scriptURL, site), err
	}
	l.stages.Put(scriptURL, st)
	return st, nil
}

// cacheEmpty records and returns the shared negative-cache stage for a
// script URL. Empty stages never run handlers or charge resources, so one
// instance is safely shared by every request (the Site recorded is whichever
// request populated the entry).
func (l *Loader) cacheEmpty(scriptURL, site string) *Stage {
	st := &Stage{URL: scriptURL, Site: site, Empty: true}
	l.missing.Put(scriptURL, st)
	return st
}

// LoadSource compiles a stage directly from source text; used by tests, by
// Na Kika Pages, and by extensions that generate stage code dynamically (the
// blacklist extension in Section 5.4).
func (l *Loader) LoadSource(scriptURL, site, source string) (*Stage, error) {
	st, err := l.compile(scriptURL, site, source)
	if err != nil {
		return nil, err
	}
	l.stages.Put(scriptURL, st)
	return st, nil
}

// Compile builds a stage directly from source text WITHOUT touching the
// loader's URL-keyed caches. The deployment plane uses it to compile a
// published bundle into the stage it atomically swaps in: the stage is owned
// by the per-site deployment table, and cached stages for the same site's
// regular nakika.js URL must not be replaced or evicted by a deploy.
func (l *Loader) Compile(scriptURL, site, source string) (*Stage, error) {
	return l.compile(scriptURL, site, source)
}

// Validate checks a script bundle before the deployment plane accepts it:
// the script must parse, every free identifier must resolve against the
// installed vocabulary, and a canary compile over no-op host operations must
// evaluate without error or panic. Validation runs entirely against
// vocab.NopHost, so a malicious or broken registration-time script cannot
// touch the node's real cache, state, or leases — and a panic rejects the
// bundle instead of crashing the node.
func Validate(site, source string, limits script.Limits) (err error) {
	prog, err := script.Parse(source, "deploy://"+site+"/"+SiteScriptName)
	if err != nil {
		return fmt.Errorf("pipeline: validate %s: %w", site, err)
	}
	vctx, _ := vocab.ValidationContext(site, limits)
	allowed := make(map[string]bool)
	for _, name := range vctx.GlobalNames() {
		allowed[name] = true
	}
	var unknown []string
	for _, name := range script.FreeIdents(prog) {
		if !allowed[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		return fmt.Errorf("pipeline: validate %s: script references unknown identifiers: %s", site, strings.Join(unknown, ", "))
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: validate %s: canary compile panicked: %v", site, r)
		}
	}()
	canary := NewLoader(vocab.NopHost{}, limits)
	if _, cerr := canary.compile("deploy://"+site+"/"+SiteScriptName, site, source); cerr != nil {
		return fmt.Errorf("pipeline: validate %s: %w", site, cerr)
	}
	return nil
}

func (l *Loader) compile(scriptURL, site, source string) (*Stage, error) {
	ctx := script.NewContext(l.Limits)
	reg := &vocab.Registry{}
	vocab.InstallPolicyConstructor(ctx, reg)
	vocab.Install(ctx, l.Host, site)
	// Stage scripts run without a bound Request/Response: registration-time
	// code only declares policies. Handlers run later with bindings.
	if _, err := ctx.RunSource(source, scriptURL); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate %s: %w", scriptURL, err)
	}
	registered := reg.Registered()
	policies := make([]*policy.Policy, 0, len(registered)+2)
	for _, obj := range registered {
		p, err := policy.FromScriptObject(obj, scriptURL)
		if err != nil {
			return nil, fmt.Errorf("pipeline: policy in %s: %w", scriptURL, err)
		}
		policies = append(policies, p)
	}
	// Top-level onRequest/onResponse assignments (without a policy object)
	// form an implicit catch-all policy, which is how the simplest scripts
	// in the paper are written (Figure 2).
	implicit := &policy.Policy{Source: scriptURL}
	if v, ok := ctx.Global("onRequest"); ok && script.Callable(v) {
		implicit.OnRequest = v
	}
	if v, ok := ctx.Global("onResponse"); ok && script.Callable(v) {
		implicit.OnResponse = v
	}
	if v, ok := ctx.Global("nextStages"); ok {
		if arr, isArr := v.(*script.Array); isArr {
			for _, e := range arr.Elems {
				implicit.NextStages = append(implicit.NextStages, script.ToString(e))
			}
		}
	}
	if implicit.HasHandlers() {
		policies = append(policies, implicit)
	}
	return newStage(scriptURL, site, ctx, policy.NewTree(policies), l.ContextPoolSize, l.ForkCharge), nil
}
