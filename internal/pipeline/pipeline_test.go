package pipeline

import (
	"strings"
	"sync"
	"testing"

	"nakika/internal/httpmsg"
	"nakika/internal/policy"
	"nakika/internal/resource"
	"nakika/internal/script"
	"nakika/internal/vocab"
)

// scriptHost serves stage scripts and origin resources from in-memory maps;
// it stands in for the proxy's fetch path in pipeline unit tests.
type scriptHost struct {
	vocab.NopHost
	mu      sync.Mutex
	scripts map[string]string // script URL -> source
	origin  map[string]string // full URL -> body
	fetches []string
	logs    []string
}

func newScriptHost() *scriptHost {
	return &scriptHost{scripts: make(map[string]string), origin: make(map[string]string)}
}

func (h *scriptHost) Fetch(req *httpmsg.Request) (*httpmsg.Response, error) {
	h.mu.Lock()
	h.fetches = append(h.fetches, req.URL.String())
	h.mu.Unlock()
	if src, ok := h.scripts[req.URL.String()]; ok {
		resp := httpmsg.NewTextResponse(200, src)
		resp.Header.Set("Content-Type", "application/javascript")
		return resp, nil
	}
	if body, ok := h.origin[req.URL.String()]; ok {
		return httpmsg.NewHTMLResponse(200, body), nil
	}
	return httpmsg.NewTextResponse(404, "not found"), nil
}

func (h *scriptHost) Log(site, message string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logs = append(h.logs, site+"|"+message)
}

func (h *scriptHost) NodeName() string { return "pipeline-test-node" }

// newExecutor wires a loader, host, and origin fetcher into an executor. The
// origin fetcher serves from the host's origin map so tests can distinguish
// script fetches from content fetches.
func newExecutor(h *scriptHost) *Executor {
	loader := NewLoader(h, script.Limits{})
	return &Executor{
		Loader: loader,
		Host:   h,
		FetchOrigin: func(req *httpmsg.Request) (*httpmsg.Response, error) {
			h.mu.Lock()
			body, ok := h.origin[req.URL.String()]
			h.mu.Unlock()
			if !ok {
				return httpmsg.NewTextResponse(404, "not found"), nil
			}
			return httpmsg.NewHTMLResponse(200, body), nil
		},
	}
}

func TestPlainPassThrough(t *testing.T) {
	h := newScriptHost()
	h.origin["http://example.org/page.html"] = "<html>hello</html>"
	e := newExecutor(h)
	req := httpmsg.MustRequest("GET", "http://example.org/page.html")
	resp, trace, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "<html>hello</html>" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	// The three default stages ran (clientwall, site script, serverwall),
	// all empty, and the origin was fetched.
	if len(trace.Stages) != 3 {
		t.Errorf("stages = %d, want 3", len(trace.Stages))
	}
	if trace.Stages[0].ScriptURL != DefaultClientWallURL {
		t.Errorf("first stage = %s", trace.Stages[0].ScriptURL)
	}
	if trace.Stages[1].ScriptURL != "http://example.org/nakika.js" {
		t.Errorf("second stage = %s", trace.Stages[1].ScriptURL)
	}
	if trace.Stages[2].ScriptURL != DefaultServerWallURL {
		t.Errorf("third stage = %s", trace.Stages[2].ScriptURL)
	}
	if trace.Generated {
		t.Error("pass-through should not be marked generated")
	}
}

func TestSiteOnResponseTransformsContent(t *testing.T) {
	h := newScriptHost()
	h.origin["http://example.org/page.html"] = "<html>hello</html>"
	h.scripts["http://example.org/nakika.js"] = `
		var p = new Policy();
		p.url = [ "example.org" ];
		p.onResponse = function() {
			var body = new ByteArray(), chunk;
			while (chunk = Response.read()) { body.append(chunk); }
			Response.write(body.toString().toUpperCase());
			Response.setHeader("X-Processed-By", System.nodeName);
		};
		p.register();
	`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://example.org/page.html"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "<HTML>HELLO</HTML>" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.Header.Get("X-Processed-By") != "pipeline-test-node" {
		t.Error("vocabulary access inside onResponse failed")
	}
	if !trace.Stages[1].Matched || !trace.Stages[1].RanResponse {
		t.Errorf("site stage trace = %+v", trace.Stages[1])
	}
}

func TestOnRequestTerminates(t *testing.T) {
	// Figure 5: block non-local clients from digital library URLs.
	h := newScriptHost()
	h.origin["http://content.nejm.org/cgi/reprint/1.pdf"] = "PDF-BYTES"
	h.scripts[DefaultClientWallURL] = `
		var p = new Policy();
		p.url = [ "bmj.bmjjournals.com/cgi/reprint", "content.nejm.org/cgi/reprint" ];
		p.onRequest = function() {
			if (! System.isLocal(Request.clientIP)) {
				Request.terminate(401);
			}
		};
		p.register();
	`
	e := newExecutor(h)

	req := httpmsg.MustRequest("GET", "http://content.nejm.org/cgi/reprint/1.pdf")
	req.ClientIP = "203.0.113.50"
	resp, trace, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 401 {
		t.Errorf("status = %d, want 401", resp.Status)
	}
	if !trace.Generated {
		t.Error("termination should mark the response generated")
	}
	// The origin must not have been contacted.
	for _, f := range h.fetches {
		if strings.Contains(f, "/cgi/reprint/1.pdf") {
			t.Error("origin should not be fetched after termination")
		}
	}
	// Local clients get through.
	req2 := httpmsg.MustRequest("GET", "http://content.nejm.org/cgi/reprint/1.pdf")
	req2.ClientIP = "10.0.0.7"
	resp2, _, err := e.Execute(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != 200 || string(resp2.Body) != "PDF-BYTES" {
		t.Errorf("local client resp = %d %q", resp2.Status, resp2.Body)
	}
}

func TestOnRequestGeneratesContent(t *testing.T) {
	// An onRequest handler can create a response from scratch, avoiding the
	// origin entirely (more efficient when responses are created from
	// scratch, Section 3.1).
	h := newScriptHost()
	h.scripts["http://dynamic.example.org/nakika.js"] = `
		var p = new Policy();
		p.url = [ "dynamic.example.org/generated" ];
		p.onRequest = function() {
			Response.setHeader("Content-Type", "text/plain");
			Response.write("generated at the edge for " + Request.path);
		};
		p.register();
	`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://dynamic.example.org/generated/report"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "generated at the edge for /generated/report" {
		t.Errorf("body = %q", resp.Body)
	}
	if !trace.Generated || !resp.Generated {
		t.Error("response should be marked generated")
	}
	// Later stages (serverwall) must not run their onRequest, but earlier
	// stages' onResponse still unwinds; with empty walls there is nothing to
	// check beyond stage count: clientwall + site stage only reached.
	if len(trace.Stages) != 2 {
		t.Errorf("stages = %d, want 2 (serverwall skipped)", len(trace.Stages))
	}
}

func TestOnRequestReturnsResponseObject(t *testing.T) {
	h := newScriptHost()
	h.scripts["http://api.example.org/nakika.js"] = `
		var p = new Policy();
		p.url = [ "api.example.org" ];
		p.onRequest = function() {
			return { status: 302, headers: { "Location": "http://elsewhere.example.org/" }, body: "moved" };
		};
		p.register();
	`
	e := newExecutor(h)
	resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://api.example.org/old"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 302 || resp.Header.Get("Location") != "http://elsewhere.example.org/" {
		t.Errorf("resp = %d %v", resp.Status, resp.Header)
	}
}

func TestRequestRewriteRedirectsOriginFetch(t *testing.T) {
	// A stage rewrites the URL; the origin fetch uses the rewritten URL.
	h := newScriptHost()
	h.origin["http://backend.example.org/v2/data"] = "v2 data"
	h.scripts["http://frontend.example.org/nakika.js"] = `
		var p = new Policy();
		p.url = [ "frontend.example.org" ];
		p.onRequest = function() {
			Request.setURL("http://backend.example.org/v2" + Request.path);
		};
		p.register();
	`
	e := newExecutor(h)
	resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://frontend.example.org/data"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "v2 data" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestDynamicallyScheduledStages(t *testing.T) {
	// The annotations pattern from Section 5.4: a site schedules an
	// annotation stage plus the original service; the annotation stage adds
	// markup to the response produced downstream.
	h := newScriptHost()
	h.origin["http://simms.med.nyu.edu/module1.html"] = "<html><body>lecture</body></html>"
	h.scripts["http://annotations.example.org/nakika.js"] = `
		var p = new Policy();
		p.url = [ "annotations.example.org" ];
		p.onRequest = function() {
			Request.setURL("http://simms.med.nyu.edu" + Request.path);
		};
		p.nextStages = [ "http://annotations.example.org/annotate.js" ];
		p.register();
	`
	h.scripts["http://annotations.example.org/annotate.js"] = `
		var p = new Policy();
		p.onResponse = function() {
			var body = new ByteArray(), chunk;
			while (chunk = Response.read()) { body.append(chunk); }
			var html = body.toString().replace("</body>", "<div class='post-it'>note</div></body>");
			Response.write(html);
		};
		p.register();
	`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://annotations.example.org/module1.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "post-it") || !strings.Contains(string(resp.Body), "lecture") {
		t.Errorf("body = %q", resp.Body)
	}
	// Stage order: clientwall, annotations nakika.js, annotate.js (dynamic),
	// serverwall.
	if len(trace.Stages) != 4 {
		t.Fatalf("stages = %d, want 4: %+v", len(trace.Stages), trace.Stages)
	}
	if trace.Stages[2].ScriptURL != "http://annotations.example.org/annotate.js" {
		t.Errorf("dynamic stage placed at %v", trace.Stages[2].ScriptURL)
	}
}

func TestDynamicStagesRunBeforeAlreadyScheduled(t *testing.T) {
	// A dynamically scheduled stage must run directly after its scheduling
	// stage, before the serverwall that was already scheduled.
	h := newScriptHost()
	h.origin["http://site.example.org/x"] = "content"
	h.scripts["http://site.example.org/nakika.js"] = `
		var p = new Policy();
		p.nextStages = [ "http://site.example.org/extra.js" ];
		p.register();
	`
	h.scripts["http://site.example.org/extra.js"] = `
		var p = new Policy();
		p.onResponse = function() { Response.setHeader("X-Extra", "yes"); };
		p.register();
	`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://site.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Extra") != "yes" {
		t.Error("dynamic stage did not run")
	}
	order := []string{}
	for _, s := range trace.Stages {
		order = append(order, s.ScriptURL)
	}
	want := []string{
		DefaultClientWallURL,
		"http://site.example.org/nakika.js",
		"http://site.example.org/extra.js",
		DefaultServerWallURL,
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, order[i], want[i])
		}
	}
}

func TestOnResponseUnwindOrder(t *testing.T) {
	// onResponse handlers run in reverse order of stage execution, so the
	// clientwall sees the final content last.
	h := newScriptHost()
	h.origin["http://site.example.org/x"] = "base"
	h.scripts[DefaultClientWallURL] = `
		var p = new Policy();
		p.onResponse = function() {
			var b = new ByteArray(), c;
			while (c = Response.read()) { b.append(c); }
			Response.write(b.toString() + "+clientwall");
		};
		p.register();
	`
	h.scripts["http://site.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() {
			var b = new ByteArray(), c;
			while (c = Response.read()) { b.append(c); }
			Response.write(b.toString() + "+site");
		};
		p.register();
	`
	e := newExecutor(h)
	resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://site.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "base+site+clientwall" {
		t.Errorf("body = %q (unwind order wrong)", resp.Body)
	}
}

func TestServerWallBlocksEmission(t *testing.T) {
	// Emission control: the server-side administrative stage can reject
	// requests to protect other web servers from exploits carried through
	// the architecture.
	h := newScriptHost()
	h.origin["http://victim.example.org/search?q=huge"] = "results"
	h.scripts[DefaultServerWallURL] = `
		var p = new Policy();
		p.url = [ "victim.example.org" ];
		p.onRequest = function() { Request.terminate(403); };
		p.register();
	`
	e := newExecutor(h)
	resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://victim.example.org/search?q=huge"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 403 {
		t.Errorf("status = %d, want 403", resp.Status)
	}
	for _, f := range h.fetches {
		if strings.Contains(f, "victim.example.org/search") {
			t.Error("blocked request must not reach the origin")
		}
	}
}

func TestClosestMatchWithinStage(t *testing.T) {
	h := newScriptHost()
	h.origin["http://media.example.org/images/big.png"] = "PNGDATA"
	h.origin["http://media.example.org/docs/readme.txt"] = "text"
	h.scripts["http://media.example.org/nakika.js"] = `
		var generic = new Policy();
		generic.url = [ "media.example.org" ];
		generic.onResponse = function() { Response.setHeader("X-Handler", "generic"); };
		generic.register();

		var images = new Policy();
		images.url = [ "media.example.org/images" ];
		images.onResponse = function() { Response.setHeader("X-Handler", "images"); };
		images.register();
	`
	e := newExecutor(h)
	resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://media.example.org/images/big.png"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Handler") != "images" {
		t.Errorf("handler = %q, want images (closest match)", resp.Header.Get("X-Handler"))
	}
	resp2, _, err := e.Execute(httpmsg.MustRequest("GET", "http://media.example.org/docs/readme.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Header.Get("X-Handler") != "generic" {
		t.Errorf("handler = %q, want generic", resp2.Header.Get("X-Handler"))
	}
}

func TestBrokenScriptDoesNotBreakPipeline(t *testing.T) {
	h := newScriptHost()
	h.origin["http://broken.example.org/x"] = "still served"
	h.scripts["http://broken.example.org/nakika.js"] = `this is not valid javascript ((`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://broken.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "still served" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if trace.Stages[1].Err == "" {
		t.Error("trace should record the script error")
	}
}

func TestHandlerRuntimeErrorIsContained(t *testing.T) {
	h := newScriptHost()
	h.origin["http://faulty.example.org/x"] = "content"
	h.scripts["http://faulty.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() { nonexistentFunction(); };
		p.register();
	`
	e := newExecutor(h)
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://faulty.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "content" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	found := false
	for _, s := range trace.Stages {
		if s.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("handler error should be recorded in the trace")
	}
}

func TestMissingSiteScriptNegativelyCached(t *testing.T) {
	h := newScriptHost()
	h.origin["http://nositescript.example.org/a"] = "a"
	h.origin["http://nositescript.example.org/b"] = "b"
	e := newExecutor(h)
	if _, _, err := e.Execute(httpmsg.MustRequest("GET", "http://nositescript.example.org/a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(httpmsg.MustRequest("GET", "http://nositescript.example.org/b")); err != nil {
		t.Fatal(err)
	}
	// The nakika.js probe should have happened exactly once thanks to the
	// negative cache.
	probes := 0
	for _, f := range h.fetches {
		if strings.HasSuffix(f, "nositescript.example.org/nakika.js") {
			probes++
		}
	}
	if probes != 1 {
		t.Errorf("nakika.js probed %d times, want 1", probes)
	}
}

func TestStageCacheReuse(t *testing.T) {
	h := newScriptHost()
	h.origin["http://cached.example.org/x"] = "x"
	h.scripts["http://cached.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() { Response.setHeader("X-S", "1"); };
		p.register();
	`
	e := newExecutor(h)
	for i := 0; i < 5; i++ {
		if _, _, err := e.Execute(httpmsg.MustRequest("GET", "http://cached.example.org/x")); err != nil {
			t.Fatal(err)
		}
	}
	loads := 0
	for _, f := range h.fetches {
		if strings.HasSuffix(f, "cached.example.org/nakika.js") {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("site script fetched %d times, want 1 (stage cache)", loads)
	}
	// Invalidation forces a reload.
	e.Loader.InvalidateStage("http://cached.example.org/nakika.js")
	if _, _, err := e.Execute(httpmsg.MustRequest("GET", "http://cached.example.org/x")); err != nil {
		t.Fatal(err)
	}
	loads = 0
	for _, f := range h.fetches {
		if strings.HasSuffix(f, "cached.example.org/nakika.js") {
			loads++
		}
	}
	if loads != 2 {
		t.Errorf("after invalidation, fetch count = %d, want 2", loads)
	}
}

func TestMaxStagesBound(t *testing.T) {
	// A script that keeps scheduling itself must be cut off.
	h := newScriptHost()
	h.origin["http://loop.example.org/x"] = "x"
	h.scripts["http://loop.example.org/nakika.js"] = `
		var p = new Policy();
		p.nextStages = [ "http://loop.example.org/nakika.js" ];
		p.register();
	`
	e := newExecutor(h)
	e.MaxStages = 10
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://loop.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("status = %d", resp.Status)
	}
	if len(trace.Stages) > 10 {
		t.Errorf("stages = %d, exceeds MaxStages", len(trace.Stages))
	}
}

func TestResourceManagerIntegration(t *testing.T) {
	h := newScriptHost()
	h.origin["http://busy.example.org/x"] = "x"
	h.scripts["http://busy.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() {
			var t = 0;
			for (var i = 0; i < 5000; i++) { t += i; }
			Response.setHeader("X-Work", t);
		};
		p.register();
	`
	mgr := resource.NewManager(resource.Config{
		Capacity: map[resource.Kind]float64{resource.CPU: 1000},
	})
	e := newExecutor(h)
	e.Resources = mgr
	if _, _, err := e.Execute(httpmsg.MustRequest("GET", "http://busy.example.org/x")); err != nil {
		t.Fatal(err)
	}
	mgr.ControlOnce()
	// The site consumed far more than 1000 CPU units, so it is congested and
	// should now be throttled.
	if !mgr.Throttled("busy.example.org") {
		t.Error("heavy site should be throttled after a control round")
	}
	// A throttled request comes back as server-busy (503).
	sawBusy := false
	for i := 0; i < 50; i++ {
		resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://busy.example.org/x"))
		if err != nil {
			t.Fatal(err)
		}
		if trace.RejectedBusy {
			if resp.Status != 503 {
				t.Errorf("busy rejection status = %d", resp.Status)
			}
			sawBusy = true
			break
		}
	}
	if !sawBusy {
		t.Error("expected at least one server-busy rejection while throttled")
	}
}

func TestMemoryHogTerminatedByLimits(t *testing.T) {
	// The misbehaving script from Section 5.1 consumes all available memory
	// by repeatedly doubling a string; per-context heap limits contain it.
	h := newScriptHost()
	h.origin["http://hog.example.org/x"] = "x"
	h.scripts["http://hog.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() {
			var s = "xxxxxxxxxxxxxxxx";
			while (true) { s = s + s; }
		};
		p.register();
	`
	e := newExecutor(h)
	e.Loader = NewLoader(h, script.Limits{MaxHeapBytes: 1 << 20, MaxSteps: 10_000_000})
	resp, trace, err := e.Execute(httpmsg.MustRequest("GET", "http://hog.example.org/x"))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Terminated {
		t.Error("memory hog should be terminated")
	}
	if resp.Status != 503 {
		t.Errorf("status = %d, want 503", resp.Status)
	}
}

func TestPolicyInputClientHost(t *testing.T) {
	h := newScriptHost()
	h.origin["http://edu.example.org/x"] = "x"
	h.scripts["http://edu.example.org/nakika.js"] = `
		var p = new Policy();
		p.client = [ "nyu.edu" ];
		p.onResponse = function() { Response.setHeader("X-Edu", "yes"); };
		p.register();
	`
	e := newExecutor(h)
	e.ClientHostLookup = func(ip string) string {
		if ip == "10.9.9.9" {
			return "dialup.med.nyu.edu"
		}
		return ""
	}
	req := httpmsg.MustRequest("GET", "http://edu.example.org/x")
	req.ClientIP = "10.9.9.9"
	resp, _, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Edu") != "yes" {
		t.Error("client host lookup should feed client predicates")
	}
	req2 := httpmsg.MustRequest("GET", "http://edu.example.org/x")
	req2.ClientIP = "203.0.113.77"
	resp2, _, err := e.Execute(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Header.Get("X-Edu") != "" {
		t.Error("unknown client should not match the nyu.edu predicate")
	}
}

func TestSiteOf(t *testing.T) {
	cases := map[string]string{
		"http://example.org/nakika.js":        "example.org",
		"https://Services.Example.NET/a/b.js": "services.example.net",
		"http://host:8080/x.js":               "host",
		"bare-host/script.js":                 "bare-host",
	}
	for in, want := range cases {
		if got := SiteOf(in); got != want {
			t.Errorf("SiteOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConcurrentPipelines(t *testing.T) {
	h := newScriptHost()
	h.origin["http://conc.example.org/x"] = "x"
	h.scripts["http://conc.example.org/nakika.js"] = `
		var p = new Policy();
		p.onResponse = function() {
			var b = new ByteArray(), c;
			while (c = Response.read()) { b.append(c); }
			Response.write(b.toString() + "!");
		};
		p.register();
	`
	e := newExecutor(h)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, _, err := e.Execute(httpmsg.MustRequest("GET", "http://conc.example.org/x"))
				if err != nil {
					errs <- err
					return
				}
				if string(resp.Body) != "x!" {
					errs <- &script.RuntimeError{Msg: "unexpected body " + string(resp.Body)}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLoadSourceStage(t *testing.T) {
	h := newScriptHost()
	loader := NewLoader(h, script.Limits{})
	stage, err := loader.LoadSource("generated://blacklist", "nakika.net", `
		var p = new Policy();
		p.url = [ "blocked.example.org" ];
		p.onRequest = function() { Request.terminate(403); };
		p.register();
	`)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Empty || len(stage.Policies()) != 1 {
		t.Fatalf("stage = %+v", stage)
	}
	in := policy.Input{Host: "blocked.example.org", Path: "/", Method: "GET"}
	if stage.Match(in) == nil {
		t.Error("generated stage should match the blacklisted host")
	}
	// Subsequent Load of the same URL hits the cache.
	again, err := loader.Load("generated://blacklist", "nakika.net")
	if err != nil {
		t.Fatal(err)
	}
	if again != stage {
		t.Error("LoadSource result should be cached under its URL")
	}
}
