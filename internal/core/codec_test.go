package core

import (
	"net/http"
	"testing"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/state"
)

func TestRepForwardRoundTrip(t *testing.T) {
	reqs := []repForward{
		{},
		{Site: "s.example", Key: "k", Value: "v"},
		{Site: "s", Key: "binary \x00 key", Value: string([]byte{0, 255})},
	}
	for _, req := range reqs {
		got, err := decodeRepForward(encodeRepForward(req))
		if err != nil {
			t.Fatalf("decodeRepForward: %v", err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v want %+v", got, req)
		}
	}
}

func TestRepRangeRoundTrip(t *testing.T) {
	req := repRangeReq{From: 12, To: 1 << 62, After: "s/k", Limit: 64}
	gotReq, err := decodeRepRangeReq(encodeRepRangeReq(req))
	if err != nil {
		t.Fatalf("decodeRepRangeReq: %v", err)
	}
	if gotReq != req {
		t.Fatalf("range req round trip: got %+v want %+v", gotReq, req)
	}

	resp := repRangeResp{
		Recs: []state.Rec{
			{Site: "a", Key: "k1", Ver: 1, Origin: "n1", Value: "v1"},
			{Site: "b", Key: "k2", Ver: 2, Origin: "n2", Delete: true},
		},
		More: true,
	}
	gotResp, err := decodeRepRangeResp(encodeRepRangeResp(resp))
	if err != nil {
		t.Fatalf("decodeRepRangeResp: %v", err)
	}
	if gotResp.More != resp.More || len(gotResp.Recs) != len(resp.Recs) {
		t.Fatalf("range resp round trip: got %+v want %+v", gotResp, resp)
	}
	for i := range resp.Recs {
		if gotResp.Recs[i] != resp.Recs[i] {
			t.Fatalf("rec %d: got %+v want %+v", i, gotResp.Recs[i], resp.Recs[i])
		}
	}
}

// TestRepCodecsAcceptGob pins the one-release grace window: payloads encoded
// by the previous release's gob codec still decode.
func TestRepCodecsAcceptGob(t *testing.T) {
	fwd := repForward{Site: "s", Key: "k", Value: "v"}
	b, err := gobEncode(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := decodeRepForward(b); err != nil || got != fwd {
		t.Fatalf("gob repForward: got %+v err %v", got, err)
	}

	rreq := repRangeReq{From: 1, To: 2, After: "a", Limit: 8}
	if b, err = gobEncode(rreq); err != nil {
		t.Fatal(err)
	}
	if got, err := decodeRepRangeReq(b); err != nil || got != rreq {
		t.Fatalf("gob repRangeReq: got %+v err %v", got, err)
	}

	rresp := repRangeResp{Recs: []state.Rec{{Site: "s", Key: "k", Ver: 9, Origin: "o", Value: "v"}}, More: true}
	if b, err = gobEncode(rresp); err != nil {
		t.Fatal(err)
	}
	got, err := decodeRepRangeResp(b)
	if err != nil || !got.More || len(got.Recs) != 1 || got.Recs[0] != rresp.Recs[0] {
		t.Fatalf("gob repRangeResp: got %+v err %v", got, err)
	}
}

func TestOffloadRequestRoundTrip(t *testing.T) {
	req := httpmsg.MustRequest("GET", "http://site.example/resource")
	req.Header.Set("Accept", "text/html")
	req.ClientIP = "192.0.2.1"
	req.Received = time.Unix(0, 1754600000000000000)

	got, err := decodeOffloadRequest(encodeOffloadRequest(req))
	if err != nil {
		t.Fatalf("decodeOffloadRequest: %v", err)
	}
	if got.Method != req.Method || got.URL.String() != req.URL.String() || got.ClientIP != req.ClientIP {
		t.Fatalf("round trip: got %+v want %+v", got, req)
	}
}

// TestOffloadRequestAcceptsGob pins the grace decode of the previous
// release's gob wireRequest shape.
func TestOffloadRequestAcceptsGob(t *testing.T) {
	w := wireRequest{
		Method:   "GET",
		URL:      "http://site.example/old",
		Header:   http.Header{"Accept": {"*/*"}},
		ClientIP: "192.0.2.2",
		Received: time.Unix(50, 0),
	}
	b, err := gobEncode(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeOffloadRequest(b)
	if err != nil {
		t.Fatalf("gob grace decode: %v", err)
	}
	if got.Method != "GET" || got.URL.String() != w.URL || got.ClientIP != w.ClientIP {
		t.Fatalf("gob grace: got %+v", got)
	}
}
