package core

import (
	"fmt"
	"net/http"
	"net/url"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/state"
	"nakika/internal/wire"
)

// Binary codecs for the core RPC payloads (replication forwards, handoff
// range streams, offloaded requests), replacing the gob bodies the first
// releases shipped. Encoders prefix wire.Magic; decoders sniff it and keep
// accepting gob for one release so mixed-version rings upgrade cleanly (a
// gob stream can never begin with the magic byte).

// encodeRepForward renders a rep.put / rep.del / rep.get body.
func encodeRepForward(req repForward) []byte {
	buf := make([]byte, 0, 16+len(req.Site)+len(req.Key)+len(req.Value))
	buf = append(buf, wire.Magic)
	buf = wire.AppendString(buf, req.Site)
	buf = wire.AppendString(buf, req.Key)
	buf = wire.AppendString(buf, req.Value)
	return buf
}

// decodeRepForward parses a rep forward body, accepting gob from old peers.
func decodeRepForward(payload []byte) (req repForward, err error) {
	if len(payload) == 0 {
		return repForward{}, fmt.Errorf("core: empty rep forward payload")
	}
	if payload[0] != wire.Magic {
		err = gobDecode(payload, &req)
		return
	}
	r := wire.Reader{Buf: payload, Off: 1}
	if req.Site, err = r.String(); err != nil {
		return
	}
	if req.Key, err = r.String(); err != nil {
		return
	}
	req.Value, err = r.String()
	return
}

// encodeRepRangeReq renders a rep.range request body.
func encodeRepRangeReq(req repRangeReq) []byte {
	buf := make([]byte, 0, 32+len(req.After))
	buf = append(buf, wire.Magic)
	buf = wire.AppendUvarint(buf, req.From)
	buf = wire.AppendUvarint(buf, req.To)
	buf = wire.AppendString(buf, req.After)
	buf = wire.AppendUvarint(buf, uint64(req.Limit))
	return buf
}

// decodeRepRangeReq parses a rep.range request, accepting gob.
func decodeRepRangeReq(payload []byte) (req repRangeReq, err error) {
	if len(payload) == 0 {
		return repRangeReq{}, fmt.Errorf("core: empty range request payload")
	}
	if payload[0] != wire.Magic {
		err = gobDecode(payload, &req)
		return
	}
	r := wire.Reader{Buf: payload, Off: 1}
	if req.From, err = r.Uvarint(); err != nil {
		return
	}
	if req.To, err = r.Uvarint(); err != nil {
		return
	}
	if req.After, err = r.String(); err != nil {
		return
	}
	limit, err2 := r.Uvarint()
	if err2 != nil {
		err = err2
		return
	}
	req.Limit = int(limit)
	return
}

// encodeRepRangeResp renders one handoff chunk.
func encodeRepRangeResp(resp repRangeResp) []byte {
	size := 16
	for i := range resp.Recs {
		rec := &resp.Recs[i]
		size += 32 + len(rec.Site) + len(rec.Key) + len(rec.Origin) + len(rec.Value)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, wire.Magic)
	buf = wire.AppendUvarint(buf, uint64(len(resp.Recs)))
	for _, rec := range resp.Recs {
		buf = state.AppendRec(buf, rec)
	}
	return wire.AppendBool(buf, resp.More)
}

// decodeRepRangeResp parses one handoff chunk, accepting gob.
func decodeRepRangeResp(payload []byte) (resp repRangeResp, err error) {
	if len(payload) == 0 {
		return repRangeResp{}, fmt.Errorf("core: empty range response payload")
	}
	if payload[0] != wire.Magic {
		err = gobDecode(payload, &resp)
		return
	}
	r := wire.Reader{Buf: payload, Off: 1}
	nrecs, err2 := r.Uvarint()
	if err2 != nil {
		err = err2
		return
	}
	if nrecs > uint64(r.Len()) { // cheap sanity bound before allocating
		err = wire.ErrMalformed
		return
	}
	if nrecs > 0 {
		resp.Recs = make([]state.Rec, 0, nrecs)
	}
	for i := uint64(0); i < nrecs; i++ {
		var rec state.Rec
		if rec, err = state.ReadRec(&r); err != nil {
			return
		}
		resp.Recs = append(resp.Recs, rec)
	}
	resp.More, err = r.Bool()
	return
}

// leaseReq is the body of lease.acquire / lease.renew / lease.release.
type leaseReq struct {
	Site, Name, Holder string
	Token              uint64
	TTL                int64
}

// encodeLeaseReq renders a lease operation body.
func encodeLeaseReq(req leaseReq) []byte {
	buf := make([]byte, 0, 32+len(req.Site)+len(req.Name)+len(req.Holder))
	buf = append(buf, wire.Magic)
	buf = wire.AppendString(buf, req.Site)
	buf = wire.AppendString(buf, req.Name)
	buf = wire.AppendString(buf, req.Holder)
	buf = wire.AppendUvarint(buf, req.Token)
	return wire.AppendVarint(buf, req.TTL)
}

// decodeLeaseReq parses a lease operation body. Lease messages are new in
// this release, so there is no gob grace path: the magic byte is required.
func decodeLeaseReq(payload []byte) (req leaseReq, err error) {
	if len(payload) == 0 || payload[0] != wire.Magic {
		return leaseReq{}, fmt.Errorf("core: malformed lease request payload")
	}
	r := wire.Reader{Buf: payload, Off: 1}
	if req.Site, err = r.String(); err != nil {
		return
	}
	if req.Name, err = r.String(); err != nil {
		return
	}
	if req.Holder, err = r.String(); err != nil {
		return
	}
	if req.Token, err = r.Uvarint(); err != nil {
		return
	}
	req.TTL, err = r.Varint()
	return
}

// leaseFenced is the body of lease.fput (client → acting owner; Rec
// carries only site/key/value, the owner assigns the version) and
// lease.fstore (owner → replica; Rec is fully versioned).
type leaseFenced struct {
	Guard  string
	Holder string
	Token  uint64
	Rec    state.Rec
}

// encodeLeaseFenced renders a fenced-write body.
func encodeLeaseFenced(req leaseFenced) []byte {
	buf := make([]byte, 0, 48+len(req.Guard)+len(req.Holder)+len(req.Rec.Site)+len(req.Rec.Key)+len(req.Rec.Value))
	buf = append(buf, wire.Magic)
	buf = wire.AppendString(buf, req.Guard)
	buf = wire.AppendString(buf, req.Holder)
	buf = wire.AppendUvarint(buf, req.Token)
	return state.AppendRec(buf, req.Rec)
}

// decodeLeaseFenced parses a fenced-write body (magic required; no gob
// grace, like decodeLeaseReq).
func decodeLeaseFenced(payload []byte) (req leaseFenced, err error) {
	if len(payload) == 0 || payload[0] != wire.Magic {
		return leaseFenced{}, fmt.Errorf("core: malformed fenced write payload")
	}
	r := wire.Reader{Buf: payload, Off: 1}
	if req.Guard, err = r.String(); err != nil {
		return
	}
	if req.Holder, err = r.String(); err != nil {
		return
	}
	if req.Token, err = r.Uvarint(); err != nil {
		return
	}
	req.Rec, err = state.ReadRec(&r)
	return
}

// wireRequest is the legacy gob shape of an off.exec body; it survives only
// as the grace decoder for requests sent by peers one release behind.
type wireRequest struct {
	Method   string
	URL      string
	Header   http.Header
	Body     []byte
	ClientIP string
	Received time.Time
}

// encodeOffloadRequest renders an off.exec body from the pipeline request.
func encodeOffloadRequest(req *httpmsg.Request) []byte {
	return httpmsg.EncodeRequest(req)
}

// decodeOffloadRequest parses an off.exec body, accepting the legacy gob
// wireRequest from old peers.
func decodeOffloadRequest(payload []byte) (*httpmsg.Request, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: empty offload request payload")
	}
	var req *httpmsg.Request
	if payload[0] == wire.Magic {
		r := wire.Reader{Buf: payload, Off: 1}
		var err error
		if req, err = httpmsg.ReadRequest(&r); err != nil {
			return nil, err
		}
	} else {
		var w wireRequest
		if err := gobDecode(payload, &w); err != nil {
			return nil, fmt.Errorf("core: decode offloaded request: %w", err)
		}
		u, err := url.Parse(w.URL)
		if err != nil {
			return nil, fmt.Errorf("core: offloaded request url %q: %w", w.URL, err)
		}
		req = &httpmsg.Request{
			Method:   w.Method,
			URL:      u,
			Header:   w.Header,
			Body:     w.Body,
			ClientIP: w.ClientIP,
			Received: w.Received,
		}
	}
	if req.Header == nil {
		req.Header = make(http.Header)
	}
	return req, nil
}
