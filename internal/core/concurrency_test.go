package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nakika/internal/httpmsg"
)

// slowCountingOrigin counts upstream fetches per URL and holds each one long
// enough that a stampede would overlap in flight.
type slowCountingOrigin struct {
	delay   time.Duration
	mu      sync.Mutex
	fetches map[string]int
}

func newSlowCountingOrigin(delay time.Duration) *slowCountingOrigin {
	return &slowCountingOrigin{delay: delay, fetches: make(map[string]int)}
}

func (o *slowCountingOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	o.mu.Lock()
	o.fetches[req.URL.String()]++
	o.mu.Unlock()
	if o.delay > 0 {
		time.Sleep(o.delay)
	}
	switch req.Path() {
	case "/nakika.js", "/clientwall.js", "/serverwall.js":
		return httpmsg.NewTextResponse(404, "none"), nil
	default:
		resp := httpmsg.NewHTMLResponse(200, "body of "+req.URL.String())
		resp.SetMaxAge(600)
		return resp, nil
	}
}

func (o *slowCountingOrigin) count(url string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fetches[url]
}

// TestColdCacheStampedeCoalesces verifies that N concurrent misses of the
// same key issue exactly one origin fetch, with the response fanned out to
// every waiter.
func TestColdCacheStampedeCoalesces(t *testing.T) {
	origin := newSlowCountingOrigin(20 * time.Millisecond)
	node, err := NewNode(Config{Name: "stampede", Upstream: origin})
	if err != nil {
		t.Fatal(err)
	}
	const url = "http://hot.example.org/item"
	const waiters = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, _, err := node.Handle(httpmsg.MustRequest("GET", url))
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != 200 || string(resp.Body) != "body of "+url {
				errs <- fmt.Errorf("bad response: %d %q", resp.Status, resp.Body)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := origin.count(url); got != 1 {
		t.Errorf("origin fetched %d times for %d concurrent misses, want exactly 1", got, waiters)
	}
	st := node.Stats()
	if st.OriginFetches != 1+3 { // the item plus the three script probes
		t.Errorf("OriginFetches = %d, want 4 (item + clientwall + serverwall + nakika.js)", st.OriginFetches)
	}
	if st.CoalescedFetches < waiters-1 {
		t.Errorf("CoalescedFetches = %d, want >= %d", st.CoalescedFetches, waiters-1)
	}
}

// TestStampedeWaitersGetIndependentBodies checks that coalesced responses
// are safe to mutate: every pipeline owns its copy.
func TestStampedeWaitersGetIndependentBodies(t *testing.T) {
	origin := newSlowCountingOrigin(10 * time.Millisecond)
	node, err := NewNode(Config{Name: "fanout", Upstream: origin})
	if err != nil {
		t.Fatal(err)
	}
	const url = "http://fan.example.org/doc"
	const waiters = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, _, err := node.Handle(httpmsg.MustRequest("GET", url))
			if err != nil {
				t.Error(err)
				return
			}
			// Scribble over the whole body; any sharing between waiters (or
			// with the cached copy) trips the race detector or the final
			// content check.
			for j := range resp.Body {
				resp.Body[j] = '!'
			}
		}()
	}
	close(start)
	wg.Wait()
	resp, _, err := node.Handle(httpmsg.MustRequest("GET", url))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "body of "+url {
		t.Errorf("cached body corrupted by waiter mutation: %q", resp.Body)
	}
}

// TestConcurrentMixedTraffic drives 32 goroutines through one node — shared
// stages (a scripted site), shared cache, a mix of cold and warm keys — as
// the package's race-detector workout for the pooled request path.
func TestConcurrentMixedTraffic(t *testing.T) {
	var upstream atomic.Int64
	origin := FetcherFunc(func(req *httpmsg.Request) (*httpmsg.Response, error) {
		upstream.Add(1)
		switch req.Path() {
		case "/nakika.js":
			r := httpmsg.NewTextResponse(200, `
				var served = 0;
				var p = new Policy();
				p.url = [ "conc.example.org" ];
				p.onResponse = function() {
					served = served + 1;
					Response.setHeader("X-Served", served);
					var b = new ByteArray(), c;
					while (c = Response.read()) { b.append(c); }
					Response.write(b.toString() + "+edge");
				};
				p.register();
			`)
			r.SetMaxAge(600)
			return r, nil
		case "/clientwall.js", "/serverwall.js":
			return httpmsg.NewTextResponse(404, "none"), nil
		default:
			r := httpmsg.NewHTMLResponse(200, "origin:"+req.Path())
			r.SetMaxAge(600)
			return r, nil
		}
	})
	node, err := NewNode(Config{Name: "conc", Upstream: origin})
	if err != nil {
		t.Fatal(err)
	}
	// Warm one key so the workload mixes warm hits with cold misses.
	if _, _, err := node.Handle(httpmsg.MustRequest("GET", "http://conc.example.org/warm")); err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	const perG = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var url string
				switch i % 3 {
				case 0:
					url = "http://conc.example.org/warm"
				case 1:
					url = fmt.Sprintf("http://conc.example.org/cold-%d-%d", g, i)
				default:
					url = fmt.Sprintf("http://conc.example.org/shared-%d", i%5)
				}
				resp, _, err := node.Handle(httpmsg.MustRequest("GET", url))
				if err != nil {
					errs <- err
					return
				}
				if resp.Status != 200 {
					errs <- fmt.Errorf("%s -> %d", url, resp.Status)
					return
				}
				want := "origin:" + httpmsg.MustRequest("GET", url).Path() + "+edge"
				if string(resp.Body) != want {
					errs <- fmt.Errorf("%s body = %q, want %q", url, resp.Body, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := node.Stats()
	if st.Requests != 1+goroutines*perG {
		t.Errorf("requests = %d, want %d", st.Requests, 1+goroutines*perG)
	}
	if st.CacheHits == 0 {
		t.Error("warm keys should produce cache hits")
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}
