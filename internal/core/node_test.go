package core

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/overlay"
	"nakika/internal/resource"
	"nakika/internal/state"
)

// memOrigin is an in-memory upstream serving scripts and content, counting
// hits per URL.
type memOrigin struct {
	mu        sync.Mutex
	resources map[string]*httpmsg.Response
	hits      map[string]int
	posts     map[string][]string
}

func newMemOrigin() *memOrigin {
	return &memOrigin{resources: make(map[string]*httpmsg.Response), hits: make(map[string]int), posts: make(map[string][]string)}
}

func (o *memOrigin) addText(url, body string, maxAge int) {
	r := httpmsg.NewHTMLResponse(200, body)
	if maxAge > 0 {
		r.SetMaxAge(maxAge)
	}
	o.resources[url] = r
}

func (o *memOrigin) addScript(url, src string) {
	r := httpmsg.NewTextResponse(200, src)
	r.Header.Set("Content-Type", "application/javascript")
	r.SetMaxAge(300)
	o.resources[url] = r
}

func (o *memOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	url := req.URL.String()
	o.hits[url]++
	if req.Method == "POST" {
		o.posts[url] = append(o.posts[url], string(req.Body))
		return httpmsg.NewTextResponse(200, "ok"), nil
	}
	if r, ok := o.resources[url]; ok {
		return r.Clone(), nil
	}
	return httpmsg.NewTextResponse(404, "not found"), nil
}

func (o *memOrigin) hitCount(url string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits[url]
}

func newTestNode(t *testing.T, name string, origin *memOrigin, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Name:          name,
		Region:        "us-east",
		Upstream:      origin,
		LocalNetworks: []string{"10.0.0.0/8", "192.168.0.0/16"},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNodeRequiresName(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("expected error for missing name")
	}
	if _, err := NewNode(Config{Name: "x", LocalNetworks: []string{"not-a-cidr"}}); err == nil {
		t.Error("expected error for invalid local network")
	}
}

func TestProxyPassThroughAndCaching(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://example.org/page.html", "<html>hi</html>", 300)
	n := newTestNode(t, "edge-1", origin, nil)

	for i := 0; i < 3; i++ {
		resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://example.org/page.html"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 || string(resp.Body) != "<html>hi</html>" {
			t.Fatalf("resp = %d %q", resp.Status, resp.Body)
		}
		if resp.Header.Get("X-Na-Kika-Node") != "edge-1" {
			t.Error("node header missing")
		}
	}
	// One origin access plus one probe for the missing nakika.js; repeats
	// served from cache.
	if got := origin.hitCount("http://example.org/page.html"); got != 1 {
		t.Errorf("origin content hits = %d, want 1", got)
	}
	st := n.Stats()
	if st.Requests != 3 || st.CacheHits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSiteScriptTransformsThroughNode(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://med.nyu.edu/simm/lecture.xml", "<lecture><title>Aneurysm</title></lecture>", 60)
	origin.addScript("http://med.nyu.edu/nakika.js", `
		var p = new Policy();
		p.url = [ "med.nyu.edu/simm" ];
		p.onResponse = function() {
			var body = new ByteArray(), c;
			while (c = Response.read()) { body.append(c); }
			var doc = XML.parse(body.toString());
			var title = XML.text(XML.find(doc, "title"));
			Response.setHeader("Content-Type", "text/html");
			Response.write("<html><h1>" + title + "</h1></html>");
		};
		p.register();
	`)
	n := newTestNode(t, "edge-1", origin, nil)
	resp, trace, err := n.Handle(httpmsg.MustRequest("GET", "http://med.nyu.edu/simm/lecture.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "<html><h1>Aneurysm</h1></html>" {
		t.Errorf("body = %q", resp.Body)
	}
	if len(trace.Stages) != 3 {
		t.Errorf("stages = %d", len(trace.Stages))
	}
}

func TestAdminWallThroughNode(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://content.nejm.org/cgi/reprint/1.pdf", "PDF", 60)
	origin.addScript("http://nakika.net/clientwall.js", `
		var p = new Policy();
		p.url = [ "content.nejm.org/cgi/reprint" ];
		p.onRequest = function() {
			if (! System.isLocal(Request.clientIP)) { Request.terminate(401); }
		};
		p.register();
	`)
	n := newTestNode(t, "edge-1", origin, nil)

	outside := httpmsg.MustRequest("GET", "http://content.nejm.org/cgi/reprint/1.pdf")
	outside.ClientIP = "203.0.113.4"
	resp, _, err := n.Handle(outside)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 401 {
		t.Errorf("outside client status = %d", resp.Status)
	}
	inside := httpmsg.MustRequest("GET", "http://content.nejm.org/cgi/reprint/1.pdf")
	inside.ClientIP = "10.3.2.1"
	resp, _, err = n.Handle(inside)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Errorf("inside client status = %d", resp.Status)
	}
}

func TestCooperativeCaching(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://heavy.example.org/video.mp4", strings.Repeat("v", 10_000), 600)
	ring := overlay.NewRing()
	dir := NewDirectory()
	mutate := func(cfg *Config) {
		cfg.Ring = ring
		cfg.Directory = dir
	}
	a := newTestNode(t, "edge-a", origin, mutate)
	b := newTestNode(t, "edge-b", origin, mutate)

	// Node A fetches from the origin and publishes to the overlay index.
	if _, _, err := a.Handle(httpmsg.MustRequest("GET", "http://heavy.example.org/video.mp4")); err != nil {
		t.Fatal(err)
	}
	// Node B should get it from node A's cache, not the origin.
	if _, _, err := b.Handle(httpmsg.MustRequest("GET", "http://heavy.example.org/video.mp4")); err != nil {
		t.Fatal(err)
	}
	if got := origin.hitCount("http://heavy.example.org/video.mp4"); got != 1 {
		t.Errorf("origin hits = %d, want 1 (one cached copy suffices)", got)
	}
	if b.Stats().PeerHits != 1 {
		t.Errorf("peer hits = %d, want 1", b.Stats().PeerHits)
	}
}

func TestHardStateReplicationAcrossNodes(t *testing.T) {
	origin := newMemOrigin()
	origin.addScript("http://app.example.org/nakika.js", `
		var p = new Policy();
		p.url = [ "app.example.org/register" ];
		p.onRequest = function() {
			var user = Request.param("user");
			State.put("user:" + user, JSON.stringify({ name: user }));
			Response.setHeader("Content-Type", "text/plain");
			Response.write("registered " + user);
		};
		p.register();

		var q = new Policy();
		q.url = [ "app.example.org/profile" ];
		q.onRequest = function() {
			var user = Request.param("user");
			var data = State.get("user:" + user);
			Response.setHeader("Content-Type", "text/plain");
			if (data == null) { Response.write("unknown"); } else { Response.write("profile " + JSON.parse(data).name); }
		};
		q.register();
	`)
	bus := state.NewBus()
	mutate := func(cfg *Config) { cfg.Bus = bus }
	a := newTestNode(t, "edge-a", origin, mutate)
	b := newTestNode(t, "edge-b", origin, mutate)

	// Registration handled at node A...
	resp, _, err := a.Handle(httpmsg.MustRequest("GET", "http://app.example.org/register?user=maria"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "registered maria" {
		t.Fatalf("register = %q", resp.Body)
	}
	// ...but the replica is attached lazily at B on its first touch of the
	// site, so warm B's replica and re-propagate from A.
	if _, _, err := b.Handle(httpmsg.MustRequest("GET", "http://app.example.org/profile?user=warmup")); err != nil {
		t.Fatal(err)
	}
	resp, _, err = a.Handle(httpmsg.MustRequest("GET", "http://app.example.org/register?user=amos"))
	if err != nil {
		t.Fatal(err)
	}
	// ...is visible at node B.
	resp, _, err = b.Handle(httpmsg.MustRequest("GET", "http://app.example.org/profile?user=amos"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "profile amos" {
		t.Errorf("profile at replica = %q", resp.Body)
	}
}

func TestAccessLoggingAndFlush(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://logged.example.org/a", "a", 60)
	n := newTestNode(t, "edge-1", origin, nil)
	n.SetLogPostURL("logged.example.org", "http://logged.example.org/log-sink")
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://logged.example.org/a")); err != nil {
		t.Fatal(err)
	}
	if n.AccessLog().Pending("logged.example.org") == 0 {
		t.Fatal("expected pending log entries")
	}
	if err := n.FlushLogs(); err != nil {
		t.Fatal(err)
	}
	origin.mu.Lock()
	posted := origin.posts["http://logged.example.org/log-sink"]
	origin.mu.Unlock()
	if len(posted) != 1 || !strings.Contains(posted[0], "/a 200") {
		t.Errorf("posted log = %v", posted)
	}
}

func TestScriptCacheVocabularyThroughNode(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://img.example.org/photo.png", strings.Repeat("p", 500), 600)
	origin.addScript("http://img.example.org/nakika.js", `
		var p = new Policy();
		p.url = [ "img.example.org" ];
		p.onResponse = function() {
			var key = "thumb:" + Request.path;
			var cached = Cache.get(key);
			if (cached != null) {
				Response.setHeader("X-Thumb-Cache", "hit");
				Response.write(cached.body);
				return;
			}
			var body = new ByteArray(), c;
			while (c = Response.read()) { body.append(c); }
			var thumb = body.slice(0, 10);
			Cache.put(key, thumb, 300, "image/png");
			Response.setHeader("X-Thumb-Cache", "miss");
			Response.write(thumb);
		};
		p.register();
	`)
	n := newTestNode(t, "edge-1", origin, nil)
	r1, _, err := n.Handle(httpmsg.MustRequest("GET", "http://img.example.org/photo.png"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Header.Get("X-Thumb-Cache") != "miss" || len(r1.Body) != 10 {
		t.Errorf("first = %q %d bytes", r1.Header.Get("X-Thumb-Cache"), len(r1.Body))
	}
	r2, _, err := n.Handle(httpmsg.MustRequest("GET", "http://img.example.org/photo.png"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Header.Get("X-Thumb-Cache") != "hit" {
		t.Errorf("second = %q", r2.Header.Get("X-Thumb-Cache"))
	}
}

func TestResourceControlsThroughNode(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://busy.example.org/x", "x", 0)
	origin.addScript("http://busy.example.org/nakika.js", `
		var p = new Policy();
		p.onResponse = function() { var t = 0; for (var i = 0; i < 20000; i++) { t += i; } };
		p.register();
	`)
	n := newTestNode(t, "edge-1", origin, func(cfg *Config) {
		cfg.EnableResources = true
		cfg.Resources = resource.Config{Capacity: map[resource.Kind]float64{resource.CPU: 1000}}
		cfg.Cache.DefaultTTL = time.Nanosecond // force repeated pipeline work
	})
	// Generate enough load to congest the tiny CPU capacity, then run the
	// control loop once.
	for i := 0; i < 5; i++ {
		if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://busy.example.org/x")); err != nil {
			t.Fatal(err)
		}
	}
	n.Resources().ControlOnce()
	if !n.Resources().Throttled("busy.example.org") {
		t.Fatal("expected the heavy site to be throttled")
	}
	busy := false
	for i := 0; i < 100; i++ {
		_, trace, err := n.Handle(httpmsg.MustRequest("GET", "http://busy.example.org/x"))
		if err != nil {
			t.Fatal(err)
		}
		if trace.RejectedBusy {
			busy = true
			break
		}
	}
	if !busy {
		t.Error("expected at least one server-busy rejection")
	}
	if n.Stats().Rejected == 0 {
		t.Error("rejected counter should be non-zero")
	}
	// Disabling resource controls restores unconditional admission.
	n.SetResourceControls(false)
	for i := 0; i < 20; i++ {
		_, trace, err := n.Handle(httpmsg.MustRequest("GET", "http://busy.example.org/x"))
		if err != nil {
			t.Fatal(err)
		}
		if trace.RejectedBusy {
			t.Fatal("disabled controls must not reject")
		}
	}
}

func TestServeHTTP(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://site.example.org/index.html", "<html>via proxy</html>", 60)
	n := newTestNode(t, "edge-http", origin, nil)

	// Absolute-form proxy request with the .nakika.net suffix appended to
	// the hostname, as the paper's URL rewriting produces.
	r := httptest.NewRequest("GET", "http://site.example.org.nakika.net/index.html", nil)
	r.RemoteAddr = "10.1.1.1:5555"
	w := httptest.NewRecorder()
	n.ServeHTTP(w, r)
	if w.Code != 200 || !strings.Contains(w.Body.String(), "via proxy") {
		t.Errorf("ServeHTTP = %d %q", w.Code, w.Body.String())
	}
	if w.Header().Get("X-Na-Kika-Node") != "edge-http" {
		t.Error("node header missing")
	}
}

func TestIsLocalClient(t *testing.T) {
	n := newTestNode(t, "edge-1", newMemOrigin(), nil)
	cases := map[string]bool{
		"127.0.0.1":   true,
		"10.200.3.4":  true,
		"192.168.9.9": true,
		"8.8.8.8":     false,
		"not-an-ip":   false,
	}
	for ip, want := range cases {
		if got := n.IsLocalClient(ip); got != want {
			t.Errorf("IsLocalClient(%q) = %v, want %v", ip, got, want)
		}
	}
}

func TestConcurrentNodeTraffic(t *testing.T) {
	origin := newMemOrigin()
	for i := 0; i < 10; i++ {
		origin.addText(fmt.Sprintf("http://load.example.org/page-%d.html", i), fmt.Sprintf("<html>%d</html>", i), 300)
	}
	origin.addScript("http://load.example.org/nakika.js", `
		var p = new Policy();
		p.onResponse = function() { Response.setHeader("X-Touched", "1"); };
		p.register();
	`)
	n := newTestNode(t, "edge-1", origin, nil)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				url := fmt.Sprintf("http://load.example.org/page-%d.html", (g+i)%10)
				resp, _, err := n.Handle(httpmsg.MustRequest("GET", url))
				if err != nil || resp.Status != 200 {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d failed requests under concurrency", failures.Load())
	}
	if n.Stats().Requests != 300 {
		t.Errorf("requests = %d", n.Stats().Requests)
	}
}

func TestStatePartitioningAcrossSites(t *testing.T) {
	n := newTestNode(t, "edge-1", newMemOrigin(), nil)
	if err := n.StatePut("site-a.org", "k", "va"); err != nil {
		t.Fatal(err)
	}
	if err := n.StatePut("site-b.org", "k", "vb"); err != nil {
		t.Fatal(err)
	}
	if v, _ := n.StateGet("site-a.org", "k"); v != "va" {
		t.Errorf("site-a k = %q", v)
	}
	if v, _ := n.StateGet("site-b.org", "k"); v != "vb" {
		t.Errorf("site-b k = %q", v)
	}
	n.StateDelete("site-a.org", "k")
	if _, ok := n.StateGet("site-a.org", "k"); ok {
		t.Error("delete failed")
	}
	if _, ok := n.StateGet("site-b.org", "k"); !ok {
		t.Error("deleting in one partition must not affect another")
	}
	if len(n.StateKeys("site-b.org")) != 1 {
		t.Error("StateKeys wrong")
	}
	if err := n.Propagate("site-a.org", "msg"); err == nil {
		t.Error("propagate without a bus should error")
	}
}

func TestNodeTimeAndUsage(t *testing.T) {
	n := newTestNode(t, "edge-1", newMemOrigin(), nil)
	if n.Now().After(time.Now().Add(time.Second)) {
		t.Error("Now should be close to wall clock")
	}
	if n.Usage("unknown.site", "cpu") != 0 {
		t.Error("unknown site usage should be zero")
	}
	if n.Usage("unknown.site", "bogus-resource") != 0 {
		t.Error("unknown resource usage should be zero")
	}
	if n.NodeName() != "edge-1" || n.Region() != "us-east" {
		t.Error("identity accessors wrong")
	}
}
