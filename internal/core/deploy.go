package core

import (
	"fmt"
	"sort"
	"strings"

	"nakika/internal/deploy"
	"nakika/internal/metrics"
	"nakika/internal/pipeline"
	"nakika/internal/state"
	"nakika/internal/transport"
)

// Live script deployment plane. A site's deployment history lives in one
// replicated hard-state record at (site, deploy.StateKey): publishing or
// rolling back is an ordinary versioned write, so PR 4's successor-list
// replication, failover, handoff, and anti-entropy repair propagate
// deployments network-wide with no new replication machinery. Applying a
// record to the local pipeline is a pure function of the record's content
// (generation + script text), so when last-writer-wins converges every
// node's copy of the record, every node's pipeline converges too — a node
// that crashed during propagation catches up the moment repair restores
// its record.
//
// The swap itself is atomic per request, not per node: the executor
// resolves the site's deployed stage exactly once, before the first stage
// runs, and the backward onResponse unwind reuses the *Stage pointers the
// forward pass captured. In-flight requests finish on the generation they
// started with; requests arriving after the swap see only the new one.

// msgDeployApply nudges a peer to re-sync one site's deployment now
// instead of waiting for its next maintenance tick. Best-effort: the
// record itself travels through replication, so a lost nudge only delays
// convergence.
const msgDeployApply = "deploy.apply"

// deployActive is one site's live, swapped-in deployment: the compiled
// stage the executor substitutes for the site's nakika.js, plus the
// generation and script text it was built from (the content key that makes
// applies idempotent).
type deployActive struct {
	gen    uint64
	script string
	stage  *pipeline.Stage
}

// siteDeployment is the pipeline.Executor hook: the one read per request
// that pins the request's deployment generation.
func (n *Node) siteDeployment(site string) (*pipeline.Stage, uint64) {
	n.deployMu.Lock()
	d := n.deployed[site]
	n.deployMu.Unlock()
	if d == nil {
		return nil, 0
	}
	return d.stage, d.gen
}

// Deploy validates and publishes a new script version for site, returning
// the generation it was assigned. The bundle is validated — parse, free
// identifiers against the installed vocabulary, canary compile over no-op
// host operations — before anything is stored, so a bad script is rejected
// before it can propagate anywhere. The write is acknowledged under the
// replication layer's usual durability rule, the local pipeline swaps
// atomically, and peers are nudged to apply it immediately.
func (n *Node) Deploy(site, script, note string) (uint64, error) {
	site = strings.ToLower(strings.TrimSpace(site))
	if site == "" || strings.ContainsAny(site, ":/ \x00") {
		n.deployRej.Add(1)
		return 0, fmt.Errorf("core: deploy: invalid site %q", site)
	}
	if err := pipeline.Validate(site, script, n.cfg.ScriptLimits); err != nil {
		n.deployRej.Add(1)
		return 0, err
	}
	n.deployPubMu.Lock()
	defer n.deployPubMu.Unlock()
	st, _ := n.deployRecord(site)
	gen := st.NextGen()
	st.Add(deploy.Bundle{Gen: gen, Script: script, Note: note})
	st.Active = gen
	if err := n.deployPut(site, deploy.Encode(st)); err != nil {
		return 0, fmt.Errorf("core: deploy %s: %w", site, err)
	}
	// Best effort: a lost index entry is re-added by the next deploy of the
	// site and repaired by SyncDeployments on any node holding the record.
	n.indexAdd(site)
	if err := n.applyDeploy(site, st); err != nil {
		return 0, err
	}
	n.broadcastDeploy(site)
	return gen, nil
}

// Rollback re-activates a previously retained generation for site. A
// rollback IS a deploy of a prior version: the record's Active pointer
// moves, the same replicated write and atomic swap follow. Generations
// trimmed past the retention window are rejected.
func (n *Node) Rollback(site string, gen uint64) error {
	site = strings.ToLower(strings.TrimSpace(site))
	n.deployPubMu.Lock()
	defer n.deployPubMu.Unlock()
	st, ok := n.deployRecord(site)
	if !ok {
		n.deployRej.Add(1)
		return fmt.Errorf("core: rollback: site %q has no deployment record", site)
	}
	if _, retained := st.Find(gen); !retained {
		n.deployRej.Add(1)
		return fmt.Errorf("core: rollback: generation %d of %s is not retained (the %d newest are kept)", gen, site, deploy.Retention)
	}
	st.Active = gen
	if err := n.deployPut(site, deploy.Encode(st)); err != nil {
		return fmt.Errorf("core: rollback %s: %w", site, err)
	}
	if err := n.applyDeploy(site, st); err != nil {
		return err
	}
	n.deployRolled.Add(1)
	n.broadcastDeploy(site)
	return nil
}

// Deployments reports every deployment this node knows about: sites whose
// record it holds (as owner or replica) and sites it has applied a stage
// for. Active is the record's intent, Applied what this node's pipeline
// serves; they differ only while a deploy is propagating.
func (n *Node) Deployments() []deploy.Status {
	recs := make(map[string]deploy.State)
	for _, rec := range n.store.VersionedRecords(func(site, key string) bool {
		return key == deploy.StateKey && site != deploy.IndexSite
	}) {
		if rec.Delete {
			continue
		}
		if st, err := deploy.Decode(rec.Value); err == nil {
			recs[rec.Site] = st
		}
	}
	applied := make(map[string]uint64)
	n.deployMu.Lock()
	for site, d := range n.deployed {
		applied[site] = d.gen
	}
	n.deployMu.Unlock()
	sites := make(map[string]bool, len(recs)+len(applied))
	for site := range recs {
		sites[site] = true
	}
	for site := range applied {
		sites[site] = true
	}
	out := make([]deploy.Status, 0, len(sites))
	for site := range sites {
		st, ok := recs[site]
		if !ok {
			// Applied here but record owned elsewhere (this node is not in
			// the record's replica set): fetch the authoritative copy.
			st, _ = n.deployRecord(site)
		}
		status := deploy.Status{Site: site, Active: st.Active, Applied: applied[site]}
		for _, b := range st.Bundles {
			status.Retained = append(status.Retained, deploy.Retained{Gen: b.Gen, Note: b.Note, Bytes: len(b.Script)})
		}
		out = append(out, status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// SyncDeployments reconciles the local pipeline with every deployment
// record reachable from this node: records held locally (replication and
// repair deliver them to the site's replica set) plus the sites listed in
// the replicated deployment index (for nodes outside a record's replica
// set). The maintenance loop calls it periodically; it is how a node that
// crashed or was partitioned during a deploy catches up, and it is
// idempotent — applying an already-applied record is a no-op.
func (n *Node) SyncDeployments() {
	sites := make(map[string]bool)
	for _, rec := range n.store.VersionedRecords(func(site, key string) bool {
		return key == deploy.StateKey && site != deploy.IndexSite
	}) {
		if !rec.Delete {
			sites[rec.Site] = true
		}
	}
	var indexed map[string]bool
	if n.repEnabled() {
		if v, ok := n.deployGet(deploy.IndexSite); ok {
			if list, err := deploy.DecodeSites(v); err == nil {
				indexed = make(map[string]bool, len(list))
				for _, s := range list {
					indexed[s] = true
					sites[s] = true
				}
			}
		}
	}
	sorted := make([]string, 0, len(sites))
	for site := range sites {
		sorted = append(sorted, site)
	}
	sort.Strings(sorted)
	for _, site := range sorted {
		st, ok := n.deployRecord(site)
		if !ok {
			continue
		}
		n.applyDeploy(site, st)
		if indexed != nil && !indexed[site] {
			// Self-heal the index: this node holds a record the index lost
			// (two concurrent first deploys can race the index write).
			n.indexAdd(site)
		}
	}
}

// applyDeploy makes the local pipeline serve st's active generation. It is
// a pure function of the record's content: if the active bundle is already
// what the pipeline serves, nothing happens, so re-applies from sync loops
// and repair are free, and record convergence implies pipeline
// convergence. The compile happens before the table swap; requests never
// see a half-built stage, and a compile failure leaves the previous
// generation serving.
func (n *Node) applyDeploy(site string, st deploy.State) error {
	n.deployApplyMu.Lock()
	defer n.deployApplyMu.Unlock()
	if st.Active == 0 {
		return nil
	}
	b, ok := st.Find(st.Active)
	if !ok {
		return fmt.Errorf("core: deploy %s: active generation %d not retained in record", site, st.Active)
	}
	n.deployMu.Lock()
	cur := n.deployed[site]
	n.deployMu.Unlock()
	if cur != nil && cur.gen == st.Active && cur.script == b.Script {
		return nil
	}
	stage, err := n.loader.Compile(deploy.StageURL(site, st.Active), site, b.Script)
	if err != nil {
		n.deployCompErr.Add(1)
		return fmt.Errorf("core: deploy %s gen %d: %w", site, st.Active, err)
	}
	n.deployMu.Lock()
	n.deployed[site] = &deployActive{gen: st.Active, script: b.Script, stage: stage}
	n.deployMu.Unlock()
	n.deployApplied.Add(1)
	n.registerDeployGauge(site)
	return nil
}

// AppliedGeneration reports the deployment generation this node's pipeline
// serves for site (0 when none) — the harness asserts convergence with it.
func (n *Node) AppliedGeneration(site string) uint64 {
	n.deployMu.Lock()
	defer n.deployMu.Unlock()
	if d := n.deployed[site]; d != nil {
		return d.gen
	}
	return 0
}

// deployRecord reads site's deployment record: through the routed
// replicated read when replication is on (authoritative under churn),
// falling back to the local copy.
func (n *Node) deployRecord(site string) (deploy.State, bool) {
	if v, ok := n.deployGet(site); ok {
		if st, err := deploy.Decode(v); err == nil {
			return st, true
		}
	}
	return deploy.State{}, false
}

// deployGet reads the raw record value under (site, deploy.StateKey) —
// routed when replication is on, local otherwise. Replication RPCs do not
// filter the internal namespace, so routed reads work for deploy records
// exactly as for lease records.
func (n *Node) deployGet(site string) (string, bool) {
	if n.repEnabled() {
		if v, ok := n.repGet(nil, site, deploy.StateKey); ok {
			return v, true
		}
		return "", false
	}
	_, _, deleted, v, ok := n.store.GetVersioned(site, deploy.StateKey)
	if !ok || deleted {
		return "", false
	}
	return v, true
}

// deployPut persists a record value under (site, deploy.StateKey): through
// the replicated owner write path when replication is on (durable locally
// plus at least one replica before the deploy is acknowledged), a plain
// versioned local write otherwise — same contract as lease storage.
func (n *Node) deployPut(site, value string) error {
	if n.repEnabled() {
		return n.repPut(nil, site, deploy.StateKey, value)
	}
	n.repApplyMu.Lock()
	defer n.repApplyMu.Unlock()
	ver, _, _, _, _ := n.store.GetVersioned(site, deploy.StateKey)
	_, err := n.store.PutVersioned(state.Rec{
		Site: site, Key: deploy.StateKey, Ver: ver + 1, Origin: n.cfg.Name,
		Value: value,
	})
	return err
}

// indexAdd records site in the replicated deployment index so nodes
// outside the record's replica set can discover it. Best-effort and
// self-healing: SyncDeployments re-adds locally held sites the index
// lost to a concurrent write.
func (n *Node) indexAdd(site string) {
	var sites []string
	if v, ok := n.deployGet(deploy.IndexSite); ok {
		if cur, err := deploy.DecodeSites(v); err == nil {
			sites = cur
		}
	}
	for _, s := range sites {
		if s == site {
			return
		}
	}
	sites = append(sites, site)
	n.deployPut(deploy.IndexSite, deploy.EncodeSites(sites))
}

// broadcastDeploy nudges every ring peer to apply site's record now. The
// sweep is sequential in sorted name order so the deterministic harness
// replays it identically; failures are ignored — unreachable peers catch
// up from replication plus their own sync loop.
func (n *Node) broadcastDeploy(site string) {
	if n.tr == nil || n.cfg.Ring == nil {
		return
	}
	peers := append([]string(nil), n.cfg.Ring.Nodes()...)
	sort.Strings(peers)
	for _, p := range peers {
		if p == n.cfg.Name {
			continue
		}
		n.call(p, transport.Message{Type: msgDeployApply, Key: site})
	}
}

// serveDeployRPC answers peers' deployment nudges.
func (n *Node) serveDeployRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgDeployApply:
		if st, ok := n.deployRecord(msg.Key); ok {
			if err := n.applyDeploy(msg.Key, st); err != nil {
				return transport.Message{}, err
			}
		}
		return transport.Message{Args: []string{"ok"}}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown deploy message %q", msg.Type)
	}
}

// registerDeployGauge exports nakika_deploy_active_generation{site=...}
// the first time a site gets a live deployment on this node. Registration
// is scrape-safe at runtime (the registry serializes), and the callback
// reads the deployment table so rollbacks move the gauge down too.
func (n *Node) registerDeployGauge(site string) {
	if n.reg == nil {
		return
	}
	n.deployMu.Lock()
	if n.deployGauges == nil {
		n.deployGauges = make(map[string]bool)
	}
	if n.deployGauges[site] {
		n.deployMu.Unlock()
		return
	}
	n.deployGauges[site] = true
	n.deployMu.Unlock()
	n.reg.GaugeFunc("nakika_deploy_active_generation", "Deployment generation the site's pipeline serves on this node.",
		metrics.Labels{"site": site}, func() float64 { return float64(n.AppliedGeneration(site)) })
}
