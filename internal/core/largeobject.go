package core

import (
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/largeobject"
	"nakika/internal/state"
	"nakika/internal/store"
	"nakika/internal/transport"
)

// This file wires the chunked large-object tier (internal/largeobject) into
// the node: responses above Config.LargeObjectThreshold are split into
// content-addressed segments held in a disk slab, served back as lazy
// BodyStreams (so header-only scripts and Range requests never buffer the
// body), and advertised cluster-wide through one replicated hard-state index
// record per object. Segment *bodies* stay node-local soft state; only the
// small index (manifest + per-holder residency bitmaps) replicates.

// lobSite is the internal hard-state site that holds large-object index
// records, mirroring deploy.IndexSite for the deployment plane.
const lobSite = "nk:lob"

// lobStateKey returns the replicated-state key of cacheKey's index record.
// The "\x00nk:" prefix puts it in the reserved internal namespace, so
// scripts can neither read nor clobber it (state.IsInternalKey).
func lobStateKey(cacheKey string) string { return "\x00nk:lob:" + cacheKey }

// msgLobSeg is the peer RPC that fetches one segment body by cache key and
// segment ordinal. The reply is "hit" plus the raw segment bytes, or "miss".
const msgLobSeg = "lob.seg"

// Large-object defaults: segment size balances slab slot waste against
// per-segment overhead; capacity bounds the slab's disk footprint.
const (
	defaultLobSegment  = 256 << 10
	defaultLobCapacity = 512 << 20
)

// LargeObjectStats snapshots the tier plus the node's large-object counters.
type LargeObjectStats struct {
	Tier largeobject.Stats
	// StreamedServes counts responses served as lazy segment streams;
	// WholeIngests counts buffered bodies chunked into the tier after the
	// fact, StreamIngests cold fetches chunked as they arrived from the
	// origin. Adopted counts manifests learned from a replica's index
	// record; SegPeerFetches/SegOriginFetches count individual segment
	// bodies pulled from peers and from the origin (Range refetch).
	StreamedServes   int64
	WholeIngests     int64
	StreamIngests    int64
	Adopted          int64
	SegPeerFetches   int64
	SegOriginFetches int64
}

// LargeObject returns the node's large-object telemetry (zero when the tier
// is disabled).
func (n *Node) LargeObject() LargeObjectStats {
	st := LargeObjectStats{
		StreamedServes:   n.lobStreamed.Load(),
		WholeIngests:     n.lobWhole.Load(),
		StreamIngests:    n.lobStreamIng.Load(),
		Adopted:          n.lobAdopted.Load(),
		SegPeerFetches:   n.lobSegPeer.Load(),
		SegOriginFetches: n.lobSegOrigin.Load(),
	}
	if t := n.lobTier(); t != nil {
		st.Tier = t.Stats()
	}
	return st
}

// lobEnabled reports whether the node runs a large-object tier.
func (n *Node) lobEnabled() bool { return n.cfg.LargeObjectThreshold > 0 }

// openLob opens the tier: on the data filesystem under lob/ when the node
// persists, else on a private in-memory filesystem (segments and manifests
// then die with the process, like the memory cache).
func (n *Node) openLob() error {
	if !n.lobEnabled() {
		return nil
	}
	segSize := n.cfg.LargeObjectSegment
	if segSize <= 0 {
		segSize = defaultLobSegment
	}
	capacity := n.cfg.LargeObjectCapacity
	if capacity <= 0 {
		capacity = defaultLobCapacity
	}
	var fs store.FS
	if n.cfg.DataFS != nil {
		fs = store.Sub(n.cfg.DataFS, "lob")
	} else {
		fs = store.NewMemFS()
	}
	t, err := largeobject.OpenTier(fs, segSize, capacity)
	if err != nil {
		return fmt.Errorf("core: open large-object tier: %w", err)
	}
	n.lobMu.Lock()
	n.lob = t
	n.lobMu.Unlock()
	return nil
}

// lobTier returns the current tier handle (nil when disabled or crashed).
func (n *Node) lobTier() *largeobject.Tier {
	n.lobMu.Lock()
	defer n.lobMu.Unlock()
	return n.lob
}

// ---------------------------------------------------------------------------
// Serving: manifest -> lazy streamed response
// ---------------------------------------------------------------------------

// lobNow returns the tier's notion of now: the cache clock when one is
// injected (tests, simulated clusters), wall time otherwise.
func (n *Node) lobNow() time.Time {
	if n.cfg.Cache.Clock != nil {
		return n.cfg.Cache.Clock()
	}
	return time.Now()
}

// lobFresh reports whether m may still be served without revalidation: the
// manifest headers' freshness information (max-age/Expires) applied against
// its fetch time, with the whole-body cache's default TTL as the fallback —
// the same policy cache.Put uses for buffered entries.
func (n *Node) lobFresh(m *largeobject.Manifest, now time.Time) bool {
	probe := httpmsg.NewResponse(m.Status)
	if m.Header != nil {
		probe.Header = m.Header
	}
	ttl := probe.FreshFor(m.Fetched)
	if ttl <= 0 {
		ttl = n.cfg.Cache.DefaultTTL
	}
	if ttl <= 0 {
		ttl = 60 * time.Second // cache.Config's zero-value default
	}
	return now.Before(m.Fetched.Add(ttl))
}

// lobServe builds a streamed response for key if the tier holds a fresh
// manifest for it. Missing segments resolve lazily as the client reads:
// slab, then a holder from the replicated index, then an origin Range
// refetch — each verified against the manifest's content address.
//
// A stale manifest is never served. With revalidate (the single-flight miss
// path) it is revalidated against the origin with the stored validators;
// without (the pre-flight fast path) the caller falls through to the flight,
// so a stampede on an expired object still costs one conditional request.
func (n *Node) lobServe(key string, revalidate bool) *httpmsg.Response {
	t := n.lobTier()
	if t == nil {
		return nil
	}
	m, ok := t.Manifest(key)
	if !ok {
		return nil
	}
	if !n.lobFresh(m, n.lobNow()) {
		if !revalidate {
			return nil
		}
		if m = n.lobRevalidate(t, key, m); m == nil {
			return nil
		}
	}
	n.lobStreamed.Add(1)
	resp := httpmsg.NewResponse(m.Status)
	for k, vs := range m.Header {
		resp.Header[k] = append([]string(nil), vs...)
	}
	resp.Fetched = m.Fetched
	resp.FromCache = true
	resp.SetStream(t.NewStream(m, n.lobFetcher(key)))
	return resp
}

// lobRevalidate refreshes a stale manifest with a conditional origin GET on
// the stored validators. A 304 renews the manifest — cache.Refresh semantics
// at the tier: freshness extends, segment bodies are kept — while a changed
// 200 is re-ingested in place when it still qualifies for the tier. Any
// other outcome drops the manifest so the caller's miss path refetches.
// Returns the manifest to serve, or nil.
func (n *Node) lobRevalidate(t *largeobject.Tier, key string, m *largeobject.Manifest) *largeobject.Manifest {
	etag := m.Header.Get("Etag")
	lastMod := m.Header.Get("Last-Modified")
	_, url, ok := strings.Cut(m.Key, " ")
	if !ok || (etag == "" && lastMod == "") {
		t.DeleteManifest(key)
		return nil
	}
	req, err := httpmsg.NewRequest(http.MethodGet, url)
	if err != nil {
		t.DeleteManifest(key)
		return nil
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	if lastMod != "" {
		req.Header.Set("If-Modified-Since", lastMod)
	}
	n.originFetches.Add(1)
	resp, err := n.cfg.Upstream.Do(req)
	if err != nil {
		// Origin unreachable: keep the manifest (its validators stay usable
		// for the next attempt) but never serve stale — the caller's miss
		// path surfaces the fetch error, as the whole-body cache would.
		return nil
	}
	switch resp.Status {
	case http.StatusNotModified:
		refreshed, ok := t.RefreshManifest(key, n.lobNow(), resp.Header)
		if !ok {
			return nil
		}
		n.publishLob(key, refreshed)
		return refreshed
	case http.StatusOK:
		// Content changed under the validators: the old segments are dead.
		// Re-ingest the new body in place when it still qualifies.
		t.DeleteManifest(key)
		if resp.Cacheable() && int64(len(resp.Body)) >= n.cfg.LargeObjectThreshold {
			if m2, err := t.IngestBody(key, resp.Status, resp.Header, n.lobNow(), resp.Body); err == nil {
				n.lobWhole.Add(1)
				n.publishLob(key, m2)
				return m2
			}
		}
		return nil
	default:
		t.DeleteManifest(key)
		return nil
	}
}

// lobAdopt learns key's manifest from the replicated index record (written
// by whichever node ingested the object) and serves it as a stream. This is
// how a node that never saw the object — or lost its soft state in a crash —
// serves a range without refetching the whole body. A stale index manifest
// is not adopted: the node fetches fresh from the origin instead of
// resurrecting an expired copy cluster-wide.
func (n *Node) lobAdopt(key string) *httpmsg.Response {
	t := n.lobTier()
	if t == nil {
		return nil
	}
	idx, ok := n.lobIndexGet(key)
	if !ok || idx.Manifest == nil || !idx.Manifest.Complete() {
		return nil
	}
	if !n.lobFresh(idx.Manifest, n.lobNow()) {
		return nil
	}
	if err := t.PutManifest(idx.Manifest); err != nil {
		return nil
	}
	n.lobAdopted.Add(1)
	return n.lobServe(key, false)
}

// maybeIngestLob chunks an already-buffered 200 into the tier when it
// crosses the size threshold, so subsequent requests stream it segment by
// segment. The caller still returns the buffered response it has in hand.
// The tier is a shared cache: responses the whole-body cache would refuse
// (no-store, private, no-cache) are never ingested.
func (n *Node) maybeIngestLob(key string, resp *httpmsg.Response) bool {
	t := n.lobTier()
	if t == nil || resp.Status != http.StatusOK || resp.Stream != nil || !resp.Cacheable() {
		return false
	}
	if int64(len(resp.Body)) < n.cfg.LargeObjectThreshold {
		return false
	}
	if !strings.HasPrefix(key, http.MethodGet+" ") {
		return false
	}
	m, err := t.IngestBody(key, resp.Status, resp.Header, resp.Fetched, resp.Body)
	if err != nil {
		return false
	}
	n.lobWhole.Add(1)
	n.publishLob(key, m)
	return true
}

// ---------------------------------------------------------------------------
// Pull-through streaming ingest
// ---------------------------------------------------------------------------

// StreamHead describes a streaming origin response before its body has been
// consumed: status, headers, and the declared content length (-1 unknown).
type StreamHead struct {
	Status int
	Header http.Header
	Length int64
}

// StreamFetcher is the optional upstream interface that exposes a response
// body as a stream instead of buffering it. When the upstream supports it,
// a cold fetch of a large object is ingested segment by segment while the
// first client reads — first byte reaches the client before the origin
// finishes sending (cut-through, Section 2's bucket brigade at object
// granularity). Fetchers that only implement Do still work; large objects
// are then chunked after the buffered fetch completes.
type StreamFetcher interface {
	DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error)
}

// lobHeadCacheable applies Response.Cacheable's shared-cache rules to a
// streaming head whose body has not been read yet, so uncacheable responses
// (no-store, private, no-cache) are never ingested into the shared tier.
func lobHeadCacheable(head StreamHead) bool {
	probe := httpmsg.NewResponse(head.Status)
	if head.Header != nil {
		probe.Header = head.Header
	}
	return probe.Cacheable()
}

// DoStream implements StreamFetcher for the real HTTP client.
func (f *HTTPFetcher) DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	hr, err := req.ToHTTPRequest()
	if err != nil {
		return StreamHead{}, nil, err
	}
	hresp, err := client.Do(hr)
	if err != nil {
		return StreamHead{}, nil, err
	}
	head := StreamHead{Status: hresp.StatusCode, Header: hresp.Header.Clone(), Length: hresp.ContentLength}
	return head, hresp.Body, nil
}

// lobIngest tracks one in-flight streaming ingest so concurrent readers of
// the same object can wait for the segment they need instead of refetching.
type lobIngest struct {
	mu       sync.Mutex
	cond     *sync.Cond
	appended int
	done     bool
	err      error
}

func newLobIngest() *lobIngest {
	ing := &lobIngest{}
	ing.cond = sync.NewCond(&ing.mu)
	return ing
}

func (ing *lobIngest) advance(appended int) {
	ing.mu.Lock()
	ing.appended = appended
	ing.mu.Unlock()
	ing.cond.Broadcast()
}

func (ing *lobIngest) finish(err error) {
	ing.mu.Lock()
	ing.done = true
	ing.err = err
	ing.mu.Unlock()
	ing.cond.Broadcast()
}

// waitFor blocks until segment ord has been appended or the ingest ended,
// returning the ingest error (nil when ord is available or the ingest
// completed, in which case the segment id is in the manifest).
func (ing *lobIngest) waitFor(ord int) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	for ing.appended <= ord && !ing.done {
		ing.cond.Wait()
	}
	return ing.err
}

// lobIngestFor returns the in-flight ingest for key, if any.
func (n *Node) lobIngestFor(key string) *lobIngest {
	n.lobIngMu.Lock()
	defer n.lobIngMu.Unlock()
	return n.lobIngests[key]
}

// lobStreamOrigin performs a cold origin fetch through the streaming
// interface. It either takes over the fetch entirely (handled=true: the
// returned response streams the object while a background goroutine ingests
// it) or buffers small/non-200 responses into an ordinary response for the
// normal miss path. handled=false means the caller should fetch itself.
func (n *Node) lobStreamOrigin(key string, req *httpmsg.Request) (*httpmsg.Response, bool, error) {
	t := n.lobTier()
	if t == nil || req.Method != http.MethodGet {
		return nil, false, nil
	}
	sf, ok := n.cfg.Upstream.(StreamFetcher)
	if !ok {
		return nil, false, nil
	}
	head, body, err := sf.DoStream(req)
	if err != nil {
		// A failed streaming fetch is not fatal to the request: the caller
		// falls back to the buffered Do path, which may succeed (and reports
		// its own error if it does not).
		return nil, false, nil
	}
	if head.Status != http.StatusOK || head.Length < n.cfg.LargeObjectThreshold || !lobHeadCacheable(head) {
		// Small object (or redirect/error/unknown length, or a response a
		// shared cache must not store): buffer it and let the ordinary miss
		// path classify it — cache.Put re-checks Cacheable on the full
		// response, so no-store bodies pass through uncached.
		defer body.Close()
		data, err := io.ReadAll(body)
		if err != nil {
			return nil, true, fmt.Errorf("core: read origin body: %w", err)
		}
		resp := httpmsg.NewResponse(head.Status)
		if h := head.Header.Clone(); h != nil {
			resp.Header = h
		}
		resp.Body = data
		resp.Fetched = time.Now()
		return resp, true, nil
	}

	// Large object: install the (incomplete, memory-only) manifest, start
	// the background ingest, and hand the client a stream that rides it.
	m := &largeobject.Manifest{
		Key:      key,
		Status:   head.Status,
		Header:   head.Header.Clone(),
		TotalLen: head.Length,
		SegSize:  t.SegSize(),
		Fetched:  time.Now(),
	}
	if err := t.PutManifest(m); err != nil {
		body.Close()
		return nil, true, err
	}
	ing := newLobIngest()
	n.lobIngMu.Lock()
	if n.lobIngests == nil {
		n.lobIngests = make(map[string]*lobIngest)
	}
	n.lobIngests[key] = ing
	n.lobIngMu.Unlock()
	n.lobStreamIng.Add(1)
	go n.lobIngestLoop(t, key, m, ing, body)

	resp := httpmsg.NewResponse(m.Status)
	resp.Header = m.Header.Clone()
	resp.Fetched = m.Fetched
	resp.SetStream(t.NewStream(m, n.lobFetcher(key)))
	return resp, true, nil
}

// lobIngestLoop chunks the origin body into the tier. Segment ids become
// visible to concurrent streams through AppendSegment; the ingest tracker
// wakes readers blocked on a not-yet-arrived segment. A short or failed body
// aborts the ingest and drops the manifest — readers see the error, and the
// next request refetches.
func (n *Node) lobIngestLoop(t *largeobject.Tier, key string, m *largeobject.Manifest, ing *lobIngest, body io.ReadCloser) {
	defer body.Close()
	defer func() {
		n.lobIngMu.Lock()
		delete(n.lobIngests, key)
		n.lobIngMu.Unlock()
	}()
	buf := make([]byte, t.SegSize())
	numSegs := m.NumSegments()
	for ord := 0; ord < numSegs; ord++ {
		from, to := m.SegmentSpan(ord)
		chunk := buf[:to-from]
		if _, err := io.ReadFull(body, chunk); err != nil {
			t.DeleteManifest(key)
			ing.finish(fmt.Errorf("core: ingest %q segment %d: %w", key, ord, err))
			return
		}
		id := largeobject.HashSegment(chunk)
		if err := t.PutSegment(id, chunk); err != nil {
			t.DeleteManifest(key)
			ing.finish(err)
			return
		}
		if _, err := t.AppendSegment(key, ord, id); err != nil {
			ing.finish(err)
			return
		}
		ing.advance(ord + 1)
	}
	ing.finish(nil)
	if final, ok := t.Manifest(key); ok {
		n.publishLob(key, final)
	}
}

// ---------------------------------------------------------------------------
// Segment resolution: slab -> in-flight ingest -> peer -> origin Range
// ---------------------------------------------------------------------------

// lobFetcher returns the tier stream's resolver for key's missing segments.
// The slab was already consulted by the stream; here the order is: wait on
// an in-flight ingest, then a holder from the replicated index, then an
// origin Range refetch — each coalesced per (key, ordinal) so a thundering
// herd of readers costs one fetch per segment.
func (n *Node) lobFetcher(key string) largeobject.Fetcher {
	return func(m *largeobject.Manifest, ord int) ([]byte, error) {
		if ing := n.lobIngestFor(key); ing != nil {
			if err := ing.waitFor(ord); err != nil {
				return nil, err
			}
			// The ingest appended ord (or finished): its id is in the
			// current manifest and the body should be in the slab. Fall
			// through to the shared path if it was already evicted.
			if t := n.lobTier(); t != nil {
				if cur, ok := t.Manifest(key); ok && ord < len(cur.Segments) {
					if data, ok := t.GetSegment(cur.Segments[ord]); ok {
						return data, nil
					}
				}
			}
		}
		return n.segFlights.Do(key+"#"+strconv.Itoa(ord), func() ([]byte, error) {
			return n.lobFetchSegment(key, ord)
		})
	}
}

// lobFetchSegment is the single-flight leader path for one missing segment.
func (n *Node) lobFetchSegment(key string, ord int) ([]byte, error) {
	t := n.lobTier()
	if t == nil {
		return nil, fmt.Errorf("core: large-object tier unavailable")
	}
	m, ok := t.Manifest(key)
	if !ok {
		return nil, fmt.Errorf("core: no manifest for %q", key)
	}
	var want largeobject.SegID
	haveID := ord < len(m.Segments)
	if haveID {
		want = m.Segments[ord]
		// Re-check the slab: another reader may have resolved this ordinal
		// between the stream's miss and this flight winning the slot.
		if data, ok := t.GetSegment(want); ok {
			return data, nil
		}
	}
	from, to := m.SegmentSpan(ord)

	// Holders advertised in the replicated index, in sorted order for
	// determinism. Only segments the holder claims resident are asked for.
	if haveID && n.tr != nil {
		if idx, ok := n.lobIndexGet(key); ok {
			holders := make([]string, 0, len(idx.Holders))
			for h := range idx.Holders {
				if h != n.cfg.Name && idx.Holders[h].Has(ord) {
					holders = append(holders, h)
				}
			}
			sort.Strings(holders)
			for _, h := range holders {
				reply, err := n.call(h, transport.Message{Type: msgLobSeg, Key: key, Args: []string{strconv.Itoa(ord)}})
				if err != nil || len(reply.Args) == 0 || reply.Args[0] != "hit" {
					continue
				}
				if largeobject.HashSegment(reply.Body) != want {
					continue // corrupt or stale peer copy; try the next
				}
				n.lobSegPeer.Add(1)
				t.PutSegment(want, reply.Body)
				n.lobMaybeAnnounce(t, key)
				return reply.Body, nil
			}
		}
	}

	// Origin Range refetch. The cache key is "METHOD URL" (CacheKey), so
	// the URL is recoverable without keeping the original request around.
	_, url, ok := strings.Cut(m.Key, " ")
	if !ok {
		return nil, fmt.Errorf("core: malformed manifest key %q", m.Key)
	}
	req, err := httpmsg.NewRequest(http.MethodGet, url)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", from, to-1))
	n.originFetches.Add(1)
	n.lobSegOrigin.Add(1)
	resp, err := n.cfg.Upstream.Do(req)
	if err != nil {
		return nil, err
	}
	var data []byte
	switch resp.Status {
	case http.StatusPartialContent:
		data = resp.Body
	case http.StatusOK:
		// Origin ignored the Range header: slice the span out of the full
		// body (a correct 200 must carry the whole object).
		if int64(len(resp.Body)) != m.TotalLen {
			return nil, fmt.Errorf("core: origin sent %d bytes for %d-byte object", len(resp.Body), m.TotalLen)
		}
		data = resp.Body[from:to]
	default:
		return nil, fmt.Errorf("core: origin range fetch returned %d", resp.Status)
	}
	if int64(len(data)) != to-from {
		return nil, fmt.Errorf("core: origin range fetch: got %d bytes, want %d", len(data), to-from)
	}
	if haveID && largeobject.HashSegment(data) != want {
		return nil, fmt.Errorf("core: segment %d of %q failed content verification", ord, key)
	}
	id := want
	if !haveID {
		id = largeobject.HashSegment(data)
	}
	t.PutSegment(id, data)
	n.lobMaybeAnnounce(t, key)
	return data, nil
}

// serveLobRPC answers peers' segment fetches. Bodies are served only for
// ordinals whose id the local manifest already records — an in-flight ingest
// exposes exactly the segments it has durably chunked.
func (n *Node) serveLobRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgLobSeg:
		t := n.lobTier()
		if t == nil {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		m, ok := t.Manifest(msg.Key)
		if !ok || len(msg.Args) == 0 {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		ord, err := strconv.Atoi(msg.Args[0])
		if err != nil || ord < 0 || ord >= len(m.Segments) {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		data, ok := t.GetSegment(m.Segments[ord])
		if !ok {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		return transport.Message{Args: []string{"hit"}, Body: data}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown lob message %q", msg.Type)
	}
}

// ---------------------------------------------------------------------------
// Replicated segment index (one hard-state record per object)
// ---------------------------------------------------------------------------

// lobIndexGet reads key's index record through the replicated read path
// (owner-routed with failover) when replication is on, locally otherwise —
// the same contract as deploy records.
func (n *Node) lobIndexGet(key string) (*largeobject.Index, bool) {
	var raw string
	var ok bool
	if n.repEnabled() {
		raw, ok = n.repGet(nil, lobSite, lobStateKey(key))
	} else {
		var deleted bool
		_, _, deleted, raw, ok = n.store.GetVersioned(lobSite, lobStateKey(key))
		ok = ok && !deleted
	}
	if !ok {
		return nil, false
	}
	dec, err := base64.StdEncoding.DecodeString(raw)
	if err != nil {
		return nil, false
	}
	idx, err := largeobject.DecodeIndex(dec)
	if err != nil {
		return nil, false
	}
	return idx, true
}

// lobIndexPut writes key's index record through the replicated owner write
// path (durable on the owner plus its successors) when replication is on.
func (n *Node) lobIndexPut(key string, idx *largeobject.Index) error {
	value := base64.StdEncoding.EncodeToString(largeobject.EncodeIndex(idx))
	if n.repEnabled() {
		return n.repPut(nil, lobSite, lobStateKey(key), value)
	}
	n.repApplyMu.Lock()
	defer n.repApplyMu.Unlock()
	ver, _, _, _, _ := n.store.GetVersioned(lobSite, lobStateKey(key))
	_, err := n.store.PutVersioned(state.Rec{
		Site: lobSite, Key: lobStateKey(key), Ver: ver + 1, Origin: n.cfg.Name,
		Value: value,
	})
	return err
}

// publishLob merges this node into key's replicated index record: installs
// the manifest (first writer wins; the content address makes all complete
// manifests for a key interchangeable) and records the local residency
// bitmap. The read-modify-write is serialized per node by lobPubMu; losing
// a cross-node race costs only staler holder hints, which readers treat as
// best-effort anyway. Failures are non-fatal — the object still serves
// locally, and the next announcement retries.
func (n *Node) publishLob(key string, m *largeobject.Manifest) {
	t := n.lobTier()
	if t == nil || m == nil || !m.Complete() {
		return
	}
	n.lobPubMu.Lock()
	defer n.lobPubMu.Unlock()
	idx, ok := n.lobIndexGet(key)
	if !ok || idx.Manifest == nil || !idx.Manifest.Complete() ||
		m.Fetched.After(idx.Manifest.Fetched) {
		// First writer wins, except a strictly fresher manifest (a
		// revalidation's renewed Fetched, or a re-ingest of changed content)
		// replaces the record so replicas stop adopting the expired one.
		if !ok {
			idx = &largeobject.Index{}
		}
		idx.Manifest = m.Clone()
	}
	if idx.Holders == nil {
		idx.Holders = make(map[string]largeobject.BitSet)
	}
	idx.Holders[n.cfg.Name] = t.Resident(m)
	_ = n.lobIndexPut(key, idx)
}

// lobMaybeAnnounce refreshes this node's holder bitmap in the index once it
// holds a full copy of the object. Announcing per segment fetch would turn
// every read into a replicated write; a complete copy is the one residency
// transition worth advertising (it makes this node a full peer source).
func (n *Node) lobMaybeAnnounce(t *largeobject.Tier, key string) {
	m, ok := t.Manifest(key)
	if !ok || !m.Complete() {
		return
	}
	if t.Resident(m).Count() == m.NumSegments() {
		n.publishLob(key, m)
	}
}

// ---------------------------------------------------------------------------
// Per-segment single-flight ([]byte results, unlike the response flights)
// ---------------------------------------------------------------------------

type segFlightGroup struct {
	mu    sync.Mutex
	calls map[string]*segFlightCall
}

type segFlightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// Do coalesces concurrent fetches of one (key, ordinal). All callers share
// the returned bytes; segment buffers are read-only by contract (readers
// copy out of them), so no per-waiter clone is needed.
func (g *segFlightGroup) Do(key string, fn func() ([]byte, error)) ([]byte, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*segFlightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.data, c.err
	}
	c := &segFlightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			c.err = errFlightPanic
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
			panic(r)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.data, c.err = fn()
	return c.data, c.err
}
