// Package core implements the Na Kika edge node: the proxy runtime that ties
// the scripting pipeline, the proxy cache, the congestion-based resource
// manager, the structured overlay, hard state, and content integrity into
// one deployable unit (Figure 1 of the paper).
package core

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nakika/internal/cache"
	"nakika/internal/httpmsg"
	"nakika/internal/largeobject"
	"nakika/internal/loadview"
	"nakika/internal/metrics"
	"nakika/internal/overlay"
	"nakika/internal/pipeline"
	"nakika/internal/resource"
	"nakika/internal/script"
	"nakika/internal/state"
	"nakika/internal/store"
	nktrace "nakika/internal/trace"
	"nakika/internal/transport"
)

// PersistConfig tunes the node's storage engine when a data filesystem is
// configured.
type PersistConfig struct {
	// NoGroupCommit disables fsync batching on the hard-state log.
	NoGroupCommit bool
	// CompactBytes is the log size that triggers the snapshot/truncate
	// cycle; zero means the engine default (4 MiB).
	CompactBytes int64
	// DiskCacheBytes bounds the cache's disk tier; zero means 1 GiB.
	DiskCacheBytes int64
}

// Fetcher retrieves a resource from an upstream server. The default fetcher
// uses net/http; tests and simulations inject in-process origins.
type Fetcher interface {
	Do(req *httpmsg.Request) (*httpmsg.Response, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(req *httpmsg.Request) (*httpmsg.Response, error)

// Do implements Fetcher.
func (f FetcherFunc) Do(req *httpmsg.Request) (*httpmsg.Response, error) { return f(req) }

// HTTPFetcher fetches over real HTTP with net/http.
type HTTPFetcher struct {
	Client *http.Client
}

// Do implements Fetcher.
func (f *HTTPFetcher) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	hr, err := req.ToHTTPRequest()
	if err != nil {
		return nil, err
	}
	hresp, err := client.Do(hr)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	return httpmsg.FromHTTPResponse(hresp)
}

// Config configures an edge node.
type Config struct {
	// Name identifies the node in the overlay, in Via headers, and in logs.
	Name string
	// Region is the node's coarse location, used by the redirector to pick
	// nearby nodes for clients.
	Region string
	// Upstream fetches from origin servers; nil means a real HTTP client.
	Upstream Fetcher
	// Cache configures the proxy cache.
	Cache cache.Config
	// ScriptLimits bounds every stage's scripting context; zero values mean
	// 50M steps and 64 MiB of heap.
	ScriptLimits script.Limits
	// StageContextPool bounds each stage's pool of ready scripting contexts
	// (concurrent handler executions per stage); zero means one per
	// schedulable CPU. Forking a pool context is charged to the owning
	// site's memory budget.
	StageContextPool int
	// Resources configures the congestion controller; EnableResources turns
	// it on (off matches the paper's "without resource controls" baseline).
	Resources       resource.Config
	EnableResources bool
	// ClientWallURL and ServerWallURL override the administrative control
	// script locations.
	ClientWallURL string
	ServerWallURL string
	// LocalNetworks lists CIDR blocks considered part of the node's hosting
	// organization for System.isLocal.
	LocalNetworks []string
	// Ring is the shared overlay; nil disables cooperative caching.
	Ring *overlay.Ring
	// Transport carries peer-to-peer traffic (cooperative cache fetches,
	// state replication, and — via the Ring — overlay routing). Nil means
	// the Ring's transport, so in-process nodes sharing a Ring communicate
	// by direct calls exactly as before; pass a TCP or simulated transport
	// to run the same protocol across processes or under fault injection.
	Transport transport.Transport
	// Directory locates peer nodes in-process; retained for embedding
	// API compatibility (peer cache fetches now ride the Transport).
	Directory *Directory
	// Bus is the shared reliable messaging service for hard state
	// replication. Nil with a Ring and Transport configured means a
	// node-private bus whose updates are replicated over the transport;
	// nil without them disables replication.
	Bus *state.Bus
	// ReplicationFactor is the number of copies kept of every hard-state
	// key when a Ring and Transport are configured: the ring owner of the
	// key plus ReplicationFactor-1 of its successors, written
	// synchronously, with reads failing over to the first live successor
	// when the owner is dead (see internal/core/replication.go). Zero
	// means the default of 3; 1 keeps owner-only placement (no replicas);
	// negative disables successor replication entirely, restoring the
	// legacy optimistic broadcast of state updates over the Bus.
	ReplicationFactor int
	// StateQuota is the per-site persistent storage quota in bytes.
	StateQuota int64
	// OffloadThreshold is the load score above which an arriving request is
	// shed to the least-loaded live replica of its site instead of executing
	// locally (see internal/core/offload.go for the load score definition).
	// Zero disables offload entirely — the request path is byte-identical to
	// a build without the offload layer.
	OffloadThreshold float64
	// OffloadMaxDepth caps how many times one request may be forwarded
	// before the holder must execute it locally (loop prevention under
	// partitions and universally hot clusters); zero means 2.
	OffloadMaxDepth int
	// HedgeAfter is the latency budget for replicated hard-state reads:
	// when the acting owner's expected round trip (a per-peer EWMA of RPC
	// RTTs) exceeds it, the read is hedged to the next replica in successor
	// order. Zero disables hedging.
	HedgeAfter time.Duration
	// LeaseTTL is the default time-to-live of distributed leases taken
	// without an explicit TTL (see internal/core/lease.go); zero means 30s.
	LeaseTTL time.Duration
	// LoadClock drives load-score decay and RTT measurement; nil means wall
	// time. The cluster harness injects the simulated network's virtual
	// clock so load and hedging behaviour is deterministic under seed.
	LoadClock func() time.Duration
	// LoadHalfLife is the decay half-life of the load score's work
	// component; zero means the loadview default (2s).
	LoadHalfLife time.Duration
	// DataFS, when non-nil, roots the node's persistent storage engine:
	// hard state is backed by a write-ahead log with snapshot compaction
	// (acknowledged writes survive a crash), and fresh cache entries
	// evicted from memory demote to a disk tier the node rewarms from
	// after restart. Nil keeps everything in memory, the seed behaviour.
	// cmd/nakikad builds a DirFS from -data-dir; the cluster harness
	// injects per-node in-memory filesystems.
	DataFS store.FS
	// Persist tunes the storage engine; zero values mean defaults.
	Persist PersistConfig
	// LargeObjectThreshold, when positive, enables the chunked large-object
	// tier: 200 responses at least this many bytes long are split into
	// fixed-size content-addressed segments held in a disk slab and served
	// as lazy body streams (Range requests and header-only scripts never
	// buffer the body). Zero disables the tier, the seed behaviour.
	LargeObjectThreshold int64
	// LargeObjectSegment is the tier's segment size; zero means 256 KiB.
	LargeObjectSegment int64
	// LargeObjectCapacity bounds the segment slab's byte footprint; zero
	// means 512 MiB. Segments beyond it evict LRU.
	LargeObjectCapacity int64
	// ClientHostLookup resolves client IPs to hostnames for client
	// predicates.
	ClientHostLookup func(ip string) string
	// NoObserve disables the node's observability plane: no metrics
	// registry, no request latency histogram, no trace ids minted, and no
	// samples recorded — requests and RPC frames are byte-identical to a
	// build without the plane. The bench harness uses it to measure the
	// plane's hot-path cost.
	NoObserve bool
	// TraceRingSize bounds the per-node ring of recent request samples
	// behind /admin/traces; zero means trace.DefaultRingSize.
	TraceRingSize int
}

// Stats aggregates node-level counters.
type Stats struct {
	Requests      int64
	CacheHits     int64
	PeerHits      int64
	OriginFetches int64
	// CoalescedFetches counts requests that joined another request's
	// in-flight fetch of the same key instead of contacting the origin
	// themselves (single-flight stampede suppression).
	CoalescedFetches int64
	Generated        int64
	Rejected         int64
	Errors           int64
	Cache            cache.Stats
	Resources        resource.Stats
	Replication      ReplicationStats
	Offload          OffloadStats
	Lease            LeaseStats
}

// OffloadStats counts load-shedding and hedged-read activity (all zero when
// offload and hedging are disabled).
type OffloadStats struct {
	// Executed counts requests this node ran through its own pipeline —
	// arrivals it kept plus offloads it accepted. The acceptance tests use
	// it to measure per-node load spread.
	Executed int64
	// ForwardedOut counts requests this node shed to a less-loaded replica.
	ForwardedOut int64
	// ReceivedIn counts offloaded requests accepted from peers.
	ReceivedIn int64
	// Fallbacks counts forwards that failed in transit and were executed
	// locally instead (the partition fallback).
	Fallbacks int64
	// DepthCapHits counts requests that reached the forwarding-depth cap
	// and were pinned to local execution.
	DepthCapHits int64
	// HedgedReads counts replicated reads diverted to the next replica
	// because the acting owner's expected RTT blew the hedge budget;
	// HedgeHits counts the ones the hedge target answered.
	HedgedReads int64
	HedgeHits   int64
}

// ReplicationStats counts successor-list replication activity (all zero
// when replication is disabled).
type ReplicationStats struct {
	// ForwardedOps counts mutations this node routed to another acting
	// owner instead of executing locally.
	ForwardedOps int64
	// ReplicaPushes counts records peers accepted from this node's
	// synchronous replication and repair pushes.
	ReplicaPushes int64
	// FailoverReads counts reads served by a successor after the routed
	// owner was found dead.
	FailoverReads int64
	// RecordsApplied counts records this node applied from peers (pushes
	// and handoff streams) that superseded its local copy.
	RecordsApplied int64
}

// Directory maps node names to live nodes so cooperative cache fetches can
// be served in-process; it stands in for the peer-to-peer HTTP fetches a
// distributed deployment would perform.
type Directory struct {
	mu    sync.RWMutex
	nodes map[string]*Node
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{nodes: make(map[string]*Node)} }

// Register adds a node.
func (d *Directory) Register(n *Node) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nodes[n.Name()] = n
}

// Lookup returns the named node, or nil.
func (d *Directory) Lookup(name string) *Node {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nodes[name]
}

// Node is one Na Kika edge node.
type Node struct {
	cfg      Config
	cache    *cache.Cache
	loader   *pipeline.Loader
	executor *pipeline.Executor
	res      *resource.Manager
	store    *state.Store
	log      *state.AccessLog
	overlay  *overlay.Node
	tr       transport.Transport
	bus      *state.Bus
	localNet []*net.IPNet
	replicas map[string]*state.Replica
	repMu    sync.Mutex
	flights  flightGroup
	// pendingPub holds cache keys whose overlay publish failed (index owner
	// partitioned or crashed); RepublishPending retries them after heal.
	pubMu      sync.Mutex
	pendingPub map[string]struct{}
	// persistMu guards kvLog, the handle to the persistent hard-state
	// engine across crash/recover cycles (nil without DataFS).
	persistMu sync.Mutex
	kvLog     *store.Log
	ownBus    bool
	// Successor-list replication state: the resolved factor (0 when
	// disabled), one lock serializing versioned read-modify-write applies,
	// and the flag overlay stabilization sets when churn calls for repair.
	repFactor     int
	repApplyMu    sync.Mutex
	repairPending atomic.Bool
	// pendingDel records deletes issued while no acting owner was
	// reachable (the vocabulary API has no error channel); repair
	// re-executes them through the owner path, which assigns a version
	// current enough to win. Keyed by replica key.
	delMu      sync.Mutex
	pendingDel map[string]delIntent

	// Load accounting and offload/hedging state: the node's own load meter,
	// its view of peer loads (fed by gossip piggybacked on overlay
	// maintenance and offload replies), and per-peer RTT estimates for
	// hedge budgets.
	meter    *loadview.Meter
	view     *loadview.View
	rtts     *loadview.RTT
	offDepth int
	// cands caches per-site offload candidate sets; candGen is bumped by
	// the overlay churn hook, and offloadCandidates rebuilds the map when
	// its candMapGen trails it. wallStart anchors the monotonic fallback
	// load clock.
	candMu     sync.Mutex
	cands      map[string][]string
	candMapGen uint64
	candGen    atomic.Uint64
	wallStart  time.Time

	// leaseMu serializes lease arbitration on this node (acting-owner
	// decisions are read-decide-store cycles; see internal/core/lease.go).
	leaseMu sync.Mutex

	// Observability plane (see internal/core/observe.go): the trace-id
	// generator, the ring of recent request samples, the metrics registry,
	// and the request latency histogram. All nil/unused when
	// Config.NoObserve is set — ring doubles as the enable flag.
	ids     *nktrace.IDGen
	ring    *nktrace.Ring
	reg     *metrics.Registry
	latency *metrics.Histogram

	requests      atomic.Int64
	cacheHits     atomic.Int64
	peerHits      atomic.Int64
	originFetches atomic.Int64
	coalesced     atomic.Int64
	generated     atomic.Int64
	rejected      atomic.Int64
	errors        atomic.Int64
	repForwarded  atomic.Int64
	repPushes     atomic.Int64
	repFailovers  atomic.Int64
	repApplied    atomic.Int64
	offExecuted   atomic.Int64
	offFwdOut     atomic.Int64
	offRecvIn     atomic.Int64
	offFallback   atomic.Int64
	offDepthCap   atomic.Int64
	hedged        atomic.Int64
	hedgeHits     atomic.Int64
	leaseAcquired atomic.Int64
	leaseRenewed  atomic.Int64
	leaseReleased atomic.Int64
	leaseDenied   atomic.Int64
	leaseCrashHO  atomic.Int64
	leaseExpiryHO atomic.Int64
	leaseFenced   atomic.Int64
	leaseFenceRej atomic.Int64

	// Live script deployment plane (see internal/core/deploy.go): the
	// per-site table of compiled, swapped-in deployment stages; the set of
	// sites whose per-site active-generation gauge has been registered; and
	// the deploy outcome counters. deployMu guards only the table and gauge
	// set (it sits on the request hot path); deployPubMu serializes this
	// node's publish read-modify-write cycles; deployApplyMu serializes
	// record-to-pipeline applies so a stale apply cannot land over a newer
	// one.
	deployMu      sync.Mutex
	deployPubMu   sync.Mutex
	deployApplyMu sync.Mutex
	deployed      map[string]*deployActive
	deployGauges  map[string]bool
	deployApplied atomic.Int64
	deployRej     atomic.Int64
	deployRolled  atomic.Int64
	deployCompErr atomic.Int64

	// Chunked large-object tier (see internal/core/largeobject.go): the
	// tier handle (nil when disabled or crashed), the in-flight streaming
	// ingests keyed by cache key, the per-(key,segment) fetch flights, the
	// lock serializing this node's index read-modify-write cycles, and the
	// tier counters.
	lobMu        sync.Mutex
	lob          *largeobject.Tier
	lobIngMu     sync.Mutex
	lobIngests   map[string]*lobIngest
	lobPubMu     sync.Mutex
	segFlights   segFlightGroup
	lobStreamed  atomic.Int64
	lobWhole     atomic.Int64
	lobStreamIng atomic.Int64
	lobAdopted   atomic.Int64
	lobSegPeer   atomic.Int64
	lobSegOrigin atomic.Int64
}

// NewNode builds a node from cfg.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: node name is required")
	}
	if cfg.Upstream == nil {
		cfg.Upstream = &HTTPFetcher{}
	}
	if cfg.ScriptLimits.MaxSteps == 0 {
		cfg.ScriptLimits.MaxSteps = 50_000_000
	}
	if cfg.ScriptLimits.MaxHeapBytes == 0 {
		cfg.ScriptLimits.MaxHeapBytes = 64 << 20
	}
	n := &Node{
		cfg:        cfg,
		wallStart:  time.Now(),
		log:        state.NewAccessLog(),
		replicas:   make(map[string]*state.Replica),
		pendingPub: make(map[string]struct{}),
		pendingDel: make(map[string]delIntent),
		deployed:   make(map[string]*deployActive),
	}
	cacheCfg := cfg.Cache
	if cfg.DataFS != nil {
		kv, disk, err := n.openStorage()
		if err != nil {
			return nil, err
		}
		n.kvLog = kv
		n.store = state.NewStoreBacked(kv)
		cacheCfg.L2 = disk
	} else {
		n.store = state.NewStore(cfg.StateQuota)
	}
	n.cache = cache.New(cacheCfg)
	if err := n.openLob(); err != nil {
		return nil, err
	}
	for _, cidr := range cfg.LocalNetworks {
		_, ipnet, err := net.ParseCIDR(cidr)
		if err != nil {
			return nil, fmt.Errorf("core: local network %q: %w", cidr, err)
		}
		n.localNet = append(n.localNet, ipnet)
	}
	n.res = resource.NewManager(cfg.Resources)
	n.res.SetEnabled(cfg.EnableResources)
	n.loader = pipeline.NewLoader(hostAdapter{n}, cfg.ScriptLimits)
	n.loader.ContextPoolSize = cfg.StageContextPool
	n.loader.ForkCharge = func(site string, heapBytes int64) {
		n.res.Charge(site, resource.Memory, float64(heapBytes))
	}
	n.executor = &pipeline.Executor{
		Loader:           n.loader,
		Host:             hostAdapter{n},
		FetchOrigin:      n.fetchWithCache,
		ClientWallURL:    cfg.ClientWallURL,
		ServerWallURL:    cfg.ServerWallURL,
		ClientHostLookup: cfg.ClientHostLookup,
		SiteDeployment:   n.siteDeployment,
	}
	if cfg.EnableResources {
		n.executor.Resources = n.res
	}
	if !cfg.NoObserve {
		n.ids = nktrace.NewIDGen(cfg.Name)
		n.ring = nktrace.NewRing(cfg.TraceRingSize)
		n.buildRegistry()
	}
	// Load accounting is always on (it is a handful of atomic/mutex ops per
	// request); the offload and hedging behaviours it feeds are opt-in via
	// OffloadThreshold / HedgeAfter.
	n.meter = loadview.NewMeter(cfg.LoadClock, cfg.LoadHalfLife)
	n.view = loadview.NewView(cfg.LoadClock, cfg.LoadHalfLife)
	n.rtts = loadview.NewRTT(0)
	n.offDepth = cfg.OffloadMaxDepth
	if n.offDepth <= 0 {
		n.offDepth = 2
	}
	if cfg.Ring != nil {
		n.overlay = cfg.Ring.Join(cfg.Name, cfg.Region)
		n.overlay.SetLoadGossip(n.LoadScore, n.view.Observe)
	}
	if cfg.Directory != nil {
		cfg.Directory.Register(n)
	}
	n.tr = cfg.Transport
	if n.tr == nil && cfg.Ring != nil {
		n.tr = cfg.Ring.Transport
	}
	// Hard state replication: a shared Bus keeps the original direct-call
	// semantics; otherwise, with peers reachable over the transport, each
	// node runs a private bus whose updates are broadcast as state.update
	// messages.
	n.bus = cfg.Bus
	if n.bus == nil && n.tr != nil && cfg.Ring != nil {
		n.bus = state.NewBus()
		n.bus.Remote = n.broadcastState
		n.ownBus = true
	}
	// Successor-list replication of hard state: on by default (factor 3)
	// whenever the node has an overlay position and a transport to push
	// replicas over; a negative factor keeps the legacy bus broadcast.
	if cfg.Ring != nil && n.tr != nil && cfg.ReplicationFactor >= 0 {
		n.repFactor = cfg.ReplicationFactor
		if n.repFactor == 0 {
			n.repFactor = 3
		}
	}
	if n.repEnabled() || n.offloadEnabled() {
		n.overlay.SetChurnHook(func() {
			// Churn shifts both replication targets and offload candidate
			// sets; the repair flag is a no-op without replication.
			n.repairPending.Store(true)
			n.candGen.Add(1)
		})
	}
	if n.tr != nil {
		// One registered name serves every subsystem: overlay routing and
		// index RPCs, cooperative cache fetches, state replication, and
		// successor-replication pushes/handoff.
		// This replaces the overlay-only handler Ring.Join registered.
		mux := transport.NewMux()
		if n.overlay != nil {
			mux.Route("ov.", n.overlay.ServeRPC)
		}
		mux.Route("cache.", n.serveCacheRPC)
		mux.Route("state.", n.serveStateRPC)
		mux.Route("rep.", n.serveRepRPC)
		mux.Route("off.", n.serveOffloadRPC)
		mux.Route("lease.", n.serveLeaseRPC)
		mux.Route("deploy.", n.serveDeployRPC)
		mux.Route("lob.", n.serveLobRPC)
		n.tr.Register(cfg.Name, mux.Serve)
	}
	return n, nil
}

// openStorage opens (or reopens after a crash) the persistent engines
// rooted in cfg.DataFS: the hard-state log under state/ and the disk
// cache tier under cache/.
func (n *Node) openStorage() (*store.Log, *cache.Disk, error) {
	quota := n.cfg.StateQuota
	if quota <= 0 {
		quota = 16 << 20
	}
	kv, err := store.OpenLog(store.Sub(n.cfg.DataFS, "state"), store.LogConfig{
		Quota:         quota,
		NoGroupCommit: n.cfg.Persist.NoGroupCommit,
		CompactBytes:  n.cfg.Persist.CompactBytes,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: open state log: %w", err)
	}
	clock := n.cfg.Cache.Clock
	disk, err := cache.OpenDisk(store.Sub(n.cfg.DataFS, "cache"), n.cfg.Persist.DiskCacheBytes, clock)
	if err != nil {
		kv.Close()
		return nil, nil, fmt.Errorf("core: open disk cache: %w", err)
	}
	return kv, disk, nil
}

// StoreStats returns the persistent engine's counters (zero without a
// data filesystem).
func (n *Node) StoreStats() store.LogStats {
	n.persistMu.Lock()
	kv := n.kvLog
	n.persistMu.Unlock()
	if kv == nil {
		return store.LogStats{}
	}
	return kv.Stats()
}

// Shutdown flushes and closes the node's persistent store and stops its
// private replication bus — the graceful path a SIGTERM takes. The node
// must not serve requests afterwards.
func (n *Node) Shutdown() error {
	if n.ownBus && n.bus != nil {
		n.bus.Close()
	}
	n.cache.FlushToDisk()
	n.persistMu.Lock()
	kv := n.kvLog
	n.persistMu.Unlock()
	if kv == nil {
		return nil
	}
	return kv.Close()
}

// Crash simulates an abrupt process death for the fault-injection
// harness: all soft state is discarded (overlay index slice, memory
// cache) and the storage engine is abandoned mid-flight without flushing
// — unacknowledged writes are lost, exactly as a real crash would lose
// them, while the data filesystem keeps every byte already written.
func (n *Node) Crash() {
	if n.overlay != nil {
		n.overlay.DropIndex()
	}
	n.cache.Clear()
	n.cache.SetL2(nil)
	// The deployment table is soft state: a real crashed process loses its
	// compiled stages and rebuilds them from the replicated records on the
	// way back up (SyncDeployments).
	n.deployMu.Lock()
	n.deployed = make(map[string]*deployActive)
	n.deployMu.Unlock()
	// The large-object tier handle is abandoned mid-flight too: the
	// manifest table and ingest trackers die with the process, while
	// persisted manifests and slot files stay on the data filesystem for
	// Recover to rescan (torn slots fail their checksum and are reclaimed).
	n.lobMu.Lock()
	n.lob = nil
	n.lobMu.Unlock()
	n.lobIngMu.Lock()
	for _, ing := range n.lobIngests {
		ing.finish(fmt.Errorf("core: node crashed"))
	}
	n.lobIngests = nil
	n.lobIngMu.Unlock()
	n.persistMu.Lock()
	kv := n.kvLog
	n.persistMu.Unlock()
	if kv != nil {
		kv.Abandon()
		return
	}
	// Without persistence the process death takes the hard state with it:
	// swap in an empty in-memory engine so a restarted node really does
	// come back empty-handed.
	quota := n.cfg.StateQuota
	if quota <= 0 {
		quota = 16 << 20
	}
	n.store.SetBackend(store.NewMem(quota))
}

// Recover reopens the persistent engines from the node's data filesystem
// after a Crash: hard state is rebuilt by replaying the log (recovering
// exactly the acknowledged writes), and the disk cache tier is rescanned
// so the node rewarms without touching the origin. Without a data
// filesystem it is a no-op — the node restarts empty-handed, the seed
// behaviour.
func (n *Node) Recover() error {
	if n.cfg.DataFS == nil {
		// The large-object tier still reopens (on a fresh in-memory
		// filesystem): an in-memory node comes back with the tier enabled
		// but empty, like its memory cache.
		return n.openLob()
	}
	kv, disk, err := n.openStorage()
	if err != nil {
		return err
	}
	n.persistMu.Lock()
	n.kvLog = kv
	n.persistMu.Unlock()
	n.store.SetBackend(kv)
	n.cache.SetL2(disk)
	return n.openLob()
}

// Name returns the node's name.
func (n *Node) Name() string { return n.cfg.Name }

// Region returns the node's region.
func (n *Node) Region() string { return n.cfg.Region }

// Resources exposes the node's resource manager (benchmarks drive its
// control loop directly; deployments run Manager.Run in a goroutine).
func (n *Node) Resources() *resource.Manager { return n.res }

// Cache exposes the node's proxy cache.
func (n *Node) Cache() *cache.Cache { return n.cache }

// AccessLog exposes the node's per-site access log.
func (n *Node) AccessLog() *state.AccessLog { return n.log }

// Loader exposes the stage loader (extensions inject generated stages with
// it).
func (n *Node) Loader() *pipeline.Loader { return n.loader }

// Overlay exposes the node's overlay membership (nil without a Ring); the
// cluster harness uses it to drive maintenance and inspect routing state.
func (n *Node) Overlay() *overlay.Node { return n.overlay }

// SetResourceControls enables or disables congestion-based resource
// controls at runtime (the Section 5.1 comparison).
func (n *Node) SetResourceControls(on bool) {
	n.res.SetEnabled(on)
	if on {
		n.executor.Resources = n.res
	} else {
		n.executor.Resources = nil
	}
}

// Stats returns a snapshot of node counters.
func (n *Node) Stats() Stats {
	return Stats{
		Requests:         n.requests.Load(),
		CacheHits:        n.cacheHits.Load(),
		PeerHits:         n.peerHits.Load(),
		OriginFetches:    n.originFetches.Load(),
		CoalescedFetches: n.coalesced.Load(),
		Generated:        n.generated.Load(),
		Rejected:         n.rejected.Load(),
		Errors:           n.errors.Load(),
		Cache:            n.cache.Stats(),
		Resources:        n.res.Stats(),
		Replication: ReplicationStats{
			ForwardedOps:   n.repForwarded.Load(),
			ReplicaPushes:  n.repPushes.Load(),
			FailoverReads:  n.repFailovers.Load(),
			RecordsApplied: n.repApplied.Load(),
		},
		Offload: OffloadStats{
			Executed:     n.offExecuted.Load(),
			ForwardedOut: n.offFwdOut.Load(),
			ReceivedIn:   n.offRecvIn.Load(),
			Fallbacks:    n.offFallback.Load(),
			DepthCapHits: n.offDepthCap.Load(),
			HedgedReads:  n.hedged.Load(),
			HedgeHits:    n.hedgeHits.Load(),
		},
		Lease: LeaseStats{
			Acquired:        n.leaseAcquired.Load(),
			Renewed:         n.leaseRenewed.Load(),
			Released:        n.leaseReleased.Load(),
			Denied:          n.leaseDenied.Load(),
			CrashHandovers:  n.leaseCrashHO.Load(),
			ExpiryHandovers: n.leaseExpiryHO.Load(),
			FencedWrites:    n.leaseFenced.Load(),
			FencedRejects:   n.leaseFenceRej.Load(),
		},
	}
}

// LoadScore returns the node's current load score (in-flight requests plus
// exponentially-decayed recent work): what the node gossips to peers and
// compares against Config.OffloadThreshold.
func (n *Node) LoadScore() float64 { return n.meter.Score() }

// PeerLoadView returns the node's decayed last-known load score for each
// peer it has observed (tests and debugging).
func (n *Node) PeerLoadView() map[string]float64 { return n.view.Snapshot() }

// Handle runs one request through the node: pipeline execution, caching, and
// access logging. It is the programmatic entry point; ServeHTTP wraps it for
// real HTTP traffic. When the node is over its offload threshold the
// request may instead be shed to a less-loaded replica of the site (see
// internal/core/offload.go) and executed there.
func (n *Node) Handle(req *httpmsg.Request) (*httpmsg.Response, *pipeline.Trace, error) {
	n.requests.Add(1)
	if n.ring != nil && req.TraceID == 0 {
		// Mint the request's cross-node trace id: it rides every RPC this
		// request fans out into (offload forwards, hedged reads, lease
		// operations), so samples recorded on different nodes share it.
		req.TraceID = n.ids.Next()
	}
	var start time.Time
	if n.ring != nil {
		start = time.Now()
	}
	if resp, who, err, shed := n.shedRequest(req, 0); shed {
		trace := &pipeline.Trace{Offloaded: true, OffloadPeer: who}
		trace.Act.ID = req.TraceID
		if err != nil {
			n.errors.Add(1)
			n.observe(req, nil, trace, start)
			return nil, trace, err
		}
		n.observe(req, resp, trace, start)
		return resp, trace, nil
	}
	return n.handleLocal(req)
}

// handleLocal executes one request on this node's own pipeline, metering
// its load cost.
func (n *Node) handleLocal(req *httpmsg.Request) (*httpmsg.Response, *pipeline.Trace, error) {
	n.offExecuted.Add(1)
	n.meter.Begin()
	// The completed request's load cost: one unit, weighted up by the
	// site's congestion share when the resource controller sees it burning
	// CPU — an expensive pipeline heats the node faster than a cache hit.
	// Deferred so a panic escaping the pipeline (recovered per-connection
	// by net/http) cannot leave the in-flight count inflated forever.
	defer func() { n.meter.End(1 + n.res.Usage(req.SiteKey(), resource.CPU)) }()
	start := time.Now()
	resp, trace, err := n.executor.Execute(req)
	if err != nil {
		n.errors.Add(1)
		n.observe(req, nil, trace, start)
		return nil, trace, err
	}
	if trace.RejectedBusy {
		n.rejected.Add(1)
	}
	if trace.Generated {
		n.generated.Add(1)
	}
	if resp != nil {
		if resp.Via == "" {
			resp.Via = n.cfg.Name
		}
		resp.Header.Set("X-Na-Kika-Node", n.cfg.Name)
		if trace.Generation != 0 {
			// Tag the response with the one deployment generation its whole
			// pipeline ran against, so clients (and the e2e harness) can
			// verify no response mixes script versions across a deploy.
			resp.Header.Set("X-Na-Kika-Gen", strconv.FormatUint(trace.Generation, 10))
		}
		if resp.Stream != nil {
			trace.Streamed = true
			if p, ok := resp.Stream.(interface{ Progress() (int, int) }); ok {
				trace.Segments, trace.SegmentsResident = p.Progress()
			}
		}
		n.log.Append(req.SiteKey(), state.FormatAccess(req.ClientIP, req.Method, req.URL.String(), resp.Status, int(resp.TotalLen()), time.Since(start)))
	}
	n.observe(req, resp, trace, start)
	return resp, trace, nil
}

// ServeHTTP implements http.Handler so the node can serve as a real proxy.
// Requests are staged in pooled httpmsg objects; a request is recycled only
// when no script handler ran against it (a script could retain its bound
// request, so touched requests are left to the garbage collector).
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := httpmsg.AcquireFromHTTPRequest(r, 8<<20)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Strip the .nakika.net suffix clients append for DNS redirection, so
	// the origin host is recovered (Section 3).
	if host := req.URL.Hostname(); strings.HasSuffix(host, ".nakika.net") {
		req.URL.Host = strings.TrimSuffix(host, ".nakika.net")
	}
	resp, trace, err := n.Handle(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Range narrowing happens at the very edge, after every script saw the
	// full 200: a satisfiable Range on a GET/HEAD becomes a 206 (lazy — a
	// streamed body only reads the requested segments), an unsatisfiable
	// one a 416. WriteToMethod suppresses the body on HEAD and on bodyless
	// statuses (1xx/204/304) per RFC 7230 §3.3.3.
	resp = httpmsg.ApplyRange(req, resp)
	if err := resp.WriteToMethod(w, req.Method); err != nil {
		n.errors.Add(1)
	}
	if trace != nil && !trace.RanHandlers() {
		req.Release()
	}
}

// fetchWithCache is the pipeline's origin fetcher: local cache, then the
// cooperative cache via the overlay, then the upstream origin. Successful
// fetches are cached and published in the overlay index. Concurrent misses
// of the same key are coalesced into a single origin/peer fetch whose
// response fans out to every waiter (single-flight), so a cold-cache
// stampede costs one upstream request instead of N.
func (n *Node) fetchWithCache(req *httpmsg.Request) (*httpmsg.Response, error) {
	key := req.CacheKey()
	cacheable := req.Method == http.MethodGet || req.Method == http.MethodHead
	if !cacheable {
		n.originFetches.Add(1)
		return n.cfg.Upstream.Do(req)
	}

	if resp := n.cache.Get(key); resp != nil {
		n.cacheHits.Add(1)
		return resp, nil
	}
	// Large objects live in the chunked tier, not the response cache: a
	// resident fresh manifest serves a lazy stream whose segments resolve
	// from the slab, a peer, or an origin Range refetch as the client reads.
	// A stale manifest falls through to the single flight, where the leader
	// revalidates it against the origin.
	if resp := n.lobServe(key, false); resp != nil {
		n.cacheHits.Add(1)
		return resp, nil
	}
	resp, shared, err := n.flights.Do(key, func() (*httpmsg.Response, error) {
		return n.fetchMiss(key, req)
	})
	if shared {
		n.coalesced.Add(1)
	}
	return resp, err
}

// fetchMiss is the single-flight leader path for one cacheable key:
// cooperative cache first, then the upstream origin.
func (n *Node) fetchMiss(key string, req *httpmsg.Request) (*httpmsg.Response, error) {
	// Re-check the local cache: a previous flight may have stored the key
	// between this caller's miss and its flight winning the slot.
	if resp := n.cache.Get(key); resp != nil {
		n.cacheHits.Add(1)
		return resp, nil
	}
	if resp := n.lobServe(key, true); resp != nil {
		n.cacheHits.Add(1)
		return resp, nil
	}
	// A replica's index record may carry the object's manifest even though
	// this node has never seen a byte of it: adopt the manifest and stream,
	// pulling segments from the advertised holders (or the origin, by
	// Range) instead of refetching the whole body.
	if resp := n.lobAdopt(key); resp != nil {
		n.peerHits.Add(1)
		return resp, nil
	}
	// Cooperative cache: ask the overlay who has a copy and fetch it from
	// that peer's cache over the transport.
	if n.overlay != nil && n.tr != nil {
		holders, _ := n.overlay.Locate(key)
		for _, holder := range holders {
			if holder == n.cfg.Name {
				continue
			}
			resp := n.peerFetch(holder, key)
			if resp == nil {
				continue
			}
			n.peerHits.Add(1)
			resp.Via = holder
			n.cache.Put(key, resp)
			n.publish(key)
			return resp, nil
		}
	}

	n.originFetches.Add(1)
	// Cold fetch: through the streaming path when the upstream supports it
	// and the tier is on — a large 200 is then chunked into segments as it
	// arrives, with the first byte reaching the client before the origin
	// finishes sending. Otherwise the ordinary buffered fetch.
	resp, handled, err := n.lobStreamOrigin(key, req)
	if !handled {
		resp, err = n.cfg.Upstream.Do(req)
	}
	if err != nil {
		return nil, err
	}
	if resp.Stream != nil {
		// Streaming ingest in progress; the index record publishes when it
		// completes. Nothing to cache — the tier owns the object.
		return resp, nil
	}
	if resp.Status == http.StatusNotModified {
		// A 304 is never cached as a body: it revalidates the stored 200,
		// extending its freshness (the validator semantics the conditional
		// request asked for).
		n.cache.Refresh(key, resp)
		return resp, nil
	}
	if n.maybeIngestLob(key, resp) {
		// Chunked into the tier; later requests stream it. This response
		// already has the body in memory, so return it as-is.
		return resp, nil
	}
	if resp.Cacheable() {
		if n.cache.Put(key, resp) && resp.Status == http.StatusOK {
			// Only successful responses are announced in the cooperative
			// index; error responses stay in the local cache only.
			n.publish(key)
		}
	} else if resp.Status == http.StatusNotFound {
		n.cache.PutNegative(key)
	}
	return resp, nil
}

func (n *Node) publish(key string) {
	if n.overlay == nil {
		return
	}
	// Publication failures are not fatal — the local cache still has the
	// copy — but under partitions they would silently shrink the
	// cooperative index, so failed publishes are remembered and retried by
	// RepublishPending after the network heals.
	if _, err := n.overlay.Publish(key); err != nil {
		n.pubMu.Lock()
		n.pendingPub[key] = struct{}{}
		n.pubMu.Unlock()
	}
}

// RepublishPending retries overlay publishes that failed while the index
// owner was unreachable, dropping keys that have since left the local
// cache. It returns the number of entries still pending afterwards.
func (n *Node) RepublishPending() int {
	if n.overlay == nil {
		return 0
	}
	n.pubMu.Lock()
	keys := make([]string, 0, len(n.pendingPub))
	for k := range n.pendingPub {
		keys = append(keys, k)
	}
	n.pubMu.Unlock()
	for _, key := range keys {
		if n.cache.Get(key) == nil {
			n.pubMu.Lock()
			delete(n.pendingPub, key)
			n.pubMu.Unlock()
			continue
		}
		if _, err := n.overlay.Publish(key); err == nil {
			n.pubMu.Lock()
			delete(n.pendingPub, key)
			n.pubMu.Unlock()
		}
	}
	n.pubMu.Lock()
	defer n.pubMu.Unlock()
	return len(n.pendingPub)
}

// ---------------------------------------------------------------------------
// Peer RPC: cooperative cache fetches and state replication
// ---------------------------------------------------------------------------

// encodeResponse and decodeResponse carry a cached response across the
// transport: the httpmsg binary codec, with decode still accepting gob from
// peers one release behind.
func encodeResponse(resp *httpmsg.Response) []byte {
	return httpmsg.EncodeResponse(resp)
}

func decodeResponse(b []byte) (*httpmsg.Response, error) {
	return httpmsg.DecodeResponse(b)
}

// peerFetch retrieves key from a peer's cache over the transport; nil means
// the peer is unreachable, errored, or no longer holds the key.
func (n *Node) peerFetch(holder, key string) *httpmsg.Response {
	reply, err := n.call(holder, transport.Message{Type: "cache.get", Key: key})
	if err != nil || len(reply.Args) == 0 || reply.Args[0] != "hit" {
		return nil
	}
	resp, err := decodeResponse(reply.Body)
	if err != nil {
		return nil
	}
	return resp
}

// serveCacheRPC answers peers' cooperative-cache fetches.
func (n *Node) serveCacheRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case "cache.get":
		resp := n.cache.Get(msg.Key)
		if resp == nil {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		return transport.Message{Args: []string{"hit"}, Body: encodeResponse(resp)}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown cache message %q", msg.Type)
	}
}

// broadcastState replicates one locally published state update to every
// other ring member over the transport. Delivery is optimistic
// (last-writer-wins, per the paper's default strategy): unreachable peers
// simply miss the update. The fan-out is concurrent across peers — one
// dead peer costs at most one call timeout, not a timeout per peer — but
// each update completes before the next is sent, preserving per-peer
// update order.
func (n *Node) broadcastState(msg state.Message) {
	if n.cfg.Ring == nil || n.tr == nil {
		return
	}
	body := state.EncodeBusMessage(msg)
	var wg sync.WaitGroup
	for _, peer := range n.cfg.Ring.Nodes() {
		if peer == n.cfg.Name {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			_, _ = n.call(peer, transport.Message{Type: "state.update", Body: body})
		}(peer)
	}
	wg.Wait()
}

// serveStateRPC applies replication updates received from peers.
func (n *Node) serveStateRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case "state.update":
		m, err := state.DecodeBusMessage(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		if n.bus == nil {
			return transport.Message{}, fmt.Errorf("core: no bus to apply state update")
		}
		// Touch the replica so a node that has never served the site still
		// applies the update (the shared-bus mode attaches lazily too, but
		// a remote update is an explicit signal the site is active).
		n.replica(m.Site)
		n.bus.Inject(m)
		return transport.Message{}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown state message %q", msg.Type)
	}
}

// FlushLogs posts accumulated access-log entries to each site's configured
// log URL through the upstream fetcher.
func (n *Node) FlushLogs() error {
	return n.log.Flush(func(site, postURL string, lines []string) error {
		req, err := httpmsg.NewRequest(http.MethodPost, postURL)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		req.Body = []byte(strings.Join(lines, "\n"))
		resp, err := n.cfg.Upstream.Do(req)
		if err != nil {
			return err
		}
		if resp.Status >= 400 {
			return fmt.Errorf("core: log post to %s returned %d", postURL, resp.Status)
		}
		return nil
	})
}

// SetLogPostURL configures where a site's access log entries are posted.
func (n *Node) SetLogPostURL(site, url string) { n.log.SetPostURL(site, url) }

// replica returns (creating on demand) the hard state replica for site.
func (n *Node) replica(site string) *state.Replica {
	n.repMu.Lock()
	defer n.repMu.Unlock()
	if r, ok := n.replicas[site]; ok {
		return r
	}
	r := &state.Replica{Site: site, Node: n.cfg.Name, Store: n.store, Bus: n.bus}
	if n.bus != nil {
		r.Attach()
	}
	n.replicas[site] = r
	return r
}

// ---------------------------------------------------------------------------
// Host surface (the pipeline reaches these through hostAdapter, which
// threads the per-request trace act in; see internal/core/observe.go)
// ---------------------------------------------------------------------------

// Fetch retrieves a resource on behalf of a script (and of the stage
// loader), going through the same cache path as origin fetches.
func (n *Node) Fetch(req *httpmsg.Request) (*httpmsg.Response, error) {
	return n.fetchWithCache(req)
}

// CacheGet gives scripts read access to the proxy cache under script-chosen
// keys (namespaced to avoid clashing with response cache keys).
func (n *Node) CacheGet(key string) *httpmsg.Response {
	return n.cache.Get("script:" + key)
}

// CachePut stores script-generated content in the proxy cache.
func (n *Node) CachePut(key string, resp *httpmsg.Response) {
	n.cache.Put("script:"+key, resp)
}

// IsLocalClient reports whether ip falls in one of the node's configured
// local networks (loopback always counts).
func (n *Node) IsLocalClient(ip string) bool {
	parsed := net.ParseIP(ip)
	if parsed == nil {
		return false
	}
	if parsed.IsLoopback() {
		return true
	}
	for _, ipnet := range n.localNet {
		if ipnet.Contains(parsed) {
			return true
		}
	}
	return false
}

// Usage exposes a site's normalized congestion contribution to scripts.
func (n *Node) Usage(site, resourceName string) float64 {
	var kind resource.Kind
	switch resourceName {
	case "cpu":
		kind = resource.CPU
	case "memory":
		kind = resource.Memory
	case "bandwidth":
		kind = resource.Bandwidth
	case "running-time":
		kind = resource.RunningTime
	case "bytes-transferred":
		kind = resource.BytesTransferred
	default:
		return 0
	}
	return n.res.Usage(site, kind)
}

// Log appends a message to the site's access log.
func (n *Node) Log(site, message string) { n.log.Append(site, message) }

// StateGet reads site-partitioned hard state. With successor replication
// enabled the read is routed to the key's acting owner and fails over to
// the first live successor when the owner is dead; otherwise it reads the
// local replica.
func (n *Node) StateGet(site, key string) (string, bool) { return n.stateGet(nil, site, key) }

func (n *Node) stateGet(act *nktrace.Act, site, key string) (string, bool) {
	if state.IsInternalKey(key) {
		// The internal namespace (lease records) is invisible to scripts:
		// reads miss, writes and deletes are refused. Lease state is
		// reached through the Lease vocabulary instead.
		return "", false
	}
	if n.repEnabled() {
		return n.repGet(act, site, key)
	}
	return n.replica(site).Get(key)
}

// StatePut writes site-partitioned hard state. With successor replication
// enabled the write is routed to the key's acting owner, made durable
// there, and synchronously pushed to the owner's successors before it is
// acknowledged; otherwise it writes locally and propagates the update when
// a bus is configured.
func (n *Node) StatePut(site, key, value string) error { return n.statePut(nil, site, key, value) }

func (n *Node) statePut(act *nktrace.Act, site, key, value string) error {
	if state.IsInternalKey(key) {
		return fmt.Errorf("core: key %q is in the reserved internal namespace", key)
	}
	if n.repEnabled() {
		return n.repPut(act, site, key, value)
	}
	r := n.replica(site)
	if n.bus == nil {
		return n.store.Put(site, key, value)
	}
	return r.Put(key, value)
}

// StateDelete removes site-partitioned hard state (a versioned tombstone
// under successor replication, so the removal wins on every replica).
// The vocabulary API is void, so when no acting owner is reachable the
// delete is not silently dropped: a local tombstone keeps the node
// reading its own delete, the intent is queued, and the next repair pass
// re-executes it through the owner path (which assigns a version current
// enough to win), making the delete eventual rather than lost.
func (n *Node) StateDelete(site, key string) { n.stateDelete(nil, site, key) }

func (n *Node) stateDelete(act *nktrace.Act, site, key string) {
	if state.IsInternalKey(key) {
		return
	}
	if n.repEnabled() {
		if err := n.repDelete(act, site, key); err != nil {
			n.repApplyMu.Lock()
			ver, _, _, _, _ := n.store.GetVersioned(site, key)
			_, _ = n.store.PutVersioned(state.Rec{Site: site, Key: key, Ver: ver + 1, Origin: n.cfg.Name, Delete: true})
			n.repApplyMu.Unlock()
			n.delMu.Lock()
			n.pendingDel[state.ReplicaKey(site, key)] = delIntent{site: site, key: key}
			n.delMu.Unlock()
			n.repairPending.Store(true)
		}
		return
	}
	r := n.replica(site)
	if n.bus == nil {
		n.store.Delete(site, key)
		return
	}
	r.Delete(key)
}

// StateKeys lists a site's hard state keys. Under successor replication
// the keys of a site span the whole ring, so the listing scatters to
// every reachable member and merges (tombstones filtered) — keeping it
// consistent with StateGet, which also routes cluster-wide.
func (n *Node) StateKeys(site string) []string { return n.stateKeys(nil, site) }

func (n *Node) stateKeys(act *nktrace.Act, site string) []string {
	if n.repEnabled() {
		return n.repKeys(act, site)
	}
	return n.store.Keys(site)
}

// Propagate sends an application-level replication message for site.
func (n *Node) Propagate(site, message string) error {
	if n.bus == nil {
		return fmt.Errorf("core: no messaging service configured")
	}
	n.bus.Publish(site, n.cfg.Name, message)
	return nil
}

// NodeName identifies the node to scripts.
func (n *Node) NodeName() string { return n.cfg.Name }

// Now returns the current time.
func (n *Node) Now() time.Time { return time.Now() }
