package core

import (
	"fmt"
	"strconv"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/loadview"
	"nakika/internal/pipeline"
	"nakika/internal/transport"
)

// Load-aware request offload. Every node meters its own load as a cheap
// exponentially-decayed score — in-flight requests plus recently completed
// work, weighted by the resource controller's CPU congestion share — and
// gossips the score for free on the overlay's existing maintenance RPCs
// (ping/stabilize/notify piggyback it; see overlay.SetLoadGossip), so each
// node holds a fresh load view of its successors and predecessor. Offload
// replies refresh the view too, which is what keeps it current for the
// peers that matter mid-burst.
//
// When a request arrives at a node whose score exceeds OffloadThreshold,
// the node forwards the whole request over the transport to the
// least-loaded member of the site's replica set — the ring owner of the
// site name and its next successors, i.e. the nodes that hold (or, for a
// site going hot, are about to hold) the site's cooperative-cache entries
// and hard-state partitions — and returns that node's response. Three
// rules keep this from melting down: a forward must target a node whose
// viewed load is strictly below the sender's (no ping-pong between two hot
// nodes), a request carries a forwarding depth that is capped (a request
// caught in a universally hot or partitioned cluster executes locally at
// the cap), and any transit failure falls back to local execution (a
// partition can cost a request one failed hop, never strand or loop it).

// msgOffExec asks a peer to execute a full proxied request on the caller's
// behalf (the "off." prefix is what transport.Mux routes on). Args[0] is
// the forwarding depth, Args[1] the sender's load score; the reply carries
// the replier's post-execution load score in Args[0] and the name of the
// node that ultimately executed in Args[1].
const msgOffExec = "off.exec"

// call sends one RPC to a peer through the node's transport, folding the
// measured round trip into the per-peer RTT EWMA that hedge budgets are
// compared against. Only completed round trips train the estimate — a
// delivery failure says the peer is unreachable, not fast.
func (n *Node) call(to string, msg transport.Message) (transport.Message, error) {
	start := n.loadNow()
	reply, err := n.tr.Call(n.cfg.Name, to, msg)
	if err == nil || transport.IsRemote(err) {
		n.rtts.Observe(to, n.loadNow()-start)
	}
	return reply, err
}

// loadNow reads the load clock: virtual under the cluster harness,
// monotonic wall time since node construction in production — time.Since
// keeps Go's monotonic reading, so an NTP step during an RPC cannot
// corrupt the RTT estimates that drive hedging.
func (n *Node) loadNow() time.Duration {
	if n.cfg.LoadClock != nil {
		return n.cfg.LoadClock()
	}
	return time.Since(n.wallStart)
}

// offloadEnabled reports whether the load-shedding layer is active.
func (n *Node) offloadEnabled() bool {
	return n.cfg.OffloadThreshold > 0 && n.tr != nil && n.overlay != nil
}

// offloadCandidates returns the execution replica set of the site: the
// ring owner of the site name, the successors that replicate its hard
// state, plus the next routed successor (the node repair would promote
// first on churn — it is about to hold the site's state anyway), excluding
// this node. Shedding inside this set concentrates the site's soft state
// instead of smearing it over the ring.
//
// The set is cached per site and invalidated by the overlay churn hook: a
// node over its threshold is exactly the node that cannot afford a burst
// of ring lookups per arriving request, and between churn events the set
// is stable. A stale set merely misroutes one forward, which falls back
// to local execution.
func (n *Node) offloadCandidates(site string) []string {
	gen := n.candGen.Load()
	n.candMu.Lock()
	if n.candMapGen != gen || n.cands == nil {
		// Churn invalidated the cache: drop it whole, so superseded entries
		// never linger.
		n.cands = make(map[string][]string)
		n.candMapGen = gen
	}
	if names, ok := n.cands[site]; ok {
		n.candMu.Unlock()
		return names
	}
	n.candMu.Unlock()

	fanout := n.repFactor
	if fanout < 3 {
		fanout = 3
	}
	fanout++
	avoid := make(map[string]bool)
	var out []string
	for len(avoid) < fanout {
		owner, _, err := n.overlay.LookupNameAvoid(site, avoid)
		if err != nil || owner == "" || avoid[owner] {
			break
		}
		avoid[owner] = true
		if owner != n.cfg.Name {
			out = append(out, owner)
		}
	}
	n.candMu.Lock()
	if n.candMapGen == gen {
		// The site key comes from the client-controlled Host header, so the
		// cache must stay bounded: a long-tail sweep resets it rather than
		// growing it without limit.
		if len(n.cands) >= maxCandCacheEntries {
			n.cands = make(map[string][]string)
		}
		n.cands[site] = out
	}
	n.candMu.Unlock()
	return out
}

// maxCandCacheEntries bounds the per-site candidate cache (entries are a
// few strings each; the bound exists because site keys are
// client-controlled Host headers).
const maxCandCacheEntries = 4096

// RefreshRTTs re-probes every peer whose round-trip estimate exceeds the
// hedge budget and returns how many it probed. A peer that turned slow
// stops being contacted by the hedged read path, so on a read-heavy
// workload nothing would ever retrain its estimate downward once the
// slowness passes — reads would hedge to one replica forever. Maintenance
// loops (the cluster harness's StabilizeAll, nakikad's 5s tick) call this
// so recovery is noticed at maintenance cadence without taxing any read.
// The probe is a plain overlay ping issued through the RTT-observing call
// path.
func (n *Node) RefreshRTTs() int {
	if n.cfg.HedgeAfter <= 0 || n.tr == nil {
		return 0
	}
	probed := 0
	for _, peer := range n.rtts.Slow(n.cfg.HedgeAfter) {
		// A recovered peer's estimate converges below the budget within a
		// few cheap pings; a still-slow peer pays a handful of real round
		// trips and stays hedged-around.
		for i := 0; i < 8; i++ {
			if d, ok := n.rtts.Expect(peer); !ok || d <= n.cfg.HedgeAfter {
				break
			}
			if _, err := n.call(peer, transport.Message{Type: "ov.ping"}); err != nil {
				break
			}
			probed++
		}
	}
	return probed
}

// shedRequest decides whether to offload req and, when it does, executes
// it remotely. It returns shed=false when the request should run locally:
// the node is under threshold, the depth cap was reached, no candidate
// looks strictly less loaded, or the forward failed in transit (the
// partition fallback). shed=true with a non-nil err reports a remote
// execution failure — the peer ran (or refused) the request, so rerunning
// it locally could double the pipeline's side effects.
func (n *Node) shedRequest(req *httpmsg.Request, depth int) (resp *httpmsg.Response, executor string, err error, shed bool) {
	if !n.offloadEnabled() {
		return nil, "", nil, false
	}
	local := n.meter.Score()
	if local <= n.cfg.OffloadThreshold {
		return nil, "", nil, false
	}
	if depth >= n.offDepth {
		n.offDepthCap.Add(1)
		return nil, "", nil, false
	}
	candidates := n.offloadCandidates(req.SiteKey())
	if len(candidates) == 0 {
		return nil, "", nil, false
	}
	target, viewScore, ok := n.view.LeastLoaded(candidates)
	if !ok || viewScore >= local {
		return nil, "", nil, false
	}
	body := encodeOffloadRequest(req)
	reply, callErr := n.call(target, transport.Message{
		Type: msgOffExec,
		Key:  req.SiteKey(),
		Args: []string{strconv.Itoa(depth + 1), loadview.FormatScore(local)},
		Body: body,
		// The request's trace id travels with the forward, so the peer's
		// execution sample shares it with the ingress node's.
		Trace: req.TraceID,
	})
	if callErr != nil {
		if transport.IsRemote(callErr) {
			n.offFwdOut.Add(1)
			return nil, target, callErr, true
		}
		n.offFallback.Add(1)
		return nil, "", nil, false
	}
	if len(reply.Args) >= 1 {
		if s, ok := loadview.ParseScore(reply.Args[0]); ok {
			n.view.Observe(target, s)
		}
	}
	executor = target
	if len(reply.Args) >= 2 && reply.Args[1] != "" {
		executor = reply.Args[1]
	}
	out, decErr := decodeResponse(reply.Body)
	if decErr != nil {
		// The peer did execute the request — a local rerun could double the
		// pipeline's side effects, so a corrupt reply is an error, not a
		// fallback (same rule as the remote-error branch above).
		n.offFwdOut.Add(1)
		return nil, executor, fmt.Errorf("core: offload reply from %s: %w", target, decErr), true
	}
	n.offFwdOut.Add(1)
	return out, executor, nil, true
}

// serveOffloadRPC executes requests peers shed to this node. A holder that
// is itself over threshold may shed once more (the depth travels with the
// request), but at the depth cap it must execute locally — that is what
// bounds a request's worst case to offDepth forwards plus one execution.
func (n *Node) serveOffloadRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgOffExec:
		n.offRecvIn.Add(1)
		depth := 0
		if len(msg.Args) >= 1 {
			if d, err := strconv.Atoi(msg.Args[0]); err == nil && d > 0 {
				depth = d
			}
		}
		if len(msg.Args) >= 2 {
			if s, ok := loadview.ParseScore(msg.Args[1]); ok {
				n.view.Observe(from, s)
			}
		}
		req, err := decodeOffloadRequest(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		// Adopt the sender's trace id (zero when the sender is untraced):
		// this node's execution joins the same cross-node trace.
		req.TraceID = msg.Trace
		resp, who, err, shed := n.shedRequest(req, depth)
		var trace *pipeline.Trace
		if !shed {
			resp, trace, err = n.handleLocal(req)
			who = n.cfg.Name
		}
		if err != nil {
			return transport.Message{}, err
		}
		reply := transport.Message{Args: []string{loadview.FormatScore(n.meter.Score()), who}, Body: encodeResponse(resp)}
		// Recycle the staged request once the reply is encoded, unless a
		// script handler saw it (same rule as ServeHTTP).
		if trace == nil || !trace.RanHandlers() {
			req.Release()
		}
		return reply, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown offload message %q", msg.Type)
	}
}
