package core

import (
	"errors"
	"sync"

	"nakika/internal/httpmsg"
)

// errFlightPanic is handed to waiters when the leader's fetch panicked; the
// leader's own panic propagates to its caller after the waiters are
// released.
var errFlightPanic = errors.New("core: in-flight fetch panicked")

// flightGroup coalesces concurrent fetches of the same cache key: a
// cold-cache stampede (N clients missing the same key at once) issues one
// origin/peer fetch whose response fans out to every waiter. This is the
// standard single-flight discipline, implemented locally so the node has no
// external dependencies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters int
	resp    *httpmsg.Response
	err     error
}

// Do executes fn under key, ensuring that concurrent calls for the same key
// run fn exactly once. Every caller — leader and waiters alike — receives an
// independent clone of the response, because each pipeline may mutate the
// body it is handed; the call's own copy never escapes. The second return
// value reports whether the result was shared with other callers (false for
// the leader).
func (g *flightGroup) Do(key string, fn func() (*httpmsg.Response, error)) (*httpmsg.Response, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return cloneFlightResponse(c.resp), true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The cleanup must run even if fn panics: a wedged entry would block
	// every future fetch of this key forever. On panic the waiters get
	// errFlightPanic while the leader's panic continues to its caller.
	var waiters int
	panicked := true
	func() {
		defer func() {
			if panicked {
				c.err = errFlightPanic
			}
			g.mu.Lock()
			delete(g.calls, key)
			waiters = c.waiters
			g.mu.Unlock()
			close(c.done)
		}()
		c.resp, c.err = fn()
		panicked = false
	}()
	if waiters == 0 {
		// No one joined: the leader is the sole owner and skips the clone.
		// Joins only happen under g.mu before the delete above, so none can
		// arrive after this point.
		return c.resp, false, c.err
	}
	return cloneFlightResponse(c.resp), false, c.err
}

func cloneFlightResponse(resp *httpmsg.Response) *httpmsg.Response {
	if resp == nil {
		return nil
	}
	return resp.Clone()
}
