package core

import (
	"sync/atomic"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/metrics"
	"nakika/internal/pipeline"
	nktrace "nakika/internal/trace"
	"nakika/internal/transport"
)

// This file is the node's observability plane: the vocab.Host adapter
// that threads each request's trace act into the state and lease paths,
// the traced RPC helper, per-request sample recording, and the metrics
// registry the admin listener scrapes. Everything here is disabled as a
// unit by Config.NoObserve.

// hostAdapter is the vocab.Host the pipeline sees. It forwards every
// host call to the node, passing the per-handler-run trace act into the
// state and lease paths so hedged reads, lease outcomes, and fenced
// writes land on the requesting pipeline's activity record — and so the
// request's trace id rides any RPC those operations fan out into.
// Node's own public methods keep their act-free signatures for
// embedders, the harness, and tests.
type hostAdapter struct{ n *Node }

func (h hostAdapter) Fetch(req *httpmsg.Request) (*httpmsg.Response, error) {
	return h.n.fetchWithCache(req)
}
func (h hostAdapter) CacheGet(key string) *httpmsg.Response       { return h.n.CacheGet(key) }
func (h hostAdapter) CachePut(key string, resp *httpmsg.Response) { h.n.CachePut(key, resp) }
func (h hostAdapter) IsLocalClient(ip string) bool                { return h.n.IsLocalClient(ip) }
func (h hostAdapter) Usage(site, resource string) float64         { return h.n.Usage(site, resource) }
func (h hostAdapter) Log(site, message string)                    { h.n.Log(site, message) }
func (h hostAdapter) Propagate(site, message string) error        { return h.n.Propagate(site, message) }
func (h hostAdapter) NodeName() string                            { return h.n.NodeName() }
func (h hostAdapter) Now() time.Time                              { return h.n.Now() }

func (h hostAdapter) StateGet(act *nktrace.Act, site, key string) (string, bool) {
	return h.n.stateGet(act, site, key)
}
func (h hostAdapter) StatePut(act *nktrace.Act, site, key, value string) error {
	return h.n.statePut(act, site, key, value)
}
func (h hostAdapter) StateDelete(act *nktrace.Act, site, key string) {
	h.n.stateDelete(act, site, key)
}
func (h hostAdapter) StateKeys(act *nktrace.Act, site string) []string {
	return h.n.stateKeys(act, site)
}
func (h hostAdapter) LeaseAcquire(act *nktrace.Act, site, name string, ttl time.Duration) (uint64, bool) {
	return h.n.leaseAcquire(act, site, name, ttl)
}
func (h hostAdapter) LeaseRenew(act *nktrace.Act, site, name string, token uint64, ttl time.Duration) bool {
	return h.n.leaseRenew(act, site, name, token, ttl)
}
func (h hostAdapter) LeaseRelease(act *nktrace.Act, site, name string, token uint64) bool {
	return h.n.leaseRelease(act, site, name, token)
}
func (h hostAdapter) FencedStatePut(act *nktrace.Act, site, key, value, name string, token uint64) error {
	return h.n.fencedStatePut(act, site, key, value, name, token)
}

// callT is the traced variant of call: when the operation runs on behalf
// of a traced request the request's id rides the RPC frame, so the peer
// serving it joins its work to the same trace. Untraced operations (nil
// act, or an act with no id) send frames byte-identical to a build
// without tracing — the codec only encodes a nonzero trace id.
func (n *Node) callT(act *nktrace.Act, to string, msg transport.Message) (transport.Message, error) {
	if act != nil {
		msg.Trace = act.ID
	}
	return n.call(to, msg)
}

// observe records one finished request into the latency histogram and
// the trace ring. Cost on the hot path: one small allocation (the
// Sample), inline copies, and atomic adds; a no-op under NoObserve.
func (n *Node) observe(req *httpmsg.Request, resp *httpmsg.Response, trace *pipeline.Trace, start time.Time) {
	if n.ring == nil {
		return
	}
	elapsed := time.Since(start)
	n.latency.Observe(elapsed.Seconds())
	s := &nktrace.Sample{
		TraceID: req.TraceID,
		Node:    n.cfg.Name,
		Method:  req.Method,
		Start:   start,
		Elapsed: elapsed,
	}
	s.SetURL(req.URL.Host, req.URL.Path)
	if resp != nil {
		s.Status = resp.Status
	}
	if trace != nil {
		s.Generated = trace.Generated
		s.FromCache = trace.FromCache
		s.Terminated = trace.Terminated
		s.RejectedBusy = trace.RejectedBusy
		s.Offloaded = trace.Offloaded
		s.OffloadPeer = trace.OffloadPeer
		s.Generation = trace.Generation
		s.FillFromAct(&trace.Act)
		if s.TraceID == 0 {
			s.TraceID = req.TraceID
		}
	}
	n.ring.Record(s)
}

// Metrics returns the node's registry (nil under Config.NoObserve); the
// admin listener serves it at /metrics.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Traces returns the node's ring of recent request samples (nil under
// Config.NoObserve); the admin listener serves it at /admin/traces.
func (n *Node) Traces() *nktrace.Ring { return n.ring }

// buildRegistry registers every exported series. Counters over the
// node's existing atomics are CounterFunc callbacks read at scrape time,
// so exporting them costs the request path nothing; subsystem snapshots
// (cache, store, resource) are taken per scrape.
func (n *Node) buildRegistry() {
	r := metrics.NewRegistry()
	cv := func(c *atomic.Int64) func() float64 {
		return func() float64 { return float64(c.Load()) }
	}

	r.CounterFunc("nakika_requests_total", "Requests arriving at this node (kept or offloaded).", nil, cv(&n.requests))
	r.CounterFunc("nakika_fetches_total", "Resource fetches by where they were served.", metrics.Labels{"source": "cache"}, cv(&n.cacheHits))
	r.CounterFunc("nakika_fetches_total", "", metrics.Labels{"source": "peer"}, cv(&n.peerHits))
	r.CounterFunc("nakika_fetches_total", "", metrics.Labels{"source": "origin"}, cv(&n.originFetches))
	r.CounterFunc("nakika_fetches_total", "", metrics.Labels{"source": "coalesced"}, cv(&n.coalesced))
	r.CounterFunc("nakika_generated_responses_total", "Responses generated by script handlers.", nil, cv(&n.generated))
	r.CounterFunc("nakika_rejected_total", "Requests refused by admission control (server busy).", nil, cv(&n.rejected))
	r.CounterFunc("nakika_errors_total", "Requests that failed with an error.", nil, cv(&n.errors))

	r.CounterFunc("nakika_cache_hits_total", "Proxy cache hits per tier.", metrics.Labels{"tier": "memory"},
		func() float64 { return float64(n.cache.Stats().Hits) })
	r.CounterFunc("nakika_cache_hits_total", "", metrics.Labels{"tier": "disk"},
		func() float64 { return float64(n.cache.Stats().DiskHits) })
	r.CounterFunc("nakika_cache_misses_total", "Proxy cache misses.", nil,
		func() float64 { return float64(n.cache.Stats().Misses) })
	r.CounterFunc("nakika_cache_evictions_total", "Proxy cache evictions per tier.", metrics.Labels{"tier": "memory"},
		func() float64 { return float64(n.cache.Stats().Evictions) })
	r.CounterFunc("nakika_cache_evictions_total", "", metrics.Labels{"tier": "disk"},
		func() float64 { return float64(n.cache.Stats().Disk.Evictions) })
	r.GaugeFunc("nakika_cache_bytes", "Cached body bytes per tier.", metrics.Labels{"tier": "memory"},
		func() float64 { return float64(n.cache.Stats().Bytes) })
	r.GaugeFunc("nakika_cache_bytes", "", metrics.Labels{"tier": "disk"},
		func() float64 { return float64(n.cache.Stats().Disk.Bytes) })

	r.CounterFunc("nakika_store_wal_appends_total", "Records appended to the hard-state WAL.", nil,
		func() float64 { return float64(n.StoreStats().Appends) })
	r.CounterFunc("nakika_store_fsync_batches_total", "Fsyncs issued by the WAL (group commit batches records per sync).", nil,
		func() float64 { return float64(n.StoreStats().Syncs) })
	r.CounterFunc("nakika_store_fence_rejects_total", "Writes refused at the store because their token fell below the durable fence floor.", nil,
		func() float64 { return float64(n.StoreStats().FenceRejects) })
	r.CounterFunc("nakika_store_compactions_total", "Completed snapshot/truncate cycles.", nil,
		func() float64 { return float64(n.StoreStats().Compactions) })
	r.GaugeFunc("nakika_store_wal_bytes", "Size of the active WAL file.", nil,
		func() float64 { return float64(n.StoreStats().WALBytes) })

	r.CounterFunc("nakika_replication_forwarded_ops_total", "Mutations routed to another acting owner.", nil, cv(&n.repForwarded))
	r.CounterFunc("nakika_replication_pushes_total", "Records peers accepted from this node's replication and repair pushes.", nil, cv(&n.repPushes))
	r.CounterFunc("nakika_replication_failover_reads_total", "Reads served by a successor after the routed owner was found dead.", nil, cv(&n.repFailovers))
	r.CounterFunc("nakika_replication_applied_total", "Records applied from peers that superseded the local copy.", nil, cv(&n.repApplied))

	r.CounterFunc("nakika_offload_executed_total", "Requests run through this node's own pipeline.", nil, cv(&n.offExecuted))
	r.CounterFunc("nakika_offload_forwarded_total", "Requests shed to a less-loaded replica.", nil, cv(&n.offFwdOut))
	r.CounterFunc("nakika_offload_received_total", "Offloaded requests accepted from peers.", nil, cv(&n.offRecvIn))
	r.CounterFunc("nakika_offload_fallbacks_total", "Forwards that failed in transit and ran locally.", nil, cv(&n.offFallback))
	r.CounterFunc("nakika_offload_depth_cap_total", "Requests pinned to local execution by the forwarding-depth cap.", nil, cv(&n.offDepthCap))
	r.CounterFunc("nakika_hedged_reads_total", "Replicated reads diverted to the next replica by the hedge budget.", nil, cv(&n.hedged))
	r.CounterFunc("nakika_hedge_hits_total", "Hedged reads the hedge target answered.", nil, cv(&n.hedgeHits))

	r.CounterFunc("nakika_lease_acquired_total", "Fresh lease grants (including handovers).", nil, cv(&n.leaseAcquired))
	r.CounterFunc("nakika_lease_renewed_total", "Lease extensions keeping the token.", nil, cv(&n.leaseRenewed))
	r.CounterFunc("nakika_lease_released_total", "Early lease releases.", nil, cv(&n.leaseReleased))
	r.CounterFunc("nakika_lease_denied_total", "Acquires refused because a live holder held the lease.", nil, cv(&n.leaseDenied))
	r.CounterFunc("nakika_lease_handovers_total", "Lease grants over a previous holder, split by recovery path.", metrics.Labels{"path": "crash"}, cv(&n.leaseCrashHO))
	r.CounterFunc("nakika_lease_handovers_total", "", metrics.Labels{"path": "expiry"}, cv(&n.leaseExpiryHO))
	r.CounterFunc("nakika_lease_fenced_writes_total", "Fenced puts acknowledged.", nil, cv(&n.leaseFenced))
	r.CounterFunc("nakika_lease_fence_rejects_total", "Fenced puts refused because the holdership was deposed.", nil, cv(&n.leaseFenceRej))

	r.CounterFunc("nakika_deploys_total", "Script deployment operations on this node, by outcome.", metrics.Labels{"outcome": "applied"}, cv(&n.deployApplied))
	r.CounterFunc("nakika_deploys_total", "", metrics.Labels{"outcome": "rejected"}, cv(&n.deployRej))
	r.CounterFunc("nakika_deploys_total", "", metrics.Labels{"outcome": "rollback"}, cv(&n.deployRolled))
	r.CounterFunc("nakika_deploys_total", "", metrics.Labels{"outcome": "compile_error"}, cv(&n.deployCompErr))

	r.GaugeFunc("nakika_load_score", "The node's load score (in-flight requests plus decayed recent work).", nil, n.LoadScore)

	n.latency = r.NewHistogramSeries("nakika_request_seconds", "End-to-end request latency at this node.", nil, metrics.DefBuckets)
	n.reg = r
}
