package core
