package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"nakika/internal/httpmsg"
	"nakika/internal/overlay"
	"nakika/internal/store"
)

// lobBody builds the deterministic large-object payload the tests serve.
func lobBody(n int) []byte {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte('a' + (i/7+i/4093)%23)
	}
	return body
}

// rangeOrigin serves one large object with HTTP Range support, counting full
// and range fetches separately.
type rangeOrigin struct {
	url  string
	body []byte

	mu         sync.Mutex
	fullHits   int
	rangeHits  int
	streamHits int
}

func (o *rangeOrigin) counts() (full, ranged, streamed int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fullHits, o.rangeHits, o.streamHits
}

func (o *rangeOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	if req.URL.String() != o.url {
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
	if spec := req.Header.Get("Range"); spec != "" {
		from, to, err := httpmsg.ParseRange(spec, int64(len(o.body)))
		if err != nil {
			return httpmsg.NewRangeNotSatisfiable(int64(len(o.body))), nil
		}
		o.mu.Lock()
		o.rangeHits++
		o.mu.Unlock()
		resp := httpmsg.NewResponse(http.StatusPartialContent)
		resp.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to-1, len(o.body)))
		resp.Body = append([]byte(nil), o.body[from:to]...)
		return resp, nil
	}
	o.mu.Lock()
	o.fullHits++
	o.mu.Unlock()
	resp := httpmsg.NewResponse(200)
	resp.SetMaxAge(600)
	resp.Body = append([]byte(nil), o.body...)
	return resp, nil
}

// streamRangeOrigin additionally implements StreamFetcher, so cold fetches
// take the pull-through ingest path.
type streamRangeOrigin struct{ rangeOrigin }

func (o *streamRangeOrigin) DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error) {
	if req.URL.String() != o.url || req.Header.Get("Range") != "" {
		resp, err := o.Do(req)
		if err != nil {
			return StreamHead{}, nil, err
		}
		return StreamHead{Status: resp.Status, Header: resp.Header.Clone(), Length: int64(len(resp.Body))},
			io.NopCloser(bytes.NewReader(resp.Body)), nil
	}
	o.mu.Lock()
	o.streamHits++
	o.mu.Unlock()
	h := make(http.Header)
	h.Set("Cache-Control", "max-age=600")
	return StreamHead{Status: 200, Header: h, Length: int64(len(o.body))},
		io.NopCloser(bytes.NewReader(o.body)), nil
}

func lobConfig(segSize, threshold int64) func(*Config) {
	return func(cfg *Config) {
		cfg.LargeObjectThreshold = threshold
		cfg.LargeObjectSegment = segSize
		cfg.LargeObjectCapacity = 1 << 20
	}
}

func readStream(t *testing.T, resp *httpmsg.Response, from, to int64) []byte {
	t.Helper()
	rc, err := resp.Stream.Range(from, to)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLargeObjectIngestAndStream: a buffered fetch above the threshold is
// chunked into the tier, and subsequent requests stream it — including lazy
// 206s that read only the requested span — with no further origin traffic.
func TestLargeObjectIngestAndStream(t *testing.T) {
	body := lobBody(40_000)
	origin := &rangeOrigin{url: "http://big.example.org/blob", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))

	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/blob"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("cold fetch: status %d, %d body bytes", resp.Status, len(resp.Body))
	}

	// Warm: served from the tier as a stream.
	resp, trace, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/blob"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("warm response is not streamed")
	}
	if resp.TotalLen() != int64(len(body)) {
		t.Fatalf("TotalLen = %d, want %d", resp.TotalLen(), len(body))
	}
	if !trace.Streamed || trace.Segments != 10 || trace.SegmentsResident != 10 {
		t.Errorf("trace = streamed %v, %d/%d segments", trace.Streamed, trace.SegmentsResident, trace.Segments)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("streamed body differs from origin body")
	}

	// Warm range: the 206 narrows lazily and reads only resident segments.
	req := httpmsg.MustRequest("GET", "http://big.example.org/blob")
	req.Header.Set("Range", "bytes=5000-9191")
	resp, _, err = n.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	ranged := httpmsg.ApplyRange(req, resp)
	if ranged.Status != http.StatusPartialContent {
		t.Fatalf("range status = %d", ranged.Status)
	}
	if cr := ranged.Header.Get("Content-Range"); cr != "bytes 5000-9191/40000" {
		t.Errorf("Content-Range = %q", cr)
	}
	if err := ranged.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ranged.Body, body[5000:9192]) {
		t.Fatal("range body differs")
	}

	full, rng, _ := origin.counts()
	if full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
	st := n.LargeObject()
	if st.WholeIngests != 1 || st.StreamedServes < 2 || st.SegOriginFetches != 0 {
		t.Errorf("lob stats = %+v", st)
	}
}

// TestLargeObjectStreamingColdFetch: with a stream-capable upstream the cold
// fetch itself is a lazy stream ingested segment by segment, and a second
// request needs no origin traffic.
func TestLargeObjectStreamingColdFetch(t *testing.T) {
	body := lobBody(50_000)
	origin := &streamRangeOrigin{rangeOrigin{url: "http://big.example.org/vid", body: body}}
	n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))

	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/vid"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("cold fetch did not stream")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("cold streamed body differs")
	}
	resp, _, err = n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/vid"))
	if err != nil {
		t.Fatal(err)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("warm streamed body differs")
	}
	full, rng, streamed := origin.counts()
	if full != 0 || streamed != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d streamed, %d range; want 0, 1, 0", full, streamed, rng)
	}
	if st := n.LargeObject(); st.StreamIngests != 1 {
		t.Errorf("stream ingests = %d, want 1", st.StreamIngests)
	}
}

// TestLargeObjectPeerSegments: node B, which never fetched the object,
// adopts its manifest from the replicated index record and pulls segment
// bodies from node A over the lob RPC — the origin is touched exactly once
// cluster-wide.
func TestLargeObjectPeerSegments(t *testing.T) {
	body := lobBody(30_000)
	origin := &rangeOrigin{url: "http://big.example.org/iso", body: body}
	ring := overlay.NewRing()
	mutate := func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.Ring = ring
	}
	a := newTestNodeUpstream(t, "edge-a", origin, mutate)
	b := newTestNodeUpstream(t, "edge-b", origin, mutate)

	if _, _, err := a.Handle(httpmsg.MustRequest("GET", "http://big.example.org/iso")); err != nil {
		t.Fatal(err)
	}
	resp, _, err := b.Handle(httpmsg.MustRequest("GET", "http://big.example.org/iso"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("adopted response is not streamed")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("adopted body differs")
	}
	full, rng, _ := origin.counts()
	if full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
	bs := b.LargeObject()
	if bs.Adopted != 1 || bs.SegPeerFetches == 0 {
		t.Errorf("b lob stats = %+v", bs)
	}
	// B now holds a full copy and has announced itself; its residency must
	// be in the index record.
	idx, ok := b.lobIndexGet("GET http://big.example.org/iso")
	if !ok {
		t.Fatal("index record missing")
	}
	if got := idx.Holders["edge-b"].Count(); got != 8 {
		t.Errorf("edge-b resident segments in index = %d, want 8", got)
	}
}

// TestLargeObjectSurvivesCrash: persisted manifests and slot files are
// rescanned on recovery, so the object serves again without origin traffic.
func TestLargeObjectSurvivesCrash(t *testing.T) {
	body := lobBody(30_000)
	origin := &rangeOrigin{url: "http://big.example.org/db", body: body}
	fs := store.NewMemFS()
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.DataFS = fs
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/db")); err != nil {
		t.Fatal(err)
	}
	n.Crash()
	if err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/db"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("recovered response is not streamed")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("recovered body differs")
	}
	if full, rng, _ := origin.counts(); full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
}

// TestLargeObjectEvictedSegmentsRefetchByRange: a slab too small for the
// object evicts segments; readers transparently refill them with origin
// Range fetches — never a second full-body fetch.
func TestLargeObjectEvictedSegmentsRefetchByRange(t *testing.T) {
	body := lobBody(60_000)
	origin := &rangeOrigin{url: "http://big.example.org/huge", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		cfg.LargeObjectThreshold = 10_000
		cfg.LargeObjectSegment = 4096
		cfg.LargeObjectCapacity = 5 * 4096 // 5 slots for a 15-segment object
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/huge")); err != nil {
		t.Fatal(err)
	}
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/huge"))
	if err != nil {
		t.Fatal(err)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("body differs after eviction refill")
	}
	full, rng, _ := origin.counts()
	if full != 1 {
		t.Errorf("full origin hits = %d, want 1", full)
	}
	if rng == 0 {
		t.Error("expected range refetches for evicted segments")
	}
}

// TestLargeObjectConcurrentRangeReaders hammers one object with concurrent
// random range reads through the node while eviction churns the slab — the
// nightly -race soak runs this with the race detector.
func TestLargeObjectConcurrentRangeReaders(t *testing.T) {
	body := lobBody(48_000)
	origin := &rangeOrigin{url: "http://big.example.org/soak", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		cfg.LargeObjectThreshold = 10_000
		cfg.LargeObjectSegment = 4096
		cfg.LargeObjectCapacity = 6 * 4096
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/soak")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 15; i++ {
				from := rng.Int63n(int64(len(body)) - 1)
				to := from + 1 + rng.Int63n(int64(len(body))-from-1)
				req := httpmsg.MustRequest("GET", "http://big.example.org/soak")
				req.Header.Set("Range", "bytes="+strconv.FormatInt(from, 10)+"-"+strconv.FormatInt(to-1, 10))
				resp, _, err := n.Handle(req)
				if err != nil {
					errs <- err
					return
				}
				ranged := httpmsg.ApplyRange(req, resp)
				if err := ranged.Materialize(); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(ranged.Body, body[from:to]) {
					errs <- fmt.Errorf("range [%d,%d) differs", from, to)
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if full, _, _ := origin.counts(); full != 1 {
		t.Errorf("full origin hits = %d, want 1", full)
	}
}

// newTestNodeUpstream is newTestNode for upstreams that are not memOrigins.
func newTestNodeUpstream(t *testing.T, name string, upstream Fetcher, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Name:          name,
		Region:        "us-east",
		Upstream:      upstream,
		LocalNetworks: []string{"10.0.0.0/8"},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
