package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/overlay"
	"nakika/internal/store"
)

// lobBody builds the deterministic large-object payload the tests serve.
func lobBody(n int) []byte {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte('a' + (i/7+i/4093)%23)
	}
	return body
}

// rangeOrigin serves one large object with HTTP Range support, counting full
// and range fetches separately.
type rangeOrigin struct {
	url  string
	body []byte

	mu         sync.Mutex
	fullHits   int
	rangeHits  int
	streamHits int
}

func (o *rangeOrigin) counts() (full, ranged, streamed int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fullHits, o.rangeHits, o.streamHits
}

func (o *rangeOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	if req.URL.String() != o.url {
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
	if spec := req.Header.Get("Range"); spec != "" {
		from, to, err := httpmsg.ParseRange(spec, int64(len(o.body)))
		if err != nil {
			return httpmsg.NewRangeNotSatisfiable(int64(len(o.body))), nil
		}
		o.mu.Lock()
		o.rangeHits++
		o.mu.Unlock()
		resp := httpmsg.NewResponse(http.StatusPartialContent)
		resp.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to-1, len(o.body)))
		resp.Body = append([]byte(nil), o.body[from:to]...)
		return resp, nil
	}
	o.mu.Lock()
	o.fullHits++
	o.mu.Unlock()
	resp := httpmsg.NewResponse(200)
	resp.SetMaxAge(600)
	resp.Body = append([]byte(nil), o.body...)
	return resp, nil
}

// streamRangeOrigin additionally implements StreamFetcher, so cold fetches
// take the pull-through ingest path.
type streamRangeOrigin struct{ rangeOrigin }

func (o *streamRangeOrigin) DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error) {
	if req.URL.String() != o.url || req.Header.Get("Range") != "" {
		resp, err := o.Do(req)
		if err != nil {
			return StreamHead{}, nil, err
		}
		return StreamHead{Status: resp.Status, Header: resp.Header.Clone(), Length: int64(len(resp.Body))},
			io.NopCloser(bytes.NewReader(resp.Body)), nil
	}
	o.mu.Lock()
	o.streamHits++
	o.mu.Unlock()
	h := make(http.Header)
	h.Set("Cache-Control", "max-age=600")
	return StreamHead{Status: 200, Header: h, Length: int64(len(o.body))},
		io.NopCloser(bytes.NewReader(o.body)), nil
}

func lobConfig(segSize, threshold int64) func(*Config) {
	return func(cfg *Config) {
		cfg.LargeObjectThreshold = threshold
		cfg.LargeObjectSegment = segSize
		cfg.LargeObjectCapacity = 1 << 20
	}
}

func readStream(t *testing.T, resp *httpmsg.Response, from, to int64) []byte {
	t.Helper()
	rc, err := resp.Stream.Range(from, to)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLargeObjectIngestAndStream: a buffered fetch above the threshold is
// chunked into the tier, and subsequent requests stream it — including lazy
// 206s that read only the requested span — with no further origin traffic.
func TestLargeObjectIngestAndStream(t *testing.T) {
	body := lobBody(40_000)
	origin := &rangeOrigin{url: "http://big.example.org/blob", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))

	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/blob"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("cold fetch: status %d, %d body bytes", resp.Status, len(resp.Body))
	}

	// Warm: served from the tier as a stream.
	resp, trace, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/blob"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("warm response is not streamed")
	}
	if resp.TotalLen() != int64(len(body)) {
		t.Fatalf("TotalLen = %d, want %d", resp.TotalLen(), len(body))
	}
	if !trace.Streamed || trace.Segments != 10 || trace.SegmentsResident != 10 {
		t.Errorf("trace = streamed %v, %d/%d segments", trace.Streamed, trace.SegmentsResident, trace.Segments)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("streamed body differs from origin body")
	}

	// Warm range: the 206 narrows lazily and reads only resident segments.
	req := httpmsg.MustRequest("GET", "http://big.example.org/blob")
	req.Header.Set("Range", "bytes=5000-9191")
	resp, _, err = n.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	ranged := httpmsg.ApplyRange(req, resp)
	if ranged.Status != http.StatusPartialContent {
		t.Fatalf("range status = %d", ranged.Status)
	}
	if cr := ranged.Header.Get("Content-Range"); cr != "bytes 5000-9191/40000" {
		t.Errorf("Content-Range = %q", cr)
	}
	if err := ranged.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ranged.Body, body[5000:9192]) {
		t.Fatal("range body differs")
	}

	full, rng, _ := origin.counts()
	if full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
	st := n.LargeObject()
	if st.WholeIngests != 1 || st.StreamedServes < 2 || st.SegOriginFetches != 0 {
		t.Errorf("lob stats = %+v", st)
	}
}

// TestLargeObjectStreamingColdFetch: with a stream-capable upstream the cold
// fetch itself is a lazy stream ingested segment by segment, and a second
// request needs no origin traffic.
func TestLargeObjectStreamingColdFetch(t *testing.T) {
	body := lobBody(50_000)
	origin := &streamRangeOrigin{rangeOrigin{url: "http://big.example.org/vid", body: body}}
	n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))

	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/vid"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("cold fetch did not stream")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("cold streamed body differs")
	}
	resp, _, err = n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/vid"))
	if err != nil {
		t.Fatal(err)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("warm streamed body differs")
	}
	full, rng, streamed := origin.counts()
	if full != 0 || streamed != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d streamed, %d range; want 0, 1, 0", full, streamed, rng)
	}
	if st := n.LargeObject(); st.StreamIngests != 1 {
		t.Errorf("stream ingests = %d, want 1", st.StreamIngests)
	}
}

// TestLargeObjectPeerSegments: node B, which never fetched the object,
// adopts its manifest from the replicated index record and pulls segment
// bodies from node A over the lob RPC — the origin is touched exactly once
// cluster-wide.
func TestLargeObjectPeerSegments(t *testing.T) {
	body := lobBody(30_000)
	origin := &rangeOrigin{url: "http://big.example.org/iso", body: body}
	ring := overlay.NewRing()
	mutate := func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.Ring = ring
	}
	a := newTestNodeUpstream(t, "edge-a", origin, mutate)
	b := newTestNodeUpstream(t, "edge-b", origin, mutate)

	if _, _, err := a.Handle(httpmsg.MustRequest("GET", "http://big.example.org/iso")); err != nil {
		t.Fatal(err)
	}
	resp, _, err := b.Handle(httpmsg.MustRequest("GET", "http://big.example.org/iso"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("adopted response is not streamed")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("adopted body differs")
	}
	full, rng, _ := origin.counts()
	if full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
	bs := b.LargeObject()
	if bs.Adopted != 1 || bs.SegPeerFetches == 0 {
		t.Errorf("b lob stats = %+v", bs)
	}
	// B now holds a full copy and has announced itself; its residency must
	// be in the index record.
	idx, ok := b.lobIndexGet("GET http://big.example.org/iso")
	if !ok {
		t.Fatal("index record missing")
	}
	if got := idx.Holders["edge-b"].Count(); got != 8 {
		t.Errorf("edge-b resident segments in index = %d, want 8", got)
	}
}

// TestLargeObjectSurvivesCrash: persisted manifests and slot files are
// rescanned on recovery, so the object serves again without origin traffic.
func TestLargeObjectSurvivesCrash(t *testing.T) {
	body := lobBody(30_000)
	origin := &rangeOrigin{url: "http://big.example.org/db", body: body}
	fs := store.NewMemFS()
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.DataFS = fs
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/db")); err != nil {
		t.Fatal(err)
	}
	n.Crash()
	if err := n.Recover(); err != nil {
		t.Fatal(err)
	}
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/db"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stream == nil {
		t.Fatal("recovered response is not streamed")
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("recovered body differs")
	}
	if full, rng, _ := origin.counts(); full != 1 || rng != 0 {
		t.Errorf("origin hits = %d full, %d range; want 1, 0", full, rng)
	}
}

// TestLargeObjectEvictedSegmentsRefetchByRange: a slab too small for the
// object evicts segments; readers transparently refill them with origin
// Range fetches — never a second full-body fetch.
func TestLargeObjectEvictedSegmentsRefetchByRange(t *testing.T) {
	body := lobBody(60_000)
	origin := &rangeOrigin{url: "http://big.example.org/huge", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		cfg.LargeObjectThreshold = 10_000
		cfg.LargeObjectSegment = 4096
		cfg.LargeObjectCapacity = 5 * 4096 // 5 slots for a 15-segment object
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/huge")); err != nil {
		t.Fatal(err)
	}
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/huge"))
	if err != nil {
		t.Fatal(err)
	}
	if got := readStream(t, resp, 0, resp.TotalLen()); !bytes.Equal(got, body) {
		t.Fatal("body differs after eviction refill")
	}
	full, rng, _ := origin.counts()
	if full != 1 {
		t.Errorf("full origin hits = %d, want 1", full)
	}
	if rng == 0 {
		t.Error("expected range refetches for evicted segments")
	}
}

// TestLargeObjectConcurrentRangeReaders hammers one object with concurrent
// random range reads through the node while eviction churns the slab — the
// nightly -race soak runs this with the race detector.
func TestLargeObjectConcurrentRangeReaders(t *testing.T) {
	body := lobBody(48_000)
	origin := &rangeOrigin{url: "http://big.example.org/soak", body: body}
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		cfg.LargeObjectThreshold = 10_000
		cfg.LargeObjectSegment = 4096
		cfg.LargeObjectCapacity = 6 * 4096
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/soak")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 15; i++ {
				from := rng.Int63n(int64(len(body)) - 1)
				to := from + 1 + rng.Int63n(int64(len(body))-from-1)
				req := httpmsg.MustRequest("GET", "http://big.example.org/soak")
				req.Header.Set("Range", "bytes="+strconv.FormatInt(from, 10)+"-"+strconv.FormatInt(to-1, 10))
				resp, _, err := n.Handle(req)
				if err != nil {
					errs <- err
					return
				}
				ranged := httpmsg.ApplyRange(req, resp)
				if err := ranged.Materialize(); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(ranged.Body, body[from:to]) {
					errs <- fmt.Errorf("range [%d,%d) differs", from, to)
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if full, _, _ := origin.counts(); full != 1 {
		t.Errorf("full origin hits = %d, want 1", full)
	}
}

// uncacheableOrigin serves one large body marked no-store, buffered or
// streamed, counting each fetch.
type uncacheableOrigin struct {
	url  string
	body []byte

	mu   sync.Mutex
	hits int
}

func (o *uncacheableOrigin) respond() *httpmsg.Response {
	o.mu.Lock()
	o.hits++
	o.mu.Unlock()
	resp := httpmsg.NewResponse(200)
	resp.Header.Set("Cache-Control", "no-store")
	resp.Body = append([]byte(nil), o.body...)
	return resp
}

func (o *uncacheableOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	if req.URL.String() != o.url {
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
	return o.respond(), nil
}

func (o *uncacheableOrigin) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits
}

// streamUncacheableOrigin adds the streaming interface, so the no-store gate
// on the pull-through path is exercised too.
type streamUncacheableOrigin struct{ uncacheableOrigin }

func (o *streamUncacheableOrigin) DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error) {
	resp, err := o.Do(req)
	if err != nil {
		return StreamHead{}, nil, err
	}
	return StreamHead{Status: resp.Status, Header: resp.Header.Clone(), Length: int64(len(resp.Body))},
		io.NopCloser(bytes.NewReader(resp.Body)), nil
}

// TestLargeObjectNeverIngestsUncacheable: a no-store 200 above the threshold
// must not enter the shared tier — not via the buffered after-the-fact chunk,
// and not via the streaming pull-through — so every request goes back to the
// origin.
func TestLargeObjectNeverIngestsUncacheable(t *testing.T) {
	body := lobBody(40_000)
	for name, origin := range map[string]Fetcher{
		"buffered": &uncacheableOrigin{url: "http://p.example.org/me", body: body},
		"streamed": &streamUncacheableOrigin{uncacheableOrigin{url: "http://p.example.org/me", body: body}},
	} {
		t.Run(name, func(t *testing.T) {
			n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))
			for i := 0; i < 2; i++ {
				resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://p.example.org/me"))
				if err != nil {
					t.Fatal(err)
				}
				if err := resp.Materialize(); err != nil {
					t.Fatal(err)
				}
				if resp.Status != 200 || !bytes.Equal(resp.Body, body) {
					t.Fatalf("request %d: status %d, %d body bytes", i, resp.Status, len(resp.Body))
				}
			}
			if st := n.LargeObject(); st.Tier.Manifests != 0 || st.WholeIngests != 0 || st.StreamIngests != 0 {
				t.Errorf("no-store body entered the tier: %+v", st)
			}
			var hits int
			switch o := origin.(type) {
			case *uncacheableOrigin:
				hits = o.count()
			case *streamUncacheableOrigin:
				hits = o.count()
			}
			if hits != 2 {
				t.Errorf("origin hits = %d, want 2 (nothing may be cached)", hits)
			}
		})
	}
}

// revalOrigin versions its body: conditional requests matching the current
// ETag get a 304, everything else the current full body.
type revalOrigin struct {
	url string

	mu           sync.Mutex
	body         []byte
	etag         string
	maxAge       int
	fullHits     int
	notModHits   int
	conditionals int
}

func (o *revalOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	if req.URL.String() != o.url {
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if inm := req.Header.Get("If-None-Match"); inm != "" {
		o.conditionals++
		if inm == o.etag {
			o.notModHits++
			resp := httpmsg.NewResponse(http.StatusNotModified)
			resp.Header.Set("Etag", o.etag)
			resp.Header.Set("Cache-Control", fmt.Sprintf("max-age=%d", o.maxAge))
			return resp, nil
		}
	}
	o.fullHits++
	resp := httpmsg.NewResponse(200)
	resp.Header.Set("Etag", o.etag)
	resp.Header.Set("Cache-Control", fmt.Sprintf("max-age=%d", o.maxAge))
	resp.Body = append([]byte(nil), o.body...)
	return resp, nil
}

// TestLargeObjectStaleRevalidates: an expired manifest is never served as-is.
// While the validators still match, one conditional request renews it (a 304
// keeps the segment bodies); once the content changes, revalidation
// re-ingests the new body in place.
func TestLargeObjectStaleRevalidates(t *testing.T) {
	bodyV1 := lobBody(40_000)
	origin := &revalOrigin{url: "http://big.example.org/rss", body: bodyV1, etag: `"v1"`, maxAge: 100}
	// The fake clock starts at wall time because NewResponse stamps Fetched
	// with time.Now(); only the advances are simulated.
	now := time.Now()
	var mu sync.Mutex
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.Cache.Clock = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
	})
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	get := func(wantBody []byte) {
		t.Helper()
		resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/rss"))
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Materialize(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Body, wantBody) {
			t.Fatalf("body differs (%d bytes, want %d)", len(resp.Body), len(wantBody))
		}
	}

	get(bodyV1) // cold: ingest
	get(bodyV1) // fresh: streamed, no origin traffic
	if origin.fullHits != 1 || origin.conditionals != 0 {
		t.Fatalf("fresh phase: %d full, %d conditional", origin.fullHits, origin.conditionals)
	}

	// Expire; unchanged content: exactly one conditional request renews the
	// manifest, and the renewed copy serves without further origin traffic.
	advance(101 * time.Second)
	get(bodyV1)
	if origin.fullHits != 1 || origin.notModHits != 1 {
		t.Fatalf("revalidate phase: %d full, %d 304s; want 1, 1", origin.fullHits, origin.notModHits)
	}
	get(bodyV1)
	if origin.notModHits != 1 {
		t.Fatalf("renewed manifest did not serve: %d 304s", origin.notModHits)
	}

	// Expire again; content changed: revalidation re-ingests the new body.
	bodyV2 := lobBody(52_000)
	origin.mu.Lock()
	origin.body, origin.etag = bodyV2, `"v2"`
	origin.mu.Unlock()
	advance(101 * time.Second)
	get(bodyV2)
	if origin.fullHits != 2 {
		t.Fatalf("changed content: %d full fetches, want 2", origin.fullHits)
	}
	get(bodyV2) // the re-ingested copy is fresh again
	if origin.fullHits != 2 || origin.conditionals != 2 {
		t.Fatalf("after re-ingest: %d full, %d conditional", origin.fullHits, origin.conditionals)
	}
	if st := n.LargeObject(); st.Tier.Manifests != 1 {
		t.Errorf("manifests = %d, want 1", st.Tier.Manifests)
	}
}

// TestLargeObjectStaleWithoutValidatorsRefetches: with no ETag/Last-Modified
// an expired manifest cannot revalidate — it is dropped and the object
// refetched in full, exactly like an expired whole-body cache entry.
func TestLargeObjectStaleWithoutValidatorsRefetches(t *testing.T) {
	body := lobBody(30_000)
	origin := &rangeOrigin{url: "http://big.example.org/nv", body: body}
	now := time.Now() // see TestLargeObjectStaleRevalidates on the base time
	var mu sync.Mutex
	n := newTestNodeUpstream(t, "edge-1", origin, func(cfg *Config) {
		lobConfig(4096, 10_000)(cfg)
		cfg.Cache.Clock = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}
	})
	if _, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/nv")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(601 * time.Second) // past the origin's max-age=600
	mu.Unlock()
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/nv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatal("refetched body differs")
	}
	if full, _, _ := origin.counts(); full != 2 {
		t.Errorf("full origin fetches = %d, want 2 (stale copy must not serve)", full)
	}
}

// failStreamOrigin errors on every DoStream but serves fine over Do.
type failStreamOrigin struct{ rangeOrigin }

func (o *failStreamOrigin) DoStream(req *httpmsg.Request) (StreamHead, io.ReadCloser, error) {
	return StreamHead{}, nil, fmt.Errorf("stream path down")
}

// TestStreamFetchErrorFallsBackToBuffered: a failing streaming path must not
// turn a cold miss into a hard failure — the miss falls back to the buffered
// fetch, and the object is still chunked into the tier after the fact.
func TestStreamFetchErrorFallsBackToBuffered(t *testing.T) {
	body := lobBody(40_000)
	origin := &failStreamOrigin{rangeOrigin{url: "http://big.example.org/fb", body: body}}
	n := newTestNodeUpstream(t, "edge-1", origin, lobConfig(4096, 10_000))
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", "http://big.example.org/fb"))
	if err != nil {
		t.Fatalf("cold miss failed instead of falling back: %v", err)
	}
	if err := resp.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Fatal("fallback body differs")
	}
	if full, _, _ := origin.counts(); full != 1 {
		t.Errorf("full origin fetches = %d, want 1", full)
	}
	if st := n.LargeObject(); st.WholeIngests != 1 {
		t.Errorf("whole ingests = %d, want 1 (buffered fallback still chunks)", st.WholeIngests)
	}
}

// newTestNodeUpstream is newTestNode for upstreams that are not memOrigins.
func newTestNodeUpstream(t *testing.T, name string, upstream Fetcher, mutate func(*Config)) *Node {
	t.Helper()
	cfg := Config{
		Name:          name,
		Region:        "us-east",
		Upstream:      upstream,
		LocalNetworks: []string{"10.0.0.0/8"},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
