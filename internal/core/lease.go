package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"nakika/internal/lease"
	"nakika/internal/state"
	"nakika/internal/store"
	"nakika/internal/trace"
	"nakika/internal/transport"
)

// Distributed leases over the replicated hard state. A lease record lives
// at the internal key lease.Key(name), so placement, synchronous
// replication, failover, churn handoff, and repair all come from the
// successor-list machinery; this file adds the two things replication
// alone cannot give: serialized arbitration (the record's acting owner
// decides every acquire/renew/release under one lock, so grants cannot
// race) and fencing enforcement (fenced writes carry the holdership's
// token and are admitted against each store's durable floor, so a deposed
// holder's late writes are rejected at the WAL even when every clock and
// routing table is confused).
//
// Recovery is adaptive in the recoverable-mutual-exclusion style: an
// acquire that would be denied probes the recorded holder once (the
// overlay's O(1) ping — the same failure detector stabilization uses).
// A dead holder is deposed immediately, so handover after a
// detector-visible crash costs a constant number of messages; only an
// unreachable-but-possibly-alive holder makes the heir wait out the TTL.
//
// Clock contract: expiry runs on the lease clock (the simulated network's
// virtual clock under the harness, wall time in production). Clock skew
// can therefore only hurt liveness — a lease expiring late delays an
// heir, never admits two — because safety rests on the fencing tokens,
// which are checked against durable per-store floors with no clock
// involved. This is the same shape as the hedge-read freshness contract:
// the optimistic layer may be stale, the guarded layer may not.

// Lease message types (the "lease." prefix is what transport.Mux routes
// on).
const (
	msgLeaseAcquire = "lease.acquire" // forward an acquire to the record's acting owner
	msgLeaseRenew   = "lease.renew"   // forward a renew
	msgLeaseRelease = "lease.release" // forward a release
	msgLeaseFPut    = "lease.fput"    // forward a fenced state put to the acting owner
	msgLeaseFStore  = "lease.fstore"  // owner → replica push of one fenced record
)

// ErrFenced is returned by FencedStatePut when the write's holdership has
// been deposed: some store's fence floor holds a newer (token, holder)
// pair, so the write must not land anywhere it has not already.
var ErrFenced = errors.New("core: write fenced off by a newer lease holdership")

// LeaseStats counts lease activity (all zero when no lease is ever taken).
// Arbitration counters are maintained at the record's acting owner.
type LeaseStats struct {
	// Acquired counts fresh grants (including expiry and crash handovers);
	// Renewed counts extensions keeping the token; Released counts early
	// releases; Denied counts acquires refused because a live holder held
	// the lease.
	Acquired int64
	Renewed  int64
	Released int64
	Denied   int64
	// CrashHandovers counts grants issued over a holder the failure
	// detector reported dead (the O(1) adaptive path); ExpiryHandovers
	// counts grants that had to wait out the TTL.
	CrashHandovers  int64
	ExpiryHandovers int64
	// FencedWrites counts fenced puts acknowledged; FencedRejects counts
	// writes refused because their holdership was deposed.
	FencedWrites  int64
	FencedRejects int64
}

// leaseNow reads the lease clock in nanoseconds.
func (n *Node) leaseNow() int64 {
	if n.cfg.LoadClock != nil {
		return int64(n.cfg.LoadClock())
	}
	return time.Now().UnixNano()
}

// leaseTTL resolves a caller-supplied TTL against the configured default.
func (n *Node) leaseTTL(ttl time.Duration) int64 {
	if ttl <= 0 {
		ttl = n.cfg.LeaseTTL
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return int64(ttl)
}

// localLeaseRecord reads the lease record from the local store. Missing
// keys, tombstones, and undecodable values all read as the zero record —
// a deleted lease starts over from token 1, which is safe because every
// store's fence floor survives the tombstone and keeps deposed
// holderships fenced.
func (n *Node) localLeaseRecord(site, name string) lease.Record {
	_, _, deleted, value, ok := n.store.GetVersioned(site, lease.Key(name))
	if !ok || deleted {
		return lease.Record{}
	}
	rec, ok := lease.Decode(value)
	if !ok {
		return lease.Record{}
	}
	return rec
}

// LeaseRecord exposes the node's local copy of a lease record without any
// routing — the harness uses it to check convergence.
func (n *Node) LeaseRecord(site, name string) (lease.Record, bool) {
	_, _, deleted, value, ok := n.store.GetVersioned(site, lease.Key(name))
	if !ok || deleted {
		return lease.Record{}, false
	}
	return lease.Decode(value)
}

// leaseStore persists a decided lease record: through the replicated
// owner write path when replication is on (durable locally plus at least
// one replica before the grant is acknowledged), a plain versioned local
// write otherwise (single-node leases still work without an overlay).
func (n *Node) leaseStore(site, name string, rec lease.Record) error {
	if n.repEnabled() {
		return n.ownerPut(site, lease.Key(name), false, lease.Encode(rec))
	}
	n.repApplyMu.Lock()
	defer n.repApplyMu.Unlock()
	ver, _, _, _, _ := n.store.GetVersioned(site, lease.Key(name))
	_, err := n.store.PutVersioned(state.Rec{
		Site: site, Key: lease.Key(name), Ver: ver + 1, Origin: n.cfg.Name,
		Value: lease.Encode(rec),
	})
	return err
}

// ---------------------------------------------------------------------------
// Owner-side arbitration
// ---------------------------------------------------------------------------

// ownerLeaseAcquire decides one acquire at the acting owner. leaseMu
// serializes every arbitration on this node, so reading the record,
// deciding, and storing the result is one atomic step with respect to
// other lease operations (the replicated write inside takes the usual
// replication locks underneath).
func (n *Node) ownerLeaseAcquire(site, name, holder string, ttl int64) (lease.Record, lease.Outcome, error) {
	n.leaseMu.Lock()
	defer n.leaseMu.Unlock()
	cur := n.localLeaseRecord(site, name)
	now := n.leaseNow()
	rec, out := lease.Acquire(cur, holder, now, ttl, false)
	if out == lease.Denied && n.overlay != nil && !n.overlay.Ping(cur.Holder) {
		// Adaptive recovery: the lease looks held, but one probe of the
		// recorded holder — issued only on a would-be denial, so the happy
		// path never pays it — shows the holder dead. Depose it now
		// instead of making the heir wait out the TTL.
		rec, out = lease.Acquire(cur, holder, now, ttl, true)
	}
	if out == lease.Denied {
		n.leaseDenied.Add(1)
		return cur, out, nil
	}
	if err := n.leaseStore(site, name, rec); err != nil {
		// The grant never became durable-and-replicated, so it was never
		// issued; the caller sees the error, not a lease.
		return cur, out, err
	}
	switch out {
	case lease.Renewed:
		n.leaseRenewed.Add(1)
	case lease.CrashGrant:
		n.leaseAcquired.Add(1)
		n.leaseCrashHO.Add(1)
	case lease.ExpiryGrant:
		n.leaseAcquired.Add(1)
		n.leaseExpiryHO.Add(1)
	default:
		n.leaseAcquired.Add(1)
	}
	return rec, out, nil
}

func (n *Node) ownerLeaseRenew(site, name, holder string, token uint64, ttl int64) (bool, error) {
	n.leaseMu.Lock()
	defer n.leaseMu.Unlock()
	rec, ok := lease.Renew(n.localLeaseRecord(site, name), holder, token, n.leaseNow(), ttl)
	if !ok {
		return false, nil
	}
	if err := n.leaseStore(site, name, rec); err != nil {
		return false, err
	}
	n.leaseRenewed.Add(1)
	return true, nil
}

func (n *Node) ownerLeaseRelease(site, name, holder string, token uint64) (bool, error) {
	n.leaseMu.Lock()
	defer n.leaseMu.Unlock()
	rec, ok := lease.Release(n.localLeaseRecord(site, name), holder, token)
	if !ok {
		return false, nil
	}
	if err := n.leaseStore(site, name, rec); err != nil {
		return false, err
	}
	n.leaseReleased.Add(1)
	return true, nil
}

// ownerFencedPut is the acting-owner path of a fenced write: assign the
// next version, admit the write against the local fence floor, then push
// record and fence together to the replica targets. Any replica whose
// floor rejects the write means the holdership is deposed there — the
// write is not acknowledged and the caller must stop writing. The rebase
// loop mirrors ownerPut.
func (n *Node) ownerFencedPut(site, key, value, guard, holder string, token uint64) error {
	if !n.repEnabled() {
		// Single-node (or legacy bus) mode stores plain values — the same
		// encoding StatePut uses there, so State.get reads fenced writes
		// back. The backend's FencedPut is still one atomic admit + write +
		// floor-raise; only the versioned LWW wrapper is skipped. Fenced
		// writes stay node-local in this mode (the bus carries no fences).
		n.repApplyMu.Lock()
		err := n.store.Backend().FencedPut(site, key, value, guard, holder, token)
		n.repApplyMu.Unlock()
		if err == store.ErrFencedStale {
			n.leaseFenceRej.Add(1)
			return ErrFenced
		}
		if err != nil {
			return err
		}
		n.leaseFenced.Add(1)
		return nil
	}
	baseVer := uint64(0)
	for attempt := 0; attempt < 3; attempt++ {
		n.repApplyMu.Lock()
		if curVer, _, _, _, ok := n.store.GetVersioned(site, key); ok && curVer > baseVer {
			baseVer = curVer
		}
		rec := state.Rec{Site: site, Key: key, Ver: baseVer + 1, Origin: n.cfg.Name, Value: value}
		_, err := n.store.FencedPutVersioned(rec, guard, holder, token)
		n.repApplyMu.Unlock()
		if err == store.ErrFencedStale {
			n.leaseFenceRej.Add(1)
			return ErrFenced
		}
		if err != nil {
			return err
		}
		acks, attempts, staleVer, fenced := n.replicateFenced(rec, guard, holder, token)
		switch {
		case fenced:
			// A replica's floor holds a newer holdership this owner has not
			// heard of yet (it is the stale side of a healed split-brain).
			// The local copy stays — that store's own admission sequence is
			// still clean — but the write is not acknowledged: LWW repair
			// from the newer holdership's records will supersede it.
			n.leaseFenceRej.Add(1)
			return ErrFenced
		case staleVer >= rec.Ver:
			baseVer = staleVer
		case attempts == 0 || acks > 0:
			n.leaseFenced.Add(1)
			return nil
		default:
			return fmt.Errorf("core: fenced write %s/%s durable locally but none of %d replicas acknowledged", site, key, attempts)
		}
	}
	return fmt.Errorf("core: fenced write %s/%s: replicas kept superseding the write", site, key)
}

// replicateFenced pushes one fenced record to the replica targets; beyond
// replicate's accounting it reports whether any replica fenced the write
// off.
func (n *Node) replicateFenced(rec state.Rec, guard, holder string, token uint64) (acks, attempts int, staleVer uint64, fenced bool) {
	targets := n.replicaTargets()
	if len(targets) == 0 {
		return 0, 0, 0, false
	}
	body := encodeLeaseFenced(leaseFenced{Guard: guard, Holder: holder, Token: token, Rec: rec})
	for _, t := range targets {
		attempts++
		reply, err := n.call(t, transport.Message{Type: msgLeaseFStore, Body: body})
		if err != nil {
			continue
		}
		if len(reply.Args) > 0 {
			switch reply.Args[0] {
			case "fenced":
				fenced = true
				continue
			case "stale":
				if len(reply.Args) >= 2 {
					var v uint64
					if _, err := fmt.Sscanf(reply.Args[1], "%d", &v); err == nil && v > staleVer {
						staleVer = v
					}
				}
				continue
			}
		}
		acks++
		n.repPushes.Add(1)
	}
	return acks, attempts, staleVer, fenced
}

// ---------------------------------------------------------------------------
// Client API (vocab.Host lease methods and the harness entry points)
// ---------------------------------------------------------------------------

// leaseForward routes one lease operation to the record's acting owner,
// failing over in successor order exactly like the replicated mutations.
func (n *Node) leaseForward(act *trace.Act, site, name, msgType string, body []byte, local func() (transport.Message, error)) (transport.Message, error) {
	rk := state.ReplicaKey(site, lease.Key(name))
	avoid := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < n.repFactor+1; attempt++ {
		owner, _, err := n.overlay.LookupNameAvoid(rk, avoid)
		if err != nil {
			return transport.Message{}, err
		}
		if owner == n.cfg.Name {
			return local()
		}
		reply, err := n.callT(act, owner, transport.Message{Type: msgType, Body: body})
		if err == nil {
			return reply, nil
		}
		if transport.IsRemote(err) {
			// The owner answered and refused (replication failure): that is
			// the operation's result, not a routing problem. Denials and
			// fencing travel as reply values, never as errors.
			return transport.Message{}, err
		}
		avoid[owner] = true
		lastErr = err
	}
	return transport.Message{}, fmt.Errorf("core: %s %s/%s: no reachable owner: %w", msgType, site, name, lastErr)
}

// LeaseAcquire takes (or renews) the named per-site lease for this node.
// ttl <= 0 means the configured default. It returns the holdership's
// fencing token; ok is false when a live holder already has the lease or
// no owner was reachable.
func (n *Node) LeaseAcquire(site, name string, ttl time.Duration) (uint64, bool) {
	return n.leaseAcquire(nil, site, name, ttl)
}

func (n *Node) leaseAcquire(act *trace.Act, site, name string, ttl time.Duration) (uint64, bool) {
	t := n.leaseTTL(ttl)
	local := func() (transport.Message, error) {
		rec, out, err := n.ownerLeaseAcquire(site, name, n.cfg.Name, t)
		if err != nil {
			return transport.Message{}, err
		}
		return leaseAcquireReply(rec, out), nil
	}
	var token uint64
	var ok bool
	if !n.repEnabled() {
		reply, err := local()
		token, ok = parseLeaseAcquireReply(reply, err)
	} else {
		body := encodeLeaseReq(leaseReq{Site: site, Name: name, Holder: n.cfg.Name, TTL: t})
		reply, err := n.leaseForward(act, site, name, msgLeaseAcquire, body, local)
		token, ok = parseLeaseAcquireReply(reply, err)
	}
	act.RecordLeaseAcquire(ok, token)
	return token, ok
}

// LeaseRenew extends this node's holdership before it expires.
func (n *Node) LeaseRenew(site, name string, token uint64, ttl time.Duration) bool {
	return n.leaseRenew(nil, site, name, token, ttl)
}

func (n *Node) leaseRenew(act *trace.Act, site, name string, token uint64, ttl time.Duration) bool {
	t := n.leaseTTL(ttl)
	local := func() (transport.Message, error) {
		ok, err := n.ownerLeaseRenew(site, name, n.cfg.Name, token, t)
		return leaseBoolReply(ok), err
	}
	var ok bool
	if !n.repEnabled() {
		reply, err := local()
		ok = err == nil && leaseReplyOK(reply)
	} else {
		body := encodeLeaseReq(leaseReq{Site: site, Name: name, Holder: n.cfg.Name, Token: token, TTL: t})
		reply, err := n.leaseForward(act, site, name, msgLeaseRenew, body, local)
		ok = err == nil && leaseReplyOK(reply)
	}
	act.RecordLeaseRenew(ok)
	return ok
}

// LeaseRelease gives this node's holdership up early.
func (n *Node) LeaseRelease(site, name string, token uint64) bool {
	return n.leaseRelease(nil, site, name, token)
}

func (n *Node) leaseRelease(act *trace.Act, site, name string, token uint64) bool {
	local := func() (transport.Message, error) {
		ok, err := n.ownerLeaseRelease(site, name, n.cfg.Name, token)
		return leaseBoolReply(ok), err
	}
	var ok bool
	if !n.repEnabled() {
		reply, err := local()
		ok = err == nil && leaseReplyOK(reply)
	} else {
		body := encodeLeaseReq(leaseReq{Site: site, Name: name, Holder: n.cfg.Name, Token: token})
		reply, err := n.leaseForward(act, site, name, msgLeaseRelease, body, local)
		ok = err == nil && leaseReplyOK(reply)
	}
	if ok {
		act.RecordLeaseRelease()
	}
	return ok
}

// FencedStatePut writes site-partitioned hard state under the named
// lease's fencing token: the write is routed to the key's acting owner,
// admitted against the durable fence floors there and on every replica it
// reaches, and rejected with ErrFenced anywhere a newer holdership has
// already written. Scripts reach it as Lease.put.
func (n *Node) FencedStatePut(site, key, value, name string, token uint64) error {
	return n.fencedStatePut(nil, site, key, value, name, token)
}

func (n *Node) fencedStatePut(act *trace.Act, site, key, value, name string, token uint64) error {
	if state.IsInternalKey(key) {
		return fmt.Errorf("core: key %q is in the reserved internal namespace", key)
	}
	guard := lease.Key(name)
	local := func() (transport.Message, error) {
		if err := n.ownerFencedPut(site, key, value, guard, n.cfg.Name, token); err != nil {
			if err == ErrFenced {
				return transport.Message{Args: []string{"fenced"}}, nil
			}
			return transport.Message{}, err
		}
		return transport.Message{Args: []string{"ok"}}, nil
	}
	var reply transport.Message
	var err error
	if !n.repEnabled() {
		reply, err = local()
	} else {
		body := encodeLeaseFenced(leaseFenced{
			Guard: guard, Holder: n.cfg.Name, Token: token,
			Rec: state.Rec{Site: site, Key: key, Value: value},
		})
		reply, err = n.leaseForward(act, site, key, msgLeaseFPut, body, local)
	}
	if err != nil {
		return err
	}
	if len(reply.Args) > 0 && reply.Args[0] == "fenced" {
		act.RecordFencedPut(token, true)
		return ErrFenced
	}
	act.RecordFencedPut(token, false)
	return nil
}

func leaseAcquireReply(rec lease.Record, out lease.Outcome) transport.Message {
	return transport.Message{Args: []string{out.String(), strconv.FormatUint(rec.Token, 10)}}
}

func parseLeaseAcquireReply(reply transport.Message, err error) (uint64, bool) {
	if err != nil || len(reply.Args) < 2 || reply.Args[0] == "denied" {
		return 0, false
	}
	token, perr := strconv.ParseUint(reply.Args[1], 10, 64)
	if perr != nil {
		return 0, false
	}
	return token, true
}

func leaseBoolReply(ok bool) transport.Message {
	if ok {
		return transport.Message{Args: []string{"ok"}}
	}
	return transport.Message{Args: []string{"no"}}
}

func leaseReplyOK(reply transport.Message) bool {
	return len(reply.Args) > 0 && reply.Args[0] == "ok"
}

// ---------------------------------------------------------------------------
// RPC handler
// ---------------------------------------------------------------------------

// serveLeaseRPC answers peers' lease messages. The node accepts the
// acting-owner role for anything routed to it, exactly as serveRepRPC
// does — the sender's tables may be fresher than ours under churn.
func (n *Node) serveLeaseRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgLeaseAcquire:
		req, err := decodeLeaseReq(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		rec, out, err := n.ownerLeaseAcquire(req.Site, req.Name, req.Holder, req.TTL)
		if err != nil {
			return transport.Message{}, err
		}
		return leaseAcquireReply(rec, out), nil
	case msgLeaseRenew:
		req, err := decodeLeaseReq(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		ok, err := n.ownerLeaseRenew(req.Site, req.Name, req.Holder, req.Token, req.TTL)
		if err != nil {
			return transport.Message{}, err
		}
		return leaseBoolReply(ok), nil
	case msgLeaseRelease:
		req, err := decodeLeaseReq(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		ok, err := n.ownerLeaseRelease(req.Site, req.Name, req.Holder, req.Token)
		if err != nil {
			return transport.Message{}, err
		}
		return leaseBoolReply(ok), nil
	case msgLeaseFPut:
		req, err := decodeLeaseFenced(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		if err := n.ownerFencedPut(req.Rec.Site, req.Rec.Key, req.Rec.Value, req.Guard, req.Holder, req.Token); err != nil {
			if err == ErrFenced {
				return transport.Message{Args: []string{"fenced"}}, nil
			}
			return transport.Message{}, err
		}
		return transport.Message{Args: []string{"ok"}}, nil
	case msgLeaseFStore:
		req, err := decodeLeaseFenced(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		n.repApplyMu.Lock()
		curVer, _, _, _, had := n.store.GetVersioned(req.Rec.Site, req.Rec.Key)
		applied, err := n.store.FencedPutVersioned(req.Rec, req.Guard, req.Holder, req.Token)
		n.repApplyMu.Unlock()
		if err == store.ErrFencedStale {
			return transport.Message{Args: []string{"fenced"}}, nil
		}
		if err != nil {
			return transport.Message{}, err
		}
		if applied {
			n.repApplied.Add(1)
			return transport.Message{Args: []string{"applied"}}, nil
		}
		if !had {
			curVer = 0
		}
		return transport.Message{Args: []string{"stale", fmt.Sprintf("%d", curVer)}}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown lease message %q", msg.Type)
	}
}
