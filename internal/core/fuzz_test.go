package core

import (
	"testing"

	"nakika/internal/httpmsg"
	"nakika/internal/state"
)

// FuzzRPCPayloads throws arbitrary bytes at every RPC body decoder on the
// node's transport surface. Each decoder sniffs its first byte to pick
// binary or legacy gob, and both arms must fail cleanly on garbage: no
// panic, no unbounded allocation — a peer (or an attacker on the RPC
// port) controls these bytes.
func FuzzRPCPayloads(f *testing.F) {
	f.Add(encodeRepForward(repForward{Site: "s", Key: "k", Value: "v"}))
	f.Add(encodeRepRangeReq(repRangeReq{From: 1, To: 99, After: "user:a", Limit: 64}))
	f.Add(encodeRepRangeResp(repRangeResp{
		Recs: []state.Rec{{Site: "s", Key: "k", Ver: 3, Origin: "n1", Value: "v"}},
		More: true,
	}))
	f.Add(encodeOffloadRequest(httpmsg.MustRequest("GET", "http://match.example.org/find?q=1")))
	f.Add(httpmsg.EncodeResponse(httpmsg.NewTextResponse(200, "ok")))
	f.Add(encodeLeaseReq(leaseReq{Site: "s", Name: "job", Holder: "node-1", Token: 7, TTL: 30_000_000_000}))
	f.Add(encodeLeaseFenced(leaseFenced{
		Guard: "\x00nk:lease:job", Holder: "node-1", Token: 7,
		Rec: state.Rec{Site: "s", Key: "k", Ver: 3, Origin: "n1", Value: "v"},
	}))
	if gobForward, err := gobEncode(repForward{Site: "s", Key: "k", Value: "v"}); err == nil {
		f.Add(gobForward) // legacy-arm seed: gob never starts with the magic byte
	}
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeRepForward(data)
		_, _ = decodeRepRangeReq(data)
		_, _ = decodeRepRangeResp(data)
		_, _ = decodeOffloadRequest(data)
		_, _ = decodeResponse(data)
		_, _ = decodeLeaseReq(data)
		_, _ = decodeLeaseFenced(data)
	})
}
