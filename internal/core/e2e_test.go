package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"nakika/internal/resource"
)

// newEdgeServer boots a node configured the way cmd/nakikad wires one
// (resource controls, CPU/memory capacities, local networks) and serves it
// over a real HTTP listener. The helper is the reusable entry point for
// end-to-end tests: everything between the TCP socket and the origin —
// ServeHTTP, the pipeline, the cache — runs for real.
func newEdgeServer(t *testing.T, origin Fetcher, mutate func(*Config)) (*Node, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Name:            "edge-e2e",
		Region:          "us-east",
		Upstream:        origin,
		LocalNetworks:   []string{"127.0.0.0/8", "10.0.0.0/8"},
		EnableResources: true,
		Resources: resource.Config{
			Capacity: map[resource.Kind]float64{
				resource.CPU:    50_000_000,
				resource.Memory: 256 << 20,
			},
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n)
	t.Cleanup(srv.Close)
	return n, srv
}

// get issues a real HTTP GET for rawURL through the edge server, using the
// proxy-style absolute-form request nakikad receives.
func get(t *testing.T, srv *httptest.Server, rawURL string) (*http.Response, string) {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("GET", srv.URL+u.RequestURI(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Absolute-form proxy request: the Host header carries the origin name
	// (with the .nakika.net redirection suffix clients append).
	req.Host = u.Host
	req.URL.Host = strings.TrimPrefix(srv.URL, "http://")
	req.URL.Scheme = "http"
	req.URL.Path = u.Path
	req.URL.RawQuery = u.RawQuery
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestEndToEndPipelineAndCache runs the full request path over real HTTP:
// a site script transforms the response at the edge, the result is cached,
// and the second request is served from the cache without a second origin
// fetch.
func TestEndToEndPipelineAndCache(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://shop.example.org/catalog.html", "<html><body>catalog</body></html>", 300)
	origin.addScript("http://shop.example.org/nakika.js", `
		var p = new Policy();
		p.url = [ "shop.example.org" ];
		p.onResponse = function() {
			var body = new ByteArray(), c;
			while (c = Response.read()) { body.append(c); }
			Response.setHeader("X-Edge-Script", "ran");
			Response.write(body.toString().replace("catalog", "edge catalog"));
		};
		p.register();
	`)
	node, srv := newEdgeServer(t, origin, nil)

	// The client appends .nakika.net for DNS redirection; the node must
	// strip it and recover the origin host.
	resp, body := get(t, srv, "http://shop.example.org.nakika.net/catalog.html")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "edge catalog") {
		t.Fatalf("script did not transform body: %q", body)
	}
	if resp.Header.Get("X-Edge-Script") != "ran" {
		t.Error("script-set header missing")
	}
	if resp.Header.Get("X-Na-Kika-Node") != "edge-e2e" {
		t.Error("node identity header missing")
	}

	// Second request: cache hit, no new origin access.
	before := origin.hitCount("http://shop.example.org/catalog.html")
	resp2, body2 := get(t, srv, "http://shop.example.org.nakika.net/catalog.html")
	if resp2.StatusCode != 200 || body2 != body {
		t.Fatalf("second response differs: %d %q", resp2.StatusCode, body2)
	}
	if after := origin.hitCount("http://shop.example.org/catalog.html"); after != before {
		t.Errorf("origin hits went %d -> %d; second request should be a cache hit", before, after)
	}
	st := node.Stats()
	if st.Requests != 2 || st.CacheHits == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEndToEndErrorPaths covers the non-happy paths over real HTTP: origin
// 404s, unparseable requests, and plain pass-through without the
// redirection suffix.
func TestEndToEndErrorPaths(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://plain.example.org/ok.html", "<html>ok</html>", 60)
	_, srv := newEdgeServer(t, origin, nil)

	resp, _ := get(t, srv, "http://plain.example.org/missing.html")
	if resp.StatusCode != 404 {
		t.Errorf("missing resource status = %d", resp.StatusCode)
	}
	resp, body := get(t, srv, "http://plain.example.org/ok.html")
	if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Errorf("plain host = %d %q", resp.StatusCode, body)
	}
}

// TestEndToEndAdminWall checks that the administrative control scripts run
// on the real HTTP path: a client-wall script blocks non-local clients and
// stamps admitted responses. The httptest client connects from 127.0.0.1,
// which is always local, so the wall admits it — the stamped header proves
// the wall actually executed rather than being silently skipped.
func TestEndToEndAdminWall(t *testing.T) {
	origin := newMemOrigin()
	origin.addText("http://guarded.example.org/file.pdf", "PDF", 60)
	origin.addScript("http://nakika.net/clientwall.js", `
		var p = new Policy();
		p.url = [ "guarded.example.org" ];
		p.onRequest = function() {
			if (! System.isLocal(Request.clientIP)) { Request.terminate(401); }
		};
		p.onResponse = function() {
			Response.setHeader("X-Wall", "ran");
		};
		p.register();
	`)
	_, srv := newEdgeServer(t, origin, nil)
	resp, body := get(t, srv, "http://guarded.example.org.nakika.net/file.pdf")
	if resp.StatusCode != 200 || body != "PDF" {
		t.Errorf("local client through wall = %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Wall") != "ran" {
		t.Error("client wall did not execute (X-Wall header missing)")
	}
}
