package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"nakika/internal/overlay"
	"nakika/internal/state"
	"nakika/internal/trace"
	"nakika/internal/transport"
)

// Successor-list replication of hard state. Every (site, key) pair hashes
// to a position on the overlay ring via state.ReplicaKey; the node owning
// that position accepts the pair's writes and synchronously pushes each
// accepted record to its ReplicationFactor-1 successors, so the pair stays
// readable through the deaths of up to ReplicationFactor-1 consecutive
// nodes. Writes and reads issued at any node are forwarded to the owner;
// when the owner is unreachable they fail over, in successor order, to the
// first live replica, which acts as owner (accepting writes, serving
// reads) until routing converges. Records are versioned (see
// state.Rec) so replication pushes, churn handoff streams, and repair
// passes are all idempotent last-writer-wins applies.
//
// Acknowledgement rule: an acting owner acknowledges a write once it is
// durable locally AND at least one replica accepted it — unless the node's
// successor list is empty (a ring of one, or K=1), in which case local
// durability is all that exists and the write degrades gracefully to
// local-only. A node whose replica pushes all fail (it crashed mid-write,
// or it is partitioned from every successor) returns an error instead of
// acknowledging: the write may exist locally but was never promised to
// survive this node.

// Replication message types (the "rep." prefix is what transport.Mux
// routes on).
const (
	msgRepPut   = "rep.put"   // forward a client put to the (acting) owner
	msgRepDel   = "rep.del"   // forward a client delete to the (acting) owner
	msgRepGet   = "rep.get"   // read a record from the (acting) owner or a replica
	msgRepStore = "rep.store" // owner → replica push of one versioned record
	msgRepRange = "rep.range" // handoff: stream a key range, chunked
	msgRepKeys  = "rep.keys"  // list a site's live keys held locally (for scatter enumeration)
)

// repForward is the body of rep.put / rep.del / rep.get.
type repForward struct {
	Site, Key, Value string
}

// repRangeReq asks for the versioned records whose replica-key hash lies
// in the ring interval (From, To], in (hash, key) order, starting strictly
// after the After cursor, at most Limit records.
type repRangeReq struct {
	From, To uint64
	After    string // replica-key cursor ("" = start)
	Limit    int
}

// repRangeResp is one handoff chunk; More reports records remaining past
// the last one returned.
type repRangeResp struct {
	Recs []state.Rec
	More bool
}

// gobEncode and gobDecode are the legacy payload codec: encode survives for
// the mixed-version interop tests, decode backs the grace paths in codec.go
// that accept payloads from peers one release behind.
func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// repEnabled reports whether successor-list replication is active: it
// needs the overlay for placement, the transport for pushes, and a
// non-negative ReplicationFactor.
func (n *Node) repEnabled() bool {
	return n.overlay != nil && n.tr != nil && n.repFactor >= 1
}

// replicaTargets returns the successors this node pushes replicas to: the
// first ReplicationFactor-1 distinct successor names. The list reflects
// the node's current routing tables — stale entries cost a failed push,
// missing entries cost a replica until repair.
func (n *Node) replicaTargets() []string {
	if n.repFactor <= 1 {
		return nil
	}
	var out []string
	for _, s := range n.overlay.Successors() {
		if s == "" || s == n.cfg.Name {
			continue
		}
		out = append(out, s)
		if len(out) >= n.repFactor-1 {
			break
		}
	}
	return out
}

// resolveActingOwner finds the node currently responsible for rk: the
// routed owner, or — when that node does not answer a ping — the first
// live successor, probing through at most the replica set. probe lets
// repair passes cache liveness across many keys; nil probes every
// candidate fresh.
func (n *Node) resolveActingOwner(rk string, probe func(string) bool) (string, error) {
	if probe == nil {
		probe = n.overlay.Ping
	}
	avoid := make(map[string]bool)
	for attempt := 0; attempt < n.repFactor+1; attempt++ {
		owner, _, err := n.overlay.LookupNameAvoid(rk, avoid)
		if err != nil {
			return "", err
		}
		if owner == n.cfg.Name || probe(owner) {
			return owner, nil
		}
		avoid[owner] = true
	}
	return "", fmt.Errorf("core: no live owner for %q", rk)
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

// repPut routes one client put: executed locally when this node is the
// acting owner, forwarded otherwise, failing over to successors while the
// routed owner is unreachable.
func (n *Node) repPut(act *trace.Act, site, key, value string) error {
	return n.repForwardOp(act, site, key, msgRepPut, value, func() error {
		return n.ownerPut(site, key, false, value)
	})
}

// repDelete routes one client delete (a versioned tombstone write).
func (n *Node) repDelete(act *trace.Act, site, key string) error {
	return n.repForwardOp(act, site, key, msgRepDel, "", func() error {
		return n.ownerPut(site, key, true, "")
	})
}

// repForwardOp is the shared owner-routing loop for mutations.
func (n *Node) repForwardOp(act *trace.Act, site, key, msgType, value string, local func() error) error {
	rk := state.ReplicaKey(site, key)
	body := encodeRepForward(repForward{Site: site, Key: key, Value: value})
	avoid := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < n.repFactor+1; attempt++ {
		owner, _, err := n.overlay.LookupNameAvoid(rk, avoid)
		if err != nil {
			return err
		}
		if owner == n.cfg.Name {
			return local()
		}
		_, err = n.callT(act, owner, transport.Message{Type: msgType, Body: body})
		if err == nil {
			n.repForwarded.Add(1)
			return nil
		}
		if transport.IsRemote(err) {
			// The owner answered and refused (quota, replication failure):
			// that is the operation's result, not a routing problem.
			return err
		}
		avoid[owner] = true
		lastErr = err
	}
	return fmt.Errorf("core: %s %s/%s: no reachable owner: %w", msgType, site, key, lastErr)
}

// ownerPut is the acting-owner mutation path: assign the next version,
// make the record durable locally, then push it to the replica targets.
// When every replica turns out to hold a newer version (this node lost its
// version history in a crash and is writing from an old base), the write
// is re-issued above the newest version reported, so the client's intent
// still wins last-writer-wins.
func (n *Node) ownerPut(site, key string, deleted bool, value string) error {
	baseVer := uint64(0)
	for attempt := 0; attempt < 3; attempt++ {
		n.repApplyMu.Lock()
		if curVer, _, _, _, ok := n.store.GetVersioned(site, key); ok && curVer > baseVer {
			baseVer = curVer
		}
		rec := state.Rec{Site: site, Key: key, Ver: baseVer + 1, Origin: n.cfg.Name, Delete: deleted, Value: value}
		_, err := n.store.PutVersioned(rec)
		n.repApplyMu.Unlock()
		if err != nil {
			return err
		}
		acks, attempts, staleVer := n.replicate(rec)
		switch {
		case staleVer >= rec.Ver:
			// Some replica holds a record at or ahead of our version that
			// our write did not supersede (we lost history in a crash, or
			// lost a payload tie) — even if another replica acked. Without
			// a rebase, the next repair pass would spread the superseding
			// record over the just-acknowledged write, losing it to an
			// older value; so rebase above the reported version and retry
			// until the client's write wins everywhere.
			baseVer = staleVer
		case attempts == 0 || acks > 0:
			return nil
		default:
			return fmt.Errorf("core: write %s/%s durable locally but none of %d replicas acknowledged", site, key, attempts)
		}
	}
	return fmt.Errorf("core: write %s/%s: replicas kept superseding the write", site, key)
}

// replicate pushes rec to this node's replica targets. It returns how many
// replicas applied it, how many pushes were attempted, and the newest
// version a replica reported when rejecting the record as stale.
func (n *Node) replicate(rec state.Rec) (acks, attempts int, staleVer uint64) {
	targets := n.replicaTargets()
	if len(targets) == 0 {
		return 0, 0, 0
	}
	body := state.EncodeRec(rec)
	for _, t := range targets {
		attempts++
		reply, err := n.call(t, transport.Message{Type: msgRepStore, Body: body})
		if err != nil {
			continue
		}
		if len(reply.Args) >= 2 && reply.Args[0] == "stale" {
			var v uint64
			if _, err := fmt.Sscanf(reply.Args[1], "%d", &v); err == nil && v > staleVer {
				staleVer = v
			}
			continue
		}
		acks++
		n.repPushes.Add(1)
	}
	return acks, attempts, staleVer
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

// repGet routes one client read to the acting owner, failing over in
// successor order while the routed owner is unreachable. A reachable
// owner's miss is authoritative; only transport failures fall through to
// the next replica. With a hedge budget configured (Config.HedgeAfter),
// a read whose owner is expected to be slow is hedged to the next replica
// first — see hedgeRead.
func (n *Node) repGet(act *trace.Act, site, key string) (string, bool) {
	rk := state.ReplicaKey(site, key)
	body := encodeRepForward(repForward{Site: site, Key: key})
	if value, ok, answered := n.hedgeRead(act, rk, site, key, body); answered {
		return value, ok
	}
	avoid := make(map[string]bool)
	for attempt := 0; attempt < n.repFactor+1; attempt++ {
		owner, _, err := n.overlay.LookupNameAvoid(rk, avoid)
		if err != nil {
			return "", false
		}
		if owner == n.cfg.Name {
			return n.localVersionedGet(site, key)
		}
		reply, err := n.callT(act, owner, transport.Message{Type: msgRepGet, Body: body})
		if err == nil {
			if len(avoid) > 0 {
				n.repFailovers.Add(1)
			}
			if len(reply.Args) > 0 && reply.Args[0] == "hit" {
				if rec, err := state.DecodeRec(reply.Body); err == nil {
					return rec.Value, true
				}
			}
			return "", false
		}
		if transport.IsRemote(err) {
			return "", false
		}
		avoid[owner] = true
	}
	return "", false
}

// hedgeRead is the tail-tolerance path of replicated reads: when hedging
// is enabled (Config.HedgeAfter > 0) and the acting owner's expected round
// trip — the per-peer EWMA the node maintains over every completed RPC —
// exceeds the budget, the read fires at the next replica in successor
// order instead of waiting out the slow owner. The first answer wins: a
// hit from the hedge target is returned immediately and the slow owner is
// never contacted for this read (the "loser" is cancelled by prediction —
// on a synchronous transport the race is resolved before it starts). A
// miss or failure from the hedge target falls back to the normal owner
// path, so hedging can only add one cheap RPC, never turn a readable key
// into a miss.
//
// Freshness: a hedge hit serves the replica's copy, which can trail a
// just-acknowledged write the replica missed (acks need only one of the
// K-1 replicas) until repair catches it up — the same class of staleness
// the dead-owner failover read path already serves, and in-model for Na
// Kika's optimistic last-writer-wins hard state. RefreshRTTs retrains a
// recovered owner's estimate from the maintenance loops so reads return
// to the owner instead of hedging forever. answered reports whether the
// hedge produced an authoritative result.
func (n *Node) hedgeRead(act *trace.Act, rk, site, key string, body []byte) (value string, ok, answered bool) {
	if n.cfg.HedgeAfter <= 0 {
		return "", false, false
	}
	owner, _, err := n.overlay.LookupNameAvoid(rk, nil)
	if err != nil || owner == n.cfg.Name {
		return "", false, false
	}
	expect, known := n.rtts.Expect(owner)
	if !known || expect <= n.cfg.HedgeAfter {
		return "", false, false
	}
	alt, _, err := n.overlay.LookupNameAvoid(rk, map[string]bool{owner: true})
	if err != nil || alt == owner {
		return "", false, false
	}
	n.hedged.Add(1)
	// The requesting pipeline's trace records the hedge fire and whether
	// the hedge target's answer won (answered == the hedge was
	// authoritative).
	defer func() { act.RecordHedge(answered) }()
	if alt == n.cfg.Name {
		// This node is the next replica: serve its local copy.
		if v, ok := n.localVersionedGet(site, key); ok {
			n.hedgeHits.Add(1)
			return v, true, true
		}
		return "", false, false
	}
	reply, err := n.callT(act, alt, transport.Message{Type: msgRepGet, Body: body})
	if err != nil || len(reply.Args) == 0 || reply.Args[0] != "hit" {
		return "", false, false
	}
	rec, err := state.DecodeRec(reply.Body)
	if err != nil {
		return "", false, false
	}
	n.hedgeHits.Add(1)
	return rec.Value, true, true
}

// repKeys enumerates a site's live keys cluster-wide: the local holdings
// plus a scatter to every ring member's rep.keys (unreachable members are
// skipped — their keys are replicated on reachable successors). This
// keeps the host API contract that State.keys() agrees with State.get():
// keys span the ring, so enumeration must too. The scatter is O(members)
// per call; site key sets and rings are small at this system's scale.
func (n *Node) repKeys(act *trace.Act, site string) []string {
	set := make(map[string]struct{})
	for _, k := range n.store.KeysVersioned(site) {
		set[k] = struct{}{}
	}
	for _, peer := range n.cfg.Ring.Nodes() {
		if peer == n.cfg.Name {
			continue
		}
		reply, err := n.callT(act, peer, transport.Message{Type: msgRepKeys, Key: site})
		if err != nil {
			continue
		}
		for _, k := range reply.Args {
			set[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// localVersionedGet reads (site, key) from the local store under
// replication semantics: tombstones and non-versioned values are misses.
func (n *Node) localVersionedGet(site, key string) (string, bool) {
	_, _, deleted, value, ok := n.store.GetVersioned(site, key)
	if !ok || deleted {
		return "", false
	}
	return value, true
}

// LocalStateRecord exposes the node's local copy of a replicated record
// (version, value, liveness) without any routing — the harness uses it to
// count replicas and check convergence.
func (n *Node) LocalStateRecord(site, key string) (ver uint64, value string, deleted, ok bool) {
	ver, _, deleted, value, ok = n.store.GetVersioned(site, key)
	return ver, value, deleted, ok
}

// ---------------------------------------------------------------------------
// Churn: repair (re-replication, promotion) and handoff streams
// ---------------------------------------------------------------------------

// RepairReplication walks every replicated record this node holds and
// restores the replication invariant around it: records this node is the
// acting owner of (including replicas just promoted by an owner's death)
// are pushed to the node's replica targets; records owned elsewhere are
// pushed to their acting owner, so a newly responsible node receives keys
// that rebalanced onto it. All pushes are idempotent last-writer-wins
// applies, so repairing too eagerly is merely wasted traffic. It returns
// the number of records accepted by a peer.
func (n *Node) RepairReplication() int {
	if !n.repEnabled() {
		return 0
	}
	n.retryPendingDeletes()
	recs := n.store.VersionedRecords(nil)
	if len(recs) == 0 {
		return 0
	}
	liveness := make(map[string]bool)
	probe := func(name string) bool {
		if alive, ok := liveness[name]; ok {
			return alive
		}
		alive := n.overlay.Ping(name)
		liveness[name] = alive
		return alive
	}
	pushed := 0
	for _, rec := range recs {
		rk := state.ReplicaKey(rec.Site, rec.Key)
		owner, err := n.resolveActingOwner(rk, probe)
		if err != nil {
			continue
		}
		body := state.EncodeRec(rec)
		targets := []string{owner}
		if owner == n.cfg.Name {
			targets = targets[:0]
			for _, t := range n.replicaTargets() {
				if probe(t) {
					targets = append(targets, t)
				}
			}
		}
		for _, t := range targets {
			if _, err := n.call(t, transport.Message{Type: msgRepStore, Body: body}); err == nil {
				pushed++
				n.repPushes.Add(1)
			}
		}
	}
	return pushed
}

// RepairIfNeeded runs RepairReplication when overlay stabilization flagged
// churn (dead predecessor or changed successor head) since the last call.
// It returns the number of records pushed (zero when no repair ran).
func (n *Node) RepairIfNeeded() int {
	if !n.repairPending.Swap(false) {
		return 0
	}
	return n.RepairReplication()
}

// delIntent is one queued delete awaiting a reachable acting owner.
type delIntent struct {
	site, key string
}

// retryPendingDeletes re-executes deletes that found no reachable owner,
// through the normal owner path (a fallback tombstone alone could lose a
// version tie against the put it is meant to remove). Successful deletes
// leave the queue; failures stay for the next repair.
func (n *Node) retryPendingDeletes() {
	n.delMu.Lock()
	rks := make([]string, 0, len(n.pendingDel))
	for rk := range n.pendingDel {
		rks = append(rks, rk)
	}
	n.delMu.Unlock()
	sort.Strings(rks)
	for _, rk := range rks {
		n.delMu.Lock()
		it, ok := n.pendingDel[rk]
		n.delMu.Unlock()
		if !ok {
			continue
		}
		if err := n.repDelete(nil, it.site, it.key); err == nil {
			n.delMu.Lock()
			delete(n.pendingDel, rk)
			n.delMu.Unlock()
		}
	}
}

// repKeyLess orders replica keys by (ring hash, key) — the deterministic
// total order handoff streams are paginated in, identical on every node.
func repKeyLess(a, b string) bool {
	ha, hb := overlay.HashID(a), overlay.HashID(b)
	if ha != hb {
		return ha < hb
	}
	return a < b
}

// PullOwnedRange streams the records of this node's owned key range
// (predecessor, self] from its successors, applying each record
// last-writer-wins. It is the joining/recovering side of churn handoff:
// a node that just joined (or restarted after a crash) calls it to catch
// up on the range it now owns. The stream is chunked (chunk records per
// RPC, default 64); if the source dies mid-stream, the pull continues
// from the same cursor against the next successor — the replicas hold the
// same records, and anything missed is restored by repair. It returns how
// many records were applied.
func (n *Node) PullOwnedRange(chunk int) (int, error) {
	if !n.repEnabled() {
		return 0, nil
	}
	from, to, ok := n.overlay.OwnedRange()
	if !ok {
		return 0, fmt.Errorf("core: %s: owned range unknown (no predecessor yet)", n.cfg.Name)
	}
	if chunk <= 0 {
		chunk = 64
	}
	applied := 0
	after := ""
	sources := n.overlay.Successors()
	si := 0
	for {
		if si >= len(sources) {
			if applied == 0 && len(sources) == 0 {
				return 0, nil // alone on the ring: nothing to pull
			}
			return applied, fmt.Errorf("core: %s: handoff sources exhausted after %d records", n.cfg.Name, applied)
		}
		src := sources[si]
		if src == n.cfg.Name {
			si++
			continue
		}
		body := encodeRepRangeReq(repRangeReq{From: uint64(from), To: uint64(to), After: after, Limit: chunk})
		reply, err := n.call(src, transport.Message{Type: msgRepRange, Body: body})
		if err != nil {
			si++ // source died mid-stream: resume at the cursor from the next replica
			continue
		}
		resp, err := decodeRepRangeResp(reply.Body)
		if err != nil {
			return applied, err
		}
		for _, rec := range resp.Recs {
			n.repApplyMu.Lock()
			ok, err := n.store.PutVersioned(rec)
			n.repApplyMu.Unlock()
			if err == nil && ok {
				applied++
				n.repApplied.Add(1)
			}
			after = state.ReplicaKey(rec.Site, rec.Key)
		}
		if !resp.More {
			return applied, nil
		}
		if len(resp.Recs) == 0 {
			return applied, fmt.Errorf("core: %s: empty handoff chunk claiming more", n.cfg.Name)
		}
	}
}

// ---------------------------------------------------------------------------
// RPC handler
// ---------------------------------------------------------------------------

// serveRepRPC answers peers' replication messages.
func (n *Node) serveRepRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgRepPut, msgRepDel:
		req, err := decodeRepForward(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		// The sender routed here believing this node is the acting owner;
		// accept the role (its tables may be fresher than ours under churn).
		if msg.Type == msgRepDel {
			return transport.Message{}, n.ownerPut(req.Site, req.Key, true, "")
		}
		return transport.Message{}, n.ownerPut(req.Site, req.Key, false, req.Value)
	case msgRepGet:
		req, err := decodeRepForward(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		ver, origin, deleted, value, ok := n.store.GetVersioned(req.Site, req.Key)
		if !ok || deleted {
			return transport.Message{Args: []string{"miss"}}, nil
		}
		body := state.EncodeRec(state.Rec{Site: req.Site, Key: req.Key, Ver: ver, Origin: origin, Value: value})
		return transport.Message{Args: []string{"hit"}, Body: body}, nil
	case msgRepStore:
		rec, err := state.DecodeRec(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		n.repApplyMu.Lock()
		curVer, curOrigin, _, _, had := n.store.GetVersioned(rec.Site, rec.Key)
		applied, err := n.store.PutVersioned(rec)
		n.repApplyMu.Unlock()
		if err != nil {
			return transport.Message{}, err
		}
		if applied {
			n.repApplied.Add(1)
			return transport.Message{Args: []string{"applied"}}, nil
		}
		if !had {
			curVer, curOrigin = 0, ""
		}
		return transport.Message{Args: []string{"stale", fmt.Sprintf("%d", curVer), curOrigin}}, nil
	case msgRepKeys:
		return transport.Message{Args: n.store.KeysVersioned(msg.Key)}, nil
	case msgRepRange:
		req, err := decodeRepRangeReq(msg.Body)
		if err != nil {
			return transport.Message{}, err
		}
		// Each chunk rescans the store, so a stream over R records in a
		// store of S costs O(R/chunk * S). Deliberate: keeping per-stream
		// server state would have to survive requester retries against
		// other replicas mid-crash, and stores here are far too small for
		// the rescan to matter.
		recs := n.store.VersionedRecords(func(site, key string) bool {
			rk := state.ReplicaKey(site, key)
			if !overlay.InInterval(overlay.HashID(rk), overlay.ID(req.From), overlay.ID(req.To)) {
				return false
			}
			return req.After == "" || repKeyLess(req.After, rk)
		})
		sort.Slice(recs, func(i, j int) bool {
			return repKeyLess(state.ReplicaKey(recs[i].Site, recs[i].Key), state.ReplicaKey(recs[j].Site, recs[j].Key))
		})
		limit := req.Limit
		if limit <= 0 {
			limit = 64
		}
		more := len(recs) > limit
		if more {
			recs = recs[:limit]
		}
		return transport.Message{Body: encodeRepRangeResp(repRangeResp{Recs: recs, More: more})}, nil
	default:
		return transport.Message{}, fmt.Errorf("core: unknown replication message %q", msg.Type)
	}
}
