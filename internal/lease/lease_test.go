package lease

import "testing"

func TestAcquireLifecycle(t *testing.T) {
	var rec Record

	// Fresh grant of a never-held lease.
	rec, out := Acquire(rec, "node-a", 100, 50, false)
	if out != Granted || rec.Holder != "node-a" || rec.Token != 1 || rec.Expires != 150 {
		t.Fatalf("fresh acquire = %+v, %v", rec, out)
	}

	// The holder re-acquiring before expiry renews: token kept, expiry
	// extended.
	rec, out = Acquire(rec, "node-a", 120, 50, false)
	if out != Renewed || rec.Token != 1 || rec.Expires != 170 {
		t.Fatalf("renew via acquire = %+v, %v", rec, out)
	}

	// Another node is denied while the holder is live and unexpired.
	if _, out = Acquire(rec, "node-b", 130, 50, false); out != Denied {
		t.Fatalf("contended acquire = %v, want denied", out)
	}

	// After expiry anyone may take over, with a bumped token.
	rec, out = Acquire(rec, "node-b", 200, 50, false)
	if out != ExpiryGrant || rec.Holder != "node-b" || rec.Token != 2 {
		t.Fatalf("expiry takeover = %+v, %v", rec, out)
	}

	// A detector-visible crash lets an heir in before expiry.
	rec, out = Acquire(rec, "node-c", 210, 50, true)
	if out != CrashGrant || rec.Holder != "node-c" || rec.Token != 3 {
		t.Fatalf("crash takeover = %+v, %v", rec, out)
	}

	// Release, then an immediate grant.
	rec, ok := Release(rec, "node-c", 3)
	if !ok || !rec.Released {
		t.Fatalf("release = %+v, %v", rec, ok)
	}
	rec, out = Acquire(rec, "node-a", 215, 50, false)
	if out != Granted || rec.Token != 4 {
		t.Fatalf("acquire after release = %+v, %v", rec, out)
	}
}

func TestHolderReacquireAfterOwnExpiryBumpsToken(t *testing.T) {
	rec, _ := Acquire(Record{}, "node-a", 0, 10, false)
	// The same holder coming back after its own TTL lapsed is a fresh
	// holdership: its buffered writes from before the lapse must be
	// distinguishable, so the token bumps.
	rec, out := Acquire(rec, "node-a", 50, 10, false)
	if out != ExpiryGrant || rec.Token != 2 {
		t.Fatalf("re-acquire after own expiry = %+v, %v (token must bump)", rec, out)
	}
}

func TestRenewChecksToken(t *testing.T) {
	rec, _ := Acquire(Record{}, "node-a", 0, 100, false)
	rec, _ = Acquire(rec, "node-b", 200, 100, false) // expiry takeover, token 2

	// A renewal buffered from the deposed holdership (old token) must not
	// resurrect it.
	if _, ok := Renew(rec, "node-a", 1, 250, 100); ok {
		t.Fatal("stale renew succeeded")
	}
	if _, ok := Release(rec, "node-a", 1); ok {
		t.Fatal("stale release succeeded")
	}
	// The live holdership renews fine.
	rec2, ok := Renew(rec, "node-b", 2, 250, 100)
	if !ok || rec2.Expires != 350 || rec2.Token != 2 {
		t.Fatalf("live renew = %+v, %v", rec2, ok)
	}
	// But not after expiry: the holdership lapsed, only Acquire (with its
	// token bump) may continue.
	if _, ok := Renew(rec, "node-b", 2, 400, 100); ok {
		t.Fatal("post-expiry renew succeeded")
	}
}

func TestHeld(t *testing.T) {
	if (Record{}).Held(0) {
		t.Fatal("zero record held")
	}
	rec, _ := Acquire(Record{}, "node-a", 0, 100, false)
	if !rec.Held(50) || rec.Held(100) || rec.Held(150) {
		t.Fatalf("Held windows wrong for %+v", rec)
	}
	rel, _ := Release(rec, "node-a", 1)
	if rel.Held(50) {
		t.Fatal("released record held")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{},
		{Holder: "node-a", Token: 1, Expires: 12345},
		{Holder: "node-b", Token: 1<<63 + 7, Expires: -42, Released: true},
		{Holder: "", Token: 9, Expires: 0, Released: false},
	}
	for _, rec := range cases {
		got, ok := Decode(Encode(rec))
		if !ok || got != rec {
			t.Fatalf("round trip %+v = %+v, %v", rec, got, ok)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "plain value", "\x00", "\x00\xff\xff\xff", Encode(Record{Holder: "x", Token: 1}) + "trailing"} {
		if rec, ok := Decode(s); ok {
			t.Fatalf("Decode(%q) = %+v, want reject", s, rec)
		}
	}
}

func TestKeyNamespace(t *testing.T) {
	k := Key("ctr")
	if !IsLeaseKey(k) {
		t.Fatalf("Key output %q not recognized", k)
	}
	if name, ok := Name(k); !ok || name != "ctr" {
		t.Fatalf("Name(%q) = %q, %v", k, name, ok)
	}
	if IsLeaseKey("ctr") || IsLeaseKey("\x00nk:other") && false {
		t.Fatal("plain key recognized as lease key")
	}
	if _, ok := Name("plain"); ok {
		t.Fatal("Name accepted a plain key")
	}
}
