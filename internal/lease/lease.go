// Package lease implements crash-recoverable distributed leases with
// monotonic fencing tokens. A lease is a versioned hard-state record (it
// rides the same replicated last-writer-wins layer as every other record,
// so successor-list replication, failover, churn handoff, and repair carry
// it for free); this package owns the pure state machine — who may hold
// the lease, when it expires, and which fencing token a holdership was
// issued — while internal/core arbitrates transitions at the record's
// acting owner and internal/store enforces the tokens at the WAL write
// path.
//
// The safety story deliberately does not rest on the lease itself: leases
// are a liveness mechanism (at most one node *believes* it holds the
// critical section at a time, under a well-behaved clock), while fencing
// tokens are the safety mechanism — every fenced write carries the token
// of the holdership that issued it, every store rejects writes below its
// durable token floor, so a deposed holder's late writes are fenced off no
// matter how confused its clock or its network is. This is the
// recoverable-mutual-exclusion discipline (Dhoked & Mittal): a crashed
// holder's section is recovered by an heir in O(1) messages when the crash
// is failure-detector-visible, and by lease expiry otherwise.
package lease

import "strings"

// Record is the lease state stored (encoded, see Encode) as the value of a
// replicated hard-state key. The zero Record is "never held".
type Record struct {
	// Holder is the node name currently (or most recently) holding the
	// lease.
	Holder string
	// Token is the monotonic fencing token issued with the current
	// holdership. Every fresh grant bumps it; a renewal keeps it. Zero
	// means the lease has never been granted.
	Token uint64
	// Expires is the instant (in lease-clock nanoseconds: the simulated
	// network's virtual clock under the harness, wall time in production)
	// at which the holdership lapses.
	Expires int64
	// Released marks a holdership the holder gave up before expiry; the
	// next acquire grants immediately.
	Released bool
}

// Held reports whether the lease is held at now: granted, not released,
// and not expired.
func (r Record) Held(now int64) bool {
	return r.Token > 0 && !r.Released && now < r.Expires
}

// Outcome classifies an Acquire decision; core maps outcomes to
// Stats.Lease counters.
type Outcome int

const (
	// Denied: the lease is held by a live other holder; the caller waits
	// (or retries until the TTL lapses).
	Denied Outcome = iota
	// Granted: fresh grant of a never-held or released lease.
	Granted
	// Renewed: the current holder extended its unexpired holdership; the
	// fencing token is kept.
	Renewed
	// ExpiryGrant: grant over a holdership whose TTL had lapsed — the
	// non-adaptive recovery path, paid for with a full TTL of waiting.
	ExpiryGrant
	// CrashGrant: grant over a holder the failure detector reports dead —
	// the RME-style adaptive path, costing one probe instead of a TTL.
	CrashGrant
)

// String renders an outcome for fingerprints and test failures.
func (o Outcome) String() string {
	switch o {
	case Granted:
		return "granted"
	case Renewed:
		return "renewed"
	case ExpiryGrant:
		return "expiry-grant"
	case CrashGrant:
		return "crash-grant"
	default:
		return "denied"
	}
}

// Acquire decides an acquire request by holder at now for ttl nanoseconds
// against the current record. holderDead reports whether the current
// holder is known crashed (failure-detector visibility); it is consulted
// only when the lease is otherwise held. The returned record is the state
// to store when the outcome is not Denied (on Denied the current record is
// returned unchanged).
//
// Every fresh holdership — including the same node re-acquiring after its
// own lease expired — bumps the fencing token: writes buffered from the
// lapsed holdership must be distinguishable from the new one's at every
// store.
func Acquire(cur Record, holder string, now, ttl int64, holderDead bool) (Record, Outcome) {
	if cur.Holder == holder && cur.Token > 0 && !cur.Released && now < cur.Expires {
		cur.Expires = now + ttl
		return cur, Renewed
	}
	grant := func(o Outcome) (Record, Outcome) {
		return Record{Holder: holder, Token: cur.Token + 1, Expires: now + ttl}, o
	}
	switch {
	case cur.Token == 0 || cur.Released:
		return grant(Granted)
	case now >= cur.Expires:
		return grant(ExpiryGrant)
	case holderDead:
		return grant(CrashGrant)
	}
	return cur, Denied
}

// Renew extends an unexpired holdership, checking the token so a renewal
// buffered from a deposed holdership cannot resurrect it. ok is false when
// the caller no longer holds the lease.
func Renew(cur Record, holder string, token uint64, now, ttl int64) (Record, bool) {
	if cur.Holder != holder || cur.Token != token || token == 0 || cur.Released || now >= cur.Expires {
		return cur, false
	}
	cur.Expires = now + ttl
	return cur, true
}

// Release gives the holdership up early (token-checked like Renew). ok is
// false when the caller no longer holds the lease; releasing an already
// expired holdership still succeeds (it only widens the next acquirer's
// options).
func Release(cur Record, holder string, token uint64) (Record, bool) {
	if cur.Holder != holder || cur.Token != token || token == 0 || cur.Released {
		return cur, false
	}
	cur.Released = true
	return cur, true
}

// KeyPrefix is the reserved hard-state key namespace lease records live
// under. It starts with the internal-namespace marker "\x00nk:" (state
// hides such keys from script-facing enumeration, and core refuses script
// writes to them) so a site script can neither shadow nor delete a lease
// record through the State vocabulary.
const KeyPrefix = "\x00nk:lease:"

// Key returns the hard-state key for the named per-site lease.
func Key(name string) string { return KeyPrefix + name }

// IsLeaseKey reports whether key is in the lease namespace.
func IsLeaseKey(key string) bool { return strings.HasPrefix(key, KeyPrefix) }

// Name returns the lease name behind a lease key.
func Name(key string) (string, bool) {
	if !IsLeaseKey(key) {
		return "", false
	}
	return key[len(KeyPrefix):], true
}
