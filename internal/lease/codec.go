package lease

import (
	"nakika/internal/wire"
)

// Lease records cross two boundaries: they are stored as the string value
// of a replicated hard-state key (Encode/Decode), and they travel inside
// lease RPC payloads (AppendRecord/ReadRecord, composed by internal/core's
// codecs). Both use the wire package's append-style binary primitives; the
// stored form leads with wire.Magic so no plausible script-written value
// collides with it (the lease key namespace already prevents collisions,
// the magic byte makes decoding fail loudly rather than quietly if one
// ever slips through).

// AppendRecord appends rec's binary encoding (no magic byte):
//
//	str(holder) uvarint(token) varint(expires) bool(released)
func AppendRecord(buf []byte, rec Record) []byte {
	buf = wire.AppendString(buf, rec.Holder)
	buf = wire.AppendUvarint(buf, rec.Token)
	buf = wire.AppendVarint(buf, rec.Expires)
	return wire.AppendBool(buf, rec.Released)
}

// ReadRecord reads one AppendRecord-encoded record.
func ReadRecord(r *wire.Reader) (rec Record, err error) {
	if rec.Holder, err = r.String(); err != nil {
		return
	}
	if rec.Token, err = r.Uvarint(); err != nil {
		return
	}
	if rec.Expires, err = r.Varint(); err != nil {
		return
	}
	rec.Released, err = r.Bool()
	return
}

// Encode renders rec as the string stored in the hard-state layer.
func Encode(rec Record) string {
	buf := make([]byte, 0, 24+len(rec.Holder))
	buf = append(buf, wire.Magic)
	return string(AppendRecord(buf, rec))
}

// Decode parses an Encode-produced value. ok is false for anything else —
// including trailing garbage, so a truncated or corrupted stored value can
// never be half-read as a valid lease.
func Decode(s string) (Record, bool) {
	if len(s) == 0 || s[0] != wire.Magic {
		return Record{}, false
	}
	r := wire.Reader{Buf: []byte(s), Off: 1}
	rec, err := ReadRecord(&r)
	if err != nil || r.Len() != 0 {
		return Record{}, false
	}
	return rec, true
}
