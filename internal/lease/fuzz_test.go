package lease

import "testing"

// FuzzLeaseRecordRoundTrip asserts Encode/Decode are inverse over arbitrary
// field values: whatever holder bytes, token, expiry, and release flag a
// record carries, the stored string decodes back to exactly that record.
func FuzzLeaseRecordRoundTrip(f *testing.F) {
	f.Add("node-a", uint64(1), int64(12345), false)
	f.Add("", uint64(0), int64(0), true)
	f.Add("holder with spaces \x00 and nul", ^uint64(0), int64(-1), false)
	f.Fuzz(func(t *testing.T, holder string, token uint64, expires int64, released bool) {
		rec := Record{Holder: holder, Token: token, Expires: expires, Released: released}
		got, ok := Decode(Encode(rec))
		if !ok {
			t.Fatalf("Decode rejected Encode(%+v)", rec)
		}
		if got != rec {
			t.Fatalf("round trip %+v = %+v", rec, got)
		}
	})
}

// FuzzLeaseRecordDecode feeds arbitrary bytes to the stored-value decoder:
// it must never panic, and anything it does accept must re-encode to an
// equivalent record (decoding is unambiguous).
func FuzzLeaseRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Encode(Record{Holder: "node-a", Token: 3, Expires: 99})))
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, ok := Decode(string(data))
		if !ok {
			return
		}
		got, ok2 := Decode(Encode(rec))
		if !ok2 || got != rec {
			t.Fatalf("accepted %q as %+v but re-decode = %+v, %v", data, rec, got, ok2)
		}
	})
}
