package lease_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"nakika/internal/lease"
	"nakika/internal/state"
	"nakika/internal/store"
)

// Property-based exclusion test for the full lease + fencing stack: whatever
// seeded interleaving of acquires, renews, fenced writes, crashes, restarts,
// releases, and clock advances three nodes execute — including split-brain
// acquires where a partition hides the current lease record from an acting
// owner, so two holderships are granted the *same* fencing token — no two
// holderships may ever interleave fenced writes at any single store, and all
// stores must converge once repair runs.
//
// The model mirrors the deployed arbitration exactly: each node reads lease
// state from its OWN local store (an acting owner consults only its local
// copy), decides transitions with the pure lease state machine, and pushes
// the resulting record to whichever stores the op's delivery mask reaches —
// a dropped delivery is a partitioned replica and is how split brain enters.
// Fenced data writes flow through state.FencedPutVersioned, the same
// admission path core's replicas use, so the property exercises the
// (token, holder) floor logic end to end.
//
// Scenarios are seeded op tables in the internal/state lww_prop_test.go
// mold: ops apply sequentially (the table order IS the interleaving), each
// op is self-contained, so the shrinker can greedily drop ops and on
// failure report a minimal table as a Go literal replayable through
// TestLeaseExclusionReplay.

const exNodes = 3

// exOp is one generated step of the interleaving.
type exOp struct {
	// Kind: 'A' acquire, 'N' renew, 'W' fenced write, 'D' release,
	// 'C' crash, 'R' restart, 'T' clock advance.
	Kind byte
	// Node is the acting node (ignored for 'T').
	Node int
	// TTL is the lease TTL in virtual ticks ('A' and 'N').
	TTL int64
	// Dt is the clock advance in virtual ticks ('T').
	Dt int64
	// Delivery[r] < 0 drops the op's resulting record at store r (a
	// partitioned replica); >= 0 delivers it. Applies to the lease-record
	// writes of 'A'/'N'/'D' and the fenced data writes of 'W'.
	Delivery [exNodes]int
}

// exSession is one holdership: a grant a node believes it owns. Sessions
// get unique holder ids so a node re-acquiring after losing its lease is a
// distinct holdership — the exclusion property is between holderships, not
// node names.
type exSession struct {
	id    string
	token uint64
}

// exAdmit is one fenced write a store's floor admitted, in admission order.
type exAdmit struct {
	token  uint64
	holder string
}

// exWorld is the state of one run of a table.
type exWorld struct {
	stores   [exNodes]*state.Store
	now      int64
	crashed  [exNodes]bool
	sess     [exNodes]*exSession
	sessNode map[string]int // session id -> node, for failure-detector probes
	grants   int
	writes   int
	admitted [exNodes][]exAdmit
}

const (
	exSite    = "prop.example.org"
	exLease   = "job"
	exDataKey = "critical"
)

func exSeedOffset() int64 {
	if s := os.Getenv("NAKIKA_SEED_OFFSET"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 0
}

func exNodeName(n int) string { return fmt.Sprintf("node-%d", n) }

// readLease reads the lease record from one store's local copy, exactly as
// an acting owner would.
func readLease(s *state.Store) lease.Record {
	_, _, deleted, value, ok := s.GetVersioned(exSite, lease.Key(exLease))
	if !ok || deleted {
		return lease.Record{}
	}
	rec, ok := lease.Decode(value)
	if !ok {
		return lease.Record{}
	}
	return rec
}

// putLease stores rec as a versioned lease record, versioned against the
// acting node's own copy (split-brain owners may assign colliding versions;
// the LWW origin tie-break converges them), delivered per the op's mask.
func putLease(t *testing.T, w *exWorld, op exOp, rec lease.Record) {
	t.Helper()
	ver, _, _, _, _ := w.stores[op.Node].GetVersioned(exSite, lease.Key(exLease))
	out := state.Rec{
		Site:   exSite,
		Key:    lease.Key(exLease),
		Ver:    ver + 1,
		Origin: exNodeName(op.Node),
		Value:  lease.Encode(rec),
	}
	for r := 0; r < exNodes; r++ {
		if op.Delivery[r] < 0 {
			continue
		}
		if _, err := w.stores[r].PutVersioned(out); err != nil {
			t.Fatalf("store %d lease put: %v", r, err)
		}
	}
}

// applyExOps plays a table from scratch and returns the resulting world.
func applyExOps(t *testing.T, ops []exOp) *exWorld {
	t.Helper()
	w := &exWorld{sessNode: make(map[string]int)}
	for r := range w.stores {
		w.stores[r] = state.NewStore(1 << 20)
	}
	for _, op := range ops {
		switch op.Kind {
		case 'T':
			w.now += op.Dt
		case 'C':
			w.crashed[op.Node] = true
			w.sess[op.Node] = nil
		case 'R':
			w.crashed[op.Node] = false
		case 'A':
			if w.crashed[op.Node] {
				continue
			}
			cur := readLease(w.stores[op.Node])
			holderDead := false
			if cur.Held(w.now) {
				if n, ok := w.sessNode[cur.Holder]; ok && w.crashed[n] {
					holderDead = true
				}
			}
			w.grants++
			id := fmt.Sprintf("%s#%d", exNodeName(op.Node), w.grants)
			rec, out := lease.Acquire(cur, id, w.now, op.TTL, holderDead)
			if out == lease.Denied {
				continue
			}
			w.sessNode[id] = op.Node
			w.sess[op.Node] = &exSession{id: id, token: rec.Token}
			putLease(t, w, op, rec)
		case 'N':
			s := w.sess[op.Node]
			if w.crashed[op.Node] || s == nil {
				continue
			}
			cur := readLease(w.stores[op.Node])
			rec, ok := lease.Renew(cur, s.id, s.token, w.now, op.TTL)
			if ok {
				putLease(t, w, op, rec)
			}
		case 'D':
			s := w.sess[op.Node]
			if w.crashed[op.Node] || s == nil {
				continue
			}
			cur := readLease(w.stores[op.Node])
			rec, ok := lease.Release(cur, s.id, s.token)
			if ok {
				putLease(t, w, op, rec)
			}
			w.sess[op.Node] = nil
		case 'W':
			s := w.sess[op.Node]
			if w.crashed[op.Node] || s == nil {
				continue
			}
			w.writes++
			ver, _, _, _, _ := w.stores[op.Node].GetVersioned(exSite, exDataKey)
			rec := state.Rec{
				Site:   exSite,
				Key:    exDataKey,
				Ver:    ver + 1,
				Origin: exNodeName(op.Node),
				Value:  fmt.Sprintf("w%d-%s", w.writes, s.id),
			}
			for r := 0; r < exNodes; r++ {
				if op.Delivery[r] < 0 {
					continue
				}
				_, err := w.stores[r].FencedPutVersioned(rec, lease.Key(exLease), s.id, s.token)
				switch {
				case err == nil:
					w.admitted[r] = append(w.admitted[r], exAdmit{token: s.token, holder: s.id})
				case errors.Is(err, store.ErrFencedStale):
					// Fenced off: the deposed holdership's write was rejected.
				default:
					t.Fatalf("store %d fenced put: %v", r, err)
				}
			}
		default:
			t.Fatalf("unknown op kind %q", op.Kind)
		}
	}
	return w
}

// exViolation checks the exclusion property over a run's admission logs:
// at every store, admitted fencing tokens must be non-decreasing and each
// token must belong to exactly one holdership — together, no two
// holderships ever interleave fenced writes at any store. Returns "" when
// the property holds.
func exViolation(w *exWorld) string {
	for r := range w.admitted {
		var last uint64
		owner := make(map[uint64]string)
		for i, ad := range w.admitted[r] {
			if ad.token < last {
				return fmt.Sprintf("store %d admitted token %d after %d (log %v)", r, ad.token, last, w.admitted[r][:i+1])
			}
			last = ad.token
			if prev, ok := owner[ad.token]; ok && prev != ad.holder {
				return fmt.Sprintf("store %d admitted token %d for both %s and %s (log %v)", r, ad.token, prev, ad.holder, w.admitted[r][:i+1])
			}
			owner[ad.token] = ad.holder
		}
	}
	return ""
}

// exDivergence runs the final repair exchange (every store pushes every
// versioned record to every other, twice — what RepairReplication achieves
// with the whole ring reachable) and reports the first key the stores then
// disagree on, or "".
func exDivergence(t *testing.T, w *exWorld) string {
	t.Helper()
	for round := 0; round < 2; round++ {
		for src := range w.stores {
			for dst := range w.stores {
				if src == dst {
					continue
				}
				for _, rec := range w.stores[src].VersionedRecords(nil) {
					if _, err := w.stores[dst].PutVersioned(rec); err != nil {
						t.Fatalf("repair %d->%d %v: %v", src, dst, rec, err)
					}
				}
			}
		}
	}
	keys := make(map[string]struct{})
	for r := range w.stores {
		for _, rec := range w.stores[r].VersionedRecords(nil) {
			keys[rec.Key] = struct{}{}
		}
	}
	for key := range keys {
		var states []string
		for r := range w.stores {
			ver, origin, deleted, value, ok := w.stores[r].GetVersioned(exSite, key)
			states = append(states, fmt.Sprintf("r%d=(%d,%s,%v,%q,%v)", r, ver, origin, deleted, value, ok))
		}
		for _, s := range states[1:] {
			if s[3:] != states[0][3:] {
				return fmt.Sprintf("%q: %s", key, strings.Join(states, " "))
			}
		}
	}
	return ""
}

// exFailure runs a table end to end and reports the first property failure.
func exFailure(t *testing.T, ops []exOp) string {
	t.Helper()
	w := applyExOps(t, ops)
	if v := exViolation(w); v != "" {
		return "exclusion: " + v
	}
	if d := exDivergence(t, w); d != "" {
		return "divergence: " + d
	}
	return ""
}

// genExOps builds a random interleaving over exNodes nodes: a healthy mix
// of acquires (racing, and partitioned into split brain by dropped
// deliveries), fenced writes, renews, releases, crashes, restarts, and
// clock advances that outlive the short TTLs.
func genExOps(rnd *rand.Rand, n int) []exOp {
	ops := make([]exOp, 0, n)
	for i := 0; i < n; i++ {
		var op exOp
		op.Node = rnd.Intn(exNodes)
		for r := 0; r < exNodes; r++ {
			if rnd.Float64() < 0.25 {
				op.Delivery[r] = -1 // partitioned away from store r
			} else {
				op.Delivery[r] = rnd.Intn(1 << 20)
			}
		}
		switch k := rnd.Float64(); {
		case k < 0.28:
			op.Kind = 'A'
			op.TTL = int64(50 + rnd.Intn(150))
		case k < 0.60:
			op.Kind = 'W'
		case k < 0.70:
			op.Kind = 'N'
			op.TTL = int64(50 + rnd.Intn(150))
		case k < 0.78:
			op.Kind = 'D'
		case k < 0.85:
			op.Kind = 'C'
		case k < 0.90:
			op.Kind = 'R'
		default:
			op.Kind = 'T'
			op.Dt = int64(10 + rnd.Intn(120))
		}
		ops = append(ops, op)
	}
	return ops
}

// shrinkExOps greedily removes ops while the failure reproduces.
func shrinkExOps(t *testing.T, ops []exOp) []exOp {
	t.Helper()
	cur := append([]exOp(nil), ops...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]exOp(nil), cur[:i]...), cur[i+1:]...)
			if exFailure(t, cand) != "" {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

// formatExOps renders a table as a Go literal for the replay test.
func formatExOps(ops []exOp) string {
	var sb strings.Builder
	sb.WriteString("[]exOp{\n")
	for _, op := range ops {
		fmt.Fprintf(&sb, "\t{Kind: '%c', Node: %d, TTL: %d, Dt: %d, Delivery: [%d]int{%d, %d, %d}},\n",
			op.Kind, op.Node, op.TTL, op.Dt, exNodes, op.Delivery[0], op.Delivery[1], op.Delivery[2])
	}
	sb.WriteString("}")
	return sb.String()
}

// TestLeaseExclusionProperty generates seeded random interleavings of
// lease operations across three nodes and asserts the fenced-write
// exclusion property plus post-repair convergence; a failure is shrunk to
// a minimal table and printed as a replayable literal for
// TestLeaseExclusionReplay.
func TestLeaseExclusionProperty(t *testing.T) {
	base := int64(11000) + exSeedOffset()
	for iter := int64(0); iter < 64; iter++ {
		seed := base + iter
		rnd := rand.New(rand.NewSource(seed))
		ops := genExOps(rnd, 8+rnd.Intn(60))
		if f := exFailure(t, ops); f != "" {
			minimal := shrinkExOps(t, ops)
			t.Fatalf("seed %d failed: %s\nminimal failing table (replay via TestLeaseExclusionReplay):\n%s",
				seed, f, formatExOps(minimal))
		}
	}
}

// TestLeaseExclusionReplay replays pinned tables through the same harness:
// the regression slot for any table the shrinker ever reports, pre-seeded
// with the adversarial interleavings the fencing rules must get right.
func TestLeaseExclusionReplay(t *testing.T) {
	tables := map[string][]exOp{
		// Split brain double-grants the SAME token: node 0's grant reaches
		// only store 0, so node 1's acting owner sees no lease and also
		// grants token 1. Both holderships then write everywhere; at every
		// single store the (token, holder) floor lets exactly one of them
		// claim token 1 — the other is fenced.
		"split-brain-same-token": {
			{Kind: 'A', Node: 0, TTL: 100, Delivery: [3]int{0, -1, -1}},
			{Kind: 'A', Node: 1, TTL: 100, Delivery: [3]int{-1, 0, -1}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 1, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
		},
		// A deposed holder's buffered write arrives after the heir's first
		// fenced write: node 0's TTL lapses, node 1 takes over by expiry
		// with token 2 and writes, then node 0's late token-1 write lands —
		// it must be rejected at every store that admitted token 2.
		"deposed-late-write": {
			{Kind: 'A', Node: 0, TTL: 50, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
			{Kind: 'T', Dt: 80},
			{Kind: 'A', Node: 1, TTL: 100, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 1, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
		},
		// Crash, adaptive recovery, then the crashed node restarts and
		// re-acquires after the heir's own lease expires: three holderships
		// with strictly increasing tokens, none interleaving.
		"crash-recover-expiry": {
			{Kind: 'A', Node: 0, TTL: 100, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
			{Kind: 'C', Node: 0},
			{Kind: 'A', Node: 1, TTL: 100, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 1, Delivery: [3]int{0, 0, 0}},
			{Kind: 'R', Node: 0},
			{Kind: 'T', Dt: 150},
			{Kind: 'A', Node: 0, TTL: 100, Delivery: [3]int{0, 0, 0}},
			{Kind: 'W', Node: 0, Delivery: [3]int{0, 0, 0}},
		},
		// Release/renew race under the total LWW order: node 0 releases but
		// the release only reaches store 0; node 1 acquires off store 1's
		// stale held record view only after expiry. Repair must converge the
		// lease record everywhere despite the racing versions.
		"release-partitioned": {
			{Kind: 'A', Node: 0, TTL: 60, Delivery: [3]int{0, 0, 0}},
			{Kind: 'N', Node: 0, TTL: 60, Delivery: [3]int{0, -1, -1}},
			{Kind: 'D', Node: 0, Delivery: [3]int{0, -1, -1}},
			{Kind: 'A', Node: 1, TTL: 100, Delivery: [3]int{-1, 0, 0}},
			{Kind: 'W', Node: 1, Delivery: [3]int{0, 0, 0}},
		},
	}
	for name, ops := range tables {
		name, ops := name, ops
		t.Run(name, func(t *testing.T) {
			if f := exFailure(t, ops); f != "" {
				t.Fatalf("pinned table failed: %s", f)
			}
		})
	}

	// The split-brain table's exact arbitration: both holderships hold
	// token 1, and at every store exactly one of them is admitted — the
	// first to write there — while the other is fenced despite carrying an
	// equal token.
	w := applyExOps(t, tables["split-brain-same-token"])
	for r := range w.admitted {
		if len(w.admitted[r]) == 0 {
			t.Fatalf("store %d admitted no fenced writes", r)
		}
		first := w.admitted[r][0]
		if first.token != 1 {
			t.Fatalf("store %d first admission token = %d, want 1", r, first.token)
		}
		for _, ad := range w.admitted[r][1:] {
			if ad.holder != first.holder {
				t.Fatalf("store %d admitted both %s and %s for token 1", r, first.holder, ad.holder)
			}
		}
	}

	// The deposed-late-write table: the heir's token 2 is the floor at
	// every store, and node 0's late token-1 write was admitted nowhere
	// after it.
	w = applyExOps(t, tables["deposed-late-write"])
	for r := range w.admitted {
		log := w.admitted[r]
		if len(log) == 0 || log[len(log)-1].token != 2 {
			t.Fatalf("store %d admission log %v, want it to end at the heir's token 2", r, log)
		}
		token, holder := w.stores[r].FenceToken(exSite, lease.Key(exLease))
		if token != 2 {
			t.Fatalf("store %d floor = (%d, %s), want the heir's token 2", r, token, holder)
		}
	}
}
