// Package integrity implements the content-integrity mechanisms described in
// Section 6 of the paper.
//
// For original content, integrity and freshness are provided by two response
// headers: X-Content-SHA256 carries a hash of the body (which origin servers
// can precompute), and X-Signature carries a signature over the content hash
// and the cache-control headers. Absolute expiration times (Expires) are
// required instead of relative max-age, because untrusted nodes cannot be
// trusted to decrement relative times.
//
// For processed or generated content, the package provides the probabilistic
// verification registry: clients forward a fraction of received content to
// other proxies, which repeat the processing; mismatches are reported to a
// trusted registry that evicts misbehaving nodes.
package integrity

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"nakika/internal/httpmsg"
)

// Header names used by the integrity scheme.
const (
	HeaderContentSHA256 = "X-Content-Sha256"
	HeaderSignature     = "X-Signature"
	HeaderKeyID         = "X-Signature-Key"
)

// Signer signs origin content. Each content producer holds one; its public
// key is distributed to edge nodes out of band (or through the trusted
// registry).
type Signer struct {
	KeyID   string
	private ed25519.PrivateKey
	public  ed25519.PublicKey
}

// NewSigner generates a fresh keypair identified by keyID.
func NewSigner(keyID string) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("integrity: generate key: %w", err)
	}
	return &Signer{KeyID: keyID, private: priv, public: pub}, nil
}

// PublicKey returns the signer's public key for registration with verifiers.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.public }

// ContentHash returns the hex SHA-256 of body.
func ContentHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// signedPayload builds the byte string covered by the signature: the content
// hash plus the cache-control headers that govern freshness.
func signedPayload(contentHash string, header interface{ Get(string) string }) []byte {
	return []byte(contentHash + "\n" +
		"Expires:" + header.Get("Expires") + "\n" +
		"Cache-Control:" + header.Get("Cache-Control") + "\n")
}

// Sign attaches integrity headers to resp: the content hash, the signature
// over hash and cache-control headers, and the key ID. The response must
// already carry an absolute Expires header; Sign sets one expiresIn from now
// if absent.
func (s *Signer) Sign(resp *httpmsg.Response, expiresIn time.Duration) {
	if resp.Header.Get("Expires") == "" {
		resp.SetAbsoluteExpiry(time.Now().Add(expiresIn))
	}
	// The integrity scheme relies on absolute expiration; drop relative
	// max-age directives so intermediaries cannot manipulate them.
	resp.Header.Del("Cache-Control")
	hash := ContentHash(resp.Body)
	resp.Header.Set(HeaderContentSHA256, hash)
	sig := ed25519.Sign(s.private, signedPayload(hash, resp.Header))
	resp.Header.Set(HeaderSignature, hex.EncodeToString(sig))
	resp.Header.Set(HeaderKeyID, s.KeyID)
}

// VerifyError describes why verification failed.
type VerifyError struct{ Reason string }

func (e *VerifyError) Error() string { return "integrity: " + e.Reason }

// Verifier checks signed responses against registered producer keys.
type Verifier struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
	// Clock is the time source for expiry checks; nil means time.Now.
	Clock func() time.Time
}

// NewVerifier returns an empty verifier.
func NewVerifier() *Verifier {
	return &Verifier{keys: make(map[string]ed25519.PublicKey)}
}

// RegisterKey associates keyID with a producer public key.
func (v *Verifier) RegisterKey(keyID string, key ed25519.PublicKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.keys[keyID] = key
}

func (v *Verifier) now() time.Time {
	if v.Clock != nil {
		return v.Clock()
	}
	return time.Now()
}

// Verify checks resp's integrity headers: the body hash must match, the
// signature must verify under the registered key, and the absolute expiry
// must be in the future. Responses without integrity headers return
// (false, nil) — unsigned but not invalid.
func (v *Verifier) Verify(resp *httpmsg.Response) (signed bool, err error) {
	hash := resp.Header.Get(HeaderContentSHA256)
	sigHex := resp.Header.Get(HeaderSignature)
	keyID := resp.Header.Get(HeaderKeyID)
	if hash == "" && sigHex == "" {
		return false, nil
	}
	if hash == "" || sigHex == "" || keyID == "" {
		return true, &VerifyError{Reason: "incomplete integrity headers"}
	}
	if got := ContentHash(resp.Body); got != hash {
		return true, &VerifyError{Reason: "content hash mismatch"}
	}
	v.mu.RLock()
	key, ok := v.keys[keyID]
	v.mu.RUnlock()
	if !ok {
		return true, &VerifyError{Reason: "unknown signing key " + keyID}
	}
	sig, decErr := hex.DecodeString(sigHex)
	if decErr != nil {
		return true, &VerifyError{Reason: "malformed signature"}
	}
	if !ed25519.Verify(key, signedPayload(hash, resp.Header), sig) {
		return true, &VerifyError{Reason: "signature verification failed"}
	}
	expires := resp.Header.Get("Expires")
	if expires == "" {
		return true, &VerifyError{Reason: "missing absolute expiration"}
	}
	t, perr := time.Parse("Mon, 02 Jan 2006 15:04:05 GMT", expires)
	if perr != nil {
		return true, &VerifyError{Reason: "unparsable Expires header"}
	}
	if v.now().After(t) {
		return true, &VerifyError{Reason: "content expired"}
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Probabilistic verification of processed content
// ---------------------------------------------------------------------------

// Registry is the trusted membership registry for the probabilistic
// verification model: it tracks mismatch reports against nodes and evicts
// nodes whose report count crosses the threshold.
type Registry struct {
	mu        sync.Mutex
	members   map[string]bool
	reports   map[string]int
	threshold int
	evictions []string
}

// NewRegistry returns a registry that evicts a node after threshold
// mismatch reports (zero means 3).
func NewRegistry(threshold int) *Registry {
	if threshold <= 0 {
		threshold = 3
	}
	return &Registry{members: make(map[string]bool), reports: make(map[string]int), threshold: threshold}
}

// AddMember registers a node as a member of the edge network.
func (r *Registry) AddMember(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members[node] = true
}

// IsMember reports whether node is currently a member.
func (r *Registry) IsMember(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[node]
}

// ReportMismatch records that reporter observed node serving content whose
// re-processing did not match. When the report count reaches the threshold,
// the node is evicted. It returns whether the node was evicted by this
// report.
func (r *Registry) ReportMismatch(node, reporter string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[node] {
		return false
	}
	r.reports[node]++
	if r.reports[node] >= r.threshold {
		delete(r.members, node)
		r.evictions = append(r.evictions, node)
		return true
	}
	return false
}

// Evictions returns the nodes evicted so far, in order.
func (r *Registry) Evictions() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.evictions...)
}

// SpotChecker decides which responses a client forwards for re-processing
// and compares the two versions. Fraction is the probability of checking any
// given response.
type SpotChecker struct {
	Fraction float64
	Registry *Registry
	// Reprocess re-runs the processing for the request on a different,
	// randomly chosen proxy and returns the resulting body.
	Reprocess func(req *httpmsg.Request) ([]byte, error)
	// pick decides whether to check; tests may replace it for determinism.
	Pick    func() bool
	mu      sync.Mutex
	checked int64
	flagged int64
}

// Check possibly verifies resp (served by servingNode for req) by
// re-processing it elsewhere. It returns whether a mismatch was detected.
func (sc *SpotChecker) Check(servingNode string, req *httpmsg.Request, resp *httpmsg.Response) (bool, error) {
	pick := sc.Pick
	if pick == nil {
		pick = func() bool { return randFloat() < sc.Fraction }
	}
	if !pick() {
		return false, nil
	}
	sc.mu.Lock()
	sc.checked++
	sc.mu.Unlock()
	other, err := sc.Reprocess(req)
	if err != nil {
		return false, fmt.Errorf("integrity: reprocess: %w", err)
	}
	if ContentHash(other) == ContentHash(resp.Body) {
		return false, nil
	}
	sc.mu.Lock()
	sc.flagged++
	sc.mu.Unlock()
	if sc.Registry != nil {
		sc.Registry.ReportMismatch(servingNode, "client")
	}
	return true, nil
}

// Checked and Flagged report the spot checker's counters.
func (sc *SpotChecker) Checked() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.checked
}

// Flagged returns the number of mismatches detected.
func (sc *SpotChecker) Flagged() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.flagged
}

// randFloat returns a uniform value in [0,1) from crypto/rand; the check
// rate does not need to be fast.
func randFloat() float64 {
	var b [2]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0
	}
	return float64(uint16(b[0])<<8|uint16(b[1])) / 65536.0
}
