package integrity

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"nakika/internal/httpmsg"
)

func TestSignAndVerify(t *testing.T) {
	signer, err := NewSigner("med.nyu.edu-2026")
	if err != nil {
		t.Fatal(err)
	}
	resp := httpmsg.NewHTMLResponse(200, "<html>study results</html>")
	signer.Sign(resp, time.Hour)

	if resp.Header.Get(HeaderContentSHA256) == "" || resp.Header.Get(HeaderSignature) == "" {
		t.Fatal("integrity headers missing after Sign")
	}
	if resp.Header.Get("Expires") == "" {
		t.Fatal("Sign must ensure an absolute Expires header")
	}
	if resp.Header.Get("Cache-Control") != "" {
		t.Error("relative cache-control must be dropped by the integrity scheme")
	}

	v := NewVerifier()
	v.RegisterKey("med.nyu.edu-2026", signer.PublicKey())
	signed, err := v.Verify(resp)
	if !signed || err != nil {
		t.Fatalf("verify: signed=%v err=%v", signed, err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	signer, _ := NewSigner("k1")
	v := NewVerifier()
	v.RegisterKey("k1", signer.PublicKey())

	// Body tampering.
	resp := httpmsg.NewHTMLResponse(200, "original results")
	signer.Sign(resp, time.Hour)
	resp.SetBodyString("falsified results")
	if _, err := v.Verify(resp); err == nil {
		t.Error("tampered body must fail verification")
	}

	// Header (freshness) tampering: extending the expiry invalidates the
	// signature.
	resp2 := httpmsg.NewHTMLResponse(200, "content")
	signer.Sign(resp2, time.Hour)
	resp2.SetAbsoluteExpiry(time.Now().Add(100 * time.Hour))
	if _, err := v.Verify(resp2); err == nil {
		t.Error("tampered expiry must fail verification")
	}

	// Hash swapped along with the body but signature left alone.
	resp3 := httpmsg.NewHTMLResponse(200, "content")
	signer.Sign(resp3, time.Hour)
	resp3.SetBodyString("other")
	resp3.Header.Set(HeaderContentSHA256, ContentHash(resp3.Body))
	if _, err := v.Verify(resp3); err == nil {
		t.Error("recomputed hash without a valid signature must fail")
	}
}

func TestVerifyExpired(t *testing.T) {
	signer, _ := NewSigner("k1")
	v := NewVerifier()
	v.RegisterKey("k1", signer.PublicKey())
	resp := httpmsg.NewHTMLResponse(200, "content")
	signer.Sign(resp, time.Minute)
	v.Clock = func() time.Time { return time.Now().Add(2 * time.Minute) }
	_, err := v.Verify(resp)
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("expected expiry error, got %v", err)
	}
}

func TestVerifyUnknownKeyAndUnsigned(t *testing.T) {
	signer, _ := NewSigner("unregistered")
	v := NewVerifier()
	resp := httpmsg.NewHTMLResponse(200, "content")
	signer.Sign(resp, time.Hour)
	if _, err := v.Verify(resp); err == nil {
		t.Error("unknown key must fail verification")
	}
	// Unsigned responses are not an error — just unsigned.
	plain := httpmsg.NewHTMLResponse(200, "plain")
	signed, err := v.Verify(plain)
	if signed || err != nil {
		t.Errorf("unsigned: signed=%v err=%v", signed, err)
	}
	// Incomplete headers are an error.
	partial := httpmsg.NewHTMLResponse(200, "x")
	partial.Header.Set(HeaderContentSHA256, ContentHash(partial.Body))
	if _, err := v.Verify(partial); err == nil {
		t.Error("incomplete integrity headers must fail")
	}
}

func TestContentHashProperties(t *testing.T) {
	f := func(a, b []byte) bool {
		ha, hb := ContentHash(a), ContentHash(b)
		if string(a) == string(b) {
			return ha == hb
		}
		return ha != hb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySignVerifyRoundTrip(t *testing.T) {
	signer, _ := NewSigner("prop-key")
	v := NewVerifier()
	v.RegisterKey("prop-key", signer.PublicKey())
	f := func(body []byte) bool {
		resp := httpmsg.NewResponse(200)
		resp.SetBody(append([]byte(nil), body...))
		signer.Sign(resp, time.Hour)
		signed, err := v.Verify(resp)
		return signed && err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegistryEviction(t *testing.T) {
	r := NewRegistry(3)
	r.AddMember("good-node")
	r.AddMember("bad-node")
	if !r.IsMember("bad-node") {
		t.Fatal("member should be present")
	}
	if r.ReportMismatch("bad-node", "c1") {
		t.Error("first report should not evict")
	}
	r.ReportMismatch("bad-node", "c2")
	if !r.ReportMismatch("bad-node", "c3") {
		t.Error("third report should evict")
	}
	if r.IsMember("bad-node") {
		t.Error("evicted node must not be a member")
	}
	if r.IsMember("good-node") == false {
		t.Error("unreported node must remain a member")
	}
	if len(r.Evictions()) != 1 || r.Evictions()[0] != "bad-node" {
		t.Errorf("evictions = %v", r.Evictions())
	}
	// Reports against non-members are ignored.
	if r.ReportMismatch("unknown-node", "c1") {
		t.Error("non-member cannot be evicted")
	}
}

func TestSpotChecker(t *testing.T) {
	reg := NewRegistry(2)
	reg.AddMember("cheater")
	// The honest re-processing always yields "honest output"; the serving
	// node returned something else.
	sc := &SpotChecker{
		Fraction: 1.0,
		Registry: reg,
		Pick:     func() bool { return true },
		Reprocess: func(req *httpmsg.Request) ([]byte, error) {
			return []byte("honest output"), nil
		},
	}
	req := httpmsg.MustRequest("GET", "http://site.org/processed.html")
	good := httpmsg.NewTextResponse(200, "honest output")
	bad := httpmsg.NewTextResponse(200, "tampered output")

	mismatch, err := sc.Check("cheater", req, good)
	if err != nil || mismatch {
		t.Errorf("matching content flagged: %v %v", mismatch, err)
	}
	mismatch, err = sc.Check("cheater", req, bad)
	if err != nil || !mismatch {
		t.Errorf("tampered content not flagged: %v %v", mismatch, err)
	}
	if sc.Checked() != 2 || sc.Flagged() != 1 {
		t.Errorf("checked=%d flagged=%d", sc.Checked(), sc.Flagged())
	}
	// One more mismatch report evicts the cheater (threshold 2).
	if _, err := sc.Check("cheater", req, bad); err != nil {
		t.Fatal(err)
	}
	if reg.IsMember("cheater") {
		t.Error("cheater should be evicted after repeated mismatches")
	}
	// A checker that never picks does nothing.
	lazy := &SpotChecker{Fraction: 0, Pick: func() bool { return false }}
	if m, err := lazy.Check("x", req, bad); m || err != nil {
		t.Error("never-picking checker should not flag")
	}
}
