package deploy_test

import (
	"reflect"
	"testing"

	"nakika/internal/deploy"
)

// FuzzDeployBundleDecode throws arbitrary bytes at both deployment-plane
// decoders: they must never panic, never allocate unboundedly, and any
// value they accept must re-encode to something that decodes to the same
// State (the record travels node-to-node, so accept implies round-trip).
func FuzzDeployBundleDecode(f *testing.F) {
	f.Add(deploy.Encode(deploy.State{Active: 2, Bundles: []deploy.Bundle{{Gen: 1, Script: "// a"}, {Gen: 2, Script: "// b", Note: "n"}}}))
	f.Add(deploy.Encode(deploy.State{}))
	f.Add(deploy.EncodeSites([]string{"a.org", "b.net"}))
	f.Add("")
	f.Add("\x00")
	f.Add("\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")
	f.Fuzz(func(t *testing.T, s string) {
		if st, err := deploy.Decode(s); err == nil {
			again, err := deploy.Decode(deploy.Encode(st))
			if err != nil {
				t.Fatalf("accepted state does not re-decode: %v", err)
			}
			if !reflect.DeepEqual(st, again) {
				t.Fatalf("re-encode changed state:\n got %+v\nwant %+v", again, st)
			}
		}
		if sites, err := deploy.DecodeSites(s); err == nil {
			if _, err := deploy.DecodeSites(deploy.EncodeSites(sites)); err != nil {
				t.Fatalf("accepted index does not re-decode: %v", err)
			}
		}
	})
}
