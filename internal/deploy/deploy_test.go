package deploy_test

import (
	"fmt"
	"reflect"
	"testing"

	"nakika/internal/deploy"
	"nakika/internal/state"
)

func TestStateKeyIsInternal(t *testing.T) {
	if !state.IsInternalKey(deploy.StateKey) {
		t.Fatalf("deploy.StateKey %q must live in the internal key namespace", deploy.StateKey)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := deploy.State{
		Active: 3,
		Bundles: []deploy.Bundle{
			{Gen: 2, Script: "onRequest = function() {};", Note: "v2"},
			{Gen: 3, Script: "onResponse = function() {};", Note: ""},
		},
	}
	got, err := deploy.Decode(deploy.Encode(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "x", "\x01garbage", "\x00", "\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"} {
		if _, err := deploy.Decode(s); err == nil {
			t.Fatalf("decode of %q unexpectedly succeeded", s)
		}
	}
	// Trailing bytes after a well-formed record are malformed too.
	if _, err := deploy.Decode(deploy.Encode(deploy.State{Active: 1}) + "x"); err == nil {
		t.Fatal("decode with trailing bytes unexpectedly succeeded")
	}
}

func TestSitesRoundTrip(t *testing.T) {
	sites := []string{"b.org", "a.org", "c.net"}
	got, err := deploy.DecodeSites(deploy.EncodeSites(sites))
	if err != nil {
		t.Fatalf("decode sites: %v", err)
	}
	want := []string{"a.org", "b.org", "c.net"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sites round trip: got %v want %v", got, want)
	}
	if _, err := deploy.DecodeSites("\x02nope"); err == nil {
		t.Fatal("garbage index decoded")
	}
}

func TestRetentionTrimsOldestButKeepsActive(t *testing.T) {
	var st deploy.State
	for i := 0; i < deploy.Retention+4; i++ {
		gen := st.NextGen()
		st.Add(deploy.Bundle{Gen: gen, Script: fmt.Sprintf("// v%d", gen)})
		st.Active = gen
	}
	if len(st.Bundles) != deploy.Retention {
		t.Fatalf("retained %d bundles, want %d", len(st.Bundles), deploy.Retention)
	}
	if _, ok := st.Find(1); ok {
		t.Fatal("generation 1 should have been trimmed")
	}
	if _, ok := st.Find(st.Active); !ok {
		t.Fatal("active generation must always be retained")
	}

	// A site serving an old rollback target keeps it across later deploys.
	st2 := deploy.State{Active: 0}
	for i := 0; i < deploy.Retention+4; i++ {
		gen := st2.NextGen()
		st2.Add(deploy.Bundle{Gen: gen, Script: "//"})
		if gen == 2 {
			st2.Active = 2 // pinned: a rollback target
		}
	}
	if _, ok := st2.Find(2); !ok {
		t.Fatal("pinned active generation 2 was trimmed")
	}
}

func TestNextGenNeverRegresses(t *testing.T) {
	st := deploy.State{Active: 5, Bundles: []deploy.Bundle{{Gen: 5}, {Gen: 9}}}
	if got := st.NextGen(); got != 10 {
		t.Fatalf("NextGen = %d, want 10", got)
	}
	empty := deploy.State{}
	if got := empty.NextGen(); got != 1 {
		t.Fatalf("NextGen on empty = %d, want 1", got)
	}
}
