// Package deploy defines the replicated record format of the live script
// deployment plane: a per-site State holding the retained script versions
// and the generation currently active, stored as one versioned hard-state
// record under the internal key namespace. Keeping the whole deployment
// history of a site in a single record makes concurrent deploys an
// ordinary last-writer-wins race — the replication layer converges every
// node onto one State, and applying a State is a pure function of its
// content, so convergent records mean convergent pipelines.
package deploy

import (
	"fmt"
	"sort"

	"nakika/internal/wire"
)

const (
	// StateKey is the hard-state key a site's deployment record lives
	// under. It is in the reserved internal namespace ("\x00nk:", see
	// state.IsInternalKey): the record replicates, repairs, and hands off
	// like ordinary site data, but site scripts can neither read nor
	// overwrite their own deployment history.
	StateKey = "\x00nk:deploy"

	// IndexSite is the reserved site name whose StateKey record holds the
	// list of sites with deployments — the catalogue a node syncs from.
	// The ':' guarantees it can never collide with a real site (sites are
	// hostnames, which cannot contain ':').
	IndexSite = "nk:deploys"

	// Retention bounds how many script versions a site's record keeps.
	// Rolling back reaches only retained generations; older ones are
	// trimmed on each deploy and rejected on rollback.
	Retention = 8
)

// Bundle is one retained script version for a site.
type Bundle struct {
	// Gen is the bundle's generation: assigned at publish time as one past
	// the highest generation the record had seen.
	Gen uint64
	// Script is the full service-script source.
	Script string
	// Note is the operator's free-form deploy annotation.
	Note string
}

// State is a site's complete deployment record: every retained bundle plus
// which generation the site's pipeline should serve. Active == 0 means no
// deployment (the site falls back to its origin-served nakika.js).
type State struct {
	Active  uint64
	Bundles []Bundle
}

// Find returns the retained bundle with the given generation.
func (st *State) Find(gen uint64) (Bundle, bool) {
	for _, b := range st.Bundles {
		if b.Gen == gen {
			return b, true
		}
	}
	return Bundle{}, false
}

// NextGen returns the generation the next published bundle gets: one past
// the highest ever retained (generations never regress, even after old
// bundles are trimmed, because the active generation is always retained).
func (st *State) NextGen() uint64 {
	next := st.Active + 1
	for _, b := range st.Bundles {
		if b.Gen >= next {
			next = b.Gen + 1
		}
	}
	if next == 0 {
		next = 1
	}
	return next
}

// Add retains b (keeping Bundles sorted by generation) and trims the record
// to the Retention newest generations. The active generation is never
// trimmed — a site that rolled back and then deployed several times keeps
// the version it is serving.
func (st *State) Add(b Bundle) {
	st.Bundles = append(st.Bundles, b)
	sort.Slice(st.Bundles, func(i, j int) bool { return st.Bundles[i].Gen < st.Bundles[j].Gen })
	for len(st.Bundles) > Retention {
		if st.Bundles[0].Gen == st.Active {
			// Trim the next-oldest instead of the serving version.
			st.Bundles = append(st.Bundles[:1], st.Bundles[2:]...)
			continue
		}
		st.Bundles = st.Bundles[1:]
	}
}

// Encode serializes st into the binary record value. Deployment records are
// new in this release, so — like the lease codec — there is no gob grace
// path: Decode requires the magic byte.
func Encode(st State) string {
	buf := make([]byte, 0, 64)
	buf = append(buf, wire.Magic)
	buf = wire.AppendUvarint(buf, st.Active)
	buf = wire.AppendUvarint(buf, uint64(len(st.Bundles)))
	for _, b := range st.Bundles {
		buf = wire.AppendUvarint(buf, b.Gen)
		buf = wire.AppendString(buf, b.Script)
		buf = wire.AppendString(buf, b.Note)
	}
	return string(buf)
}

// Decode parses a record value produced by Encode. It never panics on
// malformed input (arbitrary bytes can arrive over the wire or out of a
// corrupted store); errors mean the value is not a deployment record.
func Decode(s string) (State, error) {
	r := wire.Reader{Buf: []byte(s)}
	magic, err := r.Byte()
	if err != nil || magic != wire.Magic {
		return State{}, wire.ErrMalformed
	}
	var st State
	if st.Active, err = r.Uvarint(); err != nil {
		return State{}, err
	}
	n, err := r.Uvarint()
	if err != nil {
		return State{}, err
	}
	// Each bundle costs at least 3 bytes encoded, so a count the payload
	// cannot hold is malformed — and never drives a huge allocation.
	if n > uint64(r.Len()) {
		return State{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		var b Bundle
		if b.Gen, err = r.Uvarint(); err != nil {
			return State{}, err
		}
		if b.Script, err = r.String(); err != nil {
			return State{}, err
		}
		if b.Note, err = r.String(); err != nil {
			return State{}, err
		}
		st.Bundles = append(st.Bundles, b)
	}
	if r.Len() != 0 {
		return State{}, wire.ErrMalformed
	}
	return st, nil
}

// EncodeSites serializes the deployment index: the sorted site list under
// IndexSite's record.
func EncodeSites(sites []string) string {
	sorted := append([]string(nil), sites...)
	sort.Strings(sorted)
	buf := make([]byte, 0, 32)
	buf = append(buf, wire.Magic)
	buf = wire.AppendUvarint(buf, uint64(len(sorted)))
	for _, s := range sorted {
		buf = wire.AppendString(buf, s)
	}
	return string(buf)
}

// DecodeSites parses an index record value produced by EncodeSites.
func DecodeSites(s string) ([]string, error) {
	r := wire.Reader{Buf: []byte(s)}
	magic, err := r.Byte()
	if err != nil || magic != wire.Magic {
		return nil, wire.ErrMalformed
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, wire.ErrMalformed
	}
	var sites []string
	for i := uint64(0); i < n; i++ {
		site, err := r.String()
		if err != nil {
			return nil, err
		}
		sites = append(sites, site)
	}
	if r.Len() != 0 {
		return nil, wire.ErrMalformed
	}
	return sites, nil
}

// StageURL names the pipeline stage a deployed bundle compiles into; it
// appears in stage traces so an operator can tell a deployed script from
// the origin-fetched nakika.js it replaced.
func StageURL(site string, gen uint64) string {
	return fmt.Sprintf("deploy://%s/nakika.js#gen-%d", site, gen)
}

// Status describes one site's deployment as an admin surface sees it: the
// record's intent (Active) next to what this node's pipeline actually
// serves (Applied), which differ only while a deploy is propagating.
type Status struct {
	Site     string     `json:"site"`
	Active   uint64     `json:"active_gen"`
	Applied  uint64     `json:"applied_gen"`
	Retained []Retained `json:"retained,omitempty"`
}

// Retained summarizes one kept script version (the script body is omitted;
// operators who need it have it in version control).
type Retained struct {
	Gen   uint64 `json:"gen"`
	Note  string `json:"note,omitempty"`
	Bytes int    `json:"bytes"`
}
