// Package wire provides the append-style binary encoding primitives shared
// by the transport framing and the subsystem RPC codecs (replication,
// offload, cooperative cache, state bus). The format is the one
// internal/transport's wire codec established: uvarint-length-prefixed byte
// strings and uvarint integers, written by appending to a caller-supplied
// buffer so encoders compose without intermediate allocations, and read by a
// bounds-checked Reader that never panics on malformed input.
//
// Payloads produced by these codecs start with the Magic byte (0x00), which
// no gob stream can begin with (gob's first byte is a nonzero message
// length): decoders sniff it to keep accepting gob-encoded payloads from
// peers one release behind (see the package users' Decode* functions).
//
// The package also owns the buffer pool the hot path encodes into: GetBuf
// returns a zero-length buffer with capacity, PutBuf recycles it. Buffers
// are plain []byte so append idioms work unchanged; callers must not retain
// a buffer after PutBuf.
package wire

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// Magic is the first byte of every binary-codec payload. A gob stream never
// starts with 0x00 (the first byte is the nonzero length of the first
// message), so one sniff byte distinguishes the two encodings during the
// one-release upgrade window.
const Magic byte = 0x00

// ErrMalformed reports a truncated or corrupt binary payload.
var ErrMalformed = errors.New("wire: malformed payload")

// AppendUvarint appends v in uvarint encoding.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v in zigzag varint encoding (for signed values like
// unix-nano timestamps).
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendString appends s as a uvarint-length-prefixed byte string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends b as a uvarint-length-prefixed byte string.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendRaw appends b verbatim with no length prefix, for fixed-width fields
// (content-hash segment ids, checksums) whose length both sides know.
func AppendRaw(buf []byte, b []byte) []byte {
	return append(buf, b...)
}

// AppendBool appends a bool as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendTime appends t as a presence flag plus unix nanoseconds. The flag
// keeps a zero time round-tripping as a zero time instead of a bogus
// wall-clock value.
func AppendTime(buf []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return binary.AppendVarint(buf, t.UnixNano())
}

// Reader is a bounds-checked cursor over one binary payload. Every method
// returns ErrMalformed instead of panicking when the payload is truncated,
// so decoders are safe on arbitrary network bytes.
type Reader struct {
	Buf []byte
	Off int
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{Buf: buf} }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.Buf) - r.Off }

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) {
	if r.Off >= len(r.Buf) {
		return 0, ErrMalformed
	}
	b := r.Buf[r.Off]
	r.Off++
	return b, nil
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// Uvarint reads one uvarint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.Buf[r.Off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.Off += n
	return v, nil
}

// Varint reads one zigzag varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.Buf[r.Off:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	r.Off += n
	return v, nil
}

// Bytes reads one length-prefixed byte string. The returned slice aliases
// the payload buffer — callers that retain it past the buffer's lifetime
// must copy (see CopyBytes).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, ErrMalformed
	}
	b := r.Buf[r.Off : r.Off+int(n)]
	r.Off += int(n)
	return b, nil
}

// Raw reads n bytes with no length prefix (the fixed-width counterpart of
// Bytes). The returned slice aliases the payload buffer.
func (r *Reader) Raw(n int) ([]byte, error) {
	if n < 0 || n > r.Len() {
		return nil, ErrMalformed
	}
	b := r.Buf[r.Off : r.Off+n]
	r.Off += n
	return b, nil
}

// CopyBytes reads one length-prefixed byte string into freshly allocated
// memory (nil for an empty string), safe to retain after the payload buffer
// is recycled.
func (r *Reader) CopyBytes() ([]byte, error) {
	b, err := r.Bytes()
	if err != nil || len(b) == 0 {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// String reads one length-prefixed byte string as a string (always a copy).
func (r *Reader) String() (string, error) {
	b, err := r.Bytes()
	return string(b), err
}

// Time reads one AppendTime-encoded timestamp.
func (r *Reader) Time() (time.Time, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return time.Time{}, err
	}
	nano, err := r.Varint()
	if err != nil {
		return time.Time{}, err
	}
	return time.Unix(0, nano), nil
}

// ---------------------------------------------------------------------------
// Pooled encode buffers
// ---------------------------------------------------------------------------

// bufPool recycles encode buffers across requests. Buffers that grew beyond
// maxPooledBuf are dropped instead of parked so one giant body cannot pin
// megabytes in the pool forever.
var bufPool = sync.Pool{
	New: func() interface{} { b := make([]byte, 0, 1024); return &b },
}

// maxPooledBuf bounds the capacity of buffers returned to the pool (1 MiB).
const maxPooledBuf = 1 << 20

// GetBuf returns a zero-length pooled buffer.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf recycles buf. The caller must not use buf afterwards.
func PutBuf(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooledBuf {
		return
	}
	bufPool.Put(&buf)
}
