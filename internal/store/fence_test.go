package store

import (
	"fmt"
	"testing"
)

func TestMemFenceAdmission(t *testing.T) {
	m := NewMem(0)

	// Token zero is never admitted, even against an empty floor.
	if err := m.FencedPut("s", "k", "v", "lock", "node-a", 0); err != ErrFencedStale {
		t.Fatalf("token 0 admitted: %v", err)
	}

	if err := m.FencedPut("s", "k", "v1", "lock", "node-a", 1); err != nil {
		t.Fatal(err)
	}
	if tok, holder := m.FenceToken("s", "lock"); tok != 1 || holder != "node-a" {
		t.Fatalf("floor = %d/%q", tok, holder)
	}

	// The holdership that owns the floor keeps writing at the same token.
	if err := m.FencedPut("s", "k", "v2", "lock", "node-a", 1); err != nil {
		t.Fatal(err)
	}
	// A different holder at the same token is a split-brain double-grant:
	// node-a claimed token 1 here first, so node-b is fenced off.
	if err := m.FencedPut("s", "k", "vx", "lock", "node-b", 1); err != ErrFencedStale {
		t.Fatalf("same-token other-holder admitted: %v", err)
	}
	if v, _ := m.Get("s", "k"); v != "v2" {
		t.Fatalf("fenced write landed: k=%q", v)
	}

	// A higher token always wins and deposes the old holdership...
	if err := m.FencedPut("s", "k", "v3", "lock", "node-b", 2); err != nil {
		t.Fatal(err)
	}
	// ...after which the deposed holder's late writes are rejected.
	if err := m.FencedPut("s", "k2", "late", "lock", "node-a", 1); err != ErrFencedStale {
		t.Fatalf("deposed write admitted: %v", err)
	}
	if _, ok := m.Get("s", "k2"); ok {
		t.Fatal("deposed write landed")
	}

	// Guards are independent: a different guard starts from an empty floor.
	if err := m.FencedPut("s", "k3", "v", "other", "node-a", 1); err != nil {
		t.Fatal(err)
	}
	// And RaiseFence advances the floor without touching any value.
	if err := m.RaiseFence("s", "lock", "node-c", 5); err != nil {
		t.Fatal(err)
	}
	if tok, holder := m.FenceToken("s", "lock"); tok != 5 || holder != "node-c" {
		t.Fatalf("raised floor = %d/%q", tok, holder)
	}
	if err := m.RaiseFence("s", "lock", "node-b", 2); err != ErrFencedStale {
		t.Fatalf("stale raise accepted: %v", err)
	}
}

func TestLogFenceQuotaFailureLeavesFloor(t *testing.T) {
	m := NewMem(8)
	if err := m.FencedPut("s", "key-too-big", "a value far over quota", "lock", "node-a", 1); err != ErrQuotaExceeded {
		t.Fatalf("err = %v", err)
	}
	// The floor must not advance for a write that never landed, or a
	// retry at the same token by the same holder would be self-fenced.
	if tok, _ := m.FenceToken("s", "lock"); tok != 0 {
		t.Fatalf("floor raised to %d by failed put", tok)
	}
}

func TestLogFenceFloorSurvivesCrash(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.FencedPut("s", "k", "v1", "lock", "node-a", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.FencedPut("s", "k", "v2", "lock", "node-b", 2); err != nil {
		t.Fatal(err)
	}
	// A floor raise without a value write (the LWW-superseded case) must
	// be just as durable.
	if err := l.RaiseFence("s", "lock", "node-c", 3); err != nil {
		t.Fatal(err)
	}
	l.Abandon() // crash

	nl, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if tok, holder := nl.FenceToken("s", "lock"); tok != 3 || holder != "node-c" {
		t.Fatalf("recovered floor = %d/%q, want 3/node-c", tok, holder)
	}
	if v, _ := nl.Get("s", "k"); v != "v2" {
		t.Fatalf("recovered value = %q", v)
	}
	// The deposed holders stay deposed after recovery.
	if err := nl.FencedPut("s", "k", "late", "lock", "node-a", 1); err != ErrFencedStale {
		t.Fatalf("deposed write admitted after recovery: %v", err)
	}
}

func TestLogFenceFloorSurvivesCompaction(t *testing.T) {
	fs := NewMemFS()
	cfg := LogConfig{CompactBytes: 256}
	l, err := OpenLog(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.FencedPut("s", "k", "v", "lock", "node-a", 7); err != nil {
		t.Fatal(err)
	}
	// Churn plain writes until the WAL holding the fenced put is rolled
	// away and only the snapshot carries the floor.
	for i := 0; i < 64; i++ {
		if err := l.Put("s", fmt.Sprintf("pad%d", i%4), fmt.Sprintf("value-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Compactions == 0 {
		t.Fatal("no compaction happened; raise the churn")
	}
	l.Abandon()

	nl, err := OpenLog(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if tok, holder := nl.FenceToken("s", "lock"); tok != 7 || holder != "node-a" {
		t.Fatalf("post-compaction floor = %d/%q, want 7/node-a", tok, holder)
	}
	if v, _ := nl.Get("s", "k"); v != "v" {
		t.Fatalf("post-compaction value = %q", v)
	}
}

// TestFencedPutTornTail tears the final fenced-put record at every byte
// boundary: recovery keeps exactly the complete prefix — value and floor
// move together, so a torn record leaves neither.
func TestFencedPutTornTail(t *testing.T) {
	records := [][]byte{
		encodeFencedPut("s", "k", "v1", "lock", "node-a", 1),
		encodeFence("s", "lock", "node-b", 2),
		encodeFencedPut("s", "k", "v3", "lock", "node-c", 3),
	}
	full := buildLogBytes(records...)
	prefixLen := len(buildLogBytes(records[:2]...))
	walFile := walName(1)

	for cut := prefixLen; cut <= len(full); cut++ {
		cfs := NewMemFS()
		w, _ := cfs.Create(walFile)
		w.Write(full[:cut])
		w.Close()
		nl, err := OpenLog(cfs, LogConfig{})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		wantTok, wantHolder, wantVal := uint64(2), "node-b", "v1"
		if cut == len(full) {
			wantTok, wantHolder, wantVal = 3, "node-c", "v3"
		}
		if tok, holder := nl.FenceToken("s", "lock"); tok != wantTok || holder != wantHolder {
			t.Fatalf("cut at %d: floor = %d/%q, want %d/%q", cut, tok, holder, wantTok, wantHolder)
		}
		if v, _ := nl.Get("s", "k"); v != wantVal {
			t.Fatalf("cut at %d: value = %q, want %q", cut, v, wantVal)
		}
		nl.Close()
	}
}

func TestDumpWALRecordsAdmissionOrder(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l.Put("s", "plain", "x")
	l.FencedPut("s", "k", "v1", "lock", "node-a", 1)
	l.FencedPut("s", "k", "v2", "lock", "node-a", 1)
	l.RaiseFence("s", "lock", "node-b", 2)
	l.Abandon()
	// A second process generation appends to a fresh WAL file; DumpWAL
	// must stitch the files in order.
	nl, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nl.FencedPut("s", "k", "v3", "lock", "node-b", 2)
	nl.Close()

	recs, err := DumpWAL(fs)
	if err != nil {
		t.Fatal(err)
	}
	var fenced []LogRecord
	for _, r := range recs {
		if r.Op == opFencedPut || r.Op == opFence {
			fenced = append(fenced, r)
		}
	}
	want := []LogRecord{
		{Op: opFencedPut, Site: "s", Key: "k", Value: "v1", Guard: "lock", Holder: "node-a", Token: 1},
		{Op: opFencedPut, Site: "s", Key: "k", Value: "v2", Guard: "lock", Holder: "node-a", Token: 1},
		{Op: opFence, Site: "s", Guard: "lock", Holder: "node-b", Token: 2},
		{Op: opFencedPut, Site: "s", Key: "k", Value: "v3", Guard: "lock", Holder: "node-b", Token: 2},
	}
	if len(fenced) != len(want) {
		t.Fatalf("dumped %d fenced records, want %d: %+v", len(fenced), len(want), fenced)
	}
	for i := range want {
		if fenced[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, fenced[i], want[i])
		}
	}
}
