package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrQuotaExceeded is returned when a site's byte quota would be exceeded
// by a put.
var ErrQuotaExceeded = errors.New("store: site storage quota exceeded")

// KV is the narrow storage interface hard state runs on: a site-partitioned
// key-value map with per-site byte quotas. Mem keeps it purely in memory
// (the seed behaviour, used by every existing test); Log adds a write-ahead
// log and snapshot segments so the map survives a crash.
type KV interface {
	Get(site, key string) (string, bool)
	Put(site, key, value string) error
	Delete(site, key string) error
	Keys(site string) []string
	Bytes(site string) int64
	// Range visits every pair; iteration stops when fn returns false.
	Range(fn func(site, key, value string) bool)
	// FenceToken returns the guard's durable fence floor: the largest
	// fencing token ever admitted here and the holder it was issued to.
	FenceToken(site, guard string) (uint64, string)
	// RaiseFence lifts the guard's floor to (token, holder) without
	// writing a value — used when a fenced write is admitted by the fence
	// but superseded in the LWW order, so the floor must still advance.
	// Returns ErrFencedStale when (token, holder) is below the floor.
	RaiseFence(site, guard, holder string, token uint64) error
	// FencedPut writes key=value and raises the guard's floor to
	// (token, holder) atomically (one WAL record in the persistent
	// engine). Returns ErrFencedStale when the pair is below the floor:
	// the write comes from a deposed holdership and must not land.
	FencedPut(site, key, value, guard, holder string, token uint64) error
	// Sync makes every acknowledged write durable (no-op in memory).
	Sync() error
	// Close flushes and releases the engine.
	Close() error
}

// table is the in-memory index shared by both engines, with quota-checked
// mutation. Callers hold their own lock.
type table struct {
	data   map[string]map[string]string
	bytes  map[string]int64
	fences map[string]map[string]fenceFloor
}

func newTable() *table {
	return &table{
		data:   make(map[string]map[string]string),
		bytes:  make(map[string]int64),
		fences: make(map[string]map[string]fenceFloor),
	}
}

func (t *table) get(site, key string) (string, bool) {
	part, ok := t.data[site]
	if !ok {
		return "", false
	}
	v, ok := part[key]
	return v, ok
}

// put applies a write. With enforce it checks the quota first and reports
// ErrQuotaExceeded; replay applies without enforcement (the write was
// already accepted before the crash).
func (t *table) put(site, key, value string, quota int64) error {
	part, ok := t.data[site]
	if !ok {
		part = make(map[string]string)
		t.data[site] = part
	}
	delta := int64(len(key) + len(value))
	if old, exists := part[key]; exists {
		delta -= int64(len(key) + len(old))
	}
	if quota > 0 && t.bytes[site]+delta > quota {
		return ErrQuotaExceeded
	}
	part[key] = value
	t.bytes[site] += delta
	return nil
}

func (t *table) del(site, key string) {
	part, ok := t.data[site]
	if !ok {
		return
	}
	if old, exists := part[key]; exists {
		t.bytes[site] -= int64(len(key) + len(old))
		delete(part, key)
	}
}

func (t *table) keys(site string) []string {
	part := t.data[site]
	out := make([]string, 0, len(part))
	for k := range part {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (t *table) rangeAll(fn func(site, key, value string) bool) {
	sites := make([]string, 0, len(t.data))
	for s := range t.data {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, site := range sites {
		for _, key := range t.keys(site) {
			if !fn(site, key, t.data[site][key]) {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Mem: the in-memory KV
// ---------------------------------------------------------------------------

// Mem is the in-memory KV engine. It is what NewStore always used: nothing
// survives the process, and Sync/Close are no-ops.
type Mem struct {
	mu    sync.Mutex
	t     *table
	quota int64
}

// NewMem returns an empty in-memory KV with the given per-site quota in
// bytes (zero or negative means unlimited).
func NewMem(quota int64) *Mem {
	return &Mem{t: newTable(), quota: quota}
}

// Get implements KV.
func (m *Mem) Get(site, key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.get(site, key)
}

// Put implements KV.
func (m *Mem) Put(site, key, value string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.put(site, key, value, m.quota)
}

// Delete implements KV.
func (m *Mem) Delete(site, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t.del(site, key)
	return nil
}

// Keys implements KV.
func (m *Mem) Keys(site string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.keys(site)
}

// Bytes implements KV.
func (m *Mem) Bytes(site string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.bytes[site]
}

// Range implements KV.
func (m *Mem) Range(fn func(site, key, value string) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t.rangeAll(fn)
}

// Sync implements KV.
func (m *Mem) Sync() error { return nil }

// Close implements KV.
func (m *Mem) Close() error { return nil }

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

// Record ops. A log record is one mutation: op byte, then uvarint-length-
// prefixed site, key, and (for puts) value; the fencing ops carry the
// guard, holder, and token after those (see fence.go).
const (
	opPut       = 'P'
	opDelete    = 'D'
	opFencedPut = 'G'
	opFence     = 'F'
)

func encodePut(site, key, value string) []byte {
	b := make([]byte, 0, 1+3*binary.MaxVarintLen32+len(site)+len(key)+len(value))
	b = append(b, opPut)
	b = appendString(b, site)
	b = appendString(b, key)
	b = appendString(b, value)
	return b
}

func encodeDelete(site, key string) []byte {
	b := make([]byte, 0, 1+2*binary.MaxVarintLen32+len(site)+len(key))
	b = append(b, opDelete)
	b = appendString(b, site)
	b = appendString(b, key)
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("store: truncated string in record")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// decodeRecord parses one record payload into the plain-op fields; see
// DecodeLogRecord (fence.go) for the full record including fencing fields.
func decodeRecord(payload []byte) (op byte, site, key, value string, err error) {
	rec, err := DecodeLogRecord(payload)
	if err != nil {
		return 0, "", "", "", err
	}
	return rec.Op, rec.Site, rec.Key, rec.Value, nil
}
