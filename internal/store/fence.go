package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrFencedStale is returned by FencedPut and RaiseFence when the write's
// (token, holder) pair is below the store's durable fence floor for that
// guard: a newer holdership has already written here, so the caller is
// deposed and its write must not land.
var ErrFencedStale = errors.New("store: write fenced off by a newer token")

// fenceFloor is the durable high-water mark for one guard at one store: the
// largest fencing token ever admitted, together with the holder it was
// issued to. Admission compares the whole pair, not just the token — under
// a split-brain double-grant two holders can carry the same token, and the
// first one to reach this store claims it; the other is fenced off, which
// keeps every per-store admission sequence free of interleavings.
type fenceFloor struct {
	token  uint64
	holder string
}

func (t *table) fence(site, guard string) fenceFloor {
	return t.fences[site][guard]
}

// fenceAdmits reports whether a write by holder under token clears the
// guard's floor: strictly above it, or exactly the holdership that set it.
// Token zero (never granted) is always fenced.
func (t *table) fenceAdmits(site, guard, holder string, token uint64) bool {
	if token == 0 {
		return false
	}
	cur := t.fences[site][guard]
	return token > cur.token || (token == cur.token && holder == cur.holder)
}

// raiseFence lifts the guard's floor to (token, holder) if that is strictly
// higher; it never lowers, so replaying records in any order converges.
func (t *table) raiseFence(site, guard, holder string, token uint64) {
	part, ok := t.fences[site]
	if !ok {
		part = make(map[string]fenceFloor)
		t.fences[site] = part
	}
	if token > part[guard].token {
		part[guard] = fenceFloor{token: token, holder: holder}
	}
}

func (t *table) rangeFences(fn func(site, guard, holder string, token uint64) bool) {
	sites := make([]string, 0, len(t.fences))
	for s := range t.fences {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, site := range sites {
		guards := make([]string, 0, len(t.fences[site]))
		for g := range t.fences[site] {
			guards = append(guards, g)
		}
		sort.Strings(guards)
		for _, guard := range guards {
			f := t.fences[site][guard]
			if !fn(site, guard, f.holder, f.token) {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Mem
// ---------------------------------------------------------------------------

// FenceToken implements KV.
func (m *Mem) FenceToken(site, guard string) (uint64, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.t.fence(site, guard)
	return f.token, f.holder
}

// RaiseFence implements KV.
func (m *Mem) RaiseFence(site, guard, holder string, token uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.t.fenceAdmits(site, guard, holder, token) {
		return ErrFencedStale
	}
	m.t.raiseFence(site, guard, holder, token)
	return nil
}

// FencedPut implements KV.
func (m *Mem) FencedPut(site, key, value, guard, holder string, token uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.t.fenceAdmits(site, guard, holder, token) {
		return ErrFencedStale
	}
	if err := m.t.put(site, key, value, m.quota); err != nil {
		return err
	}
	m.t.raiseFence(site, guard, holder, token)
	return nil
}

// ---------------------------------------------------------------------------
// Log
// ---------------------------------------------------------------------------

// FenceToken implements KV.
func (l *Log) FenceToken(site, guard string) (uint64, string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f := l.t.fence(site, guard)
	return f.token, f.holder
}

// RaiseFence implements KV: the floor raise is a WAL record of its own (op
// 'F'), so a floor advanced without a value write — a fenced write whose
// value lost the LWW race — still survives a crash.
func (l *Log) RaiseFence(site, guard, holder string, token uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.t.fenceAdmits(site, guard, holder, token) {
		l.fenceRejs++
		l.mu.Unlock()
		return ErrFencedStale
	}
	if l.t.fence(site, guard).token == token {
		// Same holdership re-asserting its own floor: nothing to persist.
		l.mu.Unlock()
		return nil
	}
	l.t.raiseFence(site, guard, holder, token)
	wal := l.wal
	seq, err := wal.Reserve(encodeFence(site, guard, holder, token))
	l.appends++
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WaitDurable(seq); err != nil {
		l.failStop(err)
		return err
	}
	l.maybeCompact()
	return nil
}

// FencedPut implements KV: one WAL record (op 'G') raises the guard's floor
// and writes the value atomically, so recovery can never observe the value
// without the floor that admitted it — and the log itself becomes an audit
// trail of which holdership wrote what, in admission order.
func (l *Log) FencedPut(site, key, value, guard, holder string, token uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.t.fenceAdmits(site, guard, holder, token) {
		l.fenceRejs++
		l.mu.Unlock()
		return ErrFencedStale
	}
	if err := l.t.put(site, key, value, l.cfg.Quota); err != nil {
		l.mu.Unlock()
		return err
	}
	l.t.raiseFence(site, guard, holder, token)
	wal := l.wal
	seq, err := wal.Reserve(encodeFencedPut(site, key, value, guard, holder, token))
	l.appends++
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WaitDurable(seq); err != nil {
		l.failStop(err)
		return err
	}
	l.maybeCompact()
	return nil
}

// ---------------------------------------------------------------------------
// Record codec for the fencing ops, and the exported WAL audit surface
// ---------------------------------------------------------------------------

func encodeFencedPut(site, key, value, guard, holder string, token uint64) []byte {
	b := make([]byte, 0, 1+6*binary.MaxVarintLen64+len(site)+len(key)+len(value)+len(guard)+len(holder))
	b = append(b, opFencedPut)
	b = appendString(b, site)
	b = appendString(b, key)
	b = appendString(b, value)
	b = appendString(b, guard)
	b = appendString(b, holder)
	return binary.AppendUvarint(b, token)
}

func encodeFence(site, guard, holder string, token uint64) []byte {
	b := make([]byte, 0, 1+4*binary.MaxVarintLen64+len(site)+len(guard)+len(holder))
	b = append(b, opFence)
	b = appendString(b, site)
	b = appendString(b, guard)
	b = appendString(b, holder)
	return binary.AppendUvarint(b, token)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("store: truncated uvarint in record")
	}
	return n, b[sz:], nil
}

// LogRecord is one decoded WAL/snapshot record. Op is one of 'P' (put),
// 'D' (delete), 'G' (fenced put: value write plus floor raise), or 'F'
// (floor raise alone); Guard/Holder/Token are set only for the fencing ops.
type LogRecord struct {
	Op    byte
	Site  string
	Key   string
	Value string

	Guard  string
	Holder string
	Token  uint64
}

// DecodeLogRecord parses one framed record payload. Malformed payloads
// (possible only through corruption that still passes the CRC, or fuzzed
// input) return an error; they never panic.
func DecodeLogRecord(payload []byte) (LogRecord, error) {
	var rec LogRecord
	if len(payload) < 1 {
		return rec, fmt.Errorf("store: empty record")
	}
	op, rest := payload[0], payload[1:]
	rec.Op = op
	var err error
	switch op {
	case opPut, opDelete, opFencedPut:
		if rec.Site, rest, err = takeString(rest); err != nil {
			return rec, err
		}
		if rec.Key, rest, err = takeString(rest); err != nil {
			return rec, err
		}
		if op != opDelete {
			if rec.Value, rest, err = takeString(rest); err != nil {
				return rec, err
			}
		}
		if op == opFencedPut {
			if rec.Guard, rest, err = takeString(rest); err != nil {
				return rec, err
			}
			if rec.Holder, rest, err = takeString(rest); err != nil {
				return rec, err
			}
			if rec.Token, rest, err = takeUvarint(rest); err != nil {
				return rec, err
			}
		}
	case opFence:
		if rec.Site, rest, err = takeString(rest); err != nil {
			return rec, err
		}
		if rec.Guard, rest, err = takeString(rest); err != nil {
			return rec, err
		}
		if rec.Holder, rest, err = takeString(rest); err != nil {
			return rec, err
		}
		if rec.Token, rest, err = takeUvarint(rest); err != nil {
			return rec, err
		}
	default:
		return rec, fmt.Errorf("store: unknown record op %q", op)
	}
	if len(rest) != 0 {
		return rec, fmt.Errorf("store: %d trailing bytes in record", len(rest))
	}
	return rec, nil
}

// DumpWAL decodes every complete record in every surviving WAL file under
// fs, in log order (files ascending by sequence, records in append order).
// Each file's scan stops cleanly at a torn tail, exactly as recovery does.
// The e2e suite uses this to audit the fenced-write admission sequence
// recovered from a killed process's data directory.
func DumpWAL(fs FS) ([]LogRecord, error) {
	names, err := fs.List("")
	if err != nil {
		return nil, fmt.Errorf("store: list log dir: %w", err)
	}
	var out []LogRecord
	// List is sorted and the names zero-pad the sequence number, so the
	// files already come back in replay order.
	for _, name := range names {
		if _, ok := parseSeq(name, "wal-", ".log"); !ok {
			continue
		}
		data, err := ReadAll(fs, name)
		if err != nil {
			return nil, fmt.Errorf("store: read %s: %w", name, err)
		}
		ReplayFrames(data, func(payload []byte) error {
			rec, err := DecodeLogRecord(payload)
			if err != nil {
				return err
			}
			out = append(out, rec)
			return nil
		})
	}
	return out, nil
}
