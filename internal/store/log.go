package store

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// LogConfig tunes the log-structured engine.
type LogConfig struct {
	// Quota is the per-site byte quota; zero or negative means unlimited.
	Quota int64
	// NoGroupCommit disables fsync batching: every record is written and
	// synced alone. The persist benchmark's baseline.
	NoGroupCommit bool
	// CompactBytes triggers the snapshot/truncate cycle once the active
	// log exceeds this many bytes; zero means 4 MiB, negative disables
	// automatic compaction.
	CompactBytes int64
}

// LogStats reports engine internals for diagnostics, tests, and the
// persist benchmark.
type LogStats struct {
	// Replayed is the number of records replayed from the log at open.
	Replayed int
	// ActiveSeq is the active WAL file's sequence number.
	ActiveSeq uint64
	// WALBytes is the size of the active WAL file.
	WALBytes int64
	// Syncs counts fsyncs issued by the active WAL (group commit batches
	// many records per sync).
	Syncs int64
	// Compactions counts completed snapshot/truncate cycles.
	Compactions int64
	// Appends counts records reserved in the WAL across the engine's
	// lifetime (puts, deletes, fence raises, fenced puts).
	Appends int64
	// FenceRejects counts writes refused because their (token, holder)
	// pair fell below a guard's durable fence floor.
	FenceRejects int64
}

// Log is the persistent KV engine: every mutation is appended to a CRC-
// framed write-ahead log before it is acknowledged, the full map lives in
// an in-memory index rebuilt by replay at open, and a snapshot/truncate
// cycle bounds the log (the active WAL rolls to a fresh file, the whole
// index is written as a snapshot segment, and older files are deleted).
//
// Recovery never appends to an existing log file: a crash can leave a torn
// tail, so each open starts a fresh WAL file and replays every older one,
// stopping cleanly at the last complete record. Replaying a record that is
// also captured by a snapshot is harmless — records are idempotent
// last-writer-wins mutations applied in log order.
type Log struct {
	fs  FS
	cfg LogConfig

	mu          sync.Mutex
	t           *table
	wal         *WAL
	walSeq      uint64
	closed      bool
	compacting  bool
	replayed    int
	compactions int64
	priorSyncs  int64 // syncs from WALs already rolled away
	appends     int64
	fenceRejs   int64
}

func walName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.seg", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// OpenLog opens (or initializes) the engine rooted at fs, rebuilding the
// in-memory index by loading the newest complete snapshot and replaying
// every surviving WAL file in order.
func OpenLog(fs FS, cfg LogConfig) (*Log, error) {
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 4 << 20
	}
	l := &Log{fs: fs, cfg: cfg, t: newTable()}

	names, err := fs.List("")
	if err != nil {
		return nil, fmt.Errorf("store: list log dir: %w", err)
	}
	var snaps, wals []uint64
	maxSeq := uint64(0)
	for _, name := range names {
		if seq, ok := parseSeq(name, "snap-", ".seg"); ok {
			snaps = append(snaps, seq)
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			wals = append(wals, seq)
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}

	// Load the newest snapshot that reads back completely; an unreadable
	// or torn snapshot is skipped (its WAL files were only deleted after a
	// later snapshot became durable, so older files still cover the data).
	for i := len(snaps) - 1; i >= 0; i-- {
		if l.loadSnapshot(snaps[i]) {
			break
		}
	}

	// Replay every WAL ascending. List is sorted and the names zero-pad
	// the sequence number, so wals is already in order.
	for _, seq := range wals {
		data, err := ReadAll(fs, walName(seq))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("store: read %s: %w", walName(seq), err)
		}
		n := l.applyFrames(data)
		l.replayed += n
	}

	// Never append to a possibly-torn file: start a fresh WAL.
	l.walSeq = maxSeq + 1
	wal, err := openWAL(fs, walName(l.walSeq), 0, !cfg.NoGroupCommit)
	if err != nil {
		return nil, err
	}
	l.wal = wal
	return l, nil
}

// loadSnapshot loads snapshot seq into the (empty) table; it reports
// whether the snapshot was complete and valid.
func (l *Log) loadSnapshot(seq uint64) bool {
	data, err := ReadAll(l.fs, snapName(seq))
	if err != nil {
		return false
	}
	t := newTable()
	valid := true
	off, _ := ReplayFrames(data, func(payload []byte) error {
		// A snapshot is puts plus fence-floor records — never deletes or
		// fenced puts, which only appear in WALs.
		rec, err := DecodeLogRecord(payload)
		if err != nil || (rec.Op != opPut && rec.Op != opFence) {
			valid = false
			return fmt.Errorf("stop")
		}
		if rec.Op == opFence {
			t.raiseFence(rec.Site, rec.Guard, rec.Holder, rec.Token)
		} else {
			t.put(rec.Site, rec.Key, rec.Value, 0)
		}
		return nil
	})
	if !valid || off != len(data) {
		return false
	}
	l.t = t
	return true
}

// applyFrames replays one WAL file's bytes into the table, stopping
// cleanly at the first torn or corrupt record; it returns how many records
// were applied.
func (l *Log) applyFrames(data []byte) int {
	n := 0
	ReplayFrames(data, func(payload []byte) error {
		rec, err := DecodeLogRecord(payload)
		if err != nil {
			return err // stops the scan; the prefix stays applied
		}
		switch rec.Op {
		case opPut:
			// Replay bypasses the quota: the record was accepted before
			// the crash and must recover exactly.
			l.t.put(rec.Site, rec.Key, rec.Value, 0)
		case opDelete:
			l.t.del(rec.Site, rec.Key)
		case opFencedPut:
			l.t.put(rec.Site, rec.Key, rec.Value, 0)
			l.t.raiseFence(rec.Site, rec.Guard, rec.Holder, rec.Token)
		case opFence:
			l.t.raiseFence(rec.Site, rec.Guard, rec.Holder, rec.Token)
		}
		n++
		return nil
	})
	return n
}

// Get implements KV.
func (l *Log) Get(site, key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.get(site, key)
}

// Put implements KV: the mutation is applied to the index and enqueued in
// the WAL under one lock (so log order matches apply order), then the
// caller waits for group commit to make it durable before it is
// acknowledged.
func (l *Log) Put(site, key, value string) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.t.put(site, key, value, l.cfg.Quota); err != nil {
		l.mu.Unlock()
		return err
	}
	wal := l.wal
	seq, err := wal.Reserve(encodePut(site, key, value))
	l.appends++
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WaitDurable(seq); err != nil {
		l.failStop(err)
		return err
	}
	l.maybeCompact()
	return nil
}

// failStop abandons the engine after a WAL write or sync failure: the
// in-memory index already holds mutations that never became durable, so
// serving reads from it would diverge from what a restart recovers. The
// engine fails whole — every subsequent operation returns ErrClosed — and
// the next open replays exactly the durable prefix.
func (l *Log) failStop(err error) {
	if err == ErrClosed {
		return // a crash/shutdown race, not a broken disk
	}
	l.Abandon()
}

// Delete implements KV.
func (l *Log) Delete(site, key string) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.t.del(site, key)
	wal := l.wal
	seq, err := wal.Reserve(encodeDelete(site, key))
	l.appends++
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WaitDurable(seq); err != nil {
		l.failStop(err)
		return err
	}
	l.maybeCompact()
	return nil
}

// Keys implements KV.
func (l *Log) Keys(site string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.keys(site)
}

// Bytes implements KV.
func (l *Log) Bytes(site string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.bytes[site]
}

// Range implements KV.
func (l *Log) Range(fn func(site, key, value string) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t.rangeAll(fn)
}

// Sync implements KV: it flushes every pending WAL record durably.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	wal := l.wal
	l.mu.Unlock()
	return wal.Sync()
}

// Close implements KV: pending records are flushed and the engine refuses
// further writes.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	wal := l.wal
	l.mu.Unlock()
	return wal.Close()
}

// Abandon drops the engine without flushing, as an abrupt process death
// would: unacknowledged records are lost, in-flight writers fail with
// ErrClosed, the in-memory index is discarded, and the files keep exactly
// the bytes already written. The cluster harness calls this on crash.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.t = newTable()
	wal := l.wal
	l.mu.Unlock()
	wal.abandon()
}

// Stats returns a snapshot of engine counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Replayed:     l.replayed,
		ActiveSeq:    l.walSeq,
		WALBytes:     l.wal.Size(),
		Syncs:        l.priorSyncs + l.wal.Syncs(),
		Compactions:  l.compactions,
		Appends:      l.appends,
		FenceRejects: l.fenceRejs,
	}
}

// maybeCompact runs the snapshot/truncate cycle when the active WAL has
// outgrown the threshold. It runs inline on the writer's goroutine — no
// background work — so simulated clusters stay deterministic.
func (l *Log) maybeCompact() {
	if l.cfg.CompactBytes < 0 {
		return
	}
	l.mu.Lock()
	if l.closed || l.compacting || l.wal.Size() < l.cfg.CompactBytes {
		l.mu.Unlock()
		return
	}
	l.compacting = true
	old := l.wal
	oldSeq := l.walSeq
	newSeq := l.walSeq + 1

	// The snapshot captures the index exactly as of the roll point: every
	// record enqueued so far has already been applied to the table.
	var snap []byte
	l.t.rangeAll(func(site, key, value string) bool {
		snap = AppendFrame(snap, encodePut(site, key, value))
		return true
	})
	l.t.rangeFences(func(site, guard, holder string, token uint64) bool {
		snap = AppendFrame(snap, encodeFence(site, guard, holder, token))
		return true
	})
	wal, err := openWAL(l.fs, walName(newSeq), 0, !l.cfg.NoGroupCommit)
	if err != nil {
		l.compacting = false
		l.mu.Unlock()
		return
	}
	l.wal = wal
	l.walSeq = newSeq
	l.mu.Unlock()

	// Flush stragglers into the old file (they are already in the
	// snapshot; replaying them again is idempotent), then persist the
	// snapshot atomically (WriteAtomic fsyncs the file and the directory
	// entry). Old files are deleted only after the snapshot is durably in
	// place — on any failure they simply survive until the next cycle,
	// and recovery replays them.
	syncs := int64(0)
	completed := false
	if err := old.Close(); err == nil || err == ErrClosed {
		syncs = old.Syncs()
		if err := WriteAtomic(l.fs, snapName(newSeq), snap); err == nil {
			completed = true
			if names, err := l.fs.List(""); err == nil {
				for _, name := range names {
					if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq <= oldSeq {
						l.fs.Remove(name)
					}
					if seq, ok := parseSeq(name, "snap-", ".seg"); ok && seq < newSeq {
						l.fs.Remove(name)
					}
				}
			}
		}
	}

	l.mu.Lock()
	l.compacting = false
	if completed {
		l.compactions++
	}
	l.priorSyncs += syncs
	l.mu.Unlock()
}
