package store

import (
	"bytes"
	"fmt"
	"testing"
)

// buildLogBytes returns the raw bytes of a log holding the given records.
func buildLogBytes(payloads ...[]byte) []byte {
	var b []byte
	for _, p := range payloads {
		b = AppendFrame(b, p)
	}
	return b
}

func collectFrames(data []byte) ([][]byte, int) {
	var out [][]byte
	off, _ := ReplayFrames(data, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	return out, off
}

// TestTornTailEveryByteBoundary truncates the log at every byte boundary
// of the final record and asserts replay stops cleanly at the last
// complete record — the acceptance criterion for crash-consistent
// recovery.
func TestTornTailEveryByteBoundary(t *testing.T) {
	records := [][]byte{
		encodePut("site-a", "key-1", "value-one"),
		encodePut("site-b", "key-2", ""),
		encodeDelete("site-a", "key-1"),
		encodePut("site-c", "key-3", "the final record that will be torn"),
	}
	full := buildLogBytes(records...)
	prefixLen := len(buildLogBytes(records[:3]...))

	for cut := prefixLen; cut <= len(full); cut++ {
		got, off := collectFrames(full[:cut])
		wantRecords := 3
		if cut == len(full) {
			wantRecords = 4
		}
		if len(got) != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantRecords)
		}
		wantOff := prefixLen
		if cut == len(full) {
			wantOff = len(full)
		}
		if off != wantOff {
			t.Fatalf("cut at %d: valid prefix ends at %d, want %d", cut, off, wantOff)
		}
		for i, p := range got {
			if !bytes.Equal(p, records[i]) {
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
	}
}

// TestTornTailCorruptByte flips every byte of the final record in turn:
// replay must stop before the corrupted record (the CRC rejects it) and
// never return corrupt payload bytes.
func TestTornTailCorruptByte(t *testing.T) {
	records := [][]byte{
		encodePut("s", "a", "1"),
		encodePut("s", "b", "2"),
	}
	full := buildLogBytes(records...)
	prefixLen := len(buildLogBytes(records[0]))
	for pos := prefixLen; pos < len(full); pos++ {
		mutated := append([]byte(nil), full...)
		mutated[pos] ^= 0xff
		got, off := collectFrames(mutated)
		// Corrupting the length field can only shrink or tear the frame;
		// corrupting CRC or payload fails the checksum. Either way the
		// valid records are exactly the prefix.
		if len(got) < 1 || !bytes.Equal(got[0], records[0]) {
			t.Fatalf("corrupt at %d: first record damaged (got %d records)", pos, len(got))
		}
		if len(got) > 1 {
			t.Fatalf("corrupt at %d: corrupt record returned", pos)
		}
		if off != prefixLen {
			t.Fatalf("corrupt at %d: prefix = %d, want %d", pos, off, prefixLen)
		}
	}
}

// TestTornTailEngineRecovery runs the byte-boundary truncation through the
// full engine: a log truncated mid-record recovers every complete record
// and accepts new writes.
func TestTornTailEngineRecovery(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Put("s", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon()
	walFile := walName(1)
	full, err := ReadAll(fs, walFile)
	if err != nil {
		t.Fatal(err)
	}
	frames, _ := collectFrames(full)
	if len(frames) != 5 {
		t.Fatalf("log holds %d records", len(frames))
	}
	lastStart := len(buildLogBytes(frames[:4]...))

	for cut := lastStart; cut < len(full); cut++ {
		cfs := NewMemFS()
		w, _ := cfs.Create(walFile)
		w.Write(full[:cut])
		w.Close()
		nl, err := OpenLog(cfs, LogConfig{})
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if got := len(nl.Keys("s")); got != 4 {
			t.Fatalf("cut at %d: recovered %d keys, want 4", cut, got)
		}
		// The engine keeps working after torn-tail recovery.
		if err := nl.Put("s", "post", "recovery"); err != nil {
			t.Fatalf("cut at %d: post-recovery put: %v", cut, err)
		}
		nl.Close()
	}
}

// FuzzReplayFrames fuzzes the replay path with real log bytes as seeds:
// it must never panic, and every record it yields must decode cleanly
// (corrupt records are stopped at, not returned).
func FuzzReplayFrames(f *testing.F) {
	real := buildLogBytes(
		encodePut("origin.example.org", "counter", "41"),
		encodePut("origin.example.org", "counter", "42"),
		encodeDelete("origin.example.org", "stale"),
		encodePut("site-b.example.org", "k", "a longer value with \x00 bytes \xff inside"),
	)
	f.Add(real)
	f.Add(real[:len(real)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		off, err := ReplayFrames(data, func(payload []byte) error {
			// Frames that replay must carry decodable records OR fail
			// decode without panicking; the engine stops replay there.
			_, _, _, _, derr := decodeRecord(payload)
			_ = derr
			return nil
		})
		if err != nil {
			t.Fatalf("fn returned no error but ReplayFrames did: %v", err)
		}
		if off < 0 || off > len(data) {
			t.Fatalf("valid prefix %d out of range", off)
		}
		// The valid prefix must itself replay identically (idempotent
		// recovery boundary).
		off2, _ := ReplayFrames(data[:off], func([]byte) error { return nil })
		if off2 != off {
			t.Fatalf("prefix not stable: %d then %d", off, off2)
		}
	})
}
