package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// reopen closes l and opens a fresh engine over the same FS.
func reopen(t *testing.T, fs FS, l *Log, cfg LogConfig) *Log {
	t.Helper()
	if l != nil {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nl, err := OpenLog(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestMemQuota(t *testing.T) {
	m := NewMem(10)
	if err := m.Put("s", "k", "12345"); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("s", "k2", "123456789"); err != ErrQuotaExceeded {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// Overwriting within budget is fine.
	if err := m.Put("s", "k", "123456789"); err != nil {
		t.Fatal(err)
	}
	if got := m.Bytes("s"); got != 10 {
		t.Fatalf("bytes = %d", got)
	}
	m.Delete("s", "k")
	if got := m.Bytes("s"); got != 0 {
		t.Fatalf("bytes after delete = %d", got)
	}
}

func TestLogPutGetRecover(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.Put("site-a", fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Put("site-b", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete("site-a", "k00"); err != nil {
		t.Fatal(err)
	}

	l = reopen(t, fs, l, LogConfig{})
	defer l.Close()
	if _, ok := l.Get("site-a", "k00"); ok {
		t.Error("deleted key survived recovery")
	}
	if v, ok := l.Get("site-a", "k49"); !ok || v != "v49" {
		t.Errorf("k49 = %q, %v", v, ok)
	}
	if v, ok := l.Get("site-b", "x"); !ok || v != "y" {
		t.Errorf("site-b x = %q, %v", v, ok)
	}
	if got := len(l.Keys("site-a")); got != 49 {
		t.Errorf("site-a keys = %d, want 49", got)
	}
	if st := l.Stats(); st.Replayed != 52 {
		t.Errorf("replayed = %d, want 52", st.Replayed)
	}
	// Byte accounting is rebuilt exactly.
	if got := l.Bytes("site-b"); got != 2 {
		t.Errorf("site-b bytes = %d, want 2", got)
	}
}

func TestLogQuota(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{Quota: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Put("s", "key", "12345"); err != nil {
		t.Fatal(err)
	}
	if err := l.Put("s", "key2", "123456"); err != ErrQuotaExceeded {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// The rejected write must not have been logged: recovery sees only the
	// accepted one.
	l = reopen(t, fs, l, LogConfig{Quota: 8})
	if got := l.Keys("s"); len(got) != 1 || got[0] != "key" {
		t.Fatalf("keys after recovery = %v", got)
	}
}

func TestLogAbandonLosesNothingAcknowledged(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Put("s", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon()
	if err := l.Put("s", "after", "crash"); err != ErrClosed {
		t.Fatalf("put after abandon = %v, want ErrClosed", err)
	}
	nl, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if got := len(nl.Keys("s")); got != 20 {
		t.Fatalf("recovered keys = %d, want 20", got)
	}
	if _, ok := nl.Get("s", "after"); ok {
		t.Fatal("unacknowledged post-crash write recovered")
	}
}

func TestLogCompaction(t *testing.T) {
	fs := NewMemFS()
	cfg := LogConfig{CompactBytes: 512}
	l, err := OpenLog(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite one key many times: the live state stays tiny while the
	// log grows, so compaction must fire and shrink the file set.
	for i := 0; i < 500; i++ {
		if err := l.Put("s", "hot", fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran")
	}
	names, _ := fs.List("")
	if len(names) > 3 {
		t.Fatalf("compaction left %d files: %v", len(names), names)
	}
	l = reopen(t, fs, l, cfg)
	defer l.Close()
	if v, ok := l.Get("s", "hot"); !ok || v != "value-0499" {
		t.Fatalf("hot = %q, %v after compaction+recovery", v, ok)
	}
	// Replay cost is bounded by the snapshot, not the full history.
	if st := l.Stats(); st.Replayed > 100 {
		t.Errorf("replayed %d records; snapshot should have truncated history", st.Replayed)
	}
}

func TestLogRecoverAcrossCompactionCrash(t *testing.T) {
	// A snapshot plus surviving older WALs must recover consistently even
	// when GC did not finish: replaying records already captured by the
	// snapshot is idempotent.
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	l.Put("s", "a", "1")
	l.Put("s", "b", "2")
	l.maybeCompactForce(t)
	l.Put("s", "a", "3")
	l.Abandon()

	nl, err := OpenLog(fs, LogConfig{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if v, _ := nl.Get("s", "a"); v != "3" {
		t.Fatalf("a = %q, want 3", v)
	}
	if v, _ := nl.Get("s", "b"); v != "2" {
		t.Fatalf("b = %q, want 2", v)
	}
}

// maybeCompactForce runs one compaction cycle regardless of size.
func (l *Log) maybeCompactForce(t *testing.T) {
	t.Helper()
	old := l.cfg.CompactBytes
	l.cfg.CompactBytes = 1
	l.maybeCompact()
	l.cfg.CompactBytes = old
	if l.Stats().Compactions == 0 {
		t.Fatal("forced compaction did not run")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	// With a sync that takes real time, concurrent writers must share
	// fsyncs: N writers, far fewer than N syncs.
	fs := &slowSyncFS{FS: NewMemFS(), delay: 2 * time.Millisecond}
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Put("s", fmt.Sprintf("k%d", i), "v"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if syncs := l.Stats().Syncs; syncs >= writers {
		t.Errorf("group commit issued %d syncs for %d writers", syncs, writers)
	}
	// Every write is durable regardless of batching.
	if got := len(l.Keys("s")); got != writers {
		t.Fatalf("keys = %d, want %d", got, writers)
	}
}

func TestNoGroupCommitSyncsPerRecord(t *testing.T) {
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Put("s", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if syncs := l.Stats().Syncs; syncs != 10 {
		t.Errorf("syncs = %d, want one per record", syncs)
	}
}

// slowSyncFS delays Sync so concurrent WaitDurable calls overlap.
type slowSyncFS struct {
	FS
	delay time.Duration
}

func (s *slowSyncFS) OpenAppend(name string) (File, error) {
	f, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f, delay: s.delay}, nil
}

type slowSyncFile struct {
	File
	delay time.Duration
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

func TestPowerFailureLosesOnlyUnsynced(t *testing.T) {
	// A power failure (unsynced bytes dropped) must still recover a
	// consistent prefix: every write acknowledged before the failure
	// survives, and replay stops cleanly at the torn tail.
	fs := NewMemFS()
	l, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Put("s", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon()
	fs.DropUnsynced()
	nl, err := OpenLog(fs, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	// Every Put returned only after its fsync, so nothing acknowledged is
	// lost even under power failure.
	if got := len(nl.Keys("s")); got != 10 {
		t.Fatalf("recovered keys = %d, want 10", got)
	}
}

func TestDirFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(Sub(fs, "state"), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put("s", "k", "real-disk"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := OpenLog(Sub(fs2, "state"), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer nl.Close()
	if v, ok := nl.Get("s", "k"); !ok || v != "real-disk" {
		t.Fatalf("recovered %q, %v from real dir", v, ok)
	}
	if names, _ := fs2.List("state/"); len(names) == 0 {
		t.Error("no files under state/")
	}
}
