package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// ErrClosed is returned by operations on a closed or abandoned engine.
var ErrClosed = errors.New("store: closed")

// maxRecord bounds a single record; a length field beyond it is treated as
// a torn/corrupt tail, not an allocation request.
const maxRecord = 16 << 20

// frameHeader is the per-record framing overhead: a 4-byte big-endian
// payload length followed by a 4-byte CRC-32C of the payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one CRC-framed record to dst and returns it.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReplayFrames scans the CRC-framed records in data, invoking fn for each
// complete, checksummed record in order. Scanning stops at the first torn
// or corrupt frame — the unsynced tail a crash can leave behind — which is
// not an error: recovery resumes from the last durable prefix. It returns
// the offset of the end of the valid prefix and the first error fn
// returned (which also stops the scan).
func ReplayFrames(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return off, nil // torn or clean end mid-header
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord || len(data)-off-frameHeader < n {
			return off, nil // torn length or torn payload
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, nil // corrupt payload
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += frameHeader + n
	}
}

// WAL is an append-only write-ahead log of CRC-framed records with group
// commit: concurrent appenders enqueue records under the owner's lock (so
// log order matches apply order), then wait for durability together — the
// first waiter becomes the flusher, writes every pending record, and pays
// one fsync for the whole batch. With batching disabled every record is
// written and synced alone, the baseline the persist benchmark compares
// against.
type WAL struct {
	fs   FS
	name string

	mu       sync.Mutex
	cond     *sync.Cond
	f        File
	pending  [][]byte // enqueued frames not yet written
	nextSeq  uint64   // seq assigned to the next enqueued record
	durable  uint64   // all records with seq <= durable are synced
	flushing bool
	batch    bool
	closed   bool
	err      error // sticky write/sync error: the log is broken
	size     int64 // bytes in the file (durable + in-flight writes)
	syncs    int64
	records  int64
}

// openWAL opens name for appending (creating it if missing). size is the
// current valid length of the file as determined by replay.
func openWAL(fs FS, name string, size int64, batch bool) (*WAL, error) {
	f, err := fs.OpenAppend(name)
	if err != nil {
		return nil, fmt.Errorf("store: open wal %s: %w", name, err)
	}
	// Make the file's directory entry durable now: records fsynced into a
	// file whose entry is lost to a power failure would be lost with it.
	if err := fs.SyncDir(name); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: sync wal dir %s: %w", name, err)
	}
	w := &WAL{fs: fs, name: name, f: f, batch: batch, size: size}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Reserve enqueues one record and returns its sequence ticket. The caller
// holds whatever lock orders its state mutations; calling Reserve under
// that same lock guarantees the log order matches the apply order. The
// record is not durable until WaitDurable(seq) returns nil.
func (w *WAL) Reserve(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	w.pending = append(w.pending, AppendFrame(nil, payload))
	w.nextSeq++
	return w.nextSeq, nil
}

// WaitDurable blocks until every record up to and including seq is written
// and synced (or the log fails). Waiters cooperate: one becomes the
// flusher for the whole pending batch while the rest sleep.
func (w *WAL) WaitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < seq {
		if w.err != nil {
			return w.err
		}
		if w.closed {
			return ErrClosed
		}
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushLocked()
	}
	return w.err
}

// flushLocked writes pending records and syncs; called with w.mu held, it
// releases the lock around the IO. In batch mode the whole pending queue
// goes out under a single sync; otherwise one record per sync.
func (w *WAL) flushLocked() {
	take := len(w.pending)
	if !w.batch && take > 1 {
		take = 1
	}
	if take == 0 {
		return
	}
	var buf []byte
	for _, frame := range w.pending[:take] {
		buf = append(buf, frame...)
	}
	w.pending = w.pending[take:]
	target := w.durable + uint64(take)
	w.flushing = true
	f := w.f
	w.mu.Unlock()

	_, err := f.Write(buf)
	if err == nil {
		err = f.Sync()
	}

	w.mu.Lock()
	w.flushing = false
	if err != nil {
		w.err = err
	} else {
		w.size += int64(len(buf))
		w.syncs++
		w.records += int64(take)
	}
	w.durable = target
	w.cond.Broadcast()
}

// Append is Reserve + WaitDurable for callers that need no external
// ordering.
func (w *WAL) Append(payload []byte) error {
	seq, err := w.Reserve(payload)
	if err != nil {
		return err
	}
	return w.WaitDurable(seq)
}

// Sync flushes every pending record durably.
func (w *WAL) Sync() error {
	w.mu.Lock()
	seq := w.nextSeq
	w.mu.Unlock()
	return w.WaitDurable(seq)
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Syncs returns how many fsyncs the log has issued; with group commit this
// is far below the record count under concurrent writers.
func (w *WAL) Syncs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// Close flushes pending records and closes the file.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil && err != ErrClosed {
		w.abandon()
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	f := w.f
	w.cond.Broadcast()
	w.mu.Unlock()
	return f.Close()
}

// abandon drops the log without flushing, as an abrupt process death
// would: pending (unacknowledged) records are lost, waiters fail with
// ErrClosed, and the file keeps exactly the bytes already written.
func (w *WAL) abandon() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.pending = nil
	w.cond.Broadcast()
}
