// Package store is the node's log-structured persistence engine: an
// append-only write-ahead log with CRC-framed records and fsync batching
// (group commit), compacted snapshot segments, and an in-memory index
// rebuilt by replay, exposed through the narrow KV interface that hard
// state runs on. A purely in-memory KV keeps every existing test running
// unchanged; persistence is opt-in by handing a node a data filesystem.
//
// The engine never trusts the tail of a log file: a crash can leave a torn
// final record, and recovery stops cleanly at the last complete,
// checksummed record (the recoverable-mutual-exclusion discipline — every
// state transition is structured so a restart recovers a consistent view).
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the narrow filesystem surface the engine runs on. Production nodes
// use DirFS over a real data directory; the cluster harness injects MemFS
// instances keyed by node name so crash/restart cycles are hermetic and
// deterministic. Names use forward slashes; implementations create parent
// directories on demand.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Open opens name for sequential reading.
	Open(name string) (io.ReadCloser, error)
	// List returns the names (full, slash-separated) of every file whose
	// name starts with prefix, sorted.
	List(prefix string) ([]string, error)
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
	// SyncDir makes the directory entries for name's directory durable
	// (the fsync-the-parent step that makes creates and renames survive a
	// power failure). A no-op where the concept does not apply.
	SyncDir(name string) error
}

// File is a writable file handle. Sync makes previously written bytes
// durable (the WAL's group commit batches many records into one Sync).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// ReadAll reads the entire named file. A missing file returns os.ErrNotExist.
func ReadAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteAtomic writes data to name via a temporary file, sync, and rename,
// so a crash mid-write never leaves a half-written name visible. Snapshot
// segments rely on this: a snapshot either exists completely or not at all.
func WriteAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, name); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.SyncDir(name)
}

// Sub returns a view of fs rooted at prefix, so independent engines (the
// hard-state log, the disk cache tier) share one data directory without
// name collisions.
func Sub(fs FS, prefix string) FS {
	prefix = strings.TrimSuffix(prefix, "/") + "/"
	return &subFS{fs: fs, prefix: prefix}
}

type subFS struct {
	fs     FS
	prefix string
}

func (s *subFS) Create(name string) (File, error)     { return s.fs.Create(s.prefix + name) }
func (s *subFS) OpenAppend(name string) (File, error) { return s.fs.OpenAppend(s.prefix + name) }
func (s *subFS) Open(name string) (io.ReadCloser, error) {
	return s.fs.Open(s.prefix + name)
}
func (s *subFS) Remove(name string) error  { return s.fs.Remove(s.prefix + name) }
func (s *subFS) SyncDir(name string) error { return s.fs.SyncDir(s.prefix + name) }
func (s *subFS) Rename(oldName, newName string) error {
	return s.fs.Rename(s.prefix+oldName, s.prefix+newName)
}
func (s *subFS) List(prefix string) ([]string, error) {
	names, err := s.fs.List(s.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, strings.TrimPrefix(n, s.prefix))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// DirFS: a real directory
// ---------------------------------------------------------------------------

// DirFS implements FS over a directory on the host filesystem.
type DirFS struct {
	root string
}

// NewDirFS returns an FS rooted at dir, creating it if necessary.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: data dir %s: %w", dir, err)
	}
	return &DirFS{root: dir}, nil
}

func (d *DirFS) path(name string) string {
	return filepath.Join(d.root, filepath.FromSlash(name))
}

func (d *DirFS) open(name string, flag int) (File, error) {
	p := d.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	return os.OpenFile(p, flag, 0o644)
}

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	return d.open(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC)
}

// OpenAppend implements FS.
func (d *DirFS) OpenAppend(name string) (File, error) {
	return d.open(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND)
}

// Open implements FS.
func (d *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(d.path(name))
}

// List implements FS.
func (d *DirFS) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(d.root, func(p string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Rename implements FS.
func (d *DirFS) Rename(oldName, newName string) error {
	p := d.path(newName)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.Rename(d.path(oldName), p)
}

// SyncDir implements FS: it fsyncs the directory containing name so the
// entry itself (a create or rename) survives a power failure.
func (d *DirFS) SyncDir(name string) error {
	dir, err := os.Open(filepath.Dir(d.path(name)))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// ---------------------------------------------------------------------------
// MemFS: hermetic in-memory filesystem with crash semantics
// ---------------------------------------------------------------------------

// MemFS implements FS in memory. It models the durability a real kernel
// provides: bytes written survive a process crash (they reached the "page
// cache"), while DropUnsynced simulates a power failure that loses
// everything not yet fsynced. The cluster harness keeps one MemFS per node
// name so crash/restart preserves the node's data directory.
type MemFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	writes int64
	syncs  int64
}

type memFile struct {
	data   []byte
	synced int // length made durable by the last Sync
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Writes returns the number of Write calls observed (bench/test telemetry).
func (m *MemFS) Writes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writes
}

// Syncs returns the number of Sync calls observed; group commit shows up
// as far fewer syncs than appended records.
func (m *MemFS) Syncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// DropUnsynced truncates every file to its last synced length, simulating
// a power failure. A process crash alone does not lose written bytes, so
// the cluster harness does not call this; torn-tail recovery tests do.
func (m *MemFS) DropUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if f.synced < len(f.data) {
			f.data = f.data[:f.synced]
		}
	}
}

type memHandle struct {
	fs   *MemFS
	file *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.file.data = append(h.file.data, p...)
	h.fs.writes++
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.file.synced = len(h.file.data)
	h.fs.syncs++
	return nil
}

func (h *memHandle) Close() error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, file: f}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, file: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("store: open %s: %w", name, os.ErrNotExist)
	}
	data := append([]byte(nil), f.data...)
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// List implements FS.
func (m *MemFS) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("store: rename %s: %w", oldName, os.ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = f
	return nil
}

// SyncDir implements FS: MemFS directory entries are always durable
// (DropUnsynced only truncates file contents).
func (m *MemFS) SyncDir(string) error { return nil }
