package nkp

import (
	"strings"
	"testing"
	"testing/quick"

	"nakika/internal/httpmsg"
	"nakika/internal/script"
	"nakika/internal/vocab"
)

func TestParse(t *testing.T) {
	segs, err := Parse(`<html><?nkp echo("hi"); ?></html>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].Code || !segs[1].Code || segs[2].Code {
		t.Fatalf("segments = %+v", segs)
	}
	if strings.TrimSpace(segs[1].Text) != `echo("hi");` {
		t.Errorf("code segment = %q", segs[1].Text)
	}
	// Plain markup has a single literal segment.
	segs, err = Parse("<html>static</html>")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Code {
		t.Errorf("segments = %+v", segs)
	}
	// Empty page.
	segs, err = Parse("")
	if err != nil || len(segs) != 0 {
		t.Errorf("empty page: %v %v", segs, err)
	}
	// Unterminated block.
	if _, err := Parse("<html><?nkp echo(1);"); err == nil {
		t.Error("unterminated block should fail")
	}
}

func TestIsPage(t *testing.T) {
	cases := []struct {
		path, ct string
		want     bool
	}{
		{"/index.nkp", "", true},
		{"/INDEX.NKP", "", true},
		{"/page.html", "text/nkp", true},
		{"/page.html", "text/nkp; charset=utf-8", true},
		{"/page.html", "text/html", false},
		{"/file.nkpx", "text/html", false},
	}
	for _, c := range cases {
		if got := IsPage(c.path, c.ct); got != c.want {
			t.Errorf("IsPage(%q, %q) = %v, want %v", c.path, c.ct, got, c.want)
		}
	}
}

func TestRenderBasic(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	out, err := Render(ctx, `<h1>Total: <?nkp var total = 0; for (var i = 1; i <= 4; i++) { total += i; } echo(total); ?></h1>`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<h1>Total: 10</h1>" {
		t.Errorf("out = %q", out)
	}
}

func TestRenderSharedStateBetweenBlocks(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	page := `<?nkp var user = "maria"; ?><p>Hello <?nkp echo(user.toUpperCase()); ?></p>`
	out, err := Render(ctx, page)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<p>Hello MARIA</p>" {
		t.Errorf("out = %q", out)
	}
}

func TestRenderCanUseVocabularies(t *testing.T) {
	// Pages can reach Request and State like any other script.
	ctx := script.NewContext(script.Limits{})
	vocab.Install(ctx, vocab.NopHost{}, "site.example.org")
	req := httpmsg.MustRequest("GET", "http://site.example.org/hello.nkp?name=student")
	vocab.BindRequest(ctx, req)
	out, err := Render(ctx, `<body><?nkp echo("Hi " + Request.param("name")); ?></body>`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<body>Hi student</body>" {
		t.Errorf("out = %q", out)
	}
}

func TestRenderScriptError(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	if _, err := Render(ctx, `<?nkp this is not valid (( ?>`); err == nil {
		t.Error("invalid code block should fail")
	}
	if _, err := Render(ctx, `<?nkp throw "boom"; ?>`); err == nil {
		t.Error("uncaught exception in a block should fail")
	}
}

func TestInstallRendererAndHandlerSource(t *testing.T) {
	// The generated handler source must parse, and NKP.render must work from
	// script code.
	if _, err := script.Parse(HandlerSource(), "nkp-handler.js"); err != nil {
		t.Fatalf("generated handler does not parse: %v", err)
	}
	ctx := script.NewContext(script.Limits{})
	InstallRenderer(ctx)
	v, err := ctx.RunSource(`NKP.render("a<?nkp echo(1+1); ?>b")`, "t.js")
	if err != nil {
		t.Fatal(err)
	}
	if script.ToString(v) != "a2b" {
		t.Errorf("render = %q", script.ToString(v))
	}
	// Errors inside render are catchable from script.
	v, err = ctx.RunSource(`
		var caught = false;
		try { NKP.render("<?nkp bad(("); } catch (e) { caught = true; }
		caught
	`, "t2.js")
	if err != nil {
		t.Fatal(err)
	}
	if !bool(v.(script.Bool)) {
		t.Error("render errors should be catchable")
	}
}

// Property: pages without any nkp tags render to themselves.
func TestPropertyPlainPagesUnchanged(t *testing.T) {
	f := func(s string) bool {
		if strings.Contains(s, "<?nkp") {
			return true // skip
		}
		ctx := script.NewContext(script.Limits{})
		out, err := Render(ctx, s)
		return err == nil && out == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the number of parsed segments is consistent with the number of
// code blocks.
func TestPropertySegmentCount(t *testing.T) {
	f := func(n uint8) bool {
		blocks := int(n % 10)
		var sb strings.Builder
		for i := 0; i < blocks; i++ {
			sb.WriteString("text")
			sb.WriteString("<?nkp echo(1); ?>")
		}
		sb.WriteString("tail")
		segs, err := Parse(sb.String())
		if err != nil {
			return false
		}
		code := 0
		for _, s := range segs {
			if s.Code {
				code++
			}
		}
		return code == blocks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
