package nkp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse exercises the Na Kika Pages splitter on arbitrary input. Two
// properties must hold: Parse never panics, and when it succeeds the
// segments reassemble byte-for-byte into the original page (the splitter
// is lossless).
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("<html>plain markup, no code</html>")
	f.Add(`<html><?nkp echo("hi"); ?></html>`)
	f.Add("<?nkp x = 1; ?><p><?nkp echo(x); ?></p>")
	f.Add("<?nkp unterminated")
	f.Add("text <?nkp a ?> mid <?nkp b ?> tail")
	f.Add("nested markers <?nkp \"?>\" ?>")
	f.Add("<?nkp<?nkp?>?>")
	// Seed with real scripts from examples/: embedded page-like content and
	// raw Go source both make useful corpora for the splitter.
	for _, src := range exampleSeeds(f) {
		f.Add(src)
		f.Add("<html><?nkp " + src + " ?></html>")
	}
	f.Fuzz(func(t *testing.T, page string) {
		segs, err := Parse(page)
		if err != nil {
			return
		}
		var sb strings.Builder
		for _, s := range segs {
			if s.Code {
				sb.WriteString("<?nkp")
				sb.WriteString(s.Text)
				sb.WriteString("?>")
			} else {
				sb.WriteString(s.Text)
			}
		}
		if sb.String() != page {
			t.Fatalf("segments do not reassemble input:\n in: %q\nout: %q", page, sb.String())
		}
		for _, s := range segs {
			if !s.Code && s.Text == "" {
				t.Fatal("empty literal segment emitted")
			}
		}
	})
}

// exampleSeeds loads the example programs' source (which embed NKScript
// site scripts) as corpus seeds.
func exampleSeeds(f *testing.F) []string {
	f.Helper()
	paths, _ := filepath.Glob("../../examples/*/main.go")
	var out []string
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		out = append(out, string(b))
	}
	return out
}
