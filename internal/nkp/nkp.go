// Package nkp implements Na Kika Pages (Section 3.1): a markup-based
// programming model in the style of PHP/JSP/ASP.NET layered on top of the
// event-based model. HTTP resources with the .nkp extension or the text/nkp
// MIME type are processed on the edge: all text between <?nkp and ?> tags is
// treated as NKScript and replaced by the output of running that code.
//
// In the paper this is a 60-line script on top of the scripting engine; here
// the translator produces an onResponse handler body (as source text) so it
// can be dropped into a stage, plus a direct Render helper used by the node.
package nkp

import (
	"fmt"
	"strings"

	"nakika/internal/script"
)

// Segment is one piece of a parsed page: either literal markup or code.
type Segment struct {
	Code bool
	Text string
}

// Parse splits a page into literal and code segments. An unterminated code
// block is an error.
func Parse(page string) ([]Segment, error) {
	var segs []Segment
	for {
		start := strings.Index(page, "<?nkp")
		if start < 0 {
			if page != "" {
				segs = append(segs, Segment{Text: page})
			}
			return segs, nil
		}
		if start > 0 {
			segs = append(segs, Segment{Text: page[:start]})
		}
		rest := page[start+len("<?nkp"):]
		end := strings.Index(rest, "?>")
		if end < 0 {
			return nil, fmt.Errorf("nkp: unterminated <?nkp block")
		}
		segs = append(segs, Segment{Code: true, Text: rest[:end]})
		page = rest[end+len("?>"):]
	}
}

// IsPage reports whether a resource should be processed as a Na Kika Page,
// based on its URL path and content type.
func IsPage(path, contentType string) bool {
	if strings.HasSuffix(strings.ToLower(path), ".nkp") {
		return true
	}
	ct := strings.ToLower(contentType)
	if i := strings.Index(ct, ";"); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == "text/nkp"
}

// Render executes a page in ctx and returns the expanded output. Code
// segments run in order within the shared context, so variables defined in
// one block are visible in later blocks (as in PHP). Inside code blocks the
// echo(value) function appends to the output; the value of the block's last
// expression statement is NOT implicitly echoed, matching the paper's "<?nkp
// ... ?> is replaced by the output of running that code".
func Render(ctx *script.Context, page string) (string, error) {
	segs, err := Parse(page)
	if err != nil {
		return "", err
	}
	var out strings.Builder
	ctx.DefineGlobal("echo", &script.Native{Name: "echo", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		for _, a := range args {
			out.WriteString(script.ToString(a))
		}
		return script.Undefined{}, nil
	}})
	for i, seg := range segs {
		if !seg.Code {
			out.WriteString(seg.Text)
			continue
		}
		if _, err := ctx.RunSource(seg.Text, fmt.Sprintf("nkp-block-%d", i)); err != nil {
			return "", fmt.Errorf("nkp: block %d: %w", i, err)
		}
	}
	return out.String(), nil
}

// HandlerSource generates the NKScript source of an onResponse event handler
// that renders Na Kika Pages, for installation as a pipeline stage. The
// generated handler reads the response body, splits on the nkp tags with
// string operations, evaluates code blocks with the host-provided evalBlock
// function, and writes the rendered output back. It mirrors the prototype's
// "simple, 60 line script" implementation of pages on top of the event
// model.
func HandlerSource() string {
	return `
// Na Kika Pages: render <?nkp ... ?> blocks in text/nkp responses.
var p = new Policy();
p.headers = { "Content-Type": ["text/nkp", "\\.nkp"] };
p.onResponse = function() {
	var body = new ByteArray(), chunk;
	while (chunk = Response.read()) { body.append(chunk); }
	var page = body.toString();
	var outText = NKP.render(page);
	Response.setHeader("Content-Type", "text/html; charset=utf-8");
	Response.write(outText);
};
p.register();
`
}

// InstallRenderer defines the NKP.render native used by the generated
// handler: it renders a page string inside the same context, so code blocks
// see the stage's vocabularies (Request, State, and so on).
func InstallRenderer(ctx *script.Context) {
	obj := script.NewObject()
	obj.ClassName = "NKP"
	obj.Set("render", &script.Native{Name: "NKP.render", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Str(""), nil
		}
		out, err := Render(c, script.ToString(args[0]))
		if err != nil {
			return nil, script.ThrowString(err.Error())
		}
		return script.Str(out), nil
	}})
	ctx.DefineGlobal("NKP", obj)
}
