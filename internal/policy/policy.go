// Package policy implements Na Kika's predicate-based event handler
// selection (Section 3.1 of the paper).
//
// Services and security policies alike are expressed as policy objects: a
// set of predicates over HTTP request fields (resource URL prefixes, client
// addresses, HTTP methods, arbitrary header regular expressions) paired with
// onRequest and onResponse event handlers and an optional list of
// dynamically scheduled next stages. Within a property, listed values form a
// disjunction; across properties, a conjunction; a null property is treated
// as truth. When several policies match, the closest valid match wins, with
// precedence given to resource URLs, then client addresses, then HTTP
// methods, and finally arbitrary headers.
//
// Two matchers are provided: Set, a straightforward linear scan used as the
// ablation baseline, and Tree, the decision-tree matcher described in
// Section 4 that trades space for dynamic predicate evaluation performance.
package policy

import (
	"fmt"
	"net"
	"net/http"
	"regexp"
	"strings"

	"nakika/internal/script"
)

// Policy associates request predicates with event handlers.
type Policy struct {
	// URLs is a list of resource URL prefixes of the form
	// "host[/path/prefix]"; the host part matches exactly or as a
	// dot-boundary suffix ("nyu.edu" matches "med.nyu.edu").
	URLs []string
	// Clients is a list of client predicates: an exact IP, a CIDR block, or
	// a dot-boundary domain suffix matched against the client's hostname.
	Clients []string
	// Methods is a list of HTTP methods.
	Methods []string
	// Headers maps header names to regular expression patterns; every listed
	// header must match at least one of its patterns.
	Headers map[string][]string
	// OnRequest and OnResponse are the paired event handlers; either may be
	// nil (treated as a no-op).
	OnRequest  script.Value
	OnResponse script.Value
	// NextStages lists script URLs to schedule directly after the current
	// stage.
	NextStages []string
	// Source records the script URL that registered this policy; used in
	// diagnostics and logs.
	Source string

	compiledHeaders map[string][]*regexp.Regexp
	compileErr      error
}

// Compile pre-compiles the header regular expressions; Match calls it lazily
// but callers that want eager validation (for example the script loader) can
// invoke it directly.
func (p *Policy) Compile() error {
	if p.compiledHeaders != nil || p.compileErr != nil {
		return p.compileErr
	}
	compiled := make(map[string][]*regexp.Regexp, len(p.Headers))
	for name, patterns := range p.Headers {
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				p.compileErr = fmt.Errorf("policy: header %q pattern %q: %w", name, pat, err)
				return p.compileErr
			}
			key := http.CanonicalHeaderKey(name)
			compiled[key] = append(compiled[key], re)
		}
	}
	p.compiledHeaders = compiled
	return nil
}

// HasHandlers reports whether the policy defines at least one event handler
// or schedules further stages; policies without any of these are inert.
func (p *Policy) HasHandlers() bool {
	return p.OnRequest != nil || p.OnResponse != nil || len(p.NextStages) > 0
}

// Input is the request information predicates are evaluated against.
type Input struct {
	// Host is the resource URL host (without port), lower case.
	Host string
	// Port is the resource URL port ("" when default).
	Port string
	// Path is the resource URL path ("/" when empty).
	Path string
	// ClientIP is the client's IP address.
	ClientIP string
	// ClientHost is the client's hostname when known (reverse lookup or
	// configuration); may be empty.
	ClientHost string
	// Method is the HTTP method.
	Method string
	// Header holds the request headers.
	Header http.Header
}

// Score is the match specificity, ordered lexicographically by the paper's
// precedence: resource URL, client address, HTTP method, arbitrary headers.
// Higher is more specific. A nil match has no score.
type Score struct {
	URL    int
	Client int
	Method int
	Header int
}

// Less reports whether s is strictly less specific than other.
func (s Score) Less(other Score) bool {
	if s.URL != other.URL {
		return s.URL < other.URL
	}
	if s.Client != other.Client {
		return s.Client < other.Client
	}
	if s.Method != other.Method {
		return s.Method < other.Method
	}
	return s.Header < other.Header
}

// Match evaluates the policy's predicates against in. It returns whether all
// non-null properties matched and, if so, the specificity score.
func (p *Policy) Match(in Input) (Score, bool) {
	var score Score

	if len(p.URLs) > 0 {
		best := -1
		for _, pattern := range p.URLs {
			if s, ok := matchURLPattern(pattern, in.Host, in.Path); ok && s > best {
				best = s
			}
		}
		if best < 0 {
			return Score{}, false
		}
		score.URL = best
	}

	if len(p.Clients) > 0 {
		best := -1
		for _, pattern := range p.Clients {
			if s, ok := matchClientPattern(pattern, in.ClientIP, in.ClientHost); ok && s > best {
				best = s
			}
		}
		if best < 0 {
			return Score{}, false
		}
		score.Client = best
	}

	if len(p.Methods) > 0 {
		matched := false
		for _, m := range p.Methods {
			if strings.EqualFold(m, in.Method) {
				matched = true
				break
			}
		}
		if !matched {
			return Score{}, false
		}
		score.Method = 1
	}

	if len(p.Headers) > 0 {
		if err := p.Compile(); err != nil {
			return Score{}, false
		}
		for name, patterns := range p.compiledHeaders {
			values := in.Header.Values(name)
			if len(values) == 0 {
				return Score{}, false
			}
			matched := false
			for _, re := range patterns {
				for _, v := range values {
					if re.MatchString(v) {
						matched = true
						break
					}
				}
				if matched {
					break
				}
			}
			if !matched {
				return Score{}, false
			}
			score.Header++
		}
	}

	return score, true
}

// matchURLPattern matches a "host[/path/prefix]" pattern against a request
// host and path. The returned score is the number of host labels plus path
// segments covered by the pattern, so deeper (more specific) patterns win.
func matchURLPattern(pattern, host, path string) (int, bool) {
	pattern = strings.TrimSpace(strings.ToLower(pattern))
	pattern = strings.TrimPrefix(pattern, "http://")
	pattern = strings.TrimPrefix(pattern, "https://")
	if pattern == "" {
		return 0, false
	}
	patHost, patPath := pattern, ""
	if i := strings.Index(pattern, "/"); i >= 0 {
		patHost, patPath = pattern[:i], pattern[i:]
	}
	// Strip a port from the pattern host if present.
	if i := strings.Index(patHost, ":"); i >= 0 {
		patHost = patHost[:i]
	}
	host = strings.ToLower(host)
	hostLabels := 0
	switch {
	case patHost == "" || patHost == "*":
		hostLabels = 0
	case host == patHost:
		hostLabels = strings.Count(patHost, ".") + 1
	case strings.HasSuffix(host, "."+patHost):
		hostLabels = strings.Count(patHost, ".") + 1
	default:
		return 0, false
	}
	pathSegments := 0
	if patPath != "" && patPath != "/" {
		if !pathPrefixMatch(path, patPath) {
			return 0, false
		}
		pathSegments = len(splitSegments(patPath))
	}
	return hostLabels + pathSegments, true
}

// pathPrefixMatch reports whether prefix matches path on a segment boundary.
func pathPrefixMatch(path, prefix string) bool {
	if path == "" {
		path = "/"
	}
	prefix = strings.TrimSuffix(prefix, "/")
	if prefix == "" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	rest := path[len(prefix):]
	return rest == "" || strings.HasPrefix(rest, "/") || strings.HasPrefix(rest, "?")
}

func splitSegments(p string) []string {
	var out []string
	for _, s := range strings.Split(p, "/") {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// matchClientPattern matches a client predicate. CIDR patterns score by
// prefix length, exact IPs score 32 (or 128 for IPv6), and domain suffixes
// score by label count. This follows the paper's support for CIDR notation
// for IP addresses and hostname suffixes for organizations.
func matchClientPattern(pattern, clientIP, clientHost string) (int, bool) {
	pattern = strings.TrimSpace(strings.ToLower(pattern))
	if pattern == "" {
		return 0, false
	}
	if strings.Contains(pattern, "/") {
		_, ipnet, err := net.ParseCIDR(pattern)
		if err != nil {
			return 0, false
		}
		ip := net.ParseIP(clientIP)
		if ip == nil || !ipnet.Contains(ip) {
			return 0, false
		}
		ones, _ := ipnet.Mask.Size()
		return ones, true
	}
	if ip := net.ParseIP(pattern); ip != nil {
		client := net.ParseIP(clientIP)
		if client == nil || !client.Equal(ip) {
			return 0, false
		}
		if ip.To4() != nil {
			return 32, true
		}
		return 128, true
	}
	// Domain suffix against the client hostname.
	host := strings.ToLower(clientHost)
	if host == "" {
		return 0, false
	}
	if host == pattern || strings.HasSuffix(host, "."+pattern) {
		return strings.Count(pattern, ".") + 1, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Linear matcher (baseline)
// ---------------------------------------------------------------------------

// Set is a linear-scan matcher over a list of policies. It is the baseline
// against which the decision tree is benchmarked.
type Set struct {
	Policies []*Policy
}

// Add appends a policy.
func (s *Set) Add(p *Policy) { s.Policies = append(s.Policies, p) }

// Len returns the number of registered policies.
func (s *Set) Len() int { return len(s.Policies) }

// Match returns the closest valid match among the registered policies, or
// nil when none matches. Ties are broken in favour of the policy registered
// last, matching the prototype's behaviour of later registrations refining
// earlier ones.
func (s *Set) Match(in Input) *Policy {
	var best *Policy
	var bestScore Score
	for _, p := range s.Policies {
		score, ok := p.Match(in)
		if !ok {
			continue
		}
		if best == nil || !score.Less(bestScore) {
			best = p
			bestScore = score
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Conversion from script policy objects
// ---------------------------------------------------------------------------

// FromScriptObject converts a script-level policy object (created by
// new Policy() and populated with url/client/method/headers/onRequest/
// onResponse/nextStages properties) into a Policy. The source is recorded
// for diagnostics.
func FromScriptObject(obj *script.Object, source string) (*Policy, error) {
	p := &Policy{Source: source}
	p.URLs = stringList(obj, "url")
	p.Clients = stringList(obj, "client")
	p.Methods = stringList(obj, "method")
	if v, ok := obj.Get("headers"); ok {
		if ho, ok := v.(*script.Object); ok {
			p.Headers = make(map[string][]string)
			for _, name := range ho.Keys() {
				hv, _ := ho.Get(name)
				switch t := hv.(type) {
				case *script.Array:
					for _, e := range t.Elems {
						p.Headers[name] = append(p.Headers[name], script.ToString(e))
					}
				default:
					if !script.IsNullish(hv) {
						p.Headers[name] = append(p.Headers[name], script.ToString(hv))
					}
				}
			}
		}
	}
	if v, ok := obj.Get("onRequest"); ok && script.Callable(v) {
		p.OnRequest = v
	}
	if v, ok := obj.Get("onResponse"); ok && script.Callable(v) {
		p.OnResponse = v
	}
	for _, s := range stringList(obj, "nextStages") {
		if s != "" {
			p.NextStages = append(p.NextStages, s)
		}
	}
	if err := p.Compile(); err != nil {
		return nil, err
	}
	return p, nil
}

// stringList extracts a property that may be a single string or an array of
// strings.
func stringList(obj *script.Object, name string) []string {
	v, ok := obj.Get(name)
	if !ok || script.IsNullish(v) {
		return nil
	}
	switch t := v.(type) {
	case *script.Array:
		out := make([]string, 0, len(t.Elems))
		for _, e := range t.Elems {
			if !script.IsNullish(e) {
				out = append(out, script.ToString(e))
			}
		}
		return out
	default:
		return []string{script.ToString(v)}
	}
}
