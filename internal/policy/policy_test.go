package policy

import (
	"fmt"
	"net/http"
	"testing"
	"testing/quick"

	"nakika/internal/script"
)

func input(host, path string) Input {
	return Input{Host: host, Path: path, Method: "GET", Header: make(http.Header)}
}

func handler() script.Value {
	return &script.Native{Name: "handler", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		return script.Undefined{}, nil
	}}
}

func TestMatchURLExactHost(t *testing.T) {
	p := &Policy{URLs: []string{"med.nyu.edu"}, OnResponse: handler()}
	if _, ok := p.Match(input("med.nyu.edu", "/index.html")); !ok {
		t.Error("exact host should match")
	}
	if _, ok := p.Match(input("law.nyu.edu", "/")); ok {
		t.Error("different host should not match")
	}
	if _, ok := p.Match(input("evilmed.nyu.edu.attacker.com", "/")); ok {
		t.Error("host with pattern as non-suffix substring should not match")
	}
}

func TestMatchURLSuffix(t *testing.T) {
	p := &Policy{URLs: []string{"nyu.edu"}}
	if _, ok := p.Match(input("med.nyu.edu", "/")); !ok {
		t.Error("subdomain should match a domain suffix pattern")
	}
	if _, ok := p.Match(input("nyu.edu", "/")); !ok {
		t.Error("exact domain should match")
	}
	if _, ok := p.Match(input("notnyu.edu", "/")); ok {
		t.Error("non-dot-boundary suffix must not match")
	}
}

func TestMatchURLPathPrefix(t *testing.T) {
	p := &Policy{URLs: []string{"bmj.bmjjournals.com/cgi/reprint"}}
	if _, ok := p.Match(input("bmj.bmjjournals.com", "/cgi/reprint/355/7611/1.pdf")); !ok {
		t.Error("path under prefix should match")
	}
	if _, ok := p.Match(input("bmj.bmjjournals.com", "/cgi/reprint")); !ok {
		t.Error("exact path should match")
	}
	if _, ok := p.Match(input("bmj.bmjjournals.com", "/cgi/reprintother")); ok {
		t.Error("non-segment-boundary prefix must not match")
	}
	if _, ok := p.Match(input("bmj.bmjjournals.com", "/cgi/search")); ok {
		t.Error("different path should not match")
	}
}

func TestMatchURLDisjunction(t *testing.T) {
	// Figure 5's policy: two digital library URL prefixes.
	p := &Policy{URLs: []string{"bmj.bmjjournals.com/cgi/reprint", "content.nejm.org/cgi/reprint"}}
	if _, ok := p.Match(input("content.nejm.org", "/cgi/reprint/1.pdf")); !ok {
		t.Error("second listed URL should match (disjunction)")
	}
	if _, ok := p.Match(input("content.nejm.org", "/cgi/content/full/1")); ok {
		t.Error("other paths on the same host should not match")
	}
}

func TestMatchURLSpecificity(t *testing.T) {
	broad := &Policy{URLs: []string{"nyu.edu"}}
	narrow := &Policy{URLs: []string{"med.nyu.edu/simm"}}
	in := input("med.nyu.edu", "/simm/module1.html")
	bs, _ := broad.Match(in)
	ns, _ := narrow.Match(in)
	if !bs.Less(ns) {
		t.Errorf("narrow pattern should be more specific: broad=%+v narrow=%+v", bs, ns)
	}
}

func TestMatchClientCIDR(t *testing.T) {
	p := &Policy{Clients: []string{"192.168.0.0/16"}}
	in := input("example.org", "/")
	in.ClientIP = "192.168.5.20"
	if _, ok := p.Match(in); !ok {
		t.Error("IP inside CIDR should match")
	}
	in.ClientIP = "10.0.0.1"
	if _, ok := p.Match(in); ok {
		t.Error("IP outside CIDR should not match")
	}
	in.ClientIP = "not-an-ip"
	if _, ok := p.Match(in); ok {
		t.Error("unparsable IP should not match")
	}
}

func TestMatchClientExactIPAndHostSuffix(t *testing.T) {
	exact := &Policy{Clients: []string{"10.1.2.3"}}
	in := input("example.org", "/")
	in.ClientIP = "10.1.2.3"
	if _, ok := exact.Match(in); !ok {
		t.Error("exact IP should match")
	}
	suffix := &Policy{Clients: []string{"nyu.edu", "pitt.edu"}}
	in.ClientHost = "dialup-12.med.nyu.edu"
	if _, ok := suffix.Match(in); !ok {
		t.Error("client hostname suffix should match")
	}
	in.ClientHost = "students.pitt.edu"
	if _, ok := suffix.Match(in); !ok {
		t.Error("second client suffix should match (disjunction)")
	}
	in.ClientHost = "example.com"
	if _, ok := suffix.Match(in); ok {
		t.Error("unrelated client host should not match")
	}
	in.ClientHost = ""
	if _, ok := suffix.Match(in); ok {
		t.Error("empty client host cannot satisfy a hostname predicate")
	}
}

func TestMatchClientSpecificity(t *testing.T) {
	wide := &Policy{Clients: []string{"10.0.0.0/8"}}
	tight := &Policy{Clients: []string{"10.1.0.0/16"}}
	in := input("example.org", "/")
	in.ClientIP = "10.1.2.3"
	ws, _ := wide.Match(in)
	ts, _ := tight.Match(in)
	if !ws.Less(ts) {
		t.Errorf("longer prefix should score higher: wide=%+v tight=%+v", ws, ts)
	}
}

func TestMatchMethod(t *testing.T) {
	p := &Policy{Methods: []string{"POST", "PUT"}}
	in := input("example.org", "/submit")
	in.Method = "POST"
	if _, ok := p.Match(in); !ok {
		t.Error("POST should match")
	}
	in.Method = "get"
	if _, ok := p.Match(in); ok {
		t.Error("GET should not match a POST/PUT policy")
	}
	in.Method = "put"
	if _, ok := p.Match(in); !ok {
		t.Error("method matching should be case-insensitive")
	}
}

func TestMatchHeaders(t *testing.T) {
	p := &Policy{Headers: map[string][]string{"User-Agent": {"(?i)nokia", "(?i)sonyericsson"}}}
	in := input("example.org", "/pic.jpg")
	in.Header.Set("User-Agent", "Mozilla/4.0 (Nokia6600)")
	if _, ok := p.Match(in); !ok {
		t.Error("User-Agent regexp should match")
	}
	in.Header.Set("User-Agent", "Mozilla/5.0 (Windows)")
	if _, ok := p.Match(in); ok {
		t.Error("non-matching User-Agent should fail")
	}
	in.Header.Del("User-Agent")
	if _, ok := p.Match(in); ok {
		t.Error("missing header should fail the predicate")
	}
}

func TestMatchConjunctionAcrossProperties(t *testing.T) {
	// Figure 3: URLs AND clients must both match.
	p := &Policy{
		URLs:    []string{"med.nyu.edu", "medschool.pitt.edu"},
		Clients: []string{"nyu.edu", "pitt.edu"},
	}
	in := input("med.nyu.edu", "/lecture1.html")
	in.ClientHost = "lab.nyu.edu"
	if _, ok := p.Match(in); !ok {
		t.Error("both properties match: policy should apply")
	}
	in.ClientHost = "somewhere-else.com"
	if _, ok := p.Match(in); ok {
		t.Error("client mismatch should fail the conjunction")
	}
	in2 := input("www.cornell.edu", "/")
	in2.ClientHost = "lab.nyu.edu"
	if _, ok := p.Match(in2); ok {
		t.Error("URL mismatch should fail the conjunction")
	}
}

func TestNullPropertiesAreTruth(t *testing.T) {
	p := &Policy{} // no predicates at all
	if _, ok := p.Match(input("anything.example", "/any/path")); !ok {
		t.Error("a policy with no predicates matches everything")
	}
}

func TestInvalidHeaderRegexp(t *testing.T) {
	p := &Policy{Headers: map[string][]string{"X-Thing": {"([unclosed"}}}
	if err := p.Compile(); err == nil {
		t.Error("expected compile error for invalid regexp")
	}
	in := input("example.org", "/")
	in.Header.Set("X-Thing", "value")
	if _, ok := p.Match(in); ok {
		t.Error("policy with invalid regexp should never match")
	}
}

func TestSetClosestMatchPrecedence(t *testing.T) {
	// URL specificity outranks client specificity (paper precedence order).
	urlSpecific := &Policy{URLs: []string{"med.nyu.edu/simm/module1"}, Source: "url-specific"}
	clientSpecific := &Policy{URLs: []string{"nyu.edu"}, Clients: []string{"10.0.0.0/8"}, Source: "client-specific"}
	s := &Set{}
	s.Add(clientSpecific)
	s.Add(urlSpecific)
	in := input("med.nyu.edu", "/simm/module1/page.html")
	in.ClientIP = "10.1.2.3"
	got := s.Match(in)
	if got != urlSpecific {
		t.Errorf("closest match = %q, want url-specific", got.Source)
	}
}

func TestSetNoMatch(t *testing.T) {
	s := &Set{}
	s.Add(&Policy{URLs: []string{"example.org"}})
	if got := s.Match(input("other.org", "/")); got != nil {
		t.Errorf("expected nil match, got %+v", got)
	}
}

func TestSetTieBreaksTowardLaterRegistration(t *testing.T) {
	a := &Policy{URLs: []string{"example.org"}, Source: "first"}
	b := &Policy{URLs: []string{"example.org"}, Source: "second"}
	s := &Set{}
	s.Add(a)
	s.Add(b)
	if got := s.Match(input("example.org", "/")); got.Source != "second" {
		t.Errorf("tie should go to the later registration, got %q", got.Source)
	}
}

func TestTreeMatchesLinear(t *testing.T) {
	policies := []*Policy{
		{URLs: []string{"med.nyu.edu"}, Source: "site"},
		{URLs: []string{"med.nyu.edu/simm"}, Source: "simm"},
		{URLs: []string{"nyu.edu"}, Source: "university"},
		{URLs: []string{"bmj.bmjjournals.com/cgi/reprint", "content.nejm.org/cgi/reprint"}, Source: "libraries"},
		{Clients: []string{"192.168.0.0/16"}, Source: "intranet"},
		{Source: "catch-all"},
		{URLs: []string{"example.org"}, Methods: []string{"POST"}, Source: "posts"},
		{URLs: []string{"example.org"}, Headers: map[string][]string{"User-Agent": {"(?i)nokia"}}, Source: "mobile"},
	}
	set := &Set{}
	for _, p := range policies {
		set.Add(p)
	}
	tree := NewTree(policies)

	inputs := []Input{
		input("med.nyu.edu", "/simm/module2.html"),
		input("med.nyu.edu", "/about.html"),
		input("law.nyu.edu", "/"),
		input("content.nejm.org", "/cgi/reprint/1.pdf"),
		input("content.nejm.org", "/cgi/other"),
		input("unrelated.com", "/x"),
		func() Input { in := input("example.org", "/form"); in.Method = "POST"; return in }(),
		func() Input {
			in := input("example.org", "/img.png")
			in.Header.Set("User-Agent", "Nokia 6600")
			return in
		}(),
		func() Input { in := input("somewhere.net", "/"); in.ClientIP = "192.168.2.2"; return in }(),
	}
	for i, in := range inputs {
		a, b := set.Match(in), tree.Match(in)
		an, bn := "<nil>", "<nil>"
		if a != nil {
			an = a.Source
		}
		if b != nil {
			bn = b.Source
		}
		if an != bn {
			t.Errorf("input %d (%s %s): linear=%q tree=%q", i, in.Host, in.Path, an, bn)
		}
	}
	if tree.Len() != len(policies) {
		t.Errorf("tree.Len() = %d", tree.Len())
	}
}

func TestTreeDeepPathSelection(t *testing.T) {
	shallow := &Policy{URLs: []string{"site.org/a"}, Source: "shallow"}
	deep := &Policy{URLs: []string{"site.org/a/b/c"}, Source: "deep"}
	tree := NewTree([]*Policy{shallow, deep})
	if got := tree.Match(input("site.org", "/a/b/c/d.html")); got.Source != "deep" {
		t.Errorf("got %q, want deep", got.Source)
	}
	if got := tree.Match(input("site.org", "/a/x")); got.Source != "shallow" {
		t.Errorf("got %q, want shallow", got.Source)
	}
	if got := tree.Match(input("site.org", "/z")); got != nil {
		t.Errorf("got %q, want nil", got.Source)
	}
}

func TestFromScriptObject(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	v, err := ctx.RunSource(`
		var p = {
			url: [ "med.nyu.edu", "medschool.pitt.edu" ],
			client: [ "nyu.edu", "pitt.edu" ],
			method: "GET",
			headers: { "User-Agent": ["(?i)nokia"] },
			nextStages: [ "http://services.example/annotate.js" ],
			onResponse: function() { return 1; }
		};
		p
	`, "policy.js")
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromScriptObject(v.(*script.Object), "http://med.nyu.edu/nakika.js")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.URLs) != 2 || p.URLs[1] != "medschool.pitt.edu" {
		t.Errorf("URLs = %v", p.URLs)
	}
	if len(p.Clients) != 2 {
		t.Errorf("Clients = %v", p.Clients)
	}
	if len(p.Methods) != 1 || p.Methods[0] != "GET" {
		t.Errorf("Methods = %v", p.Methods)
	}
	if len(p.Headers["User-Agent"]) != 1 {
		t.Errorf("Headers = %v", p.Headers)
	}
	if len(p.NextStages) != 1 {
		t.Errorf("NextStages = %v", p.NextStages)
	}
	if p.OnResponse == nil {
		t.Error("OnResponse should be set")
	}
	if p.OnRequest != nil {
		t.Error("OnRequest should be nil")
	}
	if !p.HasHandlers() {
		t.Error("HasHandlers should be true")
	}
	if p.Source != "http://med.nyu.edu/nakika.js" {
		t.Errorf("Source = %q", p.Source)
	}
}

func TestFromScriptObjectInvalidRegexp(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	v, err := ctx.RunSource(`({ headers: { "X-Bad": "([" } })`, "p.js")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromScriptObject(v.(*script.Object), "src"); err == nil {
		t.Error("expected error for invalid header regexp")
	}
}

func TestScoreOrdering(t *testing.T) {
	cases := []struct {
		a, b  Score
		aLess bool
	}{
		{Score{URL: 1}, Score{URL: 2}, true},
		{Score{URL: 2, Client: 0}, Score{URL: 1, Client: 32}, false}, // URL outranks client
		{Score{URL: 1, Client: 8}, Score{URL: 1, Client: 16}, true},
		{Score{URL: 1, Client: 8, Method: 0}, Score{URL: 1, Client: 8, Method: 1}, true},
		{Score{URL: 1, Client: 8, Method: 1, Header: 0}, Score{URL: 1, Client: 8, Method: 1, Header: 2}, true},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.aLess {
			t.Errorf("case %d: Less = %v, want %v", i, got, c.aLess)
		}
	}
}

// Property: the decision tree and the linear matcher always return a policy
// with the same source for randomly generated host/path inputs over a fixed
// policy set.
func TestPropertyTreeEquivalentToLinear(t *testing.T) {
	policies := []*Policy{
		{URLs: []string{"a.example.org"}, Source: "a"},
		{URLs: []string{"b.example.org/docs"}, Source: "b-docs"},
		{URLs: []string{"example.org"}, Source: "root"},
		{URLs: []string{"c.example.org", "d.example.org"}, Source: "cd"},
		{Source: "wildcard"},
	}
	set := &Set{}
	for _, p := range policies {
		set.Add(p)
	}
	tree := NewTree(policies)
	hosts := []string{"a.example.org", "b.example.org", "c.example.org", "x.example.org", "example.org", "other.net", "deep.a.example.org"}
	paths := []string{"/", "/docs", "/docs/page.html", "/other", "/docs/sub/dir/file", ""}

	f := func(hostIdx, pathIdx uint8) bool {
		in := input(hosts[int(hostIdx)%len(hosts)], paths[int(pathIdx)%len(paths)])
		a, b := set.Match(in), tree.Match(in)
		if a == nil || b == nil {
			return a == b
		}
		return a.Source == b.Source
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: adding unrelated policies never changes the outcome for a
// request that matched a specific policy before.
func TestPropertyMatchStableUnderUnrelatedAdditions(t *testing.T) {
	base := &Policy{URLs: []string{"stable.example.org/app"}, Source: "stable"}
	f := func(n uint8) bool {
		tree := NewTree([]*Policy{base})
		for i := 0; i < int(n%20); i++ {
			tree.Add(&Policy{URLs: []string{fmt.Sprintf("site%d.other.net", i)}, Source: fmt.Sprintf("other%d", i)})
		}
		got := tree.Match(input("stable.example.org", "/app/index.html"))
		return got != nil && got.Source == "stable"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
