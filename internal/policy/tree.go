package policy

import "strings"

// Tree is the decision-tree matcher from Section 4 of the paper. While
// loading a script and registering policy objects, the matcher builds a
// decision tree for that pipeline stage, with nodes representing choices.
// Starting from the root, nodes represent the components of the resource
// URL's server name (from the registrable suffix inward), then the path
// components. Policies whose URL property is empty are attached to the root.
// Dynamic predicate evaluation is a walk down the tree following the request
// host and path, collecting candidate policies from every node along the
// way (deeper nodes are more specific), then resolving the closest valid
// match among the candidates using the full predicate evaluation (client,
// method, headers).
//
// The tree trades space for evaluation time: a request whose host shares no
// suffix with any registered policy terminates at the root after inspecting
// a handful of map entries, regardless of how many policies are registered,
// whereas the linear Set matcher evaluates every policy. The Pred-n
// micro-benchmark (Table 2) exercises exactly this difference.
type Tree struct {
	root *treeNode
	// all retains every policy (used by Policies and for stats).
	all []*Policy
}

type treeNode struct {
	// children maps the next host label (walking the host right to left) or
	// path segment (walking left to right) to the child node.
	hostChildren map[string]*treeNode
	pathChildren map[string]*treeNode
	// policies attached at this node: their URL patterns end here.
	policies []*Policy
}

func newTreeNode() *treeNode {
	return &treeNode{
		hostChildren: make(map[string]*treeNode),
		pathChildren: make(map[string]*treeNode),
	}
}

// NewTree builds a decision tree over the given policies.
func NewTree(policies []*Policy) *Tree {
	t := &Tree{root: newTreeNode()}
	for _, p := range policies {
		t.Add(p)
	}
	return t
}

// Add inserts a policy into the tree. A policy with n URL patterns is added
// along n paths, as described in the paper ("if a property contains multiple
// values, nodes are added along multiple paths").
func (t *Tree) Add(p *Policy) {
	t.all = append(t.all, p)
	if len(p.URLs) == 0 {
		t.root.policies = append(t.root.policies, p)
		return
	}
	for _, pattern := range p.URLs {
		host, path := splitURLPattern(pattern)
		node := t.root
		// Host labels are inserted from the rightmost label inward so that
		// suffix patterns ("nyu.edu") sit on the prefix of more specific
		// patterns ("med.nyu.edu").
		labels := splitHostLabels(host)
		for i := len(labels) - 1; i >= 0; i-- {
			child, ok := node.hostChildren[labels[i]]
			if !ok {
				child = newTreeNode()
				node.hostChildren[labels[i]] = child
			}
			node = child
		}
		for _, seg := range splitSegments(path) {
			child, ok := node.pathChildren[seg]
			if !ok {
				child = newTreeNode()
				node.pathChildren[seg] = child
			}
			node = child
		}
		node.policies = append(node.policies, p)
	}
}

// Len returns the number of policies in the tree.
func (t *Tree) Len() int { return len(t.all) }

// Policies returns all registered policies in registration order.
func (t *Tree) Policies() []*Policy { return t.all }

// Match walks the tree for the request's host and path, gathers candidate
// policies, and returns the closest valid match (or nil).
func (t *Tree) Match(in Input) *Policy {
	candidates := t.candidates(in.Host, in.Path)
	var best *Policy
	var bestScore Score
	for _, p := range candidates {
		score, ok := p.Match(in)
		if !ok {
			continue
		}
		if best == nil || !score.Less(bestScore) {
			best = p
			bestScore = score
		}
	}
	return best
}

// candidates collects the policies attached to every node along the
// host/path walk. Policies at deeper nodes have more specific URL patterns,
// but the final specificity comparison is delegated to Policy.Match so the
// tree and linear matchers agree exactly.
func (t *Tree) candidates(host, path string) []*Policy {
	out := append([]*Policy(nil), t.root.policies...)
	labels := splitHostLabels(strings.ToLower(host))
	node := t.root
	// Walk host labels right to left; stop at the first missing edge.
	i := len(labels) - 1
	for ; i >= 0; i-- {
		child, ok := node.hostChildren[labels[i]]
		if !ok {
			break
		}
		node = child
		out = append(out, node.policies...)
	}
	// Path segments only matter below the host node we stopped at.
	for _, seg := range splitSegments(path) {
		child, ok := node.pathChildren[seg]
		if !ok {
			break
		}
		node = child
		out = append(out, node.policies...)
	}
	return out
}

func splitURLPattern(pattern string) (host, path string) {
	pattern = strings.TrimSpace(strings.ToLower(pattern))
	pattern = strings.TrimPrefix(pattern, "http://")
	pattern = strings.TrimPrefix(pattern, "https://")
	host, path = pattern, ""
	if i := strings.Index(pattern, "/"); i >= 0 {
		host, path = pattern[:i], pattern[i:]
	}
	if i := strings.Index(host, ":"); i >= 0 {
		host = host[:i]
	}
	return host, path
}

func splitHostLabels(host string) []string {
	host = strings.TrimSuffix(host, ".")
	if host == "" {
		return nil
	}
	return strings.Split(host, ".")
}
