package httpmsg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net/http"
	"net/url"
	"sort"

	"nakika/internal/wire"
)

// Binary wire codecs for the two message types that cross the transport:
// responses (cache.get and off.exec replies, disk-cache entries) and
// requests (off.exec bodies). They replace the gob payloads those paths
// shipped through their first releases; the Decode side sniffs wire.Magic
// and keeps accepting gob for one release so mixed-version rings upgrade
// cleanly. Encoders are append-style so callers can compose them into
// pooled buffers.

// AppendHeader appends h:
//
//	uvarint(nkeys) { str(key) uvarint(nvals) str(val)... }...
//
// Keys are written in sorted order so the encoding is deterministic (equal
// headers encode to equal bytes — fuzz and fingerprint friendly).
func AppendHeader(buf []byte, h http.Header) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(h)))
	if len(h) == 0 {
		return buf
	}
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = wire.AppendString(buf, k)
		vs := h[k]
		buf = wire.AppendUvarint(buf, uint64(len(vs)))
		for _, v := range vs {
			buf = wire.AppendString(buf, v)
		}
	}
	return buf
}

// ReadHeader reads one AppendHeader-encoded header. A header with zero keys
// decodes as nil.
func ReadHeader(r *wire.Reader) (http.Header, error) {
	nkeys, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nkeys == 0 {
		return nil, nil
	}
	if nkeys > uint64(r.Len()) { // cheap sanity bound before allocating
		return nil, wire.ErrMalformed
	}
	h := make(http.Header, nkeys)
	for i := uint64(0); i < nkeys; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		nvals, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nvals > uint64(r.Len()) {
			return nil, wire.ErrMalformed
		}
		vs := make([]string, nvals)
		for j := uint64(0); j < nvals; j++ {
			if vs[j], err = r.String(); err != nil {
				return nil, err
			}
		}
		h[k] = vs
	}
	return h, nil
}

// AppendResponse appends resp's binary encoding (no magic byte):
//
//	uvarint(status) header bytes(body) bool(generated) bool(fromCache)
//	str(via) time(fetched)
func AppendResponse(buf []byte, resp *Response) []byte {
	buf = wire.AppendUvarint(buf, uint64(resp.Status))
	buf = AppendHeader(buf, resp.Header)
	buf = wire.AppendBytes(buf, resp.Body)
	buf = wire.AppendBool(buf, resp.Generated)
	buf = wire.AppendBool(buf, resp.FromCache)
	buf = wire.AppendString(buf, resp.Via)
	return wire.AppendTime(buf, resp.Fetched)
}

// ReadResponse reads one AppendResponse-encoded response. The body is
// copied out of the reader's buffer, so the decoded response outlives a
// pooled payload.
func ReadResponse(r *wire.Reader) (*Response, error) {
	status, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	resp := &Response{Status: int(status)}
	if resp.Header, err = ReadHeader(r); err != nil {
		return nil, err
	}
	if resp.Body, err = r.CopyBytes(); err != nil {
		return nil, err
	}
	if resp.Generated, err = r.Bool(); err != nil {
		return nil, err
	}
	if resp.FromCache, err = r.Bool(); err != nil {
		return nil, err
	}
	if resp.Via, err = r.String(); err != nil {
		return nil, err
	}
	if resp.Fetched, err = r.Time(); err != nil {
		return nil, err
	}
	return resp, nil
}

// EncodeResponse renders resp as a self-describing payload (magic byte
// first) suitable for a transport Message body. A streamed body is
// materialized first — the wire format carries complete instances; if the
// stream cannot be read the peer gets a bodyless 502 rather than a truncated
// instance.
func EncodeResponse(resp *Response) []byte {
	if resp.Stream != nil {
		if err := resp.Materialize(); err != nil {
			resp = NewTextResponse(http.StatusBadGateway, "upstream stream failed\n")
		}
	}
	buf := make([]byte, 0, 64+len(resp.Body)+8*len(resp.Header))
	buf = append(buf, wire.Magic)
	return AppendResponse(buf, resp)
}

// DecodeResponse parses an EncodeResponse payload, still accepting the gob
// encoding shipped by peers one release behind.
func DecodeResponse(payload []byte) (*Response, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("httpmsg: empty response payload")
	}
	if payload[0] == wire.Magic {
		r := wire.Reader{Buf: payload, Off: 1}
		return ReadResponse(&r)
	}
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("httpmsg: decode response: %w", err)
	}
	return &resp, nil
}

// AppendRequest appends req's binary encoding (no magic byte):
//
//	str(method) str(url) header bytes(body) str(clientIP) time(received)
//	bool(redirected)
//
// The URL travels in its string form; script-private state (termination) is
// deliberately not carried — an offloaded request runs the remote pipeline
// from scratch.
func AppendRequest(buf []byte, req *Request) []byte {
	buf = wire.AppendString(buf, req.Method)
	var u string
	if req.URL != nil {
		u = req.URL.String()
	}
	buf = wire.AppendString(buf, u)
	buf = AppendHeader(buf, req.Header)
	buf = wire.AppendBytes(buf, req.Body)
	buf = wire.AppendString(buf, req.ClientIP)
	buf = wire.AppendTime(buf, req.Received)
	return wire.AppendBool(buf, req.Redirected)
}

// ReadRequest reads one AppendRequest-encoded request.
func ReadRequest(r *wire.Reader) (*Request, error) {
	method, err := r.String()
	if err != nil {
		return nil, err
	}
	rawURL, err := r.String()
	if err != nil {
		return nil, err
	}
	req := &Request{Method: method}
	if rawURL != "" {
		if req.URL, err = url.Parse(rawURL); err != nil {
			return nil, fmt.Errorf("httpmsg: decode request url: %w", err)
		}
	}
	if req.Header, err = ReadHeader(r); err != nil {
		return nil, err
	}
	if req.Body, err = r.CopyBytes(); err != nil {
		return nil, err
	}
	if req.ClientIP, err = r.String(); err != nil {
		return nil, err
	}
	if req.Received, err = r.Time(); err != nil {
		return nil, err
	}
	if req.Redirected, err = r.Bool(); err != nil {
		return nil, err
	}
	return req, nil
}

// EncodeRequest renders req as a self-describing payload (magic byte
// first). The gob grace decode for requests lives with the offload RPC
// (internal/core), whose legacy payload was a core-private struct.
func EncodeRequest(req *Request) []byte {
	buf := make([]byte, 0, 96+len(req.Body)+8*len(req.Header))
	buf = append(buf, wire.Magic)
	return AppendRequest(buf, req)
}
