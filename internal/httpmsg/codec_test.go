package httpmsg

import (
	"bytes"
	"encoding/gob"
	"net/http"
	"reflect"
	"testing"
	"time"

	"nakika/internal/wire"
)

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := NewResponse(200)
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	resp.Header.Add("X-Multi", "a")
	resp.Header.Add("X-Multi", "b")
	resp.SetBodyString("<html>hello</html>")
	resp.Generated = true
	resp.FromCache = true
	resp.Via = "edge-3"
	resp.Fetched = time.Unix(0, 1754600000000000000)

	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if got.Status != resp.Status || got.Generated != resp.Generated ||
		got.FromCache != resp.FromCache || got.Via != resp.Via {
		t.Fatalf("round trip: got %+v want %+v", got, resp)
	}
	if !bytes.Equal(got.Body, resp.Body) {
		t.Fatalf("body: got %q want %q", got.Body, resp.Body)
	}
	if !reflect.DeepEqual(got.Header, resp.Header) {
		t.Fatalf("header: got %v want %v", got.Header, resp.Header)
	}
	if got.Fetched.UnixNano() != resp.Fetched.UnixNano() {
		t.Fatalf("fetched: got %v want %v", got.Fetched, resp.Fetched)
	}
}

func TestResponseCodecEmptyFields(t *testing.T) {
	resp := &Response{Status: 404}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if got.Status != 404 || got.Header != nil || got.Body != nil || !got.Fetched.IsZero() {
		t.Fatalf("empty round trip: got %+v", got)
	}
}

func TestDecodeResponseAcceptsGob(t *testing.T) {
	resp := NewTextResponse(200, "legacy body")
	resp.Via = "old-node"
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(buf.Bytes())
	if err != nil {
		t.Fatalf("gob grace decode: %v", err)
	}
	if got.Status != 200 || string(got.Body) != "legacy body" || got.Via != "old-node" {
		t.Fatalf("gob grace: got %+v", got)
	}
}

func TestDecodeResponseMalformed(t *testing.T) {
	cases := [][]byte{nil, {}, {wire.Magic}, {wire.Magic, 200, 200}}
	for _, c := range cases {
		if _, err := DecodeResponse(c); err == nil {
			t.Fatalf("DecodeResponse(%v): expected error", c)
		}
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	req := MustRequest("POST", "http://site.example/path?q=1")
	req.Header.Set("Accept", "text/html")
	req.Body = []byte("payload")
	req.ClientIP = "10.0.0.9"
	req.Received = time.Unix(0, 1754600000000000000)
	req.Redirected = true

	r := wire.Reader{Buf: EncodeRequest(req), Off: 1}
	got, err := ReadRequest(&r)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.Method != req.Method || got.URL.String() != req.URL.String() ||
		got.ClientIP != req.ClientIP || got.Redirected != req.Redirected {
		t.Fatalf("round trip: got %+v want %+v", got, req)
	}
	if !bytes.Equal(got.Body, req.Body) || !reflect.DeepEqual(got.Header, req.Header) {
		t.Fatalf("body/header mismatch: got %+v", got)
	}
	if got.Received.UnixNano() != req.Received.UnixNano() {
		t.Fatalf("received: got %v want %v", got.Received, req.Received)
	}
}

func TestHeaderCodecDeterministic(t *testing.T) {
	h := http.Header{"B": {"2"}, "A": {"1"}, "C": {"3", "4"}}
	a := AppendHeader(nil, h)
	b := AppendHeader(nil, h)
	if !bytes.Equal(a, b) {
		t.Fatal("header encoding not deterministic")
	}
	r := wire.NewReader(a)
	got, err := ReadHeader(r)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("header round trip: got %v want %v", got, h)
	}
}
