package httpmsg

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// memStream is a BodyStream over an in-memory byte slice, for tests.
type memStream struct{ data []byte }

func (m *memStream) TotalLen() int64 { return int64(len(m.data)) }
func (m *memStream) Range(from, to int64) (io.ReadCloser, error) {
	if from < 0 || to > int64(len(m.data)) || from > to {
		return nil, errors.New("memStream: range out of bounds")
	}
	return io.NopCloser(bytes.NewReader(m.data[from:to])), nil
}

func TestWriteToMethodTable(t *testing.T) {
	body := []byte("hello, range world")
	cases := []struct {
		name       string
		status     int
		method     string
		body       []byte
		rangeHdr   string // applied via ApplyRange when non-empty
		carriedLen string // pre-set Content-Length header on the response
		wantStatus int
		wantBody   string
		wantLen    string // expected Content-Length on the wire ("" = absent)
	}{
		{
			name: "GET 200", status: 200, method: "GET", body: body,
			wantStatus: 200, wantBody: string(body), wantLen: "18",
		},
		{
			name: "HEAD 200 has length no body", status: 200, method: "HEAD", body: body,
			wantStatus: 200, wantBody: "", wantLen: "18",
		},
		{
			name: "204 no body no length", status: 204, method: "GET", body: nil,
			wantStatus: 204, wantBody: "", wantLen: "",
		},
		{
			name: "204 ignores stray body", status: 204, method: "GET", body: []byte("junk"),
			wantStatus: 204, wantBody: "", wantLen: "",
		},
		{
			name: "304 no body keeps validator length", status: 304, method: "GET", body: nil,
			carriedLen: "18", wantStatus: 304, wantBody: "", wantLen: "18",
		},
		{
			name: "304 does not invent zero length", status: 304, method: "GET", body: nil,
			wantStatus: 304, wantBody: "", wantLen: "",
		},
		{
			name: "GET 200 with Range", status: 200, method: "GET", body: body,
			rangeHdr: "bytes=7-11", wantStatus: 206, wantBody: "range", wantLen: "5",
		},
		{
			name: "HEAD 200 with Range", status: 200, method: "HEAD", body: body,
			rangeHdr: "bytes=7-11", wantStatus: 206, wantBody: "", wantLen: "5",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := NewResponse(c.status)
			if c.body != nil {
				resp.Body = c.body
			}
			if c.carriedLen != "" {
				resp.Header.Set("Content-Length", c.carriedLen)
			}
			req := MustRequest(c.method, "http://example.org/x")
			if c.rangeHdr != "" {
				req.Header.Set("Range", c.rangeHdr)
			}
			out := ApplyRange(req, resp)
			rec := httptest.NewRecorder()
			if err := out.WriteToMethod(rec, c.method); err != nil {
				t.Fatalf("WriteToMethod: %v", err)
			}
			if rec.Code != c.wantStatus {
				t.Errorf("status = %d, want %d", rec.Code, c.wantStatus)
			}
			if got := rec.Body.String(); got != c.wantBody {
				t.Errorf("body = %q, want %q", got, c.wantBody)
			}
			if got := rec.Header().Get("Content-Length"); got != c.wantLen {
				t.Errorf("Content-Length = %q, want %q", got, c.wantLen)
			}
			if c.wantStatus == 206 {
				if cr := rec.Header().Get("Content-Range"); cr != "bytes 7-11/18" {
					t.Errorf("Content-Range = %q", cr)
				}
			}
		})
	}
}

func TestWriteToMethodStreamed(t *testing.T) {
	data := bytes.Repeat([]byte("0123456789abcdef"), 64)
	resp := NewResponse(200)
	resp.SetStream(&memStream{data: data})
	rec := httptest.NewRecorder()
	if err := resp.WriteToMethod(rec, "GET"); err != nil {
		t.Fatalf("WriteToMethod: %v", err)
	}
	if !bytes.Equal(rec.Body.Bytes(), data) {
		t.Fatal("streamed body mismatch")
	}
	if got := rec.Header().Get("Content-Length"); got != "1024" {
		t.Errorf("Content-Length = %q", got)
	}

	// HEAD over a stream must not resolve any bytes.
	resp2 := NewResponse(200)
	resp2.SetStream(&memStream{data: data})
	rec2 := httptest.NewRecorder()
	if err := resp2.WriteToMethod(rec2, "HEAD"); err != nil {
		t.Fatalf("WriteToMethod HEAD: %v", err)
	}
	if rec2.Body.Len() != 0 {
		t.Error("HEAD reply carried a body")
	}
	if got := rec2.Header().Get("Content-Length"); got != "1024" {
		t.Errorf("HEAD Content-Length = %q", got)
	}
}

func TestApplyRangeStreamedStaysLazy(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 4096)
	copy(data[100:], "needle")
	resp := NewResponse(200)
	resp.SetStream(&memStream{data: data})
	req := MustRequest("GET", "http://example.org/big")
	req.Header.Set("Range", "bytes=100-105")
	out := ApplyRange(req, resp)
	if out.Status != 206 || out.Stream == nil || out.Body != nil {
		t.Fatalf("want lazy 206, got status=%d stream=%v", out.Status, out.Stream != nil)
	}
	if out.BodyLen() != 6 || out.TotalLen() != 4096 {
		t.Fatalf("BodyLen=%d TotalLen=%d", out.BodyLen(), out.TotalLen())
	}
	if err := out.Materialize(); err != nil {
		t.Fatal(err)
	}
	if string(out.Body) != "needle" {
		t.Fatalf("materialized range = %q", out.Body)
	}
}

func TestApplyRangeUnsatisfiable(t *testing.T) {
	resp := NewTextResponse(200, "short")
	req := MustRequest("GET", "http://example.org/x")
	req.Header.Set("Range", "bytes=99-")
	out := ApplyRange(req, resp)
	if out.Status != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("status = %d, want 416", out.Status)
	}
	if cr := out.Header.Get("Content-Range"); cr != "bytes */5" {
		t.Errorf("Content-Range = %q", cr)
	}
}

func TestApplyRangeIgnoresMalformedAndNonGET(t *testing.T) {
	resp := NewTextResponse(200, "full body here")
	for _, c := range []struct{ method, hdr string }{
		{"GET", "bytes=5-2"},     // inverted
		{"GET", "bytes=0-1,3-4"}, // multi-range
		{"GET", "chapters=1-2"},  // wrong unit
		{"GET", "bytes=garbage"}, // malformed
		{"POST", "bytes=0-3"},    // wrong method
		{"GET", ""},              // absent
	} {
		req := MustRequest(c.method, "http://example.org/x")
		if c.hdr != "" {
			req.Header.Set("Range", c.hdr)
		}
		out := ApplyRange(req, resp)
		if out != resp {
			t.Errorf("method=%s range=%q: expected pass-through, got status %d", c.method, c.hdr, out.Status)
		}
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		spec     string
		total    int64
		from, to int64
		err      error
	}{
		{"bytes=0-0", 10, 0, 1, nil},
		{"bytes=2-5", 10, 2, 6, nil},
		{"bytes=2-99", 10, 2, 10, nil}, // end clamps
		{"bytes=3-", 10, 3, 10, nil},
		{"bytes=-4", 10, 6, 10, nil},
		{"bytes=-99", 10, 0, 10, nil}, // suffix clamps
		{"bytes=10-", 10, 0, 0, ErrRangeUnsatisfiable},
		{"bytes=10-12", 10, 0, 0, ErrRangeUnsatisfiable},
		{"bytes=-0", 10, 0, 0, ErrRangeUnsatisfiable},
		{"bytes=0-", 0, 0, 0, ErrRangeUnsatisfiable},
		{"bytes=5-2", 10, 0, 0, ErrNotRange},
		{"bytes=0-1,3-4", 10, 0, 0, ErrNotRange},
		{"items=0-1", 10, 0, 0, ErrNotRange},
		{"bytes=", 10, 0, 0, ErrNotRange},
		{"bytes=-", 10, 0, 0, ErrNotRange},
		{"bytes=a-b", 10, 0, 0, ErrNotRange},
	}
	for _, c := range cases {
		from, to, err := ParseRange(c.spec, c.total)
		if !errors.Is(err, c.err) {
			t.Errorf("ParseRange(%q, %d) err = %v, want %v", c.spec, c.total, err, c.err)
			continue
		}
		if err == nil && (from != c.from || to != c.to) {
			t.Errorf("ParseRange(%q, %d) = [%d,%d), want [%d,%d)", c.spec, c.total, from, to, c.from, c.to)
		}
	}
}

func TestCacheableRejects304(t *testing.T) {
	r := NewResponse(http.StatusNotModified)
	if r.Cacheable() {
		t.Fatal("304 must not be cacheable as content")
	}
}

func TestToHTTPRequestStripsConnectionTokens(t *testing.T) {
	req := MustRequest("GET", "http://example.org/x")
	req.Header.Set("Connection", "x-internal-token, close")
	req.Header.Set("X-Internal-Token", "secret")
	req.Header.Set("X-Forwarded-Ok", "yes")
	req.Header.Set("Keep-Alive", "timeout=5")
	hr, err := req.ToHTTPRequest()
	if err != nil {
		t.Fatal(err)
	}
	if got := hr.Header.Get("X-Internal-Token"); got != "" {
		t.Errorf("Connection-named header forwarded: %q", got)
	}
	if hr.Header.Get("Connection") != "" || hr.Header.Get("Keep-Alive") != "" {
		t.Error("static hop-by-hop headers forwarded")
	}
	if hr.Header.Get("X-Forwarded-Ok") != "yes" {
		t.Error("end-to-end header dropped")
	}
}

func TestToHTTPRequestBody(t *testing.T) {
	// Bodyless request: no reader at all, so net/http sends no
	// Content-Length: 0 / chunked framing on GETs.
	get := MustRequest("GET", "http://example.org/x")
	hr, err := get.ToHTTPRequest()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Body != nil {
		t.Error("bodyless request got a body reader")
	}

	post := MustRequest("POST", "http://example.org/x")
	post.Body = []byte("payload")
	hr, err = post.ToHTTPRequest()
	if err != nil {
		t.Fatal(err)
	}
	if hr.ContentLength != 7 {
		t.Errorf("ContentLength = %d", hr.ContentLength)
	}
	b, _ := io.ReadAll(hr.Body)
	if string(b) != "payload" {
		t.Errorf("body = %q", b)
	}
}

func TestSetBodyDropsStream(t *testing.T) {
	resp := NewResponse(200)
	resp.SetStream(&memStream{data: []byte("streamed")})
	resp.SetBody([]byte("solid"))
	if resp.Stream != nil || resp.TotalLen() != 5 {
		t.Fatal("SetBody left the stream attached")
	}
}

func TestEncodeResponseMaterializesStream(t *testing.T) {
	resp := NewResponse(200)
	resp.SetStream(&memStream{data: []byte("wire bytes")})
	payload := EncodeResponse(resp)
	dec, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.Body) != "wire bytes" {
		t.Fatalf("decoded body = %q", dec.Body)
	}
}

func FuzzRangeParse(f *testing.F) {
	f.Add("bytes=0-99", int64(1000))
	f.Add("bytes=-5", int64(10))
	f.Add("bytes=7-", int64(3))
	f.Add("bytes=1-2,4-5", int64(100))
	f.Add("chars=0-1", int64(5))
	f.Add(strings.Repeat("bytes=", 3), int64(1))
	f.Fuzz(func(t *testing.T, spec string, total int64) {
		if total < 0 {
			total = -total
		}
		from, to, err := ParseRange(spec, total)
		if err != nil {
			if !errors.Is(err, ErrNotRange) && !errors.Is(err, ErrRangeUnsatisfiable) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// Any accepted range must be a non-empty span inside the instance.
		if from < 0 || to > total || from >= to {
			t.Fatalf("ParseRange(%q, %d) = [%d,%d): out of bounds", spec, total, from, to)
		}
	})
}
