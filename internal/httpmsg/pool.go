package httpmsg

import (
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Pooled requests for the proxy hot path. The proxy boundary (ServeHTTP,
// the offload executor, the benchmarks) allocates one Request per inbound
// call; pooling them removes the request struct, its URL, and its header
// map from the steady-state allocation profile.
//
// Safety rule: a request may only be released when no pipeline script
// handler ran against it (pipeline.Trace.RanHandlers reports this). A
// script could stash its bound request wrapper in a global and alias a
// later request after reuse; requests that scripts touched are therefore
// left to the garbage collector.

var requestPool = sync.Pool{
	New: func() interface{} { return new(Request) },
}

// AcquireRequest returns a zeroed pooled request with a live header map and
// Received already stamped. Pair with Release on paths where no script saw
// the request; dropping it on the floor is also fine (the GC reclaims it).
func AcquireRequest() *Request {
	r := requestPool.Get().(*Request)
	if r.Header == nil {
		r.Header = make(http.Header, 8)
	}
	r.Received = time.Now()
	return r
}

// Release zeroes the request (keeping its header map's buckets) and returns
// it to the pool. The caller must not touch the request afterwards.
func (r *Request) Release() {
	hdr := r.Header
	clear(hdr)
	*r = Request{Header: hdr}
	requestPool.Put(r)
}

// SetURLCopy points the request at a copy of u stored inside the request's
// own allocation, so pooled requests do not allocate a url.URL per call.
func (r *Request) SetURLCopy(u *url.URL) {
	r.urlBuf = *u
	r.URL = &r.urlBuf
}

// AcquireFromHTTPRequest is FromHTTPRequest on a pooled request: the
// request struct, URL, and header map are reused; header contents and the
// body are still copied out of hr. Release rules are as for AcquireRequest.
func AcquireFromHTTPRequest(hr *http.Request, maxBody int64) (*Request, error) {
	req := AcquireRequest()
	if err := fillFromHTTPRequest(req, hr, maxBody); err != nil {
		req.Release()
		return nil, err
	}
	return req, nil
}

// copyHeaderInto deep-copies src into the reused dst map using one flat
// backing array for all value slices (same layout as cloneHeader).
func copyHeaderInto(dst, src http.Header) {
	n := 0
	for _, vs := range src {
		n += len(vs)
	}
	flat := make([]string, 0, n)
	for k, vs := range src {
		lo := len(flat)
		flat = append(flat, vs...)
		dst[k] = flat[lo:len(flat):len(flat)]
	}
}
