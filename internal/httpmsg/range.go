package httpmsg

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// BodyStream provides a response body as lazily resolved byte ranges. The
// chunked large-object tier backs this with content-addressed segments, so
// only the segments a reader actually touches are fetched or paged in.
// Implementations must be safe for concurrent Range calls.
type BodyStream interface {
	// TotalLen is the full length of the instance in bytes.
	TotalLen() int64
	// Range returns a reader over the half-open byte range [from, to).
	// Callers must Close the reader.
	Range(from, to int64) (io.ReadCloser, error)
}

// TotalLen returns the full instance length in bytes: the stream's length
// when the body is streamed, len(Body) otherwise. For a ranged (206)
// response this is still the length of the complete representation, matching
// the total in Content-Range.
func (r *Response) TotalLen() int64 {
	if r.Stream != nil {
		return r.Stream.TotalLen()
	}
	return int64(len(r.Body))
}

// BodyLen returns the number of body bytes this response will actually
// transmit: the active range span for ranged responses, the full instance
// length otherwise.
func (r *Response) BodyLen() int64 {
	from, to := r.rangeSpan()
	return to - from
}

// rangeSpan returns the active byte range [from, to) of the body to send.
func (r *Response) rangeSpan() (from, to int64) {
	if r.ranged {
		return r.rangeFrom, r.rangeTo
	}
	return 0, r.TotalLen()
}

// Ranged reports whether ApplyRange narrowed this response to a byte range.
func (r *Response) Ranged() bool { return r.ranged }

// SetStream replaces the body with a lazily resolved stream and keeps
// Content-Length consistent with the full instance length.
func (r *Response) SetStream(s BodyStream) {
	r.Body = nil
	r.Stream = s
	r.ranged = false
	r.Header.Set("Content-Length", strconv.FormatInt(s.TotalLen(), 10))
}

// Materialize resolves a streamed body into Body so whole-body consumers
// (scripts, codecs) can operate on it. For a ranged response the active range
// is materialized. No-op for whole-body responses.
func (r *Response) Materialize() error {
	if r.Stream == nil {
		return nil
	}
	from, to := r.rangeSpan()
	rc, err := r.Stream.Range(from, to)
	if err != nil {
		return fmt.Errorf("httpmsg: materialize body: %w", err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		return fmt.Errorf("httpmsg: materialize body: %w", err)
	}
	r.Body = b
	r.Stream = nil
	r.ranged = false
	return nil
}

// Range parsing errors. ErrNotRange means the header is absent, malformed,
// multi-range, or uses a unit other than bytes — per RFC 7233 a server MAY
// ignore such a header and serve the full representation with a 200.
// ErrRangeUnsatisfiable means the range is syntactically valid but lies
// outside the representation; the server must answer 416.
var (
	ErrNotRange           = errors.New("httpmsg: not a byte range")
	ErrRangeUnsatisfiable = errors.New("httpmsg: range not satisfiable")
)

// ParseRange parses a single-range bytes= Range header value against a
// representation of total bytes, returning the half-open span [from, to).
// Multi-range requests are reported as ErrNotRange (we serve the full body
// rather than multipart/byteranges).
func ParseRange(spec string, total int64) (from, to int64, err error) {
	const prefix = "bytes="
	if !strings.HasPrefix(spec, prefix) {
		return 0, 0, ErrNotRange
	}
	spec = strings.TrimSpace(spec[len(prefix):])
	if spec == "" || strings.Contains(spec, ",") {
		return 0, 0, ErrNotRange
	}
	dash := strings.Index(spec, "-")
	if dash < 0 {
		return 0, 0, ErrNotRange
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	if first == "" {
		// Suffix range "-K": the final K bytes.
		k, perr := strconv.ParseInt(last, 10, 64)
		if perr != nil || k < 0 {
			return 0, 0, ErrNotRange
		}
		if k == 0 || total == 0 {
			return 0, 0, ErrRangeUnsatisfiable
		}
		if k > total {
			k = total
		}
		return total - k, total, nil
	}
	from, perr := strconv.ParseInt(first, 10, 64)
	if perr != nil || from < 0 {
		return 0, 0, ErrNotRange
	}
	if last == "" {
		// Open range "N-": from N to the end.
		if from >= total {
			return 0, 0, ErrRangeUnsatisfiable
		}
		return from, total, nil
	}
	end, perr := strconv.ParseInt(last, 10, 64)
	if perr != nil || end < from {
		return 0, 0, ErrNotRange
	}
	if from >= total {
		return 0, 0, ErrRangeUnsatisfiable
	}
	to = end + 1
	if to > total {
		to = total
	}
	return from, to, nil
}

// NewRangeNotSatisfiable builds the 416 reply for an unsatisfiable byte
// range against a representation of total bytes, with the required
// Content-Range: bytes */total header (RFC 7233 §4.2).
func NewRangeNotSatisfiable(total int64) *Response {
	resp := NewTextResponse(http.StatusRequestedRangeNotSatisfiable,
		"416 Requested Range Not Satisfiable\n")
	resp.Header.Set("Content-Range", "bytes */"+strconv.FormatInt(total, 10))
	return resp
}

// ApplyRange narrows resp according to the request's Range header, returning
// the response to transmit:
//
//   - no Range header, non-GET/HEAD method, or non-200 response: resp
//     unchanged (a script-ranged or upstream-206 response is passed through);
//   - malformed or multi-range header: resp unchanged (full 200);
//   - unsatisfiable range: a fresh 416 with Content-Range: bytes */total;
//   - satisfiable range: a 206 view of resp with Content-Range and
//     Content-Length set. The body is shared, not copied — a whole-body
//     response is sliced, a streamed response stays lazy so only the
//     segments covering the range are ever resolved.
func ApplyRange(req *Request, resp *Response) *Response {
	if resp.Status != http.StatusOK || resp.ranged {
		return resp
	}
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		return resp
	}
	spec := req.Header.Get("Range")
	if spec == "" {
		return resp
	}
	total := resp.TotalLen()
	from, to, err := ParseRange(spec, total)
	if err != nil {
		if errors.Is(err, ErrRangeUnsatisfiable) {
			return NewRangeNotSatisfiable(total)
		}
		return resp
	}
	out := &Response{
		Status:    http.StatusPartialContent,
		Header:    cloneHeader(resp.Header),
		Generated: resp.Generated,
		FromCache: resp.FromCache,
		Via:       resp.Via,
		Fetched:   resp.Fetched,
	}
	if resp.Stream != nil {
		out.Stream = resp.Stream
		out.rangeFrom, out.rangeTo = from, to
		out.ranged = true
	} else {
		out.Body = resp.Body[from:to]
	}
	out.Header.Set("Content-Range",
		"bytes "+strconv.FormatInt(from, 10)+"-"+strconv.FormatInt(to-1, 10)+
			"/"+strconv.FormatInt(total, 10))
	out.Header.Set("Content-Length", strconv.FormatInt(to-from, 10))
	out.Header.Set("Accept-Ranges", "bytes")
	return out
}
