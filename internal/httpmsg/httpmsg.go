// Package httpmsg defines the HTTP request and response representation used
// by the Na Kika scripting pipeline.
//
// Pipeline stages interpose on complete messages: for responses, the body
// always represents the entire instance of the HTTP resource (Section 3.1 of
// the paper) so that the resource can be correctly transcoded. The types here
// are deliberately independent of net/http so they can flow between the
// proxy, the cache, the script vocabularies, and the overlay without carrying
// connection state; conversion helpers to and from net/http live at the
// bottom of this file.
package httpmsg

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/textproto"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Request is a complete HTTP request as seen by the pipeline.
type Request struct {
	// Method is the HTTP method (GET, POST, ...).
	Method string
	// URL is the absolute request URL.
	URL *url.URL
	// Header holds the request headers in canonical form.
	Header http.Header
	// Body is the full request body (may be nil).
	Body []byte
	// ClientIP is the IP address of the originating client (without port).
	ClientIP string
	// Received is when the edge node accepted the request.
	Received time.Time
	// terminated, when non-nil, is a response produced by a script calling
	// Request.terminate(status); the pipeline short-circuits to it.
	terminated *Response
	// Redirected records whether a script rewrote the URL.
	Redirected bool
	// TraceID is the request's cross-node trace id (zero: untraced). The
	// ingress node mints it; offload forwards carry it so both sides of a
	// forwarded request record the same id.
	TraceID uint64
	// urlBuf is the inline URL storage SetURLCopy points URL at, so pooled
	// requests carry their URL without a per-request url.URL allocation.
	urlBuf url.URL
}

// NewRequest builds a request for the given method and raw URL.
func NewRequest(method, rawURL string) (*Request, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("httpmsg: parse url %q: %w", rawURL, err)
	}
	if u.Scheme == "" {
		u.Scheme = "http"
	}
	return &Request{
		Method:   method,
		URL:      u,
		Header:   make(http.Header),
		Received: time.Now(),
	}, nil
}

// MustRequest is NewRequest that panics on error; for tests and fixtures.
func MustRequest(method, rawURL string) *Request {
	r, err := NewRequest(method, rawURL)
	if err != nil {
		panic(err)
	}
	return r
}

// Host returns the host (without port) the request is addressed to.
func (r *Request) Host() string {
	if r.URL == nil {
		return ""
	}
	return r.URL.Hostname()
}

// Path returns the URL path, defaulting to "/".
func (r *Request) Path() string {
	if r.URL == nil || r.URL.Path == "" {
		return "/"
	}
	return r.URL.Path
}

// SiteKey identifies the origin site for resource accounting and hard state
// partitioning: the URL host without port, lower-cased.
func (r *Request) SiteKey() string {
	return strings.ToLower(r.Host())
}

// CacheKey is the canonical key under which a response to this request is
// cached and published in the cooperative cache index: method plus the URL
// without fragment.
func (r *Request) CacheKey() string {
	u := r.URL
	if u.Fragment != "" || u.RawFragment != "" {
		cp := *u
		cp.Fragment, cp.RawFragment = "", ""
		u = &cp
	}
	return r.Method + " " + u.String()
}

// Clone returns a deep copy of the request (headers and body included).
func (r *Request) Clone() *Request {
	cp := &Request{
		Method:     r.Method,
		Header:     cloneHeader(r.Header),
		ClientIP:   r.ClientIP,
		Received:   r.Received,
		Redirected: r.Redirected,
		TraceID:    r.TraceID,
	}
	if r.URL != nil {
		u := *r.URL
		cp.URL = &u
	}
	if r.Body != nil {
		cp.Body = append([]byte(nil), r.Body...)
	}
	return cp
}

// SetURL replaces the request URL, marking the request as redirected when the
// host or path changes; scripts use this to interpose one service on another
// (Section 3.1, dynamically scheduled stages).
func (r *Request) SetURL(rawURL string) error {
	u, err := url.Parse(rawURL)
	if err != nil {
		return fmt.Errorf("httpmsg: parse url %q: %w", rawURL, err)
	}
	if u.Scheme == "" {
		u.Scheme = "http"
	}
	if r.URL == nil || u.Host != r.URL.Host || u.Path != r.URL.Path || u.RawQuery != r.URL.RawQuery {
		r.Redirected = true
	}
	r.URL = u
	return nil
}

// Terminate records a terminal response with the given status code, as
// produced by the Request.terminate(code) vocabulary call in Figure 5 of the
// paper. A zero or invalid code maps to 500.
func (r *Request) Terminate(status int) *Response {
	if status < 100 || status > 599 {
		status = http.StatusInternalServerError
	}
	resp := NewResponse(status)
	resp.Header.Set("Content-Type", "text/plain; charset=utf-8")
	resp.SetBodyString(fmt.Sprintf("%d %s\n", status, http.StatusText(status)))
	r.terminated = resp
	return resp
}

// Terminated returns the response recorded by Terminate, or nil.
func (r *Request) Terminated() *Response { return r.terminated }

// ClearTermination removes a previously recorded termination; the pipeline
// uses this between stages.
func (r *Request) ClearTermination() { r.terminated = nil }

// Cookie returns the named cookie value and whether it was present.
func (r *Request) Cookie(name string) (string, bool) {
	for _, line := range r.Header.Values("Cookie") {
		for _, part := range strings.Split(line, ";") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) == 2 && kv[0] == name {
				return kv[1], true
			}
		}
	}
	return "", false
}

// SetCookie appends a cookie to the request's Cookie header.
func (r *Request) SetCookie(name, value string) {
	existing := r.Header.Get("Cookie")
	pair := name + "=" + value
	if existing == "" {
		r.Header.Set("Cookie", pair)
		return
	}
	r.Header.Set("Cookie", existing+"; "+pair)
}

// Query returns the named query parameter (first value).
func (r *Request) Query(name string) string {
	if r.URL == nil {
		return ""
	}
	return r.URL.Query().Get(name)
}

// Response is a complete HTTP response as seen by the pipeline.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Header holds the response headers in canonical form.
	Header http.Header
	// Body is the entire instance of the resource.
	Body []byte
	// Generated marks responses created by scripts (rather than fetched from
	// the origin or the cache); generated responses skip origin fetching.
	Generated bool
	// FromCache marks responses served from the local or cooperative cache.
	FromCache bool
	// Via records which node produced or forwarded the response (cooperative
	// caching provenance).
	Via string
	// Fetched is when the response was obtained from its source.
	Fetched time.Time
	// Stream, when non-nil, provides the body as lazily resolved byte
	// ranges instead of Body (which stays nil while streaming). The chunked
	// large-object tier serves multi-MB instances this way so they are
	// never buffered whole; scripts that need the bytes call Materialize.
	Stream BodyStream
	// rangeFrom/rangeTo bound the active byte range [rangeFrom, rangeTo)
	// when ranged is set. ApplyRange produces ranged (206) responses.
	rangeFrom, rangeTo int64
	ranged             bool
}

// NewResponse returns an empty response with the given status.
func NewResponse(status int) *Response {
	return &Response{
		Status:  status,
		Header:  make(http.Header),
		Fetched: time.Now(),
	}
}

// NewTextResponse builds a text/plain response with the given status and
// body.
func NewTextResponse(status int, body string) *Response {
	r := NewResponse(status)
	r.Header.Set("Content-Type", "text/plain; charset=utf-8")
	r.SetBodyString(body)
	return r
}

// NewHTMLResponse builds a text/html response.
func NewHTMLResponse(status int, body string) *Response {
	r := NewResponse(status)
	r.Header.Set("Content-Type", "text/html; charset=utf-8")
	r.SetBodyString(body)
	return r
}

// SetBody replaces the response body and keeps Content-Length consistent.
// Any body stream is dropped: after SetBody the response is whole-body again.
func (r *Response) SetBody(b []byte) {
	r.Body = b
	r.Stream = nil
	r.ranged = false
	r.Header.Set("Content-Length", strconv.Itoa(len(b)))
}

// SetBodyString replaces the body with the given string.
func (r *Response) SetBodyString(s string) { r.SetBody([]byte(s)) }

// ContentType returns the Content-Type header without parameters.
func (r *Response) ContentType() string {
	ct := r.Header.Get("Content-Type")
	if i := strings.Index(ct, ";"); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// Clone returns a deep copy of the response. A body stream is shared, not
// copied: streams are read-only views over the segment tier, so sharing is
// safe, and deep-copying one would defeat the point of streaming.
func (r *Response) Clone() *Response {
	cp := &Response{
		Status:    r.Status,
		Header:    cloneHeader(r.Header),
		Generated: r.Generated,
		FromCache: r.FromCache,
		Via:       r.Via,
		Fetched:   r.Fetched,
		Stream:    r.Stream,
		rangeFrom: r.rangeFrom,
		rangeTo:   r.rangeTo,
		ranged:    r.ranged,
	}
	if r.Body != nil {
		cp.Body = append([]byte(nil), r.Body...)
	}
	return cp
}

// Size returns the body length in bytes.
func (r *Response) Size() int { return len(r.Body) }

// ---------------------------------------------------------------------------
// Cache-control helpers (expiration-based consistency, Section 3.3)
// ---------------------------------------------------------------------------

// Cacheable reports whether the response may be stored by a shared cache.
// 304 Not Modified is deliberately not cacheable as content: it carries no
// body, so storing it would later serve an empty page. A 304 instead
// revalidates the stored 200 entry (see cache.Refresh).
func (r *Response) Cacheable() bool {
	if r.Status != http.StatusOK &&
		r.Status != http.StatusMovedPermanently && r.Status != http.StatusNotFound {
		return false
	}
	cc := strings.ToLower(r.Header.Get("Cache-Control"))
	if strings.Contains(cc, "no-store") || strings.Contains(cc, "private") || strings.Contains(cc, "no-cache") {
		return false
	}
	return true
}

// FreshFor returns how long the response may be served from cache without
// revalidation, following max-age and Expires. The default TTL is applied by
// the cache, not here; zero means "no explicit freshness information".
func (r *Response) FreshFor(now time.Time) time.Duration {
	cc := r.Header.Get("Cache-Control")
	for _, directive := range strings.Split(cc, ",") {
		directive = strings.TrimSpace(directive)
		if strings.HasPrefix(directive, "max-age=") {
			if secs, err := strconv.Atoi(strings.TrimPrefix(directive, "max-age=")); err == nil {
				return time.Duration(secs) * time.Second
			}
		}
		if strings.HasPrefix(directive, "s-maxage=") {
			if secs, err := strconv.Atoi(strings.TrimPrefix(directive, "s-maxage=")); err == nil {
				return time.Duration(secs) * time.Second
			}
		}
	}
	if exp := r.Header.Get("Expires"); exp != "" {
		if t, err := http.ParseTime(exp); err == nil {
			d := t.Sub(now)
			if d < 0 {
				return 0
			}
			return d
		}
	}
	return 0
}

// SetMaxAge sets the Cache-Control max-age directive in seconds.
func (r *Response) SetMaxAge(seconds int) {
	r.Header.Set("Cache-Control", "max-age="+strconv.Itoa(seconds))
}

// SetAbsoluteExpiry sets the Expires header to an absolute time; the content
// integrity scheme in Section 6 requires absolute expiration times because
// untrusted nodes cannot be trusted to decrement relative ones.
func (r *Response) SetAbsoluteExpiry(t time.Time) {
	r.Header.Set("Expires", t.UTC().Format(http.TimeFormat))
}

// ---------------------------------------------------------------------------
// Conversion to and from net/http
// ---------------------------------------------------------------------------

// FromHTTPRequest converts an inbound net/http request (as received by the
// proxy listener) into a pipeline Request, reading at most maxBody bytes of
// body. A maxBody of zero or less means unlimited.
func FromHTTPRequest(hr *http.Request, maxBody int64) (*Request, error) {
	req := &Request{Header: make(http.Header, len(hr.Header)), Received: time.Now()}
	if err := fillFromHTTPRequest(req, hr, maxBody); err != nil {
		return nil, err
	}
	return req, nil
}

// fillFromHTTPRequest populates req (whose Header map must be live) from an
// inbound net/http request; shared by the allocating and pooled converters.
func fillFromHTTPRequest(req *Request, hr *http.Request, maxBody int64) error {
	req.Method = hr.Method
	req.SetURLCopy(hr.URL)
	if req.URL.Host == "" {
		req.URL.Host = hr.Host
	}
	if req.URL.Scheme == "" {
		req.URL.Scheme = "http"
	}
	copyHeaderInto(req.Header, hr.Header)
	host := hr.RemoteAddr
	if i := strings.LastIndex(host, ":"); i > 0 {
		host = host[:i]
	}
	req.ClientIP = strings.Trim(host, "[]")
	if hr.Body != nil {
		var body []byte
		var err error
		if maxBody > 0 {
			body = make([]byte, 0, 4096)
			buf := make([]byte, 32*1024)
			var total int64
			for {
				n, rerr := hr.Body.Read(buf)
				if n > 0 {
					total += int64(n)
					if total > maxBody {
						return fmt.Errorf("httpmsg: request body exceeds %d bytes", maxBody)
					}
					body = append(body, buf[:n]...)
				}
				if rerr != nil {
					break
				}
			}
		} else {
			body, err = readAll(hr.Body)
			if err != nil {
				return fmt.Errorf("httpmsg: read request body: %w", err)
			}
		}
		req.Body = body
	}
	return nil
}

// WriteTo writes the response to a net/http ResponseWriter, assuming a GET
// request. Callers that know the request method should use WriteToMethod so
// HEAD replies omit the body.
func (r *Response) WriteTo(w http.ResponseWriter) error {
	return r.WriteToMethod(w, http.MethodGet)
}

// bodyless reports whether the status code forbids a message body
// (RFC 7230 §3.3.3): 1xx, 204 and 304.
func bodyless(status int) bool {
	return (status >= 100 && status < 200) ||
		status == http.StatusNoContent || status == http.StatusNotModified
}

// WriteToMethod writes the response to a net/http ResponseWriter for a reply
// to the given request method.
//
//   - 204, 304 and 1xx replies carry no body and no synthesized
//     Content-Length: a 304 keeps whatever validator headers (including a
//     Content-Length describing the selected representation) it arrived with,
//     rather than advertising a zero-length body.
//   - HEAD replies send the headers — with Content-Length describing the
//     body that a GET would have returned — but no body.
//   - Everything else sends Content-Length plus the body; streamed bodies
//     are copied through in chunks and flushed so the first byte reaches the
//     client before the stream finishes.
func (r *Response) WriteToMethod(w http.ResponseWriter, method string) error {
	for k, vs := range r.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if bodyless(r.Status) {
		// No body, and no invented Content-Length: for a 304 the carried
		// headers describe the validated representation, not this message.
		w.WriteHeader(r.Status)
		return nil
	}
	w.Header().Set("Content-Length", strconv.FormatInt(r.BodyLen(), 10))
	w.WriteHeader(r.Status)
	if method == http.MethodHead {
		return nil
	}
	if r.Stream == nil {
		_, err := w.Write(r.Body)
		return err
	}
	from, to := r.rangeSpan()
	rc, err := r.Stream.Range(from, to)
	if err != nil {
		return fmt.Errorf("httpmsg: open body stream: %w", err)
	}
	defer rc.Close()
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 64*1024)
	for {
		n, rerr := rc.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("httpmsg: read body stream: %w", rerr)
		}
	}
}

// ToHTTPRequest converts a pipeline request to an outbound net/http request
// for fetching from the origin.
func (r *Request) ToHTTPRequest() (*http.Request, error) {
	var body io.Reader
	if len(r.Body) > 0 {
		body = bytes.NewReader(r.Body)
	}
	hr, err := http.NewRequest(r.Method, r.URL.String(), body)
	if err != nil {
		return nil, fmt.Errorf("httpmsg: build outbound request: %w", err)
	}
	connNamed := connectionTokens(r.Header)
	for k, vs := range r.Header {
		// Hop-by-hop headers must not be forwarded (RFC 7230 §6.1) — both
		// the static set and anything the Connection header names.
		if isHopByHop(k) || connNamed[textproto.CanonicalMIMEHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			hr.Header.Add(k, v)
		}
	}
	return hr, nil
}

// connectionTokens returns the set of header names (canonicalized) listed in
// the Connection header; those headers are hop-by-hop for this message even
// though they are not in the static RFC list.
func connectionTokens(h http.Header) map[string]bool {
	var named map[string]bool
	for _, line := range h.Values("Connection") {
		for _, tok := range strings.Split(line, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			if named == nil {
				named = make(map[string]bool, 2)
			}
			named[textproto.CanonicalMIMEHeaderKey(tok)] = true
		}
	}
	return named
}

// FromHTTPResponse converts a net/http response into a pipeline Response,
// reading the full body (the pipeline operates on complete instances).
func FromHTTPResponse(hr *http.Response) (*Response, error) {
	resp := &Response{
		Status:  hr.StatusCode,
		Header:  cloneHeader(hr.Header),
		Fetched: time.Now(),
	}
	if hr.Body != nil {
		body, err := readAll(hr.Body)
		if err != nil {
			return nil, fmt.Errorf("httpmsg: read response body: %w", err)
		}
		resp.Body = body
	}
	return resp, nil
}

var hopByHopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

func isHopByHop(name string) bool {
	return hopByHopHeaders[textproto.CanonicalMIMEHeaderKey(name)]
}

// cloneHeader deep-copies a header in two allocations: the map and one flat
// backing array all value slices are carved from (rather than one slice
// allocation per key). Callers may append to a cloned key's values; append
// sees the sub-slice at full length and copies out, so siblings are safe.
func cloneHeader(h http.Header) http.Header {
	out := make(http.Header, len(h))
	n := 0
	for _, vs := range h {
		n += len(vs)
	}
	flat := make([]string, 0, n)
	for k, vs := range h {
		lo := len(flat)
		flat = append(flat, vs...)
		out[k] = flat[lo:len(flat):len(flat)]
	}
	return out
}

func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }

// HeaderFingerprint returns a deterministic digest-friendly serialization of
// selected headers; the integrity layer signs over it together with the body
// hash.
func HeaderFingerprint(h http.Header, names ...string) string {
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(textproto.CanonicalMIMEHeaderKey(n))
		sb.WriteString(":")
		sb.WriteString(strings.Join(h.Values(n), ","))
		sb.WriteString("\n")
	}
	return sb.String()
}
