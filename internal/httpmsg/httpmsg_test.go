package httpmsg

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRequest(t *testing.T) {
	r, err := NewRequest("GET", "http://med.nyu.edu/simm/module1.html?student=42")
	if err != nil {
		t.Fatal(err)
	}
	if r.Host() != "med.nyu.edu" {
		t.Errorf("Host = %q", r.Host())
	}
	if r.Path() != "/simm/module1.html" {
		t.Errorf("Path = %q", r.Path())
	}
	if r.Query("student") != "42" {
		t.Errorf("Query(student) = %q", r.Query("student"))
	}
	if r.SiteKey() != "med.nyu.edu" {
		t.Errorf("SiteKey = %q", r.SiteKey())
	}
}

func TestNewRequestDefaults(t *testing.T) {
	r, err := NewRequest("GET", "example.org/path")
	if err != nil {
		t.Fatal(err)
	}
	if r.URL.Scheme != "http" {
		t.Errorf("scheme = %q, want http", r.URL.Scheme)
	}
	if r.Path() == "" {
		t.Error("Path should never be empty")
	}
}

func TestNewRequestInvalid(t *testing.T) {
	if _, err := NewRequest("GET", "http://bad url with spaces\x7f"); err == nil {
		t.Error("expected error for invalid URL")
	}
}

func TestCacheKey(t *testing.T) {
	a := MustRequest("GET", "http://example.org/a#frag")
	b := MustRequest("GET", "http://example.org/a")
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("fragment should not affect cache key: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	c := MustRequest("POST", "http://example.org/a")
	if a.CacheKey() == c.CacheKey() {
		t.Error("method should affect cache key")
	}
	d := MustRequest("GET", "http://example.org/a?x=1")
	if a.CacheKey() == d.CacheKey() {
		t.Error("query should affect cache key")
	}
}

func TestRequestClone(t *testing.T) {
	r := MustRequest("POST", "http://example.org/submit")
	r.Header.Set("X-Test", "1")
	r.Body = []byte("payload")
	r.ClientIP = "10.0.0.1"
	cp := r.Clone()
	cp.Header.Set("X-Test", "2")
	cp.Body[0] = 'X'
	cp.URL.Path = "/other"
	if r.Header.Get("X-Test") != "1" {
		t.Error("clone header mutation leaked")
	}
	if string(r.Body) != "payload" {
		t.Error("clone body mutation leaked")
	}
	if r.URL.Path != "/submit" {
		t.Error("clone URL mutation leaked")
	}
}

func TestSetURLMarksRedirect(t *testing.T) {
	r := MustRequest("GET", "http://a.example.org/x")
	if err := r.SetURL("http://a.example.org/x"); err != nil {
		t.Fatal(err)
	}
	if r.Redirected {
		t.Error("same URL should not mark redirect")
	}
	if err := r.SetURL("http://b.example.org/y"); err != nil {
		t.Fatal(err)
	}
	if !r.Redirected {
		t.Error("changed URL should mark redirect")
	}
	if err := r.SetURL("://bad"); err == nil {
		t.Error("expected error for invalid URL")
	}
}

func TestTerminate(t *testing.T) {
	r := MustRequest("GET", "http://content.nejm.org/cgi/reprint/1.pdf")
	resp := r.Terminate(401)
	if resp.Status != 401 {
		t.Errorf("status = %d", resp.Status)
	}
	if r.Terminated() != resp {
		t.Error("Terminated() should return the recorded response")
	}
	if !strings.Contains(string(resp.Body), "401") {
		t.Error("body should mention the status code")
	}
	r.ClearTermination()
	if r.Terminated() != nil {
		t.Error("ClearTermination should remove the response")
	}
	// Invalid status codes map to 500.
	if got := r.Terminate(9999).Status; got != 500 {
		t.Errorf("invalid status mapped to %d, want 500", got)
	}
}

func TestCookies(t *testing.T) {
	r := MustRequest("GET", "http://example.org/")
	if _, ok := r.Cookie("session"); ok {
		t.Error("unexpected cookie")
	}
	r.SetCookie("session", "abc123")
	r.SetCookie("student", "42")
	if v, ok := r.Cookie("session"); !ok || v != "abc123" {
		t.Errorf("session cookie = %q, %v", v, ok)
	}
	if v, ok := r.Cookie("student"); !ok || v != "42" {
		t.Errorf("student cookie = %q, %v", v, ok)
	}
}

func TestResponseBodyAndContentType(t *testing.T) {
	r := NewResponse(200)
	r.Header.Set("Content-Type", "text/html; charset=utf-8")
	r.SetBodyString("<html></html>")
	if r.ContentType() != "text/html" {
		t.Errorf("ContentType = %q", r.ContentType())
	}
	if r.Size() != 13 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Header.Get("Content-Length") != "13" {
		t.Errorf("Content-Length = %q", r.Header.Get("Content-Length"))
	}
}

func TestResponseClone(t *testing.T) {
	r := NewTextResponse(200, "hello")
	r.Via = "node-1"
	cp := r.Clone()
	cp.Body[0] = 'X'
	cp.Header.Set("X-New", "1")
	if string(r.Body) != "hello" {
		t.Error("clone body mutation leaked")
	}
	if r.Header.Get("X-New") != "" {
		t.Error("clone header mutation leaked")
	}
	if cp.Via != "node-1" {
		t.Error("Via not copied")
	}
}

func TestCacheable(t *testing.T) {
	cases := []struct {
		status int
		cc     string
		want   bool
	}{
		{200, "", true},
		{200, "max-age=60", true},
		{200, "no-store", false},
		{200, "private", false},
		{200, "no-cache", false},
		{404, "", true},
		{500, "", false},
		{302, "", false},
	}
	for _, c := range cases {
		r := NewResponse(c.status)
		if c.cc != "" {
			r.Header.Set("Cache-Control", c.cc)
		}
		if got := r.Cacheable(); got != c.want {
			t.Errorf("Cacheable(status=%d, cc=%q) = %v, want %v", c.status, c.cc, got, c.want)
		}
	}
}

func TestFreshFor(t *testing.T) {
	now := time.Now()
	r := NewResponse(200)
	if r.FreshFor(now) != 0 {
		t.Error("no headers should mean zero freshness")
	}
	r.SetMaxAge(300)
	if r.FreshFor(now) != 300*time.Second {
		t.Errorf("max-age freshness = %v", r.FreshFor(now))
	}
	r2 := NewResponse(200)
	r2.SetAbsoluteExpiry(now.Add(90 * time.Second))
	fresh := r2.FreshFor(now)
	if fresh < 85*time.Second || fresh > 95*time.Second {
		t.Errorf("Expires freshness = %v", fresh)
	}
	r3 := NewResponse(200)
	r3.SetAbsoluteExpiry(now.Add(-10 * time.Second))
	if r3.FreshFor(now) != 0 {
		t.Error("expired response should have zero freshness")
	}
	r4 := NewResponse(200)
	r4.Header.Set("Cache-Control", "public, s-maxage=120")
	if r4.FreshFor(now) != 120*time.Second {
		t.Errorf("s-maxage freshness = %v", r4.FreshFor(now))
	}
}

func TestHTTPConversion(t *testing.T) {
	// Round-trip through net/http types using a live test server.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Forwarded-Test") != "yes" {
			t.Error("header not forwarded")
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Header().Set("Cache-Control", "max-age=60")
		w.WriteHeader(200)
		if _, err := w.Write([]byte("origin content")); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	req := MustRequest("GET", srv.URL+"/resource")
	req.Header.Set("X-Forwarded-Test", "yes")
	req.Header.Set("Connection", "keep-alive") // hop-by-hop: must be dropped
	hr, err := req.ToHTTPRequest()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Header.Get("Connection") != "" {
		t.Error("hop-by-hop header should be dropped")
	}
	hresp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := FromHTTPResponse(hresp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "origin content" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.FreshFor(time.Now()) != 60*time.Second {
		t.Error("cache-control lost in conversion")
	}
}

func TestFromHTTPRequest(t *testing.T) {
	hr := httptest.NewRequest("POST", "http://site.example.org/form", strings.NewReader("a=1&b=2"))
	hr.RemoteAddr = "192.168.1.50:54321"
	hr.Header.Set("User-Agent", "test-agent")
	req, err := FromHTTPRequest(hr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if req.ClientIP != "192.168.1.50" {
		t.Errorf("ClientIP = %q", req.ClientIP)
	}
	if string(req.Body) != "a=1&b=2" {
		t.Errorf("Body = %q", req.Body)
	}
	if req.Header.Get("User-Agent") != "test-agent" {
		t.Error("header lost")
	}
}

func TestFromHTTPRequestBodyLimit(t *testing.T) {
	hr := httptest.NewRequest("POST", "http://site.example.org/upload", strings.NewReader(strings.Repeat("x", 1000)))
	if _, err := FromHTTPRequest(hr, 100); err == nil {
		t.Error("expected body limit error")
	}
	if _, err := FromHTTPRequest(httptest.NewRequest("POST", "http://x.org/", strings.NewReader("small")), 100); err != nil {
		t.Errorf("small body should pass: %v", err)
	}
}

func TestWriteTo(t *testing.T) {
	resp := NewHTMLResponse(201, "<p>created</p>")
	resp.Header.Set("X-Custom", "v")
	rec := httptest.NewRecorder()
	if err := resp.WriteTo(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 201 {
		t.Errorf("code = %d", rec.Code)
	}
	if rec.Header().Get("X-Custom") != "v" {
		t.Error("custom header lost")
	}
	if rec.Body.String() != "<p>created</p>" {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestHeaderFingerprint(t *testing.T) {
	h := make(http.Header)
	h.Set("Cache-Control", "max-age=60")
	h.Set("Expires", "Thu, 01 Jan 2026 00:00:00 GMT")
	a := HeaderFingerprint(h, "Cache-Control", "Expires")
	b := HeaderFingerprint(h, "Expires", "Cache-Control")
	if a != b {
		t.Error("fingerprint should be order-independent")
	}
	h.Set("Cache-Control", "max-age=120")
	if HeaderFingerprint(h, "Cache-Control", "Expires") == a {
		t.Error("fingerprint should change when header value changes")
	}
}

func TestPropertyCacheKeyDeterministic(t *testing.T) {
	f := func(path string) bool {
		clean := make([]rune, 0, len(path))
		for _, r := range path {
			if r > 32 && r < 127 && r != '#' && r != '?' && r != '%' {
				clean = append(clean, r)
			}
		}
		p := "/" + string(clean)
		a, err1 := NewRequest("GET", "http://example.org"+p)
		b, err2 := NewRequest("GET", "http://example.org"+p)
		if err1 != nil || err2 != nil {
			return true // skip unparsable paths
		}
		return a.CacheKey() == b.CacheKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneIndependence(t *testing.T) {
	f := func(body []byte) bool {
		r := NewResponse(200)
		r.SetBody(append([]byte(nil), body...))
		cp := r.Clone()
		for i := range cp.Body {
			cp.Body[i] = 0
		}
		return string(r.Body) == string(body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
