// Package largeobject is the chunked large-object tier: responses above a
// threshold are split into fixed-size content-addressed segments (SHA-256
// ids) stored via fixed-size slot allocation on a store.FS, with a
// per-object manifest (segment list + validators + total length) as the
// cache entry. The design follows NDN-DPDK's disk-backed content store —
// fixed-size slots over a block device, file-server workload — translated to
// the narrow store.FS surface: one slot per file, CRC-framed, scan-rebuilt
// at open, soft state (no fsync; a torn slot fails its checksum and is
// reclaimed).
//
// The tier itself is node-local. Replication of hot-segment *indexes* (who
// holds which segments of which object — not the bodies) rides the overlay's
// hard-state records; the Index codec here defines that record's payload.
package largeobject

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"sort"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/wire"
)

// SegIDLen is the byte length of a segment id (SHA-256).
const SegIDLen = 32

// SegID is the content address of one segment: the SHA-256 of its bytes.
type SegID [SegIDLen]byte

// HashSegment returns the content address of data.
func HashSegment(data []byte) SegID { return sha256.Sum256(data) }

// String returns the id's short hex form for logs.
func (id SegID) String() string { return fmt.Sprintf("%x", id[:8]) }

// Manifest describes one chunked object: the ordered segment list, the
// validators and headers of the 200 it was chunked from, and the total
// instance length. A manifest whose Segments list is still shorter than
// NumSegments is a partially ingested object (Complete reports this);
// readers can serve the ingested prefix and fetch the rest by byte range.
type Manifest struct {
	// Key is the cache key of the object ("GET http://...").
	Key string
	// Status is the status of the chunked response (always 200 today).
	Status int
	// Header carries the origin response headers, including validators
	// (ETag, Last-Modified) used for revalidation.
	Header http.Header
	// TotalLen is the full instance length in bytes.
	TotalLen int64
	// SegSize is the segment size; every segment except the last is exactly
	// this long.
	SegSize int64
	// Segments lists the content addresses of the ingested prefix, in
	// order. len(Segments) == NumSegments() once ingest completes.
	Segments []SegID
	// Fetched is when the object was obtained from the origin.
	Fetched time.Time
}

// NumSegments returns the number of segments the complete object has.
func (m *Manifest) NumSegments() int {
	if m.SegSize <= 0 || m.TotalLen <= 0 {
		return 0
	}
	return int((m.TotalLen + m.SegSize - 1) / m.SegSize)
}

// Complete reports whether every segment id is known.
func (m *Manifest) Complete() bool { return len(m.Segments) == m.NumSegments() }

// SegmentSpan returns the byte range [from, to) that segment i covers.
func (m *Manifest) SegmentSpan(i int) (from, to int64) {
	from = int64(i) * m.SegSize
	to = from + m.SegSize
	if to > m.TotalLen {
		to = m.TotalLen
	}
	return from, to
}

// Clone returns a deep copy of the manifest.
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Header = cloneHeader(m.Header)
	cp.Segments = append([]SegID(nil), m.Segments...)
	return &cp
}

func cloneHeader(h http.Header) http.Header {
	if h == nil {
		return nil
	}
	out := make(http.Header, len(h))
	for k, vs := range h {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

// manifestVersion is the first byte of every encoded manifest and index, so
// the format can evolve without a flag day.
const manifestVersion = 1

// maxManifestSegments bounds decoded segment lists: with the default 1 MiB
// segments this is an 8 TiB object, far past anything the tier serves, and
// it keeps a malformed length prefix from allocating unbounded memory.
const maxManifestSegments = 1 << 23

// AppendManifest appends m's binary encoding (no magic byte):
//
//	byte(version) str(key) uvarint(status) header varint(totalLen)
//	uvarint(segSize) uvarint(nsegs) raw32(segid)... time(fetched)
func AppendManifest(buf []byte, m *Manifest) []byte {
	buf = append(buf, manifestVersion)
	buf = wire.AppendString(buf, m.Key)
	buf = wire.AppendUvarint(buf, uint64(m.Status))
	buf = httpmsg.AppendHeader(buf, m.Header)
	buf = wire.AppendVarint(buf, m.TotalLen)
	buf = wire.AppendUvarint(buf, uint64(m.SegSize))
	buf = wire.AppendUvarint(buf, uint64(len(m.Segments)))
	for i := range m.Segments {
		buf = wire.AppendRaw(buf, m.Segments[i][:])
	}
	return wire.AppendTime(buf, m.Fetched)
}

// ReadManifest reads one AppendManifest-encoded manifest and validates its
// internal consistency (a decoded manifest always has sane geometry).
func ReadManifest(r *wire.Reader) (*Manifest, error) {
	ver, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("largeobject: manifest version %d: %w", ver, wire.ErrMalformed)
	}
	m := &Manifest{}
	if m.Key, err = r.String(); err != nil {
		return nil, err
	}
	status, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	m.Status = int(status)
	if m.Header, err = httpmsg.ReadHeader(r); err != nil {
		return nil, err
	}
	if m.TotalLen, err = r.Varint(); err != nil {
		return nil, err
	}
	segSize, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	m.SegSize = int64(segSize)
	nsegs, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nsegs > maxManifestSegments || int(nsegs)*SegIDLen > r.Len() {
		return nil, wire.ErrMalformed
	}
	m.Segments = make([]SegID, nsegs)
	for i := range m.Segments {
		raw, err := r.Raw(SegIDLen)
		if err != nil {
			return nil, err
		}
		copy(m.Segments[i][:], raw)
	}
	if m.Fetched, err = r.Time(); err != nil {
		return nil, err
	}
	if m.Key == "" || m.Status == 0 || m.TotalLen < 0 || m.SegSize <= 0 {
		return nil, wire.ErrMalformed
	}
	if len(m.Segments) > m.NumSegments() {
		return nil, wire.ErrMalformed
	}
	return m, nil
}

// EncodeManifest renders m as a self-describing payload (magic byte first).
func EncodeManifest(m *Manifest) []byte {
	buf := make([]byte, 0, 128+len(m.Segments)*SegIDLen+16*len(m.Header))
	buf = append(buf, wire.Magic)
	return AppendManifest(buf, m)
}

// DecodeManifest parses an EncodeManifest payload.
func DecodeManifest(payload []byte) (*Manifest, error) {
	if len(payload) == 0 || payload[0] != wire.Magic {
		return nil, wire.ErrMalformed
	}
	r := wire.Reader{Buf: payload, Off: 1}
	return ReadManifest(&r)
}

// ---------------------------------------------------------------------------
// Replicated segment index: manifest + who holds which segments
// ---------------------------------------------------------------------------

// Index is the hard-state record replicated through the overlay for one hot
// object: the manifest plus, per node, a bitmap of the segments that node
// held when it last published. Bodies never replicate — a range reader on
// any replica uses the index to find a peer already holding segment N.
type Index struct {
	Manifest *Manifest
	// Holders maps node name to the set of segment ordinals resident there.
	Holders map[string]BitSet
}

// EncodeIndex renders idx deterministically (holders in sorted node order),
// magic byte first, so LWW replicas converge to identical bytes.
func EncodeIndex(idx *Index) []byte {
	buf := make([]byte, 0, 256+len(idx.Manifest.Segments)*SegIDLen)
	buf = append(buf, wire.Magic)
	buf = AppendManifest(buf, idx.Manifest)
	names := make([]string, 0, len(idx.Holders))
	for n := range idx.Holders {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = wire.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = wire.AppendString(buf, n)
		buf = appendBitSet(buf, idx.Holders[n])
	}
	return buf
}

// DecodeIndex parses an EncodeIndex payload.
func DecodeIndex(payload []byte) (*Index, error) {
	if len(payload) == 0 || payload[0] != wire.Magic {
		return nil, wire.ErrMalformed
	}
	r := wire.Reader{Buf: payload, Off: 1}
	m, err := ReadManifest(&r)
	if err != nil {
		return nil, err
	}
	idx := &Index{Manifest: m}
	nholders, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nholders > uint64(r.Len()) {
		return nil, wire.ErrMalformed
	}
	if nholders > 0 {
		idx.Holders = make(map[string]BitSet, nholders)
	}
	for i := uint64(0); i < nholders; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		bs, err := readBitSet(&r)
		if err != nil {
			return nil, err
		}
		idx.Holders[name] = bs
	}
	return idx, nil
}

// ---------------------------------------------------------------------------
// BitSet: segment residency bitmap
// ---------------------------------------------------------------------------

// BitSet is a growable bitmap of segment ordinals.
type BitSet []uint64

// Set returns the bitset with bit i set (growing as needed).
func (b BitSet) Set(i int) BitSet {
	w := i >> 6
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(i) & 63)
	return b
}

// Has reports whether bit i is set.
func (b BitSet) Has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet { return append(BitSet(nil), b...) }

func appendBitSet(buf []byte, b BitSet) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(b)))
	for _, w := range b {
		buf = wire.AppendUvarint(buf, w)
	}
	return buf
}

func readBitSet(r *wire.Reader) (BitSet, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, wire.ErrMalformed
	}
	if n == 0 {
		return nil, nil
	}
	b := make(BitSet, n)
	for i := range b {
		if b[i], err = r.Uvarint(); err != nil {
			return nil, err
		}
	}
	return b, nil
}
