package largeobject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"nakika/internal/store"
)

func testBody(n int) []byte {
	b := make([]byte, n)
	r := rand.New(rand.NewSource(42))
	r.Read(b)
	return b
}

func TestManifestCodecRoundTrip(t *testing.T) {
	m := &Manifest{
		Key:      "GET http://example.org/big.bin",
		Status:   200,
		Header:   http.Header{"Etag": {`"v1"`}, "Content-Type": {"application/octet-stream"}},
		TotalLen: 2_500_000,
		SegSize:  1 << 20,
		Fetched:  time.Unix(0, 1754600000000000000),
	}
	for i := 0; i < m.NumSegments(); i++ {
		m.Segments = append(m.Segments, HashSegment([]byte{byte(i)}))
	}
	if !m.Complete() {
		t.Fatal("manifest should be complete")
	}
	dec, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Key != m.Key || dec.TotalLen != m.TotalLen || dec.SegSize != m.SegSize ||
		len(dec.Segments) != len(m.Segments) || dec.Segments[2] != m.Segments[2] ||
		dec.Header.Get("Etag") != `"v1"` || !dec.Fetched.Equal(m.Fetched) {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
}

func TestManifestGeometry(t *testing.T) {
	m := &Manifest{TotalLen: 10, SegSize: 4}
	if n := m.NumSegments(); n != 3 {
		t.Fatalf("NumSegments = %d", n)
	}
	if from, to := m.SegmentSpan(2); from != 8 || to != 10 {
		t.Fatalf("SegmentSpan(2) = [%d,%d)", from, to)
	}
}

func TestManifestDecodeRejectsGarbage(t *testing.T) {
	good := EncodeManifest(&Manifest{Key: "k", Status: 200, TotalLen: 8, SegSize: 4,
		Segments: []SegID{HashSegment([]byte("a")), HashSegment([]byte("b"))}})
	for i := range good {
		if _, err := DecodeManifest(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// More segment ids than the geometry allows must be rejected.
	bad := &Manifest{Key: "k", Status: 200, TotalLen: 4, SegSize: 4,
		Segments: []SegID{{1}, {2}, {3}}}
	if _, err := DecodeManifest(EncodeManifest(bad)); err == nil {
		t.Fatal("oversized segment list accepted")
	}
}

func TestIndexCodecRoundTripDeterministic(t *testing.T) {
	idx := &Index{
		Manifest: &Manifest{Key: "k", Status: 200, TotalLen: 8, SegSize: 4,
			Segments: []SegID{HashSegment([]byte("a")), HashSegment([]byte("b"))}},
		Holders: map[string]BitSet{
			"node-b": BitSet{}.Set(1),
			"node-a": BitSet{}.Set(0).Set(1),
		},
	}
	enc1 := EncodeIndex(idx)
	enc2 := EncodeIndex(idx)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("index encoding not deterministic")
	}
	dec, err := DecodeIndex(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Holders["node-a"].Has(1) || dec.Holders["node-b"].Has(0) {
		t.Fatalf("holders mismatch: %+v", dec.Holders)
	}
	if dec.Manifest.Key != "k" {
		t.Fatal("manifest lost")
	}
}

func TestBitSet(t *testing.T) {
	var b BitSet
	b = b.Set(0).Set(63).Set(64).Set(130)
	for _, i := range []int{0, 63, 64, 130} {
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Has(1) || b.Has(129) || b.Has(10_000) {
		t.Fatal("phantom bits")
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
}

func TestSlabPutGetEvict(t *testing.T) {
	fs := store.NewMemFS()
	slab, err := NewSlab(fs, 64, 3*64) // 3 slots
	if err != nil {
		t.Fatal(err)
	}
	segs := make([][]byte, 4)
	ids := make([]SegID, 4)
	for i := range segs {
		segs[i] = bytes.Repeat([]byte{byte('a' + i)}, 64)
		ids[i] = HashSegment(segs[i])
		if err := slab.Put(ids[i], segs[i]); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			// Keep segment 0 hot so eviction hits segment 1.
			slab.Get(ids[0])
		}
	}
	if _, ok := slab.Get(ids[1]); ok {
		t.Fatal("LRU victim still resident")
	}
	for _, i := range []int{0, 2, 3} {
		got, ok := slab.Get(ids[i])
		if !ok || !bytes.Equal(got, segs[i]) {
			t.Fatalf("segment %d lost or corrupt", i)
		}
	}
	st := slab.Stats()
	if st.Evictions != 1 || st.Used != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSlabConcurrentPutGetKeepsSegments: a Get racing a Put must never
// unmap the slot under the writer — a Put that returned success stays
// retrievable. Before slot writes were published after completion, the
// reader could misread the in-flight frame as corruption, free the slot,
// and silently lose the segment (or hand the slot to a second writer).
func TestSlabConcurrentPutGetKeepsSegments(t *testing.T) {
	const nSegs = 8
	fs := store.NewMemFS()
	slab, err := NewSlab(fs, 256, nSegs*256) // exactly one slot per segment
	if err != nil {
		t.Fatal(err)
	}
	segs := make([][]byte, nSegs)
	ids := make([]SegID, nSegs)
	for i := range segs {
		segs[i] = bytes.Repeat([]byte{byte('a' + i)}, 256)
		ids[i] = HashSegment(segs[i])
	}
	var wg sync.WaitGroup
	for i := range segs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := slab.Put(ids[i], segs[i]); err != nil {
				t.Error(err)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Hammer reads of every id while the writers run; misses are
			// fine (not yet published), corruption-induced unmaps are not.
			for j := 0; j < 50; j++ {
				if data, ok := slab.Get(ids[(i+j)%nSegs]); ok && !bytes.Equal(data, segs[(i+j)%nSegs]) {
					t.Errorf("segment %d corrupt", (i+j)%nSegs)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// No evictions were possible (one slot per segment), so every Put that
	// succeeded must still be resident and intact.
	for i := range segs {
		data, ok := slab.Get(ids[i])
		if !ok {
			t.Fatalf("segment %d lost after concurrent put/get", i)
		}
		if !bytes.Equal(data, segs[i]) {
			t.Fatalf("segment %d corrupt after concurrent put/get", i)
		}
	}
}

func TestSlabScanRebuildAndCorruption(t *testing.T) {
	fs := store.NewMemFS()
	slab, err := NewSlab(fs, 64, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("s"), 64)
	id := HashSegment(data)
	if err := slab.Put(id, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt a second slot on "disk".
	other := bytes.Repeat([]byte("t"), 64)
	otherID := HashSegment(other)
	if err := slab.Put(otherID, other); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("slot-")
	if len(names) != 2 {
		t.Fatalf("slot files = %v", names)
	}
	f, _ := fs.Create(names[1])
	f.Write([]byte("torn"))
	f.Close()

	// Reopen: intact slot survives, torn slot is reclaimed.
	slab2, err := NewSlab(fs, 64, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := slab2.Get(id)
	surviving := ok && bytes.Equal(got, data)
	got2, ok2 := slab2.Get(otherID)
	surviving2 := ok2 && bytes.Equal(got2, other)
	if !surviving && !surviving2 {
		t.Fatal("both slots lost after rescan")
	}
	if slab2.Stats().Used != 1 {
		t.Fatalf("used = %d, want 1 (torn slot reclaimed)", slab2.Stats().Used)
	}
}

func TestTierIngestAndStream(t *testing.T) {
	fs := store.NewMemFS()
	tier, err := OpenTier(fs, 1024, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	body := testBody(10_000) // 10 segments, last partial
	m, err := tier.IngestBody("GET http://o/x", 200, http.Header{"Etag": {"e"}}, time.Now(), body)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete() || m.NumSegments() != 10 {
		t.Fatalf("manifest: %+v", m)
	}
	if got := tier.Resident(m).Count(); got != 10 {
		t.Fatalf("resident = %d", got)
	}
	stream := tier.NewStream(m, nil)
	if stream.TotalLen() != 10_000 {
		t.Fatalf("TotalLen = %d", stream.TotalLen())
	}
	for _, span := range [][2]int64{{0, 10_000}, {0, 1}, {9_999, 10_000}, {1023, 1025}, {3000, 7500}} {
		rc, err := stream.Range(span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("range [%d,%d): %v", span[0], span[1], err)
		}
		if !bytes.Equal(got, body[span[0]:span[1]]) {
			t.Fatalf("range [%d,%d) mismatch", span[0], span[1])
		}
	}
	if _, err := stream.Range(0, 10_001); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
}

func TestTierPersistsCompleteManifests(t *testing.T) {
	fs := store.NewMemFS()
	tier, _ := OpenTier(fs, 1024, 64*1024)
	body := testBody(4096)
	if _, err := tier.IngestBody("GET http://o/persist", 200, nil, time.Now(), body); err != nil {
		t.Fatal(err)
	}
	// An incomplete manifest must not persist.
	incomplete := &Manifest{Key: "GET http://o/partial", Status: 200, TotalLen: 4096, SegSize: 1024}
	if err := tier.PutManifest(incomplete); err != nil {
		t.Fatal(err)
	}

	tier2, err := OpenTier(fs, 1024, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tier2.Manifest("GET http://o/persist"); !ok {
		t.Fatal("complete manifest lost across reopen")
	}
	if _, ok := tier2.Manifest("GET http://o/partial"); ok {
		t.Fatal("incomplete manifest resurrected")
	}
	m, _ := tier2.Manifest("GET http://o/persist")
	rc, err := tier2.NewStream(m, nil).Range(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, body[100:2000]) {
		t.Fatalf("post-reopen range mismatch: %v", err)
	}
}

// TestTierRefreshManifest: RefreshManifest renews Fetched and merges the
// 304's headers without touching segment ids, and the renewal survives a
// reopen.
func TestTierRefreshManifest(t *testing.T) {
	fs := store.NewMemFS()
	tier, err := OpenTier(fs, 1024, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	body := testBody(5_000)
	hdr := http.Header{"Etag": {`"v1"`}, "Cache-Control": {"max-age=5"}}
	fetched := time.Unix(0, 1754600000000000000).UTC()
	m, err := tier.IngestBody("GET http://x/o", 200, hdr, fetched, body)
	if err != nil {
		t.Fatal(err)
	}
	renewed := fetched.Add(time.Hour)
	got, ok := tier.RefreshManifest("GET http://x/o", renewed, http.Header{"Cache-Control": {"max-age=90"}})
	if !ok {
		t.Fatal("refresh missed the manifest")
	}
	if !got.Fetched.Equal(renewed) || got.Header.Get("Cache-Control") != "max-age=90" ||
		got.Header.Get("Etag") != `"v1"` || len(got.Segments) != len(m.Segments) {
		t.Fatalf("refreshed manifest = %+v", got)
	}
	tier2, err := OpenTier(fs, 1024, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := tier2.Manifest("GET http://x/o")
	if !ok || !m2.Fetched.Equal(renewed) || m2.Header.Get("Cache-Control") != "max-age=90" {
		t.Fatalf("renewal not persisted: %+v", m2)
	}
	if _, ok := tier.RefreshManifest("GET http://x/none", renewed, nil); ok {
		t.Fatal("refresh of a missing manifest reported ok")
	}
}

func TestStreamFetchesMissingSegments(t *testing.T) {
	fs := store.NewMemFS()
	tier, _ := OpenTier(fs, 1000, 100*1000)
	body := testBody(5000)

	// Manifest known (say, adopted from a replica index) but no segments
	// resident: every read goes through the fetcher.
	m := &Manifest{Key: "GET http://o/remote", Status: 200, TotalLen: 5000, SegSize: 1000}
	for i := 0; i < 5; i++ {
		from, to := m.SegmentSpan(i)
		m.Segments = append(m.Segments, HashSegment(body[from:to]))
	}
	if err := tier.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	var fetched []int
	fetch := func(mf *Manifest, ord int) ([]byte, error) {
		fetched = append(fetched, ord)
		from, to := mf.SegmentSpan(ord)
		seg := body[from:to]
		tier.PutSegment(HashSegment(seg), seg)
		return seg, nil
	}
	rc, err := tier.NewStream(m, fetch).Range(1500, 3500)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, body[1500:3500]) {
		t.Fatalf("fetched range mismatch: %v", err)
	}
	if fmt.Sprint(fetched) != "[1 2 3]" {
		t.Fatalf("fetched segments %v, want only the covering ones", fetched)
	}

	// Second read: segments now resident, fetcher untouched.
	fetched = nil
	rc, _ = tier.NewStream(m, fetch).Range(1500, 3500)
	got, _ = io.ReadAll(rc)
	rc.Close()
	if !bytes.Equal(got, body[1500:3500]) || len(fetched) != 0 {
		t.Fatalf("warm read refetched %v", fetched)
	}
}

func TestStreamSeesSegmentsIngestedAfterCreation(t *testing.T) {
	fs := store.NewMemFS()
	tier, _ := OpenTier(fs, 100, 100*100)
	body := testBody(300)
	m := &Manifest{Key: "GET http://o/growing", Status: 200, TotalLen: 300, SegSize: 100}
	if err := tier.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	stream := tier.NewStream(m, nil) // snapshot taken before any segment exists
	for i := 0; i < 3; i++ {
		seg := body[i*100 : (i+1)*100]
		id := HashSegment(seg)
		if err := tier.PutSegment(id, seg); err != nil {
			t.Fatal(err)
		}
		if _, err := tier.AppendSegment(m.Key, i, id); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := stream.Range(0, 300)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("stream did not see grown manifest: %v", err)
	}
	cur, _ := tier.Manifest(m.Key)
	if !cur.Complete() {
		t.Fatal("manifest not complete after appends")
	}
}

// TestConcurrentRangeReaders drives many goroutines over one object with
// mixed resident/missing segments; run under -race in the nightly soak.
func TestConcurrentRangeReaders(t *testing.T) {
	fs := store.NewMemFS()
	tier, _ := OpenTier(fs, 512, 8*512) // small slab: constant eviction churn
	body := testBody(20 * 512)
	m := &Manifest{Key: "GET http://o/churn", Status: 200, TotalLen: int64(len(body)), SegSize: 512}
	for i := 0; i < m.NumSegments(); i++ {
		from, to := m.SegmentSpan(i)
		m.Segments = append(m.Segments, HashSegment(body[from:to]))
	}
	if err := tier.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	fetch := func(mf *Manifest, ord int) ([]byte, error) {
		from, to := mf.SegmentSpan(ord)
		seg := body[from:to]
		tier.PutSegment(mf.Segments[ord], seg)
		return seg, nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20; iter++ {
				from := rnd.Int63n(int64(len(body)))
				to := from + 1 + rnd.Int63n(int64(len(body))-from)
				rc, err := tier.NewStream(m, fetch).Range(from, to)
				if err != nil {
					errs <- err
					return
				}
				got, err := io.ReadAll(rc)
				rc.Close()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, body[from:to]) {
					errs <- fmt.Errorf("range [%d,%d) corrupt", from, to)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
