package largeobject

import (
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/store"
)

// Tier is the node-local chunked large-object store: a manifest table over
// a segment slab. Complete manifests are persisted (atomically, one file per
// object) and rescanned at open; manifests still being ingested live only in
// memory — after a crash the object is simply refetched or adopted from a
// replica's index record, which is cheaper than recovering torn ingests.
// Segment bodies are soft state in the slab.
//
// Manifests handed out by the tier are shared and must be treated as
// immutable; every update goes through PutManifest/AppendSegment, which
// replace the stored value wholesale.
type Tier struct {
	fs      store.FS
	slab    *Slab
	segSize int64

	mu        sync.Mutex
	manifests map[string]*Manifest
}

// OpenTier opens (or creates) a tier on fs with the given segment size and
// slab byte capacity, rescanning surviving manifests and slots.
func OpenTier(fs store.FS, segSize, capacity int64) (*Tier, error) {
	slab, err := NewSlab(fs, segSize, capacity)
	if err != nil {
		return nil, err
	}
	t := &Tier{
		fs:        fs,
		slab:      slab,
		segSize:   segSize,
		manifests: make(map[string]*Manifest),
	}
	names, err := fs.List("man-")
	if err != nil {
		return nil, fmt.Errorf("largeobject: scan manifests: %w", err)
	}
	for _, name := range names {
		raw, err := store.ReadAll(fs, name)
		if err != nil {
			continue
		}
		m, err := DecodeManifest(raw)
		if err != nil || !m.Complete() {
			fs.Remove(name)
			continue
		}
		t.manifests[m.Key] = m
	}
	return t, nil
}

// SegSize returns the tier's segment size.
func (t *Tier) SegSize() int64 { return t.segSize }

func manifestName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return fmt.Sprintf("man-%x.man", sum[:12])
}

// Manifest returns the current manifest for key, shared (do not mutate).
func (t *Tier) Manifest(key string) (*Manifest, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.manifests[key]
	return m, ok
}

// Len returns the number of manifests in the table.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.manifests)
}

// PutManifest installs m (a private clone is stored). Complete manifests are
// persisted atomically; incomplete ones stay memory-only.
func (t *Tier) PutManifest(m *Manifest) error {
	cp := m.Clone()
	t.mu.Lock()
	t.manifests[cp.Key] = cp
	t.mu.Unlock()
	if !cp.Complete() {
		return nil
	}
	return store.WriteAtomic(t.fs, manifestName(cp.Key), EncodeManifest(cp))
}

// AppendSegment records id as the next ingested segment of key's manifest,
// returning the updated manifest. It is a no-op if ord is not the next
// segment ordinal (concurrent ingests race benignly).
func (t *Tier) AppendSegment(key string, ord int, id SegID) (*Manifest, error) {
	t.mu.Lock()
	m, ok := t.manifests[key]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("largeobject: append segment: no manifest for %q", key)
	}
	if ord != len(m.Segments) {
		t.mu.Unlock()
		return m, nil
	}
	cp := m.Clone()
	cp.Segments = append(cp.Segments, id)
	t.manifests[key] = cp
	t.mu.Unlock()
	if cp.Complete() {
		return cp, store.WriteAtomic(t.fs, manifestName(key), EncodeManifest(cp))
	}
	return cp, nil
}

// RefreshManifest renews key's manifest after a successful revalidation:
// Fetched moves to fetched and hdr's headers (the 304's updated metadata —
// new Cache-Control, Expires, validators) overwrite the stored ones, per RFC
// 9111 §3.2. Segment ids and bodies are untouched. Returns the refreshed
// manifest, or false when key has no manifest.
func (t *Tier) RefreshManifest(key string, fetched time.Time, hdr http.Header) (*Manifest, bool) {
	t.mu.Lock()
	m, ok := t.manifests[key]
	if !ok {
		t.mu.Unlock()
		return nil, false
	}
	cp := m.Clone()
	cp.Fetched = fetched
	if cp.Header == nil {
		cp.Header = make(http.Header, len(hdr))
	}
	for k, vs := range hdr {
		cp.Header[k] = append([]string(nil), vs...)
	}
	t.manifests[key] = cp
	t.mu.Unlock()
	if cp.Complete() {
		// Persisting the renewed expiry is best-effort; a crash costs at
		// most one extra revalidation at recovery.
		store.WriteAtomic(t.fs, manifestName(key), EncodeManifest(cp))
	}
	return cp, true
}

// DeleteManifest drops key's manifest from the table and disk. Its segments
// age out of the slab by LRU.
func (t *Tier) DeleteManifest(key string) {
	t.mu.Lock()
	delete(t.manifests, key)
	t.mu.Unlock()
	t.fs.Remove(manifestName(key))
}

// PutSegment stores one segment body in the slab.
func (t *Tier) PutSegment(id SegID, data []byte) error { return t.slab.Put(id, data) }

// GetSegment returns one segment body from the slab.
func (t *Tier) GetSegment(id SegID) ([]byte, bool) { return t.slab.Get(id) }

// HasSegment reports slab residency without touching LRU state.
func (t *Tier) HasSegment(id SegID) bool { return t.slab.Contains(id) }

// Resident returns the bitmap of m's segments currently in the slab.
func (t *Tier) Resident(m *Manifest) BitSet { return t.slab.Resident(m) }

// IngestBody chunks a complete body into the tier: every segment is hashed
// and stored, and the complete manifest is installed and persisted. Used for
// whole bodies already in memory; streaming ingest drives AppendSegment
// instead.
func (t *Tier) IngestBody(key string, status int, header http.Header, fetched time.Time, body []byte) (*Manifest, error) {
	m := &Manifest{
		Key:      key,
		Status:   status,
		Header:   cloneHeader(header),
		TotalLen: int64(len(body)),
		SegSize:  t.segSize,
		Fetched:  fetched,
	}
	n := m.NumSegments()
	m.Segments = make([]SegID, 0, n)
	for i := 0; i < n; i++ {
		from, to := m.SegmentSpan(i)
		seg := body[from:to]
		id := HashSegment(seg)
		if err := t.slab.Put(id, seg); err != nil {
			return nil, err
		}
		m.Segments = append(m.Segments, id)
	}
	if err := t.PutManifest(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Stats is a point-in-time snapshot of tier telemetry.
type Stats struct {
	Manifests int
	Slab      SlabStats
}

// Stats returns current telemetry.
func (t *Tier) Stats() Stats {
	return Stats{Manifests: t.Len(), Slab: t.slab.Stats()}
}

// ---------------------------------------------------------------------------
// Lazy segment stream
// ---------------------------------------------------------------------------

// Fetcher resolves a missing segment: given the manifest and a segment
// ordinal, it returns the segment's bytes (typically after fetching them
// from a peer or the origin and storing them in the slab).
type Fetcher func(m *Manifest, ord int) ([]byte, error)

// NewStream returns a BodyStream over key's object. Reads resolve segments
// lazily: the slab first (consulting the *current* manifest, so segments
// ingested after the stream was created are visible), then fetch. A nil
// fetch serves only resident segments and errors on a gap.
func (t *Tier) NewStream(m *Manifest, fetch Fetcher) httpmsg.BodyStream {
	return &segStream{t: t, m: m, fetch: fetch}
}

type segStream struct {
	t     *Tier
	m     *Manifest
	fetch Fetcher
}

// current returns the freshest manifest for the stream's key: ingest may
// have appended segment ids since the stream was built.
func (ss *segStream) current() *Manifest {
	if m, ok := ss.t.Manifest(ss.m.Key); ok {
		return m
	}
	return ss.m
}

func (ss *segStream) TotalLen() int64 { return ss.m.TotalLen }

// Progress reports the object's total segment count and how many are
// resident in the slab right now — execution traces surface it so operators
// can see how much of a streamed response was served locally.
func (ss *segStream) Progress() (segments, resident int) {
	m := ss.current()
	return m.NumSegments(), ss.t.Resident(m).Count()
}

func (ss *segStream) Range(from, to int64) (io.ReadCloser, error) {
	if from < 0 || to > ss.m.TotalLen || from > to {
		return nil, fmt.Errorf("largeobject: range [%d,%d) outside %d-byte object", from, to, ss.m.TotalLen)
	}
	return &segReader{ss: ss, pos: from, end: to}, nil
}

// segReader reads [pos, end), pulling one segment at a time.
type segReader struct {
	ss       *segStream
	pos, end int64
	cur      []byte // bytes of the segment containing pos, full segment
	curOrd   int
	closed   bool
}

func (r *segReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("largeobject: read after close")
	}
	if r.pos >= r.end {
		return 0, io.EOF
	}
	ord := int(r.pos / r.ss.m.SegSize)
	if r.cur == nil || ord != r.curOrd {
		data, err := r.load(ord)
		if err != nil {
			return 0, err
		}
		r.cur, r.curOrd = data, ord
	}
	segStart := int64(ord) * r.ss.m.SegSize
	off := r.pos - segStart
	avail := int64(len(r.cur)) - off
	if avail <= 0 {
		return 0, fmt.Errorf("largeobject: segment %d short: have %d bytes, need offset %d", ord, len(r.cur), off)
	}
	want := r.end - r.pos
	if avail > want {
		avail = want
	}
	n := copy(p, r.cur[off:off+avail])
	r.pos += int64(n)
	return n, nil
}

// load returns segment ord's bytes: slab first (id known), then fetch.
func (r *segReader) load(ord int) ([]byte, error) {
	m := r.ss.current()
	if ord < len(m.Segments) {
		if data, ok := r.ss.t.GetSegment(m.Segments[ord]); ok {
			return data, nil
		}
	}
	if r.ss.fetch == nil {
		return nil, fmt.Errorf("largeobject: segment %d of %q not resident", ord, m.Key)
	}
	data, err := r.ss.fetch(m, ord)
	if err != nil {
		return nil, fmt.Errorf("largeobject: fetch segment %d of %q: %w", ord, m.Key, err)
	}
	from, to := m.SegmentSpan(ord)
	if int64(len(data)) != to-from {
		return nil, fmt.Errorf("largeobject: segment %d of %q: fetched %d bytes, want %d", ord, m.Key, len(data), to-from)
	}
	return data, nil
}

func (r *segReader) Close() error {
	r.closed = true
	r.cur = nil
	return nil
}
