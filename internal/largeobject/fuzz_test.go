package largeobject

import (
	"bytes"
	"testing"
)

// FuzzManifestDecode throws arbitrary bytes at the manifest and index
// decoders: they must never panic, and anything they accept must re-encode
// decodable (and, for manifests, geometrically sane).
func FuzzManifestDecode(f *testing.F) {
	seed := &Manifest{Key: "GET http://example.org/big", Status: 200,
		TotalLen: 3000, SegSize: 1024,
		Segments: []SegID{HashSegment([]byte("a")), HashSegment([]byte("b")), HashSegment([]byte("c"))}}
	f.Add(EncodeManifest(seed))
	f.Add(EncodeIndex(&Index{Manifest: seed, Holders: map[string]BitSet{"n1": BitSet{}.Set(0).Set(2)}}))
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if m, err := DecodeManifest(payload); err == nil {
			if m.SegSize <= 0 || m.TotalLen < 0 || len(m.Segments) > m.NumSegments() {
				t.Fatalf("accepted insane manifest: %+v", m)
			}
			re, err := DecodeManifest(EncodeManifest(m))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if re.Key != m.Key || re.TotalLen != m.TotalLen || len(re.Segments) != len(m.Segments) {
				t.Fatal("re-encode not faithful")
			}
		}
		if idx, err := DecodeIndex(payload); err == nil {
			enc := EncodeIndex(idx)
			re, err := DecodeIndex(enc)
			if err != nil {
				t.Fatalf("index re-decode failed: %v", err)
			}
			if !bytes.Equal(EncodeIndex(re), enc) {
				t.Fatal("index encoding not canonical")
			}
		}
	})
}
