package largeobject

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"nakika/internal/store"
	"nakika/internal/wire"
)

// Slab stores segments in fixed-size slots, one slot per file on a store.FS
// — the translation of NDN-DPDK's fixed-size slot allocation over a block
// device to the engine's narrow filesystem surface. Slots are soft state:
// nothing is fsynced, every frame is CRC-framed, and a torn or corrupt slot
// simply fails verification and is reclaimed at the next open.
//
// Allocation is free-list first, then LRU: when every slot is occupied the
// least recently touched segment is evicted and its slot overwritten.
type Slab struct {
	fs       store.FS
	segSize  int64
	maxSlots int

	mu    sync.Mutex
	bySeg map[SegID]int // segment id -> slot ordinal
	slots []slotState   // indexed by slot ordinal
	free  []int
	tick  uint64

	hits, misses, puts, evictions uint64
}

type slotState struct {
	used bool
	// writing marks a slot whose frame is still being written outside the
	// lock; it is invisible to bySeg, skipped by allocation, and published
	// only once the write completes.
	writing bool
	id      SegID
	tick    uint64
}

var slabCRC = crc32.MakeTable(crc32.Castagnoli)

// NewSlab opens (or creates) a slab on fs with the given segment size and
// total byte capacity, rescanning any surviving slot files. Capacity is
// rounded down to whole slots, minimum one.
func NewSlab(fs store.FS, segSize, capacity int64) (*Slab, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("largeobject: segment size %d", segSize)
	}
	maxSlots := int(capacity / segSize)
	if maxSlots < 1 {
		maxSlots = 1
	}
	s := &Slab{
		fs:       fs,
		segSize:  segSize,
		maxSlots: maxSlots,
		bySeg:    make(map[SegID]int),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

func slotName(i int) string { return fmt.Sprintf("slot-%06d.seg", i) }

// scan rebuilds the in-memory slot map from the slot files on fs, dropping
// anything that fails its checksum (torn writes from a crash).
func (s *Slab) scan() error {
	names, err := s.fs.List("slot-")
	if err != nil {
		return fmt.Errorf("largeobject: scan slab: %w", err)
	}
	inUse := make(map[int]bool, len(names))
	for _, name := range names {
		var ord int
		if _, err := fmt.Sscanf(name, "slot-%06d.seg", &ord); err != nil || ord < 0 {
			continue
		}
		id, data, err := s.readSlot(ord)
		if err != nil || int64(len(data)) > s.segSize {
			s.fs.Remove(name)
			continue
		}
		if ord >= len(s.slots) {
			grown := make([]slotState, ord+1)
			copy(grown, s.slots)
			s.slots = grown
		}
		s.slots[ord] = slotState{used: true, id: id, tick: s.tick}
		s.bySeg[id] = ord
		inUse[ord] = true
		s.tick++
	}
	if len(s.slots) < s.maxSlots {
		grown := make([]slotState, s.maxSlots)
		copy(grown, s.slots)
		s.slots = grown
	}
	for i := range s.slots {
		if !inUse[i] {
			s.free = append(s.free, i)
		}
	}
	return nil
}

// frame is: u32be(crc over the rest) raw32(segID) uvarint(len) data
func appendFrame(buf []byte, id SegID, data []byte) []byte {
	payload := make([]byte, 0, SegIDLen+10+len(data))
	payload = wire.AppendRaw(payload, id[:])
	payload = wire.AppendUvarint(payload, uint64(len(data)))
	payload = append(payload, data...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, slabCRC))
	return append(buf, payload...)
}

func parseFrame(raw []byte) (SegID, []byte, error) {
	var id SegID
	if len(raw) < 4+SegIDLen {
		return id, nil, wire.ErrMalformed
	}
	sum := binary.BigEndian.Uint32(raw[:4])
	payload := raw[4:]
	if crc32.Checksum(payload, slabCRC) != sum {
		return id, nil, fmt.Errorf("largeobject: slot checksum mismatch: %w", wire.ErrMalformed)
	}
	r := wire.Reader{Buf: payload}
	rawID, err := r.Raw(SegIDLen)
	if err != nil {
		return id, nil, err
	}
	copy(id[:], rawID)
	n, err := r.Uvarint()
	if err != nil || n != uint64(r.Len()) {
		return id, nil, wire.ErrMalformed
	}
	data, err := r.Raw(int(n))
	if err != nil {
		return id, nil, err
	}
	return id, data, nil
}

func (s *Slab) readSlot(ord int) (SegID, []byte, error) {
	raw, err := store.ReadAll(s.fs, slotName(ord))
	if err != nil {
		return SegID{}, nil, err
	}
	return parseFrame(raw)
}

// Put stores data under its content address, evicting the least recently
// used segment if no slot is free. Storing a segment larger than the slab's
// segment size is an error; storing an already resident segment only
// refreshes its LRU position.
//
// The slot is reserved under the lock but the id is published in bySeg only
// after the frame write completes: a Get must never read a slot mid-write —
// it would misread the torn frame as corruption and free the slot under the
// writer, letting a second Put reuse it concurrently.
func (s *Slab) Put(id SegID, data []byte) error {
	if int64(len(data)) > s.segSize {
		return fmt.Errorf("largeobject: segment %v len %d exceeds slot size %d", id, len(data), s.segSize)
	}
	s.mu.Lock()
	if ord, ok := s.bySeg[id]; ok {
		s.slots[ord].tick = s.tick
		s.tick++
		s.mu.Unlock()
		return nil
	}
	ord, evicted, ok := s.allocate()
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("largeobject: every slot has a write in flight")
	}
	s.slots[ord] = slotState{used: true, writing: true, id: id, tick: s.tick}
	s.tick++
	s.mu.Unlock()

	err := s.writeSlot(ord, id, data)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.slots[ord] = slotState{}
		s.free = append(s.free, ord)
		return fmt.Errorf("largeobject: write slot %d: %w", ord, err)
	}
	if _, dup := s.bySeg[id]; dup {
		// A concurrent Put of the same segment published first; its copy
		// serves, this slot frees (the duplicate frame is simply overwritten
		// by the slot's next tenant).
		s.slots[ord] = slotState{}
		s.free = append(s.free, ord)
		return nil
	}
	s.slots[ord].writing = false
	s.bySeg[id] = ord
	s.puts++
	if evicted {
		s.evictions++
	}
	return nil
}

// writeSlot writes one CRC-framed segment into ord's slot file.
func (s *Slab) writeSlot(ord int, id SegID, data []byte) error {
	f, err := s.fs.Create(slotName(ord))
	if err != nil {
		return err
	}
	if _, err := f.Write(appendFrame(nil, id, data)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// allocate picks a slot under s.mu: free list first, then LRU eviction.
// Slots with a write in flight are never candidates; ok is false when every
// slot is being written (only possible with more concurrent writers than
// slots).
func (s *Slab) allocate() (ord int, evicted, ok bool) {
	if n := len(s.free); n > 0 {
		ord = s.free[n-1]
		s.free = s.free[:n-1]
		return ord, false, true
	}
	victim, minTick := -1, uint64(0)
	for i := range s.slots {
		if s.slots[i].writing {
			continue
		}
		if !s.slots[i].used {
			return i, false, true
		}
		if victim < 0 || s.slots[i].tick < minTick {
			victim, minTick = i, s.slots[i].tick
		}
	}
	if victim < 0 {
		return 0, false, false
	}
	delete(s.bySeg, s.slots[victim].id)
	return victim, true, true
}

// Get returns the segment's bytes if resident and intact. A corrupt slot is
// dropped and reported as a miss.
func (s *Slab) Get(id SegID) ([]byte, bool) {
	s.mu.Lock()
	ord, ok := s.bySeg[id]
	if ok {
		s.slots[ord].tick = s.tick
		s.tick++
	}
	s.mu.Unlock()
	if !ok {
		s.miss()
		return nil, false
	}
	gotID, data, err := s.readSlot(ord)
	if err != nil || gotID != id {
		s.mu.Lock()
		if cur, ok := s.bySeg[id]; ok && cur == ord {
			delete(s.bySeg, id)
			s.slots[ord] = slotState{}
			s.free = append(s.free, ord)
		}
		s.mu.Unlock()
		s.miss()
		return nil, false
	}
	out := make([]byte, len(data))
	copy(out, data)
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return out, true
}

func (s *Slab) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Contains reports residency without touching LRU state or reading the slot.
func (s *Slab) Contains(id SegID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.bySeg[id]
	return ok
}

// Resident returns the bitmap of m's segments currently held by the slab.
func (s *Slab) Resident(m *Manifest) BitSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bs BitSet
	for i := range m.Segments {
		if _, ok := s.bySeg[m.Segments[i]]; ok {
			bs = bs.Set(i)
		}
	}
	return bs
}

// SlabStats is a point-in-time snapshot of slab telemetry.
type SlabStats struct {
	Slots, Used                   int
	Hits, Misses, Puts, Evictions uint64
}

// Stats returns current telemetry.
func (s *Slab) Stats() SlabStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	used := 0
	for i := range s.slots {
		if s.slots[i].used {
			used++
		}
	}
	return SlabStats{
		Slots: len(s.slots), Used: used,
		Hits: s.hits, Misses: s.misses, Puts: s.puts, Evictions: s.evictions,
	}
}
