package vocab

import (
	"bytes"
	"image"
	"image/gif"
	"image/jpeg"
	"image/png"
	"strings"

	"nakika/internal/script"
)

// installImageTransformer defines the ImageTransformer vocabulary used by
// the Figure 2 transcoding handler and the cell-phone image extension in
// Section 5.4: type(contentType), dimensions(body, type), and
// transform(body, type, outType, width, height).
//
// The paper's prototype used native image libraries behind SpiderMonkey; the
// reproduction uses Go's standard image, image/jpeg, image/png, and
// image/gif packages, which exercise the same decode → scale → re-encode
// code path.
func installImageTransformer(ctx *script.Context) {
	it := script.NewObject()
	it.ClassName = "ImageTransformer"

	it.Set("type", &script.Native{Name: "ImageTransformer.type", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		t := imageTypeFromContentType(script.ToString(args[0]))
		if t == "" {
			return script.NullValue(), nil
		}
		return script.Str(t), nil
	}})

	it.Set("dimensions", &script.Native{Name: "ImageTransformer.dimensions", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, script.ThrowString("ImageTransformer.dimensions: missing body")
		}
		data, err := bodyBytes(args[0])
		if err != nil {
			return nil, err
		}
		cfg, _, derr := image.DecodeConfig(bytes.NewReader(data))
		if derr != nil {
			return nil, script.ThrowString("ImageTransformer.dimensions: " + derr.Error())
		}
		out := script.NewObject()
		out.Set("x", script.Int(cfg.Width))
		out.Set("y", script.Int(cfg.Height))
		return out, nil
	}})

	it.Set("transform", &script.Native{Name: "ImageTransformer.transform", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 5 {
			return nil, script.ThrowString("ImageTransformer.transform: need body, type, outType, width, height")
		}
		data, err := bodyBytes(args[0])
		if err != nil {
			return nil, err
		}
		outType := strings.ToLower(script.ToString(args[2]))
		width := script.ToInt(args[3])
		height := script.ToInt(args[4])
		if width <= 0 || height <= 0 {
			return nil, script.ThrowString("ImageTransformer.transform: invalid target dimensions")
		}
		src, _, derr := image.Decode(bytes.NewReader(data))
		if derr != nil {
			return nil, script.ThrowString("ImageTransformer.transform: decode: " + derr.Error())
		}
		dst := scaleImage(src, width, height)
		var buf bytes.Buffer
		switch outType {
		case "jpeg", "jpg":
			err = jpeg.Encode(&buf, dst, &jpeg.Options{Quality: 80})
		case "png":
			err = png.Encode(&buf, dst)
		case "gif":
			err = gif.Encode(&buf, dst, nil)
		default:
			return nil, script.ThrowString("ImageTransformer.transform: unsupported output type " + outType)
		}
		if err != nil {
			return nil, script.ThrowString("ImageTransformer.transform: encode: " + err.Error())
		}
		return script.NewByteArray(buf.Bytes()), nil
	}})

	ctx.DefineGlobal("ImageTransformer", it)
}

// imageTypeFromContentType maps a MIME type to the transformer's short type
// name ("jpeg", "png", "gif").
func imageTypeFromContentType(ct string) string {
	ct = strings.ToLower(strings.TrimSpace(ct))
	if i := strings.Index(ct, ";"); i >= 0 {
		ct = ct[:i]
	}
	switch ct {
	case "image/jpeg", "image/jpg", "jpeg", "jpg":
		return "jpeg"
	case "image/png", "png":
		return "png"
	case "image/gif", "gif":
		return "gif"
	default:
		return ""
	}
}

// bodyBytes extracts raw bytes from a ByteArray or string argument.
func bodyBytes(v script.Value) ([]byte, error) {
	switch b := v.(type) {
	case *script.ByteArray:
		return b.Data, nil
	case script.String:
		return []byte(b), nil
	default:
		return nil, script.ThrowString("expected a ByteArray body")
	}
}

// scaleImage resizes src to width x height with nearest-neighbour sampling,
// which is sufficient for the transcoding workload (the paper's claim is
// about where transcoding runs, not about resampling quality).
func scaleImage(src image.Image, width, height int) image.Image {
	bounds := src.Bounds()
	dst := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		sy := bounds.Min.Y + y*bounds.Dy()/height
		for x := 0; x < width; x++ {
			sx := bounds.Min.X + x*bounds.Dx()/width
			dst.Set(x, y, src.At(sx, sy))
		}
	}
	return dst
}
