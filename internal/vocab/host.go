// Package vocab implements Na Kika's vocabularies: the native-code libraries
// exposed to scripts as global objects (Section 3.1 of the paper).
//
// Vocabularies are the only way for sandboxed scripts to reach beyond pure
// computation. The set provided here mirrors the paper's list: managing HTTP
// messages and state, accessing URL components, cookies, and the proxy
// cache, fetching other web resources, managing hard state, processing
// regular expressions (via the RegExp builtin in the script package), parsing
// and transforming XML documents, and transcoding images.
package vocab

import (
	"sync"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/script"
	"nakika/internal/trace"
)

// Host is the interface the edge node provides to vocabularies. All methods
// must be safe for concurrent use; vocabularies never retain references to a
// Host beyond a single pipeline execution.
type Host interface {
	// Fetch retrieves another web resource on behalf of a script (the
	// server-side administrative control stage interposes on these fetches
	// at the pipeline level, not here).
	Fetch(req *httpmsg.Request) (*httpmsg.Response, error)
	// CacheGet and CachePut give scripts access to the proxy cache, keyed by
	// arbitrary strings (the image transcoding extension caches transformed
	// content this way).
	CacheGet(key string) *httpmsg.Response
	CachePut(key string, resp *httpmsg.Response)
	// IsLocalClient reports whether ip belongs to the node's hosting
	// organization (System.isLocal in Figure 5).
	IsLocalClient(ip string) bool
	// Usage returns the owning site's normalized congestion contribution for
	// the named resource ("cpu", "memory", "bandwidth", "running-time",
	// "bytes-transferred"); scripts use it to adapt to congestion.
	Usage(site, resource string) float64
	// Log records a message in the site's edge-side access log.
	Log(site, message string)
	// Hard state operations, partitioned by site. The leading act is the
	// requesting pipeline's activity record (nil when no request is being
	// traced): the host stamps hedged reads, RPC fan-out, and lease
	// outcomes onto it, and propagates act.ID over any RPC the operation
	// fans out into.
	StateGet(act *trace.Act, site, key string) (string, bool)
	StatePut(act *trace.Act, site, key, value string) error
	StateDelete(act *trace.Act, site, key string)
	StateKeys(act *trace.Act, site string) []string
	// Propagate sends a replication message to the site's update channel on
	// other nodes via the reliable messaging layer.
	Propagate(site, message string) error
	// Distributed lease operations, partitioned by site (see
	// internal/core/lease.go). LeaseAcquire takes or renews the named
	// lease for this node (ttl <= 0 means the node default) and returns
	// the holdership's fencing token; FencedStatePut writes hard state
	// under that token, rejected once a newer holdership has written.
	LeaseAcquire(act *trace.Act, site, name string, ttl time.Duration) (uint64, bool)
	LeaseRenew(act *trace.Act, site, name string, token uint64, ttl time.Duration) bool
	LeaseRelease(act *trace.Act, site, name string, token uint64) bool
	FencedStatePut(act *trace.Act, site, key, value, name string, token uint64) error
	// NodeName identifies this edge node (diagnostics, Via headers).
	NodeName() string
	// Now returns the current (possibly virtual) time.
	Now() time.Time
}

// NopHost is a Host implementation whose operations all succeed trivially;
// tests and the quickstart example embed it and override what they need.
type NopHost struct{}

// Fetch returns 502 for every request.
func (NopHost) Fetch(req *httpmsg.Request) (*httpmsg.Response, error) {
	return httpmsg.NewTextResponse(502, "no upstream configured"), nil
}

// CacheGet always misses.
func (NopHost) CacheGet(key string) *httpmsg.Response { return nil }

// CachePut discards the response.
func (NopHost) CachePut(key string, resp *httpmsg.Response) {}

// IsLocalClient treats loopback and RFC1918 prefixes as local.
func (NopHost) IsLocalClient(ip string) bool {
	return ip == "127.0.0.1" || ip == "::1" ||
		hasPrefix(ip, "10.") || hasPrefix(ip, "192.168.")
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Usage reports zero consumption.
func (NopHost) Usage(site, resource string) float64 { return 0 }

// Log discards the message.
func (NopHost) Log(site, message string) {}

// StateGet always misses.
func (NopHost) StateGet(act *trace.Act, site, key string) (string, bool) { return "", false }

// StatePut discards the value.
func (NopHost) StatePut(act *trace.Act, site, key, value string) error { return nil }

// StateDelete is a no-op.
func (NopHost) StateDelete(act *trace.Act, site, key string) {}

// StateKeys returns nothing.
func (NopHost) StateKeys(act *trace.Act, site string) []string { return nil }

// Propagate discards the message.
func (NopHost) Propagate(site, message string) error { return nil }

// LeaseAcquire always grants token 1.
func (NopHost) LeaseAcquire(act *trace.Act, site, name string, ttl time.Duration) (uint64, bool) {
	return 1, true
}

// LeaseRenew always succeeds.
func (NopHost) LeaseRenew(act *trace.Act, site, name string, token uint64, ttl time.Duration) bool {
	return true
}

// LeaseRelease always succeeds.
func (NopHost) LeaseRelease(act *trace.Act, site, name string, token uint64) bool { return true }

// FencedStatePut discards the value.
func (NopHost) FencedStatePut(act *trace.Act, site, key, value, name string, token uint64) error {
	return nil
}

// NodeName returns a placeholder name.
func (NopHost) NodeName() string { return "nop-node" }

// Now returns the wall-clock time.
func (NopHost) Now() time.Time { return time.Now() }

// actOf extracts the activity record the pipeline attached to the running
// handler's context; nil during stage evaluation or untraced executions.
// Host methods and the Act recorders are nil-safe, so natives pass the
// result through unconditionally.
func actOf(c *script.Context) *trace.Act {
	a, _ := c.Act.(*trace.Act)
	return a
}

// Registry collects the policy objects a stage script registers while it is
// being evaluated (the register() call on script-level Policy objects).
// Registration is guarded by a mutex because forked pool contexts share the
// Policy constructor native: a handler calling register() at request time
// must not race with another pipeline.
type Registry struct {
	mu      sync.Mutex
	Objects []*script.Object
}

// Add appends a registered policy object.
func (r *Registry) Add(obj *script.Object) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Objects = append(r.Objects, obj)
}

// Registered returns the policy objects registered so far, in order.
func (r *Registry) Registered() []*script.Object {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*script.Object, len(r.Objects))
	copy(out, r.Objects)
	return out
}

// InstallPolicyConstructor defines the Policy constructor in ctx. Policies
// created with new Policy() gain a register() method that appends the object
// to reg.
func InstallPolicyConstructor(ctx *script.Context, reg *Registry) {
	ctx.DefineGlobal("Policy", &script.Native{
		Name: "Policy",
		Construct: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
			obj := script.NewObject()
			obj.ClassName = "Policy"
			obj.Set("register", &script.Native{Name: "Policy.register", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
				o, ok := this.(*script.Object)
				if !ok {
					return nil, script.ThrowString("Policy.register: receiver is not a policy object")
				}
				reg.Add(o)
				return script.Undefined{}, nil
			}})
			return obj, nil
		},
		Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
			return nil, script.ThrowString("Policy must be invoked with new")
		},
	})
}

// Install binds every host-backed vocabulary (System, Cache, Fetch, State,
// Log) into ctx for a pipeline execution owned by site. The Request and
// Response vocabularies are bound separately per message by BindRequest and
// BindResponse since they change as the pipeline progresses.
func Install(ctx *script.Context, host Host, site string) {
	installSystem(ctx, host, site)
	installCacheVocabulary(ctx, host)
	installFetch(ctx, host)
	installState(ctx, host, site)
	installLease(ctx, host, site)
	installLog(ctx, host, site)
	installImageTransformer(ctx)
	installXML(ctx)
}

// ValidationContext builds the throwaway context the deployment plane
// validates script bundles in: every vocabulary a stage context gets,
// bound to a NopHost, plus the handler-time Request/Response globals bound
// to placeholder messages. Its GlobalNames are exactly the vocabulary a
// published script may reference, so a bundle's free identifiers can be
// checked against it; and evaluating registration-time code in it reaches
// only no-op host operations, so a canary compile cannot touch the node's
// real cache, state, or leases.
func ValidationContext(site string, limits script.Limits) (*script.Context, *Registry) {
	ctx := script.NewContext(limits)
	reg := &Registry{}
	InstallPolicyConstructor(ctx, reg)
	Install(ctx, NopHost{}, site)
	BindRequest(ctx, httpmsg.MustRequest("GET", "http://"+site+"/"))
	BindResponse(ctx, NewGeneratedResponse())
	// The implicit-policy globals scripts assign (onRequest = ...) are
	// assignment-bound, not references, but scripts may also read them
	// back; predefine them so such reads pass the vocabulary check.
	ctx.DefineGlobal("onRequest", script.Undefined{})
	ctx.DefineGlobal("onResponse", script.Undefined{})
	ctx.DefineGlobal("nextStages", script.Undefined{})
	return ctx, reg
}

func installSystem(ctx *script.Context, host Host, site string) {
	sys := script.NewObject()
	sys.ClassName = "System"
	sys.Set("nodeName", script.Str(host.NodeName()))
	sys.Set("isLocal", &script.Native{Name: "System.isLocal", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Boolean(false), nil
		}
		return script.Boolean(host.IsLocalClient(script.ToString(args[0]))), nil
	}})
	sys.Set("time", &script.Native{Name: "System.time", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		return script.Num(float64(host.Now().UnixMilli())), nil
	}})
	sys.Set("usage", &script.Native{Name: "System.usage", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		resource := "cpu"
		if len(args) > 0 {
			resource = script.ToString(args[0])
		}
		return script.Num(host.Usage(site, resource)), nil
	}})
	sys.Set("log", &script.Native{Name: "System.log", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			host.Log(site, script.ToString(args[0]))
		}
		return script.Undefined{}, nil
	}})
	ctx.DefineGlobal("System", sys)
}

func installCacheVocabulary(ctx *script.Context, host Host) {
	cacheObj := script.NewObject()
	cacheObj.ClassName = "Cache"
	cacheObj.Set("get", &script.Native{Name: "Cache.get", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		resp := host.CacheGet(script.ToString(args[0]))
		if resp == nil {
			return script.NullValue(), nil
		}
		return responseToScript(resp), nil
	}})
	cacheObj.Set("put", &script.Native{Name: "Cache.put", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Boolean(false), nil
		}
		key := script.ToString(args[0])
		resp := httpmsg.NewResponse(200)
		switch body := args[1].(type) {
		case *script.ByteArray:
			resp.SetBody(append([]byte(nil), body.Data...))
		default:
			resp.SetBodyString(script.ToString(body))
		}
		resp.Header.Set("Content-Type", "application/octet-stream")
		ttl := 60
		if len(args) > 2 {
			ttl = script.ToInt(args[2])
		}
		if len(args) > 3 {
			resp.Header.Set("Content-Type", script.ToString(args[3]))
		}
		resp.SetMaxAge(ttl)
		host.CachePut(key, resp)
		return script.Boolean(true), nil
	}})
	ctx.DefineGlobal("Cache", cacheObj)
}

func installFetch(ctx *script.Context, host Host) {
	fetch := &script.Native{Name: "Fetch.get", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, script.ThrowString("Fetch.get: missing URL")
		}
		method := "GET"
		if len(args) > 1 {
			method = script.ToString(args[1])
		}
		req, err := httpmsg.NewRequest(method, script.ToString(args[0]))
		if err != nil {
			return nil, script.ThrowString("Fetch.get: " + err.Error())
		}
		// Sub-fetches issued by a traced request carry its trace id, so
		// cross-resource fan-out shows up under one id in the trace dump.
		if act := actOf(c); act != nil {
			req.TraceID = act.ID
		}
		if len(args) > 2 {
			switch body := args[2].(type) {
			case *script.ByteArray:
				req.Body = append([]byte(nil), body.Data...)
			default:
				if !script.IsNullish(body) {
					req.Body = []byte(script.ToString(body))
				}
			}
		}
		resp, err := host.Fetch(req)
		if err != nil {
			return nil, script.ThrowString("Fetch.get: " + err.Error())
		}
		return responseToScript(resp), nil
	}}
	fetchObj := script.NewObject()
	fetchObj.ClassName = "Fetch"
	fetchObj.Set("get", fetch)
	ctx.DefineGlobal("Fetch", fetchObj)
	// The bare function form matches the paper's "fetching other web
	// resources" vocabulary usage.
	ctx.DefineGlobal("fetch", fetch)
}

func installState(ctx *script.Context, host Host, site string) {
	state := script.NewObject()
	state.ClassName = "State"
	state.Set("get", &script.Native{Name: "State.get", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		v, ok := host.StateGet(actOf(c), site, script.ToString(args[0]))
		if !ok {
			return script.NullValue(), nil
		}
		return script.Str(v), nil
	}})
	state.Set("put", &script.Native{Name: "State.put", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Boolean(false), nil
		}
		if err := host.StatePut(actOf(c), site, script.ToString(args[0]), script.ToString(args[1])); err != nil {
			return nil, script.ThrowString("State.put: " + err.Error())
		}
		return script.Boolean(true), nil
	}})
	state.Set("remove", &script.Native{Name: "State.remove", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			host.StateDelete(actOf(c), site, script.ToString(args[0]))
		}
		return script.Undefined{}, nil
	}})
	state.Set("keys", &script.Native{Name: "State.keys", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		arr := script.NewArray()
		for _, k := range host.StateKeys(actOf(c), site) {
			arr.Elems = append(arr.Elems, script.Str(k))
		}
		return arr, nil
	}})
	state.Set("propagate", &script.Native{Name: "State.propagate", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Boolean(false), nil
		}
		if err := host.Propagate(site, script.ToString(args[0])); err != nil {
			return nil, script.ThrowString("State.propagate: " + err.Error())
		}
		return script.Boolean(true), nil
	}})
	ctx.DefineGlobal("State", state)
}

// installLease binds the Lease vocabulary: per-site distributed leases
// with fencing tokens. acquire returns the token (or null when a live
// holder has the lease); put writes hard state under the token and throws
// once the holdership is deposed, so a script cannot silently keep
// writing after losing its lease.
func installLease(ctx *script.Context, host Host, site string) {
	leaseObj := script.NewObject()
	leaseObj.ClassName = "Lease"
	ttlArg := func(args []script.Value, idx int) time.Duration {
		if len(args) > idx {
			return time.Duration(script.ToInt(args[idx])) * time.Millisecond
		}
		return 0
	}
	leaseObj.Set("acquire", &script.Native{Name: "Lease.acquire", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, script.ThrowString("Lease.acquire: missing lease name")
		}
		token, ok := host.LeaseAcquire(actOf(c), site, script.ToString(args[0]), ttlArg(args, 1))
		if !ok {
			return script.NullValue(), nil
		}
		return script.Num(float64(token)), nil
	}})
	leaseObj.Set("renew", &script.Native{Name: "Lease.renew", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Boolean(false), nil
		}
		name, token := script.ToString(args[0]), uint64(script.ToInt(args[1]))
		return script.Boolean(host.LeaseRenew(actOf(c), site, name, token, ttlArg(args, 2))), nil
	}})
	leaseObj.Set("release", &script.Native{Name: "Lease.release", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Boolean(false), nil
		}
		return script.Boolean(host.LeaseRelease(actOf(c), site, script.ToString(args[0]), uint64(script.ToInt(args[1])))), nil
	}})
	leaseObj.Set("put", &script.Native{Name: "Lease.put", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 4 {
			return nil, script.ThrowString("Lease.put: need key, value, lease name, token")
		}
		key, value := script.ToString(args[0]), script.ToString(args[1])
		name, token := script.ToString(args[2]), uint64(script.ToInt(args[3]))
		if err := host.FencedStatePut(actOf(c), site, key, value, name, token); err != nil {
			return nil, script.ThrowString("Lease.put: " + err.Error())
		}
		return script.Boolean(true), nil
	}})
	ctx.DefineGlobal("Lease", leaseObj)
}

func installLog(ctx *script.Context, host Host, site string) {
	logObj := script.NewObject()
	logObj.ClassName = "Log"
	logObj.Set("write", &script.Native{Name: "Log.write", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			host.Log(site, script.ToString(args[0]))
		}
		return script.Undefined{}, nil
	}})
	ctx.DefineGlobal("Log", logObj)
}

// responseToScript converts a pipeline response into the plain script object
// returned by Cache.get and Fetch.get: { status, headers, body, contentType }.
// A streamed body is materialized: the script asked for the whole response.
func responseToScript(resp *httpmsg.Response) *script.Object {
	resp.Materialize()
	o := script.NewObject()
	o.Set("status", script.Int(resp.Status))
	headers := script.NewObject()
	for k := range resp.Header {
		headers.Set(k, script.Str(resp.Header.Get(k)))
	}
	o.Set("headers", headers)
	o.Set("contentType", script.Str(resp.ContentType()))
	o.Set("body", script.NewByteArray(append([]byte(nil), resp.Body...)))
	o.Set("fromCache", script.Boolean(resp.FromCache))
	return o
}
