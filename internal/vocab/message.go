package vocab

import (
	"strings"

	"nakika/internal/httpmsg"
	"nakika/internal/script"
)

// bodyChunkSize is the size of the chunks Request.read() and Response.read()
// hand to scripts, mirroring the prototype's bucket-brigade-sized buffers
// (the example in Figure 2 reads the body in chunks to enable cut-through
// routing).
const bodyChunkSize = 8 * 1024

// BindRequest exposes req to ctx as the global Request object. Mutations the
// script performs through the vocabulary (setHeader, setURL, terminate) are
// applied to req directly, so the pipeline observes them.
func BindRequest(ctx *script.Context, req *httpmsg.Request) {
	obj := script.NewObject()
	obj.ClassName = "Request"

	refresh := func() {
		obj.Set("method", script.Str(req.Method))
		obj.Set("url", script.Str(req.URL.String()))
		obj.Set("host", script.Str(req.Host()))
		obj.Set("path", script.Str(req.Path()))
		obj.Set("query", script.Str(req.URL.RawQuery))
		obj.Set("clientIP", script.Str(req.ClientIP))
	}
	refresh()

	readOffset := 0
	obj.Set("read", &script.Native{Name: "Request.read", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if readOffset >= len(req.Body) {
			return script.NullValue(), nil
		}
		end := readOffset + bodyChunkSize
		if end > len(req.Body) {
			end = len(req.Body)
		}
		chunk := script.NewByteArray(req.Body[readOffset:end])
		readOffset = end
		return chunk, nil
	}})
	obj.Set("body", &script.Native{Name: "Request.body", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		return script.NewByteArray(req.Body), nil
	}})
	obj.Set("getHeader", &script.Native{Name: "Request.getHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		v := req.Header.Get(script.ToString(args[0]))
		if v == "" {
			return script.NullValue(), nil
		}
		return script.Str(v), nil
	}})
	obj.Set("setHeader", &script.Native{Name: "Request.setHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Undefined{}, nil
		}
		req.Header.Set(script.ToString(args[0]), script.ToString(args[1]))
		return script.Undefined{}, nil
	}})
	obj.Set("removeHeader", &script.Native{Name: "Request.removeHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			req.Header.Del(script.ToString(args[0]))
		}
		return script.Undefined{}, nil
	}})
	obj.Set("cookie", &script.Native{Name: "Request.cookie", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		v, ok := req.Cookie(script.ToString(args[0]))
		if !ok {
			return script.NullValue(), nil
		}
		return script.Str(v), nil
	}})
	obj.Set("param", &script.Native{Name: "Request.param", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		v := req.Query(script.ToString(args[0]))
		if v == "" {
			return script.NullValue(), nil
		}
		return script.Str(v), nil
	}})
	obj.Set("setURL", &script.Native{Name: "Request.setURL", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, script.ThrowString("Request.setURL: missing URL")
		}
		if err := req.SetURL(script.ToString(args[0])); err != nil {
			return nil, script.ThrowString("Request.setURL: " + err.Error())
		}
		refresh()
		return script.Undefined{}, nil
	}})
	obj.Set("setMethod", &script.Native{Name: "Request.setMethod", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Undefined{}, nil
		}
		req.Method = strings.ToUpper(script.ToString(args[0]))
		refresh()
		return script.Undefined{}, nil
	}})
	obj.Set("terminate", &script.Native{Name: "Request.terminate", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		status := 403
		if len(args) > 0 {
			status = script.ToInt(args[0])
		}
		resp := req.Terminate(status)
		if len(args) > 1 {
			resp.SetBodyString(script.ToString(args[1]))
		}
		return script.Undefined{}, nil
	}})
	ctx.DefineGlobal("Request", obj)
}

// BindResponse exposes resp to ctx as the global Response object. A script
// that writes a body through Response.write replaces the instance; setHeader
// and setStatus mutate resp directly.
func BindResponse(ctx *script.Context, resp *httpmsg.Response) {
	obj := script.NewObject()
	obj.ClassName = "Response"
	obj.Set("status", script.Int(resp.Status))
	obj.Set("contentType", script.Str(resp.ContentType()))

	readOffset := 0
	written := false
	// materialize pulls a streamed (chunked large-object) body into memory
	// the moment a script actually touches it; header-only scripts never
	// trigger this, which is what keeps large responses streaming.
	materialize := func() error {
		if err := resp.Materialize(); err != nil {
			return script.ThrowString("Response: materialize body: " + err.Error())
		}
		return nil
	}
	obj.Set("read", &script.Native{Name: "Response.read", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if err := materialize(); err != nil {
			return nil, err
		}
		if readOffset >= len(resp.Body) {
			return script.NullValue(), nil
		}
		end := readOffset + bodyChunkSize
		if end > len(resp.Body) {
			end = len(resp.Body)
		}
		chunk := script.NewByteArray(resp.Body[readOffset:end])
		readOffset = end
		return chunk, nil
	}})
	obj.Set("body", &script.Native{Name: "Response.body", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if err := materialize(); err != nil {
			return nil, err
		}
		return script.NewByteArray(resp.Body), nil
	}})
	obj.Set("write", &script.Native{Name: "Response.write", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Undefined{}, nil
		}
		var data []byte
		switch b := args[0].(type) {
		case *script.ByteArray:
			data = b.Data
		default:
			data = []byte(script.ToString(b))
		}
		if !written {
			// First write replaces the instance body.
			resp.SetBody(append([]byte(nil), data...))
			written = true
		} else {
			resp.SetBody(append(resp.Body, data...))
		}
		resp.Generated = true
		return script.Undefined{}, nil
	}})
	obj.Set("getHeader", &script.Native{Name: "Response.getHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.NullValue(), nil
		}
		v := resp.Header.Get(script.ToString(args[0]))
		if v == "" {
			return script.NullValue(), nil
		}
		return script.Str(v), nil
	}})
	obj.Set("setHeader", &script.Native{Name: "Response.setHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Undefined{}, nil
		}
		name := script.ToString(args[0])
		resp.Header.Set(name, script.ToString(args[1]))
		if strings.EqualFold(name, "Content-Type") {
			obj.Set("contentType", script.Str(resp.ContentType()))
		}
		return script.Undefined{}, nil
	}})
	obj.Set("removeHeader", &script.Native{Name: "Response.removeHeader", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			resp.Header.Del(script.ToString(args[0]))
		}
		return script.Undefined{}, nil
	}})
	obj.Set("setStatus", &script.Native{Name: "Response.setStatus", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			resp.Status = script.ToInt(args[0])
			obj.Set("status", script.Int(resp.Status))
		}
		return script.Undefined{}, nil
	}})
	obj.Set("setMaxAge", &script.Native{Name: "Response.setMaxAge", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			resp.SetMaxAge(script.ToInt(args[0]))
		}
		return script.Undefined{}, nil
	}})
	ctx.DefineGlobal("Response", obj)
}

// NewGeneratedResponse builds an empty 200 response ready for a script's
// onRequest handler to fill via Response.write; the pipeline binds it before
// invoking handlers so that handlers creating responses from scratch have a
// Response object to write into.
func NewGeneratedResponse() *httpmsg.Response {
	resp := httpmsg.NewResponse(200)
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	return resp
}
