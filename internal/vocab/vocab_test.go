package vocab

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"strings"
	"sync"
	"testing"
	"time"

	"nakika/internal/httpmsg"
	"nakika/internal/script"
	"nakika/internal/trace"
)

// recordingHost is a Host that records interactions for assertions.
type recordingHost struct {
	NopHost
	mu       sync.Mutex
	fetches  []string
	fetchFn  func(req *httpmsg.Request) (*httpmsg.Response, error)
	cache    map[string]*httpmsg.Response
	state    map[string]string
	logs     []string
	messages []string
	usage    float64
}

func newRecordingHost() *recordingHost {
	return &recordingHost{cache: make(map[string]*httpmsg.Response), state: make(map[string]string)}
}

func (h *recordingHost) Fetch(req *httpmsg.Request) (*httpmsg.Response, error) {
	h.mu.Lock()
	h.fetches = append(h.fetches, req.URL.String())
	h.mu.Unlock()
	if h.fetchFn != nil {
		return h.fetchFn(req)
	}
	return httpmsg.NewTextResponse(200, "fetched "+req.URL.Path), nil
}

func (h *recordingHost) CacheGet(key string) *httpmsg.Response {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cache[key]
}

func (h *recordingHost) CachePut(key string, resp *httpmsg.Response) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cache[key] = resp
}

func (h *recordingHost) Usage(site, resource string) float64 { return h.usage }

func (h *recordingHost) Log(site, message string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.logs = append(h.logs, site+": "+message)
}

func (h *recordingHost) StateGet(act *trace.Act, site, key string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.state[site+"/"+key]
	return v, ok
}

func (h *recordingHost) StatePut(act *trace.Act, site, key, value string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state[site+"/"+key] = value
	return nil
}

func (h *recordingHost) StateDelete(act *trace.Act, site, key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.state, site+"/"+key)
}

func (h *recordingHost) StateKeys(act *trace.Act, site string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for k := range h.state {
		if strings.HasPrefix(k, site+"/") {
			out = append(out, strings.TrimPrefix(k, site+"/"))
		}
	}
	return out
}

func (h *recordingHost) Propagate(site, message string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.messages = append(h.messages, message)
	return nil
}

func (h *recordingHost) NodeName() string { return "test-node" }

// newTestEnv builds a context with every vocabulary installed for a site.
func newTestEnv(host Host) *script.Context {
	ctx := script.NewContext(script.Limits{})
	Install(ctx, host, "example.org")
	return ctx
}

func run(t *testing.T, ctx *script.Context, src string) script.Value {
	t.Helper()
	v, err := ctx.RunSource(src, "test.js")
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	return v
}

func TestSystemVocabulary(t *testing.T) {
	h := newRecordingHost()
	h.usage = 0.75
	ctx := newTestEnv(h)
	if v := run(t, ctx, `System.isLocal("10.1.2.3")`); !bool(v.(script.Bool)) {
		t.Error("10.x should be local")
	}
	if v := run(t, ctx, `System.isLocal("8.8.8.8")`); bool(v.(script.Bool)) {
		t.Error("8.8.8.8 should not be local")
	}
	if v := run(t, ctx, `System.usage("cpu")`); script.ToNumber(v) != 0.75 {
		t.Errorf("usage = %v", script.ToNumber(v))
	}
	if v := run(t, ctx, `System.nodeName`); script.ToString(v) != "test-node" {
		t.Errorf("nodeName = %q", script.ToString(v))
	}
	run(t, ctx, `System.log("hello from script")`)
	if len(h.logs) != 1 || !strings.Contains(h.logs[0], "hello from script") {
		t.Errorf("logs = %v", h.logs)
	}
	if v := run(t, ctx, `System.time()`); script.ToNumber(v) <= 0 {
		t.Error("System.time should be positive")
	}
}

func TestFetchVocabulary(t *testing.T) {
	h := newRecordingHost()
	ctx := newTestEnv(h)
	v := run(t, ctx, `
		var r = Fetch.get("http://origin.example.org/data.xml");
		r.status + ":" + r.body.toString()
	`)
	if script.ToString(v) != "200:fetched /data.xml" {
		t.Errorf("got %q", script.ToString(v))
	}
	if len(h.fetches) != 1 || h.fetches[0] != "http://origin.example.org/data.xml" {
		t.Errorf("fetches = %v", h.fetches)
	}
	// The bare fetch() alias works too.
	v = run(t, ctx, `fetch("http://origin.example.org/other").status`)
	if script.ToNumber(v) != 200 {
		t.Errorf("status = %v", script.ToNumber(v))
	}
	// Fetch errors become catchable script exceptions.
	h.fetchFn = func(req *httpmsg.Request) (*httpmsg.Response, error) {
		return nil, fmt.Errorf("connection refused")
	}
	v = run(t, ctx, `
		var msg = "";
		try { Fetch.get("http://down.example.org/"); } catch (e) { msg = e; }
		msg
	`)
	if !strings.Contains(script.ToString(v), "connection refused") {
		t.Errorf("error message = %q", script.ToString(v))
	}
}

func TestCacheVocabulary(t *testing.T) {
	h := newRecordingHost()
	ctx := newTestEnv(h)
	v := run(t, ctx, `Cache.get("missing")`)
	if !script.IsNullish(v) {
		t.Error("missing key should return null")
	}
	run(t, ctx, `Cache.put("thumb:pic.jpg", new ByteArray("tiny-jpeg-bytes"), 300, "image/jpeg")`)
	v = run(t, ctx, `
		var hit = Cache.get("thumb:pic.jpg");
		hit.contentType + ":" + hit.body.toString()
	`)
	if script.ToString(v) != "image/jpeg:tiny-jpeg-bytes" {
		t.Errorf("got %q", script.ToString(v))
	}
}

func TestStateVocabulary(t *testing.T) {
	h := newRecordingHost()
	ctx := newTestEnv(h)
	v := run(t, ctx, `
		State.put("user:42", JSON.stringify({ name: "maria", progress: 3 }));
		var u = JSON.parse(State.get("user:42"));
		u.name + ":" + u.progress
	`)
	if script.ToString(v) != "maria:3" {
		t.Errorf("got %q", script.ToString(v))
	}
	if v := run(t, ctx, `State.get("missing")`); !script.IsNullish(v) {
		t.Error("missing state key should return null")
	}
	v = run(t, ctx, `State.keys().length`)
	if script.ToNumber(v) != 1 {
		t.Errorf("keys length = %v", script.ToNumber(v))
	}
	run(t, ctx, `State.remove("user:42")`)
	if _, ok := h.state["example.org/user:42"]; ok {
		t.Error("remove should delete the key")
	}
	run(t, ctx, `State.propagate(JSON.stringify({ op: "put", key: "user:42" }))`)
	if len(h.messages) != 1 {
		t.Errorf("messages = %v", h.messages)
	}
}

// leaseHost overrides the lease surface to model one round of arbitration:
// the first acquire of a name wins token 1, a second acquire while held is
// denied, and fenced puts are admitted only at the current token.
type leaseHost struct {
	NopHost
	mu     sync.Mutex
	tokens map[string]uint64
	puts   []string
}

func (h *leaseHost) LeaseAcquire(act *trace.Act, site, name string, ttl time.Duration) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens == nil {
		h.tokens = make(map[string]uint64)
	}
	if h.tokens[name] != 0 {
		return 0, false
	}
	h.tokens[name] = 1
	return 1, true
}

func (h *leaseHost) LeaseRenew(act *trace.Act, site, name string, token uint64, ttl time.Duration) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tokens[name] == token
}

func (h *leaseHost) LeaseRelease(act *trace.Act, site, name string, token uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens[name] != token {
		return false
	}
	delete(h.tokens, name)
	return true
}

func (h *leaseHost) FencedStatePut(act *trace.Act, site, key, value, name string, token uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens[name] != token {
		return fmt.Errorf("write fenced off")
	}
	h.puts = append(h.puts, key+"="+value)
	return nil
}

func TestLeaseVocabulary(t *testing.T) {
	h := &leaseHost{}
	ctx := newTestEnv(h)
	v := run(t, ctx, `
		var token = Lease.acquire("checkpoint", 5000);
		Lease.put("progress", "42", "checkpoint", token);
		Lease.renew("checkpoint", token)
	`)
	if !bool(v.(script.Bool)) {
		t.Error("renew with the granted token should succeed")
	}
	if len(h.puts) != 1 || h.puts[0] != "progress=42" {
		t.Errorf("puts = %v", h.puts)
	}
	if v := run(t, ctx, `Lease.acquire("checkpoint")`); !script.IsNullish(v) {
		t.Error("second acquire while held should return null")
	}
	// A stale token must throw at Lease.put, not silently write.
	if _, err := ctx.RunSource(`Lease.put("progress", "43", "checkpoint", 99)`, "test.js"); err == nil {
		t.Error("fenced put with a stale token should throw")
	}
	if v := run(t, ctx, `Lease.release("checkpoint", 1)`); !bool(v.(script.Bool)) {
		t.Error("release with the granted token should succeed")
	}
	if v := run(t, ctx, `Lease.acquire("checkpoint")`); script.ToNumber(v) != 1 {
		t.Error("acquire after release should grant again")
	}
}

func TestPolicyConstructorAndRegistry(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	reg := &Registry{}
	InstallPolicyConstructor(ctx, reg)
	_, err := ctx.RunSource(`
		var p = new Policy();
		p.url = [ "med.nyu.edu", "medschool.pitt.edu" ];
		p.client = [ "nyu.edu", "pitt.edu" ];
		p.onResponse = function() { return 1; };
		p.register();

		var q = new Policy();
		q.url = "example.org";
		q.register();
	`, "figure3.js")
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Objects) != 2 {
		t.Fatalf("registered %d policies, want 2", len(reg.Objects))
	}
	urls, _ := reg.Objects[0].Get("url")
	if arr, ok := urls.(*script.Array); !ok || len(arr.Elems) != 2 {
		t.Errorf("first policy url = %v", urls)
	}
	// Calling Policy without new is an error the script can catch.
	v, err := ctx.RunSource(`
		var caught = false;
		try { Policy(); } catch (e) { caught = true; }
		caught
	`, "nonew.js")
	if err != nil {
		t.Fatal(err)
	}
	if !bool(v.(script.Bool)) {
		t.Error("calling Policy without new should throw")
	}
}

func TestBindRequest(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	req := httpmsg.MustRequest("GET", "http://med.nyu.edu/simm/module1.html?student=42")
	req.ClientIP = "192.168.1.10"
	req.Header.Set("User-Agent", "Nokia6600")
	req.SetCookie("session", "s-123")
	req.Body = []byte("post-data")
	BindRequest(ctx, req)

	v := run(t, ctx, `Request.method + " " + Request.host + Request.path`)
	if script.ToString(v) != "GET med.nyu.edu/simm/module1.html" {
		t.Errorf("got %q", script.ToString(v))
	}
	if v := run(t, ctx, `Request.clientIP`); script.ToString(v) != "192.168.1.10" {
		t.Errorf("clientIP = %q", script.ToString(v))
	}
	if v := run(t, ctx, `Request.getHeader("User-Agent")`); script.ToString(v) != "Nokia6600" {
		t.Errorf("header = %q", script.ToString(v))
	}
	if v := run(t, ctx, `Request.cookie("session")`); script.ToString(v) != "s-123" {
		t.Errorf("cookie = %q", script.ToString(v))
	}
	if v := run(t, ctx, `Request.param("student")`); script.ToString(v) != "42" {
		t.Errorf("param = %q", script.ToString(v))
	}
	// Body reading in chunks.
	v = run(t, ctx, `
		var b = new ByteArray();
		var chunk;
		while (chunk = Request.read()) { b.append(chunk); }
		b.toString()
	`)
	if script.ToString(v) != "post-data" {
		t.Errorf("body = %q", script.ToString(v))
	}
	// Header mutation is visible on the Go side.
	run(t, ctx, `Request.setHeader("X-Injected", "yes"); Request.removeHeader("User-Agent");`)
	if req.Header.Get("X-Injected") != "yes" || req.Header.Get("User-Agent") != "" {
		t.Error("header mutations not applied")
	}
	// URL rewriting (the annotations extension interposes itself this way).
	run(t, ctx, `Request.setURL("http://simm.med.nyu.edu/simm/module1.html")`)
	if req.Host() != "simm.med.nyu.edu" || !req.Redirected {
		t.Errorf("URL rewrite not applied: %v", req.URL)
	}
	if v := run(t, ctx, `Request.host`); script.ToString(v) != "simm.med.nyu.edu" {
		t.Error("script-visible host should refresh after setURL")
	}
	// Method change.
	run(t, ctx, `Request.setMethod("post")`)
	if req.Method != "POST" {
		t.Errorf("method = %q", req.Method)
	}
}

func TestBindRequestTerminate(t *testing.T) {
	// Figure 5: reject unauthorized access to digital libraries with 401.
	ctx := script.NewContext(script.Limits{})
	h := newRecordingHost()
	Install(ctx, h, "bmj.bmjjournals.com")
	req := httpmsg.MustRequest("GET", "http://bmj.bmjjournals.com/cgi/reprint/1.pdf")
	req.ClientIP = "203.0.113.9" // not local
	BindRequest(ctx, req)
	_, err := ctx.RunSource(`
		if (! System.isLocal(Request.clientIP)) {
			Request.terminate(401);
		}
	`, "figure5.js")
	if err != nil {
		t.Fatal(err)
	}
	resp := req.Terminated()
	if resp == nil || resp.Status != 401 {
		t.Fatalf("expected 401 termination, got %+v", resp)
	}
	// Local clients pass.
	req2 := httpmsg.MustRequest("GET", "http://bmj.bmjjournals.com/cgi/reprint/1.pdf")
	req2.ClientIP = "10.5.5.5"
	BindRequest(ctx, req2)
	if _, err := ctx.RunSource(`
		if (! System.isLocal(Request.clientIP)) {
			Request.terminate(401);
		}
	`, "figure5.js"); err != nil {
		t.Fatal(err)
	}
	if req2.Terminated() != nil {
		t.Error("local client should not be terminated")
	}
}

func TestBindResponse(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	resp := httpmsg.NewHTMLResponse(200, "<html><body>original</body></html>")
	BindResponse(ctx, resp)
	if v := run(t, ctx, `Response.status`); script.ToNumber(v) != 200 {
		t.Errorf("status = %v", script.ToNumber(v))
	}
	if v := run(t, ctx, `Response.contentType`); script.ToString(v) != "text/html" {
		t.Errorf("contentType = %q", script.ToString(v))
	}
	// Reading in chunks reassembles the body.
	v := run(t, ctx, `
		var body = new ByteArray(), chunk;
		while (chunk = Response.read()) { body.append(chunk); }
		body.length
	`)
	if int(script.ToNumber(v)) != len("<html><body>original</body></html>") {
		t.Errorf("read length = %v", script.ToNumber(v))
	}
	// Rewriting the body.
	run(t, ctx, `
		Response.setHeader("Content-Type", "text/plain");
		Response.write("rewritten");
		Response.setStatus(203);
		Response.setMaxAge(120);
	`)
	if string(resp.Body) != "rewritten" {
		t.Errorf("body = %q", resp.Body)
	}
	if resp.Status != 203 || resp.ContentType() != "text/plain" {
		t.Errorf("status/type = %d %q", resp.Status, resp.ContentType())
	}
	if !resp.Generated {
		t.Error("write should mark the response as generated")
	}
	if resp.Header.Get("Cache-Control") != "max-age=120" {
		t.Errorf("cache-control = %q", resp.Header.Get("Cache-Control"))
	}
	// Subsequent writes append.
	run(t, ctx, `Response.write(" more")`)
	if string(resp.Body) != "rewritten more" {
		t.Errorf("append write = %q", resp.Body)
	}
}

func TestLargeBodyChunking(t *testing.T) {
	ctx := script.NewContext(script.Limits{})
	big := strings.Repeat("x", 3*bodyChunkSize+100)
	resp := httpmsg.NewTextResponse(200, big)
	BindResponse(ctx, resp)
	v := run(t, ctx, `
		var n = 0, chunks = 0, chunk;
		while (chunk = Response.read()) { n += chunk.length; chunks++; }
		chunks + ":" + n
	`)
	want := fmt.Sprintf("4:%d", len(big))
	if script.ToString(v) != want {
		t.Errorf("got %q, want %q", script.ToString(v), want)
	}
}

// makeTestPNG builds a width x height PNG for transcoding tests.
func makeTestPNG(t *testing.T, width, height int) []byte {
	t.Helper()
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.Set(x, y, color.RGBA{R: uint8(x % 256), G: uint8(y % 256), B: 128, A: 255})
		}
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestImageTransformer(t *testing.T) {
	ctx := newTestEnv(newRecordingHost())
	ctx.DefineGlobal("testImage", script.NewByteArray(makeTestPNG(t, 640, 480)))

	if v := run(t, ctx, `ImageTransformer.type("image/png")`); script.ToString(v) != "png" {
		t.Errorf("type = %q", script.ToString(v))
	}
	if v := run(t, ctx, `ImageTransformer.type("text/html")`); !script.IsNullish(v) {
		t.Error("non-image type should return null")
	}
	v := run(t, ctx, `
		var dim = ImageTransformer.dimensions(testImage, "png");
		dim.x + "x" + dim.y
	`)
	if script.ToString(v) != "640x480" {
		t.Errorf("dimensions = %q", script.ToString(v))
	}
	// Transform to JPEG at phone size and verify the output decodes with the
	// requested dimensions.
	v = run(t, ctx, `ImageTransformer.transform(testImage, "png", "jpeg", 176, 132)`)
	ba, ok := v.(*script.ByteArray)
	if !ok || len(ba.Data) == 0 {
		t.Fatalf("transform returned %T", v)
	}
	cfg, format, err := image.DecodeConfig(bytes.NewReader(ba.Data))
	if err != nil {
		t.Fatal(err)
	}
	if format != "jpeg" || cfg.Width != 176 || cfg.Height != 132 {
		t.Errorf("output = %s %dx%d", format, cfg.Width, cfg.Height)
	}
	// Invalid input is a catchable error.
	v = run(t, ctx, `
		var ok = false;
		try { ImageTransformer.dimensions(new ByteArray("not an image"), "png"); } catch (e) { ok = true; }
		ok
	`)
	if !bool(v.(script.Bool)) {
		t.Error("invalid image should throw")
	}
}

func TestFigure2EndToEnd(t *testing.T) {
	// Run the paper's Figure 2 handler verbatim against a real oversized
	// image and real Response/ImageTransformer vocabularies.
	ctx := newTestEnv(newRecordingHost())
	resp := httpmsg.NewResponse(200)
	resp.Header.Set("Content-Type", "image/png")
	resp.SetBody(makeTestPNG(t, 800, 600))
	BindResponse(ctx, resp)

	_, err := ctx.RunSource(`
		onResponse = function() {
			var buff = null, body = new ByteArray();
			while (buff = Response.read()) {
				body.append(buff);
			}
			var type = ImageTransformer.type(Response.contentType);
			var dim = ImageTransformer.dimensions(body, type);
			if (dim.x > 176 || dim.y > 208) {
				var img;
				if (dim.x/176 > dim.y/208) {
					img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y/dim.x*208);
				} else {
					img = ImageTransformer.transform(body, type, "jpeg", dim.x/dim.y*176, 208);
				}
				Response.setHeader("Content-Type", "image/jpeg");
				Response.setHeader("Content-Length", img.length);
				Response.write(img);
			}
		};
		onResponse();
	`, "figure2.js")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentType() != "image/jpeg" {
		t.Errorf("content type = %q", resp.ContentType())
	}
	cfg, format, err := image.DecodeConfig(bytes.NewReader(resp.Body))
	if err != nil {
		t.Fatal(err)
	}
	if format != "jpeg" {
		t.Errorf("format = %q", format)
	}
	if cfg.Width > 176 || cfg.Height > 208 {
		t.Errorf("transcoded image %dx%d does not fit 176x208", cfg.Width, cfg.Height)
	}
}

func TestXMLVocabulary(t *testing.T) {
	ctx := newTestEnv(newRecordingHost())
	doc := `<module id="m1"><title>Aortic Aneurysm</title><section n="1"><p>Presentation</p></section><section n="2"><p>Treatment</p></section></module>`
	ctx.DefineGlobal("doc", script.Str(doc))

	v := run(t, ctx, `
		var root = XML.parse(doc);
		root.name + ":" + root.attrs.id + ":" + root.children.length
	`)
	if script.ToString(v) != "module:m1:3" {
		t.Errorf("got %q", script.ToString(v))
	}
	v = run(t, ctx, `XML.text(XML.find(XML.parse(doc), "title"))`)
	if script.ToString(v) != "Aortic Aneurysm" {
		t.Errorf("title = %q", script.ToString(v))
	}
	v = run(t, ctx, `XML.findAll(XML.parse(doc), "section").length`)
	if script.ToNumber(v) != 2 {
		t.Errorf("sections = %v", script.ToNumber(v))
	}
	// Parse → serialize round trip preserves structure.
	v = run(t, ctx, `XML.serialize(XML.parse(doc))`)
	reparsed, err := ParseXML(script.ToString(v))
	if err != nil {
		t.Fatalf("serialized output does not reparse: %v", err)
	}
	if len(reparsed.FindAll("section")) != 2 || reparsed.Find("title").TextContent() != "Aortic Aneurysm" {
		t.Errorf("round trip lost structure: %q", script.ToString(v))
	}
	// Escaping.
	if v := run(t, ctx, `XML.escape("a < b & c")`); script.ToString(v) != "a &lt; b &amp; c" {
		t.Errorf("escape = %q", script.ToString(v))
	}
	// Invalid XML throws a catchable error.
	v = run(t, ctx, `
		var ok = false;
		try { XML.parse("<unclosed>"); } catch (e) { ok = true; }
		ok
	`)
	if !bool(v.(script.Bool)) {
		t.Error("invalid XML should throw")
	}
}

func TestParseXMLGo(t *testing.T) {
	node, err := ParseXML(`<a x="1"><b>hi</b><b>there</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "a" || node.Attrs["x"] != "1" || len(node.Children) != 3 {
		t.Errorf("node = %+v", node)
	}
	if got := node.TextContent(); got != "hithere" {
		t.Errorf("text = %q", got)
	}
	if node.Find("missing") != nil {
		t.Error("Find of missing element should be nil")
	}
	if _, err := ParseXML("just text"); err == nil {
		t.Error("expected error for document without element")
	}
	out := SerializeXML(node)
	if !strings.Contains(out, `<a x="1">`) || !strings.Contains(out, "<c/>") {
		t.Errorf("serialized = %q", out)
	}
}

func TestNopHost(t *testing.T) {
	var h NopHost
	resp, err := h.Fetch(httpmsg.MustRequest("GET", "http://x.org/"))
	if err != nil || resp.Status != 502 {
		t.Errorf("NopHost.Fetch = %v %v", resp, err)
	}
	if h.CacheGet("x") != nil {
		t.Error("NopHost cache should miss")
	}
	if !h.IsLocalClient("127.0.0.1") || h.IsLocalClient("203.0.113.8") {
		t.Error("NopHost.IsLocalClient defaults wrong")
	}
	if _, ok := h.StateGet(nil, "s", "k"); ok {
		t.Error("NopHost state should miss")
	}
	if h.NodeName() == "" {
		t.Error("NodeName should be non-empty")
	}
}
