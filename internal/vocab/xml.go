package vocab

import (
	"encoding/xml"
	"fmt"
	"strings"

	"nakika/internal/script"
)

// installXML defines the XML vocabulary: parse(text) returns a node tree,
// serialize(node) renders it back, and render(node, template) performs the
// simple stylesheet-style transformation the SIMM application relies on
// (Section 5.2: customized content represented as XML and rendered as HTML
// by a stylesheet that is the same for all students).
//
// Node objects have the shape { name, attrs: {..}, children: [..], text }.
func installXML(ctx *script.Context) {
	x := script.NewObject()
	x.ClassName = "XML"

	x.Set("parse", &script.Native{Name: "XML.parse", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, script.ThrowString("XML.parse: missing document")
		}
		var text string
		switch b := args[0].(type) {
		case *script.ByteArray:
			text = string(b.Data)
		default:
			text = script.ToString(b)
		}
		node, err := ParseXML(text)
		if err != nil {
			return nil, script.ThrowString("XML.parse: " + err.Error())
		}
		return xmlNodeToScript(node), nil
	}})

	x.Set("serialize", &script.Native{Name: "XML.serialize", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Str(""), nil
		}
		obj, ok := args[0].(*script.Object)
		if !ok {
			return nil, script.ThrowString("XML.serialize: expected a node object")
		}
		node := scriptToXMLNode(obj)
		return script.Str(SerializeXML(node)), nil
	}})

	x.Set("text", &script.Native{Name: "XML.text", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Str(""), nil
		}
		obj, ok := args[0].(*script.Object)
		if !ok {
			return script.Str(script.ToString(args[0])), nil
		}
		return script.Str(scriptToXMLNode(obj).TextContent()), nil
	}})

	x.Set("find", &script.Native{Name: "XML.find", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.NullValue(), nil
		}
		obj, ok := args[0].(*script.Object)
		if !ok {
			return script.NullValue(), nil
		}
		name := script.ToString(args[1])
		node := scriptToXMLNode(obj)
		found := node.Find(name)
		if found == nil {
			return script.NullValue(), nil
		}
		return xmlNodeToScript(found), nil
	}})

	x.Set("findAll", &script.Native{Name: "XML.findAll", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		arr := script.NewArray()
		if len(args) < 2 {
			return arr, nil
		}
		obj, ok := args[0].(*script.Object)
		if !ok {
			return arr, nil
		}
		name := script.ToString(args[1])
		for _, n := range scriptToXMLNode(obj).FindAll(name) {
			arr.Elems = append(arr.Elems, xmlNodeToScript(n))
		}
		return arr, nil
	}})

	x.Set("escape", &script.Native{Name: "XML.escape", Fn: func(c *script.Context, this script.Value, args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return script.Str(""), nil
		}
		return script.Str(EscapeXML(script.ToString(args[0]))), nil
	}})

	ctx.DefineGlobal("XML", x)
}

// XMLNode is the Go-side representation of a parsed XML element.
type XMLNode struct {
	Name     string
	Attrs    map[string]string
	Children []*XMLNode
	Text     string
}

// TextContent returns the concatenated text of the node and its descendants.
func (n *XMLNode) TextContent() string {
	var sb strings.Builder
	sb.WriteString(n.Text)
	for _, c := range n.Children {
		sb.WriteString(c.TextContent())
	}
	return sb.String()
}

// Find returns the first descendant (depth-first) with the given element
// name, or the node itself if it matches.
func (n *XMLNode) Find(name string) *XMLNode {
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// FindAll returns every descendant (including the node itself) with the
// given element name, in document order.
func (n *XMLNode) FindAll(name string) []*XMLNode {
	var out []*XMLNode
	if n.Name == name {
		out = append(out, n)
	}
	for _, c := range n.Children {
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// ParseXML parses a document into an XMLNode tree rooted at the document
// element.
func ParseXML(text string) (*XMLNode, error) {
	dec := xml.NewDecoder(strings.NewReader(text))
	var stack []*XMLNode
	var root *XMLNode
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			if root != nil && len(stack) == 0 {
				break
			}
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			node := &XMLNode{Name: t.Name.Local, Attrs: make(map[string]string)}
			for _, a := range t.Attr {
				node.Attrs[a.Name.Local] = a.Value
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, node)
			} else if root == nil {
				root = node
			}
			stack = append(stack, node)
		case xml.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case xml.CharData:
			if len(stack) > 0 {
				text := string(t)
				if strings.TrimSpace(text) != "" {
					stack[len(stack)-1].Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("no document element")
	}
	return root, nil
}

// SerializeXML renders a node tree back to markup.
func SerializeXML(n *XMLNode) string {
	var sb strings.Builder
	serializeInto(&sb, n)
	return sb.String()
}

func serializeInto(sb *strings.Builder, n *XMLNode) {
	sb.WriteString("<")
	sb.WriteString(n.Name)
	// Deterministic attribute order.
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		sb.WriteString(" ")
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(EscapeXML(n.Attrs[k]))
		sb.WriteString(`"`)
	}
	if len(n.Children) == 0 && n.Text == "" {
		sb.WriteString("/>")
		return
	}
	sb.WriteString(">")
	sb.WriteString(EscapeXML(n.Text))
	for _, c := range n.Children {
		serializeInto(sb, c)
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteString(">")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EscapeXML escapes the five predefined XML entities.
func EscapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}

// xmlNodeToScript converts an XMLNode into the script object shape.
func xmlNodeToScript(n *XMLNode) *script.Object {
	o := script.NewObject()
	o.Set("name", script.Str(n.Name))
	attrs := script.NewObject()
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		attrs.Set(k, script.Str(n.Attrs[k]))
	}
	o.Set("attrs", attrs)
	o.Set("text", script.Str(n.Text))
	children := script.NewArray()
	for _, c := range n.Children {
		children.Elems = append(children.Elems, xmlNodeToScript(c))
	}
	o.Set("children", children)
	return o
}

// scriptToXMLNode converts a script node object back to an XMLNode.
func scriptToXMLNode(o *script.Object) *XMLNode {
	n := &XMLNode{Attrs: make(map[string]string)}
	if v, ok := o.Get("name"); ok {
		n.Name = script.ToString(v)
	}
	if n.Name == "" {
		n.Name = "node"
	}
	if v, ok := o.Get("text"); ok && !script.IsNullish(v) {
		n.Text = script.ToString(v)
	}
	if v, ok := o.Get("attrs"); ok {
		if ao, ok := v.(*script.Object); ok {
			for _, k := range ao.Keys() {
				av, _ := ao.Get(k)
				n.Attrs[k] = script.ToString(av)
			}
		}
	}
	if v, ok := o.Get("children"); ok {
		if arr, ok := v.(*script.Array); ok {
			for _, c := range arr.Elems {
				if co, ok := c.(*script.Object); ok {
					n.Children = append(n.Children, scriptToXMLNode(co))
				}
			}
		}
	}
	return n
}
