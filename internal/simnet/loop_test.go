package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestLoopRunsEventsInTimeOrder(t *testing.T) {
	l := NewLoop()
	var order []int
	l.At(30*time.Millisecond, func(now time.Duration) { order = append(order, 3) })
	l.At(10*time.Millisecond, func(now time.Duration) { order = append(order, 1) })
	l.At(20*time.Millisecond, func(now time.Duration) { order = append(order, 2) })
	l.AdvanceTo(15 * time.Millisecond)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("after AdvanceTo(15ms): %v", order)
	}
	if l.Now() != 15*time.Millisecond {
		t.Errorf("now = %v", l.Now())
	}
	if l.Pending() != 2 {
		t.Errorf("pending = %d", l.Pending())
	}
	l.Drain()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Errorf("after drain: %v", order)
	}
	if l.Now() != 30*time.Millisecond {
		t.Errorf("final now = %v", l.Now())
	}
}

func TestLoopTieBreaksByInsertion(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		l.At(time.Millisecond, func(now time.Duration) { order = append(order, i) })
	}
	l.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestLoopCallbacksMaySchedule(t *testing.T) {
	l := NewLoop()
	var fired []time.Duration
	l.At(time.Millisecond, func(now time.Duration) {
		fired = append(fired, now)
		l.After(time.Millisecond, func(now time.Duration) {
			fired = append(fired, now)
		})
	})
	l.Drain()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestLoopPastEventsClampToPresent(t *testing.T) {
	l := NewLoop()
	l.AdvanceTo(100 * time.Millisecond)
	var at time.Duration
	l.At(10*time.Millisecond, func(now time.Duration) { at = now })
	l.Drain()
	if at != 100*time.Millisecond {
		t.Errorf("past event fired at %v", at)
	}
}

func TestLoopConcurrentAdvance(t *testing.T) {
	l := NewLoop()
	var mu sync.Mutex
	count := 0
	for i := 1; i <= 100; i++ {
		l.At(time.Duration(i)*time.Millisecond, func(now time.Duration) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l.AdvanceTo(time.Duration(g+1) * 20 * time.Millisecond)
		}(g)
	}
	wg.Wait()
	l.Drain()
	mu.Lock()
	defer mu.Unlock()
	if count != 100 {
		t.Errorf("events run = %d, want 100 exactly once each", count)
	}
}
