// Package simnet provides the wide-area substrate for the evaluation: a
// deterministic discrete-event simulator of closed-loop clients, queueing
// stations (origin servers, edge proxies), and network links with latency
// and bandwidth limits.
//
// The paper's wide-area experiments ran on PlanetLab; this repository has no
// testbed, so (per the substitution rule in DESIGN.md) experiments measure
// real Na Kika code for the processing costs and use this simulator to
// compose those costs with network delays, transfer times, and server
// queueing — which is what produces the 60-second single-server latencies in
// Figure 7 when 240 clients hammer one origin across a WAN.
package simnet

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"
)

// Link models a network path with one-way latency and a bandwidth cap.
type Link struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; zero means unlimited
}

// TransferTime returns the time to move size bytes across the link (latency
// plus serialization at the bandwidth cap).
func (l Link) TransferTime(size int) time.Duration {
	d := l.Latency
	if l.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// RTT returns the round-trip latency of the link (without payload).
func (l Link) RTT() time.Duration { return 2 * l.Latency }

// Station is a queueing resource with a fixed number of servers (for
// example an origin web server with a worker pool, or an edge proxy).
type Station struct {
	Name    string
	Servers int

	busy  int
	queue []*jobVisit
	// accumulated statistics
	completed int64
	busyTime  time.Duration
	lastEvent time.Duration
}

// StationStats reports per-station results after a run.
type StationStats struct {
	Name        string
	Completed   int64
	Utilization float64
}

// Visit is one step of a job's route: a network delay (latency + transfer)
// followed by service demand at a station. Station may be nil for a pure
// delay (for example the final transfer back to the client).
type Visit struct {
	Delay   time.Duration
	Station *Station
	Service time.Duration
}

// Route generates the visit sequence for one job; it is called at job start
// so routes can depend on simulated time (for example cache warm-up) and on
// the client identity.
type Route func(client, iteration int, now time.Duration, rng *rand.Rand) []Visit

// JobResult records one completed job.
type JobResult struct {
	Client  int
	Start   time.Duration
	End     time.Duration
	Latency time.Duration
	Bytes   int
	Tag     string
}

// Simulation is a closed-network discrete-event simulation: Clients clients
// each repeatedly wait ThinkTime, then issue a job whose route is produced
// by Route.
type Simulation struct {
	stations []*Station
	clients  int
	think    time.Duration
	route    Route
	rng      *rand.Rand

	now     time.Duration
	events  eventQueue
	results []JobResult
	// TagFn, when non-nil, labels each job result (for example "html" or
	// "video") so experiments can split distributions.
	TagFn func(client, iteration int) (tag string, bytes int)
}

// New returns an empty simulation seeded deterministically.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Station adds a queueing station with the given parallelism.
func (s *Simulation) Station(name string, servers int) *Station {
	if servers <= 0 {
		servers = 1
	}
	st := &Station{Name: name, Servers: servers}
	s.stations = append(s.stations, st)
	return st
}

// SetClients configures the closed client population: count clients, each
// thinking for think between jobs, issuing jobs routed by route.
func (s *Simulation) SetClients(count int, think time.Duration, route Route) {
	s.clients = count
	s.think = think
	s.route = route
}

// event types
type eventKind int

const (
	evJobStart   eventKind = iota
	evVisitReady           // network delay done; join station queue (or finish)
	evServiceDone
)

type jobVisit struct {
	client    int
	iteration int
	start     time.Duration
	visits    []Visit
	idx       int
}

type event struct {
	at   time.Duration
	kind eventKind
	jv   *jobVisit
	st   *Station
	seq  int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

var eventSeq int

func (s *Simulation) schedule(at time.Duration, kind eventKind, jv *jobVisit, st *Station) {
	eventSeq++
	heap.Push(&s.events, &event{at: at, kind: kind, jv: jv, st: st, seq: eventSeq})
}

// Run executes the simulation for the given virtual duration and returns
// the completed job results.
func (s *Simulation) Run(duration time.Duration) []JobResult {
	s.now = 0
	s.events = s.events[:0]
	s.results = s.results[:0]
	heap.Init(&s.events)
	// Stagger client start times across one think interval to avoid a
	// synchronized stampede at t=0.
	for c := 0; c < s.clients; c++ {
		offset := time.Duration(0)
		if s.think > 0 {
			offset = time.Duration(s.rng.Int63n(int64(s.think) + 1))
		} else {
			offset = time.Duration(s.rng.Int63n(int64(10 * time.Millisecond)))
		}
		jv := &jobVisit{client: c, iteration: 0}
		s.schedule(offset, evJobStart, jv, nil)
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > duration {
			break
		}
		s.now = e.at
		switch e.kind {
		case evJobStart:
			jv := e.jv
			jv.start = s.now
			jv.visits = s.route(jv.client, jv.iteration, s.now, s.rng)
			jv.idx = 0
			s.advance(jv)
		case evVisitReady:
			s.arriveAtStation(e.jv, e.st)
		case evServiceDone:
			s.finishService(e.jv, e.st)
		}
	}
	return append([]JobResult(nil), s.results...)
}

// advance moves a job to its next visit (applying the visit's network delay)
// or completes it.
func (s *Simulation) advance(jv *jobVisit) {
	if jv.idx >= len(jv.visits) {
		s.completeJob(jv)
		return
	}
	v := jv.visits[jv.idx]
	ready := s.now + v.Delay
	if v.Station == nil {
		// Pure delay visit.
		jv.idx++
		s.schedule(ready, evVisitReady, jv, nil)
		return
	}
	s.schedule(ready, evVisitReady, jv, v.Station)
}

func (s *Simulation) arriveAtStation(jv *jobVisit, st *Station) {
	if st == nil {
		// Delay-only visit completed; continue the route.
		s.advance(jv)
		return
	}
	st.accumulate(s.now)
	if st.busy < st.Servers {
		st.busy++
		v := jv.visits[jv.idx]
		s.schedule(s.now+v.Service, evServiceDone, jv, st)
	} else {
		st.queue = append(st.queue, jv)
	}
}

func (s *Simulation) finishService(jv *jobVisit, st *Station) {
	st.accumulate(s.now)
	st.completed++
	st.busy--
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		st.busy++
		v := next.visits[next.idx]
		s.schedule(s.now+v.Service, evServiceDone, next, st)
	}
	jv.idx++
	s.advance(jv)
}

func (st *Station) accumulate(now time.Duration) {
	if now > st.lastEvent {
		st.busyTime += time.Duration(st.busy) * (now - st.lastEvent) / time.Duration(maxInt(st.Servers, 1))
		st.lastEvent = now
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *Simulation) completeJob(jv *jobVisit) {
	res := JobResult{Client: jv.client, Start: jv.start, End: s.now, Latency: s.now - jv.start}
	if s.TagFn != nil {
		res.Tag, res.Bytes = s.TagFn(jv.client, jv.iteration)
	}
	s.results = append(s.results, res)
	// Closed loop: think, then next job.
	next := &jobVisit{client: jv.client, iteration: jv.iteration + 1}
	s.schedule(s.now+s.think, evJobStart, next, nil)
}

// StationStats returns utilization and completion counts for every station,
// relative to the run duration.
func (s *Simulation) StationStats(duration time.Duration) []StationStats {
	out := make([]StationStats, 0, len(s.stations))
	for _, st := range s.stations {
		util := 0.0
		if duration > 0 {
			util = float64(st.busyTime) / float64(duration)
		}
		out = append(out, StationStats{Name: st.Name, Completed: st.completed, Utilization: util})
	}
	return out
}

// ---------------------------------------------------------------------------
// Result analysis helpers
// ---------------------------------------------------------------------------

// Latencies extracts the latency values from results, optionally filtered by
// tag ("" means all).
func Latencies(results []JobResult, tag string) []time.Duration {
	var out []time.Duration
	for _, r := range results {
		if tag == "" || r.Tag == tag {
			out = append(out, r.Latency)
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of the latency set.
func Percentile(latencies []time.Duration, p float64) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the mean latency.
func Mean(latencies []time.Duration) time.Duration {
	if len(latencies) == 0 {
		return 0
	}
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	return total / time.Duration(len(latencies))
}

// Throughput returns completed jobs per second over the run duration.
func Throughput(results []JobResult, duration time.Duration) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(len(results)) / duration.Seconds()
}

// CDF returns (latency, cumulative fraction) pairs at the given probe
// points, suitable for regenerating Figure 7's curves.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF computes the empirical CDF of the latency set sampled at n evenly
// spaced fractions.
func CDF(latencies []time.Duration, n int) []CDFPoint {
	if len(latencies) == 0 || n <= 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out = append(out, CDFPoint{Latency: sorted[idx], Fraction: frac})
	}
	return out
}

// FractionAbove returns the fraction of results (filtered by tag) whose
// effective bandwidth bytes/latency is at least minBytesPerSec — used for
// the "fraction of accesses seeing at least 140 Kbps" video metric.
func FractionAbove(results []JobResult, tag string, minBytesPerSec float64) float64 {
	count, ok := 0, 0
	for _, r := range results {
		if tag != "" && r.Tag != tag {
			continue
		}
		count++
		if r.Latency <= 0 {
			ok++
			continue
		}
		bw := float64(r.Bytes) / r.Latency.Seconds()
		if bw >= minBytesPerSec {
			ok++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(ok) / float64(count)
}
