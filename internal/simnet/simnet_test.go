package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 40 * time.Millisecond, Bandwidth: 1_000_000} // 1 MB/s
	if got := l.TransferTime(0); got != 40*time.Millisecond {
		t.Errorf("zero bytes: %v", got)
	}
	if got := l.TransferTime(1_000_000); got != 40*time.Millisecond+time.Second {
		t.Errorf("1 MB: %v", got)
	}
	unlimited := Link{Latency: 10 * time.Millisecond}
	if got := unlimited.TransferTime(1 << 30); got != 10*time.Millisecond {
		t.Errorf("unlimited bandwidth: %v", got)
	}
	if l.RTT() != 80*time.Millisecond {
		t.Errorf("RTT = %v", l.RTT())
	}
}

func TestSingleStationLittleLaw(t *testing.T) {
	// One station, one server, service time 10 ms, one client, no think
	// time: throughput should approach 100 jobs/s and latency ~10 ms.
	sim := New(1)
	st := sim.Station("server", 1)
	sim.SetClients(1, 0, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
		return []Visit{{Station: st, Service: 10 * time.Millisecond}}
	})
	results := sim.Run(10 * time.Second)
	tput := Throughput(results, 10*time.Second)
	if tput < 90 || tput > 105 {
		t.Errorf("throughput = %.1f jobs/s, want ~100", tput)
	}
	mean := Mean(Latencies(results, ""))
	if mean < 9*time.Millisecond || mean > 11*time.Millisecond {
		t.Errorf("mean latency = %v, want ~10ms", mean)
	}
}

func TestQueueingUnderOverload(t *testing.T) {
	// 20 clients, single server, 10 ms service: the server saturates at 100
	// jobs/s and latency grows to roughly clients * service time.
	sim := New(2)
	st := sim.Station("server", 1)
	sim.SetClients(20, 0, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
		return []Visit{{Station: st, Service: 10 * time.Millisecond}}
	})
	results := sim.Run(10 * time.Second)
	tput := Throughput(results, 10*time.Second)
	if tput > 105 {
		t.Errorf("throughput %.1f exceeds single-server capacity", tput)
	}
	mean := Mean(Latencies(results, ""))
	if mean < 150*time.Millisecond {
		t.Errorf("mean latency %v too low for a 20-client overload", mean)
	}
}

func TestMoreServersMoreThroughput(t *testing.T) {
	run := func(servers int) float64 {
		sim := New(3)
		st := sim.Station("server", servers)
		sim.SetClients(16, 0, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
			return []Visit{{Station: st, Service: 10 * time.Millisecond}}
		})
		return Throughput(sim.Run(5*time.Second), 5*time.Second)
	}
	one, four := run(1), run(4)
	if four < 2.5*one {
		t.Errorf("4 servers should give ~4x throughput of 1: %v vs %v", four, one)
	}
}

func TestNetworkDelayAddsLatency(t *testing.T) {
	link := Link{Latency: 80 * time.Millisecond, Bandwidth: 1_000_000} // 8 Mbps
	run := func(withWAN bool) time.Duration {
		sim := New(4)
		st := sim.Station("origin", 8)
		sim.SetClients(4, 10*time.Millisecond, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
			delay := time.Duration(0)
			back := time.Duration(0)
			if withWAN {
				delay = link.TransferTime(200)   // request upstream
				back = link.TransferTime(20_000) // response downstream
			}
			return []Visit{
				{Delay: delay, Station: st, Service: 2 * time.Millisecond},
				{Delay: back},
			}
		})
		return Mean(Latencies(sim.Run(5*time.Second), ""))
	}
	local, wan := run(false), run(true)
	if wan < local+100*time.Millisecond {
		t.Errorf("WAN latency should add at least the RTT: local=%v wan=%v", local, wan)
	}
}

func TestTagsAndFractionAbove(t *testing.T) {
	sim := New(5)
	st := sim.Station("server", 4)
	sim.TagFn = func(client, iteration int) (string, int) {
		if client%2 == 0 {
			return "video", 1_000_000
		}
		return "html", 10_000
	}
	sim.SetClients(4, time.Millisecond, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
		return []Visit{{Station: st, Service: 5 * time.Millisecond}}
	})
	results := sim.Run(time.Second)
	if len(Latencies(results, "video")) == 0 || len(Latencies(results, "html")) == 0 {
		t.Fatal("expected both tags to appear")
	}
	// Video jobs deliver 1 MB in ~5 ms: far above a 17.5 KB/s (140 Kbps)
	// threshold.
	if f := FractionAbove(results, "video", 17_500); f < 0.99 {
		t.Errorf("video fraction above threshold = %.2f", f)
	}
}

func TestPercentileAndCDF(t *testing.T) {
	lat := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second}
	if p := Percentile(lat, 50); p != 3*time.Second {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(lat, 100); p != 5*time.Second {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(nil, 90); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	cdf := CDF(lat, 5)
	if len(cdf) != 5 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[4].Fraction != 1.0 || cdf[4].Latency != 5*time.Second {
		t.Errorf("last cdf point = %+v", cdf[4])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Latency < cdf[i-1].Latency {
			t.Error("CDF latencies must be non-decreasing")
		}
	}
	if CDF(nil, 5) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestStationStats(t *testing.T) {
	sim := New(6)
	st := sim.Station("busy", 1)
	idle := sim.Station("idle", 1)
	_ = idle
	sim.SetClients(2, 0, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
		return []Visit{{Station: st, Service: 10 * time.Millisecond}}
	})
	sim.Run(2 * time.Second)
	stats := sim.StationStats(2 * time.Second)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	var busyStat, idleStat StationStats
	for _, s := range stats {
		if s.Name == "busy" {
			busyStat = s
		} else {
			idleStat = s
		}
	}
	if busyStat.Completed == 0 || busyStat.Utilization < 0.8 {
		t.Errorf("busy station stats = %+v", busyStat)
	}
	if idleStat.Completed != 0 {
		t.Errorf("idle station completed jobs: %+v", idleStat)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []JobResult {
		sim := New(42)
		st := sim.Station("s", 2)
		sim.SetClients(5, 3*time.Millisecond, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
			svc := time.Duration(1+rng.Intn(5)) * time.Millisecond
			return []Visit{{Station: st, Service: svc}}
		})
		return sim.Run(500 * time.Millisecond)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Latency != b[i].Latency || a[i].Client != b[i].Client {
			t.Fatalf("run not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Property: every completed job has non-negative latency no smaller than the
// sum of its fixed delays would allow, and throughput is non-negative.
func TestPropertyLatenciesNonNegative(t *testing.T) {
	f := func(seed int64, clients uint8) bool {
		sim := New(seed)
		st := sim.Station("s", 2)
		n := int(clients%16) + 1
		sim.SetClients(n, time.Millisecond, func(client, iter int, now time.Duration, rng *rand.Rand) []Visit {
			return []Visit{{Delay: 2 * time.Millisecond, Station: st, Service: time.Millisecond}}
		})
		results := sim.Run(200 * time.Millisecond)
		for _, r := range results {
			if r.Latency < 3*time.Millisecond {
				return false
			}
		}
		return Throughput(results, 200*time.Millisecond) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
