package simnet

import (
	"container/heap"
	"sync"
	"time"
)

// Loop is a reusable discrete-event agenda with a virtual clock, factored
// out of Simulation so other subsystems (the fault-injecting transport, the
// cluster harness's fault schedules) can run on the same event-loop
// machinery. Events are executed in (time, insertion) order; callbacks run
// without the loop lock held, so they may schedule further events.
//
// Unlike Simulation, a Loop may be driven incrementally from many
// goroutines: AdvanceTo serializes event execution behind a run lock, so at
// most one callback executes at a time and the virtual clock never moves
// backwards.
type Loop struct {
	mu     sync.Mutex // guards now, agenda, seq
	runMu  sync.Mutex // serializes event execution
	now    time.Duration
	agenda loopAgenda
	seq    int
}

type loopEvent struct {
	at  time.Duration
	seq int
	fn  func(now time.Duration)
}

type loopAgenda []*loopEvent

func (a loopAgenda) Len() int { return len(a) }
func (a loopAgenda) Less(i, j int) bool {
	if a[i].at != a[j].at {
		return a[i].at < a[j].at
	}
	return a[i].seq < a[j].seq
}
func (a loopAgenda) Swap(i, j int)       { a[i], a[j] = a[j], a[i] }
func (a *loopAgenda) Push(x interface{}) { *a = append(*a, x.(*loopEvent)) }
func (a *loopAgenda) Pop() interface{} {
	old := *a
	n := len(old)
	e := old[n-1]
	*a = old[:n-1]
	return e
}

// NewLoop returns an empty agenda at virtual time zero.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now
}

// At schedules fn at absolute virtual time t. Scheduling in the past is
// clamped to the present: the event fires on the next advance.
func (l *Loop) At(t time.Duration, fn func(now time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t < l.now {
		t = l.now
	}
	l.seq++
	heap.Push(&l.agenda, &loopEvent{at: t, seq: l.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (l *Loop) After(d time.Duration, fn func(now time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	heap.Push(&l.agenda, &loopEvent{at: l.now + d, seq: l.seq, fn: fn})
}

// AdvanceTo runs every event scheduled at or before t in order and leaves
// the clock at t (or later, if a concurrent advance moved it further).
func (l *Loop) AdvanceTo(t time.Duration) {
	l.runMu.Lock()
	defer l.runMu.Unlock()
	for {
		l.mu.Lock()
		if len(l.agenda) == 0 || l.agenda[0].at > t {
			if t > l.now {
				l.now = t
			}
			l.mu.Unlock()
			return
		}
		e := heap.Pop(&l.agenda).(*loopEvent)
		if e.at > l.now {
			l.now = e.at
		}
		now := l.now
		l.mu.Unlock()
		e.fn(now)
	}
}

// Drain runs every scheduled event (including events scheduled by event
// callbacks) and returns the final virtual time.
func (l *Loop) Drain() time.Duration {
	l.runMu.Lock()
	defer l.runMu.Unlock()
	for {
		l.mu.Lock()
		if len(l.agenda) == 0 {
			now := l.now
			l.mu.Unlock()
			return now
		}
		e := heap.Pop(&l.agenda).(*loopEvent)
		if e.at > l.now {
			l.now = e.at
		}
		now := l.now
		l.mu.Unlock()
		e.fn(now)
	}
}

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.agenda)
}
