// Package trace implements Na Kika's cross-node request tracing: a
// 64-bit trace id minted at the ingress node and propagated over every
// RPC a request fans out into (offload forwards, hedged replica reads,
// lease arbitration), per-request activity records (Acts) that the
// pipeline and host layers stamp span timings and side-effect counters
// into, and a lock-free ring of recent request samples the admin
// surface dumps as JSON.
//
// Everything here is built for the hot path: an Act lives inline inside
// the pipeline trace (no allocation), every recorder is nil-safe so
// callers never branch on "is tracing on", and recording a finished
// request into the ring costs exactly one allocation (the Sample).
package trace

import (
	"sync/atomic"
	"time"
)

// MaxSpans bounds the per-request span buffer. A request that fans out
// past the bound keeps its first MaxSpans spans; the drop is recorded in
// SpansDropped so dumps are honest about truncation.
const MaxSpans = 8

// Span is one timed phase of a request: a pipeline stage handler run,
// the origin fetch, or a remote hop. Start is the offset from request
// ingress on the recording node.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Act is the per-request activity record. It is embedded by value in
// the pipeline trace, so stamping it allocates nothing; every method is
// nil-safe so instrumented code paths need no tracing-enabled branch.
// An Act is written by the single goroutine executing its request.
type Act struct {
	// ID is the request's cross-node trace id; zero means untraced.
	ID uint64

	// Spans holds the first NSpans timed phases; SpansDropped counts
	// spans that did not fit.
	Spans        [MaxSpans]Span
	NSpans       int
	SpansDropped int

	// Hedged replica reads issued on behalf of this request, and how
	// many of them the hedge (not the owner) won.
	HedgedReads int32
	HedgeWins   int32

	// Lease activity performed by this request's handlers.
	LeaseAcquires int32
	LeaseDenials  int32
	LeaseRenewals int32
	LeaseReleases int32

	// Fenced writes issued under a lease token, and how many were
	// rejected by a store's fence floor. FenceToken is the last token
	// the request wrote (or attempted to write) under.
	FencedWrites int32
	FenceRejects int32
	FenceToken   uint64
}

// AddSpan records one timed phase. Past MaxSpans the span is counted as
// dropped instead.
func (a *Act) AddSpan(name string, start, dur time.Duration) {
	if a == nil {
		return
	}
	if a.NSpans >= MaxSpans {
		a.SpansDropped++
		return
	}
	a.Spans[a.NSpans] = Span{Name: name, Start: start, Dur: dur}
	a.NSpans++
}

// RecordHedge records one hedged replica read; won says whether the
// hedge beat the owner.
func (a *Act) RecordHedge(won bool) {
	if a == nil {
		return
	}
	a.HedgedReads++
	if won {
		a.HedgeWins++
	}
}

// RecordLeaseAcquire records one acquire attempt and, when granted, the
// fencing token it produced.
func (a *Act) RecordLeaseAcquire(granted bool, token uint64) {
	if a == nil {
		return
	}
	if granted {
		a.LeaseAcquires++
		a.FenceToken = token
	} else {
		a.LeaseDenials++
	}
}

// RecordLeaseRenew records one renew attempt.
func (a *Act) RecordLeaseRenew(ok bool) {
	if a == nil {
		return
	}
	if ok {
		a.LeaseRenewals++
	} else {
		a.LeaseDenials++
	}
}

// RecordLeaseRelease records one release.
func (a *Act) RecordLeaseRelease() {
	if a == nil {
		return
	}
	a.LeaseReleases++
}

// RecordFencedPut records one fenced write under token; rejected says
// the store's fence floor refused it.
func (a *Act) RecordFencedPut(token uint64, rejected bool) {
	if a == nil {
		return
	}
	a.FenceToken = token
	if rejected {
		a.FenceRejects++
	} else {
		a.FencedWrites++
	}
}

// Reset zeroes the record for reuse.
func (a *Act) Reset() {
	if a == nil {
		return
	}
	*a = Act{}
}

// IDGen mints trace ids. Ids are a splitmix64 scramble of a seed hashed
// from the node name plus a per-node counter, so they are unique across
// a cluster in practice, well-distributed, and — critically for the
// deterministic cluster harness — reproducible run to run: no clock, no
// global randomness.
type IDGen struct {
	base uint64
	ctr  atomic.Uint64
}

// NewIDGen returns a generator seeded from the node name.
func NewIDGen(name string) *IDGen {
	// FNV-1a over the name gives each node a distinct id stream.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &IDGen{base: h}
}

// Next returns the next trace id. Never zero: zero is the wire encoding
// for "untraced".
func (g *IDGen) Next() uint64 {
	id := splitmix64(g.base + g.ctr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
