package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// maxSampleURL bounds the URL bytes copied into a Sample. The copy is
// inline (no allocation) because pooled request objects reuse their URL
// backing store the moment the request is released; the bound is sized
// so a Sample stays within one small allocation size class — the
// throughput gate tracks hot-path bytes/op, and the Sample is the one
// allocation tracing adds per request.
const maxSampleURL = 64

// Sample is one finished request, recorded into the ring. A Sample is
// immutable once recorded, so ring readers may hold it without
// synchronization. The span slice aliases the request's Act buffer —
// safe because the trace that owns the Act is never reused.
type Sample struct {
	TraceID uint64
	Node    string
	Method  string

	urlBuf [maxSampleURL]byte
	urlLen uint8

	Start   time.Time
	Elapsed time.Duration

	Spans        []Span
	SpansDropped int

	Status       int
	Generated    bool
	FromCache    bool
	Terminated   bool
	RejectedBusy bool
	Offloaded    bool
	OffloadPeer  string

	HedgedReads   int32
	HedgeWins     int32
	LeaseAcquires int32
	LeaseDenials  int32
	LeaseRenewals int32
	LeaseReleases int32
	FencedWrites  int32
	FenceRejects  int32
	FenceToken    uint64

	// Generation is the deployment generation of the site script the
	// request executed against; 0 when the site had no live deployment.
	Generation uint64
}

// SetURL copies the request URL's host and path into the sample's
// inline buffer (no allocation, no concatenation), truncating past
// maxSampleURL bytes.
func (s *Sample) SetURL(host, path string) {
	n := copy(s.urlBuf[:], host)
	n += copy(s.urlBuf[n:], path)
	s.urlLen = uint8(n)
}

// URL returns the recorded (possibly truncated) request URL. It
// allocates, so it is for dump paths only.
func (s *Sample) URL() string { return string(s.urlBuf[:s.urlLen]) }

// FillFromAct copies an Act's recorded activity into the sample,
// aliasing its span buffer.
func (s *Sample) FillFromAct(a *Act) {
	if a == nil {
		return
	}
	s.TraceID = a.ID
	s.Spans = a.Spans[:a.NSpans]
	s.SpansDropped = a.SpansDropped
	s.HedgedReads = a.HedgedReads
	s.HedgeWins = a.HedgeWins
	s.LeaseAcquires = a.LeaseAcquires
	s.LeaseDenials = a.LeaseDenials
	s.LeaseRenewals = a.LeaseRenewals
	s.LeaseReleases = a.LeaseReleases
	s.FencedWrites = a.FencedWrites
	s.FenceRejects = a.FenceRejects
	s.FenceToken = a.FenceToken
}

// Ring is a fixed-size lock-free buffer of the most recent Samples.
// Writers claim slots with a single atomic add and publish with an
// atomic pointer store; readers snapshot with atomic loads. No locks,
// no blocking, safe under the race detector.
type Ring struct {
	slots []atomic.Pointer[Sample]
	next  atomic.Uint64
}

// DefaultRingSize is the per-node sample capacity when none is
// configured.
const DefaultRingSize = 256

// NewRing returns a ring holding up to n samples (DefaultRingSize if
// n <= 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Sample], n)}
}

// Record publishes a finished sample, overwriting the oldest once the
// ring is full. The sample must not be mutated after Record.
func (r *Ring) Record(s *Sample) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// Len returns how many samples the ring currently holds.
func (r *Ring) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns the current samples, unordered.
func (r *Ring) Snapshot() []*Sample {
	out := make([]*Sample, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Slowest returns up to n recent samples ordered by descending elapsed
// time — the admin surface's "what has been slow lately" dump.
func (r *Ring) Slowest(n int) []*Sample {
	out := r.Snapshot()
	sort.Slice(out, func(i, j int) bool { return out[i].Elapsed > out[j].Elapsed })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
