package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDGenDeterministicNonZeroDistinct(t *testing.T) {
	a, b := NewIDGen("node-0"), NewIDGen("node-0")
	seen := make(map[uint64]bool)
	for i := 0; i < 10_000; i++ {
		id := a.Next()
		if id == 0 {
			t.Fatal("zero trace id minted")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d at step %d", id, i)
		}
		seen[id] = true
		if again := b.Next(); again != id {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, id, again)
		}
	}
	if NewIDGen("node-1").Next() == NewIDGen("node-2").Next() {
		t.Fatal("different nodes minted the same first id")
	}
}

func TestActRecordersAreNilSafe(t *testing.T) {
	var a *Act
	a.AddSpan("x", 0, time.Millisecond)
	a.RecordHedge(true)
	a.RecordLeaseAcquire(true, 7)
	a.RecordLeaseRenew(false)
	a.RecordLeaseRelease()
	a.RecordFencedPut(7, true)
	a.Reset()
}

func TestActSpanOverflowCountsDrops(t *testing.T) {
	var a Act
	for i := 0; i < MaxSpans+3; i++ {
		a.AddSpan("s", 0, time.Duration(i))
	}
	if a.NSpans != MaxSpans || a.SpansDropped != 3 {
		t.Fatalf("NSpans=%d dropped=%d, want %d and 3", a.NSpans, a.SpansDropped, MaxSpans)
	}
}

func TestActCounters(t *testing.T) {
	var a Act
	a.RecordHedge(false)
	a.RecordHedge(true)
	a.RecordLeaseAcquire(true, 3)
	a.RecordLeaseAcquire(false, 0)
	a.RecordLeaseRenew(true)
	a.RecordLeaseRelease()
	a.RecordFencedPut(3, false)
	a.RecordFencedPut(3, true)
	if a.HedgedReads != 2 || a.HedgeWins != 1 {
		t.Fatalf("hedges %d/%d, want 2/1", a.HedgedReads, a.HedgeWins)
	}
	if a.LeaseAcquires != 1 || a.LeaseDenials != 1 || a.LeaseRenewals != 1 || a.LeaseReleases != 1 {
		t.Fatalf("lease counters %+v", a)
	}
	if a.FencedWrites != 1 || a.FenceRejects != 1 || a.FenceToken != 3 {
		t.Fatalf("fence counters %+v", a)
	}
}

func TestSampleURLTruncates(t *testing.T) {
	var s Sample
	long := strings.Repeat("u", maxSampleURL+50)
	s.SetURL(long, "/p")
	if got := s.URL(); got != long[:maxSampleURL] {
		t.Fatalf("URL() = %d bytes, want %d", len(got), maxSampleURL)
	}
	s.SetURL("origin", "/a/b")
	if s.URL() != "origin/a/b" {
		t.Fatalf("URL() = %q", s.URL())
	}
}

func TestRingOverwritesOldestAndSortsSlowest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(&Sample{TraceID: uint64(i), Elapsed: time.Duration(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	got := r.Slowest(2)
	if len(got) != 2 || got[0].TraceID != 6 || got[1].TraceID != 5 {
		t.Fatalf("Slowest(2) = %+v, want ids 6,5", got)
	}
	// Ids 1 and 2 were overwritten.
	for _, s := range r.Snapshot() {
		if s.TraceID <= 2 {
			t.Fatalf("overwritten sample %d still present", s.TraceID)
		}
	}
}

// TestRingConcurrentRecordSnapshot exercises the lock-free ring under
// the race detector: many writers overwriting while readers snapshot.
func TestRingConcurrentRecordSnapshot(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := &Sample{TraceID: uint64(w<<32 | i), Elapsed: time.Duration(i)}
				s.SetURL("origin", "/x")
				r.Record(s)
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Slowest(10) {
					_ = s.URL()
					_ = s.TraceID
				}
			}
		}()
	}
	// Writers finish first, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
}
