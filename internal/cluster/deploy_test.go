package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"nakika/internal/deploy"
	"nakika/internal/overlay"
	"nakika/internal/state"
)

const deploySite = "svc.example.org"

// ringOrder returns the cluster's node names sorted by ring position
// starting at the owner of the replicated key — the key's successor
// (replica-placement) order. Node IDs hash node names, so this order is a
// pure function of cluster size, independent of the scenario seed.
func ringOrder(c *Cluster, replicaKey string) []string {
	names := c.Names()
	start := uint64(overlay.HashID(replicaKey))
	sort.Slice(names, func(i, j int) bool {
		di := uint64(overlay.HashID(names[i])) - start
		dj := uint64(overlay.HashID(names[j])) - start
		return di < dj
	})
	return names
}

// deployBundle is a minimal deployable service script: every request gets
// a generated response whose body is the bundle's marker, so which script
// version served a request is readable off the response.
func deployBundle(marker string) string {
	return fmt.Sprintf("onRequest = function () { return {status: 200, body: %q}; };", marker)
}

// runDeployChurnScenario is the deployment acceptance scenario: a 6-node
// manual-maintenance ring with factor-3 replication serves scripted
// traffic from a deployed bundle while the fault DSL crashes one node,
// publishes a new script version mid-churn, and restarts the dead node.
// Every response must come from exactly one script version (v1 or v2,
// never a torn mix), the cluster must converge on the new generation —
// including the node that was dead while it propagated — and the harness
// must report no silent fault-action failures. Returns a fingerprint of
// every deterministic observable. The nightly soak sweeps this scenario
// across seed offsets like the other cluster scenarios.
func runDeployChurnScenario(t *testing.T, seed int64) string {
	t.Helper()
	c := bootReplicated(t, 6, seed, 0)
	c.DefineBundle("v1", deployBundle("v1"))
	c.DefineBundle("v2", deployBundle("v2"))

	entry := fmt.Sprintf("node-%d", ((seed%6)+6)%6)
	victim := fmt.Sprintf("node-%d", ((seed+3)%6+6)%6)
	if victim == entry {
		t.Fatalf("scenario bug: entry %s == victim %s", entry, victim)
	}

	gen1, err := c.Deploy(entry, deploySite, "v1")
	if err != nil {
		t.Fatalf("deploy v1: %v", err)
	}
	c.StabilizeAll(2)
	if err := c.CheckDeployConvergence(deploySite, gen1); err != nil {
		t.Fatal(err)
	}

	// Script the churn around the second deploy: the victim dies before v2
	// is published (it misses the record entirely), v2 is published by the
	// DSL while the victim is down, and the victim restarts empty-handed.
	now := c.Sim.Now()
	schedule := fmt.Sprintf(
		"at %s crash %s\nat %s deploy %s %s v2\nat %s restart %s",
		now+20*time.Millisecond, victim,
		now+40*time.Millisecond, entry, deploySite,
		now+60*time.Millisecond, victim,
	)
	if err := c.Schedule(schedule); err != nil {
		t.Fatal(err)
	}

	// Drive traffic interleaved with maintenance so the scheduled events
	// fire, the deferred deploy executes, and repair catches the restarted
	// victim up. Responses may come from v1 before the swap and v2 after;
	// anything else (mixed, empty, error) is a torn deploy.
	url := "http://" + deploySite + "/page"
	sawV1, sawV2 := 0, 0
	for round := 0; round < 8; round++ {
		for i := 0; i < 12; i++ {
			resp, err := c.Handle(entry, url)
			if err != nil {
				t.Fatalf("round %d request %d: %v", round, i, err)
			}
			switch string(resp.Body) {
			case "v1":
				sawV1++
			case "v2":
				sawV2++
			default:
				t.Fatalf("round %d request %d: body %q is neither script version", round, i, resp.Body)
			}
		}
		c.StabilizeAll(2)
	}
	if sawV1 == 0 || sawV2 == 0 {
		t.Fatalf("deploy did not land mid-burst: %d v1 responses, %d v2 responses", sawV1, sawV2)
	}

	// Full convergence, including the restarted victim: repair restored its
	// deployment record and its sync loop recompiled the active bundle.
	c.StabilizeAll(6)
	if err := c.CheckDeployConvergence(deploySite, gen1+1); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	var fp strings.Builder
	fmt.Fprintf(&fp, "entry=%s victim=%s v1=%d v2=%d", entry, victim, sawV1, sawV2)
	for _, name := range c.Names() {
		fmt.Fprintf(&fp, " %s:gen=%d", name, c.NodeByName(name).AppliedGeneration(deploySite))
	}
	fmt.Fprintf(&fp, " holders=%v delivered=%d", c.StateHolders(deploySite, deploy.StateKey), c.Sim.Stats().Delivered)
	return fp.String()
}

// TestDeployMidChurnConverges drives the deployment churn scenario across
// seeds and pins determinism: repeat runs fingerprint identically.
func TestDeployMidChurnConverges(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		seed := seed + seedOffset()
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			first := runDeployChurnScenario(t, seed)
			second := runDeployChurnScenario(t, seed)
			if first != second {
				t.Fatalf("scenario not deterministic under seed %d:\n first: %s\nsecond: %s", seed, first, second)
			}
		})
	}
}

// TestConcurrentDeploysConvergeLWW races two deploys of the same site from
// opposite sides of a partition. Both sides accept a generation-1 record
// with different scripts; after heal and repair, last-writer-wins picks
// exactly one and every node — record and pipeline both — converges on it.
//
// The partition is cut along ring geometry (which depends only on node
// names, never on the seed): the record's owner and its first successor on
// one side, everything else on the other. With routing tables left intact
// (no maintenance runs while split), the owner's write acks on its in-side
// replica, and the far side's owner-routing walks the successor order past
// the two unreachable candidates to an acting owner whose own replica
// targets are in-side — so both deploys genuinely commit concurrently.
func TestConcurrentDeploysConvergeLWW(t *testing.T) {
	c := bootReplicated(t, 6, 51+seedOffset(), 0)
	c.DefineBundle("va", deployBundle("va"))
	c.DefineBundle("vb", deployBundle("vb"))

	order := ringOrder(c, state.ReplicaKey(deploySite, deploy.StateKey))
	sideA := order[:2]
	sideB := order[2:]
	c.Partition(sideA, sideB)

	genA, errA := c.Deploy(order[0], deploySite, "va") // the record's true owner
	genB, errB := c.Deploy(order[2], deploySite, "vb") // acting owner across the cut
	if errA != nil || errB != nil {
		t.Fatalf("partitioned deploys failed: sideA=(%d,%v) sideB=(%d,%v)", genA, errA, genB, errB)
	}
	if genA != 1 || genB != 1 {
		t.Fatalf("both sides should assign generation 1 (neither saw the other's record): got %d and %d", genA, genB)
	}
	if got := c.NodeByName(order[0]).AppliedGeneration(deploySite); got != 1 {
		t.Fatalf("side A publisher serves gen %d, want 1", got)
	}
	if got := c.NodeByName(order[2]).AppliedGeneration(deploySite); got != 1 {
		t.Fatalf("side B publisher serves gen %d, want 1", got)
	}

	c.Heal()
	c.StabilizeAll(4)
	c.RepairAll()
	c.StabilizeAll(2)
	if err := c.CheckDeployConvergence(deploySite, 1); err != nil {
		t.Fatal(err)
	}

	// Record convergence implies pipeline convergence: every node serves
	// the same script body — one of the two candidates, on all six nodes.
	winner := ""
	url := "http://" + deploySite + "/page"
	for _, name := range c.Names() {
		resp, err := c.Handle(name, url)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body := string(resp.Body)
		if body != "va" && body != "vb" {
			t.Fatalf("%s serves %q, not a deployed script version", name, body)
		}
		if winner == "" {
			winner = body
		} else if body != winner {
			t.Fatalf("nodes diverge after heal: %s serves %q, earlier nodes served %q", name, body, winner)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRollbackPastRetentionRejected publishes more versions than the
// retention window keeps and verifies rollback honors the window: trimmed
// generations are rejected, retained ones re-activate cluster-wide, and
// generation numbers never regress on the next deploy.
func TestRollbackPastRetentionRejected(t *testing.T) {
	c := bootReplicated(t, 4, 61+seedOffset(), 0)
	total := deploy.Retention + 2
	lastGen := uint64(0)
	for i := 1; i <= total; i++ {
		name := fmt.Sprintf("v%d", i)
		c.DefineBundle(name, deployBundle(name))
		gen, err := c.Deploy("node-0", deploySite, name)
		if err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
		if gen != uint64(i) {
			t.Fatalf("deploy %s assigned gen %d, want %d", name, gen, i)
		}
		lastGen = gen
	}

	node := c.NodeByName("node-1") // rollback from a node other than the publisher
	if err := node.Rollback(deploySite, 1); err == nil {
		t.Fatal("rollback to a trimmed generation succeeded, want rejection")
	} else if !strings.Contains(err.Error(), "not retained") {
		t.Fatalf("rollback rejection has wrong cause: %v", err)
	}

	oldest := lastGen - deploy.Retention + 1 // oldest generation still retained
	if err := node.Rollback(deploySite, oldest); err != nil {
		t.Fatalf("rollback to retained gen %d: %v", oldest, err)
	}
	c.StabilizeAll(3)
	if err := c.CheckDeployConvergence(deploySite, oldest); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Handle("node-2", "http://"+deploySite+"/page")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("v%d", oldest); string(resp.Body) != want {
		t.Fatalf("after rollback the cluster serves %q, want %q", resp.Body, want)
	}

	// Generations never regress: the next deploy counts past the highest
	// ever assigned, not past the rolled-back active.
	c.DefineBundle("next", deployBundle("next"))
	gen, err := c.Deploy("node-0", deploySite, "next")
	if err != nil {
		t.Fatal(err)
	}
	if gen != lastGen+1 {
		t.Fatalf("deploy after rollback assigned gen %d, want %d", gen, lastGen+1)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashedNodeCatchesUpOnDeploy kills a node, publishes while it is
// dead, and verifies the existing anti-entropy machinery alone brings it
// back in sync: repair restores its copy of the deployment record, and its
// sync pass compiles and swaps the active bundle.
func TestCrashedNodeCatchesUpOnDeploy(t *testing.T) {
	c := bootReplicated(t, 6, 71+seedOffset(), 0)
	c.DefineBundle("v1", deployBundle("v1"))
	c.DefineBundle("v2", deployBundle("v2"))

	gen1, err := c.Deploy("node-0", deploySite, "v1")
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(2)
	if err := c.CheckDeployConvergence(deploySite, gen1); err != nil {
		t.Fatal(err)
	}

	const victim = "node-4"
	c.Crash(victim)
	gen2, err := c.Deploy("node-0", deploySite, "v2")
	if err != nil {
		t.Fatalf("deploy with %s dead: %v", victim, err)
	}
	c.StabilizeAll(4)

	c.Restart(victim)
	c.StabilizeAll(6)
	if got := c.NodeByName(victim).AppliedGeneration(deploySite); got != gen2 {
		t.Fatalf("restarted %s serves gen %d, want %d", victim, got, gen2)
	}
	resp, err := c.Handle(victim, "http://"+deploySite+"/page")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "v2" {
		t.Fatalf("restarted %s serves %q, want the post-crash deploy %q", victim, resp.Body, "v2")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
