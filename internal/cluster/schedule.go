package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The fault-schedule DSL scripts network faults at virtual times. One
// directive per line; blank lines and #-comments are ignored:
//
//	at <time> partition <group> [| <group>]...   # groups: comma-separated names
//	at <time> heal
//	at <time> crash <node>
//	at <time> restart <node>
//	at <time> latency <from> <to> <duration>
//	at <time> drop <from> <to> <rate>
//	at <time> deploy <node> <site> <bundle>      # bundle: see DefineBundle
//
// Times and durations use Go syntax ("50ms", "1.5s"). Nodes not named in
// any partition group form their own side, so "partition node-3" isolates
// node-3 from everyone else. Events fire as simulated traffic advances the
// virtual clock past their timestamps — a partition scheduled between two
// messages of a stampede genuinely lands mid-stampede. Actions are pure
// fault-state changes (they never send messages), so they are safe to run
// from inside the event loop — except deploy, which needs replication
// RPCs; its action only records the intent, and StabilizeAll executes it
// (the same deferred-work pattern restart resync uses).

// Event is one parsed schedule directive.
type Event struct {
	At   time.Duration
	Op   string
	Args []string
}

// ParseSchedule parses the DSL; it returns the events in file order.
func ParseSchedule(src string) ([]Event, error) {
	var events []Event
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "at" {
			return nil, fmt.Errorf("schedule line %d: want 'at <time> <op> ...', got %q", lineNo+1, line)
		}
		at, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("schedule line %d: bad time %q: %v", lineNo+1, fields[1], err)
		}
		op, args := fields[2], fields[3:]
		switch op {
		case "partition":
			if len(args) == 0 {
				return nil, fmt.Errorf("schedule line %d: partition needs at least one group", lineNo+1)
			}
		case "heal":
			if len(args) != 0 {
				return nil, fmt.Errorf("schedule line %d: heal takes no arguments", lineNo+1)
			}
		case "crash", "restart":
			if len(args) != 1 {
				return nil, fmt.Errorf("schedule line %d: %s takes exactly one node", lineNo+1, op)
			}
		case "latency":
			if len(args) != 3 {
				return nil, fmt.Errorf("schedule line %d: latency takes <from> <to> <duration>", lineNo+1)
			}
			if _, err := time.ParseDuration(args[2]); err != nil {
				return nil, fmt.Errorf("schedule line %d: bad duration %q", lineNo+1, args[2])
			}
		case "drop":
			if len(args) != 3 {
				return nil, fmt.Errorf("schedule line %d: drop takes <from> <to> <rate>", lineNo+1)
			}
			if _, err := strconv.ParseFloat(args[2], 64); err != nil {
				return nil, fmt.Errorf("schedule line %d: bad rate %q", lineNo+1, args[2])
			}
		case "deploy":
			if len(args) != 3 {
				return nil, fmt.Errorf("schedule line %d: deploy takes <node> <site> <bundle>", lineNo+1)
			}
		default:
			return nil, fmt.Errorf("schedule line %d: unknown op %q", lineNo+1, op)
		}
		events = append(events, Event{At: at, Op: op, Args: args})
	}
	return events, nil
}

// apply executes one event's fault action.
func (c *Cluster) apply(ev Event) {
	switch ev.Op {
	case "partition":
		var groups [][]string
		for _, g := range splitGroups(ev.Args) {
			groups = append(groups, g)
		}
		c.Partition(groups...)
	case "heal":
		c.Heal()
	case "crash":
		c.Crash(ev.Args[0])
	case "restart":
		c.Restart(ev.Args[0])
	case "latency":
		d, _ := time.ParseDuration(ev.Args[2])
		c.Sim.SetLatency(ev.Args[0], ev.Args[1], d)
	case "drop":
		rate, _ := strconv.ParseFloat(ev.Args[2], 64)
		c.Sim.SetDropRate(ev.Args[0], ev.Args[1], rate)
	case "deploy":
		// Publishing sends replication RPCs, which is forbidden inside the
		// event loop; record the intent for StabilizeAll to execute.
		c.errMu.Lock()
		c.pendingDeploys = append(c.pendingDeploys, pendingDeploy{node: ev.Args[0], site: ev.Args[1], bundle: ev.Args[2]})
		c.errMu.Unlock()
	}
}

// splitGroups turns ["a,b", "|", "c"] or ["a,b|c"] into [[a b] [c]].
func splitGroups(args []string) [][]string {
	var groups [][]string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	for _, arg := range args {
		for _, part := range strings.Split(arg, "|") {
			for _, name := range strings.Split(part, ",") {
				if name = strings.TrimSpace(name); name != "" {
					cur = append(cur, name)
				}
			}
			if strings.Contains(arg, "|") {
				flush()
			}
		}
	}
	flush()
	return groups
}

// Schedule parses src and arms every event on the simulated network's
// virtual clock: each fires when message traffic advances past its time.
func (c *Cluster) Schedule(src string) error {
	events, err := ParseSchedule(src)
	if err != nil {
		return err
	}
	for _, ev := range events {
		ev := ev
		c.Sim.Loop().At(ev.At, func(now time.Duration) { c.apply(ev) })
	}
	return nil
}
