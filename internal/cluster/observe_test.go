package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nakika/internal/core"
	"nakika/internal/state"
	"nakika/internal/trace"
)

// Observability acceptance on the simulated cluster: the per-node metrics
// registry agrees with the scenario the harness drove, script-level lease
// and hedged-read activity lands on the request's trace sample, and a
// request that crossed nodes (offload, traced RPCs) shares one trace id
// on every side.

// expositionHas asserts the node's rendered /metrics exposition contains
// the exact series line.
func expositionHas(t *testing.T, n *core.Node, line string) {
	t.Helper()
	var sb strings.Builder
	if err := n.Metrics().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), line) {
		t.Fatalf("exposition missing %q:\n%s", line, sb.String())
	}
}

// leaseSite is the scripted site of the trace-activity scenario.
const leaseSite = "lease-site.example.org"

// leaseScriptOrigin serves a page plus a nakika.js whose onRequest runs a
// lease-held critical section: acquire, one fenced write, and — only when
// the request carries ?release=1 — a release. A request arriving while a
// previous holder still holds the lease is denied.
func leaseScriptOrigin() *CountingOrigin {
	origin := NewCountingOrigin()
	origin.AddPage("http://"+leaseSite+"/page", "lease page body", 3600)
	origin.AddPage("http://"+leaseSite+"/nakika.js", `
		var p = new Policy();
		p.url = [ "`+leaseSite+`" ];
		p.onRequest = function() {
			var token = Lease.acquire("job", 60000);
			if (token != null) {
				Lease.put("cs", "held", "job", token);
				if (Request.query == "release=1") {
					Lease.release("job", token);
				}
			}
		};
		p.register();
	`, 3600)
	return origin
}

// TestScriptLeaseActivityLandsOnTraceSample drives the scripted
// lease-holding site and asserts each request's sample in the trace ring
// records exactly the lease activity its handler performed: the grant
// with its fence token and the fenced write on the first request, the
// denial on the second (the lease is still held), and the release on the
// third once the holder lets go.
func TestScriptLeaseActivityLandsOnTraceSample(t *testing.T) {
	c, err := New(Config{N: 5, Seed: 7, Latency: time.Millisecond, TTL: time.Hour, Manual: true}, leaseScriptOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)

	bySample := func(node string) *trace.Sample {
		samples := c.NodeByName(node).Traces().Snapshot()
		if len(samples) == 0 {
			t.Fatalf("%s recorded no trace samples", node)
		}
		latest := samples[0]
		for _, s := range samples {
			if s.Start.After(latest.Start) {
				latest = s
			}
		}
		return latest
	}

	// Request 1 (node-0): grant + fenced write, held past the handler.
	if _, err := c.Handle("node-0", "http://"+leaseSite+"/page"); err != nil {
		t.Fatal(err)
	}
	s1 := bySample("node-0")
	if s1.TraceID == 0 {
		t.Fatal("request 1: no trace id minted")
	}
	if s1.LeaseAcquires != 1 || s1.FencedWrites != 1 || s1.FenceToken == 0 {
		t.Fatalf("request 1 sample: acquires=%d fencedWrites=%d token=%d, want 1/1/nonzero",
			s1.LeaseAcquires, s1.FencedWrites, s1.FenceToken)
	}
	if s1.LeaseDenials != 0 || s1.LeaseReleases != 0 {
		t.Fatalf("request 1 sample: denials=%d releases=%d, want 0/0", s1.LeaseDenials, s1.LeaseReleases)
	}

	// Request 2 (node-1): the holder is live, so the acquire is denied and
	// nothing is written.
	if _, err := c.Handle("node-1", "http://"+leaseSite+"/page"); err != nil {
		t.Fatal(err)
	}
	s2 := bySample("node-1")
	if s2.LeaseDenials != 1 || s2.LeaseAcquires != 0 || s2.FencedWrites != 0 {
		t.Fatalf("request 2 sample: denials=%d acquires=%d fencedWrites=%d, want 1/0/0",
			s2.LeaseDenials, s2.LeaseAcquires, s2.FencedWrites)
	}
	if s2.TraceID == s1.TraceID {
		t.Fatal("independent requests share a trace id")
	}

	// Request 1's holder released nothing, so free the lease by releasing
	// through the public surface, then request 3 re-acquires and releases
	// within its handler.
	if ok := c.NodeByName("node-0").LeaseRelease(leaseSite, "job", s1.FenceToken); !ok {
		t.Fatal("manual release of the held lease failed")
	}
	if _, err := c.Handle("node-2", "http://"+leaseSite+"/page?release=1"); err != nil {
		t.Fatal(err)
	}
	s3 := bySample("node-2")
	if s3.LeaseAcquires != 1 || s3.LeaseReleases != 1 || s3.FencedWrites != 1 {
		t.Fatalf("request 3 sample: acquires=%d releases=%d fencedWrites=%d, want 1/1/1",
			s3.LeaseAcquires, s3.LeaseReleases, s3.FencedWrites)
	}

	// The registry on the lease record's acting owner agrees with the
	// arbitration the three requests drove: two grants, one denial.
	owner := c.NodeByName(leaseRecordOwner(c, leaseSite, "job"))
	st := owner.Stats().Lease
	expositionHas(t, owner, fmt.Sprintf("nakika_lease_acquired_total %d", st.Acquired))
	expositionHas(t, owner, fmt.Sprintf("nakika_lease_denied_total %d", st.Denied))
	if st.Acquired != 2 || st.Denied != 1 {
		t.Fatalf("owner arbitration stats = %+v, want 2 acquired / 1 denied", st)
	}
}

// hedgeScriptOrigin serves a page whose onRequest reads one replicated
// hard-state key — the read that hedges once the owner looks slow.
func hedgeScriptOrigin() *CountingOrigin {
	origin := NewCountingOrigin()
	origin.AddPage("http://"+leaseSite+"/page", "hedge page body", 3600)
	origin.AddPage("http://"+leaseSite+"/nakika.js", `
		var p = new Policy();
		p.url = [ "`+leaseSite+`" ];
		p.onRequest = function() { State.get("hot"); };
		p.register();
	`, 3600)
	return origin
}

// TestScriptHedgedReadLandsOnTraceSample drives the scripted State.get
// site through a node that does not own the key, with a hedge budget the
// owner's round trip always exceeds: once the first read trains the RTT
// estimate, subsequent requests' samples must record the hedged read.
func TestScriptHedgedReadLandsOnTraceSample(t *testing.T) {
	c, err := New(Config{N: 5, Seed: 11, Latency: time.Millisecond, TTL: time.Hour, Manual: true,
		HedgeAfter: 10 * time.Microsecond}, hedgeScriptOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)

	owner := c.Ring.Successor(state.ReplicaKey(leaseSite, "hot")).Name
	ingress := pickNode(c, owner)
	if err := c.NodeByName(owner).StatePut(leaseSite, "hot", "v"); err != nil {
		t.Fatal(err)
	}

	// Drive requests until a sample records a hedged read: the first
	// request's owner round trip (2x 1ms of virtual latency) trains the
	// estimate past the 10µs budget, so the second request must hedge.
	hedged := false
	for i := 0; i < 4 && !hedged; i++ {
		if _, err := c.Handle(ingress, "http://"+leaseSite+"/page"); err != nil {
			t.Fatal(err)
		}
		for _, s := range c.NodeByName(ingress).Traces().Snapshot() {
			if s.HedgedReads > 0 {
				hedged = true
				if s.TraceID == 0 {
					t.Fatal("hedged sample has no trace id")
				}
			}
		}
	}
	if !hedged {
		t.Fatal("no request sample recorded a hedged read despite the slow owner")
	}
	st := c.NodeByName(ingress).Stats().Offload
	if st.HedgedReads == 0 {
		t.Fatal("node hedge counter disagrees with the sample")
	}
	expositionHas(t, c.NodeByName(ingress), fmt.Sprintf("nakika_hedged_reads_total %d", st.HedgedReads))
}
