// Package cluster is a deterministic fault-injection harness for whole
// clusters of Na Kika edge nodes: it boots N nodes that communicate over
// the simulated transport, runs scripted fault schedules (partitions,
// crashes, latency and loss changes) at virtual times, and checks
// distributed invariants — lookup convergence after churn, at-most-one
// origin fetch per contested key, no lost cooperative-cache publishes after
// a partition heals.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nakika/internal/core"
	"nakika/internal/httpmsg"
	"nakika/internal/overlay"
	"nakika/internal/store"
	"nakika/internal/transport"
)

// Config sizes and seeds a simulated cluster.
type Config struct {
	// N is the number of nodes (named node-0..node-N-1).
	N int
	// Seed drives the simulated network's fault randomness.
	Seed int64
	// Latency is the default one-way message latency; zero means 1ms.
	Latency time.Duration
	// Regions are assigned round-robin; empty means three default regions.
	Regions []string
	// TTL overrides the overlay index TTL.
	TTL time.Duration
	// Manual switches the overlay to incremental maintenance
	// (Stabilize/FixFingers) instead of instant convergence.
	Manual bool
	// Persist gives every node a persistent data directory — an in-memory
	// store.FS keyed by node name, so the harness stays hermetic and
	// deterministic — that survives crash/restart: a crashed node comes
	// back with its hard state replayed from the log and its disk cache
	// tier intact, instead of empty-handed.
	Persist bool
	// Replication overrides every node's core.Config.ReplicationFactor:
	// zero keeps the node default (successor replication with factor 3),
	// a positive value sets the factor, and a negative value disables
	// successor replication (the legacy bus-broadcast state model some
	// scenarios pin).
	Replication int
	// OffloadThreshold enables load-aware request offload on every node
	// (core.Config.OffloadThreshold); zero keeps it disabled.
	OffloadThreshold float64
	// HedgeAfter enables hedged replica reads on every node
	// (core.Config.HedgeAfter); zero keeps them disabled.
	HedgeAfter time.Duration
	// LoadHalfLife overrides the load-score decay half-life. The harness
	// always wires core.Config.LoadClock to the simulated network's virtual
	// clock, so load accounting is deterministic under seed.
	LoadHalfLife time.Duration
	// Mutate, when non-nil, adjusts each node's Config before boot.
	Mutate func(i int, cfg *core.Config)
}

// Cluster is a booted set of nodes over one simulated network.
type Cluster struct {
	Sim  *transport.Sim
	Ring *overlay.Ring

	cfg   Config
	names []string
	nodes map[string]*core.Node
	// fss holds each node's data filesystem (Persist mode); keyed by node
	// name, preserved across crash/restart like a real disk.
	fss map[string]*store.MemFS

	errMu sync.Mutex
	errs  []string
	// rounds counts the maintenance rounds this cluster has driven through
	// StabilizeAll. It is deliberately a per-Cluster field, never package
	// state: a process runs many harnesses (repeat-run fingerprints,
	// seed sweeps, interleaved scenarios in one test binary), and a shared
	// counter would make any behaviour derived from it — resync-stall
	// detection below, round-stamped diagnostics — depend on which tests
	// ran first. TestStabilizeRoundsIsolatedAcrossHarnesses pins this.
	rounds int64
	// resync maps nodes that must pull their owned key range on the next
	// StabilizeAll — restarted nodes catching up on writes they missed, and
	// fresh joiners streaming the range they took over — to the round they
	// were marked in, so a pull that keeps failing surfaces in Err instead
	// of retrying silently forever.
	resync map[string]int64
	// bundles are the named script bundles the fault DSL's deploy directive
	// references; pendingDeploys are deploy directives recorded inside the
	// event loop (where sending messages is forbidden) awaiting execution
	// from StabilizeAll — the same deferred-work pattern as resync.
	bundles        map[string]string
	pendingDeploys []pendingDeploy
}

// pendingDeploy is one DSL deploy directive awaiting execution.
type pendingDeploy struct {
	node, site, bundle string
}

// resyncStallRounds is how many maintenance rounds a marked node may spend
// failing its handoff pull before the harness reports it through Err.
const resyncStallRounds = 64

// New boots the cluster with every node proxying for origin.
func New(cfg Config, origin core.Fetcher) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	sim := transport.NewSim(transport.SimConfig{Seed: cfg.Seed, DefaultLatency: cfg.Latency})
	ring := overlay.NewRing()
	ring.Transport = sim
	ring.ManualMaintenance = cfg.Manual
	if cfg.TTL > 0 {
		ring.DefaultTTL = cfg.TTL
	}
	c := &Cluster{Sim: sim, Ring: ring, cfg: cfg, nodes: make(map[string]*core.Node), fss: make(map[string]*store.MemFS), resync: make(map[string]int64)}
	for i := 0; i < cfg.N; i++ {
		if _, err := c.boot(i, origin); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// boot builds and registers node i.
func (c *Cluster) boot(i int, origin core.Fetcher) (*core.Node, error) {
	regions := c.cfg.Regions
	if len(regions) == 0 {
		regions = []string{"us-east", "eu-west", "ap-south"}
	}
	name := fmt.Sprintf("node-%d", i)
	nodeCfg := core.Config{
		Name:              name,
		Region:            regions[i%len(regions)],
		Upstream:          origin,
		Ring:              c.Ring,
		ReplicationFactor: c.cfg.Replication,
		OffloadThreshold:  c.cfg.OffloadThreshold,
		HedgeAfter:        c.cfg.HedgeAfter,
		LoadHalfLife:      c.cfg.LoadHalfLife,
		LoadClock:         c.Sim.Now,
	}
	if c.cfg.Persist {
		fs := store.NewMemFS()
		c.fss[name] = fs
		nodeCfg.DataFS = fs
	}
	if c.cfg.Mutate != nil {
		c.cfg.Mutate(i, &nodeCfg)
	}
	n, err := core.NewNode(nodeCfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: boot %s: %w", name, err)
	}
	c.names = append(c.names, name)
	c.nodes[name] = n
	return n, nil
}

// AddNode boots one additional node (continuing the node-<i> sequence)
// onto the running cluster's ring and returns its name. The joiner is
// marked for handoff: the next StabilizeAll streams the key range it now
// owns from its successor. The origin must be the same fetcher the
// cluster was built with (it is per-node configuration).
func (c *Cluster) AddNode(origin core.Fetcher) (string, error) {
	n, err := c.boot(len(c.names), origin)
	if err != nil {
		return "", err
	}
	c.errMu.Lock()
	c.resync[n.Name()] = c.rounds
	c.errMu.Unlock()
	return n.Name(), nil
}

// Names returns the node names in boot order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *core.Node { return c.nodes[c.names[i]] }

// NodeByName returns the named node, or nil.
func (c *Cluster) NodeByName(name string) *core.Node { return c.nodes[name] }

// Handle runs one GET through the named node.
func (c *Cluster) Handle(node, url string) (*httpmsg.Response, error) {
	n := c.nodes[node]
	if n == nil {
		return nil, fmt.Errorf("cluster: unknown node %s", node)
	}
	resp, _, err := n.Handle(httpmsg.MustRequest("GET", url))
	return resp, err
}

// Partition splits the network into groups (unlisted nodes form their own
// side); Heal removes it.
func (c *Cluster) Partition(groups ...[]string) { c.Sim.Partition(groups...) }

// Heal removes every partition.
func (c *Cluster) Heal() { c.Sim.Heal() }

// Crash makes a node unreachable and kills its process state: soft state
// (overlay index slice, memory cache) is discarded and the storage engine
// is abandoned without flushing. In Persist mode the node's data
// filesystem — like a real disk — keeps every byte already written.
func (c *Cluster) Crash(name string) {
	c.Sim.Crash(name)
	if n := c.nodes[name]; n != nil {
		n.Crash()
	}
}

// Restart brings a crashed node back. In Persist mode it recovers from
// its preserved data directory (hard state replayed from the log, disk
// cache rescanned); otherwise it returns empty-handed, as before. Either
// way the node is marked for resync: the next StabilizeAll streams the
// key range it owns back from its successors, catching it up on the
// writes it missed while dead. (Restart may run from inside the simulated
// network's event loop, where sending messages is forbidden, so the
// handoff itself is deferred to StabilizeAll.)
func (c *Cluster) Restart(name string) {
	c.Sim.Restart(name)
	if n := c.nodes[name]; n != nil {
		if err := n.Recover(); err != nil {
			c.errMu.Lock()
			c.errs = append(c.errs, fmt.Sprintf("restart %s: %v", name, err))
			c.errMu.Unlock()
		}
		c.errMu.Lock()
		c.resync[name] = c.rounds
		c.errMu.Unlock()
	}
}

// Err reports failures from fault actions (a restart whose recovery
// failed); tests check it after driving a schedule.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("cluster: %s", strings.Join(c.errs, "; "))
}

// DataFS returns the named node's preserved data filesystem (nil outside
// Persist mode).
func (c *Cluster) DataFS(name string) *store.MemFS { return c.fss[name] }

// Live reports whether the node is currently not crashed.
func (c *Cluster) Live(name string) bool { return !c.Sim.Crashed(name) }

// StabilizeAll runs overlay maintenance rounds across live nodes, and
// after each round drives the replication consequences of whatever churn
// the round uncovered: restarted/joining nodes marked for resync pull the
// key range they own from their successors (chunked handoff streams), and
// nodes whose stabilization flagged churn (dead predecessor, changed
// successor head) run a repair pass that promotes replicas and
// re-replicates to restore the replication factor. Everything runs in
// deterministic (boot/sorted) order.
func (c *Cluster) StabilizeAll(rounds int) {
	for i := 0; i < rounds; i++ {
		c.errMu.Lock()
		c.rounds++
		c.errMu.Unlock()
		// One maintenance round over live nodes only — a crashed process
		// runs no maintenance, and letting it would wipe the routing
		// tables it needs intact to rejoin on restart.
		for _, name := range c.Ring.Nodes() {
			if n := c.Ring.NodeByName(name); n != nil && c.Live(name) {
				n.Stabilize()
			}
		}
		for _, name := range c.Ring.Nodes() {
			if n := c.Ring.NodeByName(name); n != nil && c.Live(name) {
				n.FixFingers()
			}
		}
		c.resyncPending()
		c.deployPending()
		for _, name := range c.Ring.Nodes() {
			if n := c.nodes[name]; n != nil && c.Live(name) {
				n.RepairIfNeeded()
				// Re-probe peers whose RTT estimate exceeds the hedge
				// budget, so a recovered peer stops being hedged around
				// (no-op with hedging disabled).
				n.RefreshRTTs()
				// Reconcile the pipeline with the replicated deployment
				// records — the harness's equivalent of the daemon's
				// maintenance tick, so nodes that missed a deploy (crashed,
				// partitioned) converge as repair restores their records.
				n.SyncDeployments()
			}
		}
	}
}

// DefineBundle registers a named script bundle that deploy directives (the
// fault DSL's "at <t> deploy <node> <site> <bundle>") and Deploy refer to.
func (c *Cluster) DefineBundle(name, script string) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.bundles == nil {
		c.bundles = make(map[string]string)
	}
	c.bundles[name] = script
}

// Deploy publishes the named bundle for site through the given node,
// returning the generation assigned. It sends replication RPCs, so tests
// call it between traffic phases, never from inside the event loop (the
// DSL's deploy directive defers here via StabilizeAll).
func (c *Cluster) Deploy(node, site, bundle string) (uint64, error) {
	n := c.nodes[node]
	if n == nil {
		return 0, fmt.Errorf("cluster: unknown node %s", node)
	}
	c.errMu.Lock()
	script, ok := c.bundles[bundle]
	c.errMu.Unlock()
	if !ok {
		return 0, fmt.Errorf("cluster: unknown bundle %q", bundle)
	}
	return n.Deploy(site, script, "bundle:"+bundle)
}

// deployPending executes deploy directives recorded by the fault DSL.
// Failures land in Err: a scheduled deploy that silently never happened
// would invalidate whatever invariant the scenario was checking.
func (c *Cluster) deployPending() {
	c.errMu.Lock()
	pending := c.pendingDeploys
	c.pendingDeploys = nil
	c.errMu.Unlock()
	for _, p := range pending {
		if !c.Live(p.node) || c.nodes[p.node] == nil {
			c.errMu.Lock()
			c.errs = append(c.errs, fmt.Sprintf("deploy %s via %s: node unavailable", p.site, p.node))
			c.errMu.Unlock()
			continue
		}
		if _, err := c.Deploy(p.node, p.site, p.bundle); err != nil {
			c.errMu.Lock()
			c.errs = append(c.errs, fmt.Sprintf("deploy %s via %s: %v", p.site, p.node, err))
			c.errMu.Unlock()
		}
	}
}

// CheckDeployConvergence verifies every live node's pipeline serves
// wantGen for site; it returns the disagreements.
func (c *Cluster) CheckDeployConvergence(site string, wantGen uint64) error {
	var bad []string
	for _, name := range c.names {
		if !c.Live(name) {
			continue
		}
		if got := c.nodes[name].AppliedGeneration(site); got != wantGen {
			bad = append(bad, fmt.Sprintf("%s serves gen %d for %s, want %d", name, got, site, wantGen))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("cluster: deployment not converged:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// resyncPending runs the deferred handoff pulls; nodes whose pull fails
// (for example no live successor yet) stay marked and retry next round. A
// node that has been failing its pull for resyncStallRounds maintenance
// rounds is reported through Err — a resync that silently never completes
// is exactly the kind of order-dependent harness state tests must see.
func (c *Cluster) resyncPending() {
	c.errMu.Lock()
	var names []string
	for name := range c.resync {
		names = append(names, name)
	}
	round := c.rounds
	c.errMu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		if !c.Live(name) {
			continue
		}
		if _, err := c.nodes[name].PullOwnedRange(0); err != nil {
			c.errMu.Lock()
			if round-c.resync[name] >= resyncStallRounds {
				c.errs = append(c.errs, fmt.Sprintf("resync %s stalled for %d rounds: %v", name, round-c.resync[name], err))
				c.resync[name] = round // re-arm so the stall reports again, not every round
			}
			c.errMu.Unlock()
			continue
		}
		// A node that was away repairs unconditionally once caught up: the
		// world changed while it was dead, and — unlike its neighbours —
		// its own tables may look unchanged, so no churn flag would fire.
		c.nodes[name].RepairReplication()
		c.errMu.Lock()
		delete(c.resync, name)
		c.errMu.Unlock()
	}
}

// Rounds returns how many maintenance rounds this cluster has driven.
// The counter is per-Cluster (see the field comment): two harnesses in the
// same process never share it, so scenario outcomes cannot depend on which
// tests ran earlier.
func (c *Cluster) Rounds() int64 {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.rounds
}

// RepairAll runs an unconditional replication repair pass on every live
// node in deterministic order, returning the number of records peers
// accepted. Tests use it to force re-replication without waiting for a
// churn flag.
func (c *Cluster) RepairAll() int {
	pushed := 0
	for _, name := range c.Ring.Nodes() {
		if n := c.nodes[name]; n != nil && c.Live(name) {
			pushed += n.RepairReplication()
		}
	}
	return pushed
}

// StateHolders returns the names of live nodes whose local store holds a
// live (non-tombstone) copy of the replicated record, sorted — the
// harness's replica-count probe.
func (c *Cluster) StateHolders(site, key string) []string {
	var out []string
	for _, name := range c.names {
		if !c.Live(name) {
			continue
		}
		if _, _, deleted, ok := c.nodes[name].LocalStateRecord(site, key); ok && !deleted {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// RepublishAll retries failed cooperative-cache publishes on every live
// node and returns the number still pending.
func (c *Cluster) RepublishAll() int {
	pending := 0
	for _, name := range c.names {
		if !c.Live(name) {
			continue
		}
		pending += c.nodes[name].RepublishPending()
	}
	return pending
}

// Owner returns the membership ground-truth owner of the cache key for a
// GET of url.
func (c *Cluster) Owner(url string) string {
	return c.Ring.Successor(httpmsg.MustRequest("GET", url).CacheKey()).Name
}

// CheckLookupConvergence verifies that every live node resolves each key's
// owner to the membership ground truth; it returns the disagreements.
func (c *Cluster) CheckLookupConvergence(urls ...string) error {
	var bad []string
	for _, url := range urls {
		key := httpmsg.MustRequest("GET", url).CacheKey()
		want := c.Ring.Successor(key).Name
		for _, name := range c.names {
			if !c.Live(name) {
				continue
			}
			got, _, err := c.nodes[name].Overlay().LookupName(key)
			if err != nil {
				bad = append(bad, fmt.Sprintf("%s: lookup %q: %v", name, url, err))
				continue
			}
			if got != want {
				bad = append(bad, fmt.Sprintf("%s resolves %q to %s, ground truth %s", name, url, got, want))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("cluster: lookup not converged:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// Holders asks the overlay (from the given node) who holds cached copies
// of url, sorted.
func (c *Cluster) Holders(node, url string) []string {
	key := httpmsg.MustRequest("GET", url).CacheKey()
	holders, _ := c.nodes[node].Overlay().Locate(key)
	sort.Strings(holders)
	return holders
}

// ---------------------------------------------------------------------------
// Counting origin
// ---------------------------------------------------------------------------

// CountingOrigin is an in-memory origin that counts hits per URL and can
// gate a URL so a fetch blocks mid-flight (for stampede scenarios: the
// harness injects a fault while the leader's origin fetch is held open).
type CountingOrigin struct {
	mu    sync.Mutex
	pages map[string]*httpmsg.Response
	hits  map[string]int
	gates map[string]chan struct{}
	// waiting counts fetchers currently blocked on a gate, per URL.
	waiting map[string]int
}

// NewCountingOrigin returns an empty origin.
func NewCountingOrigin() *CountingOrigin {
	return &CountingOrigin{
		pages:   make(map[string]*httpmsg.Response),
		hits:    make(map[string]int),
		gates:   make(map[string]chan struct{}),
		waiting: make(map[string]int),
	}
}

// AddPage serves body at url with the given freshness lifetime.
func (o *CountingOrigin) AddPage(url, body string, maxAge int) {
	r := httpmsg.NewHTMLResponse(200, body)
	if maxAge > 0 {
		r.SetMaxAge(maxAge)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pages[url] = r
}

// Gate installs a gate on url: fetches block until Release.
func (o *CountingOrigin) Gate(url string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.gates[url] = make(chan struct{})
}

// Release opens url's gate, letting blocked fetches complete.
func (o *CountingOrigin) Release(url string) {
	o.mu.Lock()
	gate := o.gates[url]
	delete(o.gates, url)
	o.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

// Waiting reports how many fetches are currently blocked on url's gate.
func (o *CountingOrigin) Waiting(url string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.waiting[url]
}

// Hits returns the fetch count for url.
func (o *CountingOrigin) Hits(url string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hits[url]
}

// Do implements core.Fetcher.
func (o *CountingOrigin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	url := req.URL.String()
	o.mu.Lock()
	o.hits[url]++
	gate := o.gates[url]
	if gate != nil {
		o.waiting[url]++
	}
	page := o.pages[url]
	o.mu.Unlock()
	if gate != nil {
		<-gate
		o.mu.Lock()
		o.waiting[url]--
		o.mu.Unlock()
	}
	if page == nil {
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
	return page.Clone(), nil
}
