package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"nakika/internal/core"
	"nakika/internal/state"
	"nakika/internal/transport"
)

// newSeededRand returns a deterministic source for scenario shaping.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// newZipf returns a seed-stable zipf sampler over [0, imax].
func newZipf(r *rand.Rand, s float64, imax uint64) func() uint64 {
	z := rand.NewZipf(r, s, 1, imax)
	return z.Uint64
}

// The offload acceptance scenario: a 16-node manual-maintenance ring with
// load-aware offload and hedged reads enabled, zipf-skewed traffic all
// arriving at one ingress node. Offload must spread execution so no node
// runs more than twice the cluster-mean request count, and hedged reads
// must bound the p99 virtual-clock read latency under one slow replica.
// Everything runs on the simulated transport's virtual clock, so repeat
// runs fingerprint identically.

const (
	offSites        = 32
	offPagesPerSite = 4
	offRequests     = 1200
	offNodes        = 16
	offThreshold    = 2.0
	offHalfLife     = 400 * time.Millisecond
	offHedgeAfter   = 3 * time.Millisecond
	offSlowLatency  = 25 * time.Millisecond
)

func offURL(site uint64, page int) string {
	return fmt.Sprintf("http://site-%02d.example.org/page-%d", site, page)
}

// offOrigin builds the origin serving every site's pages.
func offOrigin() *CountingOrigin {
	origin := NewCountingOrigin()
	for s := 0; s < offSites; s++ {
		for p := 0; p < offPagesPerSite; p++ {
			origin.AddPage(offURL(uint64(s), p), fmt.Sprintf("body of site-%02d page-%d %s", s, p, strings.Repeat("x", 256)), 3600)
		}
	}
	return origin
}

// bootOffload builds a converged offload-enabled cluster.
func bootOffload(t *testing.T, seed int64, threshold float64, hedge time.Duration) *Cluster {
	t.Helper()
	c, err := New(Config{
		N:                offNodes,
		Seed:             seed,
		Latency:          time.Millisecond,
		TTL:              time.Hour,
		Manual:           true,
		OffloadThreshold: threshold,
		HedgeAfter:       hedge,
		LoadHalfLife:     offHalfLife,
	}, offOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	return c
}

// zipfSite derives the deterministic zipf-skewed site sequence for a seed.
// math/rand's Zipf is seed-stable, so the traffic pattern is part of the
// scenario fingerprint.
func zipfSites(seed int64, n int) []uint64 {
	rnd := newSeededRand(seed*31 + 7)
	z := newZipf(rnd, 1.1, offSites-1)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z()
	}
	return out
}

// runOffloadScenario drives the acceptance scenario and returns its
// fingerprint.
func runOffloadScenario(t *testing.T, seed int64) string {
	t.Helper()
	c := bootOffload(t, seed, offThreshold, offHedgeAfter)
	ingress := fmt.Sprintf("node-%d", ((seed%offNodes)+offNodes)%offNodes)

	// Phase A: the flash crowd — zipf-skewed traffic, all at one ingress.
	sites := zipfSites(seed, offRequests)
	pageRnd := newSeededRand(seed*17 + 3)
	var reqVirtual []time.Duration
	for i, s := range sites {
		page := int(pageRnd.Int63() % offPagesPerSite)
		t0 := c.Sim.Now()
		resp, err := c.Handle(ingress, offURL(s, page))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
		reqVirtual = append(reqVirtual, c.Sim.Now()-t0)
	}

	// Offload spread invariant: no node executed more than 2x the cluster
	// mean.
	var counts []int64
	var total int64
	for _, name := range c.Names() {
		n := c.NodeByName(name).Stats().Offload.Executed
		counts = append(counts, n)
		total += n
	}
	if total != offRequests {
		t.Fatalf("executed %d requests in total, want %d (requests lost or double-counted)", total, offRequests)
	}
	mean := float64(total) / float64(offNodes)
	for i, n := range counts {
		if float64(n) > 2*mean {
			t.Fatalf("node-%d executed %d requests, over 2x the mean %.1f (spread %v)", i, n, mean, counts)
		}
	}
	ingressStats := c.NodeByName(ingress).Stats().Offload
	if ingressStats.ForwardedOut == 0 {
		t.Fatal("ingress never offloaded despite the flash crowd")
	}

	// Cross-node tracing: an offloaded request leaves a sample at the
	// ingress naming the executing peer, and the peer's own sample of the
	// execution carries the same trace id — one trace across the forward.
	linked := false
	for _, s := range c.NodeByName(ingress).Traces().Snapshot() {
		if !s.Offloaded || s.OffloadPeer == "" || s.TraceID == 0 {
			continue
		}
		peer := c.NodeByName(s.OffloadPeer)
		if peer == nil {
			continue
		}
		for _, ps := range peer.Traces().Snapshot() {
			if ps.TraceID == s.TraceID {
				linked = true
				break
			}
		}
		if linked {
			break
		}
	}
	if !linked {
		t.Fatal("no offloaded request shared its trace id with the executing peer's sample")
	}

	// Phase B: hedged reads under one slow replica. Write a burst of keys
	// through the ingress, slow every edge of one owner down, and read the
	// keys it owns back repeatedly: after the first slow round trip trains
	// the RTT EWMA past the hedge budget, reads divert to the next replica
	// and the p99 virtual latency stays bounded.
	const hedgeKeys = 40
	hkey := func(i int) string { return fmt.Sprintf("hot-%03d", i) }
	for i := 0; i < hedgeKeys; i++ {
		if err := c.NodeByName(ingress).StatePut(repSite, hkey(i), fmt.Sprintf("v-%03d", i)); err != nil {
			t.Fatalf("hedge write %d: %v", i, err)
		}
	}
	victim := ""
	var victimKeys []string
	for i := 0; i < hedgeKeys; i++ {
		owner := c.Ring.Successor(state.ReplicaKey(repSite, hkey(i))).Name
		if victim == "" && owner != ingress {
			victim = owner
		}
		if owner == victim {
			victimKeys = append(victimKeys, hkey(i))
		}
	}
	if victim == "" || len(victimKeys) == 0 {
		t.Fatal("no victim owner found for the hedge phase")
	}
	for _, name := range c.Names() {
		if name == victim {
			continue
		}
		c.Sim.SetLatency(name, victim, offSlowLatency)
		c.Sim.SetLatency(victim, name, offSlowLatency)
	}
	readLats := measureReads(t, c, ingress, victimKeys, 8)
	p99 := percentile(readLats, 0.99)
	hstats := c.NodeByName(ingress).Stats().Offload
	if hstats.HedgedReads == 0 {
		t.Fatal("no read was hedged despite the slow owner")
	}
	// The slow owner's unhedged round trip costs 2x offSlowLatency of
	// virtual time; hedging must keep the p99 well under that.
	if p99 >= 2*offSlowLatency {
		t.Fatalf("hedged read p99 = %v, not bounded below the slow round trip %v", p99, 2*offSlowLatency)
	}

	// The scenario asserts on metrics and latencies; a fault action that
	// failed quietly (stalled resync, unexecuted directive) would make
	// those assertions vacuous, so surface harness errors before
	// fingerprinting.
	if err := c.Err(); err != nil {
		t.Fatalf("cluster harness reported errors: %v", err)
	}

	// Fingerprint every deterministic observable.
	var fp strings.Builder
	fmt.Fprintf(&fp, "ingress=%s victim=%s reqP99=%d readP99=%d", ingress, victim, percentile(reqVirtual, 0.99), p99)
	for i, name := range c.Names() {
		st := c.NodeByName(name).Stats().Offload
		fmt.Fprintf(&fp, " %s:exec=%d,fwd=%d,recv=%d,fb=%d,cap=%d,hedge=%d/%d",
			name, counts[i], st.ForwardedOut, st.ReceivedIn, st.Fallbacks, st.DepthCapHits, st.HedgedReads, st.HedgeHits)
	}
	fmt.Fprintf(&fp, " delivered=%d", c.Sim.Stats().Delivered)
	return fp.String()
}

// measureReads reads every key `rounds` times through the node, returning
// each read's virtual-clock latency.
func measureReads(t *testing.T, c *Cluster, node string, keys []string, rounds int) []time.Duration {
	t.Helper()
	var lats []time.Duration
	for r := 0; r < rounds; r++ {
		for _, k := range keys {
			t0 := c.Sim.Now()
			if _, ok := c.NodeByName(node).StateGet(repSite, k); !ok {
				t.Fatalf("read of %s lost", k)
			}
			lats = append(lats, c.Sim.Now()-t0)
		}
	}
	return lats
}

// percentile returns the p-th percentile (0..1] of the samples.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestOffloadHedgeDeterministic is the offload acceptance test: the
// flash-crowd + slow-replica scenario holds its invariants and produces an
// identical fingerprint on repeat runs, across 5 seeds.
func TestOffloadHedgeDeterministic(t *testing.T) {
	for _, seed := range []int64{41, 42, 43, 44, 45} {
		seed := seed + seedOffset()
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			first := runOffloadScenario(t, seed)
			if again := runOffloadScenario(t, seed); again != first {
				t.Fatalf("seed %d diverged:\n%s\nvs\n%s", seed, first, again)
			}
		})
	}
}

// TestHedgingBeatsSlowOwnerBaseline compares the hedged p99 against an
// identically-seeded cluster with hedging disabled: the baseline pays the
// slow owner's round trip at p99, the hedged cluster does not.
func TestHedgingBeatsSlowOwnerBaseline(t *testing.T) {
	seed := 46 + seedOffset()
	run := func(hedge time.Duration) time.Duration {
		c := bootOffload(t, seed, 0, hedge) // offload off: isolate the read path
		ingress := "node-0"
		const keys = 30
		for i := 0; i < keys; i++ {
			if err := c.NodeByName(ingress).StatePut(repSite, fmt.Sprintf("base-%02d", i), "v"); err != nil {
				t.Fatal(err)
			}
		}
		victim := ""
		var victimKeys []string
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("base-%02d", i)
			owner := c.Ring.Successor(state.ReplicaKey(repSite, k)).Name
			if victim == "" && owner != ingress {
				victim = owner
			}
			if owner == victim {
				victimKeys = append(victimKeys, k)
			}
		}
		for _, name := range c.Names() {
			if name != victim {
				c.Sim.SetLatency(name, victim, offSlowLatency)
				c.Sim.SetLatency(victim, name, offSlowLatency)
			}
		}
		return percentile(measureReads(t, c, ingress, victimKeys, 8), 0.99)
	}
	unhedged := run(0)
	hedged := run(offHedgeAfter)
	if unhedged < 2*offSlowLatency {
		t.Fatalf("baseline p99 = %v, expected to pay the slow owner's %v round trip", unhedged, 2*offSlowLatency)
	}
	if hedged*5 > unhedged {
		t.Fatalf("hedged p99 = %v, not well below the unhedged baseline %v", hedged, unhedged)
	}
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

// TestOffloadPartitionFallsBackLocally: an over-threshold ingress whose
// forwards cannot be delivered executes every request locally — a
// partition costs a request at most one failed hop, never a loop or a
// lost response.
func TestOffloadPartitionFallsBackLocally(t *testing.T) {
	seed := 51 + seedOffset()
	c, err := New(Config{
		N: 4, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true,
		OffloadThreshold: 0.5, LoadHalfLife: offHalfLife,
	}, offOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	ingress := "node-0"
	c.Partition([]string{ingress})
	// Drive a burst: the first request heats the node past the threshold,
	// the rest attempt to shed, cannot deliver, and fall back locally.
	for i := 0; i < 12; i++ {
		resp, err := c.Handle(ingress, offURL(uint64(i%offSites), 0))
		if err != nil || resp.Status != 200 {
			t.Fatalf("partitioned request %d = (%v, %v), want local 200", i, resp, err)
		}
		if got := resp.Header.Get("X-Na-Kika-Node"); got != ingress {
			t.Fatalf("request %d executed on %s, want local %s", i, got, ingress)
		}
	}
	st := c.NodeByName(ingress).Stats().Offload
	if got := c.NodeByName(ingress).LoadScore(); got <= 0.5 {
		t.Fatalf("ingress load %v never crossed the threshold; scenario did not exercise shedding", got)
	}
	if st.ForwardedOut != 0 {
		t.Fatalf("requests counted as forwarded despite the partition: %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("no local fallback recorded under partition: %+v", st)
	}
	if st.Executed != 12 {
		t.Fatalf("executed %d of 12 requests locally", st.Executed)
	}
}

// TestOffloadDepthCapExecutesLocally: with every node over threshold and
// peers' loads unknown (so every hop looks attractive), a request chains
// through forwards until the depth cap pins it to local execution — the
// loop bound.
func TestOffloadDepthCapExecutesLocally(t *testing.T) {
	seed := 52 + seedOffset()
	c, err := New(Config{
		N: 6, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true,
		OffloadThreshold: 0.25, LoadHalfLife: offHalfLife,
	}, offOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	// Drive traffic at every node so the whole cluster runs hot; the
	// forward chains this produces must all terminate at the depth cap.
	for round := 0; round < 6; round++ {
		for i := 0; i < 6; i++ {
			node := fmt.Sprintf("node-%d", i)
			resp, err := c.Handle(node, offURL(uint64((round*6+i)%offSites), 0))
			if err != nil || resp.Status != 200 {
				t.Fatalf("request = (%v, %v), want 200", resp, err)
			}
		}
	}
	var caps, fwd, executed int64
	for _, name := range c.Names() {
		st := c.NodeByName(name).Stats().Offload
		caps += st.DepthCapHits
		fwd += st.ForwardedOut
		executed += st.Executed
	}
	if executed != 36 {
		t.Fatalf("executed %d of 36 requests: a request was lost or duplicated", executed)
	}
	if fwd == 0 {
		t.Fatal("universally hot cluster never forwarded (scenario did not exercise the chain)")
	}
	if caps == 0 {
		t.Fatal("no depth-cap hit recorded: the forward chain was not bounded by the cap")
	}
}

// TestHedgeFiresExactlyOnce pins the hedge trigger around the budget
// boundary: reads whose owner EWMA sits just under the budget do not
// hedge (they pay the slow owner and train the estimate), and the first
// read after the EWMA crosses the budget hedges exactly once — one extra
// RPC to the next replica, served by it, not a storm.
func TestHedgeFiresExactlyOnce(t *testing.T) {
	seed := 53 + seedOffset()
	// The write path trains the owner's EWMA to ~6ms of virtual time (2ms
	// transit + two synchronous 2ms replica pushes inside the call), so an
	// 8ms budget starts just above the estimate.
	const budget = 8 * time.Millisecond
	ingress := "node-0"
	// Record the ingress's outgoing RPCs so the test can prove the slow
	// owner was never consulted on the hedged read.
	var rec *recordingTransport
	c, err := New(Config{
		N: offNodes, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true,
		HedgeAfter: budget, LoadHalfLife: offHalfLife,
		Mutate: func(i int, cfg *core.Config) {
			if i == 0 {
				rec = &recordingTransport{inner: cfg.Ring.Transport}
				cfg.Transport = rec
			}
		},
	}, offOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	key, victim := "", ""
	for i := 0; i < 64 && key == ""; i++ {
		k := fmt.Sprintf("once-%02d", i)
		if o := c.Ring.Successor(state.ReplicaKey(repSite, k)).Name; o != ingress {
			key, victim = k, o
		}
	}
	if err := c.NodeByName(ingress).StatePut(repSite, key, "v"); err != nil {
		t.Fatal(err)
	}
	// 5ms edges: each slow 10ms read nudges the EWMA up by 30%; it crosses
	// the 8ms budget on the second slow observation, landing just past it.
	for _, name := range c.Names() {
		if name != victim {
			c.Sim.SetLatency(name, victim, 5*time.Millisecond)
			c.Sim.SetLatency(victim, name, 5*time.Millisecond)
		}
	}
	// Training reads: EWMA under budget, both pay the slow owner in full.
	var slowRead time.Duration
	for i := 0; i < 2; i++ {
		t0 := c.Sim.Now()
		if _, ok := c.NodeByName(ingress).StateGet(repSite, key); !ok {
			t.Fatalf("training read %d lost", i)
		}
		slowRead = c.Sim.Now() - t0
	}
	before := c.NodeByName(ingress).Stats().Offload
	if before.HedgedReads != 0 {
		t.Fatalf("hedge fired before the EWMA crossed the budget: %+v", before)
	}
	victimCalls := rec.countDest(victim)
	t0 := c.Sim.Now()
	if v, ok := c.NodeByName(ingress).StateGet(repSite, key); !ok || v != "v" {
		t.Fatalf("hedged read = (%q, %v)", v, ok)
	}
	elapsed := c.Sim.Now() - t0
	after := c.NodeByName(ingress).Stats().Offload
	if after.HedgedReads != 1 || after.HedgeHits != 1 {
		t.Fatalf("hedge fired %d times with %d hits, want exactly 1/1", after.HedgedReads, after.HedgeHits)
	}
	// The winner was the fast replica: the ingress never issued the losing
	// RPC to the slow owner, and the read came in under the unhedged cost.
	if got := rec.countDest(victim); got != victimCalls {
		t.Fatalf("hedged read still called the slow owner (%d -> %d calls)", victimCalls, got)
	}
	if elapsed >= slowRead {
		t.Fatalf("hedged read took %v, not under the unhedged read's %v", elapsed, slowRead)
	}
}

// recordingTransport wraps the simulated transport and counts outgoing
// message types, so tests can prove a whole subsystem stayed silent.
type recordingTransport struct {
	inner transport.Transport
	mu    sync.Mutex
	types map[string]int
	dests map[string]int
}

func (r *recordingTransport) Register(name string, h transport.Handler) { r.inner.Register(name, h) }
func (r *recordingTransport) Unregister(name string)                    { r.inner.Unregister(name) }
func (r *recordingTransport) Call(from, to string, msg transport.Message) (transport.Message, error) {
	r.mu.Lock()
	if r.types == nil {
		r.types = make(map[string]int)
		r.dests = make(map[string]int)
	}
	r.types[msg.Type]++
	r.dests[to]++
	r.mu.Unlock()
	return r.inner.Call(from, to, msg)
}

func (r *recordingTransport) countDest(to string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dests[to]
}

func (r *recordingTransport) count(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for typ, c := range r.types {
		if strings.HasPrefix(typ, prefix) {
			n += c
		}
	}
	return n
}

// TestHedgeRetrainsAfterOwnerRecovers: once a slow owner's RTT estimate
// crosses the budget, the hedge path stops contacting it, so nothing on
// the read path would ever notice it recovering; the maintenance loop's
// RefreshRTTs re-probes exactly those peers, and reads must return to the
// owner after it heals.
func TestHedgeRetrainsAfterOwnerRecovers(t *testing.T) {
	seed := 56 + seedOffset()
	c := bootOffload(t, seed, 0, offHedgeAfter)
	ingress := "node-0"
	key, victim := "", ""
	for i := 0; i < 64 && key == ""; i++ {
		k := fmt.Sprintf("heal-%02d", i)
		if o := c.Ring.Successor(state.ReplicaKey(repSite, k)).Name; o != ingress {
			key, victim = k, o
		}
	}
	if err := c.NodeByName(ingress).StatePut(repSite, key, "v"); err != nil {
		t.Fatal(err)
	}
	for _, name := range c.Names() {
		if name != victim {
			c.Sim.SetLatency(name, victim, offSlowLatency)
			c.Sim.SetLatency(victim, name, offSlowLatency)
		}
	}
	// Drive reads until they hedge (the first slow read trains the EWMA).
	for i := 0; i < 4; i++ {
		if _, ok := c.NodeByName(ingress).StateGet(repSite, key); !ok {
			t.Fatal("read lost")
		}
	}
	if c.NodeByName(ingress).Stats().Offload.HedgedReads == 0 {
		t.Fatal("reads never hedged around the slow owner")
	}
	// The owner recovers; without a re-probe the estimate would stay
	// pinned above the budget forever on this read-only workload.
	for _, name := range c.Names() {
		if name != victim {
			c.Sim.SetLatency(name, victim, time.Millisecond)
			c.Sim.SetLatency(victim, name, time.Millisecond)
		}
	}
	c.StabilizeAll(2) // maintenance drives RefreshRTTs
	before := c.NodeByName(ingress).Stats().Offload.HedgedReads
	if v, ok := c.NodeByName(ingress).StateGet(repSite, key); !ok || v != "v" {
		t.Fatalf("post-recovery read = (%q, %v)", v, ok)
	}
	if after := c.NodeByName(ingress).Stats().Offload.HedgedReads; after != before {
		t.Fatalf("read still hedged after the owner recovered and maintenance re-probed (hedges %d -> %d)", before, after)
	}
}

// TestOffloadDisabledIsByteIdenticalToSeedBehavior: with -offload-threshold
// 0 the request path must match the pre-offload proxy exactly — every
// response byte-identical to the origin's page, zero "off." messages on
// the wire, zero offload counters, and every request executed at the node
// it arrived at.
func TestOffloadDisabledIsByteIdenticalToSeedBehavior(t *testing.T) {
	seed := 54 + seedOffset()
	origin := offOrigin()
	recorders := make(map[int]*recordingTransport)
	c, err := New(Config{
		N: 6, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true,
		OffloadThreshold: 0, HedgeAfter: 0,
		Mutate: func(i int, cfg *core.Config) {
			rec := &recordingTransport{inner: cfg.Ring.Transport}
			recorders[i] = rec
			cfg.Transport = rec
		},
	}, origin)
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	for i := 0; i < 120; i++ {
		site, page := uint64(i%offSites), i%offPagesPerSite
		node := fmt.Sprintf("node-%d", i%6)
		resp, err := c.Handle(node, offURL(site, page))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := fmt.Sprintf("body of site-%02d page-%d %s", site, page, strings.Repeat("x", 256))
		if string(resp.Body) != want {
			t.Fatalf("request %d body diverged from origin bytes:\n%q\nvs\n%q", i, resp.Body, want)
		}
	}
	for i := 0; i < 6; i++ {
		if n := recorders[i].count("off."); n != 0 {
			t.Fatalf("node-%d sent %d off.* messages with offload disabled", i, n)
		}
		st := c.Node(i).Stats()
		off := st.Offload
		if off.ForwardedOut != 0 || off.ReceivedIn != 0 || off.Fallbacks != 0 || off.DepthCapHits != 0 || off.HedgedReads != 0 || off.HedgeHits != 0 {
			t.Fatalf("node-%d offload counters nonzero while disabled: %+v", i, off)
		}
		if off.Executed != st.Requests {
			t.Fatalf("node-%d executed %d of %d arrivals: requests moved despite offload being disabled", i, off.Executed, st.Requests)
		}
	}
}

// TestStabilizeRoundsIsolatedAcrossHarnesses is the regression test for
// the harness round counter: it must be per-Cluster state, so reusing or
// interleaving harnesses in one process cannot make scenarios
// order-dependent.
func TestStabilizeRoundsIsolatedAcrossHarnesses(t *testing.T) {
	seed := 55 + seedOffset()
	a, err := New(Config{N: 4, Seed: seed, Manual: true, TTL: time.Hour}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	a.StabilizeAll(5)
	if got := a.Rounds(); got != 5 {
		t.Fatalf("first harness at %d rounds, want 5", got)
	}
	// A second harness in the same process starts from zero, regardless of
	// what ran before it.
	b, err := New(Config{N: 4, Seed: seed, Manual: true, TTL: time.Hour}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Rounds(); got != 0 {
		t.Fatalf("fresh harness started at round %d, want 0 (leaked across harnesses)", got)
	}
	b.StabilizeAll(2)
	if got, got2 := a.Rounds(), b.Rounds(); got != 5 || got2 != 2 {
		t.Fatalf("round counters crosstalk: a=%d (want 5), b=%d (want 2)", got, got2)
	}
	// And a full scenario's fingerprint is unaffected by harnesses that ran
	// earlier in the process.
	f1 := runOffloadScenario(t, seed)
	a.StabilizeAll(7) // churn the old harness between runs
	f2 := runOffloadScenario(t, seed)
	if f1 != f2 {
		t.Fatalf("scenario fingerprint depends on prior harness activity:\n%s\nvs\n%s", f1, f2)
	}
}
