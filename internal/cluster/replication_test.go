package cluster

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"nakika/internal/state"
)

// seedOffset lets the nightly soak workflow sweep the deterministic
// scenarios across fresh seeds (NAKIKA_SEED_OFFSET=n shifts every seeded
// test by n); untouched, every run uses the fixed seeds committed here.
func seedOffset() int64 {
	if s := os.Getenv("NAKIKA_SEED_OFFSET"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 0
}

const repSite = "app.example.org"

func burstKey(i int) string { return fmt.Sprintf("burst-%04d", i) }
func burstVal(i int) string { return fmt.Sprintf("value-%04d-%s", i, strings.Repeat("r", 64)) }

// bootReplicated builds a manual-maintenance cluster with successor
// replication and converges its routing tables.
func bootReplicated(t *testing.T, n int, seed int64, k int) *Cluster {
	t.Helper()
	c, err := New(Config{N: n, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true, Replication: k}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)
	return c
}

// runReplicationFailoverScenario is the replication acceptance scenario:
// an 8-node manual-maintenance ring with factor-3 successor replication,
// a hard-state write burst issued at one entry node, and the owner of the
// burst's first forwarded key crashed at a virtual time that lands inside
// the burst. Every write acknowledged before, during, or after the crash
// must remain readable (reads failing over to replicas while the owner is
// dead), stabilization-triggered repair must restore three live copies of
// every key, and the restarted owner must stream its range back. Returns
// a fingerprint of every deterministic observable.
func runReplicationFailoverScenario(t *testing.T, seed int64) string {
	t.Helper()
	// The seed shapes the scenario (entry node, burst size) in addition to
	// seeding the simulated network, so the nightly seed sweep exercises
	// genuinely different write/ownership patterns.
	nKeys := 80 + int(((seed%13)+13)%13)
	c := bootReplicated(t, 8, seed, 0) // factor 0 = node default of 3

	entry := fmt.Sprintf("node-%d", ((seed%8)+8)%8)
	node := c.NodeByName(entry)
	victim := ""
	for i := 0; i < nKeys; i++ {
		if o := c.Ring.Successor(state.ReplicaKey(repSite, burstKey(i))).Name; o != entry {
			victim = o
			break
		}
	}
	if victim == "" {
		t.Fatal("no key owned away from the entry node")
	}
	if err := c.Schedule(fmt.Sprintf("at %s crash %s", c.Sim.Now()+120*time.Millisecond, victim)); err != nil {
		t.Fatal(err)
	}

	// The burst: sequential writes through the entry node. Replication
	// traffic advances the virtual clock, so the scripted crash lands
	// mid-burst; the write in flight at that instant may fail
	// (unacknowledged), and later writes to the dead owner's keys must
	// fail over to its first live successor.
	acked := make(map[string]string)
	crashIdx := -1
	for i := 0; i < nKeys; i++ {
		if err := node.StatePut(repSite, burstKey(i), burstVal(i)); err == nil {
			acked[burstKey(i)] = burstVal(i)
		}
		if crashIdx < 0 && !c.Live(victim) {
			crashIdx = i
		}
	}
	if crashIdx <= 0 || crashIdx >= nKeys-1 {
		t.Fatalf("crash did not land mid-burst (landed at write %d of %d)", crashIdx, nKeys)
	}
	ackedKeys := make([]string, 0, len(acked))
	for k := range acked {
		ackedKeys = append(ackedKeys, k)
	}
	sort.Strings(ackedKeys)

	// Zero loss: with the owner still dead, every acknowledged write is
	// readable from a second node — reads route to the acting owner and
	// fail over to replicas for the victim's keys.
	reader := ""
	for _, n := range c.Names() {
		if n != entry && n != victim {
			reader = n
			break
		}
	}
	for _, key := range ackedKeys {
		got, ok := c.NodeByName(reader).StateGet(repSite, key)
		if !ok || got != acked[key] {
			t.Fatalf("acknowledged write %s lost with owner dead (ok=%v)", key, ok)
		}
	}
	// Key enumeration agrees with reads: the cluster-wide listing covers
	// every acknowledged key even with the owner dead.
	listed := make(map[string]bool)
	for _, k := range c.NodeByName(reader).StateKeys(repSite) {
		listed[k] = true
	}
	for _, key := range ackedKeys {
		if !listed[key] {
			t.Fatalf("acknowledged key %s missing from cluster-wide StateKeys", key)
		}
	}

	// Stabilization prunes the dead owner and triggers repair: every
	// acknowledged key must be back to 3 live copies.
	c.StabilizeAll(6)
	for _, key := range ackedKeys {
		holders := c.StateHolders(repSite, key)
		if len(holders) < 3 {
			t.Fatalf("key %s has %d live copies after repair, want >= 3 (%v)", key, len(holders), holders)
		}
		for _, h := range holders {
			if h == victim {
				t.Fatalf("dead node %s counted as holder of %s", victim, key)
			}
		}
	}

	// The victim restarts empty (no persistence) and streams the range it
	// owns back from its successors; afterwards it serves every
	// acknowledged write again, including the ones written while it was
	// dead.
	c.Restart(victim)
	c.StabilizeAll(6)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for _, key := range ackedKeys {
		got, ok := c.NodeByName(victim).StateGet(repSite, key)
		if !ok || got != acked[key] {
			t.Fatalf("key %s unreadable from restarted owner (ok=%v)", key, ok)
		}
	}

	// Fingerprint every deterministic observable for the repeat-run check.
	var fp strings.Builder
	fmt.Fprintf(&fp, "victim=%s crashIdx=%d acked=%d", victim, crashIdx, len(acked))
	for _, key := range ackedKeys {
		fmt.Fprintf(&fp, " %s:%v", key, c.StateHolders(repSite, key))
	}
	for _, n := range c.Names() {
		st := c.NodeByName(n).Stats().Replication
		fmt.Fprintf(&fp, " %s:fwd=%d,push=%d,fo=%d,app=%d,keys=%d",
			n, st.ForwardedOps, st.ReplicaPushes, st.FailoverReads, st.RecordsApplied,
			len(c.NodeByName(n).StateKeys(repSite)))
	}
	return fp.String()
}

// TestReplicationFailoverDeterministic is the replication acceptance
// test: the kill-owner-mid-burst scenario holds its invariants and
// produces an identical fingerprint on repeat runs, across 5 seeds.
func TestReplicationFailoverDeterministic(t *testing.T) {
	for _, seed := range []int64{21, 22, 23, 24, 25} {
		seed := seed + seedOffset()
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			first := runReplicationFailoverScenario(t, seed)
			if again := runReplicationFailoverScenario(t, seed); again != first {
				t.Fatalf("seed %d diverged:\n%s\nvs\n%s", seed, first, again)
			}
		})
	}
}

// TestOwnerDiesBetweenWALAppendAndReplicaAck pins the narrowest failover
// edge: the acting owner appends the write to its WAL, pushes it to its
// first replica, and crashes before the replica's acknowledgement gets
// back. The client must see an error (the write was never acknowledged),
// yet the replica holds the record — an at-least-once surface the
// restarted owner reconciles to the same version on recovery.
func TestOwnerDiesBetweenWALAppendAndReplicaAck(t *testing.T) {
	seed := 31 + seedOffset()
	c, err := New(Config{N: 5, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true, Persist: true}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)

	// A key owned by a node other than node-0, written at its owner so the
	// local WAL append happens with no message traffic before the pushes.
	key, victim := "", ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("edge-%02d", i)
		if o := c.Ring.Successor(state.ReplicaKey(repSite, k)).Name; o != "node-0" {
			key, victim = k, o
			break
		}
	}
	owner := c.NodeByName(victim)

	// The crash is scheduled inside the first replica push's delivery
	// window: the push arrives (the replica applies the record), but the
	// acknowledgement traversal back finds the owner dead.
	if err := c.Schedule(fmt.Sprintf("at %s crash %s", c.Sim.Now()+500*time.Microsecond, victim)); err != nil {
		t.Fatal(err)
	}
	if err := owner.StatePut(repSite, key, "edge-value"); err == nil {
		t.Fatal("write with owner dying before replica ack must not be acknowledged")
	}
	if c.Live(victim) {
		t.Fatal("crash never landed")
	}

	// The unacknowledged write surfaced on the replica (at-least-once):
	// failover reads serve it.
	if got, ok := c.NodeByName("node-0").StateGet(repSite, key); !ok || got != "edge-value" {
		t.Fatalf("replica did not retain the in-flight write (ok=%v, got %q)", ok, got)
	}

	// The owner's WAL also retained it; after restart and repair every
	// live holder agrees on version and value.
	c.Restart(victim)
	c.StabilizeAll(6)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	holders := c.StateHolders(repSite, key)
	if len(holders) < 3 {
		t.Fatalf("holders after recovery = %v, want >= 3", holders)
	}
	var wantVer uint64
	for i, h := range holders {
		ver, val, _, ok := c.NodeByName(h).LocalStateRecord(repSite, key)
		if !ok || val != "edge-value" {
			t.Fatalf("holder %s diverged (ok=%v val=%q)", h, ok, val)
		}
		if i == 0 {
			wantVer = ver
		} else if ver != wantVer {
			t.Fatalf("holder %s at version %d, want %d", h, ver, wantVer)
		}
	}
}

// TestReplicaPromotedDuringHandoffStream: a joining node streams the key
// range it now owns from its successor in chunks; the source crashes
// mid-stream, promoting the next replica to acting owner, and the joiner
// finishes the stream against that replica from the same cursor with
// nothing lost.
func TestReplicaPromotedDuringHandoffStream(t *testing.T) {
	seed := 33 + seedOffset()
	c := bootReplicated(t, 6, seed, 3)

	// Write enough keys that the joiner's future range holds at least a
	// few (the set is fixed by the hash, so this is deterministic).
	entry := c.NodeByName("node-0")
	vals := make(map[string]string)
	for i := 0; i < 120; i++ {
		k, v := burstKey(i), burstVal(i)
		if err := entry.StatePut(repSite, k, v); err != nil {
			t.Fatalf("write %s: %v", k, err)
		}
		vals[k] = v
	}

	joiner, err := c.AddNode(NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	jn := c.NodeByName(joiner)
	// Keys the joiner now owns per the membership ground truth.
	var owned []string
	for k := range vals {
		if c.Ring.Successor(state.ReplicaKey(repSite, k)).Name == joiner {
			owned = append(owned, k)
		}
	}
	sort.Strings(owned)
	if len(owned) < 3 {
		t.Skipf("hash placement gave the joiner only %d keys; scenario needs a few to chunk", len(owned))
	}
	source := jn.Overlay().Successors()[0]

	// Crash the handoff source inside the stream: with 2ms per chunk
	// round-trip and small chunks, +3ms lands after the first chunk.
	if err := c.Schedule(fmt.Sprintf("at %s crash %s", c.Sim.Now()+3*time.Millisecond, source)); err != nil {
		t.Fatal(err)
	}
	applied, err := jn.PullOwnedRange(2)
	if err != nil {
		t.Fatalf("handoff pull: %v (applied %d)", err, applied)
	}
	if c.Live(source) {
		t.Fatal("handoff source never crashed; stream was not interrupted")
	}
	for _, k := range owned {
		_, val, deleted, ok := jn.LocalStateRecord(repSite, k)
		if !ok || deleted || val != vals[k] {
			t.Fatalf("joiner missing owned key %s after interrupted handoff (ok=%v)", k, ok)
		}
	}

	// The cluster converges around both events (join + crash): every
	// acknowledged write stays readable.
	c.StabilizeAll(6)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got, ok := entry.StateGet(repSite, k); !ok || got != vals[k] {
			t.Fatalf("key %s unreadable after join + source crash (ok=%v)", k, ok)
		}
	}
}

// TestJoinHandoffViaStabilize: the automatic path — AddNode marks the
// joiner for resync and the next StabilizeAll streams its owned range
// without any explicit pull.
func TestJoinHandoffViaStabilize(t *testing.T) {
	seed := 34 + seedOffset()
	c := bootReplicated(t, 6, seed, 3)
	entry := c.NodeByName("node-0")
	vals := make(map[string]string)
	for i := 0; i < 80; i++ {
		k, v := burstKey(i), burstVal(i)
		if err := entry.StatePut(repSite, k, v); err != nil {
			t.Fatal(err)
		}
		vals[k] = v
	}
	joiner, err := c.AddNode(NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(6)
	for k, v := range vals {
		if c.Ring.Successor(state.ReplicaKey(repSite, k)).Name != joiner {
			continue
		}
		_, val, deleted, ok := c.NodeByName(joiner).LocalStateRecord(repSite, k)
		if !ok || deleted || val != v {
			t.Fatalf("joiner did not receive owned key %s through stabilization handoff", k)
		}
	}
}

// TestReplicationDegradesWhenKExceedsLiveNodes: a replication factor
// larger than the ring keeps as many copies as there are live nodes, and
// keeps accepting writes all the way down to a ring of one.
func TestReplicationDegradesWhenKExceedsLiveNodes(t *testing.T) {
	seed := 35 + seedOffset()
	c := bootReplicated(t, 3, seed, 5)
	entry := c.NodeByName("node-0")

	if err := entry.StatePut(repSite, "deg-a", "v1"); err != nil {
		t.Fatalf("write with K=5 on 3 nodes: %v", err)
	}
	if holders := c.StateHolders(repSite, "deg-a"); len(holders) != 3 {
		t.Fatalf("holders = %v, want all 3 live nodes", holders)
	}

	// Two nodes left: writes still acknowledged with one replica.
	c.Crash("node-1")
	c.StabilizeAll(4)
	if err := entry.StatePut(repSite, "deg-b", "v2"); err != nil {
		t.Fatalf("write with 2 live nodes: %v", err)
	}
	if holders := c.StateHolders(repSite, "deg-b"); len(holders) != 2 {
		t.Fatalf("holders = %v, want both live nodes", holders)
	}

	// A ring of one: stabilization empties the successor list and writes
	// degrade to local-only durability instead of erroring forever.
	c.Crash("node-2")
	c.StabilizeAll(4)
	if err := entry.StatePut(repSite, "deg-c", "v3"); err != nil {
		t.Fatalf("write on a ring of one: %v", err)
	}
	if got, ok := entry.StateGet(repSite, "deg-c"); !ok || got != "v3" {
		t.Fatalf("lone node cannot read its own write (ok=%v)", ok)
	}
	if got, ok := entry.StateGet(repSite, "deg-a"); !ok || got != "v1" {
		t.Fatalf("lone node lost the fully replicated key (ok=%v, got %q)", ok, got)
	}
}

// TestRecoveredOwnerRebasesAboveReplicas pins the version-tie rebase: an
// owner that lost its version history (crash without persistence)
// re-issues a write at a version its replicas already hold — with its own
// origin name, an exact tie. The replicas reject it as stale and the
// owner must rebase above the reported version and retry, so the client's
// write still wins last-writer-wins everywhere.
func TestRecoveredOwnerRebasesAboveReplicas(t *testing.T) {
	seed := 37 + seedOffset()
	c := bootReplicated(t, 5, seed, 3)

	// A key written at its own owner, so the first write is (ver 1, owner).
	key, owner := "", ""
	for i := 0; i < 64 && key == ""; i++ {
		k := fmt.Sprintf("rebase-%02d", i)
		key, owner = k, c.Ring.Successor(state.ReplicaKey(repSite, k)).Name
	}
	on := c.NodeByName(owner)
	if err := on.StatePut(repSite, key, "first"); err != nil {
		t.Fatal(err)
	}

	// Crash wipes the owner's store (no persistence); restart it and
	// write again immediately — before any resync — so the owner assigns
	// (ver 1, owner) again, exactly what the replicas already hold. The new
	// value sorts below the old one, so the payload tie-break cannot accept
	// it and the replicas must report it stale, forcing the rebase.
	c.Crash(owner)
	c.Sim.Restart(owner)
	if err := on.StatePut(repSite, key, "again"); err != nil {
		t.Fatalf("write from history-less owner must rebase, not fail: %v", err)
	}
	for _, name := range c.Names() {
		if got, ok := c.NodeByName(name).StateGet(repSite, key); !ok || got != "again" {
			t.Fatalf("%s reads (%q, %v), want the rebased write", name, got, ok)
		}
	}
	if ver, _, _, ok := on.LocalStateRecord(repSite, key); !ok || ver < 2 {
		t.Fatalf("owner's record at ver %d (ok=%v), want rebased above 1", ver, ok)
	}
}

// TestAckedWriteSurvivesMixedStaleAcks pins the rebase-despite-ack rule:
// an amnesiac owner reissues a version one replica already holds with a
// payload-winning record while another replica (which missed the original
// write behind a partition) accepts the reissue. Acking on that single
// accept would hand the key back to the old value at the next repair; the
// owner must rebase above the stale report even though it got an ack, so
// the client's new write wins everywhere.
func TestAckedWriteSurvivesMixedStaleAcks(t *testing.T) {
	seed := 39 + seedOffset()
	c := bootReplicated(t, 5, seed, 3)

	// A key written at its own owner, whose replica set we can split.
	key, owner := "", ""
	for i := 0; i < 64 && key == ""; i++ {
		k := fmt.Sprintf("mixed-%02d", i)
		key, owner = k, c.Ring.Successor(state.ReplicaKey(repSite, k)).Name
	}
	on := c.NodeByName(owner)
	reps := on.Overlay().Successors()
	if len(reps) < 2 {
		t.Fatalf("owner %s has %d successors, need 2 replicas", owner, len(reps))
	}
	// Partition the second replica away so the first write lands on the
	// owner and the first replica only ("zzz" sorts above the later write).
	c.Partition([]string{reps[1]})
	if err := on.StatePut(repSite, key, "zzz-original"); err != nil {
		t.Fatalf("first write with one replica reachable: %v", err)
	}
	c.Heal()

	// The owner loses its history (crash without persistence) and the
	// client writes a value that loses the payload tie at the reissued
	// version: replica one reports it stale while replica two accepts it.
	c.Crash(owner)
	c.Sim.Restart(owner)
	if err := on.StatePut(repSite, key, "aaa-new"); err != nil {
		t.Fatalf("reissued write must rebase and succeed: %v", err)
	}

	// Repair must not resurrect the old value anywhere.
	c.StabilizeAll(6)
	c.RepairAll()
	for _, name := range c.Names() {
		if got, ok := c.NodeByName(name).StateGet(repSite, key); !ok || got != "aaa-new" {
			t.Fatalf("%s reads (%q, %v): acked write lost to the pre-crash value", name, got, ok)
		}
	}
}

// TestDeleteFallsBackToLocalTombstone: a delete issued while no acting
// owner is reachable is recorded as a local tombstone and propagated by
// repair after heal, instead of being silently dropped (the vocabulary
// API has no error channel).
func TestDeleteFallsBackToLocalTombstone(t *testing.T) {
	seed := 38 + seedOffset()
	c := bootReplicated(t, 5, seed, 3)
	entry := c.NodeByName("node-0")
	if err := entry.StatePut(repSite, "orphan-del", "v"); err != nil {
		t.Fatal(err)
	}
	// Isolate the deleting node: every forward fails, the tombstone lands
	// locally only.
	c.Partition([]string{"node-0"})
	entry.StateDelete(repSite, "orphan-del")
	if _, ok := entry.StateGet(repSite, "orphan-del"); ok {
		t.Fatal("isolated node still reads the key it deleted")
	}
	c.Heal()
	c.StabilizeAll(6)
	for _, name := range c.Names() {
		if _, ok := c.NodeByName(name).StateGet(repSite, "orphan-del"); ok {
			t.Fatalf("delete was lost: %s still reads the key after heal + repair", name)
		}
	}
}

// TestReplicatedDeleteWins: a delete routed through the owner leaves a
// versioned tombstone that beats the put on every replica, so the key
// reads as absent from every node.
func TestReplicatedDeleteWins(t *testing.T) {
	seed := 36 + seedOffset()
	c := bootReplicated(t, 5, seed, 3)
	entry := c.NodeByName("node-0")
	if err := entry.StatePut(repSite, "del-k", "doomed"); err != nil {
		t.Fatal(err)
	}
	entry.StateDelete(repSite, "del-k")
	for _, n := range c.Names() {
		if _, ok := c.NodeByName(n).StateGet(repSite, "del-k"); ok {
			t.Fatalf("deleted key still readable from %s", n)
		}
	}
	if holders := c.StateHolders(repSite, "del-k"); len(holders) != 0 {
		t.Fatalf("tombstoned key still counted live on %v", holders)
	}
	for _, n := range c.Names() {
		for _, k := range c.NodeByName(n).StateKeys(repSite) {
			if k == "del-k" {
				t.Fatalf("tombstoned key listed by %s", n)
			}
		}
	}
}
