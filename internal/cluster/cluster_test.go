package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nakika/internal/transport"
)

const contested = "http://origin.example.org/contested.html"

// bootCluster builds an 8-node cluster over the simulated network.
func bootCluster(t *testing.T, seed int64, origin *CountingOrigin) *Cluster {
	t.Helper()
	c, err := New(Config{N: 8, Seed: seed, Latency: time.Millisecond, TTL: time.Hour}, origin)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterBootAndBasicTraffic(t *testing.T) {
	origin := NewCountingOrigin()
	origin.AddPage("http://site.example.org/a.html", "<html>a</html>", 600)
	c := bootCluster(t, 1, origin)
	if got := len(c.Names()); got != 8 {
		t.Fatalf("nodes = %d", got)
	}
	resp, err := c.Handle("node-0", "http://site.example.org/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	// Second fetch at a different node rides the cooperative cache.
	if _, err := c.Handle("node-5", "http://site.example.org/a.html"); err != nil {
		t.Fatal(err)
	}
	if hits := origin.Hits("http://site.example.org/a.html"); hits != 1 {
		t.Errorf("origin hits = %d, want 1 (cooperative cache)", hits)
	}
	if c.NodeByName("node-5").Stats().PeerHits != 1 {
		t.Error("node-5 should have one peer hit")
	}
	if err := c.CheckLookupConvergence("http://site.example.org/a.html", contested); err != nil {
		t.Error(err)
	}
	if c.Sim.Now() == 0 {
		t.Error("virtual clock should have advanced with the traffic")
	}
}

func TestScheduleParsing(t *testing.T) {
	events, err := ParseSchedule(`
		# comment
		at 50ms partition node-3
		at 60ms partition node-0,node-1 | node-2
		at 80ms heal
		at 100ms crash node-2
		at 150ms restart node-2
		at 200ms latency node-0 node-1 25ms
		at 250ms drop node-0 node-1 0.5
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 7 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Op != "partition" || events[0].At != 50*time.Millisecond {
		t.Errorf("first event = %+v", events[0])
	}
	for _, bad := range []string{
		"partition node-1",          // missing "at"
		"at 50ms",                   // missing op
		"at banana heal",            // bad time
		"at 50ms heal now",          // heal takes no args
		"at 50ms crash",             // crash needs a node
		"at 50ms explode node-1",    // unknown op
		"at 50ms drop a b fast",     // bad rate
		"at 50ms latency a b later", // bad duration
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", bad)
		}
	}
	if groups := splitGroups([]string{"a,b", "|", "c"}); len(groups) != 2 || len(groups[0]) != 2 || groups[1][0] != "c" {
		t.Errorf("splitGroups = %v", groups)
	}
}

func TestScheduledCrashAndRestart(t *testing.T) {
	origin := NewCountingOrigin()
	origin.AddPage("http://site.example.org/b.html", "<html>b</html>", 600)
	c := bootCluster(t, 2, origin)
	if err := c.Schedule(`
		at 5ms crash node-4
		at 40ms restart node-4
	`); err != nil {
		t.Fatal(err)
	}
	// Drive traffic to advance the virtual clock past 5ms.
	if _, err := c.Handle("node-0", "http://site.example.org/b.html"); err != nil {
		t.Fatal(err)
	}
	for c.Sim.Now() < 10*time.Millisecond {
		if _, err := c.Handle("node-1", "http://site.example.org/b.html"); err != nil {
			t.Fatal(err)
		}
	}
	if c.Live("node-4") {
		t.Fatal("node-4 should be crashed by now")
	}
	// Lookups still converge for keys not owned by the crashed node, routed
	// around it.
	urls := []string{"http://site.example.org/b.html", "http://site.example.org/c.html"}
	for _, url := range urls {
		if c.Owner(url) == "node-4" {
			continue
		}
		if err := c.CheckLookupConvergence(url); err != nil {
			t.Error(err)
		}
	}
	c.Sim.Loop().AdvanceTo(50 * time.Millisecond)
	if !c.Live("node-4") {
		t.Fatal("node-4 should have restarted")
	}
	if err := c.CheckLookupConvergence(urls...); err != nil {
		t.Error(err)
	}
}

// TestNoLostPublishesAfterHeal: a publish that fails because the index
// owner is partitioned away is retried after heal, so the cooperative
// index converges to every holder.
func TestNoLostPublishesAfterHeal(t *testing.T) {
	origin := NewCountingOrigin()
	origin.AddPage(contested, strings.Repeat("x", 2000), 600)
	c := bootCluster(t, 3, origin)

	owner := c.Owner(contested)
	// Pick fetching nodes distinct from the index owner.
	var fetchers []string
	for _, n := range c.Names() {
		if n != owner {
			fetchers = append(fetchers, n)
		}
	}
	b, cNode := fetchers[0], fetchers[1]

	// B fetches and publishes normally.
	if _, err := c.Handle(b, contested); err != nil {
		t.Fatal(err)
	}
	if got := c.Holders(b, contested); len(got) != 1 || got[0] != b {
		t.Fatalf("holders after first fetch = %v", got)
	}

	// Partition the index owner: C's locate fails, C falls back to the
	// origin, and C's publish fails and goes pending.
	c.Partition([]string{owner})
	if _, err := c.Handle(cNode, contested); err != nil {
		t.Fatal(err)
	}
	if hits := origin.Hits(contested); hits != 2 {
		t.Fatalf("origin hits with owner partitioned = %d, want 2", hits)
	}

	// Heal and republish: no publishes may be lost.
	c.Heal()
	if pending := c.RepublishAll(); pending != 0 {
		t.Fatalf("still %d pending publishes after heal", pending)
	}
	got := c.Holders(b, contested)
	want := []string{b, cNode}
	if len(got) != 2 || (got[0] != want[0] && got[0] != want[1]) || got[0] == got[1] {
		t.Fatalf("holders after heal+republish = %v, want %v", got, want)
	}
	// A third node now peer-fetches without touching the origin.
	if _, err := c.Handle(fetchers[2], contested); err != nil {
		t.Fatal(err)
	}
	if hits := origin.Hits(contested); hits != 2 {
		t.Errorf("origin hits after heal = %d, want 2", hits)
	}
}

// runPartitionStampedeScenario is the acceptance scenario: an 8-node ring,
// a 16-client stampede on one contested key at one node, a partition
// scripted to land while the leader's origin fetch is in flight, a heal,
// and then cluster-wide assertions. It returns a fingerprint of every
// deterministic observable.
func runPartitionStampedeScenario(t *testing.T, seed int64) string {
	t.Helper()
	origin := NewCountingOrigin()
	origin.AddPage(contested, strings.Repeat("v", 4096), 600)
	c := bootCluster(t, seed, origin)

	entry := "node-0"
	owner := c.Owner(contested)
	victim := ""
	for _, n := range c.Names() {
		if n != entry && n != owner {
			victim = n
			break
		}
	}
	// The partition is scripted at a virtual time the stampede is guaranteed
	// to span: the leader's origin fetch is gated, so the fault lands while
	// the fetch is in flight.
	if err := c.Schedule(fmt.Sprintf("at 3ms partition %s", victim)); err != nil {
		t.Fatal(err)
	}

	origin.Gate(contested)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Handle(entry, contested)
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != 200 || len(resp.Body) != 4096 {
				errs <- fmt.Errorf("stampede response %d/%d bytes", resp.Status, len(resp.Body))
			}
		}()
	}
	// Wait for the single-flight leader to reach the origin, then advance
	// the virtual clock over the scripted partition time: the partition
	// lands mid-stampede, with the origin fetch still in flight.
	for origin.Waiting(contested) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	c.Sim.Loop().AdvanceTo(4 * time.Millisecond)
	if _, err := c.Sim.Call(entry, victim, transport.Message{Type: "ov.ping"}); err == nil {
		t.Fatal("victim should be partitioned mid-stampede")
	}
	origin.Release(contested)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The stampede cost exactly one origin fetch.
	if hits := origin.Hits(contested); hits != 1 {
		t.Fatalf("origin hits after stampede = %d, want 1", hits)
	}

	// Every other connected node now serves the key from the cooperative
	// cache; the partitioned victim is left alone until heal.
	for _, n := range c.Names() {
		if n == entry || n == victim {
			continue
		}
		if _, err := c.Handle(n, contested); err != nil {
			t.Fatal(err)
		}
	}
	if hits := origin.Hits(contested); hits != 1 {
		t.Fatalf("origin hits after peer fetches = %d, want 1", hits)
	}

	// Heal; the victim rejoins and serves the contested key from a peer.
	c.Heal()
	c.StabilizeAll(2)
	if _, err := c.Handle(victim, contested); err != nil {
		t.Fatal(err)
	}
	if hits := origin.Hits(contested); hits != 1 {
		t.Fatalf("origin hits after heal = %d, want 1 (exactly one cluster-wide)", hits)
	}
	if err := c.CheckLookupConvergence(contested); err != nil {
		t.Fatal(err)
	}

	// Fingerprint every deterministic observable for the repeat-run check.
	var fp strings.Builder
	fmt.Fprintf(&fp, "owner=%s victim=%s hits=%d", owner, victim, origin.Hits(contested))
	fmt.Fprintf(&fp, " holders=%v", c.Holders(entry, contested))
	for _, n := range c.Names() {
		st := c.NodeByName(n).Stats()
		fmt.Fprintf(&fp, " %s:origin=%d,peer=%d", n, st.OriginFetches, st.PeerHits)
	}
	return fp.String()
}

// TestPartitionMidStampedeDeterministic is the headline acceptance test:
// the partition-mid-stampede scenario holds its invariants and produces an
// identical fingerprint on 5 repeated runs with the same seed.
func TestPartitionMidStampedeDeterministic(t *testing.T) {
	seed := 42 + seedOffset()
	first := runPartitionStampedeScenario(t, seed)
	for run := 1; run < 5; run++ {
		if again := runPartitionStampedeScenario(t, seed); again != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", run, again, first)
		}
	}
}
