package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nakika/internal/core"
	"nakika/internal/lease"
	"nakika/internal/state"
)

// Deterministic acceptance scenarios for distributed leases: a holder is
// killed mid-critical-section and the heir takes over in O(1) messages when
// the crash is failure-detector-visible (strictly cheaper, in messages and
// virtual time, than the TTL-expiry path a silent holder forces); a deposed
// holder's buffered write is rejected with ErrFenced after the heir's first
// fenced write; and the narrowest grant edge — the lease record's acting
// owner dying between its WAL append and the replica acknowledgement —
// resolves to exactly one holdership. Every scenario runs on the simulated
// transport, so each seed fingerprints identically on repeat runs.

// leaseRecordOwner returns the membership ground-truth acting owner of the
// named lease's record.
func leaseRecordOwner(c *Cluster, site, name string) string {
	return c.Ring.Successor(state.ReplicaKey(site, lease.Key(name))).Name
}

// pickNode returns the first live node not in avoid.
func pickNode(c *Cluster, avoid ...string) string {
	for _, n := range c.Names() {
		if !c.Live(n) {
			continue
		}
		skip := false
		for _, a := range avoid {
			if n == a {
				skip = true
				break
			}
		}
		if !skip {
			return n
		}
	}
	return ""
}

// runLeaseHandoverScenario is the lease acceptance scenario. Returns a
// fingerprint of every deterministic observable.
func runLeaseHandoverScenario(t *testing.T, seed int64) string {
	t.Helper()
	c, err := New(Config{N: 5, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true, Persist: true}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)

	// --- Phase 1: crash-visible handover (the RME adaptive path). ---
	// The holder and heir are both chosen away from the lease record's
	// acting owner, so arbitration for each of them is one forwarded RPC.
	const job = "handover"
	owner1 := leaseRecordOwner(c, repSite, job)
	holderName := pickNode(c, owner1)
	heirName := pickNode(c, owner1, holderName)
	holder, heir := c.NodeByName(holderName), c.NodeByName(heirName)

	token1, ok := holder.LeaseAcquire(repSite, job, 10*time.Second)
	if !ok || token1 != 1 {
		t.Fatalf("holder acquire = (%d, %v), want (1, true)", token1, ok)
	}

	// The critical section: fenced writes under token 1. csKey is chosen so
	// the holder itself is not among its replicas — after the crash, every
	// store holding it stays live and hears the heir's floor-raising write.
	csKey := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("cs-%02d", i)
		if err := holder.FencedStatePut(repSite, k, "held-"+holderName, job, token1); err != nil {
			t.Fatalf("holder fenced write %s: %v", k, err)
		}
		inReplicas := false
		for _, h := range c.StateHolders(repSite, k) {
			if h == holderName {
				inReplicas = true
				break
			}
		}
		if !inReplicas {
			csKey = k
			break
		}
	}
	if csKey == "" {
		t.Fatal("no critical-section key replicated away from the holder")
	}

	// Kill the holder mid-section. The crash is detector-visible (the
	// overlay ping fails), so the heir's single acquire must be granted by
	// the adaptive path well before the 10s TTL could lapse.
	c.Crash(holderName)
	d0, t0 := c.Sim.Stats().Delivered, c.Sim.Now()
	token2, ok := heir.LeaseAcquire(repSite, job, 10*time.Second)
	msgsCrash, timeCrash := c.Sim.Stats().Delivered-d0, c.Sim.Now()-t0
	if !ok || token2 != token1+1 {
		t.Fatalf("heir acquire = (%d, %v), want (%d, true)", token2, ok, token1+1)
	}
	if st := c.NodeByName(owner1).Stats().Lease; st.CrashHandovers != 1 {
		t.Fatalf("owner crash handovers = %d, want 1 (stats %+v)", st.CrashHandovers, st)
	}
	// O(1): one forwarded acquire, one failed probe, one replicated grant —
	// a constant budget with plenty of slack, independent of the TTL.
	if msgsCrash > 24 {
		t.Fatalf("crash-visible handover took %d messages, want O(1) (<= 24)", msgsCrash)
	}

	// The heir's first fenced write overwrites a key of the deposed
	// critical section, raising the fence floor at every live store that
	// holds it.
	if err := heir.FencedStatePut(repSite, csKey, "heir-"+heirName, job, token2); err != nil {
		t.Fatalf("heir fenced write: %v", err)
	}

	// --- Phase 2: TTL-expiry handover (no crash to detect). ---
	// A second lease whose holder stays alive but silent: the heir can only
	// poll until the TTL lapses, paying messages and virtual time the
	// adaptive path never spends.
	// The lease name is picked so its record's acting owner is live (the
	// phase-1 holder is still down): arbitration stats land at the ground
	// truth owner instead of a failover successor.
	ttlJob, owner2 := "", ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("ttl-job-%02d", i)
		if o := leaseRecordOwner(c, repSite, name); o != holderName {
			ttlJob, owner2 = name, o
			break
		}
	}
	if ttlJob == "" {
		t.Fatal("no ttl lease record owned away from the crashed holder")
	}
	ttl := 50 * time.Millisecond
	holder2Name := pickNode(c, owner2, holderName)
	heir2Name := pickNode(c, owner2, holderName, holder2Name)
	token3, ok := c.NodeByName(holder2Name).LeaseAcquire(repSite, ttlJob, ttl)
	if !ok || token3 != 1 {
		t.Fatalf("ttl holder acquire = (%d, %v), want (1, true)", token3, ok)
	}
	d1, t1 := c.Sim.Stats().Delivered, c.Sim.Now()
	var token4 uint64
	polls := 0
	for ; polls < 500; polls++ {
		if tok, ok := c.NodeByName(heir2Name).LeaseAcquire(repSite, ttlJob, ttl); ok {
			token4 = tok
			break
		}
	}
	msgsTTL, timeTTL := c.Sim.Stats().Delivered-d1, c.Sim.Now()-t1
	if token4 != token3+1 {
		t.Fatalf("ttl heir token = %d after %d polls, want %d", token4, polls, token3+1)
	}
	if polls == 0 {
		t.Fatal("ttl heir was granted without ever being denied — the TTL path was not exercised")
	}
	if st := c.NodeByName(owner2).Stats().Lease; st.ExpiryHandovers != 1 || st.Denied == 0 {
		t.Fatalf("ttl owner stats = %+v, want 1 expiry handover after >= 1 denial", st)
	}

	// The metrics registry splits handovers by recovery path exactly as
	// the scenario drove them: the detector-visible crash on the phase-1
	// record owner, the TTL expiry on the phase-2 owner.
	expositionHas(t, c.NodeByName(owner1), `nakika_lease_handovers_total{path="crash"} 1`)
	expositionHas(t, c.NodeByName(owner2), `nakika_lease_handovers_total{path="expiry"} 1`)

	// The adaptive path is strictly cheaper than waiting out the TTL, in
	// messages and in virtual time.
	if msgsCrash >= msgsTTL {
		t.Fatalf("crash handover %d messages, ttl handover %d: adaptive path must be strictly cheaper", msgsCrash, msgsTTL)
	}
	if timeCrash >= timeTTL {
		t.Fatalf("crash handover %v, ttl handover %v: adaptive path must be strictly faster", timeCrash, timeTTL)
	}

	// --- Phase 3: the deposed holder's buffered write arrives late. ---
	// The holder restarts (its WAL replays the old holdership) and its
	// buffered critical-section write finally goes out, still under token
	// 1. The heir has already written under token 2, so every store holding
	// csKey fences the stale write off.
	c.Restart(holderName)
	c.StabilizeAll(6)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	err = c.NodeByName(holderName).FencedStatePut(repSite, csKey, "late-"+holderName, job, token1)
	if !errors.Is(err, core.ErrFenced) {
		t.Fatalf("deposed holder's late write: err = %v, want ErrFenced", err)
	}
	// The value everywhere is the heir's, never the deposed holder's.
	for _, h := range c.StateHolders(repSite, csKey) {
		if got, ok := c.NodeByName(h).StateGet(repSite, csKey); !ok || got != "heir-"+heirName {
			t.Fatalf("store %s holds %q (ok=%v), want the heir's write", h, got, ok)
		}
	}

	// Fingerprint every deterministic observable for the repeat-run check.
	var fp strings.Builder
	fmt.Fprintf(&fp, "owner1=%s holder=%s heir=%s cs=%s tokens=%d,%d,%d,%d", owner1, holderName, heirName, csKey, token1, token2, token3, token4)
	fmt.Fprintf(&fp, " crash=%d/%s ttl=%d/%s polls=%d", msgsCrash, timeCrash, msgsTTL, timeTTL, polls)
	for _, n := range c.Names() {
		st := c.NodeByName(n).Stats().Lease
		fmt.Fprintf(&fp, " %s:a=%d,r=%d,d=%d,ch=%d,eh=%d,fw=%d,fr=%d",
			n, st.Acquired, st.Renewed, st.Denied, st.CrashHandovers, st.ExpiryHandovers, st.FencedWrites, st.FencedRejects)
	}
	fmt.Fprintf(&fp, " holders=%v", c.StateHolders(repSite, csKey))
	return fp.String()
}

// TestLeaseHandoverDeterministic is the lease acceptance test: the
// kill-holder-mid-critical-section scenario holds its invariants — O(1)
// adaptive handover strictly cheaper than TTL expiry, deposed writes
// fenced — and produces an identical fingerprint on repeat runs, across 5
// seeds.
func TestLeaseHandoverDeterministic(t *testing.T) {
	for _, seed := range []int64{41, 42, 43, 44, 45} {
		seed := seed + seedOffset()
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			first := runLeaseHandoverScenario(t, seed)
			if again := runLeaseHandoverScenario(t, seed); again != first {
				t.Fatalf("seed %d diverged:\n%s\nvs\n%s", seed, first, again)
			}
		})
	}
}

// TestLeaseGrantOwnerDiesBeforeReplicaAck pins the narrowest grant edge:
// the lease record's acting owner appends the grant to its WAL, pushes it
// to a replica, and crashes before the acknowledgement returns. The grant
// is not acknowledged (the acquirer holds nothing), yet the record exists
// on the replica — recovery must resolve to exactly one holdership with
// the same token, never two.
func TestLeaseGrantOwnerDiesBeforeReplicaAck(t *testing.T) {
	seed := 51 + seedOffset()
	c, err := New(Config{N: 5, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Manual: true, Persist: true}, NewCountingOrigin())
	if err != nil {
		t.Fatal(err)
	}
	c.StabilizeAll(4)

	// A lease whose record the acquirer itself owns: arbitration is local,
	// so the WAL append happens with no message traffic before the replica
	// pushes — the crash window sits exactly between the two.
	job, victim := "", ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("grant-%02d", i)
		if o := leaseRecordOwner(c, repSite, name); o != "node-0" {
			job, victim = name, o
			break
		}
	}
	if job == "" {
		t.Fatal("no lease record owned away from node-0")
	}
	if err := c.Schedule(fmt.Sprintf("at %s crash %s", c.Sim.Now()+500*time.Microsecond, victim)); err != nil {
		t.Fatal(err)
	}
	if token, ok := c.NodeByName(victim).LeaseAcquire(repSite, job, time.Hour); ok {
		t.Fatalf("grant with owner dying before replica ack must not be acknowledged (got token %d)", token)
	}
	if c.Live(victim) {
		t.Fatal("crash never landed")
	}

	// The unacknowledged grant record surfaced on a replica: some live node
	// already holds it (at-least-once, same as data writes).
	surfaced := false
	for _, n := range c.Names() {
		if n == victim || !c.Live(n) {
			continue
		}
		if rec, ok := c.NodeByName(n).LeaseRecord(repSite, job); ok && rec.Holder == victim && rec.Token == 1 {
			surfaced = true
			break
		}
	}
	if !surfaced {
		t.Fatal("replica did not retain the in-flight grant record")
	}

	// While the victim is down, another node cannot steal the lease with a
	// fresh token race: the replicated record names the victim, the victim
	// is detector-visibly dead, so the heir is granted token 2 over it —
	// one holdership at a time, monotonic tokens.
	heir := pickNode(c, victim)
	token2, ok := c.NodeByName(heir).LeaseAcquire(repSite, job, time.Hour)
	if !ok || token2 != 2 {
		t.Fatalf("heir acquire over the half-granted record = (%d, %v), want (2, true)", token2, ok)
	}

	// The victim restarts, replays its WAL (which holds the token-1 grant
	// it never got credit for), and re-acquires: it must NOT resurrect
	// token 1 — the heir's holdership is live, so the victim is denied.
	c.Restart(victim)
	c.StabilizeAll(6)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if token, ok := c.NodeByName(victim).LeaseAcquire(repSite, job, time.Hour); ok {
		t.Fatalf("restarted victim stole the lease (token %d) from the live heir", token)
	}
	// And its token-1 writes are fenced once the heir has written.
	if err := c.NodeByName(heir).FencedStatePut(repSite, "grant-cs", "heir", job, token2); err != nil {
		t.Fatalf("heir fenced write: %v", err)
	}
	if err := c.NodeByName(victim).FencedStatePut(repSite, "grant-cs", "victim", job, 1); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("victim's token-1 write: err = %v, want ErrFenced", err)
	}
}
