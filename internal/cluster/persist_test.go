package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"nakika/internal/core"
	"nakika/internal/store"
)

// runCrashRecoveryScenario is the persistence acceptance scenario: a
// 5-node cluster where every node owns a preserved data directory. One
// node warms its cache (memory + disk tier), then runs a hard-state write
// burst with a crash scripted to land mid-burst at a virtual time. The
// node restarts from its data directory and must recover its hard state
// exactly (all acknowledged writes, nothing else) and serve its warm
// cache from the disk tier with zero additional origin fetches. It
// returns a fingerprint of every deterministic observable.
func runCrashRecoveryScenario(t *testing.T, seed int64) string {
	t.Helper()
	const (
		site    = "site.example.org"
		nPages  = 8
		l1Cap   = 4 // tiny L1 so warming demotes half the pages to disk
		maxPuts = 400
	)
	pageURL := func(i int) string { return fmt.Sprintf("http://%s/page-%d.html", site, i) }

	origin := NewCountingOrigin()
	for i := 0; i < nPages; i++ {
		origin.AddPage(pageURL(i), strings.Repeat(fmt.Sprintf("p%d-", i), 256), 600)
	}
	// Replication is disabled: this scenario pins the single-node
	// persistence contract (a node recovers exactly its own disk), which
	// successor replication would mask by routing writes to ring owners
	// and serving reads from replicas.
	c, err := New(Config{N: 5, Seed: seed, Latency: time.Millisecond, TTL: time.Hour, Persist: true, Replication: -1,
		Mutate: func(i int, cfg *core.Config) {
			cfg.Cache.MaxEntries = l1Cap
			// A small compaction threshold makes the snapshot/truncate
			// cycle run mid-burst, so recovery exercises snapshot + WAL
			// replay, not just a single log file.
			cfg.Persist.CompactBytes = 4 << 10
		}}, origin)
	if err != nil {
		t.Fatal(err)
	}
	victim := "node-1"
	node := c.NodeByName(victim)

	// Warm: fetch every page at the victim, then re-touch the first half.
	// With a 4-entry L1 the first pass demotes pages 0-3 to disk; the
	// re-touch promotes them back (leaving the disk copies in place) and
	// demotes pages 4-7. Every page now lives in the disk tier.
	for i := 0; i < nPages; i++ {
		resp, err := c.Handle(victim, pageURL(i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 {
			t.Fatalf("warm fetch %d: status %d", i, resp.Status)
		}
	}
	for i := 0; i < nPages/2; i++ {
		if _, err := c.Handle(victim, pageURL(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The disk tier holds every page plus the cacheable 404s from policy
	// probes (nakika.js, admin walls) that the tiny L1 evicted.
	if got := node.Cache().L2().Len(); got < nPages {
		t.Fatalf("disk tier holds %d entries after warm, want at least %d", got, nPages)
	}
	warmHits := 0
	for i := 0; i < nPages; i++ {
		warmHits += origin.Hits(pageURL(i))
	}
	if warmHits != nPages {
		t.Fatalf("origin fetched %d pages during warm, want %d", warmHits, nPages)
	}

	// Write burst with a crash scripted mid-burst: every StatePut is
	// replicated over the simulated transport, so the burst itself
	// advances the virtual clock into the scheduled crash. Writes issued
	// after the crash must fail (the engine is gone); everything
	// acknowledged before it must survive.
	if err := c.Schedule(fmt.Sprintf("at %s crash %s", c.Sim.Now()+10*time.Millisecond, victim)); err != nil {
		t.Fatal(err)
	}
	var acked []string
	burstVal := func(i int) string { return fmt.Sprintf("value-%04d-%s", i, strings.Repeat("x", 512)) }
	for i := 0; i < maxPuts; i++ {
		key := fmt.Sprintf("burst-%04d", i)
		if err := node.StatePut(site, key, burstVal(i)); err != nil {
			if err != store.ErrClosed {
				t.Fatalf("write %d failed with %v, want ErrClosed after crash", i, err)
			}
			break
		}
		acked = append(acked, key)
	}
	if c.Live(victim) {
		t.Fatal("crash never landed: burst too short for the schedule")
	}
	if len(acked) == 0 || len(acked) == maxPuts {
		t.Fatalf("crash did not land mid-burst: %d/%d writes acknowledged", len(acked), maxPuts)
	}

	// Restart from the preserved data directory.
	c.Restart(victim)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	// Hard state recovers exactly: every acknowledged write is present
	// with its value, and nothing unacknowledged appears.
	for i, key := range acked {
		v, ok := node.StateGet(site, key)
		if !ok || v != burstVal(i) {
			t.Fatalf("acknowledged write %s lost or corrupt after recovery (ok=%v)", key, ok)
		}
	}
	if keys := node.StateKeys(site); len(keys) != len(acked) {
		t.Fatalf("recovered %d keys, want exactly the %d acknowledged", len(keys), len(acked))
	}
	replayStats := node.StoreStats()
	if replayStats.Compactions != 0 {
		t.Fatalf("fresh engine reports %d compactions", replayStats.Compactions)
	}

	// Warm cache recovers from the disk tier: every page is served with
	// the right body and zero additional origin fetches.
	for i := 0; i < nPages; i++ {
		resp, err := c.Handle(victim, pageURL(i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 200 || !strings.HasPrefix(string(resp.Body), fmt.Sprintf("p%d-", i)) {
			t.Fatalf("rewarm fetch %d: status %d, body %q...", i, resp.Status, resp.Body[:8])
		}
		if !resp.FromCache {
			t.Fatalf("rewarm fetch %d not served from cache", i)
		}
	}
	rewarmHits := 0
	for i := 0; i < nPages; i++ {
		rewarmHits += origin.Hits(pageURL(i))
	}
	if rewarmHits != warmHits {
		t.Fatalf("rewarm cost %d additional origin fetches, want zero", rewarmHits-warmHits)
	}
	cs := node.Cache().Stats()
	if cs.DiskHits < nPages {
		t.Fatalf("disk tier served %d hits, want at least %d", cs.DiskHits, nPages)
	}

	// Fingerprint every deterministic observable for the repeat-run check.
	var fp strings.Builder
	fmt.Fprintf(&fp, "acked=%d replayed=%d", len(acked), replayStats.Replayed)
	fmt.Fprintf(&fp, " origin=%d diskhits=%d demotions=%d", rewarmHits, cs.DiskHits, cs.Demotions)
	for _, key := range node.StateKeys(site) {
		v, _ := node.StateGet(site, key)
		fmt.Fprintf(&fp, " %s=%d", key, len(v))
	}
	for _, n := range c.Names() {
		st := c.NodeByName(n).Stats()
		fmt.Fprintf(&fp, " %s:origin=%d,cache=%d", n, st.OriginFetches, st.CacheHits)
	}
	return fp.String()
}

// TestCrashRecoveryMidBurstDeterministic is the persistence acceptance
// test: the crash-mid-write-burst scenario holds its invariants and
// produces an identical fingerprint on 5 repeated runs with the same
// seed.
func TestCrashRecoveryMidBurstDeterministic(t *testing.T) {
	seed := 7 + seedOffset()
	first := runCrashRecoveryScenario(t, seed)
	for run := 1; run < 5; run++ {
		if again := runCrashRecoveryScenario(t, seed); again != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", run, again, first)
		}
	}
}

// TestCrashWithoutPersistStillLosesState pins the opt-in contract: a
// cluster without Persist behaves exactly as before — a crashed node
// comes back empty-handed and refetches from the origin.
func TestCrashWithoutPersistStillLosesState(t *testing.T) {
	origin := NewCountingOrigin()
	url := "http://site.example.org/only.html"
	origin.AddPage(url, "<html>only</html>", 600)
	c, err := New(Config{N: 3, Seed: 11, Latency: time.Millisecond, TTL: time.Hour, Replication: -1}, origin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Handle("node-0", url); err != nil {
		t.Fatal(err)
	}
	node := c.NodeByName("node-0")
	if err := node.StatePut("site.example.org", "k", "v"); err != nil {
		t.Fatal(err)
	}
	c.Crash("node-0")
	c.Restart("node-0")
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got := node.Cache().Stats(); got.Entries != 0 {
		t.Fatalf("crashed node kept %d cache entries", got.Entries)
	}
	if _, ok := node.StateGet("site.example.org", "k"); ok {
		t.Fatal("crashed node without persistence kept hard state")
	}
	// node-0 was the page's only holder, so the refetch must go back to
	// the origin: nothing was preserved.
	if _, err := c.Handle("node-0", url); err != nil {
		t.Fatal(err)
	}
	if hits := origin.Hits(url); hits != 2 {
		t.Fatalf("origin hits after lossy restart = %d, want 2 (refetch)", hits)
	}
}
