// Package loadview implements the cluster-wide load accounting that backs
// request offload and hedged replica reads: each node meters its own load
// as a cheap exponentially-decayed score, piggybacks the score on overlay
// maintenance RPCs so peers hold a fresh load view of their successors and
// predecessors, and keeps a per-peer EWMA of RPC round-trip times that the
// read path turns into hedge budgets.
//
// Everything in this package is driven by an injectable clock (wall time by
// default, the simulated network's virtual clock under the deterministic
// cluster harness), so load decay, view freshness, and RTT estimates are
// bit-identical across seeded simulation runs.
package loadview

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultHalfLife is the decay half-life of the work component of a load
// score when the owner does not configure one.
const DefaultHalfLife = 2 * time.Second

// Meter tracks one node's own load: the instantaneous number of in-flight
// requests (which doubles as the queue depth in this runtime — requests
// execute on their arrival goroutine, so every admitted-but-unfinished
// request is "queued" on a stage context) plus an exponentially-decayed
// accumulation of recently completed work. The work of a request defaults
// to 1 and callers may weight it by a CPU-equivalent (the resource
// controller's congestion share), so a node grinding through expensive
// pipelines reports hotter than one serving cache hits at the same rate.
type Meter struct {
	clock    func() time.Duration
	halfLife time.Duration

	mu       sync.Mutex
	inflight int
	work     float64
	last     time.Duration
}

// NewMeter returns a meter decaying on the given clock; a nil clock means
// wall time (monotonic since construction) and a zero halfLife means
// DefaultHalfLife.
func NewMeter(clock func() time.Duration, halfLife time.Duration) *Meter {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Meter{clock: clock, halfLife: halfLife}
}

// decayLocked folds elapsed time into the work accumulator. Caller holds
// m.mu.
func (m *Meter) decayLocked(now time.Duration) {
	if now > m.last && m.work > 0 {
		m.work *= math.Exp2(-float64(now-m.last) / float64(m.halfLife))
	}
	if now > m.last {
		m.last = now
	}
}

// Begin records one request entering execution.
func (m *Meter) Begin() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

// End records one request leaving execution, folding its cost (1 for a
// plain request, more for a CPU-heavy one) into the decayed work score.
func (m *Meter) End(cost float64) {
	if cost < 0 {
		cost = 0
	}
	m.mu.Lock()
	m.decayLocked(m.clock())
	m.inflight--
	if m.inflight < 0 {
		m.inflight = 0
	}
	m.work += cost
	m.mu.Unlock()
}

// Score returns the node's current load score: in-flight requests plus the
// decayed recent work. Idle nodes decay toward zero without needing any
// event to fire.
func (m *Meter) Score() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decayLocked(m.clock())
	return float64(m.inflight) + m.work
}

// FormatScore renders a load score for the wire (piggybacked on overlay
// maintenance RPCs and offload replies). The 'g'/-1 encoding round-trips
// float64 exactly, keeping simulated runs deterministic.
func FormatScore(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

// ParseScore parses a wire-format load score; ok is false for absent or
// malformed values (older peers that do not gossip load).
func ParseScore(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// View is a node's last-known load score for each peer, fed by gossip
// observations (overlay maintenance replies, offload replies). Scores are
// timestamped so fresher observations always win and so callers can treat
// a score as decayed between observations with the same half-life peers
// use locally — a peer that went quiet reads progressively cooler instead
// of being pinned at its last hot sample.
type View struct {
	clock    func() time.Duration
	halfLife time.Duration

	mu    sync.Mutex
	peers map[string]sample
}

type sample struct {
	score float64
	at    time.Duration
}

// NewView returns an empty view on the given clock (nil means wall time;
// zero halfLife means DefaultHalfLife).
func NewView(clock func() time.Duration, halfLife time.Duration) *View {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &View{clock: clock, halfLife: halfLife, peers: make(map[string]sample)}
}

// Observe records peer's freshly reported load score.
func (v *View) Observe(peer string, score float64) {
	if peer == "" || math.IsNaN(score) || math.IsInf(score, 0) {
		return
	}
	v.mu.Lock()
	v.peers[peer] = sample{score: score, at: v.clock()}
	v.mu.Unlock()
}

// Score returns the decayed last-known load of peer; ok is false when the
// peer has never been observed (callers treat unknown as cold — unknown
// peers are worth exploring, not avoiding).
func (v *View) Score(peer string) (float64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s, ok := v.peers[peer]
	if !ok {
		return 0, false
	}
	return v.decayed(s), true
}

// decayed applies the view's half-life to a sample's age. Caller holds
// v.mu.
func (v *View) decayed(s sample) float64 {
	now := v.clock()
	if now <= s.at || s.score <= 0 {
		return s.score
	}
	return s.score * math.Exp2(-float64(now-s.at)/float64(v.halfLife))
}

// LeastLoaded returns the candidate with the lowest decayed score, treating
// never-observed candidates as load 0. Ties break to the lexicographically
// smallest name so the choice is deterministic. ok is false only for an
// empty candidate list.
func (v *View) LeastLoaded(candidates []string) (name string, score float64, ok bool) {
	if len(candidates) == 0 {
		return "", 0, false
	}
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, c := range sorted {
		cur := 0.0
		if s, known := v.peers[c]; known {
			cur = v.decayed(s)
		}
		if i == 0 || cur < score {
			name, score = c, cur
		}
	}
	return name, score, true
}

// Snapshot returns a copy of the view's decayed scores (tests and
// debugging).
func (v *View) Snapshot() map[string]float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]float64, len(v.peers))
	for name, s := range v.peers {
		out[name] = v.decayed(s)
	}
	return out
}

// RTT keeps a per-peer exponentially-weighted moving average of RPC
// round-trip times. The hedged read path compares a replica's expected RTT
// against the hedge budget before committing a read to it.
type RTT struct {
	alpha float64

	mu    sync.Mutex
	peers map[string]time.Duration
}

// DefaultRTTAlpha weights fresh RTT observations; high enough that a peer
// turning slow is noticed within a few calls, low enough that one outlier
// does not swing the estimate.
const DefaultRTTAlpha = 0.3

// NewRTT returns an empty estimator (alpha <= 0 means DefaultRTTAlpha).
func NewRTT(alpha float64) *RTT {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultRTTAlpha
	}
	return &RTT{alpha: alpha, peers: make(map[string]time.Duration)}
}

// Observe folds one measured round trip to peer into its EWMA.
func (r *RTT) Observe(peer string, d time.Duration) {
	if peer == "" || d < 0 {
		return
	}
	r.mu.Lock()
	if cur, ok := r.peers[peer]; ok {
		r.peers[peer] = time.Duration(r.alpha*float64(d) + (1-r.alpha)*float64(cur))
	} else {
		r.peers[peer] = d
	}
	r.mu.Unlock()
}

// Expect returns the peer's estimated round-trip time; ok is false before
// the first observation (callers must not hedge on a guess).
func (r *RTT) Expect(peer string) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.peers[peer]
	return d, ok
}

// Slow returns, sorted, the peers whose estimate exceeds budget. A slow
// estimate is self-sealing on a read-only workload — the hedge path stops
// contacting the peer, so nothing retrains it — which is why maintenance
// loops re-probe exactly these peers out of band.
func (r *RTT) Slow(budget time.Duration) []string {
	r.mu.Lock()
	var out []string
	for peer, d := range r.peers {
		if d > budget {
			out = append(out, peer)
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
