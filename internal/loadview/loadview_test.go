package loadview

import (
	"testing"
	"time"
)

// virtualClock is a hand-advanced clock for deterministic decay tests.
type virtualClock struct{ now time.Duration }

func (c *virtualClock) Now() time.Duration { return c.now }

func TestMeterInflightAndDecay(t *testing.T) {
	clk := &virtualClock{}
	m := NewMeter(clk.Now, time.Second)
	if got := m.Score(); got != 0 {
		t.Fatalf("fresh meter score = %v, want 0", got)
	}
	m.Begin()
	if got := m.Score(); got != 1 {
		t.Fatalf("score with one in-flight = %v, want 1", got)
	}
	m.End(1)
	if got := m.Score(); got != 1 {
		t.Fatalf("score after completion = %v, want 1 (work)", got)
	}
	// One half-life halves the work component.
	clk.now += time.Second
	if got := m.Score(); got < 0.49 || got > 0.51 {
		t.Fatalf("score after one half-life = %v, want ~0.5", got)
	}
	// Many half-lives decay toward zero.
	clk.now += 40 * time.Second
	if got := m.Score(); got > 1e-9 {
		t.Fatalf("score after 40 half-lives = %v, want ~0", got)
	}
}

func TestMeterCostAccumulates(t *testing.T) {
	clk := &virtualClock{}
	m := NewMeter(clk.Now, time.Second)
	for i := 0; i < 10; i++ {
		m.Begin()
		m.End(1)
	}
	if got := m.Score(); got != 10 {
		t.Fatalf("score after 10 instant requests = %v, want 10", got)
	}
}

func TestScoreWireRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 0.5, 12.75, 1e-9, 123456.789} {
		got, ok := ParseScore(FormatScore(v))
		if !ok || got != v {
			t.Fatalf("round trip of %v = (%v, %v)", v, got, ok)
		}
	}
	if _, ok := ParseScore(""); ok {
		t.Fatal("empty score parsed")
	}
	if _, ok := ParseScore("NaN"); ok {
		t.Fatal("NaN score parsed")
	}
	if _, ok := ParseScore("bogus"); ok {
		t.Fatal("malformed score parsed")
	}
}

func TestViewLeastLoadedDeterministic(t *testing.T) {
	clk := &virtualClock{}
	v := NewView(clk.Now, time.Second)
	v.Observe("b", 3)
	v.Observe("c", 1)
	name, score, ok := v.LeastLoaded([]string{"b", "c"})
	if !ok || name != "c" || score != 1 {
		t.Fatalf("LeastLoaded = (%s, %v, %v), want (c, 1, true)", name, score, ok)
	}
	// Unknown peers read as cold and win.
	name, score, ok = v.LeastLoaded([]string{"b", "c", "z"})
	if !ok || name != "z" || score != 0 {
		t.Fatalf("LeastLoaded with unknown = (%s, %v, %v), want (z, 0, true)", name, score, ok)
	}
	// Ties break lexicographically, regardless of candidate order.
	v.Observe("a", 1)
	v.Observe("z", 1)
	v.Observe("b", 1)
	v.Observe("c", 1)
	for _, cands := range [][]string{{"z", "c", "a", "b"}, {"b", "a", "z", "c"}} {
		if name, _, _ := v.LeastLoaded(cands); name != "a" {
			t.Fatalf("tie broke to %s for %v, want a", name, cands)
		}
	}
	if _, _, ok := v.LeastLoaded(nil); ok {
		t.Fatal("LeastLoaded of empty candidates reported ok")
	}
}

func TestViewObservationsDecay(t *testing.T) {
	clk := &virtualClock{}
	v := NewView(clk.Now, time.Second)
	v.Observe("p", 8)
	clk.now += 3 * time.Second
	got, ok := v.Score("p")
	if !ok || got < 0.99 || got > 1.01 {
		t.Fatalf("decayed view score = (%v, %v), want ~1", got, ok)
	}
	if _, ok := v.Score("never"); ok {
		t.Fatal("unobserved peer reported a score")
	}
}

func TestRTTEWMA(t *testing.T) {
	r := NewRTT(0.5)
	if _, ok := r.Expect("p"); ok {
		t.Fatal("expectation before any observation")
	}
	r.Observe("p", 10*time.Millisecond)
	if d, ok := r.Expect("p"); !ok || d != 10*time.Millisecond {
		t.Fatalf("first observation = (%v, %v), want 10ms", d, ok)
	}
	r.Observe("p", 30*time.Millisecond)
	if d, _ := r.Expect("p"); d != 20*time.Millisecond {
		t.Fatalf("EWMA after 10,30 at alpha 0.5 = %v, want 20ms", d)
	}
	// A slow peer's estimate converges upward within a few calls.
	for i := 0; i < 8; i++ {
		r.Observe("p", 100*time.Millisecond)
	}
	if d, _ := r.Expect("p"); d < 90*time.Millisecond {
		t.Fatalf("EWMA stuck at %v after sustained 100ms observations", d)
	}
}
