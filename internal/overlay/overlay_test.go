package overlay

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestJoinLeaveSize(t *testing.T) {
	r := NewRing()
	if r.Size() != 0 {
		t.Fatal("new ring should be empty")
	}
	a := r.Join("node-a", "us-east")
	r.Join("node-b", "us-west")
	r.Join("node-c", "asia")
	if r.Size() != 3 {
		t.Errorf("size = %d", r.Size())
	}
	// Idempotent join.
	a2 := r.Join("node-a", "us-east")
	if a2 != a || r.Size() != 3 {
		t.Error("re-join should be idempotent")
	}
	r.Leave("node-b")
	if r.Size() != 2 {
		t.Errorf("size after leave = %d", r.Size())
	}
	r.Leave("node-b") // double leave is a no-op
	if r.Size() != 2 {
		t.Error("double leave changed size")
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != "node-a" || nodes[1] != "node-c" {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestHashIDDeterministic(t *testing.T) {
	if HashID("x") != HashID("x") {
		t.Error("HashID must be deterministic")
	}
	if HashID("x") == HashID("y") {
		t.Error("different keys should (overwhelmingly) hash differently")
	}
}

func TestSuccessorConsistency(t *testing.T) {
	r := NewRing()
	for i := 0; i < 10; i++ {
		r.Join(fmt.Sprintf("node-%d", i), "region")
	}
	// Every key has exactly one responsible node, agreed on by all nodes.
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("GET http://example.org/resource-%d", i)
		want := r.Successor(key)
		for _, name := range r.Nodes() {
			n := r.nodes[name]
			got, _ := n.Lookup(key)
			if got != want {
				t.Fatalf("node %s resolves %q to %s, ring says %s", name, key, got.Name, want.Name)
			}
		}
	}
}

func TestPublishAndLocate(t *testing.T) {
	r := NewRing()
	a := r.Join("node-a", "us-east")
	b := r.Join("node-b", "us-west")
	r.Join("node-c", "asia")

	key := "GET http://med.nyu.edu/simm/module1.html"
	if _, err := a.Publish(key); err != nil {
		t.Fatal(err)
	}
	// Any node can locate the cached copy.
	found, _ := b.Locate(key)
	if len(found) != 1 || found[0] != "node-a" {
		t.Errorf("Locate = %v", found)
	}
	// A second holder is added, not duplicated.
	if _, err := b.Publish(key); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(key); err != nil {
		t.Fatal(err)
	}
	found, _ = a.Locate(key)
	if len(found) != 2 {
		t.Errorf("Locate after second publish = %v", found)
	}
	// Unpublish removes only the named node's entry.
	a.Unpublish(key)
	found, _ = b.Locate(key)
	if len(found) != 1 || found[0] != "node-b" {
		t.Errorf("Locate after unpublish = %v", found)
	}
}

func TestLocateMissingKey(t *testing.T) {
	r := NewRing()
	a := r.Join("node-a", "us-east")
	if found, _ := a.Locate("GET http://never-published.example.org/"); len(found) != 0 {
		t.Errorf("Locate of unpublished key = %v", found)
	}
}

func TestIndexEntriesExpire(t *testing.T) {
	now := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewRing()
	r.DefaultTTL = 30 * time.Second
	r.Clock = func() time.Time { return now }
	a := r.Join("node-a", "us-east")
	b := r.Join("node-b", "us-west")
	key := "GET http://example.org/x"
	if _, err := a.Publish(key); err != nil {
		t.Fatal(err)
	}
	if found, _ := b.Locate(key); len(found) != 1 {
		t.Fatal("entry should be fresh")
	}
	now = now.Add(31 * time.Second)
	if found, _ := b.Locate(key); len(found) != 0 {
		t.Errorf("entry should have expired, got %v", found)
	}
}

func TestLookupHopsScaleLogarithmically(t *testing.T) {
	// With n nodes, lookups should take O(log n) hops, never more than
	// log2(n)+1.
	for _, n := range []int{2, 8, 32, 128} {
		r := NewRing()
		var nodes []*Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, r.Join(fmt.Sprintf("node-%d", i), "r"))
		}
		maxHops := 0
		for i := 0; i < 200; i++ {
			_, hops := nodes[i%n].Lookup(fmt.Sprintf("key-%d", i))
			if hops > maxHops {
				maxHops = hops
			}
		}
		bound := 1
		for s := n; s > 1; s >>= 1 {
			bound++
		}
		if maxHops > bound {
			t.Errorf("n=%d: max hops %d exceeds log bound %d", n, maxHops, bound)
		}
	}
}

func TestNodeStats(t *testing.T) {
	r := NewRing()
	a := r.Join("node-a", "us-east")
	r.Join("node-b", "us-west")
	for i := 0; i < 5; i++ {
		a.Lookup(fmt.Sprintf("k%d", i))
	}
	st := a.Stats()
	if st.Lookups != 5 {
		t.Errorf("lookups = %d", st.Lookups)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := NewRing()
	a := r.Join("only", "r")
	owner, hops := a.Lookup("anything")
	if owner != a || hops != 0 {
		t.Errorf("single node ring: owner=%v hops=%d", owner.Name, hops)
	}
	if _, err := a.Publish("k"); err != nil {
		t.Fatal(err)
	}
	if found, _ := a.Locate("k"); len(found) != 1 {
		t.Error("single node should locate its own entry")
	}
}

func TestEmptyRingLookup(t *testing.T) {
	r := NewRing()
	n := r.Join("temp", "r")
	r.Leave("temp")
	owner, _ := n.Lookup("k")
	if owner != nil {
		t.Error("lookup on empty ring should return nil")
	}
	if _, err := n.Publish("k"); err == nil {
		t.Error("publish on empty ring should error")
	}
}

func TestRedirectorPrefersRegion(t *testing.T) {
	r := NewRing()
	r.Join("east-1", "us-east")
	r.Join("east-2", "us-east")
	r.Join("west-1", "us-west")
	r.Join("asia-1", "asia")
	rd := NewRedirector(r)
	for i := 0; i < 10; i++ {
		pick := rd.Pick("asia")
		if pick != "asia-1" {
			t.Fatalf("asia client redirected to %s", pick)
		}
	}
	// Round-robin across nodes in the same region.
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		seen[rd.Pick("us-east")]++
	}
	if seen["east-1"] == 0 || seen["east-2"] == 0 {
		t.Errorf("expected round-robin across east nodes: %v", seen)
	}
	// Unknown region falls back to any node.
	if pick := rd.Pick("antarctica"); pick == "" {
		t.Error("unknown region should still get a node")
	}
	// Empty ring returns "".
	empty := NewRedirector(NewRing())
	if empty.Pick("us-east") != "" {
		t.Error("empty ring should return empty pick")
	}
}

func TestConcurrentPublishLocate(t *testing.T) {
	r := NewRing()
	var nodes []*Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, r.Join(fmt.Sprintf("n%d", i), "r"))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := nodes[g]
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("key-%d", i%20)
				if i%2 == 0 {
					if _, err := n.Publish(key); err != nil {
						t.Error(err)
						return
					}
				} else {
					n.Locate(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: keys are distributed over nodes reasonably evenly — with 8 nodes
// and many random keys, no node owns more than 60% of the keys.
func TestPropertyKeyDistribution(t *testing.T) {
	r := NewRing()
	for i := 0; i < 8; i++ {
		r.Join(fmt.Sprintf("node-%d", i), "r")
	}
	counts := map[string]int{}
	total := 2000
	for i := 0; i < total; i++ {
		owner := r.Successor(fmt.Sprintf("http://example.org/obj-%d", i))
		counts[owner.Name]++
	}
	for name, c := range counts {
		if float64(c) > 0.6*float64(total) {
			t.Errorf("node %s owns %d/%d keys — distribution too skewed", name, c, total)
		}
	}
}

// Property: the responsible node for a key is unchanged by adding nodes
// whose IDs do not fall between the key and its current owner (consistent
// hashing's minimal disruption property, checked indirectly: after removing
// the added node, ownership returns to the original).
func TestPropertyConsistentHashingStability(t *testing.T) {
	f := func(keySeed, nodeSeed uint32) bool {
		r := NewRing()
		for i := 0; i < 5; i++ {
			r.Join(fmt.Sprintf("stable-%d", i), "r")
		}
		key := fmt.Sprintf("key-%d", keySeed)
		before := r.Successor(key).Name
		extra := fmt.Sprintf("extra-%d", nodeSeed)
		r.Join(extra, "r")
		r.Leave(extra)
		after := r.Successor(key).Name
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	if !between(5, 3, 7) {
		t.Error("5 in (3,7]")
	}
	if between(3, 3, 7) {
		t.Error("3 not in (3,7]")
	}
	if !between(7, 3, 7) {
		t.Error("7 in (3,7]")
	}
	// Wrap-around interval.
	if !between(1, 10, 3) {
		t.Error("1 in (10,3] (wrapped)")
	}
	if between(5, 10, 3) {
		t.Error("5 not in (10,3] (wrapped)")
	}
	if !between(42, 7, 7) {
		t.Error("full circle interval contains everything")
	}
}
