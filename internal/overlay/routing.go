package overlay

import (
	"fmt"
	"sort"
	"strconv"

	"nakika/internal/transport"
)

// idBits is the routing identifier width: fingers[b] targets ID + 2^b.
const idBits = 64

// maxLookupHops bounds an iterative lookup; a converged ring resolves in
// O(log n) hops, so hitting this means routing state is badly broken.
const maxLookupHops = 96

// Overlay message types (the "ov." prefix is what transport.Mux routes on).
const (
	msgFindSuccessor = "ov.find_successor"
	msgPublish       = "ov.publish"
	msgLocate        = "ov.locate"
	msgUnpublish     = "ov.unpublish"
	msgStabilize     = "ov.stab"
	msgNotify        = "ov.notify"
	msgPing          = "ov.ping"
)

func fmtID(id ID) string { return strconv.FormatUint(uint64(id), 16) }

func parseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return ID(v), err
}

// skipList renders a skip set for the wire (sorted for determinism).
func skipList(skip map[string]bool) []string {
	if len(skip) == 0 {
		return nil
	}
	out := make([]string, 0, len(skip))
	for s := range skip {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// call sends an overlay RPC through the ring's transport.
func (r *Ring) call(from, to string, msg transport.Message) (transport.Message, error) {
	return r.Transport.Call(from, to, msg)
}

// ---------------------------------------------------------------------------
// Routing-table construction
// ---------------------------------------------------------------------------

// tablesFor computes the converged routing tables for position id given the
// current membership. Caller holds r.mu.
func (r *Ring) tablesFor(id ID) (pred ref, succs []ref, fingers []ref) {
	n := len(r.sorted)
	if n <= 1 {
		return ref{}, nil, make([]ref, idBits)
	}
	pos := 0
	for i, v := range r.sorted {
		if v == id {
			pos = i
			break
		}
	}
	k := r.succListLen()
	if k > n-1 {
		k = n - 1
	}
	for j := 1; j <= k; j++ {
		s := r.byID[r.sorted[(pos+j)%n]]
		succs = append(succs, ref{name: s.Name, id: s.ID})
	}
	p := r.byID[r.sorted[(pos-1+n)%n]]
	pred = ref{name: p.Name, id: p.ID}
	fingers = make([]ref, idBits)
	for b := 0; b < idBits; b++ {
		target := id + ID(uint64(1)<<uint(b)) // ring arithmetic wraps on uint64
		f := r.successorLocked(target)
		fingers[b] = ref{name: f.Name, id: f.ID}
	}
	return pred, succs, fingers
}

// rebuildRoutingLocked recomputes every member's routing tables from the
// membership ground truth — the instant-convergence maintenance model.
// Caller holds r.mu.
func (r *Ring) rebuildRoutingLocked() {
	for _, id := range r.sorted {
		node := r.byID[id]
		pred, succs, fingers := r.tablesFor(id)
		node.mu.Lock()
		node.pred, node.succs, node.fingers = pred, succs, fingers
		node.mu.Unlock()
	}
}

// seedRoutingLocked gives a joining node correct initial tables (the "join
// server" bootstrap) without touching anyone else's state; under
// ManualMaintenance the rest of the ring learns about the newcomer through
// stabilization. Caller holds r.mu.
func (r *Ring) seedRoutingLocked(n *Node) {
	pred, succs, fingers := r.tablesFor(n.ID)
	n.mu.Lock()
	n.pred, n.succs, n.fingers = pred, succs, fingers
	n.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Iterative lookup
// ---------------------------------------------------------------------------

// decision is one routing step's outcome: either the final owner of the
// target, or the next node to ask.
type decision struct {
	owner string
	final bool
	next  string
}

// decide runs one Chord routing step against the node's own tables. Names
// in skip are known-unreachable: they are never proposed as the next hop,
// and when the nominal owner is skipped, ownership falls to the next live
// successor (a dead node's keys belong to its first live successor).
func (n *Node) decide(target ID, skip map[string]bool) decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		// No successor state: alone on the ring (or still bootstrapping) —
		// claim the key rather than fail.
		return decision{owner: n.Name, final: true}
	}
	if between(target, n.ID, n.succs[0].id) {
		for _, s := range n.succs {
			if !skip[s.name] {
				return decision{owner: s.name, final: true}
			}
		}
		return decision{owner: n.succs[0].name, final: true}
	}
	if n.pred.name != "" && between(target, n.pred.id, n.ID) {
		// This node owns the target — unless the query skips it (a caller
		// asking "who owns this besides me/besides the dead owner"), in
		// which case ownership falls to the first non-skipped successor,
		// exactly as it would after this node's death.
		if !skip[n.Name] {
			return decision{owner: n.Name, final: true}
		}
		for _, s := range n.succs {
			if !skip[s.name] {
				return decision{owner: s.name, final: true}
			}
		}
		return decision{owner: n.succs[0].name, final: true}
	}
	if next := n.closestPrecedingLocked(target, skip); next != "" {
		return decision{next: next}
	}
	for _, s := range n.succs {
		if !skip[s.name] {
			return decision{owner: s.name, final: true}
		}
	}
	return decision{owner: n.succs[0].name, final: true}
}

// closestPrecedingLocked returns the name of the node from this node's
// tables (fingers, successors, predecessor) whose ID most closely precedes
// target, excluding names in skip. Caller holds n.mu.
func (n *Node) closestPrecedingLocked(target ID, skip map[string]bool) string {
	best := ref{}
	consider := func(c ref) {
		if c.name == "" || c.name == n.Name || skip[c.name] {
			return
		}
		// Candidate must lie between us and the target so every hop makes
		// progress toward the owner.
		if !between(c.id, n.ID, target) {
			return
		}
		if best.name == "" || between(best.id, n.ID, c.id) {
			best = c
		}
	}
	for i := len(n.fingers) - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succs {
		consider(s)
	}
	consider(n.pred)
	return best.name
}

// LookupName routes from this node to the node responsible for key,
// returning the owner's name and the number of remote routing hops taken.
// Unreachable hops are routed around using the rest of the node's tables.
func (n *Node) LookupName(key string) (string, int, error) {
	return n.lookupID(HashID(key), nil)
}

// LookupNameAvoid is LookupName with an initial set of names to treat as
// unreachable. The replication layer uses it for failover: when the nominal
// owner of a key is dead, looking the key up again with the dead node in
// avoid yields the key's first live successor — the node that now serves
// the key's replicas. avoid is not mutated.
func (n *Node) LookupNameAvoid(key string, avoid map[string]bool) (string, int, error) {
	return n.lookupID(HashID(key), avoid)
}

func (n *Node) lookupID(target ID, avoid map[string]bool) (string, int, error) {
	r := n.ring
	if r.Size() == 0 {
		return "", 0, fmt.Errorf("overlay: empty ring")
	}
	n.mu.Lock()
	n.lookups++
	n.mu.Unlock()
	hops := 0
	defer func() {
		n.mu.Lock()
		n.hops += int64(hops)
		n.mu.Unlock()
	}()

	skip := make(map[string]bool, len(avoid))
	for name := range avoid {
		skip[name] = true
	}
	dec := n.decide(target, skip)
	if dec.final {
		return dec.owner, hops, nil
	}
	cur := dec.next
	var lastErr error
	for hops < maxLookupHops {
		reply, err := r.call(n.Name, cur, transport.Message{Type: msgFindSuccessor, Key: fmtID(target), Args: skipList(skip)})
		hops++
		if err != nil {
			// Route around the dead/partitioned hop: restart the decision
			// from our own tables with the dead hop excluded (the skip set
			// travels with the query so later hops avoid it too).
			skip[cur] = true
			lastErr = err
			dec := n.decide(target, skip)
			if dec.final {
				return dec.owner, hops, nil
			}
			if dec.next == "" || skip[dec.next] {
				return "", hops, fmt.Errorf("overlay: lookup failed, no route to owner: %w", err)
			}
			cur = dec.next
			continue
		}
		if len(reply.Args) < 2 {
			return "", hops, fmt.Errorf("overlay: malformed find_successor reply")
		}
		name, kind := reply.Args[0], reply.Args[1]
		if kind == "final" {
			return name, hops, nil
		}
		if name == cur || skip[name] {
			// No progress: treat the hop's best guess as the owner.
			return name, hops, nil
		}
		cur = name
	}
	if lastErr != nil {
		return "", hops, fmt.Errorf("overlay: lookup did not converge: %w", lastErr)
	}
	return "", hops, fmt.Errorf("overlay: lookup did not converge after %d hops", hops)
}

// Lookup routes from the starting node to the node responsible for key,
// returning the member and the routing hop count (remote messages taken).
// It returns nil on an empty ring or when routing fails.
func (n *Node) Lookup(key string) (*Node, int) {
	name, hops, err := n.LookupName(key)
	if err != nil || name == "" {
		return nil, hops
	}
	r := n.ring
	r.mu.RLock()
	owner := r.nodes[name]
	r.mu.RUnlock()
	return owner, hops
}

// ---------------------------------------------------------------------------
// Cooperative-cache index operations (owner-side state, reached by RPC)
// ---------------------------------------------------------------------------

// Publish records that this node holds a cached copy of key. The record is
// stored at the node responsible for the key (the DHT put) and expires
// after the ring's TTL. The returned hop count covers the routing lookup.
func (n *Node) Publish(key string) (int, error) {
	owner, hops, err := n.LookupName(key)
	if err != nil {
		return hops, err
	}
	if owner == n.Name {
		n.applyPublish(n.Name, key)
		return hops, nil
	}
	if _, err := n.ring.call(n.Name, owner, transport.Message{Type: msgPublish, Key: key}); err != nil {
		return hops, fmt.Errorf("overlay: publish to %s: %w", owner, err)
	}
	return hops, nil
}

// Locate returns the names of nodes believed to hold cached copies of key,
// together with the routing hop count. Expired entries are filtered out.
func (n *Node) Locate(key string) ([]string, int) {
	holders, hops, _ := n.LocateErr(key)
	return holders, hops
}

// LocateErr is Locate with the routing/transport error exposed, so callers
// under fault injection can distinguish "no holders" from "index owner
// unreachable".
func (n *Node) LocateErr(key string) ([]string, int, error) {
	owner, hops, err := n.LookupName(key)
	if err != nil {
		return nil, hops, err
	}
	if owner == n.Name {
		return n.applyLocate(key), hops, nil
	}
	reply, err := n.ring.call(n.Name, owner, transport.Message{Type: msgLocate, Key: key})
	if err != nil {
		return nil, hops, fmt.Errorf("overlay: locate at %s: %w", owner, err)
	}
	return reply.Args, hops, nil
}

// Unpublish removes this node's entry for key (for example after cache
// eviction).
func (n *Node) Unpublish(key string) {
	owner, _, err := n.LookupName(key)
	if err != nil {
		return
	}
	if owner == n.Name {
		n.applyUnpublish(n.Name, key)
		return
	}
	_, _ = n.ring.call(n.Name, owner, transport.Message{Type: msgUnpublish, Key: key})
}

// applyPublish refreshes or appends holder's entry for key in this node's
// slice of the cooperative index, dropping expired entries as it goes.
func (n *Node) applyPublish(holder, key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.ring.now()
	entries := n.index[key]
	kept := entries[:0]
	found := false
	for _, e := range entries {
		if e.Expires.Before(now) {
			continue
		}
		if e.NodeName == holder {
			e.Expires = now.Add(n.ring.ttl())
			found = true
		}
		kept = append(kept, e)
	}
	if !found {
		kept = append(kept, Entry{NodeName: holder, Expires: now.Add(n.ring.ttl())})
	}
	n.index[key] = kept
}

// applyLocate returns the live holders of key from this node's index slice.
func (n *Node) applyLocate(key string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.ring.now()
	var out []string
	kept := n.index[key][:0]
	for _, e := range n.index[key] {
		if e.Expires.Before(now) {
			continue
		}
		kept = append(kept, e)
		out = append(out, e.NodeName)
	}
	n.index[key] = kept
	return out
}

// applyUnpublish removes holder's entry for key from this node's index.
func (n *Node) applyUnpublish(holder, key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	entries := n.index[key]
	kept := entries[:0]
	for _, e := range entries {
		if e.NodeName != holder {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(n.index, key)
	} else {
		n.index[key] = kept
	}
}

// ---------------------------------------------------------------------------
// RPC handler
// ---------------------------------------------------------------------------

// ServeRPC handles one incoming overlay message; it is registered on the
// ring's transport at Join (possibly behind a mux).
func (n *Node) ServeRPC(from string, msg transport.Message) (transport.Message, error) {
	switch msg.Type {
	case msgFindSuccessor:
		target, err := parseID(msg.Key)
		if err != nil {
			return transport.Message{}, fmt.Errorf("overlay: bad target id %q", msg.Key)
		}
		skip := make(map[string]bool, len(msg.Args))
		for _, s := range msg.Args {
			skip[s] = true
		}
		dec := n.decide(target, skip)
		if dec.final {
			return transport.Message{Args: []string{dec.owner, "final"}}, nil
		}
		return transport.Message{Args: []string{dec.next, "forward"}}, nil
	case msgPublish:
		n.applyPublish(from, msg.Key)
		return transport.Message{}, nil
	case msgLocate:
		return transport.Message{Args: n.applyLocate(msg.Key)}, nil
	case msgUnpublish:
		n.applyUnpublish(from, msg.Key)
		return transport.Message{}, nil
	case msgStabilize:
		n.observeLoad(from, msg.Key)
		n.mu.Lock()
		args := []string{n.pred.name}
		for _, s := range n.succs {
			args = append(args, s.name)
		}
		n.mu.Unlock()
		return transport.Message{Key: n.localLoadArg(), Args: args}, nil
	case msgNotify:
		if len(msg.Args) > 0 {
			n.observeLoad(msg.Key, msg.Args[0])
		}
		cand := ref{name: msg.Key, id: HashID(msg.Key)}
		n.mu.Lock()
		if cand.name != n.Name && (n.pred.name == "" || between(cand.id, n.pred.id, n.ID)) {
			n.pred = cand
		}
		n.mu.Unlock()
		return transport.Message{}, nil
	case msgPing:
		n.observeLoad(from, msg.Key)
		return transport.Message{Key: n.localLoadArg()}, nil
	default:
		return transport.Message{}, fmt.Errorf("overlay: unknown message type %q", msg.Type)
	}
}

// ---------------------------------------------------------------------------
// Incremental maintenance (Stabilize / FixFingers)
// ---------------------------------------------------------------------------

// Stabilize runs one round of successor-list repair through the transport:
// dead successors are dropped, a closer live successor learned from the
// current one is adopted, the successor list is refreshed from the live
// successor's list, and the successor is notified of this node (updating
// its predecessor pointer). A dead predecessor is cleared so notify can
// replace it. When the round detects churn that changes this node's
// replication responsibilities — the predecessor died, or the successor
// list changed — the node's churn hook fires (see SetChurnHook), so the
// layer above can promote replicas and re-replicate.
func (n *Node) Stabilize() {
	r := n.ring
	n.mu.Lock()
	pred := n.pred
	succs := append([]ref(nil), n.succs...)
	oldList := fmt.Sprint(succs)
	n.mu.Unlock()
	churned := false
	defer func() {
		n.mu.Lock()
		newList := fmt.Sprint(n.succs)
		hook := n.churn
		n.mu.Unlock()
		// Any successor-list change matters, not just the head: a node K-1
		// places downstream replicates for this node, so its death or
		// arrival anywhere in the list shifts replication targets.
		if (churned || newList != oldList) && hook != nil {
			hook()
		}
	}()

	// Maintenance traffic doubles as load gossip: every ping/stabilize
	// below carries this node's load score and reports the peer's back.
	loadArg := n.localLoadArg()
	if pred.name != "" {
		if rep, err := r.call(n.Name, pred.name, transport.Message{Type: msgPing, Key: loadArg}); err != nil {
			n.mu.Lock()
			if n.pred == pred {
				n.pred = ref{}
				churned = true
			}
			n.mu.Unlock()
		} else {
			n.observeLoad(pred.name, rep.Key)
		}
	}

	var live ref
	var reply transport.Message
	for len(succs) > 0 {
		s := succs[0]
		rep, err := r.call(n.Name, s.name, transport.Message{Type: msgStabilize, Key: loadArg})
		if err != nil {
			succs = succs[1:] // successor-list repair: skip the dead head
			continue
		}
		n.observeLoad(s.name, rep.Key)
		live, reply = s, rep
		break
	}
	if live.name == "" {
		// Every known successor is gone. Fall back to the first live finger
		// (fingers cover the whole ring, so the lowest live one is a
		// successor over-estimate that the adoption loop below walks back),
		// or to the predecessor so a two-node ring can re-form.
		n.mu.Lock()
		fingers := append([]ref(nil), n.fingers...)
		n.mu.Unlock()
		for _, f := range fingers {
			if f.name == "" || f.name == n.Name {
				continue
			}
			if rep, err := r.call(n.Name, f.name, transport.Message{Type: msgStabilize, Key: loadArg}); err == nil {
				n.observeLoad(f.name, rep.Key)
				live, reply = f, rep
				break
			}
		}
		if live.name == "" {
			// Nothing reachable anywhere. If the predecessor is still known
			// (its ping succeeded above), fall back to it so a two-node ring
			// can re-form; otherwise the node is fully isolated — clear the
			// successor list so it stops addressing dead peers and serves
			// alone until something reachable reappears (fingers are left in
			// place as rejoin candidates for later rounds).
			n.mu.Lock()
			if n.pred.name != "" && n.pred.name != n.Name {
				n.succs = []ref{n.pred}
			} else {
				n.succs = nil
			}
			n.mu.Unlock()
			return
		}
	}

	// Classic Chord stabilization, run to a fixpoint: while our successor's
	// predecessor sits between us and it, that node is a closer successor —
	// adopt it if reachable.
	for i := 0; i < maxLookupHops; i++ {
		sp := reply.Args[0]
		if sp == "" || sp == n.Name {
			break
		}
		spRef := ref{name: sp, id: HashID(sp)}
		if !between(spRef.id, n.ID, live.id) || spRef.id == live.id {
			break
		}
		rep, err := r.call(n.Name, sp, transport.Message{Type: msgStabilize, Key: loadArg})
		if err != nil {
			break
		}
		n.observeLoad(sp, rep.Key)
		live, reply = spRef, rep
	}

	// Refresh the successor list: the live successor followed by its list.
	newSuccs := []ref{live}
	for _, name := range reply.Args[1:] {
		if name == "" || name == n.Name || name == live.name {
			continue
		}
		newSuccs = append(newSuccs, ref{name: name, id: HashID(name)})
		if len(newSuccs) >= r.succListLen() {
			break
		}
	}
	n.mu.Lock()
	n.succs = newSuccs
	n.mu.Unlock()
	_, _ = r.call(n.Name, live.name, transport.Message{Type: msgNotify, Key: n.Name, Args: []string{loadArg}})
}

// FixFingers refreshes every finger by routing for its target; entries
// whose lookups fail are left for the next round. A node with no
// successor state skips the refresh entirely: its lookups resolve
// everything to itself (the bootstrap rule), and overwriting the finger
// table with self-entries would destroy the only routes it has left for
// rejoining the ring.
func (n *Node) FixFingers() {
	n.mu.Lock()
	isolated := len(n.succs) == 0
	n.mu.Unlock()
	if isolated {
		return
	}
	for b := 0; b < idBits; b++ {
		target := n.ID + ID(uint64(1)<<uint(b))
		owner, _, err := n.lookupID(target, nil)
		if err != nil || owner == "" {
			continue
		}
		n.mu.Lock()
		if n.fingers == nil {
			n.fingers = make([]ref, idBits)
		}
		n.fingers[b] = ref{name: owner, id: HashID(owner)}
		n.mu.Unlock()
	}
}

// StabilizeAll runs the given number of maintenance rounds across every
// live local member in deterministic (sorted-name) order: successor repair
// first, then finger repair. With the direct-call transport one round fully
// converges a quiescent ring; under faults more rounds may be needed.
func (r *Ring) StabilizeAll(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, name := range r.Nodes() {
			n := r.NodeByName(name)
			if n == nil || n.remote {
				continue
			}
			n.Stabilize()
		}
		for _, name := range r.Nodes() {
			n := r.NodeByName(name)
			if n == nil || n.remote {
				continue
			}
			n.FixFingers()
		}
	}
}
