package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nakika/internal/transport"
)

// groundTruth computes the converged routing tables for every member
// directly from the membership set, independently of the code under test.
type member struct {
	name string
	id   ID
}

func groundTruth(r *Ring) []member {
	names := r.Nodes()
	ms := make([]member, len(names))
	for i, n := range names {
		ms[i] = member{name: n, id: HashID(n)}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	return ms
}

func ownerOf(ms []member, id ID) member {
	i := sort.Search(len(ms), func(i int) bool { return ms[i].id >= id })
	if i == len(ms) {
		i = 0
	}
	return ms[i]
}

// verifyConverged asserts that every node's successor list, predecessor,
// finger table, and routed lookups match the membership ground truth.
func verifyConverged(t *testing.T, r *Ring, label string) {
	t.Helper()
	ms := groundTruth(r)
	n := len(ms)
	if n < 2 {
		return
	}
	k := r.succListLen()
	if k > n-1 {
		k = n - 1
	}
	for pos, m := range ms {
		node := r.NodeByName(m.name)
		// Successor list: the next k members around the ring.
		want := make([]string, k)
		for j := 1; j <= k; j++ {
			want[j-1] = ms[(pos+j)%n].name
		}
		got := node.Successors()
		if len(got) < 1 || got[0] != want[0] {
			t.Fatalf("%s: node %s succs = %v, want prefix %v", label, m.name, got, want)
		}
		for j := 0; j < len(got) && j < len(want); j++ {
			if got[j] != want[j] {
				t.Fatalf("%s: node %s succs[%d] = %s, want %s (full %v vs %v)", label, m.name, j, got[j], want[j], got, want)
			}
		}
		if wantPred := ms[(pos-1+n)%n].name; node.Predecessor() != wantPred {
			t.Fatalf("%s: node %s pred = %s, want %s", label, m.name, node.Predecessor(), wantPred)
		}
		// Finger-table correctness: fingers[b] is the owner of id + 2^b.
		node.mu.Lock()
		fingers := append([]ref(nil), node.fingers...)
		node.mu.Unlock()
		for b, f := range fingers {
			target := m.id + ID(uint64(1)<<uint(b))
			if want := ownerOf(ms, target).name; f.name != want {
				t.Fatalf("%s: node %s finger[%d] = %q, want %q", label, m.name, b, f.name, want)
			}
		}
	}
	// Routed lookups agree with the ground truth from every starting node.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("churn-key-%d", i)
		want := ownerOf(ms, HashID(key)).name
		for _, m := range ms {
			got, _, err := r.NodeByName(m.name).LookupName(key)
			if err != nil {
				t.Fatalf("%s: lookup %q from %s: %v", label, key, m.name, err)
			}
			if got != want {
				t.Fatalf("%s: lookup %q from %s = %s, want %s", label, key, m.name, got, want)
			}
		}
	}
}

// TestChurnRepair drives randomized join/leave sequences with a fixed seed
// in manual-maintenance mode and asserts that Stabilize/FixFingers rounds
// repair every node's successor list and finger table to the membership
// ground truth.
func TestChurnRepair(t *testing.T) {
	cases := []struct {
		name     string
		seed     int64
		initial  int
		ops      int
		joinBias float64 // probability an op is a join
		rounds   int
	}{
		{name: "join-heavy", seed: 1, initial: 4, ops: 10, joinBias: 0.8, rounds: 6},
		{name: "leave-heavy", seed: 2, initial: 12, ops: 10, joinBias: 0.2, rounds: 6},
		{name: "balanced", seed: 3, initial: 8, ops: 16, joinBias: 0.5, rounds: 6},
		{name: "mass-join", seed: 4, initial: 2, ops: 14, joinBias: 1.0, rounds: 6},
		{name: "deep-churn", seed: 5, initial: 10, ops: 30, joinBias: 0.5, rounds: 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			r := NewRing()
			for i := 0; i < tc.initial; i++ {
				r.Join(fmt.Sprintf("seed-%02d", i), "r")
			}
			r.ManualMaintenance = true
			next := 0
			for op := 0; op < tc.ops; op++ {
				if rng.Float64() < tc.joinBias || r.Size() <= 3 {
					r.Join(fmt.Sprintf("late-%02d", next), "r")
					next++
				} else {
					names := r.Nodes()
					r.Leave(names[rng.Intn(len(names))])
				}
			}
			r.StabilizeAll(tc.rounds)
			verifyConverged(t, r, tc.name)
		})
	}
}

// TestChurnRepairDeterministic re-runs one churn case and checks the
// surviving membership and every routing decision are identical run to run.
func TestChurnRepairDeterministic(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(9))
		r := NewRing()
		for i := 0; i < 8; i++ {
			r.Join(fmt.Sprintf("seed-%02d", i), "r")
		}
		r.ManualMaintenance = true
		for op := 0; op < 20; op++ {
			if rng.Float64() < 0.5 || r.Size() <= 3 {
				r.Join(fmt.Sprintf("late-%02d", op), "r")
			} else {
				names := r.Nodes()
				r.Leave(names[rng.Intn(len(names))])
			}
		}
		r.StabilizeAll(6)
		fp := fmt.Sprint(r.Nodes())
		for i := 0; i < 10; i++ {
			name, hops, err := r.NodeByName(r.Nodes()[0]).LookupName(fmt.Sprintf("det-key-%d", i))
			fp += fmt.Sprintf("|%s/%d/%v", name, hops, err == nil)
		}
		return fp
	}
	first := run()
	for i := 0; i < 2; i++ {
		if again := run(); again != first {
			t.Fatalf("churn repair not deterministic:\n%s\nvs\n%s", first, again)
		}
	}
}

// TestAutoRebuildStaysConverged is the control: in the default maintenance
// mode every membership change leaves tables exactly converged.
func TestAutoRebuildStaysConverged(t *testing.T) {
	r := NewRing()
	for i := 0; i < 10; i++ {
		r.Join(fmt.Sprintf("auto-%02d", i), "r")
	}
	verifyConverged(t, r, "after joins")
	r.Leave("auto-03")
	r.Leave("auto-07")
	verifyConverged(t, r, "after leaves")
	r.Join("auto-late", "r")
	verifyConverged(t, r, "after rejoin")
}

// TestLookupRoutesAroundUnreachableNode checks the skip-set fallback: with
// a node's transport registration gone but membership intact (a crash, not
// a leave), lookups still converge by routing around it.
func TestLookupRoutesAroundUnreachableNode(t *testing.T) {
	r := NewRing()
	var nodes []*Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, r.Join(fmt.Sprintf("ra-%d", i), "r"))
	}
	// Simulate a crash: the node vanishes from the transport but not from
	// membership (nobody has detected the failure yet).
	crashed := nodes[3]
	r.Transport.Unregister(crashed.Name)
	defer r.Transport.Register(crashed.Name, crashed.ServeRPC)
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("crash-key-%d", i)
		owner := r.Successor(key)
		if owner == crashed {
			continue // keys owned by the crashed node are legitimately lost
		}
		for _, n := range nodes {
			if n == crashed {
				continue
			}
			got, _, err := n.LookupName(key)
			if err != nil {
				t.Fatalf("lookup %q from %s with ra-3 down: %v", key, n.Name, err)
			}
			if got != owner.Name {
				t.Fatalf("lookup %q from %s = %s, want %s", key, n.Name, got, owner.Name)
			}
		}
	}
}

// TestOverlayAcrossTCP runs the same overlay protocol between two rings in
// separate "processes" connected by the TCP transport: each process serves
// its own member and sees the other only as a remote stub.
func TestOverlayAcrossTCP(t *testing.T) {
	t1, t2 := transport.NewTCP(), transport.NewTCP()
	defer t1.Close()
	defer t2.Close()

	r1 := NewRing()
	r1.Transport = t1
	r2 := NewRing()
	r2.Transport = t2

	n1 := r1.Join("proc-1", "us-east")
	n2 := r2.Join("proc-2", "eu-west")
	r1.AddRemote("proc-2", "eu-west")
	r2.AddRemote("proc-1", "us-east")

	addr1, err := t1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := t2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t1.AddPeer("proc-2", addr2.String())
	t2.AddPeer("proc-1", addr1.String())

	// Find keys owned by each side (per the shared ground truth).
	var keyAt2 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("tcp-key-%d", i)
		if r1.Successor(k).Name == "proc-2" {
			keyAt2 = k
			break
		}
	}
	// Publishing from process 1 stores the entry at process 2 over TCP.
	if _, err := n1.Publish(keyAt2); err != nil {
		t.Fatal(err)
	}
	if holders := n2.applyLocate(keyAt2); len(holders) != 1 || holders[0] != "proc-1" {
		t.Fatalf("index at proc-2 = %v", holders)
	}
	// And process 1 can locate it back across the wire.
	holders, _, err := n1.LocateErr(keyAt2)
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 1 || holders[0] != "proc-1" {
		t.Fatalf("locate across TCP = %v", holders)
	}
	// Lookups agree on ownership from both processes.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("agree-%d", i)
		o1, _, err1 := n1.LookupName(k)
		o2, _, err2 := n2.LookupName(k)
		if err1 != nil || err2 != nil || o1 != o2 {
			t.Fatalf("cross-process ownership of %q: %q/%v vs %q/%v", k, o1, err1, o2, err2)
		}
	}
}
