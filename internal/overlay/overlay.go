// Package overlay implements the structured overlay network Na Kika uses to
// coordinate local caches and enable incremental deployment (Section 3.4).
//
// The paper treats the overlay largely as a black box provided by an
// existing DHT (Coral in the prototype). This reproduction provides a
// Chord-style consistent-hashing overlay with per-node routing state: node
// and key identifiers are SHA-1 hashes on a 160-bit ring, each node
// maintains a successor list and a finger table for O(log n) lookups, and
// the key-to-node mapping is used for two purposes:
//
//   - a cooperative cache index mapping resource cache keys to the nodes
//     that hold cached copies, so one cached copy anywhere in the network is
//     sufficient to avoid an origin access, and
//   - a redirector that stands in for Coral's DNS redirection, returning a
//     nearby node for a client region.
//
// All inter-node protocol traffic — iterative lookups, index
// publish/locate, successor-list and finger maintenance — flows through a
// transport.Transport. The default transport is direct in-process calls
// (the original single-process simulation); the same protocol code runs
// over the TCP transport for real multi-process clusters and over the
// fault-injecting simulated transport for partition/churn testing.
package overlay

import (
	"crypto/sha1"
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"nakika/internal/loadview"
	"nakika/internal/transport"
)

// ID is a point on the 160-bit ring, truncated to 64 bits for arithmetic
// convenience (collision probability is irrelevant at the scales involved).
type ID uint64

// HashID maps an arbitrary string to a ring position.
func HashID(s string) ID {
	sum := sha1.Sum([]byte(s))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// between reports whether id lies in the half-open ring interval (from, to].
func between(id, from, to ID) bool {
	if from < to {
		return id > from && id <= to
	}
	if from > to {
		return id > from || id <= to
	}
	return true // from == to: full circle
}

// Entry is one cooperative-cache index record: a node that holds a cached
// copy of the keyed resource.
type Entry struct {
	NodeName string
	Expires  time.Time
}

// ref names a node position on the ring; routing tables hold refs rather
// than node pointers so the same tables describe in-process and remote
// peers. A zero ref (empty name) means "unknown".
type ref struct {
	name string
	id   ID
}

// Node is a member of the overlay.
type Node struct {
	Name   string
	Region string
	ID     ID

	mu      sync.Mutex
	ring    *Ring
	index   map[string][]Entry // keys this node is responsible for
	alive   bool
	remote  bool // membership stub for a node served by another process
	pred    ref
	succs   []ref
	fingers []ref // fingers[b] ~ successor(ID + 2^b)
	lookups int64
	hops    int64
	// churn, when non-nil, is invoked (outside locks) by Stabilize when the
	// round changed this node's replication responsibilities: the
	// predecessor died or the successor-list head changed.
	churn func()
	// loadLocal / loadObserve implement load gossip (see SetLoadGossip):
	// maintenance RPCs piggyback the sender's current load score and report
	// observed peer scores, so the offload layer holds a fresh load view of
	// the node's successors and predecessor without any extra messages.
	loadLocal   func() float64
	loadObserve func(peer string, load float64)
}

// NodeStats reports per-node overlay activity.
type NodeStats struct {
	Lookups   int64
	TotalHops int64
	IndexKeys int
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStats{Lookups: n.lookups, TotalHops: n.hops, IndexKeys: len(n.index)}
}

// Successors returns the names in the node's current successor list.
func (n *Node) Successors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.succs))
	for i, s := range n.succs {
		out[i] = s.name
	}
	return out
}

// Predecessor returns the node's current predecessor name ("" if unknown).
func (n *Node) Predecessor() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred.name
}

// SetChurnHook installs f as the node's churn notification: Stabilize
// invokes it (outside overlay locks) whenever a round detects a dead
// predecessor or any successor-list change — the events that shift key
// ownership or replication targets onto or off this node. The replication
// layer uses it to schedule replica promotion and re-replication.
func (n *Node) SetChurnHook(f func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.churn = f
}

// SetLoadGossip installs the node's load gossip hooks: local reports this
// node's current load score, observe is invoked (with overlay locks not
// held on the maintenance paths) whenever a maintenance RPC carries a
// peer's score. Scores piggyback on the existing ping/stabilize/notify
// traffic — load accounting costs zero additional messages.
func (n *Node) SetLoadGossip(local func() float64, observe func(peer string, load float64)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loadLocal = local
	n.loadObserve = observe
}

// localLoadArg renders this node's load score for piggybacking ("" when no
// provider is installed).
func (n *Node) localLoadArg() string {
	n.mu.Lock()
	local := n.loadLocal
	n.mu.Unlock()
	if local == nil {
		return ""
	}
	return loadview.FormatScore(local())
}

// observeLoad records a piggybacked peer score (no-op without an observer
// or for peers that do not gossip load).
func (n *Node) observeLoad(peer, arg string) {
	if peer == "" || peer == n.Name {
		return
	}
	score, ok := loadview.ParseScore(arg)
	if !ok {
		return
	}
	n.mu.Lock()
	observe := n.loadObserve
	n.mu.Unlock()
	if observe != nil {
		observe(peer, score)
	}
}

// Ping reports whether peer currently answers overlay pings through the
// transport. The replication repair path probes candidate owners with it
// before trusting routing-table entries that may be stale under churn.
// Pings carry load gossip both ways.
func (n *Node) Ping(peer string) bool {
	if peer == n.Name {
		return true
	}
	reply, err := n.ring.call(n.Name, peer, transport.Message{Type: msgPing, Key: n.localLoadArg()})
	if err != nil {
		return false
	}
	n.observeLoad(peer, reply.Key)
	return true
}

// OwnedRange returns the half-open ring interval (from, to] of key IDs this
// node believes it owns: everything between its known predecessor and
// itself. ok is false while the predecessor is unknown (mid-bootstrap or
// after its death), when the owned range cannot be bounded.
func (n *Node) OwnedRange() (from, to ID, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.name == "" {
		return 0, 0, false
	}
	return n.pred.id, n.ID, true
}

// InInterval reports whether id lies in the half-open ring interval
// (from, to], with wraparound. Exported for layers that partition keys by
// ring position (replication handoff streams key ranges between nodes).
func InInterval(id, from, to ID) bool { return between(id, from, to) }

// DropIndex discards the node's cooperative-cache index, simulating the
// loss of soft state when a node crashes.
func (n *Node) DropIndex() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.index = make(map[string][]Entry)
}

// Ring is the overlay membership authority: the set of member nodes plus
// the ground-truth key-to-node mapping (what a perfectly converged network
// would compute). Message traffic between nodes goes through Transport; the
// per-node routing tables are either kept exactly converged on every
// membership change (the default, matching the seed's instant-convergence
// model) or repaired incrementally through Stabilize/FixFingers rounds when
// ManualMaintenance is set. All methods are safe for concurrent use.
type Ring struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	// sorted node IDs for successor computation.
	sorted []ID
	byID   map[ID]*Node
	// DefaultTTL governs how long index entries live; zero means 60 seconds.
	DefaultTTL time.Duration
	// Clock returns the current time; nil means time.Now.
	Clock func() time.Time
	// Transport carries all inter-node messages. NewRing installs the
	// direct-call transport; replace it (before the first Join) to run the
	// overlay over TCP or the fault-injecting simulated network.
	Transport transport.Transport
	// SuccListLen is the successor-list length (fault tolerance of routing
	// under churn); zero means 4.
	SuccListLen int
	// ManualMaintenance, when set, stops the ring from rebuilding every
	// node's routing tables on membership changes: a joining node is seeded
	// with correct tables, but existing nodes only learn about joins,
	// leaves, and failures through Stabilize/FixFingers rounds — the mode
	// the churn tests and the cluster harness exercise.
	ManualMaintenance bool
}

// NewRing returns an empty overlay using the in-process transport.
func NewRing() *Ring {
	return &Ring{
		nodes:     make(map[string]*Node),
		byID:      make(map[ID]*Node),
		Transport: transport.NewLocal(),
	}
}

func (r *Ring) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

func (r *Ring) ttl() time.Duration {
	if r.DefaultTTL > 0 {
		return r.DefaultTTL
	}
	return 60 * time.Second
}

func (r *Ring) succListLen() int {
	if r.SuccListLen > 0 {
		return r.SuccListLen
	}
	return 4
}

// Join adds a node with the given name and region to the overlay and
// returns it. Joining is idempotent: re-joining an existing name returns
// the existing node. This models the paper's low-administrative-overhead
// addition of nodes. The node's RPC handler is registered on the ring's
// transport; a caller that serves several subsystems under one name (see
// core.Node) re-registers a mux over it afterwards.
func (r *Ring) Join(name, region string) *Node {
	n := r.join(name, region, false)
	r.Transport.Register(name, n.ServeRPC)
	return n
}

// AddRemote records membership of a node served by another process (over
// the TCP transport): it participates in the key-to-node mapping and can be
// the target of calls, but no handler is registered locally.
func (r *Ring) AddRemote(name, region string) *Node {
	return r.join(name, region, true)
}

func (r *Ring) join(name, region string, remote bool) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[name]; ok {
		n.mu.Lock()
		n.alive = true
		n.mu.Unlock()
		return n
	}
	n := &Node{
		Name:   name,
		Region: region,
		ID:     HashID(name),
		ring:   r,
		index:  make(map[string][]Entry),
		alive:  true,
		remote: remote,
	}
	r.nodes[name] = n
	r.byID[n.ID] = n
	r.sorted = append(r.sorted, n.ID)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	if r.ManualMaintenance {
		r.seedRoutingLocked(n)
	} else {
		r.rebuildRoutingLocked()
	}
	return n
}

// Leave removes a node from the overlay. Index entries owned by the
// departed node become the responsibility of its successor on the next
// publish; the expiration-based consistency model tolerates the transient
// loss.
func (r *Ring) Leave(name string) {
	r.mu.Lock()
	n, ok := r.nodes[name]
	if !ok {
		r.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
	delete(r.nodes, name)
	delete(r.byID, n.ID)
	for i, id := range r.sorted {
		if id == n.ID {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
			break
		}
	}
	if !r.ManualMaintenance {
		r.rebuildRoutingLocked()
	}
	r.mu.Unlock()
	r.Transport.Unregister(name)
}

// Size returns the number of live nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the names of all live nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for name := range r.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NodeByName returns the member (or remote stub) with the given name, or
// nil.
func (r *Ring) NodeByName(name string) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[name]
}

// successorLocked returns the node responsible for id per the membership
// ground truth: the first node whose ID is >= id, wrapping around the ring.
func (r *Ring) successorLocked(id ID) *Node {
	if len(r.sorted) == 0 {
		return nil
	}
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= id })
	if i == len(r.sorted) {
		i = 0
	}
	return r.byID[r.sorted[i]]
}

// Successor returns the node responsible for key per the membership ground
// truth (what routing converges to).
func (r *Ring) Successor(key string) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.successorLocked(HashID(key))
}

// ---------------------------------------------------------------------------
// Redirection (DNS substitute)
// ---------------------------------------------------------------------------

// Redirector chooses a nearby edge node for a client, standing in for
// Coral's DNS redirection of clients to nearby nodes. Proximity is
// region-based: a node in the client's region is preferred; otherwise the
// choice is round-robin over all live nodes for load balancing.
type Redirector struct {
	ring *Ring
	mu   sync.Mutex
	rr   int
}

// NewRedirector returns a redirector over ring.
func NewRedirector(ring *Ring) *Redirector { return &Redirector{ring: ring} }

// Pick returns the name of the edge node a client in region should use, or
// "" when the overlay is empty.
func (rd *Redirector) Pick(region string) string {
	rd.ring.mu.RLock()
	var inRegion []string
	var all []string
	for name, n := range rd.ring.nodes {
		all = append(all, name)
		if n.Region == region {
			inRegion = append(inRegion, name)
		}
	}
	rd.ring.mu.RUnlock()
	sort.Strings(inRegion)
	sort.Strings(all)
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if len(inRegion) > 0 {
		name := inRegion[rd.rr%len(inRegion)]
		rd.rr++
		return name
	}
	if len(all) == 0 {
		return ""
	}
	name := all[rd.rr%len(all)]
	rd.rr++
	return name
}
