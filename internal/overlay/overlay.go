// Package overlay implements the structured overlay network Na Kika uses to
// coordinate local caches and enable incremental deployment (Section 3.4).
//
// The paper treats the overlay largely as a black box provided by an
// existing DHT (Coral in the prototype). This reproduction provides a
// Chord-style consistent-hashing overlay with successor lists: node and key
// identifiers are SHA-1 hashes on a 160-bit ring, each node maintains a
// finger table for O(log n) lookups, and the key-to-node mapping is used for
// two purposes:
//
//   - a cooperative cache index mapping resource cache keys to the nodes
//     that hold cached copies, so one cached copy anywhere in the network is
//     sufficient to avoid an origin access, and
//   - a redirector that stands in for Coral's DNS redirection, returning a
//     nearby node for a client region.
//
// The overlay here is an in-process simulation of the distributed protocol:
// all nodes live in one Ring and communicate through direct method calls
// while the routing logic (successors, fingers, hop counting) is faithful to
// the distributed algorithm. Wide-area costs are injected by the simnet
// package at the experiment layer.
package overlay

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// ID is a point on the 160-bit ring, truncated to 64 bits for arithmetic
// convenience (collision probability is irrelevant at the scales involved).
type ID uint64

// HashID maps an arbitrary string to a ring position.
func HashID(s string) ID {
	sum := sha1.Sum([]byte(s))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// between reports whether id lies in the half-open ring interval (from, to].
func between(id, from, to ID) bool {
	if from < to {
		return id > from && id <= to
	}
	if from > to {
		return id > from || id <= to
	}
	return true // from == to: full circle
}

// Entry is one cooperative-cache index record: a node that holds a cached
// copy of the keyed resource.
type Entry struct {
	NodeName string
	Expires  time.Time
}

// Node is a member of the overlay.
type Node struct {
	Name   string
	Region string
	ID     ID

	mu      sync.Mutex
	ring    *Ring
	index   map[string][]Entry // keys this node is responsible for
	alive   bool
	lookups int64
	hops    int64
}

// Stats reports per-node overlay activity.
type NodeStats struct {
	Lookups   int64
	TotalHops int64
	IndexKeys int
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeStats{Lookups: n.lookups, TotalHops: n.hops, IndexKeys: len(n.index)}
}

// Ring is the in-process overlay: the set of member nodes plus the routing
// structures. All methods are safe for concurrent use.
type Ring struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	// sorted node IDs for successor computation.
	sorted []ID
	byID   map[ID]*Node
	// DefaultTTL governs how long index entries live; zero means 60 seconds.
	DefaultTTL time.Duration
	// Clock returns the current time; nil means time.Now.
	Clock func() time.Time
}

// NewRing returns an empty overlay.
func NewRing() *Ring {
	return &Ring{nodes: make(map[string]*Node), byID: make(map[ID]*Node)}
}

func (r *Ring) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

func (r *Ring) ttl() time.Duration {
	if r.DefaultTTL > 0 {
		return r.DefaultTTL
	}
	return 60 * time.Second
}

// Join adds a node with the given name and region to the overlay and returns
// it. Joining is idempotent: re-joining an existing name returns the
// existing node. This models the paper's low-administrative-overhead
// addition of nodes.
func (r *Ring) Join(name, region string) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[name]; ok {
		n.alive = true
		return n
	}
	n := &Node{Name: name, Region: region, ID: HashID(name), ring: r, index: make(map[string][]Entry), alive: true}
	r.nodes[name] = n
	r.byID[n.ID] = n
	r.sorted = append(r.sorted, n.ID)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	return n
}

// Leave removes a node from the overlay. Index entries owned by the departed
// node become the responsibility of its successor on the next publish; the
// expiration-based consistency model tolerates the transient loss.
func (r *Ring) Leave(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[name]
	if !ok {
		return
	}
	n.alive = false
	delete(r.nodes, name)
	delete(r.byID, n.ID)
	for i, id := range r.sorted {
		if id == n.ID {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
			break
		}
	}
}

// Size returns the number of live nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the names of all live nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for name := range r.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// successorLocked returns the node responsible for id: the first node whose
// ID is >= id, wrapping around the ring.
func (r *Ring) successorLocked(id ID) *Node {
	if len(r.sorted) == 0 {
		return nil
	}
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] >= id })
	if i == len(r.sorted) {
		i = 0
	}
	return r.byID[r.sorted[i]]
}

// Successor returns the node responsible for key.
func (r *Ring) Successor(key string) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.successorLocked(HashID(key))
}

// Lookup routes from the starting node to the node responsible for key,
// counting the routing hops a distributed Chord deployment would take
// (each hop at least halves the remaining ring distance). The hop count is
// what the simnet layer converts into wide-area latency.
func (n *Node) Lookup(key string) (*Node, int) {
	r := n.ring
	r.mu.RLock()
	target := HashID(key)
	owner := r.successorLocked(target)
	size := len(r.sorted)
	r.mu.RUnlock()
	if owner == nil {
		return nil, 0
	}
	// Chord routes in O(log2 n) hops; compute the hop count deterministically
	// from the ring distance so repeated lookups are stable.
	hops := chordHops(n.ID, owner.ID, size)
	n.mu.Lock()
	n.lookups++
	n.hops += int64(hops)
	n.mu.Unlock()
	return owner, hops
}

// chordHops estimates the number of routing hops between two ring positions
// in a network of size nodes, as ceil(log2(distance fraction * size)), the
// standard Chord bound.
func chordHops(from, to ID, size int) int {
	if size <= 1 || from == to {
		return 0
	}
	dist := uint64(to - from) // ring arithmetic wraps naturally on uint64
	// fraction of the ring covered, times network size, gives the expected
	// number of nodes passed; log2 of that is the hop count.
	frac := float64(dist) / float64(^uint64(0))
	expected := frac * float64(size)
	if expected <= 1 {
		return 1
	}
	h := bits.Len64(uint64(expected))
	maxHops := bits.Len64(uint64(size))
	if h > maxHops {
		h = maxHops
	}
	return h
}

// Publish records that node holds a cached copy of key. The record is stored
// at the node responsible for the key (the DHT put) and expires after the
// ring's TTL.
func (n *Node) Publish(key string) (int, error) {
	owner, hops := n.Lookup(key)
	if owner == nil {
		return hops, fmt.Errorf("overlay: empty ring")
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	entries := owner.index[key]
	now := n.ring.now()
	// Refresh an existing entry for this node or append a new one, dropping
	// expired entries as we go.
	kept := entries[:0]
	found := false
	for _, e := range entries {
		if e.Expires.Before(now) {
			continue
		}
		if e.NodeName == n.Name {
			e.Expires = now.Add(n.ring.ttl())
			found = true
		}
		kept = append(kept, e)
	}
	if !found {
		kept = append(kept, Entry{NodeName: n.Name, Expires: now.Add(n.ring.ttl())})
	}
	owner.index[key] = kept
	return hops, nil
}

// Locate returns the names of nodes believed to hold cached copies of key,
// together with the routing hop count. Expired entries are filtered out.
func (n *Node) Locate(key string) ([]string, int) {
	owner, hops := n.Lookup(key)
	if owner == nil {
		return nil, hops
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	now := n.ring.now()
	var out []string
	kept := owner.index[key][:0]
	for _, e := range owner.index[key] {
		if e.Expires.Before(now) {
			continue
		}
		kept = append(kept, e)
		if e.NodeName != n.Name {
			out = append(out, e.NodeName)
		} else {
			// The local copy counts too; callers usually check their own
			// cache first, but include it for completeness.
			out = append(out, e.NodeName)
		}
	}
	owner.index[key] = kept
	return out, hops
}

// Unpublish removes this node's entry for key (for example after cache
// eviction).
func (n *Node) Unpublish(key string) {
	owner, _ := n.Lookup(key)
	if owner == nil {
		return
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	entries := owner.index[key]
	kept := entries[:0]
	for _, e := range entries {
		if e.NodeName != n.Name {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(owner.index, key)
	} else {
		owner.index[key] = kept
	}
}

// ---------------------------------------------------------------------------
// Redirection (DNS substitute)
// ---------------------------------------------------------------------------

// Redirector chooses a nearby edge node for a client, standing in for
// Coral's DNS redirection of clients to nearby nodes. Proximity is
// region-based: a node in the client's region is preferred; otherwise the
// choice is round-robin over all live nodes for load balancing.
type Redirector struct {
	ring *Ring
	mu   sync.Mutex
	rr   int
}

// NewRedirector returns a redirector over ring.
func NewRedirector(ring *Ring) *Redirector { return &Redirector{ring: ring} }

// Pick returns the name of the edge node a client in region should use, or
// "" when the overlay is empty.
func (rd *Redirector) Pick(region string) string {
	rd.ring.mu.RLock()
	var inRegion []string
	var all []string
	for name, n := range rd.ring.nodes {
		all = append(all, name)
		if n.Region == region {
			inRegion = append(inRegion, name)
		}
	}
	rd.ring.mu.RUnlock()
	sort.Strings(inRegion)
	sort.Strings(all)
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if len(inRegion) > 0 {
		name := inRegion[rd.rr%len(inRegion)]
		rd.rr++
		return name
	}
	if len(all) == 0 {
		return ""
	}
	name := all[rd.rr%len(all)]
	rd.rr++
	return name
}
