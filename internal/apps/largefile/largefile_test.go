package largefile

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestServeBlobFullAndRange(t *testing.T) {
	o := NewOrigin(Config{Size: 100_000})
	srv := httptest.NewServer(o)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	full, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(full) != 100_000 {
		t.Fatalf("full fetch: %d, %d bytes", resp.StatusCode, len(full))
	}
	want := make([]byte, 100_000)
	Fill(want, 0)
	for i := range full {
		if full[i] != want[i] {
			t.Fatalf("byte %d = %q, want %q", i, full[i], want[i])
		}
	}

	req, _ := http.NewRequest("GET", srv.URL+"/blob", nil)
	req.Header.Set("Range", "bytes=5000-5999")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range status = %d", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 5000-5999/100000" {
		t.Errorf("Content-Range = %q", cr)
	}
	wantPart := make([]byte, 1000)
	Fill(wantPart, 5000)
	if string(part) != string(wantPart) {
		t.Error("range body mismatch against offset-based Fill")
	}

	req, _ = http.NewRequest("GET", srv.URL+"/blob", nil)
	req.Header.Set("Range", "bytes=200000-")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("unsatisfiable range status = %d", resp.StatusCode)
	}

	st := o.Stats()
	if st.FullFetches != 1 || st.RangeFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeadHasNoBody(t *testing.T) {
	o := NewOrigin(Config{Size: 10_000})
	srv := httptest.NewServer(o)
	defer srv.Close()
	resp, err := http.Head(srv.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 0 {
		t.Errorf("HEAD returned %d body bytes", len(body))
	}
	if resp.ContentLength != 10_000 {
		t.Errorf("HEAD Content-Length = %d", resp.ContentLength)
	}
}
