// Package largefile is the synthetic origin used to evaluate the chunked
// large-object tier: it serves one deterministic multi-megabyte object with
// HTTP Range support, counts full-body versus range fetches (so tests can
// assert that warm ranges never refetch the body), and can throttle its
// writes so time-to-first-byte measurements can prove the edge streams the
// object instead of buffering it.
package largefile

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"nakika/internal/httpmsg"
)

// Config configures the origin.
type Config struct {
	// Host is the origin's host name as edge nodes address it.
	Host string
	// Size is the object's byte length; zero means 64 MiB.
	Size int64
	// ThrottleBytesPerSec caps the origin's write rate; zero is unlimited.
	// A throttled origin takes measurably long to finish sending, which is
	// what lets the e2e harness assert the edge's first byte arrives before
	// the origin's last one.
	ThrottleBytesPerSec int64
}

// Origin serves the large object over real HTTP.
type Origin struct {
	cfg Config

	fullHits  atomic.Int64
	rangeHits atomic.Int64
}

// NewOrigin builds an origin from cfg, applying defaults.
func NewOrigin(cfg Config) *Origin {
	if cfg.Host == "" {
		cfg.Host = "big.example.org"
	}
	if cfg.Size <= 0 {
		cfg.Size = 64 << 20
	}
	return &Origin{cfg: cfg}
}

// Config returns the resolved configuration.
func (o *Origin) Config() Config { return o.cfg }

// Fill writes the object's deterministic content for absolute offset off
// into buf. Both the origin and its verifiers derive bytes from the offset
// alone, so any byte range can be checked without holding the whole object.
func Fill(buf []byte, off int64) {
	for i := range buf {
		p := off + int64(i)
		x := uint64(p)*2654435761 + uint64(p>>13)
		buf[i] = byte('A' + x%23)
	}
}

// Stats is the counter snapshot served at /stats.
type Stats struct {
	FullFetches  int64 `json:"full_fetches"`
	RangeFetches int64 `json:"range_fetches"`
}

// Stats returns the current counters.
func (o *Origin) Stats() Stats {
	return Stats{FullFetches: o.fullHits.Load(), RangeFetches: o.rangeHits.Load()}
}

// writeChunkSize is the unit of throttled body writes.
const writeChunkSize = 64 << 10

// ServeHTTP serves /blob (the object, with single-range support), /stats
// (fetch counters as JSON), and /nakika.js (a header-only edge script, so
// the pipeline runs without ever touching the body).
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/blob":
		o.serveBlob(w, r)
	case "/stats":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.Stats())
	case "/nakika.js":
		w.Header().Set("Content-Type", "application/javascript")
		w.Header().Set("Cache-Control", "max-age=300")
		fmt.Fprint(w, EdgeScript(o.cfg.Host))
	default:
		http.NotFound(w, r)
	}
}

func (o *Origin) serveBlob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	total := o.cfg.Size
	from, to := int64(0), total
	status := http.StatusOK
	if spec := r.Header.Get("Range"); spec != "" {
		var err error
		from, to, err = httpmsg.ParseRange(spec, total)
		switch err {
		case nil:
			status = http.StatusPartialContent
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to-1, total))
		case httpmsg.ErrNotRange:
			// Malformed spec: ignore it and serve the full body (RFC 7233).
		default:
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", total))
			http.Error(w, "range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return
		}
	}
	if status == http.StatusOK {
		o.fullHits.Add(1)
	} else {
		o.rangeHits.Add(1)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "max-age=600")
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", fmt.Sprint(to-from))
	w.WriteHeader(status)
	if r.Method == http.MethodHead {
		return
	}

	flusher, _ := w.(http.Flusher)
	buf := make([]byte, writeChunkSize)
	start := time.Now()
	written := int64(0)
	for off := from; off < to; {
		n := int64(len(buf))
		if off+n > to {
			n = to - off
		}
		Fill(buf[:n], off)
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		off += n
		written += n
		if rate := o.cfg.ThrottleBytesPerSec; rate > 0 {
			// Sleep off any lead over the configured rate.
			ahead := time.Duration(written)*time.Second/time.Duration(rate) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
}

// EdgeScript returns the site's nakika.js: a header-only response transform
// (it tags the response, never reads the body), so the edge pipeline runs on
// every fetch while the body keeps streaming segment by segment.
func EdgeScript(originHost string) string {
	return `
var p = new Policy();
p.url = [ "` + originHost + `/blob" ];
p.onResponse = function() {
	Response.setHeader("X-Largefile-Edge", "1");
};
p.register();
`
}
