// Package specweb provides the SPECweb99-like workload used in Section 5.3
// of the paper to evaluate hard state replication.
//
// The paper re-implemented SPECweb99's server-side scripts in PHP (for the
// single-server baseline) and in Na Kika Pages backed by replicated hard
// state (for the edge version), with an 80% dynamic request mix and user
// registration/profile management as the hard state. This package builds
// both sides synthetically: a dynamic origin whose per-request cost models a
// PHP interpreter hit, a static file set, a request-mix generator, and the
// nakika.js the edge version publishes.
package specweb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"nakika/internal/httpmsg"
)

// Config shapes the synthetic SPECweb workload.
type Config struct {
	// Host is the origin host.
	Host string
	// StaticClasses is the number of static file classes (SPECweb99 uses 4
	// size classes); StaticPerClass files exist per class.
	StaticClasses  int
	StaticPerClass int
	// DynamicFraction is the fraction of requests that are dynamic (the
	// paper uses 0.8).
	DynamicFraction float64
	// Users is the size of the registered-user population.
	Users int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Host == "" {
		c.Host = "specweb.example.org"
	}
	if c.StaticClasses <= 0 {
		c.StaticClasses = 4
	}
	if c.StaticPerClass <= 0 {
		c.StaticPerClass = 9
	}
	if c.DynamicFraction <= 0 {
		c.DynamicFraction = 0.8
	}
	if c.Users <= 0 {
		c.Users = 1000
	}
	return c
}

// classSizes are the SPECweb99 static file class sizes (bytes), scaled.
var classSizes = []int{1 << 10, 10 << 10, 100 << 10, 512 << 10}

// Origin is the single-server dynamic application (the PHP baseline): every
// dynamic request runs registration/profile logic against a local user
// table.
type Origin struct {
	cfg    Config
	mu     sync.Mutex
	users  map[string]string
	static map[int][]byte
}

// NewOrigin builds the synthetic origin with a pre-registered user base.
func NewOrigin(cfg Config) *Origin {
	cfg = cfg.Defaults()
	o := &Origin{cfg: cfg, users: make(map[string]string), static: make(map[int][]byte)}
	for class := 0; class < cfg.StaticClasses && class < len(classSizes); class++ {
		body := make([]byte, classSizes[class])
		for i := range body {
			body[i] = byte('a' + i%26)
		}
		o.static[class] = body
	}
	for u := 0; u < cfg.Users; u++ {
		o.users[fmt.Sprintf("user-%d", u)] = fmt.Sprintf(`{"id":%d,"ads":%d}`, u, u%360)
	}
	return o
}

// Config returns the effective configuration.
func (o *Origin) Config() Config { return o.cfg }

// UserCount returns the number of registered users (tests).
func (o *Origin) UserCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.users)
}

// Do implements core.Fetcher.
//
//	/file_set/dir/class{c}_{k}          static file
//	/cgi-bin/register?user=NAME         dynamic: register or update a user
//	/cgi-bin/profile?user=NAME          dynamic: fetch a profile + ad rotation
//	/nakika.js                          404 (the baseline publishes no script)
func (o *Origin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	path := req.Path()
	switch {
	case strings.HasPrefix(path, "/file_set/"):
		var class, k int
		if !matchTail(path, "class%d_%d", &class, &k) || o.static[class] == nil {
			return httpmsg.NewTextResponse(404, "no such file"), nil
		}
		resp := httpmsg.NewResponse(200)
		resp.Header.Set("Content-Type", "application/octet-stream")
		resp.SetBody(o.static[class])
		resp.SetMaxAge(3600)
		return resp, nil
	case path == "/cgi-bin/register":
		user := req.Query("user")
		if user == "" {
			return httpmsg.NewTextResponse(400, "missing user"), nil
		}
		o.mu.Lock()
		o.users[user] = fmt.Sprintf(`{"id":%d,"ads":%d}`, len(o.users), len(user)%360)
		o.mu.Unlock()
		resp := httpmsg.NewHTMLResponse(200, dynamicPage("registered", user))
		resp.Header.Set("Cache-Control", "no-store")
		return resp, nil
	case path == "/cgi-bin/profile":
		user := req.Query("user")
		o.mu.Lock()
		profile, ok := o.users[user]
		o.mu.Unlock()
		if !ok {
			resp := httpmsg.NewHTMLResponse(200, dynamicPage("unknown-user", user))
			resp.Header.Set("Cache-Control", "no-store")
			return resp, nil
		}
		resp := httpmsg.NewHTMLResponse(200, dynamicPage("profile "+profile, user))
		resp.Header.Set("Cache-Control", "no-store")
		return resp, nil
	default:
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
}

func matchTail(path, pattern string, args ...interface{}) bool {
	i := strings.LastIndex(path, "/")
	n, err := fmt.Sscanf(path[i+1:], pattern, args...)
	return err == nil && n == len(args)
}

// dynamicPage renders the dynamic response body with the SPECweb99-style ad
// rotation banner.
func dynamicPage(result, user string) string {
	return "<html><body><h1>SPECweb99-like</h1><p>" + result + "</p><p>user=" + user +
		"</p><div class='ad'>" + strings.Repeat("ad ", 64) + "</div></body></html>"
}

// EdgeScript returns the nakika.js the Na Kika port publishes: dynamic
// registration and profile requests are handled entirely at the edge against
// replicated hard state, so only static misses reach the origin.
func EdgeScript(originHost string) string {
	return `
// SPECweb99 port: user registrations and profiles in replicated hard state.
var reg = new Policy();
reg.url = [ "` + originHost + `/cgi-bin/register" ];
reg.onRequest = function() {
	var user = Request.param("user");
	if (user == null) { Request.terminate(400); return; }
	State.put("user:" + user, JSON.stringify({ name: user, ads: user.length % 360 }));
	Response.setHeader("Content-Type", "text/html");
	Response.write("<html><body><h1>SPECweb99-like</h1><p>registered</p><p>user=" + user + "</p></body></html>");
};
reg.register();

var prof = new Policy();
prof.url = [ "` + originHost + `/cgi-bin/profile" ];
prof.onRequest = function() {
	var user = Request.param("user");
	var data = State.get("user:" + user);
	Response.setHeader("Content-Type", "text/html");
	if (data == null) {
		Response.write("<html><body><p>unknown-user</p></body></html>");
	} else {
		var u = JSON.parse(data);
		Response.write("<html><body><h1>SPECweb99-like</h1><p>profile ads=" + u.ads + "</p><p>user=" + user + "</p></body></html>");
	}
};
prof.register();

// Site-wide checkpoint: a maintenance step only one edge node may run at a
// time. The per-site lease arbitrates who runs it, and the counter is
// written under the holdership's fencing token, so a node that loses the
// lease mid-step cannot clobber its successor's checkpoint.
var chk = new Policy();
chk.url = [ "` + originHost + `/cgi-bin/checkpoint" ];
chk.onRequest = function() {
	Response.setHeader("Content-Type", "text/plain");
	var token = Lease.acquire("specweb-checkpoint", 5000);
	if (token == null) { Response.write("busy"); return; }
	var n = State.get("checkpoint:count");
	n = (n == null) ? 1 : JSON.parse(n) + 1;
	Lease.put("checkpoint:count", JSON.stringify(n), "specweb-checkpoint", token);
	Lease.release("specweb-checkpoint", token);
	Response.write("checkpoint " + n);
};
chk.register();

// Long-running per-site job: "begin" takes the lease once and hands the
// fencing token to the client, which carries it through every "step"
// write. A node that dies mid-job leaves the lease to the failure
// detector or the TTL; whoever begins next is a new holdership with a
// higher token, and the dead holder's stale token can never write over
// the successor's steps — Lease.put throws, and the script reports
// "fenced" instead of silently continuing.
var job = new Policy();
job.url = [ "` + originHost + `/cgi-bin/job" ];
job.onRequest = function() {
	Response.setHeader("Content-Type", "text/plain");
	var op = Request.param("op");
	if (op == "begin") {
		var ttl = Request.param("ttl");
		var token = Lease.acquire("specweb-job", ttl == null ? 5000 : JSON.parse(ttl));
		if (token == null) { Response.write("busy"); return; }
		Response.write("token " + token);
		return;
	}
	if (op == "step") {
		var token = JSON.parse(Request.param("token"));
		var seq = Request.param("seq");
		try {
			Lease.put("job:cursor", JSON.stringify({ seq: seq, token: token }), "specweb-job", token);
			Response.write("step " + seq + " ok");
		} catch (e) {
			Response.write("fenced");
		}
		return;
	}
	Request.terminate(400);
};
job.register();
`
}

// ---------------------------------------------------------------------------
// Request mix generator
// ---------------------------------------------------------------------------

// RequestKind labels a generated request.
type RequestKind int

// Request kinds.
const (
	ReqStatic RequestKind = iota
	ReqRegister
	ReqProfile
)

// GeneratedRequest is one request in the SPECweb-like mix.
type GeneratedRequest struct {
	Kind  RequestKind
	URL   string
	Bytes int
}

// GenerateMix produces n requests with the configured dynamic fraction:
// dynamic requests split between profile reads (common) and registrations
// (rare), static requests follow SPECweb99's Zipf-ish class popularity
// (small files much more popular than large ones).
func GenerateMix(cfg Config, n int, seed int64) []GeneratedRequest {
	cfg = cfg.Defaults()
	rnd := rand.New(rand.NewSource(seed))
	out := make([]GeneratedRequest, 0, n)
	for i := 0; i < n; i++ {
		if rnd.Float64() < cfg.DynamicFraction {
			user := fmt.Sprintf("user-%d", rnd.Intn(cfg.Users))
			if rnd.Float64() < 0.15 {
				out = append(out, GeneratedRequest{Kind: ReqRegister, URL: fmt.Sprintf("http://%s/cgi-bin/register?user=%s", cfg.Host, user), Bytes: 600})
			} else {
				out = append(out, GeneratedRequest{Kind: ReqProfile, URL: fmt.Sprintf("http://%s/cgi-bin/profile?user=%s", cfg.Host, user), Bytes: 600})
			}
			continue
		}
		// Static class popularity: 35/50/14/1 percent, the SPECweb99 split.
		r := rnd.Float64()
		class := 0
		switch {
		case r < 0.35:
			class = 0
		case r < 0.85:
			class = 1
		case r < 0.99:
			class = 2
		default:
			class = 3
		}
		if class >= cfg.StaticClasses {
			class = cfg.StaticClasses - 1
		}
		k := rnd.Intn(cfg.StaticPerClass)
		out = append(out, GeneratedRequest{
			Kind:  ReqStatic,
			URL:   fmt.Sprintf("http://%s/file_set/dir/class%d_%d", cfg.Host, class, k),
			Bytes: classSizes[class],
		})
	}
	return out
}
