package specweb

import (
	"fmt"
	"strings"
	"testing"

	"nakika/internal/core"
	"nakika/internal/httpmsg"
	"nakika/internal/script"
	"nakika/internal/state"
)

func TestOriginStaticFiles(t *testing.T) {
	o := NewOrigin(Config{})
	resp, err := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/file_set/dir/class1_3"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || len(resp.Body) != 10<<10 {
		t.Errorf("class1 file: status=%d len=%d", resp.Status, len(resp.Body))
	}
	if !resp.Cacheable() {
		t.Error("static files should be cacheable")
	}
	if r, _ := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/file_set/dir/class9_0")); r.Status != 404 {
		t.Error("unknown class should be 404")
	}
}

func TestOriginDynamicRegistrationAndProfile(t *testing.T) {
	o := NewOrigin(Config{Users: 10})
	before := o.UserCount()
	reg, err := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/cgi-bin/register?user=newbie"))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Status != 200 || !strings.Contains(string(reg.Body), "registered") {
		t.Errorf("register = %d %q", reg.Status, reg.Body)
	}
	if reg.Cacheable() {
		t.Error("dynamic responses must not be cacheable")
	}
	if o.UserCount() != before+1 {
		t.Error("registration should add a user")
	}
	prof, _ := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/cgi-bin/profile?user=newbie"))
	if !strings.Contains(string(prof.Body), "profile") {
		t.Errorf("profile = %q", prof.Body)
	}
	missing, _ := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/cgi-bin/profile?user=ghost"))
	if !strings.Contains(string(missing.Body), "unknown-user") {
		t.Errorf("missing profile = %q", missing.Body)
	}
	bad, _ := o.Do(httpmsg.MustRequest("GET", "http://specweb.example.org/cgi-bin/register"))
	if bad.Status != 400 {
		t.Errorf("register without user = %d", bad.Status)
	}
}

func TestGenerateMix(t *testing.T) {
	cfg := Config{}.Defaults()
	mix := GenerateMix(cfg, 2000, 5)
	if len(mix) != 2000 {
		t.Fatalf("mix length = %d", len(mix))
	}
	dynamic, static := 0, 0
	for _, r := range mix {
		if r.Kind == ReqStatic {
			static++
		} else {
			dynamic++
		}
		if r.URL == "" || r.Bytes <= 0 {
			t.Fatalf("malformed request %+v", r)
		}
	}
	frac := float64(dynamic) / float64(len(mix))
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("dynamic fraction = %.2f, want ~0.8", frac)
	}
	// Deterministic per seed.
	again := GenerateMix(cfg, 2000, 5)
	for i := range mix {
		if mix[i] != again[i] {
			t.Fatal("mix should be deterministic per seed")
		}
	}
}

func TestEdgeScriptParses(t *testing.T) {
	if _, err := script.Parse(EdgeScript("specweb.example.org"), "nakika.js"); err != nil {
		t.Fatalf("edge script does not parse: %v", err)
	}
}

func TestEdgeScriptHandlesDynamicRequestsAtEdge(t *testing.T) {
	origin := NewOrigin(Config{})
	host := origin.Config().Host
	upstream := core.FetcherFunc(func(req *httpmsg.Request) (*httpmsg.Response, error) {
		if req.Path() == "/nakika.js" && req.Host() == host {
			r := httpmsg.NewTextResponse(200, EdgeScript(host))
			r.Header.Set("Content-Type", "application/javascript")
			r.SetMaxAge(300)
			return r, nil
		}
		return origin.Do(req)
	})
	bus := state.NewBus()
	nodeA, err := core.NewNode(core.Config{Name: "edge-a", Upstream: upstream, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := core.NewNode(core.Config{Name: "edge-b", Upstream: upstream, Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	// Warm both nodes' replicas for the site (replica attachment is lazy).
	if _, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/profile?user=warm")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nodeB.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/profile?user=warm")); err != nil {
		t.Fatal(err)
	}

	originDynamicBefore := 0 // the origin never sees edge-handled dynamics, verified below
	reg, trace, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/register?user=edgeuser"))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Status != 200 || !trace.Generated {
		t.Fatalf("register at edge: status=%d generated=%v", reg.Status, trace.Generated)
	}
	// The profile registered at node A is readable from node B via replication.
	prof, trace, err := nodeB.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/profile?user=edgeuser"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prof.Body), "profile") || !trace.Generated {
		t.Errorf("replicated profile read = %q generated=%v", prof.Body, trace.Generated)
	}
	// Static requests still flow to the origin and get cached.
	st, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/file_set/dir/class0_1"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != 200 || len(st.Body) != 1<<10 {
		t.Errorf("static via edge: %d %d bytes", st.Status, len(st.Body))
	}
	_ = originDynamicBefore
	if origin.UserCount() != (Config{}).Defaults().Users {
		t.Error("edge-handled registrations must not touch the origin's user table")
	}

	// The lease-guarded checkpoint runs at the edge: each request takes the
	// per-site lease, bumps the counter under its fencing token, and
	// releases, so repeat requests advance the count exactly once each.
	// (This legacy bus-mode setup keeps fenced writes node-local; the
	// cluster tests cover lease arbitration and fenced replication across
	// nodes.)
	for want := 1; want <= 2; want++ {
		chk, trace, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/checkpoint"))
		if err != nil {
			t.Fatal(err)
		}
		if chk.Status != 200 || !trace.Generated || string(chk.Body) != fmt.Sprintf("checkpoint %d", want) {
			t.Fatalf("checkpoint %d at edge: status=%d generated=%v body=%q", want, chk.Status, trace.Generated, chk.Body)
		}
	}

	// The lease-guarded job: begin hands the fencing token to the client
	// and steps write under it. A second begin through the same node is
	// the holder re-entering its own lease — same token, not a new
	// holdership (denial of OTHER nodes is cluster arbitration, covered
	// by the cluster and e2e suites).
	begin, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/job?op=begin&ttl=60000"))
	if err != nil {
		t.Fatal(err)
	}
	if string(begin.Body) != "token 1" {
		t.Fatalf("job begin = %q", begin.Body)
	}
	again, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/job?op=begin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again.Body) != "token 1" {
		t.Fatalf("holder re-begin = %q, want the same token", again.Body)
	}
	step, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/job?op=step&seq=7&token=1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(step.Body) != "step 7 ok" {
		t.Fatalf("job step = %q", step.Body)
	}
	// A token never granted is fenced at the floor; the script reports it
	// instead of falling through to the origin.
	stale, _, err := nodeA.Handle(httpmsg.MustRequest("GET", "http://"+host+"/cgi-bin/job?op=step&seq=8&token=0"))
	if err != nil {
		t.Fatal(err)
	}
	if string(stale.Body) != "fenced" {
		t.Fatalf("stale job step = %q, want fenced", stale.Body)
	}
}
