package simm

import (
	"strings"
	"testing"

	"nakika/internal/core"
	"nakika/internal/httpmsg"
	"nakika/internal/pipeline"
	"nakika/internal/script"
)

func TestOriginServesRenderedHTML(t *testing.T) {
	o := NewOrigin(Config{})
	resp, err := o.Do(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/2/section/3.html?student=maria"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "<h1>Module 2, Part 3</h1>") {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if !strings.Contains(string(resp.Body), "narrative") {
		t.Error("rendered HTML should contain narrative divs")
	}
	if resp.Cacheable() {
		t.Error("personalized HTML must not be publicly cacheable")
	}
}

func TestOriginServesXMLAndMedia(t *testing.T) {
	o := NewOrigin(Config{MediaBytes: 1024})
	xml, err := o.Do(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/1/section/1.xml?student=bob"))
	if err != nil {
		t.Fatal(err)
	}
	if xml.ContentType() != "text/xml" || !strings.Contains(string(xml.Body), `student="bob"`) {
		t.Errorf("xml = %q", xml.Body)
	}
	media, err := o.Do(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/1/media/2.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(media.Body) != 1024 || !media.Cacheable() {
		t.Errorf("media len=%d cacheable=%v", len(media.Body), media.Cacheable())
	}
	notFound, _ := o.Do(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/bogus"))
	if notFound.Status != 404 {
		t.Errorf("bogus path status = %d", notFound.Status)
	}
}

func TestPersonalization(t *testing.T) {
	o := NewOrigin(Config{})
	a := o.SectionXML(1, 1, "alice")
	b := o.SectionXML(1, 1, "bartholomew")
	if a == b {
		t.Error("different students should see different XML")
	}
	if o.SectionXML(1, 1, "alice") != a {
		t.Error("same student should see stable XML")
	}
}

func TestRenderHTMLStructure(t *testing.T) {
	html := RenderHTML(`<section><title>T</title><p id="p0">body text</p><progress completed="10"/></section>`)
	if !strings.Contains(html, "<h1>T</h1>") || !strings.Contains(html, "body text") || !strings.Contains(html, "progress-bar") {
		t.Errorf("html = %q", html)
	}
}

func TestGenerateLog(t *testing.T) {
	log := GenerateLog(Config{}, 500, 1)
	if len(log) != 500 {
		t.Fatalf("log length = %d", len(log))
	}
	html, media := 0, 0
	for _, a := range log {
		switch a.Kind {
		case AccessHTML:
			html++
			if !strings.Contains(a.URL, ".html") {
				t.Errorf("html access URL = %q", a.URL)
			}
		case AccessMedia:
			media++
			if !strings.Contains(a.URL, ".bin") {
				t.Errorf("media access URL = %q", a.URL)
			}
		}
	}
	if html == 0 || media == 0 {
		t.Errorf("mix: html=%d media=%d", html, media)
	}
	if media > html {
		t.Error("HTML accesses should dominate the log")
	}
	// Deterministic for a fixed seed.
	again := GenerateLog(Config{}, 500, 1)
	for i := range log {
		if log[i] != again[i] {
			t.Fatal("log generation should be deterministic per seed")
		}
	}
}

func TestEdgeScriptRendersOnNode(t *testing.T) {
	// End-to-end: the Na Kika port's nakika.js renders the personalized XML
	// at the edge, producing HTML equivalent in structure to the origin's.
	origin := NewOrigin(Config{})
	upstream := core.FetcherFunc(func(req *httpmsg.Request) (*httpmsg.Response, error) {
		if req.Path() == "/nakika.js" && req.Host() == origin.Config().Host {
			r := httpmsg.NewTextResponse(200, EdgeScript(origin.Config().Host))
			r.Header.Set("Content-Type", "application/javascript")
			r.SetMaxAge(300)
			return r, nil
		}
		return origin.Do(req)
	})
	node, err := core.NewNode(core.Config{Name: "edge-1", Upstream: upstream})
	if err != nil {
		t.Fatal(err)
	}
	resp, trace, err := node.Handle(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/3/section/2.html?student=maria"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d (%+v)", resp.Status, trace.Stages)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "<h1>Module 3, Part 2</h1>") || !strings.Contains(body, "narrative") {
		t.Errorf("edge-rendered body = %q", body)
	}
	if !trace.Generated {
		t.Error("edge port should generate the HTML response at the edge")
	}
	// Media flows through and is cacheable at the edge.
	m1, _, err := node.Handle(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/3/media/1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Status != 200 {
		t.Fatalf("media status = %d", m1.Status)
	}
	m2, _, err := node.Handle(httpmsg.MustRequest("GET", "http://simms.med.nyu.edu/module/3/media/1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !m2.FromCache {
		t.Error("second media access should come from the edge cache")
	}
}

func TestEdgeScriptParses(t *testing.T) {
	if _, err := script.Parse(EdgeScript("simms.med.nyu.edu"), "nakika.js"); err != nil {
		t.Fatalf("edge script does not parse: %v", err)
	}
	if pipeline.SiteOf("http://"+Config{}.Defaults().Host+"/nakika.js") != "simms.med.nyu.edu" {
		t.Error("site extraction mismatch")
	}
}
