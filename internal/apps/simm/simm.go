// Package simm provides the synthetic stand-in for the Surgical Interactive
// Multimedia Modules (SIMMs), the web-based medical education application
// used in Section 5.2 of the paper.
//
// The real SIMMs run on Tomcat + MySQL: JSP/servlets personalize XML content
// per student, an XSL stylesheet renders it to HTML, and each module carries
// about a gigabyte of multimedia. This package reproduces the workload
// shape: an origin that serves per-student XML (personalization), a shared
// rendering step (XML to HTML), synthetic multimedia blobs, and a log-replay
// workload generator (the paper replays the medical school's access logs at
// 4x speed). The Na Kika port's nakika.js script, which offloads rendering
// and media distribution to the edge, is also generated here.
package simm

import (
	"fmt"
	"math/rand"
	"strings"

	"nakika/internal/httpmsg"
)

// Config shapes the synthetic application.
type Config struct {
	// Modules is the number of SIMM modules (five existed at publication).
	Modules int
	// SectionsPerModule is the number of HTML pages per module.
	SectionsPerModule int
	// MediaPerModule is the number of multimedia files per module.
	MediaPerModule int
	// MediaBytes is the size of each multimedia file.
	MediaBytes int
	// Host is the origin host name.
	Host string
}

// Defaults fills zero fields with workable defaults scaled down from the
// real deployment so tests stay fast.
func (c Config) Defaults() Config {
	if c.Modules <= 0 {
		c.Modules = 5
	}
	if c.SectionsPerModule <= 0 {
		c.SectionsPerModule = 8
	}
	if c.MediaPerModule <= 0 {
		c.MediaPerModule = 4
	}
	if c.MediaBytes <= 0 {
		c.MediaBytes = 64 << 10
	}
	if c.Host == "" {
		c.Host = "simms.med.nyu.edu"
	}
	return c
}

// Origin is the single-server SIMM application: it personalizes XML, renders
// it to HTML itself (the configuration the paper compares against), and
// serves multimedia.
type Origin struct {
	cfg   Config
	media []byte
}

// NewOrigin builds the synthetic origin.
func NewOrigin(cfg Config) *Origin {
	cfg = cfg.Defaults()
	media := make([]byte, cfg.MediaBytes)
	rnd := rand.New(rand.NewSource(7))
	for i := range media {
		media[i] = byte(rnd.Intn(256))
	}
	return &Origin{cfg: cfg, media: media}
}

// Config returns the origin's effective configuration.
func (o *Origin) Config() Config { return o.cfg }

// SectionXML builds the personalized XML for a module section and student:
// the content is the same skeleton with student-specific progress markers,
// which is exactly what makes the rendering step shareable but the
// personalization not.
func (o *Origin) SectionXML(module, section int, student string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<section module="%d" n="%d" student="%s">`, module, section, student)
	fmt.Fprintf(&sb, `<title>Module %d, Part %d</title>`, module, section)
	for p := 0; p < 6; p++ {
		fmt.Fprintf(&sb, `<p id="p%d">Clinical narrative paragraph %d for module %d covering workup, presentation, and treatment considerations.</p>`, p, p, module)
	}
	fmt.Fprintf(&sb, `<progress completed="%d"/>`, (len(student)*7+section)%100)
	fmt.Fprintf(&sb, `<assessment score="%d"/>`, (len(student)*13+module)%100)
	sb.WriteString(`</section>`)
	return sb.String()
}

// RenderHTML is the shared XML-to-HTML rendering step (the XSL stylesheet
// substitute). It is deliberately processor-intensive relative to serving a
// static file, matching the reason the paper offloads it to the edge.
func RenderHTML(xmlDoc string) string {
	var sb strings.Builder
	sb.WriteString("<html><head><title>SIMM</title></head><body>")
	// A simple tag-walking transformation: titles become h1, paragraphs
	// become styled divs, progress becomes a bar.
	rest := xmlDoc
	for {
		start := strings.Index(rest, "<")
		if start < 0 {
			break
		}
		end := strings.Index(rest[start:], ">")
		if end < 0 {
			break
		}
		tag := rest[start+1 : start+end]
		body := rest[start+end+1:]
		switch {
		case strings.HasPrefix(tag, "title"):
			close := strings.Index(body, "</title>")
			if close >= 0 {
				sb.WriteString("<h1>" + body[:close] + "</h1>")
			}
		case strings.HasPrefix(tag, "p "):
			close := strings.Index(body, "</p>")
			if close >= 0 {
				sb.WriteString(`<div class="narrative">` + body[:close] + "</div>")
			}
		case strings.HasPrefix(tag, "progress"):
			sb.WriteString(`<div class="progress-bar"></div>`)
		}
		rest = rest[start+end+1:]
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

// Do implements core.Fetcher: the origin serves three URL families.
//
//	/module/{m}/section/{s}.html?student=NAME  personalized, rendered HTML
//	/module/{m}/section/{s}.xml?student=NAME   personalized XML (for the edge port)
//	/module/{m}/media/{k}.bin                  multimedia
//	/nakika.js                                 404 on the single-server origin
func (o *Origin) Do(req *httpmsg.Request) (*httpmsg.Response, error) {
	path := req.Path()
	student := req.Query("student")
	if student == "" {
		student = "anonymous"
	}
	var module, section, media int
	switch {
	case matchPath(path, "/module/%d/section/%d.html", &module, &section):
		xmlDoc := o.SectionXML(module, section, student)
		resp := httpmsg.NewHTMLResponse(200, RenderHTML(xmlDoc))
		// Personalized content: only privately cacheable.
		resp.Header.Set("Cache-Control", "private")
		return resp, nil
	case matchPath(path, "/module/%d/section/%d.xml", &module, &section):
		resp := httpmsg.NewResponse(200)
		resp.Header.Set("Content-Type", "text/xml")
		resp.SetBodyString(o.SectionXML(module, section, student))
		resp.Header.Set("Cache-Control", "private")
		return resp, nil
	case matchPath(path, "/module/%d/media/%d.bin", &module, &media):
		resp := httpmsg.NewResponse(200)
		resp.Header.Set("Content-Type", "video/mp4")
		resp.SetBody(o.media)
		resp.SetMaxAge(3600)
		return resp, nil
	case path == "/xsl/render.js" || path == "/nakika.js":
		return httpmsg.NewTextResponse(404, "not found"), nil
	default:
		return httpmsg.NewTextResponse(404, "not found"), nil
	}
}

// matchPath is a minimal sscanf-based route matcher.
func matchPath(path, pattern string, args ...interface{}) bool {
	n, err := fmt.Sscanf(path, pattern, args...)
	return err == nil && n == len(args)
}

// EdgeScript returns the nakika.js the Na Kika port of the SIMMs publishes:
// it rewrites .html requests to fetch the personalized XML from the origin
// and performs the (generic, shared) rendering at the edge, and lets media
// be cached normally. This mirrors the real port, which "off-loads the
// distribution of multimedia content ... and the (generic) rendering of XML
// to HTML" while personalization stays on the central server.
func EdgeScript(originHost string) string {
	return `
// SIMM edge port: render personalized XML to HTML at the edge.
var p = new Policy();
p.url = [ "` + originHost + `/module" ];
p.onRequest = function() {
	if (Request.path.indexOf(".html") < 0) { return; }
	var student = Request.param("student");
	if (student == null) { student = "anonymous"; }
	var xmlURL = "http://` + originHost + `" +
		Request.path.replace(".html", ".xml") + "?student=" + student;
	var r = Fetch.get(xmlURL);
	if (r.status != 200) { Request.terminate(502); return; }
	var doc = XML.parse(r.body.toString());
	var html = "<html><head><title>SIMM</title></head><body>";
	html += "<h1>" + XML.text(XML.find(doc, "title")) + "</h1>";
	var paras = XML.findAll(doc, "p");
	for (var i = 0; i < paras.length; i++) {
		html += "<div class='narrative'>" + XML.text(paras[i]) + "</div>";
	}
	html += "<div class='progress-bar'></div></body></html>";
	Response.setHeader("Content-Type", "text/html; charset=utf-8");
	Response.write(html);
};
p.register();
`
}

// ---------------------------------------------------------------------------
// Log-replay workload
// ---------------------------------------------------------------------------

// AccessKind labels a replayed access for latency bucketing.
type AccessKind int

// Access kinds in the replayed log.
const (
	AccessHTML AccessKind = iota
	AccessMedia
)

// Access is one entry in the synthetic access log.
type Access struct {
	Kind    AccessKind
	URL     string
	Student string
	Bytes   int
}

// GenerateLog produces a synthetic access log of n entries for the
// application, with the HTML/media mix of a lecture-viewing session: a
// student requests a section page and then, with some probability, the
// section's media.
func GenerateLog(cfg Config, n int, seed int64) []Access {
	cfg = cfg.Defaults()
	rnd := rand.New(rand.NewSource(seed))
	log := make([]Access, 0, n)
	for len(log) < n {
		student := fmt.Sprintf("student-%d", rnd.Intn(400))
		module := 1 + rnd.Intn(cfg.Modules)
		section := 1 + rnd.Intn(cfg.SectionsPerModule)
		log = append(log, Access{
			Kind:    AccessHTML,
			URL:     fmt.Sprintf("http://%s/module/%d/section/%d.html?student=%s", cfg.Host, module, section, student),
			Student: student,
			Bytes:   4096,
		})
		if len(log) < n && rnd.Float64() < 0.4 {
			media := 1 + rnd.Intn(cfg.MediaPerModule)
			log = append(log, Access{
				Kind:    AccessMedia,
				URL:     fmt.Sprintf("http://%s/module/%d/media/%d.bin", cfg.Host, module, media),
				Student: student,
				Bytes:   cfg.MediaBytes,
			})
		}
	}
	return log
}
