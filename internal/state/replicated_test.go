package state

import (
	"fmt"
	"testing"
)

func TestVersionedCodecRoundTrip(t *testing.T) {
	cases := []struct {
		ver     uint64
		origin  string
		deleted bool
		value   string
	}{
		{1, "node-0", false, "plain"},
		{42, "edge-a", false, ""},
		{7, "n", true, ""},
		{9, "node-3", false, "value with spaces and \x00 bytes\n"},
		{18446744073709551615, "node-1", false, "max version"},
	}
	for _, tc := range cases {
		enc := EncodeVersioned(tc.ver, tc.origin, tc.deleted, tc.value)
		ver, origin, deleted, value, ok := DecodeVersioned(enc)
		if !ok || ver != tc.ver || origin != tc.origin || deleted != tc.deleted || value != tc.value {
			t.Errorf("round trip %+v -> %q -> (%d %q %v %q %v)", tc, enc, ver, origin, deleted, value, ok)
		}
	}
	for _, bad := range []string{
		"", "raw value", "x node P", "1 node", "1 node Xv", "notanum node Pv",
		// Shape-coincident plain values must not parse as versioned: only
		// the sentinel prefix marks encoded records.
		"10 users Present", "10 users Deleted",
		versionedPrefix + "1 node", versionedPrefix + "x node Pv",
	} {
		if _, _, _, _, ok := DecodeVersioned(bad); ok {
			t.Errorf("DecodeVersioned(%q) should fail", bad)
		}
	}
}

func TestSupersedesOrdering(t *testing.T) {
	at := func(ver uint64, origin string) Rec { return Rec{Ver: ver, Origin: origin} }
	r := Rec{Ver: 5, Origin: "node-b"}
	if !r.Supersedes(at(4, "node-z")) {
		t.Error("higher version must win regardless of origin")
	}
	if r.Supersedes(at(6, "node-a")) {
		t.Error("lower version must lose regardless of origin")
	}
	if !r.Supersedes(at(5, "node-a")) || r.Supersedes(at(5, "node-c")) {
		t.Error("equal versions must break ties by origin name")
	}
	if r.Supersedes(at(5, "node-b")) {
		t.Error("a record must not supersede an identical record")
	}
	// Full (ver, origin) ties — an owner that lost its history reissuing a
	// version — break by payload, totally and asymmetrically: tombstone
	// over put, then value order.
	del := Rec{Ver: 5, Origin: "node-b", Delete: true}
	put := Rec{Ver: 5, Origin: "node-b", Value: "x"}
	if !del.Supersedes(put) || put.Supersedes(del) {
		t.Error("a tombstone must beat a put at the same (ver, origin)")
	}
	hi := Rec{Ver: 5, Origin: "node-b", Value: "b"}
	lo := Rec{Ver: 5, Origin: "node-b", Value: "a"}
	if !hi.Supersedes(lo) || lo.Supersedes(hi) {
		t.Error("full ties must break by value so the order is total")
	}
}

func TestPutVersionedLastWriterWins(t *testing.T) {
	s := NewStore(0)
	put := func(ver uint64, origin, value string, deleted bool) bool {
		applied, err := s.PutVersioned(Rec{Site: "s", Key: "k", Ver: ver, Origin: origin, Delete: deleted, Value: value})
		if err != nil {
			t.Fatal(err)
		}
		return applied
	}
	if !put(1, "a", "v1", false) {
		t.Fatal("first write not applied")
	}
	if put(1, "a", "v1", false) {
		t.Error("an identical record must not reapply")
	}
	// A different payload at the same (ver, origin) — crash-amnesia reissue
	// — resolves by the deterministic payload tie-break instead of sticking
	// with whichever arrived first.
	if !put(1, "a", "v1-later", false) {
		t.Error("payload tie-break must apply the winning value")
	}
	if put(1, "a", "v0-earlier", false) {
		t.Error("payload tie-break must reject the losing value")
	}
	if !put(2, "a", "v2", false) {
		t.Fatal("newer version not applied")
	}
	if put(1, "z", "old", false) {
		t.Error("stale version applied")
	}
	if _, _, _, value, _ := s.GetVersioned("s", "k"); value != "v2" {
		t.Errorf("value = %q, want v2", value)
	}
	// Tombstone beats the put and hides the key from listings.
	if !put(3, "b", "", true) {
		t.Fatal("tombstone not applied")
	}
	if got := s.KeysVersioned("s"); len(got) != 0 {
		t.Errorf("KeysVersioned after tombstone = %v", got)
	}
	// But the tombstone itself still travels through record scans.
	recs := s.VersionedRecords(nil)
	if len(recs) != 1 || !recs[0].Delete || recs[0].Ver != 3 {
		t.Errorf("VersionedRecords = %v", recs)
	}
}

func TestVersionedRecordsFilterAndOrder(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 5; i++ {
		if _, err := s.PutVersioned(Rec{Site: "s", Key: fmt.Sprintf("k%d", i), Ver: 1, Origin: "n", Value: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	// A raw (non-versioned) value travels as a version-0 record, so
	// repair migrates legacy data written before replication was enabled.
	if err := s.Put("s", "legacy", "raw"); err != nil {
		t.Fatal(err)
	}
	recs := s.VersionedRecords(func(site, key string) bool { return key != "k2" })
	if len(recs) != 5 {
		t.Fatalf("records = %v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatalf("records out of order: %v", recs)
		}
	}
}

// TestRawValuesReadableAsVersionZero pins the upgrade path: hard state
// written while replication was disabled stays readable through the
// versioned accessors and loses to any replicated write.
func TestRawValuesReadableAsVersionZero(t *testing.T) {
	s := NewStore(0)
	if err := s.Put("s", "old", "pre-replication"); err != nil {
		t.Fatal(err)
	}
	// A raw value that happens to look like the (pre-sentinel) encoding
	// shape reads back verbatim, not as a parsed record.
	if err := s.Put("s", "shape", "10 users Present"); err != nil {
		t.Fatal(err)
	}
	if _, _, deleted, value, ok := s.GetVersioned("s", "shape"); !ok || deleted || value != "10 users Present" {
		t.Fatalf("shape-coincident raw value mangled: (%q %v %v)", value, deleted, ok)
	}
	ver, origin, deleted, value, ok := s.GetVersioned("s", "old")
	if !ok || ver != 0 || origin != "" || deleted || value != "pre-replication" {
		t.Fatalf("raw read = (%d %q %v %q %v)", ver, origin, deleted, value, ok)
	}
	if got := s.KeysVersioned("s"); len(got) != 2 || got[0] != "old" || got[1] != "shape" {
		t.Fatalf("KeysVersioned = %v", got)
	}
	applied, err := s.PutVersioned(Rec{Site: "s", Key: "old", Ver: 1, Origin: "n", Value: "migrated"})
	if err != nil || !applied {
		t.Fatalf("replicated write must supersede a raw value (applied=%v err=%v)", applied, err)
	}
	if _, _, _, value, _ := s.GetVersioned("s", "old"); value != "migrated" {
		t.Fatalf("value = %q", value)
	}
}

func TestReplicaKeyUnambiguous(t *testing.T) {
	if ReplicaKey("a.org", "x/y") == ReplicaKey("a.org/x", "y") {
		// Sites are hostnames (no "/"), so the first "/" always ends the
		// site; this guards the assumption stays visible.
		t.Skip("hostnames cannot contain '/'; collision impossible in practice")
	}
}
