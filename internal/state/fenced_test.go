package state

import (
	"testing"

	"nakika/internal/store"
)

func TestFencedPutVersioned(t *testing.T) {
	s := NewStore(0)
	guard := "\x00nk:lease:lock"

	rec := Rec{Site: "s", Key: "k", Ver: 1, Origin: "node-a", Value: "v1"}
	applied, err := s.FencedPutVersioned(rec, guard, "node-a", 1)
	if err != nil || !applied {
		t.Fatalf("first fenced put = %v, %v", applied, err)
	}
	if _, _, _, v, _ := s.GetVersioned("s", "k"); v != "v1" {
		t.Fatalf("value = %q", v)
	}

	// A deposed holdership (lower token) is rejected even with a winning
	// LWW version: fencing overrides last-writer-wins.
	late := Rec{Site: "s", Key: "k", Ver: 9, Origin: "node-a", Value: "late"}
	if _, err := s.FencedPutVersioned(late, guard, "node-a", 0); err != store.ErrFencedStale {
		t.Fatalf("token 0 err = %v", err)
	}
	newer := Rec{Site: "s", Key: "k", Ver: 2, Origin: "node-b", Value: "v2"}
	if applied, err := s.FencedPutVersioned(newer, guard, "node-b", 2); err != nil || !applied {
		t.Fatalf("token 2 put = %v, %v", applied, err)
	}
	if _, err := s.FencedPutVersioned(late, guard, "node-a", 1); err != store.ErrFencedStale {
		t.Fatalf("deposed write err = %v", err)
	}
	if _, _, _, v, _ := s.GetVersioned("s", "k"); v != "v2" {
		t.Fatalf("deposed write landed: %q", v)
	}
}

func TestFencedPutVersionedLWWLossStillRaisesFloor(t *testing.T) {
	s := NewStore(0)
	guard := "\x00nk:lease:lock"

	// An unfenced record already sits at a high version (e.g. repair
	// pushed it from a replica that saw more history).
	if _, err := s.PutVersioned(Rec{Site: "s", Key: "k", Ver: 10, Origin: "node-z", Value: "vz"}); err != nil {
		t.Fatal(err)
	}
	// The fenced write loses LWW — not applied, no error — but the floor
	// advances, so an older holdership can never write here afterwards.
	rec := Rec{Site: "s", Key: "k", Ver: 3, Origin: "node-b", Value: "vb"}
	applied, err := s.FencedPutVersioned(rec, guard, "node-b", 5)
	if err != nil || applied {
		t.Fatalf("superseded fenced put = %v, %v", applied, err)
	}
	if _, _, _, v, _ := s.GetVersioned("s", "k"); v != "vz" {
		t.Fatalf("LWW loser overwrote: %q", v)
	}
	if tok, holder := s.FenceToken("s", guard); tok != 5 || holder != "node-b" {
		t.Fatalf("floor = %d/%q, want 5/node-b", tok, holder)
	}
	older := Rec{Site: "s", Key: "k", Ver: 11, Origin: "node-a", Value: "va"}
	if _, err := s.FencedPutVersioned(older, guard, "node-a", 4); err != store.ErrFencedStale {
		t.Fatalf("older holdership err = %v", err)
	}
}

// TestLeaseTombstoneRenewRace races a lease record's tombstone against a
// renew under the total LWW order: whatever order two stores apply the two
// records in, they converge on the same winner, and the fence floor —
// per-store local, never carried by LWW records — survives even when the
// tombstone wins, so a holdership deposed before the race can never write
// again afterwards.
func TestLeaseTombstoneRenewRace(t *testing.T) {
	leaseKey := "\x00nk:lease:lock"
	tomb := Rec{Site: "s", Key: leaseKey, Ver: 4, Origin: "node-a", Delete: true}
	renew := Rec{Site: "s", Key: leaseKey, Ver: 4, Origin: "node-b", Value: "renewed-record"}

	apply := func(first, second Rec) *Store {
		s := NewStore(0)
		// The floor a prior holdership (token 3) established before the race.
		if _, err := s.FencedPutVersioned(Rec{Site: "s", Key: "data", Ver: 1, Origin: "node-b", Value: "v"}, leaseKey, "node-b", 3); err != nil {
			t.Fatal(err)
		}
		for _, rec := range []Rec{first, second} {
			if _, err := s.PutVersioned(rec); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	a := apply(tomb, renew)
	b := apply(renew, tomb)
	verA, origA, delA, valA, okA := a.GetVersioned("s", leaseKey)
	verB, origB, delB, valB, okB := b.GetVersioned("s", leaseKey)
	if verA != verB || origA != origB || delA != delB || valA != valB || okA != okB {
		t.Fatalf("stores diverged: (%d,%s,%v,%q,%v) vs (%d,%s,%v,%q,%v)",
			verA, origA, delA, valA, okA, verB, origB, delB, valB, okB)
	}
	// Same (ver, origin) pair would tie-break delete over put; here the
	// origins differ, so the higher origin's renew wins deterministically.
	if delA || origA != "node-b" || valA != "renewed-record" {
		t.Fatalf("winner = (%d,%s,%v,%q), want node-b's renew", verA, origA, delA, valA)
	}

	// Even if a later, higher-versioned tombstone wins outright, the floor
	// stays: the record resets (next acquire restarts at token 1) but the
	// deposed holdership's writes remain fenced.
	if _, err := a.PutVersioned(Rec{Site: "s", Key: leaseKey, Ver: 9, Origin: "node-c", Delete: true}); err != nil {
		t.Fatal(err)
	}
	if tok, holder := a.FenceToken("s", leaseKey); tok != 3 || holder != "node-b" {
		t.Fatalf("floor after tombstone = %d/%q, want 3/node-b", tok, holder)
	}
	if _, err := a.FencedPutVersioned(Rec{Site: "s", Key: "data", Ver: 2, Origin: "node-a", Value: "stale"}, leaseKey, "node-a", 2); err != store.ErrFencedStale {
		t.Fatalf("deposed write after tombstone err = %v, want ErrFencedStale", err)
	}
}

func TestInternalKeysHiddenFromEnumeration(t *testing.T) {
	s := NewStore(0)
	if _, err := s.PutVersioned(Rec{Site: "s", Key: "visible", Ver: 1, Origin: "n", Value: "v"}); err != nil {
		t.Fatal(err)
	}
	leaseKey := "\x00nk:lease:lock"
	if _, err := s.PutVersioned(Rec{Site: "s", Key: leaseKey, Ver: 1, Origin: "n", Value: "rec"}); err != nil {
		t.Fatal(err)
	}

	keys := s.KeysVersioned("s")
	if len(keys) != 1 || keys[0] != "visible" {
		t.Fatalf("KeysVersioned leaked internal keys: %v", keys)
	}
	// Repair and handoff still carry internal keys.
	found := false
	for _, rec := range s.VersionedRecords(nil) {
		if rec.Key == leaseKey {
			found = true
		}
	}
	if !found {
		t.Fatal("VersionedRecords dropped the internal key")
	}
	if !IsInternalKey(leaseKey) || IsInternalKey("visible") {
		t.Fatal("IsInternalKey misclassifies")
	}
}
