package state

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"nakika/internal/wire"
)

// Binary wire codecs for the two state types that cross the transport:
// versioned hard-state records (rep.store pushes, handoff streams, range
// replies) and bus update messages (state.update broadcasts). Both replace
// the gob payloads the replication paths shipped through their first
// releases. Encoders are append-style so callers compose them into pooled
// buffers; the self-describing Encode/Decode pairs prefix wire.Magic and the
// decoders keep accepting gob for one release (a gob stream can never start
// with the magic byte), so mixed-version rings upgrade cleanly.

// AppendRec appends rec's binary encoding (no magic byte):
//
//	str(site) str(key) uvarint(ver) str(origin) bool(delete) str(value)
func AppendRec(buf []byte, rec Rec) []byte {
	buf = wire.AppendString(buf, rec.Site)
	buf = wire.AppendString(buf, rec.Key)
	buf = wire.AppendUvarint(buf, rec.Ver)
	buf = wire.AppendString(buf, rec.Origin)
	buf = wire.AppendBool(buf, rec.Delete)
	buf = wire.AppendString(buf, rec.Value)
	return buf
}

// ReadRec reads one AppendRec-encoded record.
func ReadRec(r *wire.Reader) (rec Rec, err error) {
	if rec.Site, err = r.String(); err != nil {
		return
	}
	if rec.Key, err = r.String(); err != nil {
		return
	}
	if rec.Ver, err = r.Uvarint(); err != nil {
		return
	}
	if rec.Origin, err = r.String(); err != nil {
		return
	}
	if rec.Delete, err = r.Bool(); err != nil {
		return
	}
	rec.Value, err = r.String()
	return
}

// EncodeRec renders one record as a self-describing payload (magic byte
// first) suitable for a transport Message body.
func EncodeRec(rec Rec) []byte {
	buf := make([]byte, 0, 32+len(rec.Site)+len(rec.Key)+len(rec.Origin)+len(rec.Value))
	buf = append(buf, wire.Magic)
	return AppendRec(buf, rec)
}

// DecodeRec parses an EncodeRec payload, still accepting the gob encoding
// shipped by peers one release behind.
func DecodeRec(payload []byte) (Rec, error) {
	if len(payload) == 0 {
		return Rec{}, fmt.Errorf("state: empty record payload")
	}
	if payload[0] == wire.Magic {
		r := wire.Reader{Buf: payload, Off: 1}
		return ReadRec(&r)
	}
	var rec Rec
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return Rec{}, fmt.Errorf("state: decode record: %w", err)
	}
	return rec, nil
}

// AppendBusMessage appends msg's binary encoding (no magic byte):
//
//	str(site) str(origin) str(payload) varint(seq) time(sent)
func AppendBusMessage(buf []byte, msg Message) []byte {
	buf = wire.AppendString(buf, msg.Site)
	buf = wire.AppendString(buf, msg.Origin)
	buf = wire.AppendString(buf, msg.Payload)
	buf = wire.AppendVarint(buf, msg.Seq)
	return wire.AppendTime(buf, msg.Sent)
}

// ReadBusMessage reads one AppendBusMessage-encoded message.
func ReadBusMessage(r *wire.Reader) (msg Message, err error) {
	if msg.Site, err = r.String(); err != nil {
		return
	}
	if msg.Origin, err = r.String(); err != nil {
		return
	}
	if msg.Payload, err = r.String(); err != nil {
		return
	}
	if msg.Seq, err = r.Varint(); err != nil {
		return
	}
	msg.Sent, err = r.Time()
	return
}

// EncodeBusMessage renders one bus message as a self-describing payload.
func EncodeBusMessage(msg Message) []byte {
	buf := make([]byte, 0, 48+len(msg.Site)+len(msg.Origin)+len(msg.Payload))
	buf = append(buf, wire.Magic)
	return AppendBusMessage(buf, msg)
}

// DecodeBusMessage parses an EncodeBusMessage payload, still accepting gob.
func DecodeBusMessage(payload []byte) (Message, error) {
	if len(payload) == 0 {
		return Message{}, fmt.Errorf("state: empty bus message payload")
	}
	if payload[0] == wire.Magic {
		r := wire.Reader{Buf: payload, Off: 1}
		return ReadBusMessage(&r)
	}
	var msg Message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return Message{}, fmt.Errorf("state: decode bus message: %w", err)
	}
	return msg, nil
}
