package state

import "testing"

// The zero-alloc claims of the binary codec are tested, not just
// benchmarked: a change that quietly reintroduces per-field boxing or
// reflection shows up here as a test failure, independent of the bench
// gate's thresholds.

func TestRecCodecAllocBudget(t *testing.T) {
	rec := Rec{
		Site:   "match.example.org",
		Key:    "user:arthur",
		Ver:    7,
		Origin: "edge-3",
		Value:  `{"name":"Arthur","quality":"novice","region":"nyc"}`,
	}
	allocs := testing.AllocsPerRun(500, func() {
		out, err := DecodeRec(EncodeRec(rec))
		if err != nil || out != rec {
			t.Fatalf("round trip: %+v, %v", out, err)
		}
	})
	// Measured: 5 (the encode buffer plus the decoded record's four
	// strings). The budget leaves room for toolchain drift, nothing more —
	// gob cost ~194 allocs on this payload.
	if allocs > 8 {
		t.Errorf("Rec round trip costs %.1f allocs/op, budget is 8", allocs)
	}
}
