package state

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"
)

func TestRecRoundTrip(t *testing.T) {
	recs := []Rec{
		{},
		{Site: "a.example", Key: "k", Ver: 7, Origin: "n1", Value: "v"},
		{Site: "b.example", Key: "key with spaces", Ver: 1 << 60, Origin: "n2", Delete: true},
		{Site: "c", Key: "\x00\xff", Ver: 0, Origin: "", Value: string([]byte{0, 1, 2, 255})},
	}
	for _, rec := range recs {
		got, err := DecodeRec(EncodeRec(rec))
		if err != nil {
			t.Fatalf("DecodeRec(%v): %v", rec, err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v want %+v", got, rec)
		}
	}
}

func TestDecodeRecAcceptsGob(t *testing.T) {
	rec := Rec{Site: "s", Key: "k", Ver: 3, Origin: "old-node", Value: "legacy"}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRec(buf.Bytes())
	if err != nil {
		t.Fatalf("gob grace decode: %v", err)
	}
	if got != rec {
		t.Fatalf("gob grace: got %+v want %+v", got, rec)
	}
}

func TestDecodeRecMalformed(t *testing.T) {
	cases := [][]byte{nil, {}, {0}, {0, 200}, {0, 5, 'a'}}
	for _, c := range cases {
		if _, err := DecodeRec(c); err == nil {
			t.Fatalf("DecodeRec(%v): expected error", c)
		}
	}
}

func TestBusMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{Site: "s.example", Origin: "n1", Payload: "put 1 1 kv", Seq: 42, Sent: time.Unix(0, 1754600000000000000)},
		{Site: "s", Origin: "n2", Payload: "", Seq: -1},
	}
	for _, msg := range msgs {
		got, err := DecodeBusMessage(EncodeBusMessage(msg))
		if err != nil {
			t.Fatalf("DecodeBusMessage: %v", err)
		}
		if got.Site != msg.Site || got.Origin != msg.Origin || got.Payload != msg.Payload || got.Seq != msg.Seq {
			t.Fatalf("round trip: got %+v want %+v", got, msg)
		}
		if got.Sent.UnixNano() != msg.Sent.UnixNano() && !(got.Sent.IsZero() && msg.Sent.IsZero()) {
			t.Fatalf("Sent round trip: got %v want %v", got.Sent, msg.Sent)
		}
	}
}

func TestDecodeBusMessageAcceptsGob(t *testing.T) {
	msg := Message{Site: "s", Origin: "old", Payload: "p", Seq: 9, Sent: time.Unix(100, 0)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBusMessage(buf.Bytes())
	if err != nil {
		t.Fatalf("gob grace decode: %v", err)
	}
	if got.Site != msg.Site || got.Seq != msg.Seq || !got.Sent.Equal(msg.Sent) {
		t.Fatalf("gob grace: got %+v want %+v", got, msg)
	}
}
