package state

import "strings"

// internalPrefix marks hard-state keys owned by the system itself rather
// than by site scripts — today the lease records ("\x00nk:lease:<name>").
// Internal keys replicate, repair, and hand off exactly like script data
// (they are ordinary versioned records), but they are hidden from
// script-facing enumeration and core refuses script reads and writes to
// them, so a site script can neither shadow nor delete a lease record
// through the State vocabulary.
const internalPrefix = "\x00nk:"

// IsInternalKey reports whether key is in the reserved internal namespace.
func IsInternalKey(key string) bool { return strings.HasPrefix(key, internalPrefix) }

// FencedPutVersioned applies rec like PutVersioned, gated by the store's
// fence floor for guard: a write whose (token, holder) pair is below the
// floor returns store.ErrFencedStale and changes nothing. When the write
// clears the fence but loses the last-writer-wins race, the floor still
// advances (the holdership demonstrably wrote here; older holderships must
// stay fenced) while the value is left alone — applied is false, err nil.
// Callers serialize read-modify-write cycles exactly as for PutVersioned.
func (s *Store) FencedPutVersioned(rec Rec, guard, holder string, token uint64) (applied bool, err error) {
	if curVer, curOrigin, curDel, curVal, ok := s.GetVersioned(rec.Site, rec.Key); ok {
		cur := Rec{Site: rec.Site, Key: rec.Key, Ver: curVer, Origin: curOrigin, Delete: curDel, Value: curVal}
		if !rec.Supersedes(cur) {
			if err := s.Backend().RaiseFence(rec.Site, guard, holder, token); err != nil {
				return false, err
			}
			return false, nil
		}
	}
	value := EncodeVersioned(rec.Ver, rec.Origin, rec.Delete, rec.Value)
	if err := s.Backend().FencedPut(rec.Site, rec.Key, value, guard, holder, token); err != nil {
		return false, err
	}
	return true, nil
}

// FenceToken reads the local fence floor for guard (token, then holder).
func (s *Store) FenceToken(site, guard string) (uint64, string) {
	return s.Backend().FenceToken(site, guard)
}
